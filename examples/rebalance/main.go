// Online rebalancing: expose the paper's one-shot gear assignment to an
// application whose load drifts between iterations, and compare rebalancing
// triggers — never (the offline baseline), always (re-solve every
// iteration), and a balance-degradation threshold with hysteresis.
//
//	go run ./examples/rebalance
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// SPECFEM3D-96 is moderately imbalanced (LB 0.79) — enough headroom
	// for DVFS savings, enough structure for drift to break a stale
	// assignment.
	cfg := repro.DefaultWorkloadConfig()
	cfg.Iterations = 5
	tr, err := repro.GenerateWorkload("SPECFEM3D-96", cfg)
	if err != nil {
		log.Fatal(err)
	}
	six, err := repro.UniformGearSet(6)
	if err != nil {
		log.Fatal(err)
	}

	// The imbalance profile migrates across the machine over 60 iterations,
	// with 2% transient jitter a good trigger should ignore.
	drift := repro.WorkloadDrift{Kind: repro.DriftRamp, Magnitude: 0.5, Jitter: 0.02, Seed: 1}

	// One shared cache: the base-iteration timing skeleton is recorded once
	// and every policy's every iteration is an exact O(events) retiming.
	cache := repro.NewReplayCache()
	base := repro.RebalanceConfig{
		Trace:            tr,
		Set:              six,
		Iterations:       60,
		Drift:            drift,
		Threshold:        0.01,
		Margin:           0.15,
		ReassignOverhead: 3e-3,
		Cache:            cache,
	}

	fmt.Printf("application: %s (%d ranks), ramp drift + jitter, %d iterations\n\n",
		tr.App, tr.NumRanks(), base.Iterations)
	fmt.Printf("%-10s %-9s %-9s %-8s %-9s %s\n", "policy", "energy", "time", "solves", "switches", "mean LB")
	for _, p := range []repro.RebalancePolicy{repro.RebalanceNever, repro.RebalanceEveryK, repro.RebalanceThreshold} {
		cfg := base
		cfg.Policy = p
		res, err := repro.RunRebalance(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-9s %-9s %-8d %-9d %.4f\n",
			p.String(),
			fmt.Sprintf("%.2f%%", res.Norm.Energy*100),
			fmt.Sprintf("%.2f%%", res.Norm.Time*100),
			res.Reassignments, res.GearSwitches, res.MeanLB)
	}

	// The same trigger under a 70% peak power budget: re-solves delegate to
	// the power-cap redistribution scheduler, and the budget holds on every
	// iteration because the all-compute peak bound is load-independent.
	pm, err := repro.NewPowerModel(repro.DefaultPowerConfig())
	if err != nil {
		log.Fatal(err)
	}
	budget := 0.7 * float64(tr.NumRanks()) * pm.Power(repro.PhaseCompute, repro.GearAtFrequency(repro.FMax))
	capped := base
	capped.Policy = repro.RebalanceCapped
	capped.Cap = budget
	capped.ExactPeaks = true
	res, err := repro.RunRebalance(capped)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncapped at %.0f W: energy %.2f%%, time %.2f%%, worst per-iteration peak %.0f W (never above the cap)\n",
		budget, res.Norm.Energy*100, res.Norm.Time*100, res.PeakPower)
}
