// Gearset study: how many DVFS gears does a CPU need? This example sweeps
// continuous, uniform and exponential gear sets over one application and
// prints the energy/EDP rows of the paper's Figures 2 and 4, answering the
// paper's question: six gears get within a few percent of continuous
// frequency scaling.
//
//	go run ./examples/gearset_study [instance]
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	name := "SPECFEM3D-96"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	cfg := repro.DefaultWorkloadConfig()
	cfg.Iterations = 10
	tr, err := repro.GenerateWorkload(name, cfg)
	if err != nil {
		log.Fatal(err)
	}

	type entry struct {
		label string
		set   *repro.GearSet
	}
	var entries []entry
	entries = append(entries,
		entry{"continuous unlimited", repro.ContinuousUnlimited()},
		entry{"continuous limited", repro.ContinuousLimited()},
	)
	for _, n := range []int{2, 3, 4, 6, 8, 10, 15} {
		set, err := repro.UniformGearSet(n)
		if err != nil {
			log.Fatal(err)
		}
		entries = append(entries, entry{fmt.Sprintf("uniform %d gears", n), set})
	}
	for _, n := range []int{3, 5, 7} {
		set, err := repro.ExponentialGearSet(n)
		if err != nil {
			log.Fatal(err)
		}
		entries = append(entries, entry{fmt.Sprintf("exponential %d gears", n), set})
	}

	fmt.Printf("gear-set study on %s (MAX algorithm, β = 0.5)\n\n", name)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "gear set\tenergy\ttime\tEDP")
	fmt.Fprintln(w, "--------\t------\t----\t---")
	for _, e := range entries {
		res, err := repro.Analyze(repro.AnalysisConfig{Trace: tr, Set: e.set, Algorithm: repro.MAX})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%.2f%%\t%.2f%%\t%.2f%%\n",
			e.label, res.Norm.Energy*100, res.Norm.Time*100, res.Norm.EDP*100)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npaper's conclusion: six gears give results close to the continuous set,")
	fmt.Println("and exponential distributions reach savings with fewer gears on balanced apps.")
}
