// Cluster scaling: the paper's motivation (§1) is that load imbalance — and
// with it the DVFS saving opportunity — grows with the cluster size. This
// example generates one application at several scales and tracks load
// balance, energy and time under the MAX algorithm.
//
//	go run ./examples/cluster_scaling [app]
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	app := "SPECFEM3D"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	six, err := repro.UniformGearSet(6)
	if err != nil {
		log.Fatal(err)
	}
	cfg := repro.DefaultWorkloadConfig()
	cfg.Iterations = 10

	fmt.Printf("cluster-size scaling of %s (MAX, 6-gear set)\n\n", app)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "processes\tload balance\tenergy\ttime\tsaved")
	fmt.Fprintln(w, "---------\t------------\t------\t----\t-----")
	for _, n := range []int{16, 32, 64, 96, 128} {
		tr, err := repro.GenerateScaled(app, n, cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := repro.Analyze(repro.AnalysisConfig{Trace: tr, Set: six, Algorithm: repro.MAX})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%d\t%.2f%%\t%.2f%%\t%.2f%%\t%.1f%%\n",
			n, res.LB*100, res.Norm.Energy*100, res.Norm.Time*100, res.Norm.Savings()*100)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlarger clusters → lower load balance → larger CPU-energy savings,")
	fmt.Println("which is why the paper evaluates at up to 128 processes.")
}
