// Custom application: the library is not limited to the paper's seven
// benchmarks — any iterative MPI application can be described as a trace
// and fed to the pipeline. This example hand-builds a master/worker-style
// application with a hot rank 0, runs both algorithms, and renders the
// before/after Gantt charts.
//
//	go run ./examples/custom_app
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

// buildTrace describes 12 iterations of a master/worker pattern: rank 0
// coordinates (heavy bookkeeping), workers compute unevenly sized chunks,
// everyone meets in an allreduce at the end of each iteration.
func buildTrace() *repro.Trace {
	const (
		nranks = 16
		iters  = 12
	)
	tr := repro.NewTrace("master-worker-16", nranks)
	for it := 0; it < iters; it++ {
		for r := 0; r < nranks; r++ {
			// Rank 0 does 40 ms of coordination work; workers do
			// 10–28 ms depending on their (static) chunk size.
			var compute float64
			if r == 0 {
				compute = 0.040
			} else {
				compute = 0.010 + 0.0012*float64(r)
			}
			tr.Add(r, repro.ComputeRecord(compute))
		}
		// The master scatters work descriptors, workers reply with results.
		for r := 1; r < nranks; r++ {
			tr.Add(0, repro.SendRecord(r, 2048, it))
			tr.Add(r, repro.RecvRecord(0, 2048, it))
			tr.Add(r, repro.SendRecord(0, 8192, 1000+it))
			tr.Add(0, repro.RecvRecord(r, 8192, 1000+it))
		}
		for r := 0; r < nranks; r++ {
			tr.Add(r, repro.CollRecord(repro.CollAllReduce, 64))
			tr.Add(r, repro.IterMarkRecord())
		}
	}
	return tr
}

func main() {
	tr := buildTrace()
	if err := tr.Validate(); err != nil {
		log.Fatalf("trace is malformed: %v", err)
	}

	six, err := repro.UniformGearSet(6)
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.Analyze(repro.AnalysisConfig{
		Trace:           tr,
		Set:             six,
		Algorithm:       repro.MAX,
		RecordTimelines: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: LB %.2f%%, PE %.2f%%\n", res.App, res.LB*100, res.PE*100)
	fmt.Printf("MAX with 6 gears: %s\n\n", res.Norm)

	fmt.Println("original execution:")
	if err := repro.RenderGantt(os.Stdout, res.Orig.Timeline, res.Orig.Time); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter MAX:")
	if err := repro.RenderGantt(os.Stdout, res.New.Timeline, res.New.Time); err != nil {
		log.Fatal(err)
	}

	// AVG with one over-clock gear: rank 0 speeds up, the run gets shorter.
	ocSet, err := six.WithOverclockGear(repro.OverclockGear())
	if err != nil {
		log.Fatal(err)
	}
	avg, err := repro.Analyze(repro.AnalysisConfig{Trace: tr, Set: ocSet, Algorithm: repro.AVG})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAVG with 6 gears + %s: %s (%d CPUs over-clocked)\n",
		repro.OverclockGear(), avg.Norm, avg.Assignment.Overclocked)
}
