// Power-cap scheduling: give the cluster a fixed power budget and compare
// what a uniform governor does against load-aware redistribution, which
// takes power from slack-rich ranks so the critical rank can keep its gear.
//
//	go run ./examples/powercap
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// WRF-128 is the paper's largest instance and moderately imbalanced —
	// exactly the case where redistributing a power budget beats uniformly
	// throttling every rank.
	cfg := repro.DefaultWorkloadConfig()
	cfg.Iterations = 10
	tr, err := repro.GenerateWorkload("WRF-128", cfg)
	if err != nil {
		log.Fatal(err)
	}

	six, err := repro.UniformGearSet(6)
	if err != nil {
		log.Fatal(err)
	}

	// The budget: 55% of the uncapped peak cluster power (all 128 ranks
	// computing at the top gear simultaneously).
	pm, err := repro.NewPowerModel(repro.DefaultPowerConfig())
	if err != nil {
		log.Fatal(err)
	}
	uncappedPeak := float64(tr.NumRanks()) * pm.Power(repro.PhaseCompute, repro.GearAtFrequency(repro.FMax))
	cap := 0.55 * uncappedPeak

	// A shared replay cache makes a whole cap sweep cost one skeleton: every
	// candidate schedule is scored by an O(events) retiming.
	cache := repro.NewReplayCache()
	res, err := repro.SchedulePowerCap(repro.PowerCapConfig{
		Trace: tr,
		Set:   six,
		Cap:   cap,
		Cache: cache,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("application:      %s (%d ranks)\n", res.App, tr.NumRanks())
	fmt.Printf("budget:           %.1f W (%.0f%% of the uncapped peak %.1f W)\n", cap, 100*cap/uncappedPeak, res.Uncapped.PeakPower)
	fmt.Printf("uncapped run:     time %.3f s, energy %.1f J, avg power %.1f W\n\n",
		res.Uncapped.Time, res.Uncapped.Energy, res.Uncapped.AveragePower)

	for _, sched := range []repro.PowerCapSchedule{res.Uniform, res.Redistributed} {
		fmt.Printf("%-13s time %.3f s (%.1f%%)  energy %.1f J (%.1f%%)  peak %.1f W  avg %.1f W\n",
			sched.Policy.String()+":", sched.Time, sched.NormTime*100,
			sched.Energy, sched.NormEnergy*100, sched.PeakPower, sched.AveragePower)
	}
	fmt.Printf("\n%d candidate schedules scored by skeleton retiming\n", res.Evaluations)

	// The redistribution's gear spread: how many ranks run at each level.
	counts := map[float64]int{}
	for _, g := range res.Redistributed.Gears {
		counts[g.Freq]++
	}
	fmt.Println("\nredistributed gear histogram:")
	for _, g := range six.Gears() {
		if n := counts[g.Freq]; n > 0 {
			fmt.Printf("  %.1f GHz: %3d ranks\n", g.Freq, n)
		}
	}
}
