// Quickstart: generate one imbalanced application trace, apply the MAX
// algorithm with the paper's six-gear set, and print the energy outcome.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// IS-64 is NAS Integer Sort on 64 ranks: load balance ~50%, one of the
	// paper's big winners. Generation is calibrated to Table 3.
	cfg := repro.DefaultWorkloadConfig()
	cfg.Iterations = 10
	tr, err := repro.GenerateWorkload("IS-64", cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's Table 1 gear set: 0.8–2.3 GHz in six even steps.
	six, err := repro.UniformGearSet(6)
	if err != nil {
		log.Fatal(err)
	}

	// Full pipeline: replay original, assign one gear per process so every
	// process finishes its computation with the most loaded one, replay
	// again, compare CPU energy.
	res, err := repro.Analyze(repro.AnalysisConfig{
		Trace:     tr,
		Set:       six,
		Algorithm: repro.MAX,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("application:     %s\n", res.App)
	fmt.Printf("load balance:    %.2f%%\n", res.LB*100)
	fmt.Printf("parallel eff.:   %.2f%%\n", res.PE*100)
	fmt.Printf("result:          %s\n", res.Norm)
	fmt.Printf("energy saved:    %.1f%% of CPU energy\n", res.Norm.Savings()*100)

	fmt.Println("\nper-process gear assignment (first 8 ranks):")
	for r := 0; r < 8; r++ {
		fmt.Printf("  rank %d: %s\n", r, res.Assignment.Gears[r])
	}
}
