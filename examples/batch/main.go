// Batch evaluation: score many gear-set candidates against one trace in a
// single pass. The baseline replay and the timing skeleton are computed
// once; every candidate's DVFS replay then happens inside one
// TimingSkeleton.RetimeBatch walk (struct-of-arrays over the schedule), so
// candidate N+1 costs an O(events) retiming, not a fresh simulation — while
// staying bit-identical to simulating each candidate from scratch.
//
//	go run ./examples/batch
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.DefaultWorkloadConfig()
	cfg.Iterations = 10
	tr, err := repro.GenerateWorkload("IS-64", cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The candidates: both balancing algorithms over a spread of gear-set
	// shapes — the kind of sweep the /v1/analyze/batch endpoint serves.
	uni6, _ := repro.UniformGearSet(6)
	uni4, _ := repro.UniformGearSet(4)
	exp6, _ := repro.ExponentialGearSet(6)
	items := []repro.AnalysisBatchItem{
		{Set: uni6, Algorithm: repro.MAX},
		{Set: uni6, Algorithm: repro.AVG},
		{Set: uni4, Algorithm: repro.MAX},
		{Set: exp6, Algorithm: repro.MAX},
		{Set: repro.ContinuousLimited(), Algorithm: repro.MAX},
	}

	results, errs, err := repro.AnalyzeBatch(repro.AnalysisConfig{Trace: tr}, items)
	if err != nil {
		log.Fatal(err) // shared-stage failure: every item was doomed
	}

	fmt.Printf("application: %s (%d candidates, one skeleton walk)\n\n", tr.App, len(items))
	fmt.Printf("%-22s %-9s %-14s %-12s\n", "gear set", "algo", "energy (norm)", "time (norm)")
	for i, item := range items {
		if errs[i] != nil {
			fmt.Printf("%-22s %-9s FAILED: %v\n", item.Set.Name(), item.Algorithm, errs[i])
			continue
		}
		r := results[i]
		fmt.Printf("%-22s %-9s %-14.4f %-12.4f\n", item.Set.Name(), item.Algorithm, r.Norm.Energy, r.Norm.Time)
	}

	// The same vectors through the lower-level API: build the skeleton
	// once, then hand RetimeBatch the raw frequency vectors. This is what
	// AnalyzeBatch (and the serving endpoint) run underneath.
	skel, err := repro.BuildTimingSkeleton(tr, repro.DefaultPlatform(), repro.SimOptions{
		Beta: repro.DefaultBeta, FMax: repro.FMax,
	})
	if err != nil {
		log.Fatal(err)
	}
	vecs := make([][]float64, 0, len(items))
	for i := range items {
		if errs[i] == nil {
			vecs = append(vecs, results[i].Assignment.Freqs())
		}
	}
	batch, err := skel.RetimeBatch(vecs)
	if err != nil {
		log.Fatal(err)
	}
	first := batch.At(0)
	fmt.Printf("\nraw RetimeBatch over %d vectors: candidate 0 runtime %.4fs\n", len(vecs), first.Time)
}
