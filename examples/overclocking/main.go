// Overclocking: the paper's AVG algorithm balances processes to the AVERAGE
// computation time, over-clocking the most loaded CPUs. This example
// reproduces the Figure 10 comparison on a few applications and shows the
// trade: MAX saves slightly more CPU energy, AVG also shortens execution
// time (which saves energy in the rest of the system).
//
//	go run ./examples/overclocking
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	six, err := repro.UniformGearSet(6)
	if err != nil {
		log.Fatal(err)
	}
	// AVG gets one extra gear: 2.6 GHz at 1.6 V, on the same voltage line.
	ocSet, err := six.WithOverclockGear(repro.OverclockGear())
	if err != nil {
		log.Fatal(err)
	}

	cfg := repro.DefaultWorkloadConfig()
	cfg.Iterations = 10

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "application\tE-MAX\tE-AVG\tT-MAX\tT-AVG\tEDP-MAX\tEDP-AVG\toverclocked")
	fmt.Fprintln(w, "-----------\t-----\t-----\t-----\t-----\t-------\t-------\t-----------")
	for _, name := range []string{"BT-MZ-32", "IS-64", "SPECFEM3D-96", "PEPC-128", "CG-32"} {
		tr, err := repro.GenerateWorkload(name, cfg)
		if err != nil {
			log.Fatal(err)
		}
		maxRes, avgRes, err := repro.CompareAlgorithms(repro.AnalysisConfig{Trace: tr}, six, ocSet)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%% of CPUs\n",
			name,
			maxRes.Norm.Energy*100, avgRes.Norm.Energy*100,
			maxRes.Norm.Time*100, avgRes.Norm.Time*100,
			maxRes.Norm.EDP*100, avgRes.Norm.EDP*100,
			avgRes.Assignment.OverclockedFraction()*100)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhighly imbalanced applications need very few CPUs over-clocked:")
	fmt.Println("the single critical process gets faster, everyone else slows down and saves.")
}
