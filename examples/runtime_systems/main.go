// Runtime systems: compares three generations of DVFS control on the same
// application — the adaptive Jitter runtime (prior work), the paper's
// static MAX assignment, and the per-phase extension — on PEPC, the
// application whose two anti-correlated computation phases defeat any
// single per-process setting.
//
//	go run ./examples/runtime_systems
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	cfg := repro.DefaultWorkloadConfig()
	cfg.Iterations = 10
	tr, err := repro.GenerateWorkload("PEPC-128", cfg)
	if err != nil {
		log.Fatal(err)
	}
	six, err := repro.UniformGearSet(6)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Adaptive runtime: per-iteration relative-slack gear control.
	dyn, err := repro.RunJitter(repro.JitterConfig{Trace: tr, Set: six})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Static per-process MAX (the paper's baseline algorithm).
	static, err := repro.Analyze(repro.AnalysisConfig{Trace: tr, Set: six, Algorithm: repro.MAX})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Per-phase MAX: one gear per process per computation phase.
	phasedRes, err := repro.RunPhased(repro.PhasedConfig{Trace: tr, Set: six})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("PEPC-128 (LB %.1f%%, %d computation phases per iteration)\n\n",
		static.LB*100, phasedRes.Phases)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "system\tenergy\ttime\tnotes")
	fmt.Fprintln(w, "------\t------\t----\t-----")
	fmt.Fprintf(w, "Jitter (adaptive)\t%.1f%%\t%.1f%%\t%d gear switches\n",
		dyn.Norm.Energy*100, dyn.Norm.Time*100, dyn.GearSwitches)
	fmt.Fprintf(w, "MAX (static, per process)\t%.1f%%\t%.1f%%\tpaper's baseline\n",
		static.Norm.Energy*100, static.Norm.Time*100)
	fmt.Fprintf(w, "MAX (static, per phase)\t%.1f%%\t%.1f%%\tpaper's future work\n",
		phasedRes.Norm.Energy*100, phasedRes.Norm.Time*100)
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nany single per-process setting stretches PEPC (two phases with opposite")
	fmt.Println("imbalance); assigning gears per phase restores the critical path and saves more.")
}
