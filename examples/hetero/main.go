// Heterogeneous machines: the paper balances load on a homogeneous
// cluster, where the optimal compute distribution is uniform. This example
// layers the machine model both ways the platform refactor allows —
// per-rank capability and a two-tier node topology — and shows that on
// such machines the optimum moves:
//
//   - with half the ranks 1.5× fast, a *deliberately imbalanced*
//     capability-proportional work share beats the paper's uniform split;
//
//   - with a slow inter-node link, the topology-aware placement search
//     recovers the locality a random scheduler throws away.
//
// Run it with:
//
//	go run ./examples/hetero
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.DefaultWorkloadConfig()
	cfg.Iterations = 5
	tr, err := repro.GenerateWorkload("WRF-128", cfg)
	if err != nil {
		log.Fatal(err)
	}
	n := tr.NumRanks()
	opts := repro.SimOptions{Beta: repro.DefaultBeta, FMax: repro.FMax}
	cache := repro.NewReplayCache()

	// Part 1 — capability. Half the ranks run 1.5× the nominal speed.
	eff := make([]float64, n)
	for r := range eff {
		eff[r] = 1
		if r < n/2 {
			eff[r] = 1.5
		}
	}
	m := repro.Machine{Base: cfg.Platform, Cap: &repro.Capability{Efficiency: eff}}

	flat, err := cache.Original(tr, cfg.Platform, opts)
	if err != nil {
		log.Fatal(err)
	}
	balanced, err := cache.OriginalMachine(tr, m, opts)
	if err != nil {
		log.Fatal(err)
	}
	// Re-share the same total work in proportion to speed: rank r gets
	// share[r] = n·eff[r]/Σeff, so every rank finishes together.
	var sum float64
	for _, e := range eff {
		sum += e
	}
	share := make([]float64, n)
	for r := range share {
		share[r] = float64(n) * eff[r] / sum
	}
	skel, err := cache.SkeletonForMachine(tr, m, opts)
	if err != nil {
		log.Fatal(err)
	}
	prop, err := skel.RetimeScaled(nil, share, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on a half-fast machine (%d ranks, fast half 1.5×):\n", tr.App, n)
	fmt.Printf("  homogeneous reference        %.4f s\n", flat.Time)
	fmt.Printf("  uniform split (paper)        %.4f s\n", balanced.Time)
	fmt.Printf("  capability-proportional      %.4f s  (%.2f× faster than uniform)\n\n",
		prop.Time, balanced.Time/prop.Time)

	// Part 2 — topology. A serialized pipeline (rank r receives from r−1,
	// computes, sends to r+1) pays every cross-node hop on the critical
	// path, so placement is the whole ballgame.
	const (
		ranks   = 16
		perNode = 4
		bytes   = 1 << 16
	)
	pipe := repro.NewTrace("pipeline", ranks)
	for it := 0; it < 2; it++ {
		for r := 0; r < ranks; r++ {
			if r > 0 {
				pipe.Add(r, repro.RecvRecord(r-1, bytes, it))
			}
			pipe.Add(r, repro.ComputeRecord(0.0005))
			if r < ranks-1 {
				pipe.Add(r, repro.SendRecord(r+1, bytes, it))
			}
			pipe.Add(r, repro.IterMarkRecord())
		}
	}
	twoTier := func(pl []int) repro.Machine {
		return repro.Machine{
			Base: cfg.Platform,
			Topo: &repro.MachineTopology{
				Placement: pl,
				Intra:     repro.Link{Latency: 5e-7, Bandwidth: 6e9},
				Inter:     repro.Link{Latency: 2e-5, Bandwidth: 1e8},
			},
		}
	}
	block, err := repro.SimulateMachine(pipe, twoTier(repro.BlockPlacement(ranks, perNode)), opts)
	if err != nil {
		log.Fatal(err)
	}
	shuffledPl := repro.ShuffledPlacement(ranks, perNode, 5)
	shuffled, err := repro.SimulateMachine(pipe, twoTier(shuffledPl), opts)
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.OptimizePlacement(repro.PlacementConfig{
		Trace:   pipe,
		Machine: twoTier(shuffledPl),
		Beta:    repro.DefaultBeta,
		BetaSet: true,
		FMax:    repro.FMax,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline on two-tier topology (%d ranks, %d per node, slow inter-node link):\n", ranks, perNode)
	fmt.Printf("  block placement              %.5f s\n", block.Time)
	fmt.Printf("  random placement             %.5f s\n", shuffled.Time)
	fmt.Printf("  after placement search       %.5f s  (%d swaps, %d replays)\n",
		res.Time, res.Swaps, res.Evaluations)
}
