package repro

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus the extension studies. Each benchmark runs the
// experiment end to end (workload generation is cached across iterations)
// and reports the headline normalized-energy numbers as custom metrics so
// `go test -bench . -benchmem` regenerates every reported artifact:
//
//	go test -bench=Figure2 -benchmem
//
// Absolute wall-clock numbers measure this simulator, not the paper's
// PowerPC cluster; the *shape* of the reported metrics is what reproduces
// the paper (see EXPERIMENTS.md).

import (
	"io"
	"math/rand"
	"testing"

	"repro/internal/experiments"
)

// benchSuite shares generated (calibrated) traces across all benchmarks.
var benchSuite = experiments.QuickSuite()

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the trace cache outside the timed region.
	if err := e.Run(benchSuite, io.Discard); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(benchSuite, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1GearSets(b *testing.B)        { runExperiment(b, "table1") }
func BenchmarkTable2GearSets(b *testing.B)        { runExperiment(b, "table2") }
func BenchmarkTable3Characteristics(b *testing.B) { runExperiment(b, "table3") }
func BenchmarkFigure1Gantt(b *testing.B)          { runExperiment(b, "fig1") }
func BenchmarkFigure3EnergyVsLB(b *testing.B)     { runExperiment(b, "fig3") }
func BenchmarkFigure4Exponential(b *testing.B)    { runExperiment(b, "fig4") }
func BenchmarkFigure5Beta(b *testing.B)           { runExperiment(b, "fig5") }
func BenchmarkFigure6StaticPower(b *testing.B)    { runExperiment(b, "fig6") }
func BenchmarkFigure7ActivityFactor(b *testing.B) { runExperiment(b, "fig7") }
func BenchmarkFigure8AVGContinuous(b *testing.B)  { runExperiment(b, "fig8") }
func BenchmarkFigure9AVGDiscrete(b *testing.B)    { runExperiment(b, "fig9") }
func BenchmarkFigure10MaxVsAvg(b *testing.B)      { runExperiment(b, "fig10") }
func BenchmarkScalingStudy(b *testing.B)          { runExperiment(b, "scaling") }
func BenchmarkAblateProtocol(b *testing.B)        { runExperiment(b, "ablate-protocol") }
func BenchmarkAblateCollectives(b *testing.B)     { runExperiment(b, "ablate-coll") }
func BenchmarkAblateRounding(b *testing.B)        { runExperiment(b, "ablate-rounding") }
func BenchmarkJitterVsStatic(b *testing.B)        { runExperiment(b, "jitter") }
func BenchmarkPerPhaseDVFS(b *testing.B)          { runExperiment(b, "phased") }
func BenchmarkOptimizeGears(b *testing.B)         { runExperiment(b, "optimize-gears") }

// BenchmarkFigure2GearSetSizes additionally reports the headline result of
// the gear-set study: the average normalized energy of the six-gear set and
// its gap to the limited continuous set.
func BenchmarkFigure2GearSetSizes(b *testing.B) {
	// Warm cache.
	if _, err := benchSuite.Figure2(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sixAvg, gapAvg float64
	for i := 0; i < b.N; i++ {
		sw, err := benchSuite.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		sixAvg, gapAvg = 0, 0
		for _, app := range sw.Apps {
			six, err := sw.Cell(app, "6g")
			if err != nil {
				b.Fatal(err)
			}
			lim, err := sw.Cell(app, "limited")
			if err != nil {
				b.Fatal(err)
			}
			sixAvg += six.Energy
			gapAvg += six.Energy - lim.Energy
		}
		sixAvg /= float64(len(sw.Apps))
		gapAvg /= float64(len(sw.Apps))
	}
	b.ReportMetric(sixAvg*100, "energy6g_%")
	b.ReportMetric(gapAvg*100, "gap_to_continuous_%")
}

// Micro-benchmarks of the load-bearing building blocks, so performance
// regressions in the simulator or the algorithms are visible in isolation.

// wrfReplayInputs builds the WRF-128 trace plus a realistic MAX gear
// vector, the single-evaluation workload the replay benchmarks share.
func wrfReplayInputs(b *testing.B) (*Trace, Platform, SimOptions, []float64) {
	b.Helper()
	tr, err := benchSuite.Trace("WRF-128")
	if err != nil {
		b.Fatal(err)
	}
	p := benchSuite.Platform()
	opts := SimOptions{Beta: benchSuite.Beta, FMax: benchSuite.Gen.FMax}
	base, err := Simulate(tr, p, opts)
	if err != nil {
		b.Fatal(err)
	}
	bal, err := NewBalancer(ContinuousLimited(), benchSuite.Beta)
	if err != nil {
		b.Fatal(err)
	}
	a, err := bal.Assign(MAX, base.Compute)
	if err != nil {
		b.Fatal(err)
	}
	return tr, p, opts, a.Freqs()
}

// BenchmarkSimulateWRF128 measures one full event-driven replay of WRF-128
// under a MAX gear assignment — the cost every what-if evaluation paid
// before skeleton retiming.
func BenchmarkSimulateWRF128(b *testing.B) {
	tr, p, opts, freqs := wrfReplayInputs(b)
	opts.Freqs = freqs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(tr, p, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRetimeWRF128 measures the same evaluation as
// BenchmarkSimulateWRF128 off the recorded timing skeleton: bit-identical
// results from a single allocation-free forward pass.
func BenchmarkRetimeWRF128(b *testing.B) {
	tr, p, opts, freqs := wrfReplayInputs(b)
	sk, err := BuildTimingSkeleton(tr, p, opts)
	if err != nil {
		b.Fatal(err)
	}
	var res SimResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sk.RetimeInto(&res, freqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRetimeDelta measures the optimizers' hot path on WRF-128:
// re-scoring after a single-rank gear change through one reused DeltaState.
// The candidate cycle is a palindromic random walk, so every evaluation —
// including the wrap-around — dirties exactly one rank, the neighborhood
// shape gear searches and power-cap refinement actually produce.
func BenchmarkRetimeDelta(b *testing.B) {
	tr, p, opts, freqs := wrfReplayInputs(b)
	sk, err := BuildTimingSkeleton(tr, p, opts)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const half = 32
	cands := make([][]float64, 0, 2*half)
	cur := append([]float64(nil), freqs...)
	for i := 0; i < half; i++ {
		cur = append([]float64(nil), cur...)
		cur[rng.Intn(len(cur))] = 0.8 + rng.Float64()*1.5
		cands = append(cands, cur)
	}
	for i := half - 2; i >= 0; i-- {
		cands = append(cands, cands[i])
	}
	var st DeltaState
	if _, err := sk.RetimeDelta(&st, freqs, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.RetimeDelta(&st, cands[i%len(cands)], nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRetimeBatch measures scoring 64 independent gear vectors on
// WRF-128 in one struct-of-arrays schedule walk; ns/op covers the whole
// batch (divide by 64 to compare with BenchmarkRetimeWRF128's single pass).
func BenchmarkRetimeBatch(b *testing.B) {
	tr, p, opts, freqs := wrfReplayInputs(b)
	sk, err := BuildTimingSkeleton(tr, p, opts)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	cands := make([][]float64, 64)
	for c := range cands {
		v := append([]float64(nil), freqs...)
		v[rng.Intn(len(v))] = 0.8 + rng.Float64()*1.5
		cands[c] = v
	}
	var res BatchResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sk.RetimeBatchInto(&res, cands); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(cands)), "candidates/op")
}

// BenchmarkAnalyzeWRF128 measures the full uncached pipeline (baseline
// replay + assignment + DVFS replay + energy accounting) on WRF-128.
func BenchmarkAnalyzeWRF128(b *testing.B) {
	tr, err := benchSuite.Trace("WRF-128")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(AnalysisConfig{Trace: tr, Set: ContinuousLimited(), Algorithm: MAX}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateIS64(b *testing.B) {
	cfg := DefaultWorkloadConfig()
	cfg.Iterations = 5
	cfg.SkipPECalibration = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateWorkload("IS-64", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssignMAX128(b *testing.B) {
	tr, err := benchSuite.Trace("PEPC-128")
	if err != nil {
		b.Fatal(err)
	}
	comp := tr.ComputeTimes()
	six, err := UniformGearSet(6)
	if err != nil {
		b.Fatal(err)
	}
	bal, err := NewBalancer(six, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bal.Assign(MAX, comp); err != nil {
			b.Fatal(err)
		}
	}
}
