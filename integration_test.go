package repro

// End-to-end integration tests across the whole pipeline, exercising the
// public API the way the examples and cmd tools do.

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestFullPipelineAllApplications generates every Table 3 instance (without
// the slow PE bisection), runs MAX and AVG, and cross-checks the paper's
// global invariants on each.
func TestFullPipelineAllApplications(t *testing.T) {
	cfg := DefaultWorkloadConfig()
	cfg.Iterations = 4
	cfg.SkipPECalibration = true

	six, err := UniformGearSet(6)
	if err != nil {
		t.Fatal(err)
	}
	ocSet, err := six.WithOverclockGear(OverclockGear())
	if err != nil {
		t.Fatal(err)
	}

	for _, inst := range Applications() {
		inst := inst
		t.Run(inst.Name, func(t *testing.T) {
			tr, err := GenerateWorkload(inst.Name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			maxRes, avgRes, err := CompareAlgorithms(AnalysisConfig{Trace: tr}, six, ocSet)
			if err != nil {
				t.Fatal(err)
			}
			// Load balance matches the paper's characterization.
			if math.Abs(maxRes.LB-inst.TargetLB) > 0.006 {
				t.Errorf("LB %.4f vs target %.4f", maxRes.LB, inst.TargetLB)
			}
			// MAX never over-clocks; energy never increases.
			if maxRes.Assignment.Overclocked != 0 {
				t.Error("MAX overclocked")
			}
			if maxRes.Norm.Energy > 1+1e-9 {
				t.Errorf("MAX energy %.4f above 1", maxRes.Norm.Energy)
			}
			// AVG is at least as fast as MAX.
			if avgRes.Norm.Time > maxRes.Norm.Time+0.005 {
				t.Errorf("AVG time %.4f above MAX %.4f", avgRes.Norm.Time, maxRes.Norm.Time)
			}
			// Savings order: more imbalance, more savings (coarse check on
			// the extremes only, done across apps below).
			if maxRes.Norm.Energy <= 0 {
				t.Errorf("energy %v", maxRes.Norm.Energy)
			}
		})
	}
}

// TestHeadlineNumbers pins the paper's headline claims with the fully
// calibrated 20-iteration traces for the two extreme applications.
func TestHeadlineNumbers(t *testing.T) {
	if testing.Short() {
		t.Skip("full calibration in short mode")
	}
	cfg := DefaultWorkloadConfig() // 20 iterations, PE calibration on

	// BT-MZ-32: up to ~60% CPU energy saving (paper abstract/§6).
	bt, err := GenerateWorkload("BT-MZ-32", cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(AnalysisConfig{Trace: bt, Set: ContinuousUnlimited(), Algorithm: MAX})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Norm.Savings(); s < 0.5 || s > 0.8 {
		t.Errorf("BT-MZ savings %.1f%%, paper reports up to ~60%%", s*100)
	}

	// CG-32: the best balanced app cannot save anything with the 6-gear
	// set (paper §5.3.1).
	cg, err := GenerateWorkload("CG-32", cfg)
	if err != nil {
		t.Fatal(err)
	}
	six, _ := UniformGearSet(6)
	res, err = Analyze(AnalysisConfig{Trace: cg, Set: six, Algorithm: MAX})
	if err != nil {
		t.Fatal(err)
	}
	if res.Norm.Savings() > 0.01 {
		t.Errorf("CG-32 savings %.2f%%, want ~0", res.Norm.Savings()*100)
	}
}

func TestJitterFacade(t *testing.T) {
	tr, err := GenerateWorkload("IS-32", quickWorkloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	six, _ := UniformGearSet(6)
	res, err := RunJitter(JitterConfig{Trace: tr, Set: six})
	if err != nil {
		t.Fatal(err)
	}
	if res.Norm.Energy >= 1 {
		t.Errorf("jitter energy %v on IS-32", res.Norm.Energy)
	}
}

func TestPhasedFacade(t *testing.T) {
	tr, err := GenerateWorkload("PEPC-128", quickWorkloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	six, _ := UniformGearSet(6)
	res, err := RunPhased(PhasedConfig{Trace: tr, Set: six})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases != 2 {
		t.Errorf("PEPC phases = %d", res.Phases)
	}
	if res.Norm.Time > 1.02 {
		t.Errorf("per-phase PEPC time %v", res.Norm.Time)
	}
}

func TestParaverFacadeRoundTrip(t *testing.T) {
	tr, err := GenerateWorkload("MG-32", quickWorkloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteParaver(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "#Paraver") {
		t.Error("missing .prv header")
	}
	back, err := ReadParaver(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := tr.ComputeTimes(), back.ComputeTimes()
	for r := range a {
		if math.Abs(a[r]-b[r]) > 1e-6 {
			t.Fatalf("rank %d compute differs", r)
		}
	}
}

func TestGearSearchFacade(t *testing.T) {
	tr, err := GenerateWorkload("BT-MZ-32", quickWorkloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := OptimizeGearSet(GearSearchConfig{
		Traces: []*Trace{tr},
		NGears: 3,
		Grid:   0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Size() != 3 {
		t.Errorf("gears = %d", res.Set.Size())
	}
	if res.Energy > res.UniformEnergy+0.02 {
		t.Errorf("optimized %v worse than uniform %v", res.Energy, res.UniformEnergy)
	}
}
