package repro

import (
	"io"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/experiments"
	"repro/internal/gantt"
	"repro/internal/gearopt"
	"repro/internal/jitter"
	"repro/internal/metrics"
	"repro/internal/paraver"
	"repro/internal/phased"
	"repro/internal/placement"
	"repro/internal/power"
	"repro/internal/powercap"
	"repro/internal/predict"
	"repro/internal/rebalance"
	"repro/internal/server"
	"repro/internal/timemodel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Re-exported types: the facade keeps one import path for library users
// while the implementation stays in focused internal packages.
type (
	// Trace is a message-passing execution trace (per-rank record lists).
	Trace = trace.Trace
	// Record is one trace event (compute burst, send, recv, collective).
	Record = trace.Record
	// GearSet is a DVFS gear set (continuous range or discrete gears).
	GearSet = dvfs.Set
	// Gear is one frequency/voltage operating point.
	Gear = dvfs.Gear
	// Platform models the interconnect of the replay simulator.
	Platform = dimemas.Platform
	// PowerConfig parameterizes the CPU power model.
	PowerConfig = power.Config
	// AnalysisConfig parameterizes one end-to-end pipeline run.
	AnalysisConfig = analysis.Config
	// AnalysisResult is the outcome of one pipeline run.
	AnalysisResult = analysis.Result
	// Assignment is a per-rank gear decision.
	Assignment = core.Assignment
	// Algorithm selects the balancing policy (MAX or AVG).
	Algorithm = core.Algorithm
	// WorkloadConfig controls synthetic trace generation.
	WorkloadConfig = workload.Config
	// WorkloadInstance identifies one application instance (e.g. CG-64).
	WorkloadInstance = workload.Instance
	// NormalizedResult holds energy/time/EDP relative to the original run.
	NormalizedResult = metrics.Result
	// ExperimentSuite generates, caches and analyzes the paper's workloads.
	ExperimentSuite = experiments.Suite
	// Experiment is one runnable table/figure reproduction.
	Experiment = experiments.Experiment
)

// Balancing algorithms (§3.1 of the paper).
const (
	// MAX balances all processes to the maximum computation time.
	MAX = core.MAX
	// AVG balances to the average, over-clocking the most loaded processes.
	AVG = core.AVG
)

// Nominal platform constants (§3.3).
const (
	// FMax is the manufacturer-specified top frequency in GHz.
	FMax = dvfs.FMax
	// FMin is the lowest frequency of the limited gear sets in GHz.
	FMin = dvfs.FMin
	// DefaultBeta is the paper's baseline memory-boundedness parameter
	// (§3.2) — what the analysis pipeline assumes when β is left unset.
	DefaultBeta = timemodel.DefaultBeta
)

// Analyze runs the full pipeline: replay the original execution, assign
// per-process gears with the configured algorithm/gear set, replay the
// rescaled execution, and account CPU energy.
func Analyze(cfg AnalysisConfig) (*AnalysisResult, error) { return analysis.Run(cfg) }

// AnalysisBatchItem is one gear assignment of a batched analysis: the gear
// set, algorithm and rounding rule that vary per what-if question.
type AnalysisBatchItem = analysis.BatchItem

// AnalyzeBatch answers len(items) what-if questions about cfg.Trace in one
// pass: the baseline replay and the timing skeleton are computed once and
// every DVFS replay happens inside a single TimingSkeleton.RetimeBatch
// walk. Each item's result is bit-identical to what Analyze returns for the
// same parameters. The two returned slices are index-aligned with items —
// exactly one of results[i], errs[i] is non-nil, and one bad item never
// fails its neighbors; the error return is reserved for shared-stage
// failures. cfg.Set/Algorithm/Rounding are ignored; RecordTimelines is
// rejected.
func AnalyzeBatch(cfg AnalysisConfig, items []AnalysisBatchItem) (results []*AnalysisResult, errs []error, err error) {
	return analysis.RunBatch(cfg, items)
}

// Replay engine — the simulator underneath every experiment, exposed for
// users who want raw executions (and for the benchmarks that track it).

// SimOptions configures one replay: β, nominal FMax, optional per-rank
// frequencies, timeline recording and a cancellation context.
type SimOptions = dimemas.Options

// SimResult reports one simulated execution (total time, per-rank
// compute/finish, optional timeline).
type SimResult = dimemas.Result

// Simulate replays a trace on a platform. It is deterministic: the same
// inputs always produce the same result, bit for bit.
func Simulate(t *Trace, p Platform, opts SimOptions) (*SimResult, error) {
	return dimemas.Simulate(t, p, opts)
}

// TimingSkeleton is the frequency-independent timing skeleton of one
// (trace, platform, β, FMax) combination: the replayed communication
// structure recorded once, so that any per-rank gear assignment can be
// re-timed with a single O(events) forward pass. Retime results are
// bit-identical to Simulate at a fraction of the cost — it is what powers
// sweeps, gear searches and the batched serving endpoint. Beyond
// Retime/RetimeScaled it offers two faster tiers, both still bit-identical:
// RetimeDelta(state, freqs, scale) re-times only the event cone affected by
// the ranks whose parameters changed since the previous call on the same
// DeltaState (the optimizers' hot path), and RetimeBatch(freqSets) scores N
// gear vectors in one struct-of-arrays walk over the schedule (the backend
// of the /v1/analyze/batch endpoint).
type TimingSkeleton = dimemas.Skeleton

// BuildTimingSkeleton records the timing skeleton of one trace/platform
// combination. Prefer ReplayCache.SkeletonFor when evaluating many traces —
// it memoizes skeletons alongside baseline replays.
func BuildTimingSkeleton(t *Trace, p Platform, opts SimOptions) (*TimingSkeleton, error) {
	return dimemas.BuildSkeleton(t, p, opts)
}

// DeltaState carries the checkpoint TimingSkeleton.RetimeDelta amortizes
// across calls: the previous pass's per-op clocks and collective arrival
// rows. A zero DeltaState is ready to use (the first call runs one full
// recording pass); reuse one state per search loop and per goroutine.
type DeltaState = dimemas.DeltaState

// BatchResult holds every candidate's outcome from one
// TimingSkeleton.RetimeBatch call in candidate-major flat arrays; At(c)
// returns candidate c's view as a SimResult.
type BatchResult = dimemas.BatchResult

// ReplayCache memoizes baseline (all-ranks-at-FMax) replays and timing
// skeletons keyed by (trace, β, FMax, platform). Set AnalysisConfig.Cache —
// or the Cache field of the jitter/phased/gear-search configs — to share
// the original execution across many what-if runs of the same trace and to
// turn every DVFS replay into a skeleton retiming. Safe for concurrent use.
type ReplayCache = dimemas.ReplayCache

// CacheStats snapshots a ReplayCache's hit/miss/eviction counters.
type CacheStats = dimemas.CacheStats

// NewReplayCache returns an empty, unbounded baseline-replay cache.
func NewReplayCache() *ReplayCache { return dimemas.NewReplayCache() }

// NewReplayCacheWithLimit returns a baseline-replay cache bounded to at
// most maxEntries memoized replays (LRU eviction) — use it in long-running
// processes such as the pwrsimd daemon. maxEntries ≤ 0 means unbounded.
func NewReplayCacheWithLimit(maxEntries int) *ReplayCache {
	return dimemas.NewReplayCacheWithLimit(maxEntries)
}

// CompareAlgorithms runs MAX and AVG on the same trace with their
// respective gear sets (Figure 10 of the paper).
func CompareAlgorithms(cfg AnalysisConfig, maxSet, avgSet *GearSet) (*AnalysisResult, *AnalysisResult, error) {
	return analysis.Compare(cfg, maxSet, avgSet)
}

// Balancer computes per-rank gear assignments from computation times; use
// it directly when you already have per-process profiles and do not need
// the replay pipeline.
type Balancer = core.Balancer

// NewBalancer builds a Balancer over a gear set with the given memory-
// boundedness parameter β.
func NewBalancer(set *GearSet, beta float64) (*Balancer, error) {
	return core.NewBalancer(set, beta)
}

// Gear set constructors (§3.3).

// UniformGearSet returns the evenly distributed discrete set with n gears
// between 0.8 and 2.3 GHz (Table 1 shows n = 6).
func UniformGearSet(n int) (*GearSet, error) { return dvfs.Uniform(n) }

// ExponentialGearSet returns the exponentially distributed set with n gears
// (Table 2 shows n = 6).
func ExponentialGearSet(n int) (*GearSet, error) { return dvfs.Exponential(n) }

// ContinuousUnlimited returns the 0–2.3 GHz continuous set.
func ContinuousUnlimited() *GearSet { return dvfs.ContinuousUnlimited() }

// ContinuousLimited returns the 0.8–2.3 GHz continuous set.
func ContinuousLimited() *GearSet { return dvfs.ContinuousLimited() }

// OverclockGear returns the extra (2.6 GHz, 1.6 V) gear the paper adds to
// the discrete six-gear set for the AVG algorithm.
func OverclockGear() Gear { return Gear{Freq: dvfs.OverclockFreq, Volt: dvfs.OverclockVolt} }

// Workload generation.

// DefaultWorkloadConfig returns the generation parameters used for the
// reported experiments (20 iterations, Myrinet-class platform).
func DefaultWorkloadConfig() WorkloadConfig { return workload.DefaultConfig() }

// Applications lists the twelve Table 3 instances.
func Applications() []WorkloadInstance { return workload.Table3() }

// GenerateWorkload builds the calibrated trace of a Table 3 instance by
// name (e.g. "IS-64").
func GenerateWorkload(name string, cfg WorkloadConfig) (*Trace, error) {
	inst, err := workload.FindInstance(name)
	if err != nil {
		return nil, err
	}
	return workload.Generate(inst, cfg)
}

// GenerateScaled builds a trace for an application at an arbitrary process
// count, interpolating the Table 3 characteristics (cluster-size studies).
func GenerateScaled(app string, nprocs int, cfg WorkloadConfig) (*Trace, error) {
	inst, err := workload.InstanceFor(app, nprocs)
	if err != nil {
		return nil, err
	}
	return workload.Generate(inst, cfg)
}

// DefaultPlatform returns the Myrinet-class interconnect model.
func DefaultPlatform() Platform { return dimemas.DefaultPlatform() }

// DefaultPowerConfig returns the paper's baseline power model (activity
// ratio 1.5, static fraction 20%).
func DefaultPowerConfig() PowerConfig { return power.DefaultConfig() }

// Experiments.

// NewExperimentSuite builds a suite over a generation config.
func NewExperimentSuite(cfg WorkloadConfig) *ExperimentSuite { return experiments.NewSuite(cfg) }

// AllExperiments lists every table/figure reproduction plus the extensions.
func AllExperiments() []Experiment { return experiments.All() }

// ExperimentByID finds one experiment (e.g. "fig2").
func ExperimentByID(id string) (Experiment, error) { return experiments.ByID(id) }

// Trace construction — describe your own iterative MPI application and run
// it through the pipeline (see examples/custom_app).

// Collective is the set of modeled collective operations.
type Collective = trace.Collective

// Collective kinds.
const (
	CollBarrier   = trace.CollBarrier
	CollBcast     = trace.CollBcast
	CollReduce    = trace.CollReduce
	CollAllReduce = trace.CollAllReduce
	CollAllGather = trace.CollAllGather
	CollAllToAll  = trace.CollAllToAll
)

// NewTrace returns an empty trace for nranks ranks.
func NewTrace(app string, nranks int) *Trace { return trace.New(app, nranks) }

// ComputeRecord returns a computation burst of the given seconds (measured
// at the nominal top frequency).
func ComputeRecord(seconds float64) Record { return trace.Compute(seconds) }

// SendRecord returns a point-to-point send.
func SendRecord(peer int, bytes int64, tag int) Record { return trace.Send(peer, bytes, tag) }

// RecvRecord returns a point-to-point receive.
func RecvRecord(peer int, bytes int64, tag int) Record { return trace.Recv(peer, bytes, tag) }

// CollRecord returns a collective operation; bytes is the per-rank payload.
func CollRecord(c Collective, bytes int64) Record { return trace.Coll(c, bytes) }

// IterMarkRecord returns an iteration boundary marker.
func IterMarkRecord() Record { return trace.IterMark() }

// Trace I/O.

// ReadTrace parses a trace in the text format.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// WriteTrace serializes a trace in the text format.
func WriteTrace(w io.Writer, t *Trace) error { return trace.Write(w, t) }

// RenderGantt writes an ASCII Gantt chart of a recorded run (Figure 1).
func RenderGantt(w io.Writer, timelines [][]dimemas.Segment, until float64) error {
	return gantt.Render(w, timelines, until, gantt.Options{})
}

// Paraver interoperability — the trace format the paper's pipeline starts
// from.

// ReadParaver imports the supported subset of a Paraver .prv file.
func ReadParaver(r io.Reader) (*Trace, error) { return paraver.Read(r) }

// WriteParaver exports a trace as a Paraver .prv file for inspection in the
// Paraver GUI.
func WriteParaver(w io.Writer, t *Trace) error { return paraver.Write(w, t) }

// Extensions beyond the paper.

// JitterConfig parameterizes the adaptive Jitter runtime emulation — the
// dynamic system of which the paper's MAX algorithm is the static form.
type JitterConfig = jitter.Config

// JitterResult reports a Jitter emulation.
type JitterResult = jitter.Result

// RunJitter emulates the adaptive runtime over a trace.
func RunJitter(cfg JitterConfig) (*JitterResult, error) { return jitter.Run(cfg) }

// PhasedConfig parameterizes the per-phase MAX extension (one gear per
// process per computation phase — the paper's PEPC future work).
type PhasedConfig = phased.Config

// PhasedResult reports a per-phase analysis.
type PhasedResult = phased.Result

// RunPhased performs the per-phase MAX analysis.
func RunPhased(cfg PhasedConfig) (*PhasedResult, error) { return phased.Run(cfg) }

// Serving — the pwrsimd HTTP daemon (cmd/pwrsimd) exposes the pipeline as
// JSON endpoints over one shared, bounded replay cache.

// ServerConfig parameterizes the pwrsimd HTTP daemon.
type ServerConfig = server.Config

// Server is the pwrsimd HTTP daemon.
type Server = server.Server

// NewServer builds the daemon over the default platform and power model.
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// Power-cap scheduling — assign per-rank gears under a fixed cluster power
// budget (the inverse of the paper's unbounded-power scenario).

// PowerCapConfig parameterizes one budget-constrained scheduling run.
type PowerCapConfig = powercap.Config

// PowerCapResult reports both policies' schedules next to the uncapped
// reference execution.
type PowerCapResult = powercap.Result

// PowerCapSchedule is one policy's gear assignment with its exact cost.
type PowerCapSchedule = powercap.Schedule

// PowerCapKind selects what the budget bounds (peak or time-averaged watts).
type PowerCapKind = powercap.CapKind

// Power-cap budget kinds.
const (
	// CapPeak bounds the worst-case instantaneous cluster power.
	CapPeak = powercap.CapPeak
	// CapAverage bounds the run's time-averaged cluster power.
	CapAverage = powercap.CapAverage
)

// SchedulePowerCap schedules per-rank gears under a cluster power cap with
// the uniform-downshift baseline and the load-aware redistribution policy,
// scoring every candidate by exact skeleton retiming.
func SchedulePowerCap(cfg PowerCapConfig) (*PowerCapResult, error) { return powercap.Run(cfg) }

// Cluster power profiles — the time-resolved power draw of a replayed run.

// PowerModel computes phase- and gear-dependent CPU power (§3.2).
type PowerModel = power.Model

// PowerPhase distinguishes computation from communication for
// activity-factor purposes.
type PowerPhase = power.Phase

// Power phases.
const (
	// PhaseCompute is a computation burst (high activity factor).
	PhaseCompute = power.Compute
	// PhaseComm is communication or blocked-in-MPI time.
	PhaseComm = power.Comm
)

// NewPowerModel builds and calibrates a power model.
func NewPowerModel(cfg PowerConfig) (*PowerModel, error) { return power.New(cfg) }

// GearAtFrequency builds the gear at frequency f (GHz) under the linear
// voltage model.
func GearAtFrequency(f float64) Gear { return dvfs.GearAt(f) }

// PowerProfile is a replayed run's cluster power draw as a step function
// over time, exposing peak, average and exceedance.
type PowerProfile = power.Profile

// PowerProfileStep is one constant-power interval of a profile.
type PowerProfileStep = power.ProfileStep

// BuildPowerProfile derives the cluster power profile of a replayed run
// from its recorded per-rank timelines and gear assignment.
func BuildPowerProfile(m *PowerModel, timelines [][]dimemas.Segment, gears []Gear, until float64) (*PowerProfile, error) {
	return power.BuildProfile(m, timelines, gears, until)
}

// Online rebalancing — the closed loop the paper's runtime vision implies:
// simulate an application whose per-rank load drifts between iterations,
// observe each executed iteration, and re-solve gears with a pluggable
// policy (see internal/rebalance).

// RebalanceConfig parameterizes one closed-loop rebalancing run.
type RebalanceConfig = rebalance.Config

// RebalanceResult reports the per-iteration series plus convergence metrics.
type RebalanceResult = rebalance.Result

// RebalanceIteration is one online iteration's measured outcome.
type RebalanceIteration = rebalance.IterationStats

// RebalancePolicy selects the rebalancing trigger.
type RebalancePolicy = rebalance.Policy

// Rebalancing policies.
const (
	// RebalanceNever assigns gears once from the first observed iteration.
	RebalanceNever = rebalance.PolicyNever
	// RebalanceEveryK re-solves every Period iterations.
	RebalanceEveryK = rebalance.PolicyEveryK
	// RebalanceThreshold re-solves on persistent balance degradation.
	RebalanceThreshold = rebalance.PolicyThreshold
	// RebalanceCapped is the threshold trigger under a peak power budget.
	RebalanceCapped = rebalance.PolicyCapped
	// RebalancePredictive re-solves against forecast loads when the
	// predicted balance of the next iteration crosses the trigger.
	RebalancePredictive = rebalance.PolicyPredictive
	// RebalancePredictiveCapped is the predictive trigger under a peak
	// power budget: forecast-driven power redistribution.
	RebalancePredictiveCapped = rebalance.PolicyPredictiveCapped
)

// PredictConfig parameterizes the predictive policies' per-rank load
// forecaster (model kind, fit window, EWMA smoothing, fallback guard).
type PredictConfig = predict.Config

// PredictKind selects the forecasting model.
type PredictKind = predict.Kind

// Forecasting models.
const (
	// PredictEWMA forecasts each rank's load as an exponentially weighted
	// moving average — flat, jitter-filtering.
	PredictEWMA = predict.KindEWMA
	// PredictLinear extrapolates a least-squares line over the fit window —
	// trend-aware, the default.
	PredictLinear = predict.KindLinear
)

// ForecastStats reports a forecaster's tracked skill: observation, fallback
// and structural-break counts plus the rolling model-vs-naive error sums.
type ForecastStats = predict.Stats

// DefaultPredictConfig returns the recommended forecaster setup (linear
// model, 8-observation window, skill guard armed).
func DefaultPredictConfig() PredictConfig { return predict.DefaultConfig() }

// RunRebalance simulates the closed loop: every iteration is an exact
// skeleton retiming of the base iteration under that iteration's drifted
// loads, bit-identical to a fresh replay at a fraction of the cost.
func RunRebalance(cfg RebalanceConfig) (*RebalanceResult, error) { return rebalance.Run(cfg) }

// WorkloadDrift describes how per-rank load evolves between iterations of
// an online run (none, ramp, walk or step, plus transient jitter).
type WorkloadDrift = workload.Drift

// Drift kinds.
const (
	// DriftNone keeps loads static (only jitter perturbs iterations).
	DriftNone = workload.DriftNone
	// DriftRamp migrates the imbalance profile progressively across ranks.
	DriftRamp = workload.DriftRamp
	// DriftWalk evolves each rank's load as a clamped random walk.
	DriftWalk = workload.DriftWalk
	// DriftStep shifts the load distribution all at once mid-run.
	DriftStep = workload.DriftStep
)

// GearSearchConfig parameterizes the gear-placement optimizer.
type GearSearchConfig = gearopt.Config

// GearSearchResult reports an optimized gear set.
type GearSearchResult = gearopt.Result

// OptimizeGearSet searches for the n-gear placement minimizing average
// normalized energy over a set of application traces.
func OptimizeGearSet(cfg GearSearchConfig) (*GearSearchResult, error) { return gearopt.Optimize(cfg) }

// Heterogeneous machine model: a Platform optionally layered with a
// node/switch topology and per-rank capability. A Machine with neither
// layer behaves bit-identically to its flat Platform.
type (
	// Machine is a Platform plus optional topology and capability layers.
	Machine = dimemas.Machine
	// MachineTopology places ranks on nodes and nodes under switches, with
	// distinct intra-node, inter-node and remote (cross-switch) links.
	MachineTopology = dimemas.Topology
	// Link is one interconnect tier (latency seconds, bandwidth bytes/s).
	Link = dimemas.Link
	// Capability holds per-rank efficiency, frequency-ceiling and
	// power-scale vectors.
	Capability = dimemas.Capability
)

// FlatMachine wraps a Platform as a Machine with no layers.
func FlatMachine(p Platform) Machine { return dimemas.FlatMachine(p) }

// BlockPlacement assigns ranks to nodes contiguously, perNode at a time.
func BlockPlacement(nranks, perNode int) []int { return dimemas.BlockPlacement(nranks, perNode) }

// SimulateMachine replays a trace on a layered machine. For a flat machine
// it is bit-identical to Simulate on the base platform.
func SimulateMachine(t *Trace, m Machine, opts SimOptions) (*SimResult, error) {
	return dimemas.SimulateMachine(t, m, opts)
}

// PlacementConfig parameterizes the topology-aware placement search.
type PlacementConfig = placement.Config

// PlacementResult reports an optimized rank→node placement.
type PlacementResult = placement.Result

// OptimizePlacement runs a deterministic pairwise-swap local search over
// rank→node placements, scoring candidates with exact machine replays.
func OptimizePlacement(cfg PlacementConfig) (*PlacementResult, error) { return placement.Optimize(cfg) }

// ShuffledPlacement returns a seeded random placement of nranks ranks in
// nodes of perNode — the locality-oblivious baseline for placement studies.
func ShuffledPlacement(nranks, perNode int, seed int64) []int {
	return placement.ShuffledPlacement(nranks, perNode, seed)
}
