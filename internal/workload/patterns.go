package workload

import (
	"repro/internal/trace"
)

// Communication-pattern builders. All point-to-point exchanges order sends
// and receives with the classic parity trick (even position sends first) so
// that rendezvous-protocol messages never deadlock, exactly as well-written
// MPI codes do.

// ringExchange appends a one-direction ring shift (each rank sends `bytes`
// to (r+1) mod n and receives from (r−1+n) mod n) to every rank's timeline.
func ringExchange(tr *trace.Trace, n int, bytes int64, tag int) {
	if n < 2 {
		return
	}
	for r := 0; r < n; r++ {
		right := (r + 1) % n
		left := (r - 1 + n) % n
		if r%2 == 0 {
			tr.Add(r, trace.Send(right, bytes, tag), trace.Recv(left, bytes, tag))
		} else {
			tr.Add(r, trace.Recv(left, bytes, tag), trace.Send(right, bytes, tag))
		}
	}
}

// pairExchange appends a bidirectional neighbour exchange between rank pairs
// (2k, 2k+1): each partner sends `bytes` to the other. A leftover last rank
// (odd n) sits the phase out.
func pairExchange(tr *trace.Trace, n int, bytes int64, tag int) {
	for r := 0; r+1 < n; r += 2 {
		tr.Add(r, trace.Send(r+1, bytes, tag), trace.Recv(r+1, bytes, tag))
		tr.Add(r+1, trace.Recv(r, bytes, tag), trace.Send(r, bytes, tag))
	}
}

// gridDims factors n into nx·ny with nx as close to √n as possible.
func gridDims(n int) (nx, ny int) {
	nx = 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			nx = d
		}
	}
	return nx, n / nx
}

// haloExchange2D appends a four-neighbour (torus) halo exchange over an
// nx×ny process grid: one ring shift per direction along each axis. Rank r
// sits at (r mod nx, r div nx). Axes of length 1 are skipped. Tags tagBase
// through tagBase+3 are used.
func haloExchange2D(tr *trace.Trace, nx, ny int, bytes int64, tagBase int) {
	n := nx * ny
	// X axis: +1 and −1 shifts within each row.
	if nx >= 2 {
		for dir := 0; dir < 2; dir++ {
			tag := tagBase + dir
			for r := 0; r < n; r++ {
				ix, iy := r%nx, r/nx
				var dst, src int
				if dir == 0 {
					dst = iy*nx + (ix+1)%nx
					src = iy*nx + (ix-1+nx)%nx
				} else {
					dst = iy*nx + (ix-1+nx)%nx
					src = iy*nx + (ix+1)%nx
				}
				if ix%2 == 0 {
					tr.Add(r, trace.Send(dst, bytes, tag), trace.Recv(src, bytes, tag))
				} else {
					tr.Add(r, trace.Recv(src, bytes, tag), trace.Send(dst, bytes, tag))
				}
			}
		}
	}
	// Y axis: +1 and −1 shifts within each column.
	if ny >= 2 {
		for dir := 0; dir < 2; dir++ {
			tag := tagBase + 2 + dir
			for r := 0; r < n; r++ {
				ix, iy := r%nx, r/nx
				var dst, src int
				if dir == 0 {
					dst = ((iy+1)%ny)*nx + ix
					src = ((iy-1+ny)%ny)*nx + ix
				} else {
					dst = ((iy-1+ny)%ny)*nx + ix
					src = ((iy+1)%ny)*nx + ix
				}
				if iy%2 == 0 {
					tr.Add(r, trace.Send(dst, bytes, tag), trace.Recv(src, bytes, tag))
				} else {
					tr.Add(r, trace.Recv(src, bytes, tag), trace.Send(dst, bytes, tag))
				}
			}
		}
	}
}

// collective appends the same collective record to every rank.
func collective(tr *trace.Trace, n int, c trace.Collective, bytes int64) {
	for r := 0; r < n; r++ {
		tr.Add(r, trace.Coll(c, bytes))
	}
}

// computePhase appends per-rank computation bursts (seconds at fmax).
func computePhase(tr *trace.Trace, loads []float64) {
	for r, w := range loads {
		tr.Add(r, trace.Compute(w))
	}
}

// iterMarks closes an iteration on every rank.
func iterMarks(tr *trace.Trace, n int) {
	for r := 0; r < n; r++ {
		tr.Add(r, trace.IterMark())
	}
}
