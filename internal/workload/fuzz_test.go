package workload

import "testing"

// FuzzParseDriftKind asserts the drift-kind parser never panics, accepts
// exactly the wire names DriftKindNames advertises, and that every accepted
// value round-trips through String.
func FuzzParseDriftKind(f *testing.F) {
	for _, name := range DriftKindNames() {
		f.Add(name)
	}
	f.Add("")
	f.Add("RAMP")
	f.Add("DriftKind(2)")
	f.Add("stepp")
	f.Fuzz(func(t *testing.T, in string) {
		k, err := ParseDriftKind(in)
		if err != nil {
			for _, name := range DriftKindNames() {
				if in == name {
					t.Fatalf("ParseDriftKind rejected the advertised name %q: %v", in, err)
				}
			}
			return
		}
		if k < 0 || k > maxDriftKind {
			t.Fatalf("ParseDriftKind(%q) = %d, outside [0, %d]", in, k, maxDriftKind)
		}
		if k.String() != in {
			t.Fatalf("round trip broken: ParseDriftKind(%q) = %v, String() = %q", in, k, k.String())
		}
	})
}
