package workload

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dimemas"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/timemodel"
	"repro/internal/trace"
)

// Config controls trace generation.
type Config struct {
	// Iterations is the number of outer-loop iterations to emit.
	Iterations int
	// BaseCompute is the most loaded rank's computation time per iteration,
	// in seconds at the nominal top frequency.
	BaseCompute float64
	// Platform is the machine model used for parallel-efficiency
	// calibration; it should be the same platform later used for replay.
	Platform dimemas.Platform
	// FMax is the nominal top frequency the trace durations refer to.
	FMax float64
	// SkipPECalibration disables the communication-volume bisection; the
	// trace then carries the default communication sizes. Load balance is
	// still calibrated exactly. Useful for unit tests.
	SkipPECalibration bool
	// Ctx optionally bounds generation: the calibration's bisection
	// replays poll it and abort with its error once it is done, so a
	// serving layer can stop paying for a request that already timed out.
	Ctx context.Context
}

// DefaultConfig returns the generation parameters used by all experiments:
// 20 iterations, 50 ms of computation per iteration on the critical path,
// the default Myrinet-class platform.
func DefaultConfig() Config {
	return Config{
		Iterations:  20,
		BaseCompute: 0.05,
		Platform:    dimemas.DefaultPlatform(),
		FMax:        2.3,
	}
}

func (c Config) validate() error {
	if c.Iterations <= 0 {
		return fmt.Errorf("workload: iterations must be positive, got %d", c.Iterations)
	}
	if c.BaseCompute <= 0 {
		return fmt.Errorf("workload: base compute must be positive, got %v", c.BaseCompute)
	}
	if c.FMax <= 0 {
		return fmt.Errorf("workload: fmax must be positive, got %v", c.FMax)
	}
	return c.Platform.Validate()
}

// plan holds the precomputed per-iteration structure of an instance: the
// per-phase load vectors (seconds at fmax) and the communication emitter.
type plan struct {
	inst   Instance
	phases [][]float64
	// emit appends one full iteration (computation and communication) for
	// every rank; commScale multiplies the characteristic message sizes.
	emit func(tr *trace.Trace, commScale float64)
}

// newPlan builds the application-specific structure of the instance.
func newPlan(inst Instance, cfg Config) (*plan, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(inst.seed()))
	n := inst.NProcs
	p := &plan{inst: inst}

	// Calibrated single-phase loads, normalized to max = 1, then scaled to
	// BaseCompute seconds on the critical rank.
	single := func(raw []float64) ([]float64, error) {
		x, err := calibrateLB(raw, inst.TargetLB)
		if err != nil {
			return nil, fmt.Errorf("workload: %s: %w", inst.Name, err)
		}
		return stats.Scale(x, cfg.BaseCompute), nil
	}

	switch inst.App {
	case "CG":
		// Conjugate gradient: near-uniform loads, dominated by dot-product
		// allreduces and a ring exchange of the distributed matrix rows.
		loads, err := single(noisyLoads(n, rng, 0.04))
		if err != nil {
			return nil, err
		}
		p.phases = [][]float64{loads}
		p.emit = func(tr *trace.Trace, s float64) {
			computePhase(tr, loads)
			ringExchange(tr, n, scaleBytes(64<<10, s), 1)
			collective(tr, n, trace.CollAllReduce, 8)
			collective(tr, n, trace.CollAllReduce, 8)
		}

	case "MG":
		// Multigrid V-cycle: halo exchanges at four grid levels with
		// geometrically shrinking payloads plus a residual allreduce.
		loads, err := single(noisyLoads(n, rng, 0.06))
		if err != nil {
			return nil, err
		}
		nx, ny := gridDims(n)
		p.phases = [][]float64{loads}
		p.emit = func(tr *trace.Trace, s float64) {
			computePhase(tr, loads)
			for level := 0; level < 4; level++ {
				haloExchange2D(tr, nx, ny, scaleBytes(32<<10>>level, s), 10+4*level)
			}
			collective(tr, n, trace.CollAllReduce, 8)
		}

	case "IS":
		// Integer sort: strongly value-skewed bucket counting followed by
		// the dominant all-to-all key exchange.
		loads, err := single(skewLoads(n, rng, 0.25, 2.2))
		if err != nil {
			return nil, err
		}
		p.phases = [][]float64{loads}
		p.emit = func(tr *trace.Trace, s float64) {
			computePhase(tr, loads)
			collective(tr, n, trace.CollAllToAll, scaleBytes(512<<10, s))
			collective(tr, n, trace.CollAllReduce, 64)
		}

	case "BT-MZ":
		// NPB multi-zone block-tridiagonal: geometrically sized zones dealt
		// to ranks create heavy imbalance; zones exchange borders with
		// point-to-point messages.
		loads, err := single(zoneLoads(n, rng))
		if err != nil {
			return nil, err
		}
		nx, ny := gridDims(n)
		p.phases = [][]float64{loads}
		p.emit = func(tr *trace.Trace, s float64) {
			computePhase(tr, loads)
			haloExchange2D(tr, nx, ny, scaleBytes(16<<10, s), 1)
		}

	case "SPECFEM3D":
		// Spectral-element seismic wave propagation: 2-D domain
		// decomposition with moderate mesh-induced imbalance.
		loads, err := single(rampLoads(n, rng, 0.35, 0.05))
		if err != nil {
			return nil, err
		}
		nx, ny := gridDims(n)
		p.phases = [][]float64{loads}
		p.emit = func(tr *trace.Trace, s float64) {
			computePhase(tr, loads)
			haloExchange2D(tr, nx, ny, scaleBytes(48<<10, s), 1)
		}

	case "WRF":
		// Weather prediction: 2-D latitude/longitude stencil; work varies
		// smoothly across the domain (physics depends on location).
		loads, err := single(rampLoads(n, rng, 0.2, 0.04))
		if err != nil {
			return nil, err
		}
		nx, ny := gridDims(n)
		p.phases = [][]float64{loads}
		p.emit = func(tr *trace.Trace, s float64) {
			computePhase(tr, loads)
			haloExchange2D(tr, nx, ny, scaleBytes(64<<10, s), 1)
			collective(tr, n, trace.CollAllReduce, 8)
		}

	case "PEPC":
		// Plasma-physics tree code: two computation phases per iteration
		// with different (anti-correlated) imbalance — the reason a single
		// per-process DVFS setting struggles with PEPC in the paper.
		a, b, err := calibrateTwoPhase(n, inst.seed(), 0.6, 0.4, inst.TargetLB)
		if err != nil {
			return nil, fmt.Errorf("workload: %s: %w", inst.Name, err)
		}
		// Scale so the summed critical-path rank computes BaseCompute.
		tot := make([]float64, n)
		for i := range tot {
			tot[i] = a[i] + b[i]
		}
		k := cfg.BaseCompute / stats.Max(tot)
		stats.Scale(a, k)
		stats.Scale(b, k)
		p.phases = [][]float64{a, b}
		p.emit = func(tr *trace.Trace, s float64) {
			computePhase(tr, a)
			collective(tr, n, trace.CollAllGather, scaleBytes(128<<10, s))
			computePhase(tr, b)
			collective(tr, n, trace.CollAllReduce, 8)
		}

	default:
		return nil, fmt.Errorf("workload: unknown application %q", inst.App)
	}
	return p, nil
}

// scaleBytes multiplies a base message size by the calibration factor.
func scaleBytes(base int64, s float64) int64 {
	b := int64(math.Round(float64(base) * s))
	if b < 0 {
		return 0
	}
	return b
}

// build emits the full trace with the given communication scale.
func (p *plan) build(cfg Config, commScale float64) *trace.Trace {
	tr := trace.New(p.inst.Name, p.inst.NProcs)
	for it := 0; it < cfg.Iterations; it++ {
		p.emit(tr, commScale)
		iterMarks(tr, p.inst.NProcs)
	}
	return tr
}

// Characteristics reports the measured load balance and parallel efficiency
// of a trace replayed at full speed on the platform (the paper's Table 3).
type Characteristics struct {
	LB, PE float64
	Time   float64 // original execution time at fmax
}

// Measure replays the trace at the nominal frequency and computes its
// characteristics.
func Measure(tr *trace.Trace, platform dimemas.Platform, fmax float64) (Characteristics, error) {
	return measure(tr, platform, fmax, nil)
}

func measure(tr *trace.Trace, platform dimemas.Platform, fmax float64, ctx context.Context) (Characteristics, error) {
	res, err := dimemas.Simulate(tr, platform, dimemas.Options{Beta: timemodel.DefaultBeta, FMax: fmax, Ctx: ctx})
	if err != nil {
		return Characteristics{}, err
	}
	lb, err := metrics.LoadBalance(res.Compute)
	if err != nil {
		return Characteristics{}, err
	}
	pe, err := metrics.ParallelEfficiency(res.Compute, res.Time)
	if err != nil {
		return Characteristics{}, err
	}
	return Characteristics{LB: lb, PE: pe, Time: res.Time}, nil
}

// Generate builds the calibrated trace for the instance: load balance is
// matched exactly by construction, and the communication volume is bisected
// until the replayed parallel efficiency matches the target.
func Generate(inst Instance, cfg Config) (*trace.Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p, err := newPlan(inst, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.SkipPECalibration {
		return p.build(cfg, 1), nil
	}

	peAt := func(scale float64) (float64, error) {
		tr := p.build(cfg, scale)
		ch, err := measure(tr, cfg.Platform, cfg.FMax, cfg.Ctx)
		if err != nil {
			return 0, err
		}
		return ch.PE, nil
	}

	// Parallel efficiency decreases monotonically with communication
	// volume; bracket the target then bisect.
	pe0, err := peAt(0)
	if err != nil {
		return nil, err
	}
	if pe0 < inst.TargetPE {
		return nil, fmt.Errorf("workload: %s: communication-free efficiency %.4f already below target %.4f (platform too slow)",
			inst.Name, pe0, inst.TargetPE)
	}
	lo, hi := 0.0, 1.0
	for i := 0; ; i++ {
		pe, err := peAt(hi)
		if err != nil {
			return nil, err
		}
		if pe < inst.TargetPE {
			break
		}
		lo, hi = hi, hi*4
		if i == 30 {
			return nil, fmt.Errorf("workload: %s: cannot add enough communication to reach efficiency %.4f", inst.Name, inst.TargetPE)
		}
	}
	const tol = 2e-4
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		pe, err := peAt(mid)
		if err != nil {
			return nil, err
		}
		if math.Abs(pe-inst.TargetPE) < tol {
			lo, hi = mid, mid
			break
		}
		if pe > inst.TargetPE {
			lo = mid
		} else {
			hi = mid
		}
	}
	return p.build(cfg, (lo+hi)/2), nil
}
