package workload

import (
	"math"
	"testing"
)

func TestDriftZeroValueIsExactlyOne(t *testing.T) {
	fs, err := Drift{}.Factors(8, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 12 {
		t.Fatalf("%d iterations, want 12", len(fs))
	}
	for i, row := range fs {
		if len(row) != 8 {
			t.Fatalf("iteration %d has %d ranks, want 8", i, len(row))
		}
		for r, f := range row {
			if f != 1.0 {
				t.Fatalf("iteration %d rank %d: factor %v, want exactly 1.0", i, r, f)
			}
		}
	}
}

func TestDriftDeterministic(t *testing.T) {
	for _, d := range []Drift{
		{Kind: DriftRamp, Magnitude: 0.5, Jitter: 0.03, Seed: 7},
		{Kind: DriftWalk, Magnitude: 0.05, Jitter: 0.02, Seed: 7},
		{Kind: DriftStep, Magnitude: 0.4, Jitter: 0.02, Seed: 7},
	} {
		a, err := d.Factors(16, 20)
		if err != nil {
			t.Fatalf("%s: %v", d.Kind, err)
		}
		b, err := d.Factors(16, 20)
		if err != nil {
			t.Fatalf("%s: %v", d.Kind, err)
		}
		for i := range a {
			for r := range a[i] {
				if a[i][r] != b[i][r] {
					t.Fatalf("%s: factors differ at (%d, %d): %v vs %v", d.Kind, i, r, a[i][r], b[i][r])
				}
			}
		}
		// A different seed must give a different sequence (drift or jitter
		// is present in every case above).
		c, err := Drift{Kind: d.Kind, Magnitude: d.Magnitude, Jitter: d.Jitter, Seed: 8}.Factors(16, 20)
		if err != nil {
			t.Fatal(err)
		}
		same := true
	outer:
		for i := range a {
			for r := range a[i] {
				if a[i][r] != c[i][r] {
					same = false
					break outer
				}
			}
		}
		if same {
			t.Errorf("%s: seeds 7 and 8 produced identical factor sequences", d.Kind)
		}
	}
}

func TestDriftShapes(t *testing.T) {
	n, iters := 16, 21
	ramp, err := Drift{Kind: DriftRamp, Magnitude: 0.5, Seed: 3}.Factors(n, iters)
	if err != nil {
		t.Fatal(err)
	}
	// Iteration 0 is undrifted; by the last iteration rank 0 carries
	// 1+M and the last rank 1−M.
	for r := 0; r < n; r++ {
		if ramp[0][r] != 1 {
			t.Fatalf("ramp iteration 0 rank %d: factor %v, want 1", r, ramp[0][r])
		}
	}
	last := ramp[iters-1]
	if math.Abs(last[0]-1.5) > 1e-12 || math.Abs(last[n-1]-0.5) > 1e-12 {
		t.Errorf("ramp final tilt: rank0 %v (want 1.5), rank%d %v (want 0.5)", last[0], n-1, last[n-1])
	}

	step, err := Drift{Kind: DriftStep, Magnitude: 0.4, Seed: 3}.Factors(n, iters)
	if err != nil {
		t.Fatal(err)
	}
	mid := iters / 2
	if step[mid-1][0] != 1 || math.Abs(step[mid][0]-1.4) > 1e-12 {
		t.Errorf("step: rank 0 factors around the default midpoint: %v then %v", step[mid-1][0], step[mid][0])
	}

	walk, err := Drift{Kind: DriftWalk, Magnitude: 0.08, Seed: 3}.Factors(n, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := range walk {
		for r, f := range walk[i] {
			if f < walkMin-1e-15 || f > walkMax+1e-15 {
				t.Fatalf("walk factor (%d, %d) = %v escaped the [%v, %v] clamp", i, r, f, walkMin, walkMax)
			}
		}
	}
}

func TestDriftValidation(t *testing.T) {
	cases := []Drift{
		{Kind: DriftRamp, Magnitude: 1.0},
		{Kind: DriftStep, Magnitude: -0.1},
		{Kind: DriftWalk, Magnitude: math.NaN()},
		{Kind: DriftNone, Jitter: -1},
		{Kind: DriftNone, Jitter: math.Inf(1)},
		{Kind: DriftKind(42)},
		{Kind: DriftStep, Magnitude: 0.3, StepAt: -1},
	}
	for _, d := range cases {
		if _, err := d.Factors(4, 4); err == nil {
			t.Errorf("drift %+v accepted", d)
		}
	}
	if _, err := (Drift{}).Factors(0, 5); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := (Drift{}).Factors(5, 0); err == nil {
		t.Error("zero iterations accepted")
	}
}

// TestDriftKindRoundTrip round-trips every valid drift kind through
// String/ParseDriftKind using the count-derived bound, so a kind added
// above driftKindCount is covered (and parseable) by construction.
func TestDriftKindRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for k := DriftNone; k <= maxDriftKind; k++ {
		s := k.String()
		if seen[s] {
			t.Fatalf("duplicate wire name %q", s)
		}
		seen[s] = true
		got, err := ParseDriftKind(s)
		if err != nil || got != k {
			t.Errorf("ParseDriftKind(%q) = %v, %v", s, got, err)
		}
	}
	if names := DriftKindNames(); len(names) != int(driftKindCount) {
		t.Errorf("DriftKindNames lists %d names, want %d", len(names), int(driftKindCount))
	}
	if _, err := ParseDriftKind("wobble"); err == nil {
		t.Error("unknown drift kind accepted")
	}
	if _, err := ParseDriftKind(DriftKind(driftKindCount).String()); err == nil {
		t.Error("out-of-range formatted name accepted")
	}
}
