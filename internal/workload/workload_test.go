package workload

import (
	"math"
	"testing"

	"repro/internal/dimemas"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// quickConfig keeps unit-test generation fast.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Iterations = 5
	return cfg
}

func TestTable3Instances(t *testing.T) {
	insts := Table3()
	if len(insts) != 12 {
		t.Fatalf("Table3 has %d instances, want 12", len(insts))
	}
	names := map[string]bool{}
	for _, inst := range insts {
		if err := inst.Validate(); err != nil {
			t.Errorf("%s: %v", inst.Name, err)
		}
		if names[inst.Name] {
			t.Errorf("duplicate instance %s", inst.Name)
		}
		names[inst.Name] = true
		if inst.TargetPE > inst.TargetLB {
			t.Errorf("%s: PE %v exceeds LB %v", inst.Name, inst.TargetPE, inst.TargetLB)
		}
	}
	// Spot-check paper values.
	bt, err := FindInstance("BT-MZ-32")
	if err != nil || bt.TargetLB != 0.3521 || bt.TargetPE != 0.3507 {
		t.Errorf("BT-MZ-32 = %+v, err %v", bt, err)
	}
	if _, err := FindInstance("NOPE-1"); err == nil {
		t.Error("unknown instance should fail")
	}
}

func TestInstanceForInterpolation(t *testing.T) {
	// At an anchor the interpolation must return the anchor values.
	cg32, err := InstanceFor("CG", 32)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cg32.TargetLB-0.9782) > 1e-9 {
		t.Errorf("CG-32 LB = %v", cg32.TargetLB)
	}
	// Between anchors: CG-48 should be between the 32 and 64 values.
	cg48, err := InstanceFor("CG", 48)
	if err != nil {
		t.Fatal(err)
	}
	if cg48.TargetLB >= 0.9782 || cg48.TargetLB <= 0.9346 {
		t.Errorf("CG-48 LB = %v not between anchors", cg48.TargetLB)
	}
	// Single-anchor app drifts with the default slope.
	bt64, err := InstanceFor("BT-MZ", 64)
	if err != nil {
		t.Fatal(err)
	}
	if bt64.TargetLB >= 0.3521 {
		t.Errorf("BT-MZ-64 LB = %v should drop below the 32-rank anchor", bt64.TargetLB)
	}
	if err := bt64.Validate(); err != nil {
		t.Errorf("interpolated instance invalid: %v", err)
	}
	if _, err := InstanceFor("NOPE", 32); err == nil {
		t.Error("unknown app should fail")
	}
	if _, err := InstanceFor("CG", 1); err == nil {
		t.Error("1 process should fail")
	}
}

func TestCalibrateLB(t *testing.T) {
	raw := []float64{1, 0.9, 0.8, 0.7, 0.2}
	for _, target := range []float64{0.9, 0.72, 0.5, 0.35} {
		x, err := calibrateLB(raw, target)
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		got := stats.Mean(x) / stats.Max(x)
		if math.Abs(got-target) > 1e-9 {
			t.Errorf("target %v: achieved %v", target, got)
		}
		if !stats.AllPositive(x) {
			t.Errorf("target %v: non-positive loads %v", target, x)
		}
		if math.Abs(stats.Max(x)-1) > 1e-9 {
			t.Errorf("target %v: max %v, want 1", target, stats.Max(x))
		}
	}
}

func TestCalibrateLBErrors(t *testing.T) {
	if _, err := calibrateLB(nil, 0.5); err == nil {
		t.Error("empty loads should fail")
	}
	if _, err := calibrateLB([]float64{1, 1}, 0); err == nil {
		t.Error("target 0 should fail")
	}
	if _, err := calibrateLB([]float64{1, 1}, 1.5); err == nil {
		t.Error("target > 1 should fail")
	}
	if _, err := calibrateLB([]float64{0, 0}, 0.5); err == nil {
		t.Error("all-zero loads should fail")
	}
	if _, err := calibrateLB([]float64{1, -1}, 0.5); err == nil {
		t.Error("negative load should fail")
	}
	// No spread: impossible to reach imbalance.
	if _, err := calibrateLB([]float64{1, 1, 1}, 0.5); err == nil {
		t.Error("equal loads cannot reach LB 0.5")
	}
	// Target 1 with unequal loads is trivially satisfiable (all equal).
	x, err := calibrateLB([]float64{1, 0.5}, 1)
	if err != nil || x[0] != 1 || x[1] != 1 {
		t.Errorf("target 1: %v, %v", x, err)
	}
}

func TestGeneratedLoadBalanceExact(t *testing.T) {
	// Without PE calibration, load balance must already match exactly
	// (it is calibrated by construction, not by simulation).
	cfg := quickConfig()
	cfg.SkipPECalibration = true
	for _, inst := range Table3() {
		tr, err := Generate(inst, cfg)
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		lb, err := metrics.LoadBalance(tr.ComputeTimes())
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		tolerance := 1e-6
		if inst.App == "PEPC" {
			tolerance = 5e-3 // bisected, not closed-form
		}
		if math.Abs(lb-inst.TargetLB) > tolerance {
			t.Errorf("%s: LB = %.6f, want %.6f", inst.Name, lb, inst.TargetLB)
		}
	}
}

func TestGeneratedTracesValid(t *testing.T) {
	cfg := quickConfig()
	cfg.SkipPECalibration = true
	for _, inst := range Table3() {
		tr, err := Generate(inst, cfg)
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: invalid trace: %v", inst.Name, err)
		}
		if tr.NumRanks() != inst.NProcs {
			t.Errorf("%s: %d ranks, want %d", inst.Name, tr.NumRanks(), inst.NProcs)
		}
		if tr.Iterations() != cfg.Iterations {
			t.Errorf("%s: %d iterations, want %d", inst.Name, tr.Iterations(), cfg.Iterations)
		}
	}
}

func TestGeneratedTracesReplayable(t *testing.T) {
	cfg := quickConfig()
	cfg.SkipPECalibration = true
	for _, inst := range Table3() {
		tr, err := Generate(inst, cfg)
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		ch, err := Measure(tr, cfg.Platform, cfg.FMax)
		if err != nil {
			t.Fatalf("%s: replay failed: %v", inst.Name, err)
		}
		if ch.Time <= 0 || ch.PE <= 0 || ch.PE > 1 {
			t.Errorf("%s: characteristics %+v", inst.Name, ch)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := quickConfig()
	cfg.SkipPECalibration = true
	inst, _ := FindInstance("IS-32")
	t1, err := Generate(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Generate(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := t1.ComputeTimes(), t2.ComputeTimes()
	for r := range c1 {
		if c1[r] != c2[r] {
			t.Fatalf("rank %d compute differs between generations", r)
		}
	}
}

// The key calibration test: full generation must land both LB and PE close
// to Table 3. A couple of representative instances keep the test fast; the
// integration suite covers all twelve.
func TestPECalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration bisection in short mode")
	}
	cfg := quickConfig()
	for _, name := range []string{"BT-MZ-32", "IS-32", "CG-64", "PEPC-128"} {
		inst, err := FindInstance(name)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := Generate(inst, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ch, err := Measure(tr, cfg.Platform, cfg.FMax)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(ch.LB-inst.TargetLB) > 0.006 {
			t.Errorf("%s: LB = %.4f, want %.4f", name, ch.LB, inst.TargetLB)
		}
		if math.Abs(ch.PE-inst.TargetPE) > 0.01 {
			t.Errorf("%s: PE = %.4f, want %.4f", name, ch.PE, inst.TargetPE)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	inst, _ := FindInstance("CG-32")
	bad := quickConfig()
	bad.Iterations = 0
	if _, err := Generate(inst, bad); err == nil {
		t.Error("zero iterations should fail")
	}
	bad = quickConfig()
	bad.BaseCompute = 0
	if _, err := Generate(inst, bad); err == nil {
		t.Error("zero base compute should fail")
	}
	bad = quickConfig()
	bad.FMax = -1
	if _, err := Generate(inst, bad); err == nil {
		t.Error("negative fmax should fail")
	}
	bad = quickConfig()
	bad.Platform = dimemas.Platform{Bandwidth: -5}
	if _, err := Generate(inst, bad); err == nil {
		t.Error("bad platform should fail")
	}
	if _, err := Generate(Instance{Name: "X-4", App: "X", NProcs: 4, TargetLB: 0.5, TargetPE: 0.4}, quickConfig()); err == nil {
		t.Error("unknown app should fail")
	}
}

func TestGridDims(t *testing.T) {
	tests := []struct{ n, nx, ny int }{
		{32, 4, 8}, {64, 8, 8}, {96, 8, 12}, {128, 8, 16}, {7, 1, 7}, {12, 3, 4},
	}
	for _, tt := range tests {
		nx, ny := gridDims(tt.n)
		if nx*ny != tt.n {
			t.Errorf("gridDims(%d) = %d×%d", tt.n, nx, ny)
		}
		if nx != tt.nx || ny != tt.ny {
			t.Errorf("gridDims(%d) = %d×%d, want %d×%d", tt.n, nx, ny, tt.nx, tt.ny)
		}
	}
}

func TestPEPCHasTwoAntiCorrelatedPhases(t *testing.T) {
	inst, _ := FindInstance("PEPC-128")
	cfg := quickConfig()
	cfg.SkipPECalibration = true
	p, err := newPlan(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.phases) != 2 {
		t.Fatalf("PEPC has %d phases, want 2", len(p.phases))
	}
	a, b := p.phases[0], p.phases[1]
	// Anti-correlation: the rank with the largest tree phase should not also
	// have the largest force phase.
	if stats.ArgMax(a) == stats.ArgMax(b) {
		t.Error("phases are not anti-correlated")
	}
	// Per-phase imbalance must be worse than the total imbalance: that is
	// what makes a single per-process frequency setting inadequate.
	tot := make([]float64, len(a))
	for i := range a {
		tot[i] = a[i] + b[i]
	}
	lbA := stats.Mean(a) / stats.Max(a)
	lbTot := stats.Mean(tot) / stats.Max(tot)
	if lbA >= lbTot {
		t.Errorf("phase A balance %.3f should be worse than total %.3f", lbA, lbTot)
	}
}
