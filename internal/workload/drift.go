package workload

// Load drift: the online-rebalancing counterpart of the static load shapes
// above. Where the shape generators (noisyLoads, rampLoads, ...) fix one
// per-rank load vector for the whole run, a Drift describes how that vector
// evolves *between* iterations — the reason a profile-once gear assignment
// goes stale and a runtime has to rebalance. internal/rebalance replays one
// iteration skeleton under these factors via dimemas.Skeleton.RetimeScaled.

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// DriftKind enumerates how per-rank computation load evolves across
// iterations.
type DriftKind int

const (
	// DriftNone keeps every rank's load constant (factor exactly 1.0);
	// only Jitter, if any, perturbs iterations.
	DriftNone DriftKind = iota
	// DriftRamp tilts the load distribution progressively: over the run,
	// low ranks gain up to +Magnitude of load while high ranks lose the
	// same fraction — the imbalance profile migrates across the machine,
	// steadily invalidating a profile-once assignment.
	DriftRamp
	// DriftWalk evolves each rank's load as an independent multiplicative
	// random walk with per-iteration log-scale Magnitude (clamped to
	// [0.25, 4]): slow, unstructured divergence.
	DriftWalk
	// DriftStep applies the ramp's full ±Magnitude tilt all at once from
	// iteration StepAt on: a sudden phase change (adaptive mesh refinement,
	// a new input block) that tests how fast a policy re-converges.
	DriftStep

	// driftKindCount counts the variants; maxDriftKind is the last valid
	// one. New kinds must be added above driftKindCount so the parse and
	// validation ranges extend automatically instead of silently truncating
	// (the bug class a hand-written `k <= DriftStep` bound reintroduces
	// with every new variant).
	driftKindCount
	maxDriftKind = driftKindCount - 1
)

func (k DriftKind) String() string {
	switch k {
	case DriftNone:
		return "none"
	case DriftRamp:
		return "ramp"
	case DriftWalk:
		return "walk"
	case DriftStep:
		return "step"
	default:
		return fmt.Sprintf("DriftKind(%d)", int(k))
	}
}

// DriftKindNames lists every valid drift kind's wire name, in enum order.
func DriftKindNames() []string {
	out := make([]string, 0, int(driftKindCount))
	for k := DriftNone; k <= maxDriftKind; k++ {
		out = append(out, k.String())
	}
	return out
}

// ParseDriftKind is the inverse of DriftKind.String (for wire and CLI use).
func ParseDriftKind(s string) (DriftKind, error) {
	for k := DriftNone; k <= maxDriftKind; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	names := DriftKindNames()
	return 0, fmt.Errorf("workload: unknown drift kind %q (want %s or %s)",
		s, strings.Join(names[:len(names)-1], ", "), names[len(names)-1])
}

// Drift describes how per-rank computation load evolves between iterations
// of an online run. The zero value means perfectly static loads: Factors
// returns exactly 1.0 everywhere, so a drift-free run is bit-identical to
// replaying the base iteration unchanged.
type Drift struct {
	// Kind selects the drift shape.
	Kind DriftKind
	// Magnitude is the drift strength: the full tilt fraction for
	// DriftRamp/DriftStep (rank loads end up in [1−M, 1+M]), the
	// per-iteration log-scale of the walk for DriftWalk. Must be in [0, 1)
	// for ramp/step (a rank's load cannot go negative) and non-negative
	// for walk. Ignored for DriftNone.
	Magnitude float64
	// Jitter is the σ of independent multiplicative log-normal noise
	// applied to every (iteration, rank) on top of the drift — transient
	// run-to-run variation that a good trigger should *not* chase.
	Jitter float64
	// StepAt is the first iteration with shifted loads for DriftStep;
	// 0 means the middle of the run.
	StepAt int
	// Seed makes the factor sequence deterministic; 0 selects a fixed
	// default seed.
	Seed int64
}

// Validate checks the drift parameters.
func (d Drift) Validate() error {
	switch d.Kind {
	case DriftNone, DriftWalk:
		if d.Magnitude < 0 || math.IsNaN(d.Magnitude) || math.IsInf(d.Magnitude, 0) {
			return fmt.Errorf("workload: drift magnitude must be finite and non-negative, got %v", d.Magnitude)
		}
	case DriftRamp, DriftStep:
		if d.Magnitude < 0 || d.Magnitude >= 1 || math.IsNaN(d.Magnitude) {
			return fmt.Errorf("workload: %s drift magnitude must be in [0, 1), got %v", d.Kind, d.Magnitude)
		}
	default:
		return fmt.Errorf("workload: unknown drift kind %d", int(d.Kind))
	}
	if d.Jitter < 0 || math.IsNaN(d.Jitter) || math.IsInf(d.Jitter, 0) {
		return fmt.Errorf("workload: drift jitter must be finite and non-negative, got %v", d.Jitter)
	}
	if d.StepAt < 0 {
		return fmt.Errorf("workload: drift step iteration must be non-negative, got %d", d.StepAt)
	}
	return nil
}

// walkClamp bounds the random walk so a rank's load cannot collapse to
// nothing or explode without limit.
const (
	walkMin = 0.25
	walkMax = 4.0
)

// Factors returns the per-rank load multipliers of iterations [0, iters):
// out[i][r] scales rank r's computation in iteration i relative to the base
// iteration. Deterministic for a given (Drift, n, iters). The zero-value
// Drift yields the constant 1.0 — exactly, so downstream replays are
// bit-identical to the undrifted ones.
func (d Drift) Factors(n, iters int) ([][]float64, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 || iters <= 0 {
		return nil, fmt.Errorf("workload: drift factors need positive ranks and iterations, got %d × %d", n, iters)
	}
	seed := d.Seed
	if seed == 0 {
		seed = 0x9e3779b9
	}
	rng := rand.New(rand.NewSource(seed))
	stepAt := d.StepAt
	if d.Kind == DriftStep && stepAt == 0 {
		stepAt = iters / 2
	}

	// tilt is the ramp/step direction: rank 0 gains load, the last rank
	// sheds it — reversed against the ascending base shapes (WRF,
	// SPECFEM3D), so the drift reorders which ranks are critical instead
	// of merely deepening the existing imbalance.
	tilt := func(r int) float64 {
		if n == 1 {
			return 0
		}
		return 1 - 2*float64(r)/float64(n-1)
	}

	walk := make([]float64, n)
	for r := range walk {
		walk[r] = 1
	}
	out := make([][]float64, iters)
	for i := 0; i < iters; i++ {
		row := make([]float64, n)
		if d.Kind == DriftWalk && i > 0 && d.Magnitude > 0 {
			for r := range walk {
				walk[r] *= math.Exp(rng.NormFloat64() * d.Magnitude)
				if walk[r] < walkMin {
					walk[r] = walkMin
				} else if walk[r] > walkMax {
					walk[r] = walkMax
				}
			}
		}
		for r := 0; r < n; r++ {
			switch d.Kind {
			case DriftRamp:
				progress := 0.0
				if iters > 1 {
					progress = float64(i) / float64(iters-1)
				}
				row[r] = 1 + d.Magnitude*progress*tilt(r)
			case DriftWalk:
				row[r] = walk[r]
			case DriftStep:
				if i >= stepAt {
					row[r] = 1 + d.Magnitude*tilt(r)
				} else {
					row[r] = 1
				}
			default: // DriftNone
				row[r] = 1
			}
		}
		if d.Jitter > 0 {
			for r := 0; r < n; r++ {
				row[r] *= math.Exp(rng.NormFloat64() * d.Jitter)
			}
		}
		out[i] = row
	}
	return out, nil
}
