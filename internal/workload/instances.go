package workload

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/stats"
)

// Instance identifies one application run of the paper's evaluation: an
// application, a process count and the Table 3 characteristics to calibrate
// to (both expressed as fractions, not percentages).
type Instance struct {
	Name     string  // e.g. "CG-64"
	App      string  // e.g. "CG"
	NProcs   int     // number of MPI processes
	TargetLB float64 // load balance to reproduce (eq. 4)
	TargetPE float64 // parallel efficiency to reproduce (eq. 5)
}

// Table3 returns the twelve application instances of the paper's Table 3,
// in the paper's order.
func Table3() []Instance {
	return []Instance{
		{"BT-MZ-32", "BT-MZ", 32, 0.3521, 0.3507},
		{"CG-32", "CG", 32, 0.9782, 0.7855},
		{"MG-32", "MG", 32, 0.9455, 0.8728},
		{"IS-32", "IS", 32, 0.4377, 0.0821},
		{"SPECFEM3D-32", "SPECFEM3D", 32, 0.9280, 0.9261},
		{"WRF-32", "WRF", 32, 0.9060, 0.8953},
		{"CG-64", "CG", 64, 0.9346, 0.6336},
		{"MG-64", "MG", 64, 0.9150, 0.8560},
		{"IS-64", "IS", 64, 0.4959, 0.1700},
		{"SPECFEM3D-96", "SPECFEM3D", 96, 0.7907, 0.7865},
		{"PEPC-128", "PEPC", 128, 0.7612, 0.6778},
		{"WRF-128", "WRF", 128, 0.9365, 0.8527},
	}
}

// Apps returns the distinct application names, in a stable order.
func Apps() []string {
	return []string{"BT-MZ", "CG", "IS", "MG", "PEPC", "SPECFEM3D", "WRF"}
}

// FindInstance returns the Table 3 instance with the given name.
func FindInstance(name string) (Instance, error) {
	for _, inst := range Table3() {
		if inst.Name == name {
			return inst, nil
		}
	}
	return Instance{}, fmt.Errorf("workload: unknown instance %q (want one of Table 3)", name)
}

// anchor is one (nprocs → LB, PE) data point from Table 3.
type anchor struct {
	n      int
	lb, pe float64
}

var anchors = map[string][]anchor{
	"BT-MZ":     {{32, 0.3521, 0.3507}},
	"CG":        {{32, 0.9782, 0.7855}, {64, 0.9346, 0.6336}},
	"MG":        {{32, 0.9455, 0.8728}, {64, 0.9150, 0.8560}},
	"IS":        {{32, 0.4377, 0.0821}, {64, 0.4959, 0.1700}},
	"SPECFEM3D": {{32, 0.9280, 0.9261}, {96, 0.7907, 0.7865}},
	"WRF":       {{32, 0.9060, 0.8953}, {128, 0.9365, 0.8527}},
	"PEPC":      {{128, 0.7612, 0.6778}},
}

// defaultLBSlope is the per-doubling load-balance drift applied when an
// application has a single Table 3 anchor: the paper's motivation is that
// imbalance tends to grow with cluster size (§1).
const defaultLBSlope = -0.04

// InstanceFor builds an instance for an arbitrary process count by
// interpolating (or extrapolating) the Table 3 characteristics in log₂
// space. It supports the cluster-size scaling studies the paper motivates.
func InstanceFor(app string, nprocs int) (Instance, error) {
	as, ok := anchors[app]
	if !ok {
		return Instance{}, fmt.Errorf("workload: unknown application %q (want one of %v)", app, Apps())
	}
	if nprocs < 2 {
		return Instance{}, fmt.Errorf("workload: need at least 2 processes, got %d", nprocs)
	}
	var lb, pe float64
	switch {
	case len(as) == 1:
		a := as[0]
		doublings := math.Log2(float64(nprocs) / float64(a.n))
		lb = a.lb + defaultLBSlope*doublings
		pe = lb * (a.pe / a.lb)
	default:
		sort.Slice(as, func(i, j int) bool { return as[i].n < as[j].n })
		lo, hi := as[0], as[len(as)-1]
		x := math.Log2(float64(nprocs))
		x0, x1 := math.Log2(float64(lo.n)), math.Log2(float64(hi.n))
		t := (x - x0) / (x1 - x0)
		lb = lo.lb + t*(hi.lb-lo.lb)
		pe = lo.pe + t*(hi.pe-lo.pe)
	}
	lb = stats.Clamp(lb, 0.05, 0.995)
	// Leave headroom below LB: even a communication-free replay loses a
	// little efficiency to synchronization, so a PE target too close to LB
	// would be unreachable.
	pe = stats.Clamp(pe, 0.02, 0.995*lb)
	return Instance{
		Name:     fmt.Sprintf("%s-%d", app, nprocs),
		App:      app,
		NProcs:   nprocs,
		TargetLB: lb,
		TargetPE: pe,
	}, nil
}

// seed derives a stable RNG seed from the instance name.
func (inst Instance) seed() int64 {
	h := fnv.New64a()
	h.Write([]byte(inst.Name))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// Validate checks instance parameters.
func (inst Instance) Validate() error {
	if inst.NProcs < 2 {
		return fmt.Errorf("workload: instance %q needs at least 2 processes", inst.Name)
	}
	if inst.TargetLB <= 0 || inst.TargetLB > 1 {
		return fmt.Errorf("workload: instance %q load balance %v outside (0, 1]", inst.Name, inst.TargetLB)
	}
	if inst.TargetPE <= 0 || inst.TargetPE > inst.TargetLB {
		return fmt.Errorf("workload: instance %q parallel efficiency %v outside (0, LB=%v]", inst.Name, inst.TargetPE, inst.TargetLB)
	}
	found := false
	for _, a := range Apps() {
		if a == inst.App {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("workload: instance %q has unknown application %q", inst.Name, inst.App)
	}
	return nil
}
