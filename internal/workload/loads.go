// Package workload generates the synthetic MPI application traces that stand
// in for the paper's PowerPC/Myrinet captures of NAS CG/MG/IS, BT-MZ,
// SPECFEM3D, WRF and PEPC.
//
// Each application instance is generated with its real communication-pattern
// class (ring exchanges, 2-D halos, all-to-all, all-gather, multi-zone
// point-to-point, two computation phases for PEPC) and with per-rank
// computation loads calibrated so that the Load Balance metric (eq. 4)
// matches Table 3 of the paper exactly, and the Parallel Efficiency (eq. 5)
// matches Table 3 after replay on the default platform. Everything is
// deterministic for a given instance.
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/stats"
)

// ErrUnreachableLB reports that a load shape has no spread, so no rescaling
// can reach the requested load balance.
var ErrUnreachableLB = errors.New("workload: load shape cannot reach target balance")

// calibrateLB rescales positive loads so that mean/max equals target
// exactly, preserving the ordering of ranks and keeping every load positive.
// The result is normalized to max = 1.
//
// Strategy: normalize to x = w/max ∈ (0, 1]; if the shape is too balanced
// (mean > target), repeatedly square the normalized loads to widen the
// spread; then affinely compress deviations from the maximum with
// k = (1−target)/(1−mean), which lands the mean exactly on target and keeps
// every value ≥ 1−k > 0.
func calibrateLB(loads []float64, target float64) ([]float64, error) {
	if len(loads) == 0 {
		return nil, errors.New("workload: empty load vector")
	}
	if target <= 0 || target > 1 {
		return nil, fmt.Errorf("workload: target load balance %v outside (0, 1]", target)
	}
	max := stats.Max(loads)
	if max <= 0 {
		return nil, errors.New("workload: loads must contain a positive maximum")
	}
	x := make([]float64, len(loads))
	for i, w := range loads {
		if w < 0 {
			return nil, fmt.Errorf("workload: negative load %v at rank %d", w, i)
		}
		x[i] = w / max
	}
	if target == 1 {
		for i := range x {
			x[i] = 1
		}
		return x, nil
	}
	// Widen spread until the shape is at least as imbalanced as requested.
	const maxSquarings = 200
	for s := 0; stats.Mean(x) > target; s++ {
		if s == maxSquarings {
			return nil, fmt.Errorf("%w (target %v)", ErrUnreachableLB, target)
		}
		before := stats.Mean(x)
		for i := range x {
			x[i] *= x[i]
		}
		if stats.Mean(x) >= before-1e-15 {
			return nil, fmt.Errorf("%w (no spread, target %v)", ErrUnreachableLB, target)
		}
	}
	// Compress deviations to hit the target mean exactly.
	mean := stats.Mean(x)
	k := (1 - target) / (1 - mean)
	for i := range x {
		x[i] = 1 - k*(1-x[i])
	}
	return x, nil
}

// Shape generators. All return positive loads with max ≈ 1 and are
// deterministic for a given rng state.

// noisyLoads models well-balanced stencil/iterative codes: unit loads with
// multiplicative log-normal-ish noise of relative scale sigma.
func noisyLoads(n int, rng *rand.Rand, sigma float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Exp(rng.NormFloat64() * sigma)
	}
	return stats.Normalize(out)
}

// rampLoads models codes whose work grows with rank index (domain position):
// a linear ramp from 1−spread to 1 with small noise.
func rampLoads(n int, rng *rand.Rand, spread, sigma float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		frac := 0.0
		if n > 1 {
			frac = float64(i) / float64(n-1)
		}
		out[i] = (1 - spread + spread*frac) * math.Exp(rng.NormFloat64()*sigma)
	}
	return stats.Normalize(out)
}

// skewLoads models value-dependent codes (bucket sort): loads follow
// floor + (1−floor)·u^pow, so a few ranks dominate.
func skewLoads(n int, rng *rand.Rand, floor, pow float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		u := rng.Float64()
		out[i] = floor + (1-floor)*math.Pow(u, pow)
	}
	// Guarantee one rank is the clear maximum so normalization is stable.
	out[rng.Intn(n)] = 1
	return stats.Normalize(out)
}

// zoneLoads models NPB multi-zone partitioning (BT-MZ): zone sizes grow
// geometrically and zones are dealt round-robin to ranks, so a few ranks
// receive far more work than the rest.
func zoneLoads(n int, rng *rand.Rand) []float64 {
	// BT-MZ class C has 256 zones with strongly varying sizes.
	zones := 2 * n
	sizes := make([]float64, zones)
	for i := range sizes {
		// Geometric growth with ratio spread ≈ 20× between the smallest
		// and largest zone, plus jitter.
		frac := float64(i) / float64(zones-1)
		sizes[i] = math.Pow(20, frac) * math.Exp(rng.NormFloat64()*0.1)
	}
	out := make([]float64, n)
	for i, s := range sizes {
		out[i%n] += s
	}
	return stats.Normalize(out)
}

// twoPhaseLoads builds the PEPC-like pair of per-phase load vectors: a tree
// construction phase whose cost ascends with rank and a force-evaluation
// phase whose cost descends, with phase weights wA and wB (wA+wB = 1).
// The mixing parameter λ ∈ [0, 1] controls how much spread each phase has;
// the caller bisects λ to reach a target *total* load balance.
func twoPhaseLoads(n int, rng *rand.Rand, wA, wB, lambda float64) (a, b []float64) {
	a = make([]float64, n)
	b = make([]float64, n)
	noiseA := make([]float64, n)
	noiseB := make([]float64, n)
	for i := 0; i < n; i++ {
		noiseA[i] = math.Exp(rng.NormFloat64() * 0.03)
		noiseB[i] = math.Exp(rng.NormFloat64() * 0.03)
	}
	for i := 0; i < n; i++ {
		frac := 0.0
		if n > 1 {
			frac = float64(i) / float64(n-1)
		}
		// Deviation from the mean grows with λ; ascending for the tree
		// phase, descending for the force phase. The tree-phase deviation
		// dominates so the anti-correlated phases do not cancel in the
		// totals (per-phase imbalance exceeds the total one), while the
		// force-phase deviation stays small enough that the per-phase
		// synchronization penalty (max A + max B vs. max total) leaves the
		// Table 3 parallel efficiency attainable.
		devA := lambda * (frac - 0.5) * 2.4
		devB := lambda * (0.5 - frac) * 0.45
		a[i] = wA * (1 + devA) * noiseA[i]
		b[i] = wB * (1 + devB) * noiseB[i]
		if a[i] < 1e-6 {
			a[i] = 1e-6
		}
		if b[i] < 1e-6 {
			b[i] = 1e-6
		}
	}
	return a, b
}

// totalsLB returns the load balance of the sum of two phase vectors.
func totalsLB(a, b []float64) float64 {
	tot := make([]float64, len(a))
	for i := range a {
		tot[i] = a[i] + b[i]
	}
	return stats.Mean(tot) / stats.Max(tot)
}

// calibrateTwoPhase bisects λ so the total load balance hits the target.
func calibrateTwoPhase(n int, seed int64, wA, wB, targetLB float64) (a, b []float64, err error) {
	gen := func(lambda float64) ([]float64, []float64) {
		rng := rand.New(rand.NewSource(seed))
		return twoPhaseLoads(n, rng, wA, wB, lambda)
	}
	lo, hi := 0.0, 1.0
	aLo, bLo := gen(lo)
	if totalsLB(aLo, bLo) < targetLB {
		return nil, nil, fmt.Errorf("workload: two-phase noise floor below target balance %v", targetLB)
	}
	aHi, bHi := gen(hi)
	if totalsLB(aHi, bHi) > targetLB {
		return nil, nil, fmt.Errorf("workload: two-phase spread cannot reach target balance %v", targetLB)
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		am, bm := gen(mid)
		if totalsLB(am, bm) > targetLB {
			lo = mid
		} else {
			hi = mid
		}
	}
	a, b = gen((lo + hi) / 2)
	return a, b, nil
}
