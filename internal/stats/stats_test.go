package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSumMeanMaxMin(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := Sum(xs); got != 14 {
		t.Errorf("Sum = %v, want 14", got)
	}
	if got := Mean(xs); got != 2.8 {
		t.Errorf("Mean = %v, want 2.8", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %v, want 5", got)
	}
	if got := Min(xs); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := ArgMax(xs); got != 4 {
		t.Errorf("ArgMax = %v, want 4", got)
	}
}

func TestEmptySlices(t *testing.T) {
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Max(nil); !math.IsInf(got, -1) {
		t.Errorf("Max(nil) = %v, want -Inf", got)
	}
	if got := Min(nil); !math.IsInf(got, 1) {
		t.Errorf("Min(nil) = %v, want +Inf", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Errorf("ArgMax(nil) = %v, want -1", got)
	}
	if got := StdDev(nil); got != 0 {
		t.Errorf("StdDev(nil) = %v", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %v", got)
	}
	if AllPositive(nil) {
		t.Error("AllPositive(nil) should be false")
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("constant StdDev = %v, want 0", got)
	}
	got := StdDev([]float64{1, 3})
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("StdDev{1,3} = %v, want 1", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("odd Median = %v, want 3", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even Median = %v, want 2.5", got)
	}
	// Median must not modify its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Median modified its input")
	}
}

func TestScaleNormalizeClamp(t *testing.T) {
	xs := []float64{1, 2, 4}
	Normalize(xs)
	if xs[2] != 1 || xs[0] != 0.25 {
		t.Errorf("Normalize = %v", xs)
	}
	ys := []float64{0, -1}
	Normalize(ys)
	if ys[0] != 0 || ys[1] != -1 {
		t.Errorf("Normalize of non-positive slice changed it: %v", ys)
	}
	if got := Clamp(5, 0, 3); got != 3 {
		t.Errorf("Clamp high = %v", got)
	}
	if got := Clamp(-5, 0, 3); got != 0 {
		t.Errorf("Clamp low = %v", got)
	}
	if got := Clamp(1, 0, 3); got != 1 {
		t.Errorf("Clamp mid = %v", got)
	}
}

func TestAllPositive(t *testing.T) {
	if !AllPositive([]float64{1, 2}) {
		t.Error("want true")
	}
	if AllPositive([]float64{1, 0}) {
		t.Error("want false with zero")
	}
	if AllPositive([]float64{-1}) {
		t.Error("want false with negative")
	}
}

// Property: Mean is between Min and Max for non-empty slices.
func TestMeanBoundsProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			if !math.IsNaN(r) && !math.IsInf(r, 0) {
				xs = append(xs, math.Mod(r, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: after Normalize of positive data the maximum is exactly 1.
func TestNormalizeProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			v := math.Abs(math.Mod(r, 100)) + 0.1
			xs = append(xs, v)
		}
		if len(xs) == 0 {
			return true
		}
		Normalize(xs)
		return math.Abs(Max(xs)-1) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
