// Package stats provides the small numeric helpers shared by the simulator,
// workload generators and report printers.
package stats

import (
	"math"
	"sort"
)

// Sum returns the sum of xs (0 for an empty slice).
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// ArgMax returns the index of the first maximum element, or -1 if empty.
func ArgMax(xs []float64) int {
	idx, m := -1, math.Inf(-1)
	for i, x := range xs {
		if x > m {
			m, idx = x, i
		}
	}
	return idx
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mu := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mu
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Median returns the median of xs (the average of the two middle elements
// for even lengths), or 0 for an empty slice. xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Scale multiplies every element by k, in place, and returns xs.
func Scale(xs []float64, k float64) []float64 {
	for i := range xs {
		xs[i] *= k
	}
	return xs
}

// Normalize divides every element by the maximum so the largest becomes 1.
// A slice whose maximum is <= 0 is returned unchanged.
func Normalize(xs []float64) []float64 {
	m := Max(xs)
	if m <= 0 {
		return xs
	}
	return Scale(xs, 1/m)
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// AllPositive reports whether every element is strictly positive.
func AllPositive(xs []float64) bool {
	for _, x := range xs {
		if x <= 0 {
			return false
		}
	}
	return len(xs) > 0
}
