package paraver

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

const sampleHeader = "#Paraver (01/01/2009 at 00:00):3000000000:1(2):1:2(1:1,1:2)\n"

func TestReadStatesBecomeComputeBursts(t *testing.T) {
	in := sampleHeader +
		"1:1:1:1:1:0:1000000000:1\n" + // task 1 runs 1s
		"1:2:1:2:1:0:500000000:1\n" + // task 2 runs 0.5s
		"1:2:1:2:1:500000000:700000000:3\n" // waiting state: skipped
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRanks() != 2 {
		t.Fatalf("ranks = %d", tr.NumRanks())
	}
	ct := tr.ComputeTimes()
	if math.Abs(ct[0]-1.0) > 1e-9 || math.Abs(ct[1]-0.5) > 1e-9 {
		t.Errorf("compute times = %v", ct)
	}
}

func TestReadCommBecomesSendRecv(t *testing.T) {
	in := sampleHeader +
		"1:1:1:1:1:0:1000000000:1\n" +
		"3:1:1:1:1:1000000000:1000000000:1:1:2:1:1200000000:1200000000:4096:7\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0: compute then send. Rank 1: recv.
	r0 := tr.Ranks[0]
	if len(r0) != 2 || r0[1].Kind != trace.KindSend || r0[1].Peer != 1 || r0[1].Bytes != 4096 || r0[1].Tag != 7 {
		t.Errorf("rank 0 = %+v", r0)
	}
	r1 := tr.Ranks[1]
	if len(r1) != 1 || r1[0].Kind != trace.KindRecv || r1[0].Peer != 0 {
		t.Errorf("rank 1 = %+v", r1)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("imported trace invalid: %v", err)
	}
}

func TestReadIterationEvents(t *testing.T) {
	in := sampleHeader +
		"1:1:1:1:1:0:1000000000:1\n" +
		"2:1:1:1:1:1000000000:90000001:1\n" +
		"2:1:1:1:1:1000000000:12345:9\n" // unrelated event: skipped
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	r0 := tr.Ranks[0]
	if len(r0) != 2 || r0[1].Kind != trace.KindIterMark {
		t.Errorf("rank 0 = %+v", r0)
	}
}

func TestReadOrdersByTimestamp(t *testing.T) {
	// Records out of file order must be sorted into timeline order.
	in := sampleHeader +
		"1:1:1:1:1:2000000000:3000000000:1\n" +
		"1:1:1:1:1:0:1000000000:1\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	r0 := tr.Ranks[0]
	if len(r0) != 2 {
		t.Fatalf("records = %+v", r0)
	}
	if math.Abs(r0[0].Duration-1.0) > 1e-9 {
		t.Errorf("first record should be the t=0 burst, got %+v", r0[0])
	}
}

func TestReadErrors(t *testing.T) {
	bad := []struct{ name, in string }{
		{"empty", ""},
		{"not paraver", "hello:world\n"},
		{"no task count", "#Paraver (x):100:1(2):1\n"},
		{"zero tasks", "#Paraver (x):100:1(2):1:0(1:1)\n"},
		{"task out of range", sampleHeader + "1:1:1:9:1:0:10:1\n"},
		{"short state", sampleHeader + "1:1:1:1:1:0:10\n"},
		{"bad begin", sampleHeader + "1:1:1:1:1:x:10:1\n"},
		{"end before begin", sampleHeader + "1:1:1:1:1:10:5:1\n"},
		{"short comm", sampleHeader + "3:1:1:1:1:0:0:1:1:2:1:0:0:10\n"},
		{"self comm", sampleHeader + "3:1:1:1:1:0:0:1:1:1:1:0:0:10:0\n"},
		{"negative size", sampleHeader + "3:1:1:1:1:0:0:1:1:2:1:0:0:-1:0\n"},
		{"odd event fields", sampleHeader + "2:1:1:1:1:0:90000001\n"},
		{"bad event value", sampleHeader + "2:1:1:1:1:0:90000001:x\n"},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tt.in)); err == nil {
				t.Errorf("Read(%q) should fail", tt.in)
			}
		})
	}
}

func TestReadSkipsUnknownAndComments(t *testing.T) {
	in := sampleHeader +
		"# a comment\n" +
		"c:1:2:3\n" + // communicator line
		"9:whatever\n" + // unknown record type
		"1:1:1:1:1:0:1000000000:1\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRecords() != 1 {
		t.Errorf("records = %d", tr.NumRecords())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	src := trace.New("roundtrip", 3)
	src.Add(0, trace.Compute(0.5), trace.Send(1, 1024, 3), trace.IterMark())
	src.Add(1, trace.Recv(0, 1024, 3), trace.Compute(0.25), trace.IterMark())
	src.Add(2, trace.Compute(0.75), trace.IterMark())

	var buf bytes.Buffer
	if err := Write(&buf, src); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRanks() != 3 {
		t.Fatalf("ranks = %d", back.NumRanks())
	}
	// Compute totals survive exactly.
	a, b := src.ComputeTimes(), back.ComputeTimes()
	for r := range a {
		if math.Abs(a[r]-b[r]) > 1e-9 {
			t.Errorf("rank %d compute %v != %v", r, b[r], a[r])
		}
	}
	// P2P structure survives.
	if err := back.Validate(); err != nil {
		t.Errorf("round-tripped trace invalid: %v", err)
	}
	if back.Iterations() != 1 {
		t.Errorf("iterations = %d", back.Iterations())
	}
}

func TestWriteGeneratedWorkload(t *testing.T) {
	inst, err := workload.FindInstance("CG-32")
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig()
	cfg.Iterations = 2
	cfg.SkipPECalibration = true
	tr, err := workload.Generate(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "#Paraver") {
		t.Error("missing header")
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := tr.ComputeTimes(), back.ComputeTimes()
	for r := range a {
		if math.Abs(a[r]-b[r]) > 1e-6 {
			t.Errorf("rank %d compute %v != %v", r, b[r], a[r])
		}
	}
}

func TestWriteRejectsUnmatchedRecv(t *testing.T) {
	badTrace := trace.New("bad", 2)
	badTrace.Add(0, trace.Recv(1, 10, 0))
	var buf bytes.Buffer
	if err := Write(&buf, badTrace); err == nil {
		t.Error("unmatched recv should fail to export")
	}
}
