package paraver

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/stagerr"
	"repro/internal/trace"
)

// Write exports a trace as a Paraver .prv file so it can be inspected in
// the real Paraver GUI (the paper's Figure 1 view).
//
// Timestamps are reconstructed with per-rank logical clocks: computation
// advances a rank's clock by its duration, sends and iteration markers are
// stamped at the current clock, and a receive is stamped at the matching
// send's timestamp (physical receive = logical send; the true arrival time
// is a property of the replayed platform, not of the trace). Collective
// records have no Paraver communication equivalent at this level and are
// exported as zero-duration events of type 90000002 carrying the collective
// kind, so a round trip preserves structure except collectives.
func Write(w io.Writer, t *trace.Trace) error {
	bw := bufio.NewWriter(w)
	n := t.NumRanks()

	// Pass 1: logical clocks for every record, so the header can carry the
	// final time and receives can reference their matching send times.
	type stamped struct {
		time float64
		rec  trace.Record
	}
	clocks := make([]float64, n)
	lines := make([][]stamped, n)
	type chKey struct{ src, dst, tag int }
	sendTimes := map[chKey][]float64{}
	var ftime float64

	for r := 0; r < n; r++ {
		for _, rec := range t.Ranks[r] {
			switch rec.Kind {
			case trace.KindCompute:
				lines[r] = append(lines[r], stamped{clocks[r], rec})
				clocks[r] += rec.Duration
			case trace.KindSend:
				k := chKey{r, rec.Peer, rec.Tag}
				sendTimes[k] = append(sendTimes[k], clocks[r])
				lines[r] = append(lines[r], stamped{clocks[r], rec})
			default:
				lines[r] = append(lines[r], stamped{clocks[r], rec})
			}
		}
		if clocks[r] > ftime {
			ftime = clocks[r]
		}
	}

	fmt.Fprintf(bw, "#Paraver (01/01/2009 at 00:00):%d:1(%d):1:%d", ns(ftime), n, n)
	for r := 1; r <= n; r++ {
		if r == 1 {
			fmt.Fprint(bw, "(")
		}
		fmt.Fprintf(bw, "1:%d", r)
		if r < n {
			fmt.Fprint(bw, ",")
		} else {
			fmt.Fprint(bw, ")")
		}
	}
	fmt.Fprintln(bw)

	recvSeen := map[chKey]int{}
	for r := 0; r < n; r++ {
		task := r + 1
		for _, st := range lines[r] {
			switch st.rec.Kind {
			case trace.KindCompute:
				fmt.Fprintf(bw, "1:%d:1:%d:1:%d:%d:%d\n",
					task, task, ns(st.time), ns(st.time+st.rec.Duration), stateRunning)
			case trace.KindSend:
				// Emitted once per pair from the sender side below via the
				// receiver pass; skip here to avoid duplicates.
			case trace.KindRecv:
				k := chKey{st.rec.Peer, r, st.rec.Tag}
				idx := recvSeen[k]
				recvSeen[k]++
				times := sendTimes[k]
				if idx >= len(times) {
					return stagerr.Errorf(stagerr.Parse, "paraver: unmatched recv on rank %d (channel %d→%d tag %d)",
						r, st.rec.Peer, r, st.rec.Tag)
				}
				sTime := times[idx]
				fmt.Fprintf(bw, "3:%d:1:%d:1:%d:%d:%d:1:%d:1:%d:%d:%d:%d\n",
					st.rec.Peer+1, st.rec.Peer+1, ns(sTime), ns(sTime),
					task, task, ns(st.time), ns(st.time),
					st.rec.Bytes, st.rec.Tag)
			case trace.KindColl:
				fmt.Fprintf(bw, "2:%d:1:%d:1:%d:%d:%d\n",
					task, task, ns(st.time), 90000002, int64(st.rec.Coll)+1)
			case trace.KindIterMark:
				fmt.Fprintf(bw, "2:%d:1:%d:1:%d:%d:%d\n",
					task, task, ns(st.time), IterationEventType, 1)
			}
		}
	}
	return bw.Flush()
}

func ns(seconds float64) int64 { return int64(seconds * nsPerSecond) }
