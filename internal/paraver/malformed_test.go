package paraver

import (
	"bufio"
	"strings"
	"testing"

	"repro/internal/stagerr"
)

// TestReadMalformedInputs drives the importer through truncated records,
// non-numeric fields and mid-record EOF: every case must come back as a
// parse-stage error — never a panic, never success.
func TestReadMalformedInputs(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty input", ""},
		{"not a paraver header", "#NotParaver whatever\n"},
		{"non-numeric task count", "#Paraver (x):100:1(2):1:zero(1:1)\n"},
		{"zero task count", "#Paraver (x):100:1(2):1:0(1:1)\n"},
		{"truncated header", "#Paraver (x):100\n"},
		{"truncated state record", sampleHeader + "1:1:1:1:1:0:100\n"},
		{"non-numeric task", sampleHeader + "1:1:1:x:1:0:100:1\n"},
		{"non-numeric begin", sampleHeader + "1:1:1:1:1:q:100:1\n"},
		{"state ends before it begins", sampleHeader + "1:1:1:1:1:200:100:1\n"},
		{"task out of range", sampleHeader + "1:1:1:9:1:0:100:1\n"},
		{"truncated comm record", sampleHeader + "3:1:1:1:1:0:0:1:1:2\n"},
		{"non-numeric comm size", sampleHeader + "3:1:1:1:1:0:0:1:1:2:1:0:0:big:7\n"},
		{"self communication", sampleHeader + "3:1:1:1:1:0:0:1:1:1:1:0:0:64:7\n"},
		{"odd event fields", sampleHeader + "2:1:1:1:1:0:90000001\n"},
		{"non-numeric event value", sampleHeader + "2:1:1:1:1:0:90000001:x\n"},
		{"eof mid-record", sampleHeader + "1:1:1:1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("malformed input parsed without error")
			}
			if st, ok := stagerr.StageOf(err); !ok || st != stagerr.Parse {
				t.Fatalf("stage = %v/%v, want parse (err: %v)", st, ok, err)
			}
		})
	}
}

// TestReadLineLongerThanScannerDefault is the regression test for the
// latent bufio.Scanner 64 KiB token limit: real .prv files carry whole
// communicator definitions on one line, which the default scanner buffer
// rejected wholesale.
func TestReadLineLongerThanScannerDefault(t *testing.T) {
	long := "# " + strings.Repeat("x", 1<<20)
	in := sampleHeader + long + "\n" + "1:1:1:1:1:0:1000000000:1\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("1 MiB comment line failed to parse: %v", err)
	}
	if tr.NumRanks() != 2 {
		t.Fatalf("ranks = %d, want 2", tr.NumRanks())
	}
}

// TestScanErrMapsTooLong pins the translation of the scanner's token-limit
// sentinel into a line-numbered parse-stage error.
func TestScanErrMapsTooLong(t *testing.T) {
	err := scanErr(bufio.ErrTooLong, 7)
	if !strings.Contains(err.Error(), "line 8") || !strings.Contains(err.Error(), "exceeds max line length") {
		t.Fatalf("scanErr(ErrTooLong, 7) = %v, want mention of line 8", err)
	}
	if st, ok := stagerr.StageOf(err); !ok || st != stagerr.Parse {
		t.Fatalf("stage = %v/%v, want parse", st, ok)
	}
}

// FuzzRead asserts the importer never panics: arbitrary bytes either parse
// into a well-formed trace or fail with a parse-stage error.
func FuzzRead(f *testing.F) {
	f.Add(sampleHeader + "1:1:1:1:1:0:1000000000:1\n")
	f.Add(sampleHeader + "3:1:1:1:1:0:0:1:1:2:1:0:0:64:7\n")
	f.Add(sampleHeader + "2:1:1:1:1:500:90000001:1\n")
	f.Add(sampleHeader + "1:1:1:1:1:0:100:q\n")
	f.Add(sampleHeader + "9:whatever\n# comment\nc communicator\n")
	f.Add("")
	f.Add("#Paraver (x):100\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := Read(strings.NewReader(in))
		if err != nil {
			if st, ok := stagerr.StageOf(err); !ok || st != stagerr.Parse {
				t.Fatalf("non-parse-stage parse failure: %v", err)
			}
			return
		}
		if tr.NumRanks() <= 0 {
			t.Fatalf("parsed trace with %d ranks", tr.NumRanks())
		}
	})
}
