// Package paraver converts between Paraver trace files (.prv) — the format
// the paper's methodology starts from — and this repository's trace model.
//
// The importer understands the subset of the Paraver format that carries
// the information the pipeline needs, mirroring what the prv2dim translator
// extracts for Dimemas:
//
//	1:cpu:appl:task:thread:begin:end:state      state records (ns); state 1 = Running → compute burst
//	2:cpu:appl:task:thread:time:type:value...   event records; type 90000001 → iteration marker
//	3:...send...:...recv...:size:tag            communication records → send/recv pairs
//
// The exporter writes our traces back out as .prv (with locally
// reconstructed timestamps) so they can be opened in the real Paraver for
// visual inspection, like the paper's Figure 1.
package paraver

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/stagerr"
	"repro/internal/trace"
)

// IterationEventType is the Paraver event type this package uses for
// iteration boundaries.
const IterationEventType = 90000001

// nsPerSecond converts Paraver nanosecond timestamps to seconds.
const nsPerSecond = 1e9

// ErrBadHeader reports a malformed .prv header.
var ErrBadHeader = errors.New("paraver: malformed header")

// MaxLineBytes bounds one line of a .prv stream. Real Paraver traces pack
// whole communicator definitions on single lines, so the bound is generous;
// a line exceeding it is reported by number instead of surfacing
// bufio.Scanner's cryptic "token too long".
const MaxLineBytes = 64 << 20

// scanErr converts a scanner failure into a parse-stage error. line is the
// last fully scanned line; the failure is on the next one.
func scanErr(err error, line int) error {
	if errors.Is(err, bufio.ErrTooLong) {
		return stagerr.Errorf(stagerr.Parse, "paraver: line %d exceeds max line length (%d bytes)", line+1, MaxLineBytes)
	}
	return stagerr.Wrap(stagerr.Parse, err)
}

// stateRunning is the Paraver state value meaning "useful computation".
const stateRunning = 1

// item is one timestamped occurrence on a rank's timeline while importing.
type item struct {
	time float64 // seconds
	seq  int     // tie-breaker preserving file order
	rec  trace.Record
}

// Read parses a .prv stream into a trace. Tasks map to ranks (task 1 →
// rank 0). Only Running states, communication records and iteration events
// are imported; everything else Paraver records (other states, other
// events) is irrelevant to the replay model and skipped.
func Read(r io.Reader) (*trace.Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), MaxLineBytes)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, scanErr(err, 0)
		}
		return nil, stagerr.Errorf(stagerr.Parse, "%w: empty input", ErrBadHeader)
	}
	header := sc.Text()
	ntasks, err := parseHeader(header)
	if err != nil {
		return nil, stagerr.Wrap(stagerr.Parse, err)
	}

	items := make([][]item, ntasks)
	seq := 0
	push := func(task int, t float64, rec trace.Record) error {
		if task < 1 || task > ntasks {
			return stagerr.Errorf(stagerr.Parse, "paraver: task %d out of range 1..%d", task, ntasks)
		}
		items[task-1] = append(items[task-1], item{time: t, seq: seq, rec: rec})
		seq++
		return nil
	}

	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "c") {
			continue // comments and communicator definitions
		}
		f := strings.Split(text, ":")
		var err error
		switch f[0] {
		case "1":
			err = parseState(f, push)
		case "2":
			err = parseEvent(f, push)
		case "3":
			err = parseComm(f, push)
		default:
			// Unknown record type: tolerate, like Paraver tools do.
			continue
		}
		if err != nil {
			return nil, stagerr.Errorf(stagerr.Parse, "paraver: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, scanErr(err, line)
	}

	out := trace.New("paraver-import", ntasks)
	for rank := range items {
		rs := items[rank]
		sort.SliceStable(rs, func(i, j int) bool {
			if rs[i].time != rs[j].time {
				return rs[i].time < rs[j].time
			}
			return rs[i].seq < rs[j].seq
		})
		for _, it := range rs {
			out.Add(rank, it.rec)
		}
	}
	return out, nil
}

// parseHeader extracts the total task count from a .prv header of the form
//
//	#Paraver (date):ftime:nNodes(cpus):nAppl:task_count(...)...
func parseHeader(h string) (int, error) {
	if !strings.HasPrefix(h, "#Paraver") {
		return 0, fmt.Errorf("%w: %q", ErrBadHeader, h)
	}
	// Strip the parenthesized date so the remaining fields split on ':'.
	rest := h
	if i := strings.Index(h, ")"); i >= 0 {
		rest = h[i+1:]
	}
	rest = strings.TrimPrefix(rest, ":")
	fields := strings.Split(rest, ":")
	// fields: ftime, nNodes(cpus), nAppl, appl1 "ntasks(...)", ...
	if len(fields) < 4 {
		return 0, fmt.Errorf("%w: %d header fields", ErrBadHeader, len(fields))
	}
	appl := fields[3]
	ntStr := appl
	if i := strings.Index(appl, "("); i >= 0 {
		ntStr = appl[:i]
	}
	ntasks, err := strconv.Atoi(strings.TrimSpace(ntStr))
	if err != nil || ntasks <= 0 {
		return 0, fmt.Errorf("%w: bad task count %q", ErrBadHeader, appl)
	}
	return ntasks, nil
}

func parseState(f []string, push func(int, float64, trace.Record) error) error {
	if len(f) != 8 {
		return fmt.Errorf("state record needs 8 fields, got %d", len(f))
	}
	task, err := strconv.Atoi(f[3])
	if err != nil {
		return fmt.Errorf("bad task %q", f[3])
	}
	begin, err := strconv.ParseFloat(f[5], 64)
	if err != nil {
		return fmt.Errorf("bad begin %q", f[5])
	}
	end, err := strconv.ParseFloat(f[6], 64)
	if err != nil {
		return fmt.Errorf("bad end %q", f[6])
	}
	state, err := strconv.Atoi(f[7])
	if err != nil {
		return fmt.Errorf("bad state %q", f[7])
	}
	if state != stateRunning {
		return nil // waiting/blocked/etc. emerge from the replay model
	}
	if end < begin {
		return fmt.Errorf("state ends (%v) before it begins (%v)", end, begin)
	}
	return push(task, begin/nsPerSecond, trace.Compute((end-begin)/nsPerSecond))
}

func parseEvent(f []string, push func(int, float64, trace.Record) error) error {
	if len(f) < 8 || len(f)%2 != 0 {
		return fmt.Errorf("event record needs 6+2k fields, got %d", len(f))
	}
	task, err := strconv.Atoi(f[3])
	if err != nil {
		return fmt.Errorf("bad task %q", f[3])
	}
	t, err := strconv.ParseFloat(f[5], 64)
	if err != nil {
		return fmt.Errorf("bad time %q", f[5])
	}
	for i := 6; i+1 < len(f); i += 2 {
		typ, err := strconv.Atoi(f[i])
		if err != nil {
			return fmt.Errorf("bad event type %q", f[i])
		}
		val, err := strconv.ParseInt(f[i+1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad event value %q", f[i+1])
		}
		if typ == IterationEventType && val > 0 {
			if err := push(task, t, trace.IterMark()); err != nil {
				return err
			}
		}
	}
	return nil
}

func parseComm(f []string, push func(int, float64, trace.Record) error) error {
	if len(f) != 15 {
		return fmt.Errorf("comm record needs 15 fields, got %d", len(f))
	}
	sTask, err := strconv.Atoi(f[3])
	if err != nil {
		return fmt.Errorf("bad send task %q", f[3])
	}
	lsend, err := strconv.ParseFloat(f[5], 64)
	if err != nil {
		return fmt.Errorf("bad logical send %q", f[5])
	}
	rTask, err := strconv.Atoi(f[9])
	if err != nil {
		return fmt.Errorf("bad recv task %q", f[9])
	}
	lrecv, err := strconv.ParseFloat(f[11], 64)
	if err != nil {
		return fmt.Errorf("bad logical recv %q", f[11])
	}
	size, err := strconv.ParseInt(f[13], 10, 64)
	if err != nil || size < 0 {
		return fmt.Errorf("bad size %q", f[13])
	}
	tag, err := strconv.Atoi(f[14])
	if err != nil {
		return fmt.Errorf("bad tag %q", f[14])
	}
	if sTask == rTask {
		return fmt.Errorf("self communication on task %d", sTask)
	}
	if err := push(sTask, lsend/nsPerSecond, trace.Send(rTask-1, size, tag)); err != nil {
		return err
	}
	return push(rTask, lrecv/nsPerSecond, trace.Recv(sTask-1, size, tag))
}
