// Package core implements the paper's primary contribution: the power-aware
// load-balancing algorithms that assign one DVFS gear per MPI process so
// that all processes finish their computation phases at (approximately) the
// same time (§3.1).
//
// MAX (the static form of the Jitter system, prior work used as baseline):
// the target computation time is the *maximum* original computation time.
// Every CPU therefore runs at or below the nominal top frequency and the
// most loaded rank keeps the top gear.
//
// AVG (the new algorithm): the target is the *average* original computation
// time, which requires over-clocking the most loaded ranks. When the load
// imbalance is so high that the average is unattainable within the available
// frequency range, the target is moved to the closest attainable time.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dvfs"
	"repro/internal/stats"
	"repro/internal/timemodel"
)

// Algorithm selects a frequency-assignment policy.
type Algorithm int

const (
	// MAX balances every process to the maximum computation time.
	MAX Algorithm = iota
	// AVG balances every process to the average computation time, using
	// over-clocking for processes above the average.
	AVG
)

func (a Algorithm) String() string {
	switch a {
	case MAX:
		return "MAX"
	case AVG:
		return "AVG"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Assignment is the outcome of one balancing decision.
type Assignment struct {
	// Gears holds the per-rank frequency/voltage operating points.
	Gears []dvfs.Gear
	// Target is the computation time (seconds) the algorithm balanced to.
	Target float64
	// Overclocked counts ranks assigned a frequency above the nominal fmax.
	Overclocked int
	// Algorithm records which policy produced the assignment.
	Algorithm Algorithm
}

// Freqs returns the per-rank frequencies of the assignment.
func (a *Assignment) Freqs() []float64 {
	out := make([]float64, len(a.Gears))
	for i, g := range a.Gears {
		out[i] = g.Freq
	}
	return out
}

// OverclockedFraction returns the share of ranks running above nominal fmax.
func (a *Assignment) OverclockedFraction() float64 {
	if len(a.Gears) == 0 {
		return 0
	}
	return float64(a.Overclocked) / float64(len(a.Gears))
}

// Rounding selects how a computed frequency maps onto a discrete gear set.
type Rounding int

const (
	// RoundUp picks the closest higher gear — the paper's rule, which
	// guarantees the balanced computation never exceeds the target time.
	RoundUp Rounding = iota
	// RoundNearest picks the closest gear in either direction — an
	// ablation that saves more energy but may stretch the critical path.
	RoundNearest
)

func (r Rounding) String() string {
	switch r {
	case RoundUp:
		return "up"
	case RoundNearest:
		return "nearest"
	default:
		return fmt.Sprintf("Rounding(%d)", int(r))
	}
}

// Balancer computes frequency assignments from per-rank computation times.
type Balancer struct {
	// Set is the available gear set (possibly including over-clock gears).
	Set *dvfs.Set
	// Beta is the memory-boundedness parameter used to translate time
	// targets into frequencies.
	Beta float64
	// FMax is the manufacturer's nominal top frequency; frequencies above
	// it count as over-clocking. It need not be the set's top gear (the
	// AVG variants extend the set beyond FMax).
	FMax float64
	// Rounding selects the gear-quantization rule (zero value: the paper's
	// closest-higher rule).
	Rounding Rounding
	// Margin is the guard band an online controller leaves below the
	// target: gears are chosen so each rank finishes its computation in
	// (1−Margin)·target, absorbing run-to-run load noise that would
	// otherwise push a stretched rank past the critical path and extend
	// the iteration. The paper's offline assignment (and the reported
	// Assignment.Target) uses the unshrunk target; Margin only biases the
	// quantized gear choice upward. Zero — the offline default — keeps the
	// assignment exactly as published.
	Margin float64
	// FMaxes optionally caps each rank's assignable frequency — the
	// per-rank gear ceiling of a heterogeneous machine
	// (dimemas.Capability.FMax). A nil slice or a zero entry means the
	// rank can use the whole set. Capped ranks are clamped to the fastest
	// gear at or below their ceiling, and the balancing target is lifted
	// to stay attainable for them (a rank that cannot reach the target at
	// its own top gear would otherwise become the new critical path).
	FMaxes []float64
}

// Errors returned by Assign.
var (
	ErrNoRanks = errors.New("core: need at least one rank")
	ErrNilSet  = errors.New("core: gear set must not be nil")
)

// NewBalancer builds a Balancer with the paper's nominal fmax.
func NewBalancer(set *dvfs.Set, beta float64) (*Balancer, error) {
	b := &Balancer{Set: set, Beta: beta, FMax: dvfs.FMax}
	if err := b.validate(); err != nil {
		return nil, err
	}
	return b, nil
}

func (b *Balancer) validate() error {
	if b.Set == nil {
		return ErrNilSet
	}
	if b.Beta < 0 || b.Beta > 1 || math.IsNaN(b.Beta) {
		return fmt.Errorf("%w (got %v)", timemodel.ErrBadBeta, b.Beta)
	}
	if b.FMax <= 0 {
		return fmt.Errorf("%w (got %v)", timemodel.ErrBadFrequency, b.FMax)
	}
	if b.Margin < 0 || b.Margin >= 1 || math.IsNaN(b.Margin) {
		return fmt.Errorf("core: margin %v outside [0, 1)", b.Margin)
	}
	return nil
}

// Assign computes the per-rank gear assignment for the given algorithm from
// the per-rank computation times (measured at the nominal top frequency).
func (b *Balancer) Assign(alg Algorithm, compTimes []float64) (*Assignment, error) {
	if err := b.validate(); err != nil {
		return nil, err
	}
	if len(compTimes) == 0 {
		return nil, ErrNoRanks
	}
	for r, c := range compTimes {
		if c < 0 || math.IsNaN(c) {
			return nil, fmt.Errorf("core: rank %d has invalid computation time %v", r, c)
		}
	}
	if b.FMaxes != nil {
		if len(b.FMaxes) != len(compTimes) {
			return nil, fmt.Errorf("core: %d per-rank fmax entries for %d ranks", len(b.FMaxes), len(compTimes))
		}
		for r, f := range b.FMaxes {
			if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
				return nil, fmt.Errorf("core: rank %d has invalid fmax cap %v", r, f)
			}
		}
	}
	var target float64
	switch alg {
	case MAX:
		target = stats.Max(compTimes)
		if b.FMaxes != nil {
			// A capped loaded rank may be unable to reach the maximum; lift
			// the target to its best attainable time so the others do not
			// balance to a time nobody finishes at.
			if floor := b.attainableFloor(compTimes); floor > target {
				target = floor
			}
		}
	case AVG:
		target = b.attainableAverageTarget(compTimes)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %d", int(alg))
	}

	out := &Assignment{
		Gears:     make([]dvfs.Gear, len(compTimes)),
		Target:    target,
		Algorithm: alg,
	}
	// The guard band biases only the frequency demand, not the reported
	// target: when Margin is zero, goal == target and the assignment is
	// bit-identical to the paper's.
	goal := target
	if b.Margin > 0 {
		goal = target * (1 - b.Margin)
	}
	for r, c := range compTimes {
		want := timemodel.RequiredFrequency(b.Beta, b.FMax, c, goal)
		if want <= 0 {
			// Idle rank: park it at the lowest gear; it has no computation
			// to stretch, so any frequency keeps it on time.
			out.Gears[r] = b.Set.Bottom()
			continue
		}
		var g dvfs.Gear
		switch b.Rounding {
		case RoundNearest:
			g = b.Set.QuantizeNearest(want)
		default:
			g = b.Set.Quantize(want)
		}
		if cap := b.rankCap(r); cap > 0 && g.Freq > cap+1e-12 {
			g = b.Set.QuantizeDown(cap)
		}
		out.Gears[r] = g
		if g.Freq > b.FMax+1e-12 {
			out.Overclocked++
		}
	}
	return out, nil
}

// rankCap returns rank r's frequency ceiling, or 0 when uncapped.
func (b *Balancer) rankCap(r int) float64 {
	if b.FMaxes == nil || r >= len(b.FMaxes) {
		return 0
	}
	return b.FMaxes[r]
}

// attainableAverageTarget implements the paper's AVG feasibility rule:
// "whenever because of high degree of load imbalance it is not possible to
// scale all computation times to the average value, the frequencies are
// determined so that the target computation time is the closest one to the
// average but attainable with the available frequency range."
//
// The binding constraint is the most loaded rank at the set's top gear:
// no rank can finish faster than its time at the maximum available
// frequency, so the target is max(average, slowest rank's best time).
func (b *Balancer) attainableAverageTarget(compTimes []float64) float64 {
	avg := stats.Mean(compTimes)
	return math.Max(avg, b.attainableFloor(compTimes))
}

// attainableFloor is the fastest time every rank can still reach: each rank
// is bounded by the set's top gear, further capped by its own frequency
// ceiling on heterogeneous machines.
func (b *Balancer) attainableFloor(compTimes []float64) float64 {
	top := b.Set.Top().Freq
	floor := 0.0
	for r, c := range compTimes {
		rtop := top
		if cap := b.rankCap(r); cap > 0 && cap < rtop {
			rtop = cap
		}
		if t := timemodel.MinAttainableTime(b.Beta, b.FMax, c, rtop); t > floor {
			floor = t
		}
	}
	return floor
}

// PredictedComputeTimes returns each rank's computation time under the
// assignment, per the β model — useful for verifying that the balancing
// target is met before running the full replay.
func (b *Balancer) PredictedComputeTimes(a *Assignment, compTimes []float64) []float64 {
	out := make([]float64, len(compTimes))
	for r, c := range compTimes {
		out[r] = c * timemodel.Slowdown(b.Beta, b.FMax, a.Gears[r].Freq)
	}
	return out
}
