package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dvfs"
	"repro/internal/stats"
	"repro/internal/timemodel"
)

func mustBalancer(t *testing.T, set *dvfs.Set, beta float64) *Balancer {
	t.Helper()
	b, err := NewBalancer(set, beta)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBalancerValidation(t *testing.T) {
	six, _ := dvfs.Uniform(6)
	if _, err := NewBalancer(nil, 0.5); err == nil {
		t.Error("nil set should fail")
	}
	if _, err := NewBalancer(six, -0.1); err == nil {
		t.Error("bad beta should fail")
	}
	if _, err := NewBalancer(six, 0.5); err != nil {
		t.Errorf("valid balancer failed: %v", err)
	}
}

func TestAssignValidation(t *testing.T) {
	b := mustBalancer(t, dvfs.ContinuousLimited(), 0.5)
	if _, err := b.Assign(MAX, nil); err == nil {
		t.Error("empty comp times should fail")
	}
	if _, err := b.Assign(MAX, []float64{1, -2}); err == nil {
		t.Error("negative comp time should fail")
	}
	if _, err := b.Assign(Algorithm(42), []float64{1}); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

// TestMarginBiasesGearsUpward: a guard band never picks a slower gear than
// the zero-margin assignment, leaves the reported target untouched, targets
// (1−Margin)·target exactly on continuous sets, and rejects margins outside
// [0, 1).
func TestMarginBiasesGearsUpward(t *testing.T) {
	comp := []float64{1.0, 0.8, 0.55, 0.3, 0.95}
	six, _ := dvfs.Uniform(6)
	plain := mustBalancer(t, six, 0.5)
	guarded := &Balancer{Set: six, Beta: 0.5, FMax: dvfs.FMax, Margin: 0.08}
	a, err := plain.Assign(MAX, comp)
	if err != nil {
		t.Fatal(err)
	}
	g, err := guarded.Assign(MAX, comp)
	if err != nil {
		t.Fatal(err)
	}
	if g.Target != a.Target {
		t.Errorf("margin changed the reported target: %v vs %v", g.Target, a.Target)
	}
	for r := range comp {
		if g.Gears[r].Freq < a.Gears[r].Freq {
			t.Errorf("rank %d: margin picked a slower gear (%v) than zero-margin (%v)", r, g.Gears[r], a.Gears[r])
		}
	}
	// On a continuous set the guard band is exact: every non-critical rank
	// finishes in (1−Margin)·target.
	cont := &Balancer{Set: dvfs.ContinuousUnlimited(), Beta: 0.5, FMax: dvfs.FMax, Margin: 0.1}
	ac, err := cont.Assign(MAX, comp)
	if err != nil {
		t.Fatal(err)
	}
	goal := ac.Target * 0.9
	for r, c := range comp {
		// Ranks that would need over-clocking to reach the shrunk goal
		// clamp to the set's top (their compute stays at c); everyone else
		// lands on the goal exactly.
		want := math.Max(goal, c)
		got := c * timemodel.Slowdown(0.5, dvfs.FMax, ac.Gears[r].Freq)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("rank %d: guarded compute %v, want %v", r, got, want)
		}
	}
	for _, bad := range []float64{-0.1, 1.0, math.NaN()} {
		b := &Balancer{Set: six, Beta: 0.5, FMax: dvfs.FMax, Margin: bad}
		if _, err := b.Assign(MAX, comp); err == nil {
			t.Errorf("margin %v accepted", bad)
		}
	}
}

func TestMaxContinuousExact(t *testing.T) {
	// Unlimited continuous set: every rank hits the target exactly.
	b := mustBalancer(t, dvfs.ContinuousUnlimited(), 0.5)
	comp := []float64{1.0, 0.5, 0.25}
	a, err := b.Assign(MAX, comp)
	if err != nil {
		t.Fatal(err)
	}
	if a.Target != 1.0 {
		t.Errorf("target = %v, want 1", a.Target)
	}
	// Most loaded rank keeps fmax.
	if math.Abs(a.Gears[0].Freq-dvfs.FMax) > 1e-12 {
		t.Errorf("rank 0 freq = %v, want fmax", a.Gears[0].Freq)
	}
	// Half-loaded rank: fmax/3 (worked example, β=0.5).
	if math.Abs(a.Gears[1].Freq-dvfs.FMax/3) > 1e-12 {
		t.Errorf("rank 1 freq = %v, want fmax/3", a.Gears[1].Freq)
	}
	// Predicted times all equal the target.
	for r, pt := range b.PredictedComputeTimes(a, comp) {
		if math.Abs(pt-1.0) > 1e-9 {
			t.Errorf("rank %d predicted %v, want 1", r, pt)
		}
	}
	if a.Overclocked != 0 {
		t.Errorf("MAX must not overclock, got %d", a.Overclocked)
	}
}

func TestMaxDiscreteNeverExceedsTarget(t *testing.T) {
	six, _ := dvfs.Uniform(6)
	b := mustBalancer(t, six, 0.5)
	comp := []float64{1.0, 0.9, 0.7, 0.5, 0.3, 0.1}
	a, err := b.Assign(MAX, comp)
	if err != nil {
		t.Fatal(err)
	}
	for r, pt := range b.PredictedComputeTimes(a, comp) {
		// Quantizing to the closest *higher* gear keeps every rank at or
		// below the target time.
		if pt > a.Target+1e-9 {
			t.Errorf("rank %d predicted time %v exceeds target %v", r, pt, a.Target)
		}
		if !six.Contains(a.Gears[r].Freq) {
			t.Errorf("rank %d assigned non-member gear %v", r, a.Gears[r])
		}
	}
}

func TestMaxIdleRankParksAtBottom(t *testing.T) {
	six, _ := dvfs.Uniform(6)
	b := mustBalancer(t, six, 0.5)
	a, err := b.Assign(MAX, []float64{1.0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Gears[1].Freq-0.8) > 1e-12 {
		t.Errorf("idle rank gear = %v, want bottom 0.8", a.Gears[1])
	}
}

func TestMaxPerfectBalanceKeepsTopGear(t *testing.T) {
	// CG-32-like: nearly perfect balance gives no scaling opportunity.
	six, _ := dvfs.Uniform(6)
	b := mustBalancer(t, six, 0.5)
	a, err := b.Assign(MAX, []float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for r, g := range a.Gears {
		if math.Abs(g.Freq-dvfs.FMax) > 1e-12 {
			t.Errorf("rank %d gear = %v, want fmax", r, g)
		}
	}
}

func TestAvgOverclocksMostLoaded(t *testing.T) {
	// Continuous set with 10% over-clock headroom.
	lim := dvfs.ContinuousLimited()
	oc, err := lim.ScaleMax(1.10)
	if err != nil {
		t.Fatal(err)
	}
	b := mustBalancer(t, oc, 0.5)
	// β=0.5 with +10% over-clock shortens the slowest rank by ~4.5% at
	// most, so keep the average within that reach of the maximum.
	comp := []float64{1.0, 0.98, 0.97, 0.99}
	a, err := b.Assign(AVG, comp)
	if err != nil {
		t.Fatal(err)
	}
	avg := stats.Mean(comp)
	if math.Abs(a.Target-avg) > 1e-9 {
		t.Errorf("mild imbalance: target = %v, want avg %v", a.Target, avg)
	}
	if a.Gears[0].Freq <= dvfs.FMax {
		t.Errorf("most loaded rank should overclock, got %v", a.Gears[0].Freq)
	}
	if a.Overclocked == 0 {
		t.Error("expected at least one overclocked rank")
	}
	if f := a.OverclockedFraction(); f <= 0 || f > 1 {
		t.Errorf("overclocked fraction = %v", f)
	}
}

func TestAvgClampsUnattainableTarget(t *testing.T) {
	// Extreme imbalance: average is unattainable within +10%; target must be
	// the closest attainable time (the slowest rank at the top gear).
	oc, _ := dvfs.ContinuousLimited().ScaleMax(1.10)
	b := mustBalancer(t, oc, 0.5)
	comp := []float64{1.0, 0.01, 0.01, 0.01}
	a, err := b.Assign(AVG, comp)
	if err != nil {
		t.Fatal(err)
	}
	avg := stats.Mean(comp)
	best := timemodel.MinAttainableTime(0.5, dvfs.FMax, 1.0, oc.Top().Freq)
	if a.Target <= avg {
		t.Errorf("target %v should exceed unattainable avg %v", a.Target, avg)
	}
	if math.Abs(a.Target-best) > 1e-9 {
		t.Errorf("target = %v, want closest attainable %v", a.Target, best)
	}
	// The most loaded rank must sit at the top of the extended range.
	if math.Abs(a.Gears[0].Freq-oc.Top().Freq) > 1e-9 {
		t.Errorf("rank 0 freq = %v, want %v", a.Gears[0].Freq, oc.Top().Freq)
	}
}

func TestAvgDiscreteWithOverclockGear(t *testing.T) {
	six, _ := dvfs.Uniform(6)
	oc, err := six.WithOverclockGear(dvfs.Gear{Freq: dvfs.OverclockFreq, Volt: dvfs.OverclockVolt})
	if err != nil {
		t.Fatal(err)
	}
	b := mustBalancer(t, oc, 0.5)
	comp := []float64{1.0, 0.8, 0.85, 0.9}
	a, err := b.Assign(AVG, comp)
	if err != nil {
		t.Fatal(err)
	}
	// All gears must be members; overclocked ranks use the 2.6 gear.
	for r, g := range a.Gears {
		if !oc.Contains(g.Freq) {
			t.Errorf("rank %d gear %v not in set", r, g)
		}
	}
	if a.Gears[0].Freq != dvfs.OverclockFreq {
		t.Errorf("rank 0 freq = %v, want 2.6", a.Gears[0].Freq)
	}
}

func TestAvgTargetNeverAboveMax(t *testing.T) {
	oc, _ := dvfs.ContinuousLimited().ScaleMax(1.20)
	b := mustBalancer(t, oc, 0.5)
	comp := []float64{2.0, 1.0, 0.5, 1.5}
	aAvg, err := b.Assign(AVG, comp)
	if err != nil {
		t.Fatal(err)
	}
	aMax, err := b.Assign(MAX, comp)
	if err != nil {
		t.Fatal(err)
	}
	if aAvg.Target > aMax.Target {
		t.Errorf("AVG target %v exceeds MAX target %v", aAvg.Target, aMax.Target)
	}
}

func TestAlgorithmString(t *testing.T) {
	if MAX.String() != "MAX" || AVG.String() != "AVG" {
		t.Error("algorithm names")
	}
	if Algorithm(7).String() == "" {
		t.Error("unknown algorithm should render")
	}
}

func TestFreqsAccessor(t *testing.T) {
	b := mustBalancer(t, dvfs.ContinuousUnlimited(), 0.5)
	a, err := b.Assign(MAX, []float64{1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	fs := a.Freqs()
	if len(fs) != 2 || fs[0] != a.Gears[0].Freq {
		t.Errorf("Freqs = %v", fs)
	}
}

// Property: MAX never assigns a frequency above nominal fmax and never
// overclocks, for any load vector and any studied gear set.
func TestMaxNeverOverclocksProperty(t *testing.T) {
	six, _ := dvfs.Uniform(6)
	exp, _ := dvfs.Exponential(5)
	sets := []*dvfs.Set{dvfs.ContinuousUnlimited(), dvfs.ContinuousLimited(), six, exp}
	for _, set := range sets {
		b := mustBalancer(t, set, 0.5)
		prop := func(raw [8]float64) bool {
			comp := make([]float64, 8)
			for i, rv := range raw {
				comp[i] = math.Abs(math.Mod(rv, 10)) + 0.01
			}
			a, err := b.Assign(MAX, comp)
			if err != nil {
				return false
			}
			if a.Overclocked != 0 {
				return false
			}
			for _, g := range a.Gears {
				if g.Freq > dvfs.FMax+1e-12 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("set %s: %v", set.Name(), err)
		}
	}
}

// Property: under MAX with a discrete set, predicted computation times never
// exceed the original maximum (so the computation critical path cannot grow).
func TestMaxPreservesCriticalPathProperty(t *testing.T) {
	six, _ := dvfs.Uniform(6)
	b := mustBalancer(t, six, 0.5)
	prop := func(raw [6]float64) bool {
		comp := make([]float64, 6)
		for i, rv := range raw {
			comp[i] = math.Abs(math.Mod(rv, 10)) + 0.01
		}
		a, err := b.Assign(MAX, comp)
		if err != nil {
			return false
		}
		for _, pt := range b.PredictedComputeTimes(a, comp) {
			if pt > a.Target+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: AVG's balanced computation times are never longer than MAX's
// target, and its target is between the average and the maximum.
func TestAvgTargetBoundsProperty(t *testing.T) {
	oc, _ := dvfs.ContinuousLimited().ScaleMax(1.20)
	b := mustBalancer(t, oc, 0.5)
	prop := func(raw [8]float64) bool {
		comp := make([]float64, 8)
		for i, rv := range raw {
			comp[i] = math.Abs(math.Mod(rv, 10)) + 0.01
		}
		a, err := b.Assign(AVG, comp)
		if err != nil {
			return false
		}
		avg := stats.Mean(comp)
		max := stats.Max(comp)
		return a.Target >= avg-1e-9 && a.Target <= max+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRoundingModes(t *testing.T) {
	six, _ := dvfs.Uniform(6)
	comp := []float64{1.0, 0.62} // rank 1 wants an interior frequency
	up := mustBalancer(t, six, 0.5)
	aUp, err := up.Assign(MAX, comp)
	if err != nil {
		t.Fatal(err)
	}
	nearest := &Balancer{Set: six, Beta: 0.5, FMax: dvfs.FMax, Rounding: RoundNearest}
	aNear, err := nearest.Assign(MAX, comp)
	if err != nil {
		t.Fatal(err)
	}
	// Nearest rounding never picks a faster gear than round-up.
	for r := range comp {
		if aNear.Gears[r].Freq > aUp.Gears[r].Freq+1e-12 {
			t.Errorf("rank %d: nearest %v above round-up %v", r, aNear.Gears[r], aUp.Gears[r])
		}
	}
	// With nearest rounding a rank may exceed the target time; with
	// round-up it never does (checked extensively elsewhere). Here just
	// confirm the two modes can differ.
	if aNear.Gears[1] == aUp.Gears[1] {
		t.Logf("modes agreed on this input (gear grid aligned); gears=%v", aNear.Gears)
	}
	if RoundUp.String() != "up" || RoundNearest.String() != "nearest" || Rounding(9).String() == "" {
		t.Error("rounding names")
	}
}
