package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log"
	"net/http"
	"runtime/debug"

	"repro/internal/stagerr"
)

// RequestIDHeader is the header the daemon reads a caller-supplied request
// ID from and echoes — generated server-side when absent — on every
// response, including errors and panics. The same ID rides in every error
// envelope's request_id field, so a client log line and a server log line
// about the same failure can be joined.
const RequestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds an inbound request ID; longer (or non-token) IDs
// are replaced rather than truncated, so a hostile header cannot smuggle
// bytes into logs or envelopes.
const maxRequestIDLen = 64

type requestIDKey struct{}

// requestID returns the ID the lifecycle middleware stored in ctx, or ""
// for contexts that never passed through it (direct library use, tests).
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// newRequestID returns a fresh 16-hex-digit random ID.
func newRequestID() string {
	var b [8]byte
	// crypto/rand.Read never fails on supported platforms; a zero ID is
	// still a valid (if degenerate) correlation token.
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID accepts an inbound ID only if it is a short, plain
// token: 1..64 bytes of [A-Za-z0-9._-]. Anything else returns "" and the
// server assigns its own.
func sanitizeRequestID(id string) string {
	if len(id) == 0 || len(id) > maxRequestIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '-', c == '_', c == '.':
		default:
			return ""
		}
	}
	return id
}

// withLifecycle is the root middleware every route (including /healthz and
// /metrics) runs under. It assigns/echoes the request ID and contains
// handler panics: a panicking request logs the stack, bumps the panic
// counter, and answers a well-formed 500 envelope instead of killing the
// daemon's connection (or, worse, the process).
func (s *Server) withLifecycle(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeRequestID(r.Header.Get(RequestIDHeader))
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			s.reg.panicked()
			log.Printf("pwrsimd: panic serving %s %s (request %s): %v\n%s",
				r.Method, r.URL.Path, id, v, debug.Stack())
			// A panic after the handler started writing cannot be turned
			// into a clean envelope; the connection is torn down instead.
			if !sw.wrote {
				s.writeError(sw, r, http.StatusInternalServerError, stagerr.Serve, "internal error")
			}
		}()
		next.ServeHTTP(sw, r)
	})
}
