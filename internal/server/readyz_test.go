package server

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// readyzStatus probes GET /readyz and returns (status code, body status).
func readyzStatus(t *testing.T, s *Server) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	var body ReadyBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("readyz body %q: %v", rec.Body.String(), err)
	}
	return rec.Code, body.Status
}

// A server that has not started its listener must answer not-ready, while
// /healthz (liveness) already answers ok: the two endpoints are distinct
// signals and the gateway keys pool membership off readiness alone.
func TestReadyzBeforeListenerStart(t *testing.T) {
	s := New(Config{})
	if code, status := readyzStatus(t, s); code != 503 || status != "starting" {
		t.Fatalf("pre-listen readyz = %d %q, want 503 starting", code, status)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("healthz during startup = %d, want 200 (liveness is not readiness)", rec.Code)
	}
}

func TestReadyzAfterMarkReady(t *testing.T) {
	s := New(Config{})
	s.MarkReady()
	if code, status := readyzStatus(t, s); code != 200 || status != "ready" {
		t.Fatalf("readyz = %d %q, want 200 ready", code, status)
	}
	if !s.Ready() {
		t.Fatal("Ready() = false after MarkReady")
	}
}

// The drain transition: Shutdown flips /readyz to 503 "draining"
// immediately, requests already accepted still complete, and readiness is
// not re-acquirable afterwards.
func TestReadyzDrainTransition(t *testing.T) {
	s := New(Config{})
	s.MarkReady()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if code, status := readyzStatus(t, s); code != 503 || status != "draining" {
		t.Fatalf("post-shutdown readyz = %d %q, want 503 draining", code, status)
	}
	// In-flight work is still served during a drain: the handler chain
	// stays functional even though readiness is withdrawn.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(
		`{"trace": {"app": "IS-32", "iterations": 2, "quick": true}, "gear_set": {"kind": "uniform"}}`))
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("in-flight request during drain = %d, want 200: %s", rec.Code, rec.Body.String())
	}
	// Draining is terminal: MarkReady must not resurrect the instance.
	s.MarkReady()
	if code, status := readyzStatus(t, s); code != 503 || status != "draining" {
		t.Fatalf("readyz after MarkReady-on-draining = %d %q, want 503 draining", code, status)
	}
}

// DrainGrace keeps the drain window open: readiness drops at Shutdown time,
// but Shutdown itself does not return (and the listener keeps accepting)
// until the grace elapses.
func TestShutdownHonorsDrainGrace(t *testing.T) {
	const grace = 150 * time.Millisecond
	s := New(Config{DrainGrace: grace})
	s.MarkReady()
	start := time.Now()
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	// Readiness must drop promptly, well before the grace elapses.
	deadline := time.Now().Add(grace)
	for s.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("server still ready after Shutdown began")
		}
		time.Sleep(time.Millisecond)
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if took := time.Since(start); took < grace {
		t.Fatalf("Shutdown returned after %v, want >= the %v drain grace", took, grace)
	}
}

// The ready gauge and the hit-ratio gauge ride the /metrics text.
func TestMetricsReadyAndHitRatioGauges(t *testing.T) {
	s := New(Config{})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "pwrsimd_ready 0") {
		t.Fatalf("metrics missing pwrsimd_ready 0 before listener start:\n%s", rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "pwrsimd_cache_hit_ratio 0") {
		t.Fatalf("metrics missing pwrsimd_cache_hit_ratio:\n%s", rec.Body.String())
	}
	s.MarkReady()
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "pwrsimd_ready 1") {
		t.Fatalf("metrics missing pwrsimd_ready 1 after MarkReady:\n%s", rec.Body.String())
	}
}
