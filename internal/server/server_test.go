package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/gearopt"
	"repro/internal/power"
	"repro/internal/powercap"
	"repro/internal/rebalance"
	"repro/internal/timemodel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// testSpec is the small, fast workload most tests run against.
var testSpec = TraceSpec{App: "IS-32", Iterations: 3, Quick: true}

// betaPtr builds the optional wire form of an explicit beta.
func betaPtr(b float64) *float64 { return &b }

// genTestTrace builds the library-side equivalent of testSpec-style specs.
func genTestTrace(t testing.TB, spec TraceSpec) *trace.Trace {
	t.Helper()
	inst, err := workload.FindInstance(spec.App)
	if spec.NProcs > 0 {
		inst, err = workload.InstanceFor(spec.App, spec.NProcs)
	}
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig()
	cfg.Iterations = spec.Iterations
	cfg.SkipPECalibration = spec.Quick
	tr, err := workload.Generate(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t testing.TB, url string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func getBody(t testing.TB, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// wire marshals a response struct exactly the way the server does.
func wire(t testing.TB, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

func TestReplayByteIdenticalToLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Baseline replay: no explicit frequencies.
	code, got := postJSON(t, ts.URL+"/v1/replay", ReplayRequest{Trace: testSpec})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	tr := genTestTrace(t, testSpec)
	res, err := dimemas.Simulate(tr, dimemas.DefaultPlatform(), dimemas.Options{Beta: timemodel.DefaultBeta, FMax: dvfs.FMax})
	if err != nil {
		t.Fatal(err)
	}
	if want := wire(t, NewReplayResponse(tr.App, res)); !bytes.Equal(got, want) {
		t.Fatalf("replay response differs from library call\n got: %s\nwant: %s", got, want)
	}

	// Explicit per-rank frequencies.
	freqs := make([]float64, tr.NumRanks())
	for i := range freqs {
		freqs[i] = 1.4
	}
	code, got = postJSON(t, ts.URL+"/v1/replay", ReplayRequest{Trace: testSpec, Freqs: freqs, GearSpec: GearSpec{Beta: betaPtr(0.3)}})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	res, err = dimemas.Simulate(tr, dimemas.DefaultPlatform(), dimemas.Options{Beta: 0.3, FMax: dvfs.FMax, Freqs: freqs})
	if err != nil {
		t.Fatal(err)
	}
	if want := wire(t, NewReplayResponse(tr.App, res)); !bytes.Equal(got, want) {
		t.Fatalf("scaled replay response differs from library call\n got: %s\nwant: %s", got, want)
	}
}

func TestAnalyzeByteIdenticalToLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		algo string
		spec GearSetSpec
	}{
		{"MAX", GearSetSpec{Kind: "exponential", N: 6}},
		{"AVG", GearSetSpec{Kind: "uniform", N: 6, Overclock: true}},
		{"MAX", GearSetSpec{Kind: "continuous-limited"}},
	} {
		req := AnalyzeRequest{Trace: testSpec, Algorithm: tc.algo, GearSet: tc.spec}
		code, got := postJSON(t, ts.URL+"/v1/analyze", req)
		if code != http.StatusOK {
			t.Fatalf("%s/%s: status %d: %s", tc.algo, tc.spec.Kind, code, got)
		}

		set, err := tc.spec.set()
		if err != nil {
			t.Fatal(err)
		}
		algo := core.MAX
		if tc.algo == "AVG" {
			algo = core.AVG
		}
		res, err := analysis.Run(analysis.Config{
			Trace:     genTestTrace(t, testSpec),
			Set:       set,
			Algorithm: algo,
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := wire(t, NewAnalyzeResponse(set.Name(), res)); !bytes.Equal(got, want) {
			t.Fatalf("%s/%s: analyze response differs from library call\n got: %s\nwant: %s", tc.algo, tc.spec.Kind, got, want)
		}
	}
}

func TestGearOptByteIdenticalToLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := GearOptRequest{
		Traces:    []TraceSpec{testSpec},
		NGears:    3,
		Grid:      0.25,
		MaxRounds: 2,
	}
	code, got := postJSON(t, ts.URL+"/v1/gearopt", req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	res, err := gearopt.Optimize(gearopt.Config{
		Traces:    []*trace.Trace{genTestTrace(t, testSpec)},
		NGears:    3,
		Grid:      0.25,
		MaxRounds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := wire(t, NewGearOptResponse(res)); !bytes.Equal(got, want) {
		t.Fatalf("gearopt response differs from library call\n got: %s\nwant: %s", got, want)
	}
}

func TestTracegenMatchesLibraryAndRoundTrips(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, got := postJSON(t, ts.URL+"/v1/tracegen", TracegenRequest{Trace: testSpec})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	var resp TracegenResponse
	if err := json.Unmarshal(got, &resp); err != nil {
		t.Fatal(err)
	}
	tr := genTestTrace(t, testSpec)
	var sb strings.Builder
	if err := trace.Write(&sb, tr); err != nil {
		t.Fatal(err)
	}
	if resp.Trace != sb.String() {
		t.Fatal("generated trace text differs from library call")
	}
	if resp.Ranks != tr.NumRanks() || resp.Records != tr.NumRecords() {
		t.Fatalf("metadata %d ranks/%d records, want %d/%d", resp.Ranks, resp.Records, tr.NumRanks(), tr.NumRecords())
	}
	back, err := trace.Read(strings.NewReader(resp.Trace))
	if err != nil {
		t.Fatalf("generated trace does not round-trip: %v", err)
	}
	if back.NumRecords() != tr.NumRecords() {
		t.Fatal("round-tripped trace lost records")
	}
}

func TestInlineTextTraceReplay(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := genTestTrace(t, testSpec)
	var sb strings.Builder
	if err := trace.Write(&sb, tr); err != nil {
		t.Fatal(err)
	}
	code, got := postJSON(t, ts.URL+"/v1/replay", ReplayRequest{Trace: TraceSpec{Text: sb.String()}})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	// The library-side equivalent of an inline text trace is the re-parsed
	// trace (text serialization rounds durations), exactly what the server
	// replayed.
	parsed, err := trace.Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dimemas.Simulate(parsed, dimemas.DefaultPlatform(), dimemas.Options{Beta: timemodel.DefaultBeta, FMax: dvfs.FMax})
	if err != nil {
		t.Fatal(err)
	}
	if want := wire(t, NewReplayResponse(parsed.App, res)); !bytes.Equal(got, want) {
		t.Fatal("inline-text replay differs from library call")
	}
}

// TestInlineTracesDoNotPolluteSharedCache: inline text traces get a fresh
// identity per request, so memoizing them in the daemon's bounded LRU
// would only evict warm generated-workload entries.
func TestInlineTracesDoNotPolluteSharedCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	tr := genTestTrace(t, testSpec)
	var sb strings.Builder
	if err := trace.Write(&sb, tr); err != nil {
		t.Fatal(err)
	}
	inline := TraceSpec{Text: sb.String()}
	freqs := make([]float64, tr.NumRanks())
	for i := range freqs {
		freqs[i] = 1.1
	}
	for _, req := range []any{
		ReplayRequest{Trace: inline},
		ReplayRequest{Trace: inline, Freqs: freqs},
		AnalyzeRequest{Trace: inline, GearSet: GearSetSpec{Kind: "uniform"}},
		AnalyzeBatchRequest{Trace: inline, Items: []AnalyzeBatchItem{
			{GearSet: GearSetSpec{Kind: "uniform"}},
			{GearSet: GearSetSpec{Kind: "exponential"}},
		}},
	} {
		url := ts.URL + "/v1/replay"
		switch req.(type) {
		case AnalyzeRequest:
			url = ts.URL + "/v1/analyze"
		case AnalyzeBatchRequest:
			url = ts.URL + "/v1/analyze/batch"
		}
		if code, body := postJSON(t, url, req); code != http.StatusOK {
			t.Fatalf("%T: status %d: %s", req, code, body)
		}
	}
	if n := s.Cache().Len(); n != 0 {
		t.Errorf("inline requests left %d entries in the shared cache, want 0", n)
	}
}

func TestAppsListsTable3(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, got := getBody(t, ts.URL+"/v1/apps")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if want := wire(t, NewAppsResponse()); !bytes.Equal(got, want) {
		t.Fatalf("apps response differs\n got: %s\nwant: %s", got, want)
	}
	var resp AppsResponse
	if err := json.Unmarshal(got, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Apps) != len(workload.Table3()) {
		t.Fatalf("%d apps, want %d", len(resp.Apps), len(workload.Table3()))
	}
}

func TestSharedCacheAcrossRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Same workload, two different gear sets: the baseline replay must be
	// simulated once and hit on every later request.
	for _, kind := range []string{"uniform", "exponential"} {
		code, body := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Trace: testSpec, GearSet: GearSetSpec{Kind: kind}})
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", kind, code, body)
		}
	}
	code, _ := postJSON(t, ts.URL+"/v1/replay", ReplayRequest{Trace: testSpec})
	if code != http.StatusOK {
		t.Fatalf("replay status %d", code)
	}
	st := s.Cache().Stats()
	if st.Misses != 2 {
		t.Fatalf("cache misses = %d, want 2 (one baseline replay + one timing skeleton for all requests)", st.Misses)
	}
	if st.Hits < 3 {
		t.Fatalf("cache hits = %d, want ≥ 3", st.Hits)
	}
}

func TestConcurrentMixedRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 32})
	kinds := []string{"uniform", "exponential", "continuous-limited", "continuous-unlimited"}
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	bodies := make([][]byte, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 4 {
			case 0, 1, 2:
				code, body := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{
					Trace:   testSpec,
					GearSet: GearSetSpec{Kind: kinds[i%len(kinds)]},
				})
				if code != http.StatusOK {
					errc <- fmt.Errorf("analyze %d: status %d: %s", i, code, body)
					return
				}
				bodies[i] = body
			case 3:
				code, body := postJSON(t, ts.URL+"/v1/replay", ReplayRequest{Trace: testSpec})
				if code != http.StatusOK {
					errc <- fmt.Errorf("replay %d: status %d: %s", i, code, body)
					return
				}
				bodies[i] = body
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// Identical requests must produce identical bytes even under load.
	for i := 0; i < 16; i += 4 {
		for j := i + 4; j < 16; j += 4 {
			if !bytes.Equal(bodies[i], bodies[j]) {
				t.Fatalf("requests %d and %d (identical inputs) returned different bytes", i, j)
			}
		}
	}
}

func TestCapacityRejection(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1})
	// Occupy the only slot directly, then any simulation request must be
	// rejected with 503 without queueing.
	s.sem <- struct{}{}
	code, body := postJSON(t, ts.URL+"/v1/replay", ReplayRequest{Trace: testSpec})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", code, body)
	}
	var eb ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Fatalf("503 body is not an error envelope: %s", body)
	}
	<-s.sem
	code, _ = postJSON(t, ts.URL+"/v1/replay", ReplayRequest{Trace: testSpec})
	if code != http.StatusOK {
		t.Fatalf("after releasing the slot: status %d, want 200", code)
	}
}

func TestRequestTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	code, body := postJSON(t, ts.URL+"/v1/replay", ReplayRequest{Trace: testSpec})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", code, body)
	}
}

func TestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		url  string
		body string
	}{
		{"unknown field", "/v1/replay", `{"nope": 1}`},
		{"no trace", "/v1/replay", `{}`},
		{"text and app", "/v1/replay", `{"trace": {"text": "x", "app": "IS-32"}}`},
		{"unknown app", "/v1/replay", `{"trace": {"app": "NOPE-32"}}`},
		{"iterations too large", "/v1/replay", `{"trace": {"app": "IS-32", "iterations": 100000}}`},
		{"nprocs too large", "/v1/replay", `{"trace": {"app": "CG", "nprocs": 100000000}}`},
		{"nprocs x iterations too large", "/v1/replay", `{"trace": {"app": "CG", "nprocs": 2048, "iterations": 500}}`},
		{"freq count mismatch", "/v1/replay", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "freqs": [1.4]}`},
		{"negative beta", "/v1/replay", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "beta": -1}`},
		{"bad algorithm", "/v1/analyze", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "algorithm": "MINMAX"}`},
		{"bad gear kind", "/v1/analyze", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "gear_set": {"kind": "nope"}}`},
		{"custom set needs freqs", "/v1/analyze", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "gear_set": {"kind": "custom"}}`},
		{"gearopt no traces", "/v1/gearopt", `{}`},
		{"tracegen inline text", "/v1/tracegen", `{"trace": {"text": "x"}}`},
		{"malformed json", "/v1/analyze", `{"trace":`},
		{"powercap no cap", "/v1/powercap", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}}`},
		{"powercap negative cap", "/v1/powercap", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "cap": -5}`},
		{"powercap bad kind", "/v1/powercap", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "cap": 100, "kind": "rms"}`},
		{"powercap continuous set", "/v1/powercap", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "cap": 100, "gear_set": {"kind": "continuous-limited"}}`},
		{"powercap moves out of range", "/v1/powercap", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "cap": 100, "max_moves": 99999999}`},
		{"powercap infeasible cap", "/v1/powercap", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "cap": 0.001}`},
		{"powercap beta above one", "/v1/powercap", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "cap": 100, "beta": 2}`},
		{"rebalance iterations out of range", "/v1/rebalance", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "iterations": 100000}`},
		{"rebalance bad policy", "/v1/rebalance", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "policy": "sometimes"}`},
		{"rebalance bad drift kind", "/v1/rebalance", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "drift": {"kind": "tide"}}`},
		{"rebalance bad drift magnitude", "/v1/rebalance", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "drift": {"kind": "ramp", "magnitude": 2}}`},
		{"rebalance cap without capped policy", "/v1/rebalance", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "cap": 100}`},
		{"rebalance capped without cap", "/v1/rebalance", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "policy": "capped"}`},
		{"rebalance capped continuous set", "/v1/rebalance", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "policy": "capped", "cap": 100, "gear_set": {"kind": "continuous-limited"}}`},
		{"rebalance bad margin", "/v1/rebalance", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "margin": 1}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.url, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
			continue
		}
		var eb ErrorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: body is not an error envelope: %s", tc.name, body)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, _ := getBody(t, ts.URL+"/v1/replay")
	if code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/replay: status %d, want 405", code)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := getBody(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	var hb HealthBody
	if err := json.Unmarshal(body, &hb); err != nil || hb.Status != "ok" {
		t.Fatalf("healthz body: %s", body)
	}

	// Generate some traffic, then check the exposition contains every
	// metric family.
	postJSON(t, ts.URL+"/v1/replay", ReplayRequest{Trace: testSpec})
	postJSON(t, ts.URL+"/v1/replay", ReplayRequest{Trace: testSpec})
	code, body = getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	text := string(body)
	for _, want := range []string{
		"pwrsimd_uptime_seconds",
		"pwrsimd_in_flight 0",
		"pwrsimd_cache_hits_total 1",
		"pwrsimd_cache_misses_total 1",
		"pwrsimd_cache_evictions_total 0",
		"pwrsimd_cache_entries 1",
		`pwrsimd_requests_total{route="/v1/replay"} 2`,
		`pwrsimd_request_errors_total{route="/v1/replay"} 0`,
		`pwrsimd_request_seconds_sum{route="/v1/replay"}`,
		`pwrsimd_request_seconds_max{route="/v1/replay"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, text)
		}
	}
}

func TestCacheEvictionUnderBound(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheEntries: 1})
	specA := TraceSpec{App: "IS-32", Iterations: 3, Quick: true}
	specB := TraceSpec{App: "CG-32", Iterations: 3, Quick: true}
	for _, spec := range []TraceSpec{specA, specB, specA} {
		code, body := postJSON(t, ts.URL+"/v1/replay", ReplayRequest{Trace: spec})
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
	}
	st := s.Cache().Stats()
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1 (bounded)", st.Entries)
	}
	if st.Evictions < 2 {
		t.Fatalf("evictions = %d, want ≥ 2", st.Evictions)
	}
}

func TestTraceCacheBounded(t *testing.T) {
	s, ts := newTestServer(t, Config{TraceCacheEntries: 1})
	for _, app := range []string{"IS-32", "CG-32", "MG-32"} {
		code, body := postJSON(t, ts.URL+"/v1/replay", ReplayRequest{Trace: TraceSpec{App: app, Iterations: 3, Quick: true}})
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", app, code, body)
		}
	}
	s.tmu.Lock()
	n, lruLen := len(s.traces), s.tlru.Len()
	s.tmu.Unlock()
	if n != 1 || lruLen != 1 {
		t.Fatalf("trace memo holds %d map entries / %d lru entries, want 1/1", n, lruLen)
	}
}

func TestAnalyzeBatchByteIdenticalToLibrary(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	items := []AnalyzeBatchItem{
		{Algorithm: "MAX", GearSet: GearSetSpec{Kind: "uniform"}},
		{Algorithm: "MAX", GearSet: GearSetSpec{Kind: "exponential", N: 4}},
		{Algorithm: "AVG", GearSet: GearSetSpec{Kind: "uniform", Overclock: true}},
		{Algorithm: "MAX", GearSet: GearSetSpec{Kind: "continuous-limited"}},
	}
	code, got := postJSON(t, ts.URL+"/v1/analyze/batch", AnalyzeBatchRequest{Trace: testSpec, Items: items, GearSpec: GearSpec{Beta: betaPtr(0.4)}})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	// Library-side equivalent: independent analysis runs over the same
	// trace (no shared cache needed for equality — retiming is
	// bit-identical to simulating).
	tr := genTestTrace(t, testSpec)
	want := &AnalyzeBatchResponse{App: tr.App}
	for _, item := range items {
		algo, err := parseAlgorithm(item.Algorithm)
		if err != nil {
			t.Fatal(err)
		}
		set, err := item.GearSet.set()
		if err != nil {
			t.Fatal(err)
		}
		res, err := analysis.Run(analysis.Config{
			Trace:     tr,
			Platform:  dimemas.DefaultPlatform(),
			Power:     power.DefaultConfig(),
			Set:       set,
			Algorithm: algo,
			Beta:      0.4,
		})
		if err != nil {
			t.Fatal(err)
		}
		want.Results = append(want.Results, NewAnalyzeResponse(set.Name(), res))
	}
	if wantBytes := wire(t, want); !bytes.Equal(got, wantBytes) {
		t.Fatalf("batch response differs from library calls\n got: %s\nwant: %s", got, wantBytes)
	}
	// The whole batch shares one baseline replay and one timing skeleton.
	if st := s.Cache().Stats(); st.Misses != 2 {
		t.Errorf("cache misses = %d, want 2 (baseline + skeleton for the whole batch)", st.Misses)
	}
}

func TestAnalyzeBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, body := postJSON(t, ts.URL+"/v1/analyze/batch", AnalyzeBatchRequest{Trace: testSpec}); code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d: %s", code, body)
	}
	over := AnalyzeBatchRequest{Trace: testSpec, Items: make([]AnalyzeBatchItem, MaxBatchItems+1)}
	for i := range over.Items {
		over.Items[i] = AnalyzeBatchItem{GearSet: GearSetSpec{Kind: "uniform"}}
	}
	if code, body := postJSON(t, ts.URL+"/v1/analyze/batch", over); code != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d: %s", code, body)
	}
	// Item-level failures do not fail the batch: the bad item leaves a null
	// at its index and an {index, error, stage} entry in the envelope while
	// its neighbor still gets analyzed.
	bad := AnalyzeBatchRequest{Trace: testSpec, Items: []AnalyzeBatchItem{
		{GearSet: GearSetSpec{Kind: "uniform"}},
		{Algorithm: "NOPE", GearSet: GearSetSpec{Kind: "uniform"}},
	}}
	code, body := postJSON(t, ts.URL+"/v1/analyze/batch", bad)
	if code != http.StatusOK {
		t.Fatalf("bad algorithm item: status %d: %s", code, body)
	}
	var resp AnalyzeBatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 || resp.Results[0] == nil || resp.Results[1] != nil {
		t.Errorf("results = %+v, want [ok, null]", resp.Results)
	}
	if len(resp.Errors) != 1 || resp.Errors[0].Index != 1 ||
		resp.Errors[0].Stage != "validate" || !strings.Contains(resp.Errors[0].Error, "NOPE") {
		t.Errorf("error envelope = %+v, want index 1 / validate / naming NOPE", resp.Errors)
	}
	// Shared-stage failures (an out-of-range β dooms every item) still fail
	// the whole request.
	if code, body := postJSON(t, ts.URL+"/v1/analyze/batch", AnalyzeBatchRequest{
		Trace:    testSpec,
		Items:    []AnalyzeBatchItem{{GearSet: GearSetSpec{Kind: "uniform"}}},
		GearSpec: GearSpec{Beta: betaPtr(1.5)},
	}); code != http.StatusBadRequest {
		t.Errorf("shared bad beta: status %d: %s", code, body)
	}
}

// TestTimeoutReleasesSlotPromptly proves the PR 2 limitation is gone: a
// 504'd simulation request aborts at its next cancellation check (the
// request context is threaded into the replay loops), so its in-flight
// slot frees promptly instead of only when the abandoned replay finishes.
func TestTimeoutReleasesSlotPromptly(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, RequestTimeout: time.Nanosecond})
	code, _ := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Trace: testSpec, GearSet: GearSetSpec{Kind: "uniform"}})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		select {
		case s.sem <- struct{}{}:
			<-s.sem
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("in-flight slot not released after the cancelled work aborted")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTimedOutGenerationNotMemoized proves workload generation is
// cancellable too (the calibration replays poll the request context) and
// that an aborted generation is evicted from the trace memo instead of
// serving the dead request's cancellation to later callers.
func TestTimedOutGenerationNotMemoized(t *testing.T) {
	s, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	// Non-quick spec: generation runs the PE-calibration bisection, the
	// stage that was uncancellable before.
	spec := TraceSpec{App: "IS-32", Iterations: 2}
	code, _ := postJSON(t, ts.URL+"/v1/replay", ReplayRequest{Trace: spec})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.tmu.Lock()
		n := s.tlru.Len()
		s.tmu.Unlock()
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("aborted generation still memoized (%d entries)", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTimeoutKeepsSlotUntilWorkFinishes proves a 504'd request's abandoned
// work keeps holding its in-flight slot (so MaxInFlight bounds running
// simulations, not just attached requests), and that the slot is freed once
// the work really completes. It drives limited/call directly with a
// blockable work function to make the ordering deterministic.
func TestTimeoutKeepsSlotUntilWorkFinishes(t *testing.T) {
	s := New(Config{MaxInFlight: 1, RequestTimeout: time.Millisecond})
	started := make(chan struct{})
	release := make(chan struct{})
	h := s.limited("/test", func(w http.ResponseWriter, r *http.Request) {
		_, err := call(r.Context(), func() (struct{}, error) {
			close(started)
			<-release
			return struct{}{}, nil
		})
		if err != nil {
			finishErr(s, w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	do := func() int {
		rec := httptest.NewRecorder()
		h(rec, httptest.NewRequest("POST", "/test", nil))
		return rec.Code
	}

	if code := do(); code != http.StatusGatewayTimeout {
		t.Fatalf("first request: status %d, want 504", code)
	}
	<-started
	// The abandoned work still owns the only slot: new requests are shed.
	if code := do(); code != http.StatusServiceUnavailable {
		t.Fatalf("while abandoned work runs: status %d, want 503", code)
	}
	close(release)
	// Once the work finishes, its deferred free returns the slot; poll
	// until it is observable again (released exactly once).
	deadline := time.Now().Add(5 * time.Second)
	for {
		select {
		case s.sem <- struct{}{}:
			<-s.sem
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("in-flight slot never released after the abandoned work finished")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGracefulShutdownDrainsInFlight proves Shutdown waits for an in-flight
// request and the request still succeeds.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	s := New(Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// A non-quick workload generation (PE-calibration bisection replays)
	// keeps this request in flight long enough to observe the drain.
	slow := TraceSpec{App: "CG-64", Iterations: 20}
	type result struct {
		code int
		body []byte
		err  error
	}
	done := make(chan result, 1)
	go func() {
		b, _ := json.Marshal(ReplayRequest{Trace: slow})
		resp, err := http.Post(base+"/v1/replay", "application/json", bytes.NewReader(b))
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		done <- result{code: resp.StatusCode, body: body, err: err}
	}()

	// Wait until the request is actually in flight (or already finished).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.reg.mu.Lock()
		inFlight := s.reg.inFlight
		finished := s.reg.routes["/v1/replay"] != nil
		s.reg.mu.Unlock()
		if inFlight > 0 || finished {
			break
		}
		time.Sleep(200 * time.Microsecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-served; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request failed across shutdown: %v", r.err)
	}
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request: status %d: %s", r.code, r.body)
	}
	var resp ReplayResponse
	if err := json.Unmarshal(r.body, &resp); err != nil || resp.Ranks != 64 {
		t.Fatalf("in-flight response truncated by shutdown: %s", r.body)
	}
}

func TestPowercapByteIdenticalToLibrary(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := PowercapRequest{
		Trace:   testSpec,
		GearSet: GearSetSpec{Kind: "uniform"},
		Cap:     0.6 * 32 * 9.703125, // 60% of the all-compute peak of 32 ranks
		Kind:    "peak",
	}
	code, got := postJSON(t, ts.URL+"/v1/powercap", req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	tr := genTestTrace(t, testSpec)
	six, err := dvfs.Uniform(6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := powercap.Run(powercap.Config{
		Trace:    tr,
		Platform: dimemas.DefaultPlatform(),
		Power:    power.DefaultConfig(),
		Set:      six,
		Cap:      req.Cap,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := wire(t, NewPowercapResponse(res)); !bytes.Equal(got, want) {
		t.Fatalf("powercap response differs from library call\n got: %s\nwant: %s", got, want)
	}
	var resp PowercapResponse
	if err := json.Unmarshal(got, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Uniform.PeakPower > req.Cap || resp.Redistributed.PeakPower > req.Cap {
		t.Errorf("scheduled peaks %v / %v exceed the cap %v", resp.Uniform.PeakPower, resp.Redistributed.PeakPower, req.Cap)
	}
	if resp.Redistributed.Time > resp.Uniform.Time {
		t.Errorf("redistribution %v worse than uniform %v", resp.Redistributed.Time, resp.Uniform.Time)
	}
	// A second identical request hits the shared skeleton and baselines.
	misses := s.Cache().Stats().Misses
	if code, _ := postJSON(t, ts.URL+"/v1/powercap", req); code != http.StatusOK {
		t.Fatalf("second request: status %d", code)
	}
	if st := s.Cache().Stats(); st.Misses != misses {
		t.Errorf("second powercap request added %d cache misses, want 0", st.Misses-misses)
	}
}

func TestRebalanceByteIdenticalToLibrary(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := RebalanceRequest{
		Trace:            testSpec,
		GearSet:          GearSetSpec{Kind: "uniform"},
		Policy:           "threshold",
		Iterations:       12,
		ReassignOverhead: 200e-6,
		Drift:            DriftSpec{Kind: "ramp", Magnitude: 0.4, Jitter: 0.02, Seed: 5},
	}
	code, got := postJSON(t, ts.URL+"/v1/rebalance", req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	tr := genTestTrace(t, testSpec)
	six, err := dvfs.Uniform(6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rebalance.Run(rebalance.Config{
		Trace:            tr,
		Platform:         dimemas.DefaultPlatform(),
		Power:            power.DefaultConfig(),
		Set:              six,
		Policy:           rebalance.PolicyThreshold,
		Iterations:       12,
		ReassignOverhead: 200e-6,
		Drift:            workload.Drift{Kind: workload.DriftRamp, Magnitude: 0.4, Jitter: 0.02, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := wire(t, NewRebalanceResponse(res)); !bytes.Equal(got, want) {
		t.Fatalf("rebalance response differs from library call\n got: %s\nwant: %s", got, want)
	}
	var resp RebalanceResponse
	if err := json.Unmarshal(got, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Iterations) != 12 {
		t.Errorf("%d iterations in the series, want 12", len(resp.Iterations))
	}
	if resp.Reassignments < 1 {
		t.Error("drifting run never rebalanced")
	}
	// A second identical request hits the memoized base-iteration skeleton.
	misses := s.Cache().Stats().Misses
	if code, _ := postJSON(t, ts.URL+"/v1/rebalance", req); code != http.StatusOK {
		t.Fatalf("second request: status %d", code)
	}
	if st := s.Cache().Stats(); st.Misses != misses {
		t.Errorf("second rebalance request added %d cache misses, want 0", st.Misses-misses)
	}
}

// TestRebalanceTimeout: the iteration loop polls the request context, so a
// request whose deadline fired mid-loop 504s instead of running to the end.
func TestRebalanceTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	code, body := postJSON(t, ts.URL+"/v1/rebalance", RebalanceRequest{
		Trace:      testSpec,
		GearSet:    GearSetSpec{Kind: "uniform"},
		Iterations: MaxRebalanceIterations,
	})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", code, body)
	}
}

// TestExplicitBetaZeroOverTheWire is the serving half of the Beta regression
// test: a JSON body carrying "beta": 0 must reach the simulator as β = 0
// (frequency-insensitive compute), not be rewritten to the 0.5 default.
func TestExplicitBetaZeroOverTheWire(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := genTestTrace(t, testSpec)
	freqs := make([]float64, tr.NumRanks())
	for i := range freqs {
		freqs[i] = 1.1
	}
	code, got := postJSON(t, ts.URL+"/v1/replay", ReplayRequest{Trace: testSpec, Freqs: freqs, GearSpec: GearSpec{Beta: betaPtr(0)}})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	want, err := dimemas.Simulate(tr, dimemas.DefaultPlatform(), dimemas.Options{Beta: 0, FMax: dvfs.FMax, Freqs: freqs})
	if err != nil {
		t.Fatal(err)
	}
	if wantBytes := wire(t, NewReplayResponse(tr.App, want)); !bytes.Equal(got, wantBytes) {
		t.Fatalf("explicit beta=0 replay differs from the β=0 library call\n got: %s\nwant: %s", got, wantBytes)
	}
	// And the β=0 replay is genuinely different from the defaulted one.
	base, err := dimemas.Simulate(tr, dimemas.DefaultPlatform(), dimemas.Options{Beta: timemodel.DefaultBeta, FMax: dvfs.FMax, Freqs: freqs})
	if err != nil {
		t.Fatal(err)
	}
	if base.Time == want.Time {
		t.Fatal("test is vacuous: β=0 and β=0.5 replays coincide")
	}
}
