package server

import (
	"context"
	"net"
	"net/http"
	"time"
)

// Lifecycle states behind GET /readyz. Liveness (/healthz) and readiness
// are deliberately distinct signals: a draining daemon is still alive — it
// answers the requests it already accepted — but a fleet front must stop
// routing new work to it. The gateway's pool membership keys off /readyz.
const (
	stateStarting int32 = iota
	stateReady
	stateDraining
)

// MarkReady transitions the server from starting to ready. Serve and
// ListenAndServe call it once the listener is bound; tests that mount
// Handler() directly call it to simulate a live daemon. A draining server
// stays draining — readiness is not re-acquirable after Shutdown begins.
func (s *Server) MarkReady() {
	s.state.CompareAndSwap(stateStarting, stateReady)
}

// Ready reports whether the server currently advertises readiness.
func (s *Server) Ready() bool { return s.state.Load() == stateReady }

// ReadyBody is the GET /readyz response. Status is "ready", "starting" or
// "draining"; the latter two answer 503 so load balancers need only look at
// the status code.
type ReadyBody struct {
	Status string `json:"status"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch s.state.Load() {
	case stateReady:
		writeJSON(w, http.StatusOK, ReadyBody{Status: "ready"})
	case stateDraining:
		writeJSON(w, http.StatusServiceUnavailable, ReadyBody{Status: "draining"})
	default:
		writeJSON(w, http.StatusServiceUnavailable, ReadyBody{Status: "starting"})
	}
}

// Serve accepts connections on ln until Shutdown, advertising readiness
// from the first accept on.
func (s *Server) Serve(ln net.Listener) error {
	s.MarkReady()
	return s.http.Serve(ln)
}

// ListenAndServe listens on the configured address until Shutdown. The
// server turns ready only once the bind succeeds, so /readyz never says
// "ready" for a daemon that cannot actually accept connections.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Shutdown drains the server: it immediately stops advertising readiness,
// optionally keeps accepting for Config.DrainGrace so fleet health checks
// can observe the drain and stop routing here before connections start
// being refused, then stops accepting and waits (bounded by ctx) for
// in-flight requests to finish.
func (s *Server) Shutdown(ctx context.Context) error {
	s.state.Store(stateDraining)
	if g := s.cfg.DrainGrace; g > 0 {
		select {
		case <-time.After(g):
		case <-ctx.Done():
		}
	}
	return s.http.Shutdown(ctx)
}
