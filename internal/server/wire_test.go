package server

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// decodeFixture runs a raw JSON body through the exact decoder the daemon
// uses (strict, unknown fields rejected), into a fresh value of the request
// type.
func decodeFixture(t *testing.T, body string, v any) {
	t.Helper()
	r := httptest.NewRequest("POST", "/", strings.NewReader(body))
	if err := decode(r, v); err != nil {
		t.Fatalf("fixture no longer decodes: %v\nbody: %s", err, body)
	}
}

// TestWireFixturesDecodeUnchanged pins the pre-GearSpec wire format: these
// are verbatim request bodies as clients sent them before β and fmax moved
// into the shared embedded GearSpec. The refactor deduplicated declarations
// and validation — it must not have moved a single JSON key. Each fixture
// asserts the decoded struct field-for-field, including the β pointer
// semantics (absent ≠ explicit 0).
func TestWireFixturesDecodeUnchanged(t *testing.T) {
	t.Run("replay", func(t *testing.T) {
		var req ReplayRequest
		decodeFixture(t, `{
			"trace": {"app": "IS-32", "iterations": 3, "quick": true},
			"freqs": [2.3, 1.9],
			"beta": 0.4,
			"fmax": 2.3
		}`, &req)
		want := ReplayRequest{
			Trace:    TraceRef{App: "IS-32", Iterations: 3, Quick: true},
			Freqs:    []float64{2.3, 1.9},
			GearSpec: GearSpec{Beta: betaPtr(0.4), FMax: 2.3},
		}
		if !reflect.DeepEqual(req, want) {
			t.Errorf("decoded %+v, want %+v", req, want)
		}
	})

	t.Run("replay beta absent vs explicit zero", func(t *testing.T) {
		var absent, zero ReplayRequest
		decodeFixture(t, `{"trace": {"app": "IS-32"}}`, &absent)
		decodeFixture(t, `{"trace": {"app": "IS-32"}, "beta": 0}`, &zero)
		if absent.Beta != nil {
			t.Errorf("absent beta decoded non-nil: %v", *absent.Beta)
		}
		if zero.Beta == nil || *zero.Beta != 0 {
			t.Errorf("explicit beta 0 lost its pointer: %v", zero.Beta)
		}
	})

	t.Run("analyze", func(t *testing.T) {
		var req AnalyzeRequest
		decodeFixture(t, `{
			"trace": {"app": "BT-MZ-32"},
			"algorithm": "AVG",
			"gear_set": {"kind": "uniform", "n": 4, "overclock": true},
			"beta": 0.3
		}`, &req)
		want := AnalyzeRequest{
			Trace:     TraceRef{App: "BT-MZ-32"},
			Algorithm: "AVG",
			GearSet:   GearSetSpec{Kind: "uniform", N: 4, Overclock: true},
			GearSpec:  GearSpec{Beta: betaPtr(0.3)},
		}
		if !reflect.DeepEqual(req, want) {
			t.Errorf("decoded %+v, want %+v", req, want)
		}
	})

	t.Run("analyze/batch", func(t *testing.T) {
		var req AnalyzeBatchRequest
		decodeFixture(t, `{
			"trace": {"app": "IS-32"},
			"items": [
				{"algorithm": "MAX", "gear_set": {"kind": "uniform"}},
				{"gear_set": {"kind": "custom", "freqs": [1.4, 2.3]}}
			],
			"beta": 0.5,
			"fmax": 2.3
		}`, &req)
		want := AnalyzeBatchRequest{
			Trace: TraceRef{App: "IS-32"},
			Items: []AnalyzeBatchItem{
				{Algorithm: "MAX", GearSet: GearSetSpec{Kind: "uniform"}},
				{GearSet: GearSetSpec{Kind: "custom", Freqs: []float64{1.4, 2.3}}},
			},
			GearSpec: GearSpec{Beta: betaPtr(0.5), FMax: 2.3},
		}
		if !reflect.DeepEqual(req, want) {
			t.Errorf("decoded %+v, want %+v", req, want)
		}
	})

	t.Run("gearopt", func(t *testing.T) {
		var req GearOptRequest
		decodeFixture(t, `{
			"traces": [{"app": "IS-32"}, {"app": "BT-MZ-32", "nprocs": 32}],
			"ngears": 4,
			"grid": 0.1,
			"max_rounds": 2,
			"beta": 0.5
		}`, &req)
		want := GearOptRequest{
			Traces:    []TraceRef{{App: "IS-32"}, {App: "BT-MZ-32", NProcs: 32}},
			NGears:    4,
			Grid:      0.1,
			MaxRounds: 2,
			GearSpec:  GearSpec{Beta: betaPtr(0.5)},
		}
		if !reflect.DeepEqual(req, want) {
			t.Errorf("decoded %+v, want %+v", req, want)
		}
	})

	t.Run("powercap", func(t *testing.T) {
		var req PowercapRequest
		decodeFixture(t, `{
			"trace": {"app": "WRF-128"},
			"gear_set": {"kind": "exponential", "n": 6},
			"cap": 250.5,
			"kind": "average",
			"max_moves": 12,
			"beta": 0.62,
			"fmax": 2.6
		}`, &req)
		want := PowercapRequest{
			Trace:    TraceRef{App: "WRF-128"},
			GearSet:  GearSetSpec{Kind: "exponential", N: 6},
			Cap:      250.5,
			Kind:     "average",
			MaxMoves: 12,
			GearSpec: GearSpec{Beta: betaPtr(0.62), FMax: 2.6},
		}
		if !reflect.DeepEqual(req, want) {
			t.Errorf("decoded %+v, want %+v", req, want)
		}
	})

	t.Run("rebalance", func(t *testing.T) {
		var req RebalanceRequest
		decodeFixture(t, `{
			"trace": {"app": "IS-32"},
			"gear_set": {"kind": "uniform"},
			"algorithm": "MAX",
			"policy": "threshold",
			"iterations": 40,
			"threshold": 0.05,
			"hysteresis": 2,
			"drift": {"kind": "ramp", "magnitude": 0.2, "seed": 7},
			"beta": 0.5
		}`, &req)
		want := RebalanceRequest{
			Trace:      TraceRef{App: "IS-32"},
			GearSet:    GearSetSpec{Kind: "uniform"},
			Algorithm:  "MAX",
			Policy:     "threshold",
			Iterations: 40,
			Threshold:  0.05,
			Hysteresis: 2,
			Drift:      DriftSpec{Kind: "ramp", Magnitude: 0.2, Seed: 7},
			GearSpec:   GearSpec{Beta: betaPtr(0.5)},
		}
		if !reflect.DeepEqual(req, want) {
			t.Errorf("decoded %+v, want %+v", req, want)
		}
	})
}

// TestWireGearSpecRoundTrip proves the embedded GearSpec serializes flat:
// marshaling a request emits top-level "beta"/"fmax" keys, never a nested
// object — the exact bytes a pre-redesign server would have produced.
func TestWireGearSpecRoundTrip(t *testing.T) {
	b, err := json.Marshal(ReplayRequest{
		Trace:    TraceRef{App: "IS-32"},
		GearSpec: GearSpec{Beta: betaPtr(0.4), FMax: 2.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"trace":{"app":"IS-32"},"beta":0.4,"fmax":2.3}`
	if string(b) != want {
		t.Errorf("marshaled %s, want %s", b, want)
	}
}

// TestWireBatchResponseEnvelope pins the batch response format: an all-good
// batch serializes exactly as it did before the per-item error envelope
// existed (no "errors" key), and a mixed batch carries null result slots
// plus {index, error, stage} entries.
func TestWireBatchResponseEnvelope(t *testing.T) {
	allGood := AnalyzeBatchResponse{App: "IS-32", Results: []*AnalyzeResponse{{App: "IS-32"}}}
	b, err := json.Marshal(allGood)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), `"errors"`) {
		t.Errorf("all-good batch response leaks an errors key: %s", b)
	}

	mixed := AnalyzeBatchResponse{
		App:     "IS-32",
		Results: []*AnalyzeResponse{nil, {App: "IS-32"}},
		Errors:  []BatchItemError{{Index: 0, Error: "bad gear set", Stage: "validate"}},
	}
	b, err = json.Marshal(mixed)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"results":[null,`, `"errors":[{"index":0,"error":"bad gear set","stage":"validate"}]`} {
		if !strings.Contains(string(b), frag) {
			t.Errorf("mixed batch response missing %s: %s", frag, b)
		}
	}
}
