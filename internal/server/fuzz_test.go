package server

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/rebalance"
)

// FuzzRebalanceBody throws arbitrary JSON at /v1/rebalance — the endpoint
// with the richest request surface (policy, forecaster spec, drift model,
// gear set, platform override) — and asserts the daemon's contract for
// every possible body: the answer is either a decodable RebalanceResponse
// or a complete stage-tagged error envelope, the request-ID header is
// always present, and the handler never panics.
func FuzzRebalanceBody(f *testing.F) {
	s, ts := newTestServer(f, Config{RequestTimeout: 5 * time.Second})
	f.Add(`{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "iterations": 5, "policy": "predictive", "predict": {"kind": "linear", "window": 4}, "horizon": 2, "drift": {"kind": "ramp", "magnitude": 0.3, "jitter": 0.02, "seed": 1}}`)
	f.Add(`{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "iterations": 4, "policy": "predictive-capped", "cap": 4000, "gear_set": {"kind": "uniform", "n": 4}, "drift": {"kind": "step", "magnitude": 0.3}}`)
	f.Add(`{"trace": {"app": "IS-32", "iterations": 3, "quick": true}}`)
	f.Add(`{"policy": "predictive", "predict": {"kind": "nope"}}`)
	f.Add(`{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "policy": "threshold", "predict": {"kind": "linear"}}`)
	f.Add(`{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "policy": "predictive", "horizon": -1}`)
	f.Add(`{"trace":`)
	f.Add(`[]`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, body string) {
		resp := postRaw(t, ts.URL+"/v1/rebalance", body, nil)
		if resp.Header.Get(RequestIDHeader) == "" {
			t.Error("response missing X-Request-ID")
		}
		if resp.StatusCode == http.StatusOK {
			raw, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			var rb RebalanceResponse
			if err := json.Unmarshal(raw, &rb); err != nil {
				t.Fatalf("200 body is not a RebalanceResponse: %v\n%s", err, raw)
			}
			if _, err := rebalance.ParsePolicy(rb.Policy); err != nil {
				t.Errorf("200 body carries unknown policy %q", rb.Policy)
			}
			if rb.App == "" || len(rb.Iterations) == 0 {
				t.Errorf("200 body incomplete: app %q, %d iterations", rb.App, len(rb.Iterations))
			}
		} else {
			envelope(t, resp)
		}
		s.reg.mu.Lock()
		panics := s.reg.panics
		s.reg.mu.Unlock()
		if panics != 0 {
			t.Fatalf("handler panicked %d times", panics)
		}
	})
}
