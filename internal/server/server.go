// Package server implements pwrsimd, the HTTP daemon that serves the
// paper's simulation pipeline as JSON endpoints. One process holds one
// bounded dimemas.ReplayCache and one generated-workload cache shared by
// every handler, so repeated what-if queries over the same application pay
// for the baseline replay (and the trace generation) exactly once.
//
// Endpoints:
//
//	POST /v1/replay        — replay a trace at given per-rank frequencies
//	POST /v1/analyze       — MAX/AVG policy analysis with energy metrics
//	POST /v1/analyze/batch — N gear assignments retimed off one skeleton
//	POST /v1/gearopt       — gear-placement search over a workload list
//	POST /v1/powercap      — gear scheduling under a cluster power budget
//	POST /v1/rebalance     — online closed-loop rebalancing under load drift
//	POST /v1/tracegen      — generate a Table 3 synthetic workload
//	GET  /v1/apps          — list the Table 3 instances
//	GET  /healthz          — liveness
//	GET  /readyz           — readiness (503 before listener start / during drain)
//	GET  /metrics          — Prometheus text: cache stats, latencies, in-flight
//
// Simulation endpoints run behind a configurable in-flight limit (excess
// requests get 503) and a per-request timeout (504); the request context is
// threaded into the replay and retiming loops, so timed-out work stops
// running — and releases its in-flight slot — promptly instead of holding
// the slot until the abandoned simulation finishes. Shutdown drains
// in-flight requests.
package server

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dimemas"
	"repro/internal/faults"
	"repro/internal/power"
	"repro/internal/stagerr"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config parameterizes the daemon.
type Config struct {
	// Addr is the listen address (default ":8723").
	Addr string
	// MaxInFlight bounds concurrently served simulation requests; excess
	// requests are rejected with 503. Default 2×GOMAXPROCS.
	MaxInFlight int
	// RequestTimeout aborts a simulation request with 504 after this long.
	// Default 60s.
	RequestTimeout time.Duration
	// CacheEntries bounds the shared replay cache (LRU). Default 512;
	// negative means unbounded.
	CacheEntries int
	// TraceCacheEntries bounds the generated-workload cache (LRU). Default
	// 32; negative means unbounded.
	TraceCacheEntries int
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
	// DrainGrace keeps the listener accepting (while /readyz answers 503
	// "draining") for this long after Shutdown is called, so fleet health
	// checks can route around the instance before connections are refused.
	// Default 0: drain immediately.
	DrainGrace time.Duration
	// Platform is the flat machine model requests run on unless they carry
	// their own PlatformSpec. The zero value means DefaultPlatform; echoed
	// in /healthz.
	Platform dimemas.Platform
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8723"
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 0 // unbounded
	}
	if c.TraceCacheEntries == 0 {
		c.TraceCacheEntries = 32
	}
	if c.TraceCacheEntries < 0 {
		c.TraceCacheEntries = 0 // unbounded
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.Platform == (dimemas.Platform{}) {
		c.Platform = dimemas.DefaultPlatform()
	}
	return c
}

// traceKey identifies one memoized generated workload.
type traceKey struct {
	app        string
	nprocs     int
	iterations int
	quick      bool
}

// traceEntry single-flights one workload generation.
type traceEntry struct {
	once sync.Once
	tr   *trace.Trace
	err  error
}

// traceItem pairs a key with its entry for LRU eviction.
type traceItem struct {
	key   traceKey
	entry *traceEntry
}

// Server is the pwrsimd HTTP daemon. Create it with New; it is ready to
// serve via Handler (tests), Serve (custom listener) or ListenAndServe.
type Server struct {
	cfg      Config
	cache    *dimemas.ReplayCache
	reg      *registry
	mux      *http.ServeMux
	root     http.Handler
	http     *http.Server
	sem      chan struct{}
	platform dimemas.Platform
	power    power.Config
	state    atomic.Int32 // starting → ready → draining (see readiness.go)

	tmu    sync.Mutex
	traces map[traceKey]*list.Element
	tlru   *list.List // front = most recently used; values are *traceItem
}

// New builds a Server over the default platform and power model.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		cache:    dimemas.NewReplayCacheWithLimit(cfg.CacheEntries),
		reg:      newRegistry(),
		mux:      http.NewServeMux(),
		sem:      make(chan struct{}, cfg.MaxInFlight),
		platform: cfg.Platform,
		power:    power.DefaultConfig(),
		traces:   make(map[traceKey]*list.Element),
		tlru:     list.New(),
	}
	s.routes()
	s.root = s.withLifecycle(s.mux)
	s.http = &http.Server{Addr: cfg.Addr, Handler: s.root}
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/apps", s.instrument("/v1/apps", s.handleApps))
	s.mux.HandleFunc("POST /v1/replay", s.limited("/v1/replay", s.handleReplay))
	s.mux.HandleFunc("POST /v1/analyze", s.limited("/v1/analyze", s.handleAnalyze))
	s.mux.HandleFunc("POST /v1/analyze/batch", s.limited("/v1/analyze/batch", s.handleAnalyzeBatch))
	s.mux.HandleFunc("POST /v1/gearopt", s.limited("/v1/gearopt", s.handleGearOpt))
	s.mux.HandleFunc("POST /v1/powercap", s.limited("/v1/powercap", s.handlePowercap))
	s.mux.HandleFunc("POST /v1/rebalance", s.limited("/v1/rebalance", s.handleRebalance))
	s.mux.HandleFunc("POST /v1/tracegen", s.limited("/v1/tracegen", s.handleTracegen))
}

// Handler exposes the full handler chain — lifecycle middleware (request
// IDs, panic containment) over the route table — for httptest-based tests.
func (s *Server) Handler() http.Handler { return s.root }

// Cache exposes the shared replay cache (for tests and diagnostics).
func (s *Server) Cache() *dimemas.ReplayCache { return s.cache }

// Addr reports the configured listen address.
func (s *Server) Addr() string { return s.cfg.Addr }

// Serve, ListenAndServe and Shutdown live in readiness.go: they drive the
// starting → ready → draining state machine behind GET /readyz.

// statusWriter remembers the response code for metrics and whether any
// bytes were written (so the panic recovery knows if a clean error
// envelope is still possible).
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with latency/error accounting.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		s.reg.observe(route, time.Since(start), sw.status >= 400)
	}
}

// semToken ties one in-flight semaphore slot to the lifetime of the actual
// simulation work. A request that times out (504) abandons its goroutine
// but must NOT free the slot early, or MaxInFlight would stop bounding the
// number of concurrently running simulations; the work goroutine frees the
// token when it really finishes.
type semToken struct {
	mu       sync.Mutex
	claimed  bool
	released bool
	release  func()
}

// claim transfers release responsibility to a work goroutine; it returns
// false if another call already owns the token.
func (t *semToken) claim() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.claimed {
		return false
	}
	t.claimed = true
	return true
}

// free releases the semaphore slot exactly once.
func (t *semToken) free() {
	t.mu.Lock()
	done := t.released
	t.released = true
	t.mu.Unlock()
	if !done {
		t.release()
	}
}

type semTokenKey struct{}

// limited wraps a simulation handler with the in-flight semaphore, the
// per-request timeout and metrics. Handlers receive a request whose context
// carries the deadline and the semaphore token consumed by call.
func (s *Server) limited(route string, h http.HandlerFunc) http.HandlerFunc {
	return s.instrument(route, func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			s.reg.reject()
			w.Header().Set("Retry-After", "1")
			s.writeError(w, r, http.StatusServiceUnavailable, stagerr.Serve,
				fmt.Sprintf("server at capacity (%d in flight)", cap(s.sem)))
			return
		}
		token := &semToken{release: func() { <-s.sem }}
		defer func() {
			// If no call() claimed the token (e.g. the body failed to
			// decode), the slot is still ours to free.
			if !token.claim() {
				return
			}
			token.free()
		}()
		s.reg.enter()
		defer s.reg.exit()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		ctx = context.WithValue(ctx, semTokenKey{}, token)
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		h(w, r.WithContext(ctx))
	})
}

// call runs f off-handler and returns its result, or ctx's error if the
// deadline fires first. The in-flight slot is held until f truly returns,
// so MaxInFlight bounds running simulations, not just attached requests —
// but since the handlers thread ctx into the replay/retiming loops and
// into workload generation's calibration replays (dimemas.Options.Ctx,
// analysis.Config.Ctx, gearopt.Config.Ctx, workload.Config.Ctx), a
// timed-out f aborts at its next cancellation check and the slot frees
// promptly. A replay or generation cancelled mid-flight is not memoized,
// so the shared caches never serve a dead request's cancellation to later
// callers.
func call[T any](ctx context.Context, f func() (T, error)) (T, error) {
	token, _ := ctx.Value(semTokenKey{}).(*semToken)
	owned := token != nil && token.claim()
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		if owned {
			defer token.free()
		}
		v, err := f()
		ch <- outcome{v, err}
	}()
	select {
	case o := <-ch:
		return o.v, o.err
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}

// traceFor resolves a TraceSpec: inline text is parsed per request;
// generated workloads are memoized so every request for the same instance
// shares one trace identity — the property the replay cache keys on. The
// request context is threaded into the calibration replays so a timed-out
// request stops generating promptly; a generation aborted that way is not
// memoized (waiters with live contexts retry, bounded, then generate
// uncached rather than loop on repeatedly cancelled peers).
func (s *Server) traceFor(ctx context.Context, spec TraceSpec) (*trace.Trace, error) {
	return span(s, stagerr.Parse, func() (*trace.Trace, error) { return s.traceResolve(ctx, spec) })
}

// traceResolve is traceFor without the parse-stage span accounting.
func (s *Server) traceResolve(ctx context.Context, spec TraceSpec) (*trace.Trace, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if spec.Text != "" {
		tr, err := trace.Read(strings.NewReader(spec.Text))
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		return tr, nil
	}
	inst, err := spec.instance()
	if err != nil {
		return nil, err
	}
	iters := spec.Iterations
	if iters == 0 {
		iters = workload.DefaultConfig().Iterations
	}
	generate := func() (*trace.Trace, error) {
		cfg := workload.DefaultConfig()
		cfg.Iterations = iters
		cfg.SkipPECalibration = spec.Quick
		cfg.Ctx = ctx
		return workload.Generate(inst, cfg)
	}
	k := traceKey{app: inst.Name, nprocs: inst.NProcs, iterations: iters, quick: spec.Quick}
	for attempt := 0; ; attempt++ {
		e := s.traceEntryFor(k)
		e.once.Do(func() { e.tr, e.err = generate() })
		if e.err == nil || !isCtxErr(e.err) {
			return e.tr, e.err
		}
		s.tmu.Lock()
		if el, ok := s.traces[k]; ok && el.Value.(*traceItem).entry == e {
			s.tlru.Remove(el)
			delete(s.traces, k)
		}
		s.tmu.Unlock()
		if ctx != nil {
			if own := ctx.Err(); own != nil {
				return nil, own
			}
		}
		if attempt >= 2 {
			return generate()
		}
	}
}

// traceEntryFor returns the single-flight memo entry for k, inserting (and
// possibly LRU-evicting) under the lock.
func (s *Server) traceEntryFor(k traceKey) *traceEntry {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	if el, ok := s.traces[k]; ok {
		s.tlru.MoveToFront(el)
		return el.Value.(*traceItem).entry
	}
	e := &traceEntry{}
	s.traces[k] = s.tlru.PushFront(&traceItem{key: k, entry: e})
	// Bound the memo: a long-running daemon must not accumulate one
	// trace per distinct (app, nprocs, iterations, quick) tuple
	// forever. Replay-cache entries keyed by an evicted trace simply
	// age out of that LRU in turn.
	if max := s.cfg.TraceCacheEntries; max > 0 && s.tlru.Len() > max {
		back := s.tlru.Back()
		s.tlru.Remove(back)
		delete(s.traces, back.Value.(*traceItem).key)
	}
	return e
}

// isCtxErr mirrors the replay cache's classification of non-memoizable
// cancellation errors. The whole single-flight-with-ctx-eviction pattern
// in traceFor deliberately parallels dimemas.ReplayCache.flight /
// retryAfterCtxError (the entry payloads and eviction policies differ);
// keep behavioral changes to one in sync with the other.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// writeJSON writes v as a compact JSON body with a trailing newline.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

// writeError emits the daemon's error envelope: the message, the stage the
// failure originated in, and the request ID assigned by the lifecycle
// middleware. Every error response, on every route, goes through here, so
// the per-stage error counters see all of them.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, stage stagerr.Stage, msg string) {
	s.reg.stageError(stage)
	writeJSON(w, status, ErrorBody{
		Error:     msg,
		Stage:     string(stage),
		RequestID: requestID(r.Context()),
	})
}

// decode strictly parses a JSON request body. It doubles as the handler-I/O
// fault-injection point: a chaos run can make any request fail right at the
// front door, before a slot-holding work goroutine exists.
func decode(r *http.Request, v any) error {
	if err := faults.Check(faults.HandlerIO); err != nil {
		return stagerr.Wrap(stagerr.Serve, err)
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return stagerr.Errorf(stagerr.Parse, "body: %w", err)
	}
	return nil
}

// statusClientClosedRequest is nginx's non-standard code for a client that
// hung up before the response; it keeps abandoned requests out of the 504
// timeout accounting.
const statusClientClosedRequest = 499

// finishErr maps a pipeline error onto a status code and an envelope. The
// stage is the error's origin (innermost stagerr tag); untagged errors and
// request-lifecycle outcomes (timeout, client hangup) report as the serve
// stage. Injected faults answer 500 — the request was well-formed; the
// server broke — where ordinary pipeline errors are the client's 400.
func finishErr(s *Server, w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.reg.timeout()
		s.writeError(w, r, http.StatusGatewayTimeout, stagerr.Serve, "request timed out")
	case errors.Is(err, context.Canceled):
		s.writeError(w, r, statusClientClosedRequest, stagerr.Serve, "client closed request")
	default:
		stage := stagerr.Serve
		if st, ok := stagerr.StageOf(err); ok {
			stage = st
		}
		status := http.StatusBadRequest
		if faults.IsInjected(err) {
			status = http.StatusInternalServerError
		}
		s.writeError(w, r, status, stage, err.Error())
	}
}

// span times one pipeline stage of a request and feeds the per-stage
// latency metrics, passing f's result through untouched.
func span[T any](s *Server, st stagerr.Stage, f func() (T, error)) (T, error) {
	start := time.Now()
	v, err := f()
	s.reg.observeStage(st, time.Since(start))
	return v, err
}
