package server

import (
	"context"
	"math"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/gearopt"
	"repro/internal/powercap"
	"repro/internal/predict"
	"repro/internal/rebalance"
	"repro/internal/stagerr"
	"repro/internal/timemodel"
	"repro/internal/workload"
)

// Request-body limits; requests outside these ranges are rejected with 400
// rather than tying up a worker slot on a pathological simulation.
const (
	// MaxIterations bounds generated-workload length per request.
	MaxIterations = 500
	// MaxNProcs bounds interpolated-instance size per request.
	MaxNProcs = 2048
	// MaxCells bounds nprocs × iterations of one generated workload, so a
	// single request cannot demand an arbitrarily large trace.
	MaxCells = 200_000
	// MaxGears bounds the searched/constructed gear-set size.
	MaxGears = 64
	// MaxGearOptTraces bounds the workload list of one gear-set search.
	MaxGearOptTraces = 16
	// MaxBatchItems bounds the gear assignments of one batched analysis.
	// The batch endpoint retimes all items in one struct-of-arrays skeleton
	// walk (dimemas.RetimeBatch), so a large batch costs little more per
	// item than a small one.
	MaxBatchItems = 1024
	// MaxPowercapMoves bounds the refinement budget of one power-cap
	// scheduling request.
	MaxPowercapMoves = 16384
	// MaxRebalanceIterations bounds the online iterations of one
	// closed-loop rebalancing request.
	MaxRebalanceIterations = 500
)

// TraceRef selects the trace a request operates on: either an inline trace
// in the text format, or a synthetic Table 3 workload generated (and
// memoized) server-side. Generated workloads share one trace instance per
// (app, nprocs, iterations, quick) tuple, which is what lets the shared
// replay cache turn repeated what-if queries on the same application into
// cache hits. Every request type carries exactly one TraceRef (gearopt, a
// list), so trace selection is validated in one place.
type TraceRef struct {
	// Text is an inline trace in the native text format. Mutually exclusive
	// with App.
	Text string `json:"text,omitempty"`
	// App is a Table 3 instance name (e.g. "IS-64"), or an application name
	// (e.g. "CG") when NProcs is set.
	App string `json:"app,omitempty"`
	// NProcs selects an interpolated instance for App (e.g. CG at 256).
	NProcs int `json:"nprocs,omitempty"`
	// Iterations is the generated trace length (default 20, max 500).
	Iterations int `json:"iterations,omitempty"`
	// Quick skips parallel-efficiency calibration during generation.
	Quick bool `json:"quick,omitempty"`
}

// TraceSpec is the pre-redesign name of TraceRef, kept as an alias so
// existing callers and tests keep compiling; the wire format is unchanged.
type TraceSpec = TraceRef

func (s *TraceRef) validate() error {
	if (s.Text == "") == (s.App == "") {
		return stagerr.New(stagerr.Validate, "trace: exactly one of text or app is required")
	}
	if s.Text != "" && (s.NProcs != 0 || s.Iterations != 0 || s.Quick) {
		return stagerr.New(stagerr.Validate, "trace: nprocs/iterations/quick apply only to generated workloads")
	}
	if s.Iterations < 0 || s.Iterations > MaxIterations {
		return stagerr.Errorf(stagerr.Validate, "trace: iterations must be in [1, %d], got %d", MaxIterations, s.Iterations)
	}
	if s.NProcs < 0 || s.NProcs > MaxNProcs {
		return stagerr.Errorf(stagerr.Validate, "trace: nprocs must be in [2, %d], got %d", MaxNProcs, s.NProcs)
	}
	if s.NProcs > 0 {
		iters := s.Iterations
		if iters == 0 {
			iters = workload.DefaultConfig().Iterations
		}
		if s.NProcs*iters > MaxCells {
			return stagerr.Errorf(stagerr.Validate, "trace: nprocs × iterations = %d exceeds the per-request limit %d", s.NProcs*iters, MaxCells)
		}
	}
	return nil
}

// instance resolves the workload instance of a generated-trace spec.
func (s *TraceRef) instance() (workload.Instance, error) {
	inst, err := workload.FindInstance(s.App)
	if s.NProcs > 0 {
		inst, err = workload.InstanceFor(s.App, s.NProcs)
	}
	if err != nil {
		return inst, stagerr.Wrap(stagerr.Validate, err)
	}
	return inst, nil
}

// GearSpec holds the frequency-model parameters every simulation request
// shares: the memory-boundedness β and the nominal top frequency. Request
// types embed it, so its fields decode from the same top-level JSON keys
// ("beta", "fmax") clients have always sent — the redesign deduplicated the
// declarations and the validation, not the wire format.
type GearSpec struct {
	// Beta is the memory-boundedness parameter. Absent means the paper's
	// default 0.5; an explicit 0 requests a fully memory-bound run.
	Beta *float64 `json:"beta,omitempty"`
	// FMax is the nominal top frequency (default 2.3 GHz).
	FMax float64 `json:"fmax,omitempty"`
}

// validate is the one bounds check for the shared parameters; every handler
// resolves its GearSpec through validate/options/betaArg, replacing the
// per-request copies the pre-redesign types carried.
func (g *GearSpec) validate() error {
	if g.Beta != nil && (*g.Beta < 0 || *g.Beta > 1 || math.IsNaN(*g.Beta)) {
		return stagerr.Errorf(stagerr.Validate, "beta: must be in [0, 1], got %v", *g.Beta)
	}
	if g.FMax < 0 {
		return stagerr.Errorf(stagerr.Validate, "fmax: must be non-negative, got %v", g.FMax)
	}
	return nil
}

// betaArg unpacks the optional wire β into the (value, explicit) pair the
// pipeline configs take: absent means "use the default", an explicit 0 means
// a fully memory-bound β = 0 run.
func (g *GearSpec) betaArg() (beta float64, set bool, err error) {
	if err := g.validate(); err != nil {
		return 0, false, err
	}
	if g.Beta == nil {
		return 0, false, nil
	}
	return *g.Beta, true, nil
}

// options applies the same defaults the analysis pipeline uses, so a bare
// replay request and an analyze request replay the identical baseline (and
// therefore share a cache entry).
func (g *GearSpec) options(ctx context.Context) (dimemas.Options, error) {
	if err := g.validate(); err != nil {
		return dimemas.Options{}, err
	}
	o := dimemas.Options{Beta: timemodel.DefaultBeta, FMax: g.FMax, Ctx: ctx}
	if g.Beta != nil {
		o.Beta = *g.Beta
	}
	if o.FMax == 0 {
		o.FMax = dvfs.FMax
	}
	return o, nil
}

// GearSetSpec describes a DVFS gear set in a request body.
type GearSetSpec struct {
	// Kind is one of "uniform", "exponential", "continuous-limited",
	// "continuous-unlimited" or "custom".
	Kind string `json:"kind"`
	// N is the gear count for uniform/exponential kinds (default 6).
	N int `json:"n,omitempty"`
	// Freqs lists the gear frequencies (GHz) of a custom set.
	Freqs []float64 `json:"freqs,omitempty"`
	// Overclock appends the paper's extra (2.6 GHz, 1.6 V) gear, as used by
	// the AVG studies.
	Overclock bool `json:"overclock,omitempty"`
}

// set builds the dvfs.Set the spec describes.
func (g *GearSetSpec) set() (*dvfs.Set, error) {
	n := g.N
	if n == 0 {
		n = 6
	}
	if n < 2 || n > MaxGears {
		return nil, stagerr.Errorf(stagerr.Validate, "gear_set: n must be in [2, %d], got %d", MaxGears, g.N)
	}
	var (
		set *dvfs.Set
		err error
	)
	switch strings.ToLower(g.Kind) {
	case "uniform", "":
		set, err = dvfs.Uniform(n)
	case "exponential":
		set, err = dvfs.Exponential(n)
	case "continuous-limited":
		set = dvfs.ContinuousLimited()
	case "continuous-unlimited":
		set = dvfs.ContinuousUnlimited()
	case "custom":
		if len(g.Freqs) < 2 || len(g.Freqs) > MaxGears {
			return nil, stagerr.Errorf(stagerr.Validate, "gear_set: custom set needs 2..%d freqs, got %d", MaxGears, len(g.Freqs))
		}
		gears := make([]dvfs.Gear, len(g.Freqs))
		for i, f := range g.Freqs {
			if f <= 0 {
				return nil, stagerr.Errorf(stagerr.Validate, "gear_set: non-positive frequency %v", f)
			}
			gears[i] = dvfs.GearAt(f)
		}
		set, err = dvfs.FromGears("custom", gears)
	default:
		return nil, stagerr.Errorf(stagerr.Validate, "gear_set: unknown kind %q", g.Kind)
	}
	if err != nil {
		return nil, stagerr.Errorf(stagerr.Validate, "gear_set: %w", err)
	}
	if g.Overclock {
		set, err = set.WithOverclockGear(dvfs.Gear{Freq: dvfs.OverclockFreq, Volt: dvfs.OverclockVolt})
		if err != nil {
			return nil, stagerr.Errorf(stagerr.Validate, "gear_set: %w", err)
		}
	}
	return set, nil
}

// parseAlgorithm maps the wire name onto the balancing policy.
func parseAlgorithm(s string) (core.Algorithm, error) {
	switch strings.ToUpper(s) {
	case "MAX", "":
		return core.MAX, nil
	case "AVG":
		return core.AVG, nil
	default:
		return 0, stagerr.Errorf(stagerr.Validate, "algorithm: unknown %q (want MAX or AVG)", s)
	}
}

// ReplayRequest is the body of POST /v1/replay.
type ReplayRequest struct {
	Trace TraceRef `json:"trace"`
	// Freqs is the per-rank frequency (GHz); empty means every rank at FMax
	// (the memoized baseline replay).
	Freqs []float64 `json:"freqs,omitempty"`
	// Platform optionally overrides the daemon's machine model for this
	// request (flat scalars, topology, per-rank capability).
	Platform *PlatformSpec `json:"platform,omitempty"`
	GearSpec
}

// ReplayResponse is the body of a successful POST /v1/replay.
type ReplayResponse struct {
	App     string    `json:"app"`
	Ranks   int       `json:"ranks"`
	Time    float64   `json:"time"`
	Compute []float64 `json:"compute"`
	Finish  []float64 `json:"finish"`
}

// NewReplayResponse builds the wire form of a replay result. It is exported
// so tests can prove server responses byte-identical to direct library
// calls.
func NewReplayResponse(app string, res *dimemas.Result) *ReplayResponse {
	return &ReplayResponse{
		App:     app,
		Ranks:   len(res.Compute),
		Time:    res.Time,
		Compute: res.Compute,
		Finish:  res.Finish,
	}
}

// AnalyzeRequest is the body of POST /v1/analyze.
type AnalyzeRequest struct {
	Trace TraceRef `json:"trace"`
	// Algorithm selects the balancing policy: "MAX" (default) or "AVG".
	Algorithm string      `json:"algorithm,omitempty"`
	GearSet   GearSetSpec `json:"gear_set"`
	// Platform optionally overrides the daemon's machine model for this
	// request.
	Platform *PlatformSpec `json:"platform,omitempty"`
	GearSpec
}

// RunStatsBody is one simulated execution's cost on the wire.
type RunStatsBody struct {
	Time           float64 `json:"time"`
	Energy         float64 `json:"energy"`
	DynamicCompute float64 `json:"dynamic_compute"`
	DynamicComm    float64 `json:"dynamic_comm"`
	Static         float64 `json:"static"`
}

// NormBody holds energy/time/EDP normalized to the original run.
type NormBody struct {
	Energy float64 `json:"energy"`
	Time   float64 `json:"time"`
	EDP    float64 `json:"edp"`
}

// AnalyzeResponse is the body of a successful POST /v1/analyze.
type AnalyzeResponse struct {
	App         string       `json:"app"`
	Algorithm   string       `json:"algorithm"`
	GearSet     string       `json:"gear_set"`
	Freqs       []float64    `json:"freqs"`
	Target      float64      `json:"target"`
	Overclocked int          `json:"overclocked"`
	Orig        RunStatsBody `json:"orig"`
	New         RunStatsBody `json:"new"`
	Norm        NormBody     `json:"norm"`
	LB          float64      `json:"lb"`
	PE          float64      `json:"pe"`
}

// NewAnalyzeResponse builds the wire form of an analysis result.
func NewAnalyzeResponse(setName string, res *analysis.Result) *AnalyzeResponse {
	stats := func(r analysis.RunStats) RunStatsBody {
		return RunStatsBody{
			Time:           r.Time,
			Energy:         r.Energy,
			DynamicCompute: r.Breakdown.DynamicCompute,
			DynamicComm:    r.Breakdown.DynamicComm,
			Static:         r.Breakdown.Static,
		}
	}
	return &AnalyzeResponse{
		App:         res.App,
		Algorithm:   res.Assignment.Algorithm.String(),
		GearSet:     setName,
		Freqs:       res.Assignment.Freqs(),
		Target:      res.Assignment.Target,
		Overclocked: res.Assignment.Overclocked,
		Orig:        stats(res.Orig),
		New:         stats(res.New),
		Norm:        NormBody{Energy: res.Norm.Energy, Time: res.Norm.Time, EDP: res.Norm.EDP},
		LB:          res.LB,
		PE:          res.PE,
	}
}

// AnalyzeBatchItem is one gear assignment of a batched analysis: an
// algorithm/gear-set combination evaluated against the shared trace.
type AnalyzeBatchItem struct {
	// Algorithm selects the balancing policy: "MAX" (default) or "AVG".
	Algorithm string      `json:"algorithm,omitempty"`
	GearSet   GearSetSpec `json:"gear_set"`
}

// AnalyzeBatchRequest is the body of POST /v1/analyze/batch: one trace,
// N gear assignments. The baseline replay and the timing skeleton are
// computed once; every item is then a cheap retiming off the shared
// skeleton, so asking 50 what-if questions costs barely more than asking
// one.
type AnalyzeBatchRequest struct {
	Trace TraceRef           `json:"trace"`
	Items []AnalyzeBatchItem `json:"items"`
	// Platform optionally overrides the daemon's machine model, shared by
	// every item (it parameterizes the skeleton the batch retimes).
	Platform *PlatformSpec `json:"platform,omitempty"`
	// The embedded β and FMax are shared by every item (they parameterize
	// the skeleton the batch retimes).
	GearSpec
}

// BatchItemError reports one failed item of a batched analysis: the
// request-items index it belongs to, the failure, and the pipeline stage
// the failure originated in (same taxonomy as ErrorBody.Stage).
type BatchItemError struct {
	Index int    `json:"index"`
	Error string `json:"error"`
	Stage string `json:"stage"`
}

// AnalyzeBatchResponse is the body of a successful POST /v1/analyze/batch.
// Results are in request-item order; a failed item leaves a null at its
// index and adds an entry to Errors, so one bad item never sinks the other
// 1023. All-good batches serialize exactly as before the per-item error
// envelope existed (Errors is omitted when empty).
type AnalyzeBatchResponse struct {
	App     string             `json:"app"`
	Results []*AnalyzeResponse `json:"results"`
	Errors  []BatchItemError   `json:"errors,omitempty"`
}

// GearOptRequest is the body of POST /v1/gearopt.
type GearOptRequest struct {
	// Traces lists the applications the gear placement is optimized for.
	Traces []TraceRef `json:"traces"`
	// NGears is the searched set size (default 6).
	NGears int `json:"ngears,omitempty"`
	// Grid is the search lattice step in GHz (default 0.05).
	Grid float64 `json:"grid,omitempty"`
	// MaxRounds bounds the coordinate-descent rounds (default 8).
	MaxRounds int `json:"max_rounds,omitempty"`
	// Platform optionally overrides the daemon's machine model for the
	// search (every trace is scored on the same machine).
	Platform *PlatformSpec `json:"platform,omitempty"`
	GearSpec
}

// GearOptResponse is the body of a successful POST /v1/gearopt.
type GearOptResponse struct {
	GearSet       string    `json:"gear_set"`
	Freqs         []float64 `json:"freqs"`
	SearchEnergy  float64   `json:"search_energy"`
	Energy        float64   `json:"energy"`
	UniformEnergy float64   `json:"uniform_energy"`
	Rounds        int       `json:"rounds"`
	Evaluations   int       `json:"evaluations"`
}

// NewGearOptResponse builds the wire form of a gear-search result.
func NewGearOptResponse(res *gearopt.Result) *GearOptResponse {
	freqs := make([]float64, 0, res.Set.Size())
	for _, g := range res.Set.Gears() {
		freqs = append(freqs, g.Freq)
	}
	return &GearOptResponse{
		GearSet:       res.Set.Name(),
		Freqs:         freqs,
		SearchEnergy:  res.SearchEnergy,
		Energy:        res.Energy,
		UniformEnergy: res.UniformEnergy,
		Rounds:        res.Rounds,
		Evaluations:   res.Evaluations,
	}
}

// AppBody is one Table 3 instance in GET /v1/apps.
type AppBody struct {
	Name   string  `json:"name"`
	App    string  `json:"app"`
	NProcs int     `json:"nprocs"`
	LB     float64 `json:"lb"`
	PE     float64 `json:"pe"`
}

// AppsResponse is the body of GET /v1/apps.
type AppsResponse struct {
	Apps []AppBody `json:"apps"`
}

// NewAppsResponse lists the Table 3 instances.
func NewAppsResponse() *AppsResponse {
	insts := workload.Table3()
	out := &AppsResponse{Apps: make([]AppBody, len(insts))}
	for i, inst := range insts {
		out.Apps[i] = AppBody{
			Name:   inst.Name,
			App:    inst.App,
			NProcs: inst.NProcs,
			LB:     inst.TargetLB,
			PE:     inst.TargetPE,
		}
	}
	return out
}

// TracegenRequest is the body of POST /v1/tracegen: a generated-workload
// TraceSpec (inline text input is rejected — there is nothing to generate).
type TracegenRequest struct {
	Trace TraceSpec `json:"trace"`
}

// TracegenResponse is the body of a successful POST /v1/tracegen.
type TracegenResponse struct {
	Name    string `json:"name"`
	Ranks   int    `json:"ranks"`
	Records int    `json:"records"`
	// Trace is the generated trace in the native text format.
	Trace string `json:"trace"`
}

// PowercapRequest is the body of POST /v1/powercap: schedule per-rank gears
// under a cluster power budget with both the uniform-downshift baseline and
// the load-aware redistribution policy.
type PowercapRequest struct {
	Trace TraceRef `json:"trace"`
	// GearSet must describe a discrete set (uniform/exponential/custom).
	GearSet GearSetSpec `json:"gear_set"`
	// Cap is the cluster power budget in model units (required, > 0).
	Cap float64 `json:"cap"`
	// Kind selects what the budget bounds: "peak" (default) or "average".
	Kind string `json:"kind,omitempty"`
	// MaxMoves bounds the redistribution refinement loop (default 4×ranks).
	MaxMoves int `json:"max_moves,omitempty"`
	// Platform optionally overrides the daemon's machine model for this
	// request (per-rank power scales tighten the cap feasibility check).
	Platform *PlatformSpec `json:"platform,omitempty"`
	GearSpec
}

// PowercapScheduleBody is one policy's schedule on the wire.
type PowercapScheduleBody struct {
	Policy         string    `json:"policy"`
	Freqs          []float64 `json:"freqs"`
	Time           float64   `json:"time"`
	Energy         float64   `json:"energy"`
	PeakPower      float64   `json:"peak_power"`
	AveragePower   float64   `json:"average_power"`
	OverCapSeconds float64   `json:"over_cap_seconds"`
	NormTime       float64   `json:"norm_time"`
	NormEnergy     float64   `json:"norm_energy"`
}

// PowercapRefBody is the uncapped reference execution on the wire.
type PowercapRefBody struct {
	Time         float64 `json:"time"`
	Energy       float64 `json:"energy"`
	PeakPower    float64 `json:"peak_power"`
	AveragePower float64 `json:"average_power"`
}

// PowercapResponse is the body of a successful POST /v1/powercap.
type PowercapResponse struct {
	App           string               `json:"app"`
	Cap           float64              `json:"cap"`
	Kind          string               `json:"kind"`
	Uncapped      PowercapRefBody      `json:"uncapped"`
	Uniform       PowercapScheduleBody `json:"uniform"`
	Redistributed PowercapScheduleBody `json:"redistributed"`
	Evaluations   int                  `json:"evaluations"`
}

// NewPowercapResponse builds the wire form of a power-cap scheduling result.
func NewPowercapResponse(res *powercap.Result) *PowercapResponse {
	sched := func(s powercap.Schedule) PowercapScheduleBody {
		return PowercapScheduleBody{
			Policy:         s.Policy.String(),
			Freqs:          s.Freqs(),
			Time:           s.Time,
			Energy:         s.Energy,
			PeakPower:      s.PeakPower,
			AveragePower:   s.AveragePower,
			OverCapSeconds: s.OverCapSeconds,
			NormTime:       s.NormTime,
			NormEnergy:     s.NormEnergy,
		}
	}
	return &PowercapResponse{
		App:  res.App,
		Cap:  res.Cap,
		Kind: res.Kind.String(),
		Uncapped: PowercapRefBody{
			Time:         res.Uncapped.Time,
			Energy:       res.Uncapped.Energy,
			PeakPower:    res.Uncapped.PeakPower,
			AveragePower: res.Uncapped.AveragePower,
		},
		Uniform:       sched(res.Uniform),
		Redistributed: sched(res.Redistributed),
		Evaluations:   res.Evaluations,
	}
}

// DriftSpec describes the load-drift model of a rebalancing request.
type DriftSpec struct {
	// Kind is one of "none" (default), "ramp", "walk" or "step".
	Kind string `json:"kind,omitempty"`
	// Magnitude is the drift strength (see workload.Drift).
	Magnitude float64 `json:"magnitude,omitempty"`
	// Jitter is the per-iteration multiplicative noise σ.
	Jitter float64 `json:"jitter,omitempty"`
	// StepAt is the first shifted iteration for the step kind (0 = mid-run).
	StepAt int `json:"step_at,omitempty"`
	// Seed makes the drift sequence deterministic (0 = fixed default).
	Seed int64 `json:"seed,omitempty"`
}

// drift builds the workload.Drift the spec describes.
func (d *DriftSpec) drift() (workload.Drift, error) {
	kind := workload.DriftNone
	if d.Kind != "" {
		var err error
		kind, err = workload.ParseDriftKind(strings.ToLower(d.Kind))
		if err != nil {
			return workload.Drift{}, stagerr.Errorf(stagerr.Validate, "drift: %w", err)
		}
	}
	out := workload.Drift{
		Kind:      kind,
		Magnitude: d.Magnitude,
		Jitter:    d.Jitter,
		StepAt:    d.StepAt,
		Seed:      d.Seed,
	}
	if err := out.Validate(); err != nil {
		return workload.Drift{}, stagerr.Wrap(stagerr.Validate, err)
	}
	return out, nil
}

// PredictSpec configures the predictive policies' per-rank load forecaster.
// Omitted fields inherit predict.DefaultConfig (linear model, 8-observation
// window, skill guard at 1.0).
type PredictSpec struct {
	// Kind is the model: "linear" (default) or "ewma".
	Kind string `json:"kind,omitempty"`
	// Window is the fit and skill-tracking window (observations).
	Window int `json:"window,omitempty"`
	// Alpha is the EWMA smoothing factor in (0, 1].
	Alpha float64 `json:"alpha,omitempty"`
	// Guard is the fallback threshold (model error vs naive error);
	// negative disables the guard.
	Guard float64 `json:"guard,omitempty"`
}

// config builds the predict.Config the spec describes. A nil spec yields
// the zero config, which the rebalance loop resolves to the default for
// predictive policies (and requires for the reactive ones).
func (p *PredictSpec) config() (predict.Config, error) {
	if p == nil {
		return predict.Config{}, nil
	}
	cfg := predict.DefaultConfig()
	if p.Kind != "" {
		k, err := predict.ParseKind(strings.ToLower(p.Kind))
		if err != nil {
			return predict.Config{}, stagerr.Errorf(stagerr.Validate, "%w", err)
		}
		cfg.Kind = k
	}
	if p.Window != 0 {
		cfg.Window = p.Window
	}
	if p.Alpha != 0 {
		cfg.Alpha = p.Alpha
	}
	if p.Guard != 0 {
		cfg.Guard = p.Guard
	}
	return cfg, nil
}

// RebalanceRequest is the body of POST /v1/rebalance: simulate an
// application over N online iterations with drifting per-rank load and a
// pluggable rebalancing policy (see internal/rebalance).
type RebalanceRequest struct {
	Trace TraceRef `json:"trace"`
	// GearSet must describe a discrete set for the capped policies.
	GearSet GearSetSpec `json:"gear_set"`
	// Algorithm selects the per-re-solve balancing rule: "MAX" (default)
	// or "AVG". Ignored by the capped policies.
	Algorithm string `json:"algorithm,omitempty"`
	// Policy is one of "never", "every-k", "threshold" (default),
	// "capped", "predictive" or "predictive-capped".
	Policy string `json:"policy,omitempty"`
	// Iterations is the number of online iterations (default 20, max 500).
	Iterations int `json:"iterations,omitempty"`
	// Period is the every-k policy's re-solve interval (default 1).
	Period int `json:"period,omitempty"`
	// Threshold and Hysteresis parameterize the degradation trigger.
	Threshold  float64 `json:"threshold,omitempty"`
	Hysteresis int     `json:"hysteresis,omitempty"`
	// Margin is the guard band left below the balancing target.
	Margin float64 `json:"margin,omitempty"`
	// Cap is the capped policy's peak cluster power budget (model watts).
	Cap float64 `json:"cap,omitempty"`
	// ReassignOverhead is the seconds charged to an iteration whose gears
	// changed.
	ReassignOverhead float64 `json:"reassign_overhead,omitempty"`
	// ExactPeaks reports exact per-iteration profile peaks instead of the
	// all-compute bound.
	ExactPeaks bool `json:"exact_peaks,omitempty"`
	// Predict configures the predictive policies' forecaster; must be
	// omitted for the reactive policies.
	Predict *PredictSpec `json:"predict,omitempty"`
	// Horizon is the number of iterations ahead a predictive re-solve
	// targets (default 3); predictive policies only.
	Horizon int `json:"horizon,omitempty"`
	// Drift describes how per-rank load evolves between iterations.
	Drift DriftSpec `json:"drift,omitempty"`
	// Platform optionally overrides the daemon's machine model for the
	// whole closed loop.
	Platform *PlatformSpec `json:"platform,omitempty"`
	GearSpec
}

// RebalanceIterationBody is one online iteration on the wire.
type RebalanceIterationBody struct {
	Time       float64 `json:"time"`
	Energy     float64 `json:"energy"`
	PeakPower  float64 `json:"peak_power"`
	LB         float64 `json:"lb"`
	Rebalanced bool    `json:"rebalanced,omitempty"`
}

// RebalanceResponse is the body of a successful POST /v1/rebalance.
type RebalanceResponse struct {
	App           string                   `json:"app"`
	Policy        string                   `json:"policy"`
	Iterations    []RebalanceIterationBody `json:"iterations"`
	TotalTime     float64                  `json:"total_time"`
	TotalEnergy   float64                  `json:"total_energy"`
	PeakPower     float64                  `json:"peak_power"`
	OrigTime      float64                  `json:"orig_time"`
	OrigEnergy    float64                  `json:"orig_energy"`
	Norm          NormBody                 `json:"norm"`
	Reassignments int                      `json:"reassignments"`
	GearSwitches  int                      `json:"gear_switches"`
	MeanLB        float64                  `json:"mean_lb"`
	MinLB         float64                  `json:"min_lb"`
	// Forecast reports the predictive policies' forecaster skill; omitted
	// for the reactive policies.
	Forecast   *ForecastBody `json:"forecast,omitempty"`
	FinalFreqs []float64     `json:"final_freqs"`
}

// ForecastBody is the forecaster-skill summary of a predictive run.
type ForecastBody struct {
	// Observations counts forecaster updates (one per iteration observed).
	Observations int `json:"observations"`
	// Fallbacks counts iterations answered with the last observation
	// because the skill guard was active.
	Fallbacks int `json:"fallbacks"`
	// Breaks counts structural-break resets of the fit.
	Breaks int `json:"breaks,omitempty"`
	// ModelErr and NaiveErr are the rolling window error sums of the model
	// and the naive last-observation predictor.
	ModelErr float64 `json:"model_err"`
	NaiveErr float64 `json:"naive_err"`
}

// NewRebalanceResponse builds the wire form of a closed-loop result.
func NewRebalanceResponse(res *rebalance.Result) *RebalanceResponse {
	out := &RebalanceResponse{
		App:           res.App,
		Policy:        res.Policy.String(),
		Iterations:    make([]RebalanceIterationBody, len(res.Iterations)),
		TotalTime:     res.TotalTime,
		TotalEnergy:   res.TotalEnergy,
		PeakPower:     res.PeakPower,
		OrigTime:      res.OrigTime,
		OrigEnergy:    res.OrigEnergy,
		Norm:          NormBody{Energy: res.Norm.Energy, Time: res.Norm.Time, EDP: res.Norm.EDP},
		Reassignments: res.Reassignments,
		GearSwitches:  res.GearSwitches,
		MeanLB:        res.MeanLB,
		MinLB:         res.MinLB,
		FinalFreqs:    make([]float64, len(res.FinalGears)),
	}
	for i, it := range res.Iterations {
		out.Iterations[i] = RebalanceIterationBody{
			Time:       it.Time,
			Energy:     it.Energy,
			PeakPower:  it.PeakPower,
			LB:         it.LB,
			Rebalanced: it.Rebalanced,
		}
	}
	for r, g := range res.FinalGears {
		out.FinalFreqs[r] = g.Freq
	}
	if res.Forecast != nil {
		out.Forecast = &ForecastBody{
			Observations: res.Forecast.Observations,
			Fallbacks:    res.Forecast.Fallbacks,
			Breaks:       res.Forecast.Breaks,
			ModelErr:     res.Forecast.ModelErr,
			NaiveErr:     res.Forecast.NaiveErr,
		}
	}
	return out
}

func errRebalanceIterations(got int) error {
	return stagerr.Errorf(stagerr.Validate, "iterations: must be in [0, %d] (0 means the default 20), got %d", MaxRebalanceIterations, got)
}

// parseCapKind maps the wire name onto the budget kind.
func parseCapKind(s string) (powercap.CapKind, error) {
	switch strings.ToLower(s) {
	case "peak", "":
		return powercap.CapPeak, nil
	case "average", "avg":
		return powercap.CapAverage, nil
	default:
		return 0, stagerr.Errorf(stagerr.Validate, "kind: unknown %q (want peak or average)", s)
	}
}

// ErrorBody is the JSON error envelope of every non-2xx response. Stage is
// the pipeline stage the failure originated in (internal/stagerr taxonomy:
// parse, validate, skeleton, retime, optimize, powercap, rebalance, cache,
// serve) and RequestID echoes the request's X-Request-ID (generated by the
// server when the client sent none), so one failed call can be correlated
// across client logs, server logs and /metrics.
type ErrorBody struct {
	Error     string `json:"error"`
	Stage     string `json:"stage"`
	RequestID string `json:"request_id"`
}

// errInlineTracegen rejects tracegen requests that carry an inline trace.
var errInlineTracegen = stagerr.New(stagerr.Validate, "tracegen: inline text traces have nothing to generate; pass app (+ nprocs)")

func errFreqCount(got, want int) error {
	return stagerr.Errorf(stagerr.Validate, "freqs: got %d frequencies for a %d-rank trace", got, want)
}

func errTraceCount(got int) error {
	return stagerr.Errorf(stagerr.Validate, "traces: need 1..%d workloads, got %d", MaxGearOptTraces, got)
}

func errGearCount(got int) error {
	return stagerr.Errorf(stagerr.Validate, "ngears: at most %d gears, got %d", MaxGears, got)
}

func errBatchCount(got int) error {
	return stagerr.Errorf(stagerr.Validate, "items: need 1..%d gear assignments, got %d", MaxBatchItems, got)
}

func errPowercapMoves(got int) error {
	return stagerr.Errorf(stagerr.Validate, "max_moves: must be in [0, %d], got %d", MaxPowercapMoves, got)
}
