package server

import (
	"net/http"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/dimemas"
	"repro/internal/gearopt"
	"repro/internal/powercap"
	"repro/internal/rebalance"
	"repro/internal/stagerr"
	"repro/internal/trace"
)

// cacheFor returns the replay cache a request should thread through the
// pipeline. Inline text traces are parsed into a fresh *trace.Trace per
// request, so shared-cache entries keyed by them can never be hit again —
// they would only evict warm generated-workload entries from the bounded
// LRU. Such requests get the result of local() instead (a request-scoped
// cache when the handler itself re-evaluates the trace, built lazily so
// the common generated-workload path allocates nothing) or nil for
// one-shot pipelines.
func (s *Server) cacheFor(local func() *dimemas.ReplayCache, specs ...TraceSpec) *dimemas.ReplayCache {
	for _, spec := range specs {
		if spec.Text != "" {
			if local == nil {
				return nil
			}
			return local()
		}
	}
	return s.cache
}

// HealthBody is the GET /healthz response. Platform echoes the flat machine
// constants the instance serves by default, so a fleet rollout of new link
// parameters is verifiable from the health check.
type HealthBody struct {
	Status        string       `json:"status"`
	UptimeSeconds float64      `json:"uptime_seconds"`
	Platform      PlatformBody `json:"platform"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthBody{
		Status:        "ok",
		UptimeSeconds: time.Since(s.reg.start).Seconds(),
		Platform:      NewPlatformBody(s.platform),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.render(w, s.cache.Stats(), s.Ready())
}

func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, NewAppsResponse())
}

func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	var req ReplayRequest
	if err := decode(r, &req); err != nil {
		finishErr(s, w, r, err)
		return
	}
	ctx := r.Context()
	resp, err := call(ctx, func() (*ReplayResponse, error) {
		tr, err := s.traceFor(ctx, req.Trace)
		if err != nil {
			return nil, err
		}
		opts, err := req.options(ctx)
		if err != nil {
			return nil, err
		}
		if len(req.Freqs) > 0 {
			if len(req.Freqs) != tr.NumRanks() {
				return nil, errFreqCount(len(req.Freqs), tr.NumRanks())
			}
			opts.Freqs = req.Freqs
		}
		machine, err := req.Platform.machineFor(s.platform, tr.NumRanks())
		if err != nil {
			return nil, err
		}
		// Replay retimes explicit gear vectors off the memoized timing
		// skeleton (bit-identical to a fresh simulation) and memoizes the
		// baseline otherwise; a one-shot inline trace bypasses the cache
		// (nil degrades to a plain Simulate). The cache key carries the
		// machine fingerprint, so per-request platform overrides never
		// collide with the default-machine entries.
		res, err := span(s, stagerr.Retime, func() (*dimemas.Result, error) {
			return s.cacheFor(nil, req.Trace).ReplayMachine(tr, machine, opts)
		})
		if err != nil {
			return nil, err
		}
		return NewReplayResponse(tr.App, res), nil
	})
	if err != nil {
		finishErr(s, w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := decode(r, &req); err != nil {
		finishErr(s, w, r, err)
		return
	}
	ctx := r.Context()
	resp, err := call(ctx, func() (*AnalyzeResponse, error) {
		tr, err := s.traceFor(ctx, req.Trace)
		if err != nil {
			return nil, err
		}
		algo, err := parseAlgorithm(req.Algorithm)
		if err != nil {
			return nil, err
		}
		set, err := req.GearSet.set()
		if err != nil {
			return nil, err
		}
		beta, betaSet, err := req.betaArg()
		if err != nil {
			return nil, err
		}
		platform, machine, err := req.Platform.resolve(s.platform, tr.NumRanks())
		if err != nil {
			return nil, err
		}
		res, err := span(s, stagerr.Optimize, func() (*analysis.Result, error) {
			return analysis.Run(analysis.Config{
				Trace:     tr,
				Platform:  platform,
				Machine:   machine,
				Power:     s.power,
				Set:       set,
				Algorithm: algo,
				Beta:      beta,
				BetaSet:   betaSet,
				FMax:      req.FMax,
				Cache:     s.cacheFor(nil, req.Trace),
				Ctx:       ctx,
			})
		})
		if err != nil {
			return nil, err
		}
		return NewAnalyzeResponse(set.Name(), res), nil
	})
	if err != nil {
		finishErr(s, w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAnalyzeBatch answers N what-if questions about one trace in a
// single request, backed by analysis.RunBatch: the baseline replay, the
// balance metrics and the timing skeleton are computed once, and every
// item's DVFS replay happens inside a single Skeleton.RetimeBatch walk.
// Item failures — a malformed gear set, an impossible assignment — land in
// the response's error envelope ({index, error, stage}) instead of failing
// the other items; only shared-stage failures (bad trace, bad β, baseline
// replay) fail the request.
func (s *Server) handleAnalyzeBatch(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeBatchRequest
	if err := decode(r, &req); err != nil {
		finishErr(s, w, r, err)
		return
	}
	ctx := r.Context()
	resp, err := call(ctx, func() (*AnalyzeBatchResponse, error) {
		if len(req.Items) == 0 || len(req.Items) > MaxBatchItems {
			return nil, errBatchCount(len(req.Items))
		}
		tr, err := s.traceFor(ctx, req.Trace)
		if err != nil {
			return nil, err
		}
		beta, betaSet, err := req.betaArg()
		if err != nil {
			return nil, err
		}
		platform, machine, err := req.Platform.resolve(s.platform, tr.NumRanks())
		if err != nil {
			return nil, err
		}
		// Wire-level item parsing. Failures stay per-item; the survivors go
		// to RunBatch with their request indices remembered.
		itemErrs := make([]error, len(req.Items))
		names := make([]string, len(req.Items))
		batchItems := make([]analysis.BatchItem, 0, len(req.Items))
		live := make([]int, 0, len(req.Items))
		for i, item := range req.Items {
			algo, err := parseAlgorithm(item.Algorithm)
			if err != nil {
				itemErrs[i] = err
				continue
			}
			set, err := item.GearSet.set()
			if err != nil {
				itemErrs[i] = err
				continue
			}
			names[i] = set.Name()
			batchItems = append(batchItems, analysis.BatchItem{Set: set, Algorithm: algo})
			live = append(live, i)
		}

		out := &AnalyzeBatchResponse{App: tr.App, Results: make([]*AnalyzeResponse, len(req.Items))}
		if len(live) > 0 {
			type batchOut struct {
				results []*analysis.Result
				errs    []error
			}
			bo, err := span(s, stagerr.Optimize, func() (batchOut, error) {
				results, errs, err := analysis.RunBatch(analysis.Config{
					Trace:    tr,
					Platform: platform,
					Machine:  machine,
					Power:    s.power,
					Beta:     beta,
					BetaSet:  betaSet,
					FMax:     req.FMax,
					// An inline trace still shares its baseline + skeleton
					// across the batch's items — through a request-local cache
					// rather than the daemon's LRU, whose entries it could
					// never hit again. (RunBatch builds its own private cache
					// when handed nil.)
					Cache: s.cacheFor(nil, req.Trace),
					Ctx:   ctx,
				}, batchItems)
				return batchOut{results, errs}, err
			})
			if err != nil {
				return nil, err
			}
			for k, i := range live {
				if bo.errs[k] != nil {
					itemErrs[i] = bo.errs[k]
					continue
				}
				out.Results[i] = NewAnalyzeResponse(names[i], bo.results[k])
			}
		}
		for i, e := range itemErrs {
			if e == nil {
				continue
			}
			stage := stagerr.Optimize
			if st, ok := stagerr.StageOf(e); ok {
				stage = st
			}
			out.Errors = append(out.Errors, BatchItemError{Index: i, Error: e.Error(), Stage: string(stage)})
		}
		return out, nil
	})
	if err != nil {
		finishErr(s, w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGearOpt(w http.ResponseWriter, r *http.Request) {
	var req GearOptRequest
	if err := decode(r, &req); err != nil {
		finishErr(s, w, r, err)
		return
	}
	ctx := r.Context()
	resp, err := call(ctx, func() (*GearOptResponse, error) {
		if len(req.Traces) == 0 || len(req.Traces) > MaxGearOptTraces {
			return nil, errTraceCount(len(req.Traces))
		}
		traces := make([]*trace.Trace, len(req.Traces))
		for i, spec := range req.Traces {
			tr, err := s.traceFor(ctx, spec)
			if err != nil {
				return nil, err
			}
			traces[i] = tr
		}
		ngears := req.NGears
		if ngears == 0 {
			ngears = 6
		}
		if ngears > MaxGears {
			return nil, errGearCount(ngears)
		}
		beta, betaSet, err := req.betaArg()
		if err != nil {
			return nil, err
		}
		platform, machine, err := req.Platform.resolve(s.platform, traces[0].NumRanks())
		if err != nil {
			return nil, err
		}
		res, err := span(s, stagerr.Optimize, func() (*gearopt.Result, error) {
			return gearopt.Optimize(gearopt.Config{
				Traces:    traces,
				NGears:    ngears,
				Platform:  platform,
				Machine:   machine,
				Power:     s.power,
				Beta:      beta,
				BetaSet:   betaSet,
				FMax:      req.FMax,
				Grid:      req.Grid,
				MaxRounds: req.MaxRounds,
				// A search over any inline trace shares its replays within the
				// request only (request-local cache) — inline trace identities
				// never recur, so daemon-cache entries for them are dead weight.
				Cache: s.cacheFor(dimemas.NewReplayCache, req.Traces...),
				Ctx:   ctx,
			})
		})
		if err != nil {
			return nil, err
		}
		return NewGearOptResponse(res), nil
	})
	if err != nil {
		finishErr(s, w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePowercap schedules gears under a cluster power budget. Candidate
// schedules are scored by retiming the shared timing skeleton, so repeated
// cap queries over the same workload (a client-side cap sweep) pay for the
// skeleton and the baseline exactly once.
func (s *Server) handlePowercap(w http.ResponseWriter, r *http.Request) {
	var req PowercapRequest
	if err := decode(r, &req); err != nil {
		finishErr(s, w, r, err)
		return
	}
	ctx := r.Context()
	resp, err := call(ctx, func() (*PowercapResponse, error) {
		kind, err := parseCapKind(req.Kind)
		if err != nil {
			return nil, err
		}
		if req.MaxMoves < 0 || req.MaxMoves > MaxPowercapMoves {
			return nil, errPowercapMoves(req.MaxMoves)
		}
		set, err := req.GearSet.set()
		if err != nil {
			return nil, err
		}
		tr, err := s.traceFor(ctx, req.Trace)
		if err != nil {
			return nil, err
		}
		beta, betaSet, err := req.betaArg()
		if err != nil {
			return nil, err
		}
		platform, machine, err := req.Platform.resolve(s.platform, tr.NumRanks())
		if err != nil {
			return nil, err
		}
		res, err := span(s, stagerr.Powercap, func() (*powercap.Result, error) {
			return powercap.Run(powercap.Config{
				Trace:    tr,
				Platform: platform,
				Machine:  machine,
				Power:    s.power,
				Set:      set,
				Cap:      req.Cap,
				Kind:     kind,
				Beta:     beta,
				BetaSet:  betaSet,
				FMax:     req.FMax,
				MaxMoves: req.MaxMoves,
				// Inline traces share their skeleton within the request only;
				// generated workloads hit the daemon's LRU.
				Cache: s.cacheFor(dimemas.NewReplayCache, req.Trace),
				Ctx:   ctx,
			})
		})
		if err != nil {
			return nil, err
		}
		return NewPowercapResponse(res), nil
	})
	if err != nil {
		finishErr(s, w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRebalance simulates the online closed loop: N drifting iterations
// replayed off one memoized base-iteration skeleton, with the requested
// rebalancing policy deciding when to re-solve gears. The request context is
// polled every iteration, so a timed-out request stops mid-loop and frees
// its in-flight slot promptly.
func (s *Server) handleRebalance(w http.ResponseWriter, r *http.Request) {
	var req RebalanceRequest
	if err := decode(r, &req); err != nil {
		finishErr(s, w, r, err)
		return
	}
	ctx := r.Context()
	resp, err := call(ctx, func() (*RebalanceResponse, error) {
		if req.Iterations < 0 || req.Iterations > MaxRebalanceIterations {
			return nil, errRebalanceIterations(req.Iterations)
		}
		policy := rebalance.PolicyThreshold
		if req.Policy != "" {
			var err error
			policy, err = rebalance.ParsePolicy(strings.ToLower(req.Policy))
			if err != nil {
				return nil, err
			}
		}
		algo, err := parseAlgorithm(req.Algorithm)
		if err != nil {
			return nil, err
		}
		set, err := req.GearSet.set()
		if err != nil {
			return nil, err
		}
		drift, err := req.Drift.drift()
		if err != nil {
			return nil, err
		}
		pcfg, err := req.Predict.config()
		if err != nil {
			return nil, err
		}
		tr, err := s.traceFor(ctx, req.Trace)
		if err != nil {
			return nil, err
		}
		beta, betaSet, err := req.betaArg()
		if err != nil {
			return nil, err
		}
		platform, machine, err := req.Platform.resolve(s.platform, tr.NumRanks())
		if err != nil {
			return nil, err
		}
		res, err := span(s, stagerr.Rebalance, func() (*rebalance.Result, error) {
			return rebalance.Run(rebalance.Config{
				Trace:            tr,
				Platform:         platform,
				Machine:          machine,
				Power:            s.power,
				Set:              set,
				Algorithm:        algo,
				Beta:             beta,
				BetaSet:          betaSet,
				FMax:             req.FMax,
				Iterations:       req.Iterations,
				Drift:            drift,
				Policy:           policy,
				Period:           req.Period,
				Threshold:        req.Threshold,
				Hysteresis:       req.Hysteresis,
				Predict:          pcfg,
				Horizon:          req.Horizon,
				Margin:           req.Margin,
				Cap:              req.Cap,
				ReassignOverhead: req.ReassignOverhead,
				ExactPeaks:       req.ExactPeaks,
				// Inline traces share their base-iteration skeleton within the
				// request only; generated workloads hit the daemon's LRU.
				Cache: s.cacheFor(dimemas.NewReplayCache, req.Trace),
				Ctx:   ctx,
			})
		})
		if err != nil {
			return nil, err
		}
		return NewRebalanceResponse(res), nil
	})
	if err != nil {
		finishErr(s, w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTracegen(w http.ResponseWriter, r *http.Request) {
	var req TracegenRequest
	if err := decode(r, &req); err != nil {
		finishErr(s, w, r, err)
		return
	}
	ctx := r.Context()
	resp, err := call(ctx, func() (*TracegenResponse, error) {
		if req.Trace.Text != "" {
			return nil, errInlineTracegen
		}
		tr, err := s.traceFor(ctx, req.Trace)
		if err != nil {
			return nil, err
		}
		var sb strings.Builder
		if err := trace.Write(&sb, tr); err != nil {
			return nil, err
		}
		return &TracegenResponse{
			Name:    tr.App,
			Ranks:   tr.NumRanks(),
			Records: tr.NumRecords(),
			Trace:   sb.String(),
		}, nil
	})
	if err != nil {
		finishErr(s, w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
