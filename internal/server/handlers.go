package server

import (
	"net/http"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/dimemas"
	"repro/internal/gearopt"
	"repro/internal/trace"
)

// HealthBody is the GET /healthz response.
type HealthBody struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthBody{
		Status:        "ok",
		UptimeSeconds: time.Since(s.reg.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.render(w, s.cache.Stats())
}

func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, NewAppsResponse())
}

func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	var req ReplayRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp, err := call(r.Context(), func() (*ReplayResponse, error) {
		tr, err := s.traceFor(req.Trace)
		if err != nil {
			return nil, err
		}
		opts, err := normalizeOptions(dimemas.Options{Beta: req.Beta, FMax: req.FMax})
		if err != nil {
			return nil, err
		}
		if len(req.Freqs) > 0 {
			if len(req.Freqs) != tr.NumRanks() {
				return nil, errFreqCount(len(req.Freqs), tr.NumRanks())
			}
			opts.Freqs = req.Freqs
		}
		res, err := s.cache.Original(tr, s.platform, opts)
		if err != nil {
			return nil, err
		}
		return NewReplayResponse(tr.App, res), nil
	})
	if err != nil {
		finishErr(s, w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp, err := call(r.Context(), func() (*AnalyzeResponse, error) {
		tr, err := s.traceFor(req.Trace)
		if err != nil {
			return nil, err
		}
		algo, err := parseAlgorithm(req.Algorithm)
		if err != nil {
			return nil, err
		}
		set, err := req.GearSet.set()
		if err != nil {
			return nil, err
		}
		res, err := analysis.Run(analysis.Config{
			Trace:     tr,
			Platform:  s.platform,
			Power:     s.power,
			Set:       set,
			Algorithm: algo,
			Beta:      req.Beta,
			FMax:      req.FMax,
			Cache:     s.cache,
		})
		if err != nil {
			return nil, err
		}
		return NewAnalyzeResponse(set.Name(), res), nil
	})
	if err != nil {
		finishErr(s, w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGearOpt(w http.ResponseWriter, r *http.Request) {
	var req GearOptRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp, err := call(r.Context(), func() (*GearOptResponse, error) {
		if len(req.Traces) == 0 || len(req.Traces) > MaxGearOptTraces {
			return nil, errTraceCount(len(req.Traces))
		}
		traces := make([]*trace.Trace, len(req.Traces))
		for i, spec := range req.Traces {
			tr, err := s.traceFor(spec)
			if err != nil {
				return nil, err
			}
			traces[i] = tr
		}
		ngears := req.NGears
		if ngears == 0 {
			ngears = 6
		}
		if ngears > MaxGears {
			return nil, errGearCount(ngears)
		}
		res, err := gearopt.Optimize(gearopt.Config{
			Traces:    traces,
			NGears:    ngears,
			Platform:  s.platform,
			Power:     s.power,
			Beta:      req.Beta,
			FMax:      req.FMax,
			Grid:      req.Grid,
			MaxRounds: req.MaxRounds,
			Cache:     s.cache,
		})
		if err != nil {
			return nil, err
		}
		return NewGearOptResponse(res), nil
	})
	if err != nil {
		finishErr(s, w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTracegen(w http.ResponseWriter, r *http.Request) {
	var req TracegenRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp, err := call(r.Context(), func() (*TracegenResponse, error) {
		if req.Trace.Text != "" {
			return nil, errInlineTracegen
		}
		tr, err := s.traceFor(req.Trace)
		if err != nil {
			return nil, err
		}
		var sb strings.Builder
		if err := trace.Write(&sb, tr); err != nil {
			return nil, err
		}
		return &TracegenResponse{
			Name:    tr.App,
			Ranks:   tr.NumRanks(),
			Records: tr.NumRecords(),
			Trace:   sb.String(),
		}, nil
	})
	if err != nil {
		finishErr(s, w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
