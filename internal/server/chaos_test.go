package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/faults"
	"repro/internal/timemodel"
)

// chaosInlineTrace is a small, valid inline trace; requests carrying it
// exercise the trace-parse and handler-I/O fault points (inline traces
// bypass the shared cache).
const chaosInlineTrace = `#PWRTRACE v1 app=chaos ranks=2
c 0 0.001
c 1 0.002
s 0 1 1024 7
r 1 0 1024 7
i 0
i 1
c 0 0.002
c 1 0.001
i 0
i 1
`

// chaosBody picks the route and body of one soak request. Faults make any
// of them fail, which is fine — the soak asserts envelope shape and
// lifecycle invariants, not success rates.
func chaosBody(worker, i int) (route string, body any) {
	// Vary beta across a small set so the soak keeps creating fresh cache
	// fills (distinct keys) instead of settling into all-hits after the
	// first round — the cache-fill fault point only fires on fills.
	beta := 0.30 + 0.01*float64((worker*101+i)%40)
	switch i % 6 {
	case 0: // memoized baseline replay → cache-fill point
		return "/v1/replay", ReplayRequest{Trace: testSpec, GearSpec: GearSpec{Beta: &beta}}
	case 1: // skeleton retiming → skeleton-build + retime points
		freqs := make([]float64, 32)
		for j := range freqs {
			freqs[j] = 1.4 + 0.1*float64(j%6)
		}
		return "/v1/replay", ReplayRequest{Trace: testSpec, Freqs: freqs, GearSpec: GearSpec{Beta: &beta}}
	case 2: // full analysis → cache-fill + skeleton-build + retime points
		return "/v1/analyze", AnalyzeRequest{Trace: testSpec, GearSpec: GearSpec{Beta: &beta}}
	case 3: // batched analysis → retime point through the RetimeBatch walk
		return "/v1/analyze/batch", AnalyzeBatchRequest{
			Trace: testSpec,
			Items: []AnalyzeBatchItem{
				{Algorithm: "MAX", GearSet: GearSetSpec{Kind: "uniform"}},
				{Algorithm: "AVG", GearSet: GearSetSpec{Kind: "exponential"}},
			},
			GearSpec: GearSpec{Beta: &beta},
		}
	case 4: // power-cap search → retime point through the RetimeDelta path
		return "/v1/powercap", PowercapRequest{
			Trace:    testSpec,
			GearSet:  GearSetSpec{Kind: "uniform"},
			Cap:      0.6 * 32 * 9.703125,
			GearSpec: GearSpec{Beta: &beta},
		}
	default: // inline text → trace-parse point (uncached Simulate)
		return "/v1/replay", ReplayRequest{Trace: TraceSpec{Text: chaosInlineTrace}}
	}
}

// TestChaosSoak drives the daemon through hundreds of injected faults at
// every fault point under concurrent traffic and proves the request
// lifecycle is crash-proof:
//
//   - every error response (400/500/503/504) is a complete envelope with a
//     non-empty stage and request_id;
//   - every in-flight slot is released once traffic stops;
//   - no injected fault (and no context error) is memoized in the shared
//     replay cache — transient chaos must not poison later requests;
//   - the daemon still answers /healthz and, post-chaos, a simulation
//     request byte-identical to the direct library call.
//
// CI runs this test under -race.
func TestChaosSoak(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 4, RequestTimeout: 30 * time.Second})
	rates := map[faults.Point]uint64{
		faults.CacheFill:     3,
		faults.SkeletonBuild: 3,
		faults.Retime:        4,
		faults.TraceParse:    3,
		faults.HandlerIO:     6,
	}
	reg := faults.NewRegistry(20090525, rates)
	faults.Enable(reg)
	t.Cleanup(faults.Disable)

	const workers = 8
	var (
		mu       sync.Mutex
		failures []string
		statuses = map[int]int{}
	)
	report := func(format string, args ...any) {
		mu.Lock()
		if len(failures) < 20 {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
		mu.Unlock()
	}

	stages := knownStages()
	doRound := func(worker, rounds int) {
		client := ts.Client()
		for i := 0; i < rounds; i++ {
			route, body := chaosBody(worker, i)
			b, err := json.Marshal(body)
			if err != nil {
				t.Error(err)
				return
			}
			req, err := http.NewRequest("POST", ts.URL+route, bytes.NewReader(b))
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set(RequestIDHeader, fmt.Sprintf("soak-%d-%d", worker, i))
			resp, err := client.Do(req)
			if err != nil {
				report("%s: transport error: %v", route, err)
				continue
			}
			respBody, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				report("%s: reading body: %v", route, err)
				continue
			}
			mu.Lock()
			statuses[resp.StatusCode]++
			mu.Unlock()
			if resp.StatusCode < 400 {
				continue
			}
			var eb ErrorBody
			if err := json.Unmarshal(respBody, &eb); err != nil {
				report("%s: %d response is not an envelope: %s", route, resp.StatusCode, respBody)
				continue
			}
			if eb.Error == "" || eb.RequestID == "" || !stages[eb.Stage] {
				report("%s: %d envelope incomplete or unknown stage: %s", route, resp.StatusCode, respBody)
			}
		}
	}

	// Soak in batches until the faults actually injected cross the floor
	// the test demands; the batch count is a runaway guard, not a target.
	const perBatch = 40
	for batch := 0; batch < 10 && reg.Fired() < 200; batch++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				doRound(workers*batch+w, perBatch)
			}(w)
		}
		wg.Wait()
	}
	for _, f := range failures {
		t.Error(f)
	}

	// Fault coverage: ≥200 faults across all five points.
	total := uint64(0)
	for p, st := range reg.Stats() {
		if st.Fired == 0 {
			t.Errorf("fault point %s never fired (checks: %d)", p, st.Checks)
		}
		total += st.Fired
	}
	if total < 200 {
		t.Errorf("only %d faults injected, want >= 200 (statuses: %v)", total, statuses)
	}

	faults.Disable()

	// Every in-flight slot must be released once traffic stops.
	deadline := time.Now().Add(10 * time.Second)
	for len(s.sem) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d in-flight slots still held after soak", len(s.sem))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// No cache poisoning: the shared cache must hold no injected fault and
	// no context error — transient chaos evicts, it never memoizes.
	for _, err := range s.cache.MemoizedErrors() {
		if faults.IsInjected(err) {
			t.Errorf("injected fault memoized in replay cache: %v", err)
		} else if isCtxErr(err) {
			t.Errorf("context error memoized in replay cache: %v", err)
		}
	}

	// The daemon is still alive.
	if code, body := getBody(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("post-chaos healthz: status %d: %s", code, body)
	}

	// And still correct: a post-chaos replay is byte-identical to the
	// direct library call.
	freqs := make([]float64, 32)
	for j := range freqs {
		freqs[j] = 2.0
	}
	code, got := postJSON(t, ts.URL+"/v1/replay", ReplayRequest{Trace: testSpec, Freqs: freqs})
	if code != http.StatusOK {
		t.Fatalf("post-chaos replay: status %d: %s", code, got)
	}
	tr := genTestTrace(t, testSpec)
	res, err := dimemas.Simulate(tr, dimemas.DefaultPlatform(), dimemas.Options{
		Beta: timemodel.DefaultBeta, FMax: dvfs.FMax, Freqs: freqs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := wire(t, NewReplayResponse(tr.App, res)); !bytes.Equal(got, want) {
		t.Fatalf("post-chaos replay differs from library call\n got: %s\nwant: %s", got, want)
	}

	// The soak must have seen both injected-fault failures (500) and
	// successes; all-of-one-kind means the harness tested nothing.
	if statuses[http.StatusOK] == 0 || statuses[http.StatusInternalServerError] == 0 {
		t.Fatalf("soak saw no mix of outcomes: %v", statuses)
	}
}
