package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// BenchmarkServerAnalyze measures end-to-end /v1/analyze throughput on a
// warm cache: every iteration pays JSON decode + gear assignment + DVFS
// replay, but shares the memoized baseline replay and generated trace.
func BenchmarkServerAnalyze(b *testing.B) {
	s := New(Config{MaxInFlight: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, err := json.Marshal(AnalyzeRequest{
		Trace:   TraceSpec{App: "IS-32", Iterations: 3, Quick: true},
		GearSet: GearSetSpec{Kind: "uniform"},
	})
	if err != nil {
		b.Fatal(err)
	}
	post := func() error {
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		return nil
	}
	// Warm the trace and replay caches outside the timed region.
	if err := post(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := post(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServerAnalyzeBatch measures end-to-end /v1/analyze/batch
// throughput: sixteen gear assignments retimed off one shared timing
// skeleton per request. Compare the per-item cost against
// BenchmarkServerAnalyze to see what batching saves.
func BenchmarkServerAnalyzeBatch(b *testing.B) {
	s := New(Config{MaxInFlight: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	items := make([]AnalyzeBatchItem, 16)
	for i := range items {
		n := 2 + i%7
		kind := "uniform"
		if i%2 == 1 {
			kind = "exponential"
		}
		items[i] = AnalyzeBatchItem{Algorithm: "MAX", GearSet: GearSetSpec{Kind: kind, N: n}}
	}
	body, err := json.Marshal(AnalyzeBatchRequest{
		Trace: TraceSpec{App: "IS-32", Iterations: 3, Quick: true},
		Items: items,
	})
	if err != nil {
		b.Fatal(err)
	}
	post := func() error {
		resp, err := http.Post(ts.URL+"/v1/analyze/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		return nil
	}
	if err := post(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := post(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
