package server

import (
	"repro/internal/dimemas"
	"repro/internal/stagerr"
)

// LinkSpec is one interconnect level on the wire: a latency/bandwidth pair
// in the same units as the flat platform's (seconds, bytes per second).
type LinkSpec struct {
	Latency   float64 `json:"latency"`
	Bandwidth float64 `json:"bandwidth"`
}

func (l LinkSpec) link() dimemas.Link {
	return dimemas.Link{Latency: l.Latency, Bandwidth: l.Bandwidth}
}

// TopologySpec describes the node/switch hierarchy of a request's machine.
// Exactly one of Placement (an explicit rank→node vector) or PerNode (the
// contiguous block placement with that many ranks per node) selects where
// ranks live.
type TopologySpec struct {
	// Placement maps rank → node; its length must equal the trace's rank
	// count. Mutually exclusive with PerNode.
	Placement []int `json:"placement,omitempty"`
	// PerNode derives the block placement rank r → node r/PerNode.
	PerNode int `json:"per_node,omitempty"`
	// NodeSwitch maps node → switch; omitted means a single switch.
	NodeSwitch []int `json:"node_switch,omitempty"`
	// Intra and Inter are the same-node and same-switch links (required).
	Intra LinkSpec `json:"intra"`
	Inter LinkSpec `json:"inter"`
	// Remote is the cross-switch link, required when NodeSwitch is present.
	Remote *LinkSpec `json:"remote,omitempty"`
}

// CapabilitySpec describes per-rank heterogeneity on the wire. Each slice is
// indexed by rank; an omitted slice means homogeneous in that dimension.
type CapabilitySpec struct {
	// Efficiency is relative compute speed (1 = nominal).
	Efficiency []float64 `json:"efficiency,omitempty"`
	// FMax is the per-rank top frequency in GHz (0 = the global FMax).
	FMax []float64 `json:"fmax,omitempty"`
	// PowerScale multiplies the rank's modeled power draw (1 = nominal).
	PowerScale []float64 `json:"power_scale,omitempty"`
}

// PlatformSpec lets one request override the daemon's machine model: the
// flat link scalars, a topology layer, a capability layer, or any mix.
// Omitted scalars inherit the daemon's configured platform, so a request can
// e.g. slow just the bandwidth, or add a topology over the default link
// constants. An absent spec is the daemon's flat platform unchanged — the
// path that stays bit-identical to the pre-machine wire behavior.
type PlatformSpec struct {
	Latency    *float64        `json:"latency,omitempty"`
	Bandwidth  *float64        `json:"bandwidth,omitempty"`
	EagerLimit *int64          `json:"eager_limit,omitempty"`
	Overhead   *float64        `json:"overhead,omitempty"`
	Topology   *TopologySpec   `json:"topology,omitempty"`
	Capability *CapabilitySpec `json:"capability,omitempty"`
}

// resolve builds the effective base platform and the optional layered
// machine of a request for an nranks-rank trace. The machine pointer is nil
// when the spec carries no topology/capability layer — handlers then run
// the flat pipeline (possibly with overridden scalars), keeping the
// homogeneous fast path and its cache keys. Validation happens here, so a
// bad spec fails with a validate-stage error before any simulation starts.
func (p *PlatformSpec) resolve(base dimemas.Platform, nranks int) (dimemas.Platform, *dimemas.Machine, error) {
	eff := base
	if p == nil {
		return eff, nil, nil
	}
	if p.Latency != nil {
		eff.Latency = *p.Latency
	}
	if p.Bandwidth != nil {
		eff.Bandwidth = *p.Bandwidth
	}
	if p.EagerLimit != nil {
		eff.EagerLimit = *p.EagerLimit
	}
	if p.Overhead != nil {
		eff.Overhead = *p.Overhead
	}
	if p.Topology == nil && p.Capability == nil {
		if err := eff.Validate(); err != nil {
			return eff, nil, err
		}
		return eff, nil, nil
	}
	m := &dimemas.Machine{Base: eff}
	if t := p.Topology; t != nil {
		pl := t.Placement
		if t.PerNode != 0 {
			if t.PerNode < 0 {
				return eff, nil, stagerr.Errorf(stagerr.Validate, "platform: per_node must be positive, got %d", t.PerNode)
			}
			if len(pl) != 0 {
				return eff, nil, stagerr.New(stagerr.Validate, "platform: placement and per_node are mutually exclusive")
			}
			pl = dimemas.BlockPlacement(nranks, t.PerNode)
		}
		topo := &dimemas.Topology{
			Placement:  pl,
			NodeSwitch: t.NodeSwitch,
			Intra:      t.Intra.link(),
			Inter:      t.Inter.link(),
		}
		if t.Remote != nil {
			topo.Remote = t.Remote.link()
		} else if t.NodeSwitch != nil {
			return eff, nil, stagerr.New(stagerr.Validate, "platform: node_switch requires a remote link")
		}
		m.Topo = topo
	}
	if c := p.Capability; c != nil {
		m.Cap = &dimemas.Capability{
			Efficiency: c.Efficiency,
			FMax:       c.FMax,
			PowerScale: c.PowerScale,
		}
	}
	if err := m.ValidateFor(nranks); err != nil {
		return eff, nil, err
	}
	return eff, m, nil
}

// machineFor is resolve flattened to a value machine, for call sites that
// replay directly (the replay handler) rather than passing an optional
// layered machine into a pipeline config.
func (p *PlatformSpec) machineFor(base dimemas.Platform, nranks int) (dimemas.Machine, error) {
	eff, m, err := p.resolve(base, nranks)
	if err != nil {
		return dimemas.Machine{}, err
	}
	if m == nil {
		return dimemas.FlatMachine(eff), nil
	}
	return *m, nil
}

// PlatformBody echoes the daemon's configured flat platform in /healthz, so
// operators can confirm which machine constants an instance is serving.
type PlatformBody struct {
	Latency        float64 `json:"latency"`
	Bandwidth      float64 `json:"bandwidth"`
	EagerLimit     int64   `json:"eager_limit"`
	Overhead       float64 `json:"overhead"`
	LinearAllToAll bool    `json:"linear_all_to_all"`
}

// NewPlatformBody builds the wire echo of a platform.
func NewPlatformBody(p dimemas.Platform) PlatformBody {
	return PlatformBody{
		Latency:        p.Latency,
		Bandwidth:      p.Bandwidth,
		EagerLimit:     p.EagerLimit,
		Overhead:       p.Overhead,
		LinearAllToAll: p.LinearAllToAll,
	}
}
