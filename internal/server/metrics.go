package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/dimemas"
	"repro/internal/stagerr"
)

// routeStats accumulates request counts and latencies for one route.
type routeStats struct {
	count        int64
	errors       int64
	totalSeconds float64
	maxSeconds   float64
}

// stageStats accumulates error counts and latency spans for one pipeline
// stage (internal/stagerr taxonomy).
type stageStats struct {
	errors       int64
	spans        int64
	totalSeconds float64
}

// registry collects the daemon's operational counters. All methods are safe
// for concurrent use.
type registry struct {
	mu       sync.Mutex
	start    time.Time
	inFlight int64
	rejected int64
	timeouts int64
	panics   int64
	routes   map[string]*routeStats
	stages   map[stagerr.Stage]*stageStats
}

func newRegistry() *registry {
	return &registry{
		start:  time.Now(),
		routes: make(map[string]*routeStats),
		stages: make(map[stagerr.Stage]*stageStats),
	}
}

func (g *registry) enter() {
	g.mu.Lock()
	g.inFlight++
	g.mu.Unlock()
}

func (g *registry) exit() {
	g.mu.Lock()
	g.inFlight--
	g.mu.Unlock()
}

func (g *registry) reject() {
	g.mu.Lock()
	g.rejected++
	g.mu.Unlock()
}

func (g *registry) timeout() {
	g.mu.Lock()
	g.timeouts++
	g.mu.Unlock()
}

func (g *registry) panicked() {
	g.mu.Lock()
	g.panics++
	g.mu.Unlock()
}

// stageFor returns (creating if needed) the stats slot of a stage. Callers
// hold g.mu.
func (g *registry) stageFor(st stagerr.Stage) *stageStats {
	ss := g.stages[st]
	if ss == nil {
		ss = &stageStats{}
		g.stages[st] = ss
	}
	return ss
}

// stageError counts one error envelope attributed to a stage.
func (g *registry) stageError(st stagerr.Stage) {
	g.mu.Lock()
	g.stageFor(st).errors++
	g.mu.Unlock()
}

// observeStage records one timed span of a pipeline stage.
func (g *registry) observeStage(st stagerr.Stage, d time.Duration) {
	g.mu.Lock()
	ss := g.stageFor(st)
	ss.spans++
	ss.totalSeconds += d.Seconds()
	g.mu.Unlock()
}

// observe records one finished request on a route. isErr marks non-2xx
// outcomes.
func (g *registry) observe(route string, d time.Duration, isErr bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	rs := g.routes[route]
	if rs == nil {
		rs = &routeStats{}
		g.routes[route] = rs
	}
	rs.count++
	if isErr {
		rs.errors++
	}
	sec := d.Seconds()
	rs.totalSeconds += sec
	if sec > rs.maxSeconds {
		rs.maxSeconds = sec
	}
}

// render writes the Prometheus text exposition of the counters plus the
// shared replay cache's stats. Routes are sorted for deterministic output.
func (g *registry) render(w io.Writer, cache dimemas.CacheStats, ready bool) {
	g.mu.Lock()
	inFlight, rejected, timeouts, panics := g.inFlight, g.rejected, g.timeouts, g.panics
	uptime := time.Since(g.start).Seconds()
	routes := make([]string, 0, len(g.routes))
	for r := range g.routes {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	snap := make(map[string]routeStats, len(g.routes))
	for r, rs := range g.routes {
		snap[r] = *rs
	}
	// Stages render zero-filled over the full taxonomy (stagerr.Stages()
	// is in pipeline order), so scrapes are deterministic and dashboards
	// see every stage from the first scrape on.
	stageSnap := make(map[stagerr.Stage]stageStats, len(g.stages))
	for st, ss := range g.stages {
		stageSnap[st] = *ss
	}
	g.mu.Unlock()

	fmt.Fprintf(w, "# HELP pwrsimd_uptime_seconds Seconds since the server started.\n")
	fmt.Fprintf(w, "# TYPE pwrsimd_uptime_seconds gauge\n")
	fmt.Fprintf(w, "pwrsimd_uptime_seconds %g\n", uptime)
	fmt.Fprintf(w, "# HELP pwrsimd_in_flight Requests currently being served.\n")
	fmt.Fprintf(w, "# TYPE pwrsimd_in_flight gauge\n")
	fmt.Fprintf(w, "pwrsimd_in_flight %d\n", inFlight)
	fmt.Fprintf(w, "# HELP pwrsimd_rejected_total Requests rejected by the in-flight limit.\n")
	fmt.Fprintf(w, "# TYPE pwrsimd_rejected_total counter\n")
	fmt.Fprintf(w, "pwrsimd_rejected_total %d\n", rejected)
	fmt.Fprintf(w, "# HELP pwrsimd_timeouts_total Requests aborted by the per-request timeout.\n")
	fmt.Fprintf(w, "# TYPE pwrsimd_timeouts_total counter\n")
	fmt.Fprintf(w, "pwrsimd_timeouts_total %d\n", timeouts)
	fmt.Fprintf(w, "# HELP pwrsimd_panics_total Handler panics contained by the lifecycle middleware.\n")
	fmt.Fprintf(w, "# TYPE pwrsimd_panics_total counter\n")
	fmt.Fprintf(w, "pwrsimd_panics_total %d\n", panics)

	readyVal := 0
	if ready {
		readyVal = 1
	}
	fmt.Fprintf(w, "# HELP pwrsimd_ready Readiness (1 = serving, 0 = starting or draining; see /readyz).\n")
	fmt.Fprintf(w, "# TYPE pwrsimd_ready gauge\n")
	fmt.Fprintf(w, "pwrsimd_ready %d\n", readyVal)

	fmt.Fprintf(w, "# HELP pwrsimd_cache_hits_total Replay-cache hits.\n")
	fmt.Fprintf(w, "# TYPE pwrsimd_cache_hits_total counter\n")
	fmt.Fprintf(w, "pwrsimd_cache_hits_total %d\n", cache.Hits)
	fmt.Fprintf(w, "# HELP pwrsimd_cache_misses_total Replay-cache misses.\n")
	fmt.Fprintf(w, "# TYPE pwrsimd_cache_misses_total counter\n")
	fmt.Fprintf(w, "pwrsimd_cache_misses_total %d\n", cache.Misses)
	fmt.Fprintf(w, "# HELP pwrsimd_cache_evictions_total Replay-cache LRU evictions.\n")
	fmt.Fprintf(w, "# TYPE pwrsimd_cache_evictions_total counter\n")
	fmt.Fprintf(w, "pwrsimd_cache_evictions_total %d\n", cache.Evictions)
	fmt.Fprintf(w, "# HELP pwrsimd_cache_entries Replay-cache current entry count.\n")
	fmt.Fprintf(w, "# TYPE pwrsimd_cache_entries gauge\n")
	fmt.Fprintf(w, "pwrsimd_cache_entries %d\n", cache.Entries)
	// The hit ratio is derivable from the counters, but exposing it as a
	// gauge lets the fleet scaling experiment (and dashboards) read each
	// shard's cache temperature without doing rate arithmetic.
	ratio := 0.0
	if lookups := cache.Hits + cache.Misses; lookups > 0 {
		ratio = float64(cache.Hits) / float64(lookups)
	}
	fmt.Fprintf(w, "# HELP pwrsimd_cache_hit_ratio Replay-cache hits over lookups since start (0 before the first lookup).\n")
	fmt.Fprintf(w, "# TYPE pwrsimd_cache_hit_ratio gauge\n")
	fmt.Fprintf(w, "pwrsimd_cache_hit_ratio %g\n", ratio)

	fmt.Fprintf(w, "# HELP pwrsimd_requests_total Finished requests by route.\n")
	fmt.Fprintf(w, "# TYPE pwrsimd_requests_total counter\n")
	for _, r := range routes {
		fmt.Fprintf(w, "pwrsimd_requests_total{route=%q} %d\n", r, snap[r].count)
	}
	fmt.Fprintf(w, "# HELP pwrsimd_request_errors_total Non-2xx requests by route.\n")
	fmt.Fprintf(w, "# TYPE pwrsimd_request_errors_total counter\n")
	for _, r := range routes {
		fmt.Fprintf(w, "pwrsimd_request_errors_total{route=%q} %d\n", r, snap[r].errors)
	}
	fmt.Fprintf(w, "# HELP pwrsimd_request_seconds_sum Summed request latency by route.\n")
	fmt.Fprintf(w, "# TYPE pwrsimd_request_seconds_sum counter\n")
	for _, r := range routes {
		fmt.Fprintf(w, "pwrsimd_request_seconds_sum{route=%q} %g\n", r, snap[r].totalSeconds)
	}
	fmt.Fprintf(w, "# HELP pwrsimd_request_seconds_max Worst observed request latency by route.\n")
	fmt.Fprintf(w, "# TYPE pwrsimd_request_seconds_max gauge\n")
	for _, r := range routes {
		fmt.Fprintf(w, "pwrsimd_request_seconds_max{route=%q} %g\n", r, snap[r].maxSeconds)
	}

	fmt.Fprintf(w, "# HELP pwrsimd_stage_errors_total Error envelopes by originating pipeline stage.\n")
	fmt.Fprintf(w, "# TYPE pwrsimd_stage_errors_total counter\n")
	for _, st := range stagerr.Stages() {
		fmt.Fprintf(w, "pwrsimd_stage_errors_total{stage=%q} %d\n", st, stageSnap[st].errors)
	}
	fmt.Fprintf(w, "# HELP pwrsimd_stage_seconds_sum Summed latency of timed pipeline-stage spans.\n")
	fmt.Fprintf(w, "# TYPE pwrsimd_stage_seconds_sum counter\n")
	for _, st := range stagerr.Stages() {
		fmt.Fprintf(w, "pwrsimd_stage_seconds_sum{stage=%q} %g\n", st, stageSnap[st].totalSeconds)
	}
	fmt.Fprintf(w, "# HELP pwrsimd_stage_seconds_count Timed pipeline-stage spans.\n")
	fmt.Fprintf(w, "# TYPE pwrsimd_stage_seconds_count counter\n")
	for _, st := range stagerr.Stages() {
		fmt.Fprintf(w, "pwrsimd_stage_seconds_count{stage=%q} %d\n", st, stageSnap[st].spans)
	}
}
