package server

import (
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/stagerr"
)

// knownStages is the set of stage names an envelope may legally carry.
func knownStages() map[string]bool {
	out := make(map[string]bool)
	for _, st := range stagerr.Stages() {
		out[string(st)] = true
	}
	return out
}

// postRaw posts a raw body with optional headers and returns the response.
func postRaw(t testing.TB, url, body string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// envelope decodes an error response and checks the invariant every error
// answer must satisfy: non-empty error, a known stage, and a request_id
// that matches the X-Request-ID response header.
func envelope(t testing.TB, resp *http.Response) ErrorBody {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var eb ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("error response is not an envelope: %s", body)
	}
	if eb.Error == "" {
		t.Errorf("envelope has empty error: %s", body)
	}
	if !knownStages()[eb.Stage] {
		t.Errorf("envelope stage %q not in the stagerr taxonomy: %s", eb.Stage, body)
	}
	if eb.RequestID == "" {
		t.Errorf("envelope has empty request_id: %s", body)
	}
	if hdr := resp.Header.Get(RequestIDHeader); hdr != eb.RequestID {
		t.Errorf("request_id %q does not match %s header %q", eb.RequestID, RequestIDHeader, hdr)
	}
	return eb
}

// TestErrorEnvelopeStages proves 4xx answers carry the stage the failure
// originated in: body/trace-text problems report parse, semantic problems
// report validate.
func TestErrorEnvelopeStages(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name  string
		url   string
		body  string
		stage string
	}{
		{"malformed json body", "/v1/replay", `{"trace":`, "parse"},
		{"unknown body field", "/v1/replay", `{"nope": 1}`, "parse"},
		{"malformed inline trace", "/v1/replay", `{"trace": {"text": "not a trace"}}`, "parse"},
		{"missing trace", "/v1/replay", `{}`, "validate"},
		{"iterations out of range", "/v1/replay", `{"trace": {"app": "IS-32", "iterations": 100000}}`, "validate"},
		{"unknown app", "/v1/replay", `{"trace": {"app": "NOPE-32"}}`, "validate"},
		{"freq count mismatch", "/v1/replay", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "freqs": [1.4]}`, "validate"},
		{"bad algorithm", "/v1/analyze", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "algorithm": "MINMAX"}`, "validate"},
		{"bad gear kind", "/v1/analyze", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "gear_set": {"kind": "nope"}}`, "validate"},
		{"tracegen inline text", "/v1/tracegen", `{"trace": {"text": "x"}}`, "validate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postRaw(t, ts.URL+tc.url, tc.body, nil)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			if eb := envelope(t, resp); eb.Stage != tc.stage {
				t.Errorf("stage = %q, want %q (error: %s)", eb.Stage, tc.stage, eb.Error)
			}
		})
	}
}

// TestTimeoutEnvelope proves the 504 answer is a full envelope.
func TestTimeoutEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	resp := postRaw(t, ts.URL+"/v1/replay", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}}`, nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if eb := envelope(t, resp); eb.Stage != string(stagerr.Serve) {
		t.Errorf("504 stage = %q, want serve", eb.Stage)
	}
}

// TestShedEnvelope proves the 503 capacity-shed answer is a full envelope.
func TestShedEnvelope(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1})
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	resp := postRaw(t, ts.URL+"/v1/replay", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}}`, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if eb := envelope(t, resp); eb.Stage != string(stagerr.Serve) {
		t.Errorf("503 stage = %q, want serve", eb.Stage)
	}
}

// TestRequestIDEchoAndSanitize pins the inbound-ID contract: a clean token
// is echoed verbatim (headers and envelope); a hostile one is replaced with
// a server-generated ID.
func TestRequestIDEchoAndSanitize(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp := postRaw(t, ts.URL+"/v1/replay", `{}`, map[string]string{RequestIDHeader: "caller-42"})
	if resp.Header.Get(RequestIDHeader) != "caller-42" {
		t.Errorf("clean inbound ID not echoed: %q", resp.Header.Get(RequestIDHeader))
	}
	if eb := envelope(t, resp); eb.RequestID != "caller-42" {
		t.Errorf("envelope request_id = %q, want caller-42", eb.RequestID)
	}

	for name, bad := range map[string]string{
		"spaces":      "two words",
		"punctuation": "id;DROP TABLE",
		"too long":    strings.Repeat("x", 200),
	} {
		resp := postRaw(t, ts.URL+"/v1/replay", `{}`, map[string]string{RequestIDHeader: bad})
		got := resp.Header.Get(RequestIDHeader)
		if got == "" || got == bad {
			t.Errorf("%s: hostile inbound ID not replaced (got %q)", name, got)
		}
		envelope(t, resp)
	}

	// Success responses carry the header too.
	resp = postRaw(t, ts.URL+"/v1/replay", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}}`, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get(RequestIDHeader) == "" {
		t.Error("success response missing X-Request-ID")
	}
}

// TestPanicRecovery proves a panicking handler answers a clean 500 envelope,
// bumps the panic counter, and leaves the daemon serving.
func TestPanicRecovery(t *testing.T) {
	log.SetOutput(io.Discard)
	defer log.SetOutput(os.Stderr)
	s := New(Config{})
	h := s.withLifecycle(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/replay", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	var eb ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatalf("panic response is not an envelope: %s", rec.Body.Bytes())
	}
	if eb.Stage != string(stagerr.Serve) || eb.RequestID == "" || eb.Error == "" {
		t.Fatalf("panic envelope incomplete: %+v", eb)
	}

	// A panic after the handler wrote must not attempt a second response.
	rec = httptest.NewRecorder()
	h2 := s.withLifecycle(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
		panic("late boom")
	}))
	h2.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/replay", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("late-panic status rewritten to %d", rec.Code)
	}

	s.reg.mu.Lock()
	panics := s.reg.panics
	s.reg.mu.Unlock()
	if panics != 2 {
		t.Fatalf("panic counter = %d, want 2", panics)
	}
}

// TestMetricsExposeStageFamilies proves /metrics renders the panic counter
// and zero-filled per-stage error/latency families for the whole taxonomy.
func TestMetricsExposeStageFamilies(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// One validate-stage error and one successful parse+retime span.
	postRaw(t, ts.URL+"/v1/replay", `{}`, nil).Body.Close()
	postRaw(t, ts.URL+"/v1/replay", `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}}`, nil).Body.Close()

	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	text := string(body)
	for _, want := range []string{
		"pwrsimd_panics_total 0",
		`pwrsimd_stage_errors_total{stage="validate"} 1`,
		`pwrsimd_stage_errors_total{stage="powercap"} 0`,
		`pwrsimd_stage_seconds_count{stage="parse"}`,
		`pwrsimd_stage_seconds_sum{stage="retime"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	for _, st := range stagerr.Stages() {
		if !strings.Contains(text, `pwrsimd_stage_errors_total{stage="`+string(st)+`"}`) {
			t.Errorf("stage %q not zero-filled in exposition", st)
		}
	}
}
