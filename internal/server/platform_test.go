package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/timemodel"
)

func f64(v float64) *float64 { return &v }

// TestPlatformSpecFixtureDecodes pins the PlatformSpec wire format: this is
// a verbatim request body; every JSON key in it is part of the public API.
func TestPlatformSpecFixtureDecodes(t *testing.T) {
	var req AnalyzeRequest
	decodeFixture(t, `{
		"trace": {"app": "IS-32"},
		"gear_set": {"kind": "uniform"},
		"platform": {
			"latency": 2e-6,
			"bandwidth": 1e9,
			"eager_limit": 16384,
			"overhead": 5e-7,
			"topology": {
				"per_node": 8,
				"node_switch": [0, 0, 1, 1],
				"intra": {"latency": 5e-7, "bandwidth": 6e9},
				"inter": {"latency": 2e-6, "bandwidth": 1e9},
				"remote": {"latency": 1e-5, "bandwidth": 2e8}
			},
			"capability": {
				"efficiency": [1, 1.5],
				"fmax": [2.3, 1.4],
				"power_scale": [1, 2]
			}
		}
	}`, &req)
	eager := int64(16384)
	want := AnalyzeRequest{
		Trace:   TraceRef{App: "IS-32"},
		GearSet: GearSetSpec{Kind: "uniform"},
		Platform: &PlatformSpec{
			Latency:    f64(2e-6),
			Bandwidth:  f64(1e9),
			EagerLimit: &eager,
			Overhead:   f64(5e-7),
			Topology: &TopologySpec{
				PerNode:    8,
				NodeSwitch: []int{0, 0, 1, 1},
				Intra:      LinkSpec{Latency: 5e-7, Bandwidth: 6e9},
				Inter:      LinkSpec{Latency: 2e-6, Bandwidth: 1e9},
				Remote:     &LinkSpec{Latency: 1e-5, Bandwidth: 2e8},
			},
			Capability: &CapabilitySpec{
				Efficiency: []float64{1, 1.5},
				FMax:       []float64{2.3, 1.4},
				PowerScale: []float64{1, 2},
			},
		},
	}
	if !reflect.DeepEqual(req, want) {
		t.Errorf("decoded %+v, want %+v", req, want)
	}
}

// testMachineSpec is the heterogeneous request-platform most tests here use:
// a two-level topology over the default link constants plus a capability
// gradient, for the 32-rank quick IS workload.
func testMachineSpec(nranks int) *PlatformSpec {
	eff := make([]float64, nranks)
	pscale := make([]float64, nranks)
	for r := range eff {
		eff[r] = 1
		pscale[r] = 1
	}
	for r := 0; r < nranks/2; r++ {
		eff[r] = 1.3
		pscale[r] = 1.4
	}
	return &PlatformSpec{
		Topology: &TopologySpec{
			PerNode: 8,
			Intra:   LinkSpec{Latency: 5e-7, Bandwidth: 6e9},
			Inter:   LinkSpec{Latency: 2e-5, Bandwidth: 1e8},
		},
		Capability: &CapabilitySpec{Efficiency: eff, PowerScale: pscale},
	}
}

// libraryMachine mirrors testMachineSpec resolved against the default
// platform, for byte-identity comparisons with direct library calls.
func libraryMachine(nranks int) *dimemas.Machine {
	spec := testMachineSpec(nranks)
	return &dimemas.Machine{
		Base: dimemas.DefaultPlatform(),
		Topo: &dimemas.Topology{
			Placement: dimemas.BlockPlacement(nranks, spec.Topology.PerNode),
			Intra:     dimemas.Link{Latency: 5e-7, Bandwidth: 6e9},
			Inter:     dimemas.Link{Latency: 2e-5, Bandwidth: 1e8},
		},
		Cap: &dimemas.Capability{
			Efficiency: spec.Capability.Efficiency,
			PowerScale: spec.Capability.PowerScale,
		},
	}
}

func TestReplayHeterogeneousByteIdenticalToLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := genTestTrace(t, testSpec)
	spec := testMachineSpec(tr.NumRanks())

	code, got := postJSON(t, ts.URL+"/v1/replay", ReplayRequest{Trace: testSpec, Platform: spec})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	res, err := dimemas.SimulateMachine(tr, *libraryMachine(tr.NumRanks()),
		dimemas.Options{Beta: timemodel.DefaultBeta, FMax: dvfs.FMax})
	if err != nil {
		t.Fatal(err)
	}
	if want := wire(t, NewReplayResponse(tr.App, res)); !bytes.Equal(got, want) {
		t.Fatalf("hetero replay differs from library call\n got: %s\nwant: %s", got, want)
	}

	// The layered machine must actually change the outcome, or the whole
	// fingerprinted-key machinery is untested.
	flat, err := dimemas.Simulate(tr, dimemas.DefaultPlatform(),
		dimemas.Options{Beta: timemodel.DefaultBeta, FMax: dvfs.FMax})
	if err != nil {
		t.Fatal(err)
	}
	if flat.Time == res.Time {
		t.Fatalf("layered machine did not change the replay time (%v)", flat.Time)
	}
}

func TestAnalyzeHeterogeneousByteIdenticalToLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := genTestTrace(t, testSpec)
	spec := testMachineSpec(tr.NumRanks())

	code, got := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{
		Trace:    testSpec,
		GearSet:  GearSetSpec{Kind: "uniform"},
		Platform: spec,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	set, err := dvfs.Uniform(6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Run(analysis.Config{
		Trace:    tr,
		Platform: dimemas.DefaultPlatform(),
		Machine:  libraryMachine(tr.NumRanks()),
		Power:    power.DefaultConfig(),
		Set:      set,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := wire(t, NewAnalyzeResponse(set.Name(), res)); !bytes.Equal(got, want) {
		t.Fatalf("hetero analyze differs from library call\n got: %s\nwant: %s", got, want)
	}
}

// TestScalarPlatformOverride proves the scalar-only path: no layered
// machine, just different flat constants, byte-identical to the library on
// the overridden platform.
func TestScalarPlatformOverride(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := genTestTrace(t, testSpec)

	code, got := postJSON(t, ts.URL+"/v1/replay", ReplayRequest{
		Trace:    testSpec,
		Platform: &PlatformSpec{Bandwidth: f64(50e6), Latency: f64(2e-5)},
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	p := dimemas.DefaultPlatform()
	p.Bandwidth = 50e6
	p.Latency = 2e-5
	res, err := dimemas.Simulate(tr, p, dimemas.Options{Beta: timemodel.DefaultBeta, FMax: dvfs.FMax})
	if err != nil {
		t.Fatal(err)
	}
	if want := wire(t, NewReplayResponse(tr.App, res)); !bytes.Equal(got, want) {
		t.Fatalf("scalar-override replay differs from library call\n got: %s\nwant: %s", got, want)
	}
}

func TestPlatformSpecValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		spec *PlatformSpec
	}{
		{"negative latency", &PlatformSpec{Latency: f64(-1)}},
		{"zero bandwidth", &PlatformSpec{Bandwidth: f64(0)}},
		{"placement and per_node", &PlatformSpec{Topology: &TopologySpec{
			Placement: []int{0, 0}, PerNode: 2,
			Intra: LinkSpec{Bandwidth: 1e9}, Inter: LinkSpec{Bandwidth: 1e8},
		}}},
		{"negative per_node", &PlatformSpec{Topology: &TopologySpec{
			PerNode: -4,
			Intra:   LinkSpec{Bandwidth: 1e9}, Inter: LinkSpec{Bandwidth: 1e8},
		}}},
		{"node_switch without remote", &PlatformSpec{Topology: &TopologySpec{
			PerNode: 8, NodeSwitch: []int{0, 0, 1, 1},
			Intra: LinkSpec{Bandwidth: 1e9}, Inter: LinkSpec{Bandwidth: 1e8},
		}}},
		{"zero intra bandwidth", &PlatformSpec{Topology: &TopologySpec{
			PerNode: 8, Inter: LinkSpec{Bandwidth: 1e8},
		}}},
		{"short efficiency vector", &PlatformSpec{Capability: &CapabilitySpec{
			Efficiency: []float64{1, 1.5},
		}}},
		{"zero efficiency", &PlatformSpec{Capability: &CapabilitySpec{
			Efficiency: zeros(32),
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postJSON(t, ts.URL+"/v1/replay", ReplayRequest{Trace: testSpec, Platform: tc.spec})
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", code, body)
			}
			var eb ErrorBody
			if err := json.Unmarshal(body, &eb); err != nil {
				t.Fatal(err)
			}
			if eb.Stage != "validate" {
				t.Errorf("stage %q, want validate (%s)", eb.Stage, eb.Error)
			}
		})
	}
}

func zeros(n int) []float64 { return make([]float64, n) }

// TestHealthzEchoesPlatform proves a non-default daemon platform is visible
// from the health check and used by simulations.
func TestHealthzEchoesPlatform(t *testing.T) {
	p := dimemas.DefaultPlatform()
	p.Bandwidth = 125e6
	_, ts := newTestServer(t, Config{Platform: p})

	code, body := getBody(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var hb HealthBody
	if err := json.Unmarshal(body, &hb); err != nil {
		t.Fatal(err)
	}
	if hb.Platform != NewPlatformBody(p) {
		t.Errorf("healthz echoed %+v, want %+v", hb.Platform, NewPlatformBody(p))
	}
	if !strings.Contains(string(body), `"bandwidth":125000000`) {
		t.Errorf("healthz body missing bandwidth echo: %s", body)
	}

	// The configured platform is what default-platform requests run on.
	tr := genTestTrace(t, testSpec)
	code, got := postJSON(t, ts.URL+"/v1/replay", ReplayRequest{Trace: testSpec})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	res, err := dimemas.Simulate(tr, p, dimemas.Options{Beta: timemodel.DefaultBeta, FMax: dvfs.FMax})
	if err != nil {
		t.Fatal(err)
	}
	if want := wire(t, NewReplayResponse(tr.App, res)); !bytes.Equal(got, want) {
		t.Fatalf("configured-platform replay differs from library call\n got: %s\nwant: %s", got, want)
	}
}
