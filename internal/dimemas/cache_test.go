package dimemas

import (
	"testing"

	"repro/internal/trace"
)

// tinyTrace builds a distinct two-rank compute-only trace; the compute time
// makes each trace's replay distinguishable.
func tinyTrace(compute float64) *trace.Trace {
	tr := trace.New("tiny", 2)
	tr.Add(0, trace.Compute(compute))
	tr.Add(1, trace.Compute(compute/2))
	return tr
}

func TestReplayCacheStatsCounters(t *testing.T) {
	c := NewReplayCache()
	tr := tinyTrace(1)
	p := DefaultPlatform()
	opts := DefaultOptions()

	if s := c.Stats(); s != (CacheStats{}) {
		t.Fatalf("fresh cache stats = %+v, want zeros", s)
	}
	if _, err := c.Original(tr, p, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Original(tr, p, opts); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	want := CacheStats{Hits: 1, Misses: 1, Evictions: 0, Entries: 1}
	if s != want {
		t.Fatalf("stats = %+v, want %+v", s, want)
	}

	// Explicit per-rank frequencies bypass the cache entirely.
	bypass := opts
	bypass.Freqs = []float64{2.3, 2.3}
	if _, err := c.Original(tr, p, bypass); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s != want {
		t.Fatalf("stats after bypass = %+v, want unchanged %+v", s, want)
	}
}

func TestReplayCacheNilStats(t *testing.T) {
	var c *ReplayCache
	if s := c.Stats(); s != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v, want zeros", s)
	}
}

func TestReplayCacheLRUEviction(t *testing.T) {
	c := NewReplayCacheWithLimit(2)
	p := DefaultPlatform()
	opts := DefaultOptions()
	a, b, d := tinyTrace(1), tinyTrace(2), tinyTrace(3)

	resA, err := c.Original(a, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Original(b, p, opts); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}

	// Touch a so b becomes least recently used, then insert d: b must go.
	touchedA, err := c.Original(a, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if touchedA != resA {
		t.Fatal("hit on a returned a different Result pointer")
	}
	if _, err := c.Original(d, p, opts); err != nil {
		t.Fatal(err)
	}

	s := c.Stats()
	if s.Entries != 2 || s.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries and 1 eviction", s)
	}

	// a survived (still the shared pointer); b was evicted and recomputes.
	gotA, err := c.Original(a, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if gotA != resA {
		t.Fatal("a was evicted: expected the memoized Result pointer")
	}
	before := c.Stats().Misses
	if _, err := c.Original(b, p, opts); err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	if after.Misses != before+1 {
		t.Fatalf("b lookup after eviction: misses %d -> %d, want a fresh miss", before, after.Misses)
	}
	if after.Evictions != 2 { // re-inserting b pushed out the LRU entry (d)
		t.Fatalf("evictions = %d, want 2", after.Evictions)
	}
}

func TestReplayCacheUnboundedNeverEvicts(t *testing.T) {
	c := NewReplayCache()
	p := DefaultPlatform()
	opts := DefaultOptions()
	for i := 1; i <= 8; i++ {
		if _, err := c.Original(tinyTrace(float64(i)), p, opts); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Entries != 8 || s.Evictions != 0 {
		t.Fatalf("stats = %+v, want 8 entries and 0 evictions", s)
	}
}
