package dimemas

// Golden tests for the layered machine model: the flat homogeneous machine
// must stay bit-identical to the plain-Platform code paths, machine
// skeleton retimes must stay bit-identical to SimulateMachine, and the
// topology/capability layers must price hand-checkable scenarios exactly.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// randomTopology places n ranks on nodes of 2, with a switch split when
// there are at least 4 nodes.
func randomTopology(rng *rand.Rand, n int) *Topology {
	pl := BlockPlacement(n, 2)
	rng.Shuffle(n, func(i, j int) { pl[i], pl[j] = pl[j], pl[i] })
	t := &Topology{
		Placement: pl,
		Intra:     Link{Latency: 5e-7, Bandwidth: 6e9},
		Inter:     Link{Latency: 9e-6, Bandwidth: 2e8},
	}
	if nn := t.NumNodes(); nn >= 4 {
		ns := make([]int, nn)
		for i := range ns {
			ns[i] = i * 2 / nn
		}
		t.NodeSwitch = ns
		t.Remote = Link{Latency: 3e-5, Bandwidth: 8e7}
	}
	return t
}

func randomCapability(rng *rand.Rand, n int) *Capability {
	eff := make([]float64, n)
	for i := range eff {
		eff[i] = 0.5 + rng.Float64()*1.5
	}
	return &Capability{Efficiency: eff}
}

func TestFlatMachineBitIdenticalToPlatform(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		for _, n := range []int{2, 4, 8} {
			for pi, p := range equivPlatforms() {
				tr := randomValidTrace(seed*100+int64(n), n, 3, p.EagerLimit)
				rng := rand.New(rand.NewSource(seed * 17))
				opts := Options{Beta: 0.5, FMax: 2.3, RecordTimeline: true}
				want, err := Simulate(tr, p, opts)
				if err != nil {
					t.Fatal(err)
				}
				got, err := SimulateMachine(tr, FlatMachine(p), opts)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("seed=%d n=%d platform=%d", seed, n, pi)
				mustEqualResults(t, label+" flat SimulateMachine", got, want)

				skWant, err := BuildSkeleton(tr, p, Options{Beta: 0.5, FMax: 2.3})
				if err != nil {
					t.Fatal(err)
				}
				skGot, err := BuildSkeletonMachine(tr, FlatMachine(p), Options{Beta: 0.5, FMax: 2.3})
				if err != nil {
					t.Fatal(err)
				}
				freqs := randomGearVector(rng, n)
				a, err := skWant.Retime(freqs, true)
				if err != nil {
					t.Fatal(err)
				}
				b, err := skGot.Retime(freqs, true)
				if err != nil {
					t.Fatal(err)
				}
				mustEqualResults(t, label+" flat machine skeleton", b, a)
			}
		}
	}
}

func TestOneNodeTopologyWithBaseLinkMatchesFlat(t *testing.T) {
	// A degenerate topology — every rank on one node, Intra equal to the
	// base link — performs the same arithmetic as the flat machine.
	p := DefaultPlatform()
	for seed := int64(1); seed <= 3; seed++ {
		n := 8
		tr := randomValidTrace(seed*41, n, 3, p.EagerLimit)
		m := Machine{Base: p, Topo: &Topology{
			Placement: make([]int, n), // all on node 0
			Intra:     Link{Latency: p.Latency, Bandwidth: p.Bandwidth},
			Inter:     Link{Latency: p.Latency, Bandwidth: p.Bandwidth},
		}}
		opts := Options{Beta: 0.5, FMax: 2.3, RecordTimeline: true}
		want, err := Simulate(tr, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SimulateMachine(tr, m, opts)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualResults(t, fmt.Sprintf("seed=%d one-node topology", seed), got, want)
	}
}

func TestMachineSkeletonRetimeMatchesSimulateMachine(t *testing.T) {
	// The machine retime contract: Retime on a machine skeleton is
	// bit-identical to SimulateMachine, heterogeneous layers included.
	for seed := int64(1); seed <= 5; seed++ {
		for _, n := range []int{4, 8} {
			p := DefaultPlatform()
			tr := randomValidTrace(seed*100+int64(n), n, 3, p.EagerLimit)
			rng := rand.New(rand.NewSource(seed * 7))
			m := Machine{Base: p, Topo: randomTopology(rng, n), Cap: randomCapability(rng, n)}
			opts := Options{Beta: 0.5, FMax: 2.3}
			sk, err := BuildSkeletonMachine(tr, m, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, freqs := range [][]float64{nil, randomGearVector(rng, n)} {
				simOpts := opts
				simOpts.Freqs = freqs
				simOpts.RecordTimeline = true
				want, err := SimulateMachine(tr, m, simOpts)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sk.Retime(freqs, true)
				if err != nil {
					t.Fatal(err)
				}
				mustEqualResults(t, fmt.Sprintf("seed=%d n=%d machine retime", seed, n), got, want)
			}
		}
	}
}

func TestTopologyPairResolvedTransfer(t *testing.T) {
	// Two eager pings on a zero-overhead machine: rank 0→1 share a node
	// (fast link), rank 0→2 crosses nodes (slow link).
	base := Platform{Latency: 1, Bandwidth: 1, EagerLimit: 100, LinearAllToAll: true}
	m := Machine{Base: base, Topo: &Topology{
		Placement: []int{0, 0, 1},
		Intra:     Link{Latency: 1, Bandwidth: 10}, // 10 bytes → 1 + 1 = 2 s
		Inter:     Link{Latency: 5, Bandwidth: 1},  // 10 bytes → 5 + 10 = 15 s
	}}
	tr := trace.New("x", 3)
	tr.Add(0, trace.Send(1, 10, 0), trace.Send(2, 10, 1))
	tr.Add(1, trace.Recv(0, 10, 0))
	tr.Add(2, trace.Recv(0, 10, 1))
	res, err := SimulateMachine(tr, m, Options{Beta: 0.5, FMax: 2.3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Finish[1]-2) > 1e-12 {
		t.Errorf("intra-node recv finish = %v, want 2", res.Finish[1])
	}
	if math.Abs(res.Finish[2]-15) > 1e-12 {
		t.Errorf("inter-node recv finish = %v, want 15", res.Finish[2])
	}
}

func TestTopologyCollectiveSpannedLink(t *testing.T) {
	base := Platform{Latency: 1, Bandwidth: 1, EagerLimit: 100, LinearAllToAll: true}
	intra := Link{Latency: 1, Bandwidth: 10}
	inter := Link{Latency: 5, Bandwidth: 1}
	remote := Link{Latency: 20, Bandwidth: 0.5}
	mk := func(placement []int, nodeSwitch []int) *Machine {
		return &Machine{Base: base, Topo: &Topology{
			Placement: placement, NodeSwitch: nodeSwitch,
			Intra: intra, Inter: inter, Remote: remote,
		}}
	}
	const n, b = 4, 8
	wantFor := func(l Link) float64 {
		return collCost(trace.CollAllReduce, b, n, l.Latency, l.Bandwidth, true)
	}
	cases := []struct {
		name string
		m    *Machine
		want float64
	}{
		{"one node", mk([]int{0, 0, 0, 0}, nil), wantFor(intra)},
		{"two nodes one switch", mk([]int{0, 0, 1, 1}, nil), wantFor(inter)},
		{"two switches", mk([]int{0, 0, 1, 1}, []int{0, 1}), wantFor(remote)},
	}
	for _, tc := range cases {
		got := tc.m.collectiveCost(trace.CollAllReduce, b, n)
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: collective cost = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestCapabilityStretchesCompute(t *testing.T) {
	// Efficiency 2 halves a burst, efficiency 0.5 doubles it.
	p := Platform{Latency: 0, Bandwidth: 1, EagerLimit: 100, LinearAllToAll: true}
	m := Machine{Base: p, Cap: &Capability{Efficiency: []float64{2, 0.5}}}
	tr := trace.New("x", 2)
	tr.Add(0, trace.Compute(4))
	tr.Add(1, trace.Compute(4))
	res, err := SimulateMachine(tr, m, Options{Beta: 0.5, FMax: 2.3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Compute[0]-2) > 1e-12 || math.Abs(res.Compute[1]-8) > 1e-12 {
		t.Errorf("Compute = %v, want [2 8]", res.Compute)
	}
}

func TestMachineValidateFor(t *testing.T) {
	p := DefaultPlatform()
	cases := []struct {
		name string
		m    Machine
	}{
		{"empty placement", Machine{Base: p, Topo: &Topology{Intra: Link{0, 1e9}, Inter: Link{0, 1e9}}}},
		{"placement length", Machine{Base: p, Topo: &Topology{Placement: []int{0}, Intra: Link{0, 1e9}, Inter: Link{0, 1e9}}}},
		{"negative node", Machine{Base: p, Topo: &Topology{Placement: []int{0, -1}, Intra: Link{0, 1e9}, Inter: Link{0, 1e9}}}},
		{"bad intra link", Machine{Base: p, Topo: &Topology{Placement: []int{0, 1}, Intra: Link{math.NaN(), 1e9}, Inter: Link{0, 1e9}}}},
		{"zero-bandwidth inter", Machine{Base: p, Topo: &Topology{Placement: []int{0, 1}, Intra: Link{0, 1e9}, Inter: Link{0, 0}}}},
		{"short node-switch map", Machine{Base: p, Topo: &Topology{Placement: []int{0, 1}, NodeSwitch: []int{0}, Intra: Link{0, 1e9}, Inter: Link{0, 1e9}, Remote: Link{0, 1e9}}}},
		{"bad remote link", Machine{Base: p, Topo: &Topology{Placement: []int{0, 1}, NodeSwitch: []int{0, 1}, Intra: Link{0, 1e9}, Inter: Link{0, 1e9}}}},
		{"efficiency length", Machine{Base: p, Cap: &Capability{Efficiency: []float64{1}}}},
		{"zero efficiency", Machine{Base: p, Cap: &Capability{Efficiency: []float64{1, 0}}}},
		{"NaN efficiency", Machine{Base: p, Cap: &Capability{Efficiency: []float64{1, math.NaN()}}}},
		{"negative fmax", Machine{Base: p, Cap: &Capability{FMax: []float64{2.3, -1}}}},
		{"zero power scale", Machine{Base: p, Cap: &Capability{PowerScale: []float64{0, 1}}}},
	}
	for _, tc := range cases {
		if err := tc.m.ValidateFor(2); err == nil {
			t.Errorf("%s: ValidateFor accepted invalid machine", tc.name)
		}
	}
	ok := Machine{Base: p,
		Topo: &Topology{Placement: []int{0, 1}, NodeSwitch: []int{0, 1}, Intra: Link{0, 1e9}, Inter: Link{1e-6, 1e8}, Remote: Link{1e-5, 1e7}},
		Cap:  &Capability{Efficiency: []float64{1, 2}, FMax: []float64{0, 2.0}, PowerScale: []float64{1, 1.4}},
	}
	if err := ok.ValidateFor(2); err != nil {
		t.Errorf("valid machine rejected: %v", err)
	}
	// Per-rank capability accessors.
	if got := ok.RankFMax(0, 2.3); got != 2.3 {
		t.Errorf("RankFMax(0) = %v, want global 2.3", got)
	}
	if got := ok.RankFMax(1, 2.3); got != 2.0 {
		t.Errorf("RankFMax(1) = %v, want 2.0", got)
	}
	if got := ok.RankPowerScale(1); got != 1.4 {
		t.Errorf("RankPowerScale(1) = %v, want 1.4", got)
	}
}

func TestMachineFingerprint(t *testing.T) {
	p := DefaultPlatform()
	flat := FlatMachine(p)
	if fp := flat.Fingerprint(); fp != "" {
		t.Errorf("flat fingerprint = %q, want empty", fp)
	}
	a := Machine{Base: p, Topo: &Topology{Placement: []int{0, 0, 1, 1}, Intra: Link{1e-7, 1e9}, Inter: Link{1e-5, 1e8}}}
	b := Machine{Base: p, Topo: &Topology{Placement: []int{0, 1, 0, 1}, Intra: Link{1e-7, 1e9}, Inter: Link{1e-5, 1e8}}}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different placements share a fingerprint")
	}
	a2 := Machine{Base: p, Topo: &Topology{Placement: []int{0, 0, 1, 1}, Intra: Link{1e-7, 1e9}, Inter: Link{1e-5, 1e8}}}
	if a.Fingerprint() != a2.Fingerprint() {
		t.Error("equal machines have different fingerprints")
	}
	c := Machine{Base: p, Cap: &Capability{Efficiency: []float64{1, 2, 1, 1}}}
	if c.Fingerprint() == a.Fingerprint() || c.Fingerprint() == "" {
		t.Error("capability fingerprint missing or colliding")
	}
}

func TestReplayCacheMachineKeying(t *testing.T) {
	p := DefaultPlatform()
	tr := randomValidTrace(7, 4, 2, p.EagerLimit)
	cache := NewReplayCache()
	opts := Options{Beta: 0.5, FMax: 2.3}

	// Flat machine and plain Platform mint the same key: second call hits.
	if _, err := cache.Original(tr, p, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.OriginalMachine(tr, FlatMachine(p), opts); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("flat keying: hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}

	// A heterogeneous machine mints a distinct key.
	m := Machine{Base: p, Cap: &Capability{Efficiency: []float64{1, 1, 1, 2}}}
	r1, err := cache.OriginalMachine(tr, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	flatRes, err := cache.Original(tr, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == flatRes {
		t.Error("heterogeneous machine shared the flat machine's cache entry")
	}
	if cache.Len() != 2 {
		t.Errorf("entries = %d, want 2", cache.Len())
	}
}

func TestValidateRejectsNaNPlatformFields(t *testing.T) {
	// Regression: Overhead < 0 is false for NaN, so a NaN overhead used to
	// slip through Validate and breed NaN clocks.
	base := DefaultPlatform()
	for _, tc := range []struct {
		name string
		mut  func(*Platform)
	}{
		{"NaN overhead", func(p *Platform) { p.Overhead = math.NaN() }},
		{"NaN latency", func(p *Platform) { p.Latency = math.NaN() }},
		{"NaN bandwidth", func(p *Platform) { p.Bandwidth = math.NaN() }},
	} {
		p := base
		tc.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the platform", tc.name)
		}
	}
}

func TestCollectiveCostTable(t *testing.T) {
	// Pin the modeled formulas over every collective kind, both all-to-all
	// models and the n ≤ 1 / b = 0 edge cases.
	p := Platform{Latency: 2, Bandwidth: 4, EagerLimit: 100}
	const n = 8 // stages = 3
	step := func(b int64) float64 { return 2 + float64(b)/4 }
	kinds := []trace.Collective{
		trace.CollBarrier, trace.CollBcast, trace.CollReduce,
		trace.CollAllReduce, trace.CollAllGather, trace.CollAllToAll,
	}
	want := func(c trace.Collective, b int64, linear bool) float64 {
		switch c {
		case trace.CollBarrier:
			return 3 * 2 // stages × latency
		case trace.CollAllReduce:
			return 2 * 3 * step(b)
		case trace.CollAllGather, trace.CollAllToAll:
			if linear {
				return float64(n-1) * step(b)
			}
			return 3 * step(b)
		default: // Bcast, Reduce
			return 3 * step(b)
		}
	}
	for _, linear := range []bool{false, true} {
		pl := p
		pl.LinearAllToAll = linear
		for _, c := range kinds {
			for _, b := range []int64{0, 64} {
				got := pl.CollectiveCost(c, b, n)
				if w := want(c, b, linear); math.Abs(got-w) > 1e-12 {
					t.Errorf("linear=%v %v b=%d: cost = %v, want %v", linear, c, b, got, w)
				}
			}
			// Degenerate groups cost nothing.
			for _, small := range []int{0, 1} {
				if got := pl.CollectiveCost(c, 64, small); got != 0 {
					t.Errorf("linear=%v %v n=%d: cost = %v, want 0", linear, c, small, got)
				}
			}
		}
	}
}
