package dimemas

// Timing-skeleton retiming: the communication structure of a trace — which
// send matches which receive, which protocol each message uses, which ranks
// join which collective instance, and a valid retirement order for all of it
// — is fixed by the trace and the platform; only event *times* depend on the
// per-rank DVFS frequencies. Control flow in the replay engine never reads a
// clock (blocking and wake-ups are decided purely by matching availability),
// so one structure-only replay can record the whole schedule as a flat op
// list. Retime then re-times any gear assignment with a single forward pass
// over that list — no queues, no blocking states, no channel bookkeeping —
// and produces a Result bit-identical to Simulate.

import (
	"math"
	"sync"

	"repro/internal/faults"
	"repro/internal/stagerr"
	"repro/internal/timemodel"
	"repro/internal/trace"
)

type skelKind uint8

const (
	// opCompute is a burst using the skeleton's default β; f1 is the
	// duration at fmax.
	opCompute skelKind = iota
	// opComputeBeta is a burst with an explicit β override; f1 is the
	// duration, arg indexes Skeleton.betas.
	opComputeBeta
	// opSendEager posts an eager send: the sender moves on immediately, so
	// its ready time must be snapshotted now; arg is the message's arena
	// slot.
	opSendEager
	// opRecvEager retires a receive of an eager message; arg is the arena
	// slot, f1 the wire transfer time.
	opRecvEager
	// opRecvRend retires one whole rendezvous message. A rendezvous sender
	// is frozen from the moment it posts until the pairing completes, so
	// the receiver-side op can derive the sender's ready time from the
	// sender's (unchanged) clock and write the completion back — post,
	// pairing and sender resume fused into one op. src is the sender, f1
	// the wire transfer time.
	opRecvRend
	// opColl retires one whole collective instance. At the final arrival
	// every rank is parked on this instance (a collective synchronizes all
	// ranks), so every clock IS its arrival time: one op reduces the max,
	// adds the cost (f1) and releases everyone. arg is the collective
	// instance index — unused by the forward retime pass, but it lets the
	// delta retimer address per-instance checkpoint rows.
	opColl
)

// skelOp is one schedule entry. The stream is a topological order of the
// trace's dependency DAG, so a forward pass always finds its inputs (arena
// slots, peer clocks) already written.
type skelOp struct {
	f1   float64 // duration, wire transfer time or collective cost
	arg  int32   // arena slot or β index
	rank int32
	src  int32 // opRecvRend: sending rank
	kind skelKind
}

// Skeleton is the frequency-independent timing skeleton of one (trace,
// platform, β, fmax) combination. It is immutable after construction and
// safe for concurrent Retime calls. Build it with BuildSkeleton or fetch a
// memoized one from ReplayCache.SkeletonFor.
type Skeleton struct {
	nranks   int
	nslots   int // point-to-point arena size (one slot per send)
	ncolls   int // collective instances
	beta     float64
	fmax     float64
	overhead float64
	ops      []skelOp
	betas    []float64 // β overrides referenced by opComputeBeta

	// Reverse lookup tables for RetimeDelta, derived from ops on first use.
	// Building them lazily keeps one-shot Retime users (and skeleton
	// construction) free of the extra scan; sync.Once makes the derivation
	// safe under concurrent first calls without breaking immutability.
	deltaOnce sync.Once
	didx      *deltaIndex
}

// NumRanks returns the rank count of the skeleton's trace.
func (s *Skeleton) NumRanks() int { return s.nranks }

// NumOps returns the schedule length (for diagnostics and benchmarks).
func (s *Skeleton) NumOps() int { return len(s.ops) }

// skelBuilder is the structure-only scheduler state: the replay engine's
// control plane (program counters, blocking states, channel and collective
// progress) without any clocks.
type skelBuilder struct {
	pc       []int32
	collIdx  []int32
	blocked  []blockKind
	sendSlot []int32 // pending rendezvous arena slot per rank
	posted   []int32 // per channel
	paired   []int32 // per channel
	waiter   []int32 // per channel; -1 when none
	arrived  []int32 // per collective instance
	complete []bool  // per collective instance
	done     []bool  // per send slot: rendezvous pairing completed
	rend     []bool  // per send slot: uses the rendezvous protocol
	queue    []int32
	queued   []bool
	// Cooperative cancellation, mirroring simContext: buildStep polls
	// Options.Ctx every cancelStride retired records.
	steps     int
	cancelled bool
}

// BuildSkeleton replays the trace's communication structure once at zero
// cost per event (no floating-point work) and records the retirement
// schedule. opts supplies β and FMax — the two model parameters baked into
// the schedule's constants — plus an optional Ctx; Freqs and RecordTimeline
// are ignored because the skeleton is independent of both. A trace that
// would deadlock under Simulate fails here with the identical diagnostic.
func BuildSkeleton(t *trace.Trace, p Platform, opts Options) (*Skeleton, error) {
	m := Machine{Base: p}
	return buildSkeleton(t, &m, opts)
}

// BuildSkeletonMachine is BuildSkeleton on the layered machine model. The
// topology layer is resolved here, at record time: every recv op's wire
// time comes from the (sender, receiver) pair's link and every collective
// is priced over its slowest spanned link — all gear-independent, so the
// retime tiers need no topology awareness. The capability layer's
// efficiency stretch is baked into the recorded compute durations (duration
// × 1/Efficiency[rank]), so Retime/RetimeDelta/RetimeBatch replay the
// heterogeneous machine with unchanged arithmetic; Retime on a machine
// skeleton is bit-identical to SimulateMachine with the same inputs. An
// explicit RetimeScaled scale composes multiplicatively on top (drift over
// capability). A flat machine records a skeleton bit-identical to
// BuildSkeleton(t, m.Base, opts).
func BuildSkeletonMachine(t *trace.Trace, m Machine, opts Options) (*Skeleton, error) {
	return buildSkeleton(t, &m, opts)
}

func buildSkeleton(t *trace.Trace, m *Machine, opts Options) (*Skeleton, error) {
	if err := m.Base.Validate(); err != nil {
		return nil, err
	}
	idx := t.ReplayIndex(buildIndex).(*traceIndex)
	if idx.err != nil {
		return nil, stagerr.Wrap(stagerr.Validate, idx.err)
	}
	if !m.Flat() {
		if err := m.ValidateFor(idx.nranks); err != nil {
			return nil, err
		}
	}
	if err := opts.validateModel(); err != nil {
		return nil, err
	}
	if err := faults.Check(faults.SkeletonBuild); err != nil {
		return nil, stagerr.Wrap(stagerr.Skeleton, err)
	}
	n := idx.nranks
	s := &Skeleton{
		nranks:   n,
		nslots:   idx.totalSends,
		ncolls:   idx.numColls,
		beta:     opts.Beta,
		fmax:     opts.FMax,
		overhead: m.Base.Overhead,
		ops:      make([]skelOp, 0, t.NumRecords()),
	}
	nchans := len(idx.chanBase)
	b := &skelBuilder{
		pc:       make([]int32, n),
		collIdx:  make([]int32, n),
		blocked:  make([]blockKind, n),
		sendSlot: make([]int32, n),
		posted:   make([]int32, nchans),
		paired:   make([]int32, nchans),
		waiter:   make([]int32, nchans),
		arrived:  make([]int32, idx.numColls),
		complete: make([]bool, idx.numColls),
		done:     make([]bool, idx.totalSends),
		rend:     make([]bool, idx.totalSends),
		queue:    make([]int32, 0, n),
		queued:   make([]bool, n),
	}
	for c := range b.waiter {
		b.waiter[c] = -1
	}
	for r := 0; r < n; r++ {
		b.queue = append(b.queue, int32(r))
		b.queued[r] = true
	}
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return nil, err
		}
	}
	scale := m.ScaleVector()
	for head := 0; head < len(b.queue); head++ {
		r := b.queue[head]
		b.queued[r] = false
		s.buildStep(b, int(r), t, idx, m, &opts, scale)
		if b.cancelled {
			return nil, opts.Ctx.Err()
		}
	}
	for r := 0; r < n; r++ {
		if int(b.pc[r]) < len(t.Ranks[r]) {
			return nil, stagerr.Wrap(stagerr.Skeleton, deadlockError(t, func(r int) int { return int(b.pc[r]) }))
		}
	}
	return s, nil
}

func (b *skelBuilder) wake(r int32) {
	if !b.queued[r] {
		b.queued[r] = true
		b.queue = append(b.queue, r)
	}
}

// buildStep retires as many records as possible for rank r, mirroring
// simContext.step with the arithmetic stripped out and ops emitted at every
// retirement point.
func (s *Skeleton) buildStep(b *skelBuilder, r int, t *trace.Trace, idx *traceIndex, m *Machine, opts *Options, scale []float64) {
	recs := t.Ranks[r]
	chanOf := idx.chanOf[r]
	n := idx.nranks
	for int(b.pc[r]) < len(recs) {
		if opts.Ctx != nil {
			if b.steps++; b.steps%cancelStride == 0 && opts.Ctx.Err() != nil {
				b.cancelled = true
				return
			}
		}
		rec := &recs[b.pc[r]]
		switch b.blocked[r] {
		case blockedSend:
			// The fused opRecvRend already advanced this rank's clock; no
			// op to emit, just unpark.
			if !b.done[b.sendSlot[r]] {
				return
			}
			b.blocked[r] = notBlocked
			b.pc[r]++
			continue
		case blockedColl:
			// The fused opColl already advanced this rank's clock.
			if !b.complete[b.collIdx[r]] {
				return
			}
			b.collIdx[r]++
			b.blocked[r] = notBlocked
			b.pc[r]++
			continue
		case blockedRecv:
			// Re-attempt the pairing below.
		}

		switch rec.Kind {
		case trace.KindCompute:
			beta := rec.Beta
			if beta < 0 {
				beta = opts.Beta
			}
			dur := rec.Duration
			if scale != nil {
				// Capability efficiency is gear-independent; baking the
				// stretch into the recorded duration makes every retime
				// tier heterogeneity-aware with unchanged arithmetic.
				dur *= scale[r]
			}
			if beta == s.beta {
				s.ops = append(s.ops, skelOp{kind: opCompute, rank: int32(r), f1: dur})
			} else {
				s.ops = append(s.ops, skelOp{kind: opComputeBeta, rank: int32(r), f1: dur, arg: int32(len(s.betas))})
				s.betas = append(s.betas, beta)
			}
			b.pc[r]++

		case trace.KindSend:
			cid := chanOf[b.pc[r]]
			si := idx.chanBase[cid] + b.posted[cid]
			b.posted[cid]++
			rendezvous := rec.Bytes > m.Base.EagerLimit
			b.rend[si] = rendezvous
			if w := b.waiter[cid]; w >= 0 {
				b.wake(w)
				b.waiter[cid] = -1
			}
			if rendezvous {
				// No op: the sender is frozen until the pairing, so the
				// fused opRecvRend recovers its post state from its clock.
				b.blocked[r] = blockedSend
				b.sendSlot[r] = si
				return
			}
			s.ops = append(s.ops, skelOp{kind: opSendEager, rank: int32(r), arg: si})
			b.pc[r]++

		case trace.KindRecv:
			cid := chanOf[b.pc[r]]
			if b.paired[cid] >= b.posted[cid] {
				b.blocked[r] = blockedRecv
				b.waiter[cid] = int32(r)
				return
			}
			si := idx.chanBase[cid] + b.paired[cid]
			b.paired[cid]++
			// Validate guarantees the k-th send and k-th receive of a
			// channel carry the same byte count, so the receive record's
			// size yields the identical wire time Simulate derives from
			// the posted send. The pair's link is resolved here, at record
			// time — wire costs are gear-independent, so the retime tiers
			// never need the topology.
			wire := m.transferPair(int(idx.chanSrc[cid]), r, rec.Bytes)
			if b.rend[si] {
				s.ops = append(s.ops, skelOp{kind: opRecvRend, rank: int32(r), src: idx.chanSrc[cid], f1: wire})
				b.done[si] = true
				b.wake(idx.chanSrc[cid])
			} else {
				s.ops = append(s.ops, skelOp{kind: opRecvEager, rank: int32(r), arg: si, f1: wire})
			}
			b.blocked[r] = notBlocked
			b.pc[r]++

		case trace.KindColl:
			ci := b.collIdx[r]
			b.arrived[ci]++
			if int(b.arrived[ci]) == n {
				b.complete[ci] = true
				// Validate guarantees every rank joins instance ci with
				// the same operation and payload, so the cost taken from
				// this rank's record matches whichever rank arrives last
				// under any gear assignment.
				cost := m.collectiveCost(rec.Coll, rec.Bytes, n)
				s.ops = append(s.ops, skelOp{kind: opColl, rank: int32(r), f1: cost, arg: ci})
				b.collIdx[r]++
				b.pc[r]++
				for o := 0; o < n; o++ {
					if b.blocked[o] == blockedColl && b.collIdx[o] == ci {
						b.wake(int32(o))
					}
				}
				continue
			}
			// No op: at the final arrival every rank is parked here, so
			// the fused opColl reads all arrival clocks directly.
			b.blocked[r] = blockedColl
			return

		case trace.KindIterMark:
			b.pc[r]++

		default:
			// Unreachable after Validate; defensive (matches Simulate).
			b.pc[r]++
		}
	}
}

// retimeContext holds the per-pass scratch arrays, recycled through a pool
// so a steady-state retime allocates nothing beyond what escapes into the
// Result.
type retimeContext struct {
	clock []float64 // per rank
	comp  []float64 // per rank
	sd    []float64 // per rank: default-β slowdown factor
	freq  []float64 // per rank: resolved frequency
	slot  []float64 // per send slot: eager ready time
}

var retimePool = sync.Pool{New: func() any { return new(retimeContext) }}

// grow returns s with length n without zeroing, reusing the backing array
// when possible. Callers must write every element before reading it.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// fmax2 is math.Max for the values a replay produces. trace.Validate
// rejects the NaN/±Inf inputs that could breed NaN clocks, and no operand
// can be -0 (clocks are sums whose zero terms normalize to +0), which are
// the only inputs where a plain comparison differs from math.Max — so
// fmax2 is bit-identical to Simulate's math.Max while compiling to a
// branch instead of a function call, the retime loop's hottest operation.
func fmax2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Retime replays the skeleton under a per-rank frequency vector and returns
// a freshly allocated Result bit-identical to
// Simulate(trace, platform, Options{Beta, FMax, Freqs: freqs, RecordTimeline:
// recordTimeline}) for the trace/platform/β/FMax the skeleton was built
// from. freqs may be nil (every rank at FMax). Safe for concurrent use.
func (s *Skeleton) Retime(freqs []float64, recordTimeline bool) (*Result, error) {
	res := &Result{}
	if err := s.retime(res, freqs, nil, recordTimeline); err != nil {
		return nil, err
	}
	return res, nil
}

// RetimeInto is Retime writing into a caller-owned Result, reusing its
// Compute/Finish backing arrays: the steady state allocates nothing, which
// is what makes tight evaluation loops (gear searches, sweeps, batched
// serving) allocation-free. Timelines are never recorded; res.Timeline is
// reset to nil.
func (s *Skeleton) RetimeInto(res *Result, freqs []float64) error {
	return s.retime(res, freqs, nil, false)
}

// RetimeScaled is Retime with every rank's computation durations
// additionally multiplied by scale[rank] before the frequency slowdown is
// applied. Because the retirement schedule is recorded without ever reading
// a clock, it stays valid for any computation durations over the same
// communication structure — so one skeleton can replay a whole family of
// load-perturbed executions. The result is bit-identical to
//
//	Simulate(trace.ScaleCompute(func(r, _) float64 { return scale[r] }),
//	         platform, Options{Beta, FMax, Freqs: freqs, ...})
//
// at a fraction of the cost (no trace copy, no re-validation, no fresh
// replay). scale may be nil (no scaling); entries must be finite and
// non-negative. This is what lets the online rebalancing controller
// (internal/rebalance) simulate N drifting iterations off a single
// skeleton. Safe for concurrent use.
func (s *Skeleton) RetimeScaled(freqs, scale []float64, recordTimeline bool) (*Result, error) {
	res := &Result{}
	if err := s.retime(res, freqs, scale, recordTimeline); err != nil {
		return nil, err
	}
	return res, nil
}

// RetimeScaledInto is RetimeScaled writing into a caller-owned Result (no
// timeline recording), allocation-free in the steady state like RetimeInto.
func (s *Skeleton) RetimeScaledInto(res *Result, freqs, scale []float64) error {
	return s.retime(res, freqs, scale, false)
}

func (s *Skeleton) retime(res *Result, freqs, scale []float64, recordTimeline bool) error {
	n := s.nranks
	if freqs != nil {
		if len(freqs) != n {
			return stagerr.Errorf(stagerr.Validate, "dimemas: %d frequencies for %d ranks", len(freqs), n)
		}
		for r, f := range freqs {
			if f <= 0 || math.IsNaN(f) {
				return stagerr.Errorf(stagerr.Validate, "dimemas: rank %d has invalid frequency %v", r, f)
			}
		}
	}
	if scale != nil {
		if len(scale) != n {
			return stagerr.Errorf(stagerr.Validate, "dimemas: %d load scales for %d ranks", len(scale), n)
		}
		for r, m := range scale {
			if m < 0 || math.IsNaN(m) || math.IsInf(m, 1) {
				return stagerr.Errorf(stagerr.Validate, "dimemas: rank %d has invalid load scale %v", r, m)
			}
		}
	}
	if err := faults.Check(faults.Retime); err != nil {
		return stagerr.Wrap(stagerr.Retime, err)
	}

	c := retimePool.Get().(*retimeContext)
	defer retimePool.Put(c)
	c.clock = resetSlice(c.clock, n)
	c.comp = resetSlice(c.comp, n)
	c.slot = grow(c.slot, s.nslots) // written by eager posts before receives read
	c.sd = grow(c.sd, n)
	c.freq = grow(c.freq, n)
	for r := 0; r < n; r++ {
		f := s.fmax
		if freqs != nil {
			f = freqs[r]
		}
		c.freq[r] = f
		// Slowdown is deterministic per argument triple, so evaluating it
		// once per rank yields the same bits Simulate gets evaluating it
		// once per record.
		c.sd[r] = timemodel.Slowdown(s.beta, s.fmax, f)
	}
	var segs [][]Segment
	if recordTimeline {
		segs = make([][]Segment, n)
	}

	clock, comp, slot, sd := c.clock, c.comp, c.slot, c.sd
	ov := s.overhead
	for i := range s.ops {
		op := &s.ops[i]
		r := op.rank
		switch op.kind {
		case opCompute:
			// Scaling multiplies the fmax duration first, then the slowdown
			// — the exact association Simulate sees on a ScaleCompute'd
			// trace, which keeps RetimeScaled bit-identical to it.
			f1 := op.f1
			if scale != nil {
				f1 *= scale[r]
			}
			d := f1 * sd[r]
			if recordTimeline {
				segs[r] = appendSeg(segs[r], clock[r], clock[r]+d, StateCompute)
			}
			clock[r] += d
			comp[r] += d
		case opComputeBeta:
			f1 := op.f1
			if scale != nil {
				f1 *= scale[r]
			}
			d := f1 * timemodel.Slowdown(s.betas[op.arg], s.fmax, c.freq[r])
			if recordTimeline {
				segs[r] = appendSeg(segs[r], clock[r], clock[r]+d, StateCompute)
			}
			clock[r] += d
			comp[r] += d
		case opSendEager:
			end := clock[r] + ov
			slot[op.arg] = end
			if recordTimeline {
				segs[r] = appendSeg(segs[r], clock[r], end, StateComm)
			}
			clock[r] = end
		case opRecvEager:
			start := clock[r]
			end := fmax2(start+ov, slot[op.arg]+op.f1)
			if recordTimeline {
				segs[r] = appendSeg(segs[r], start, end, StateComm)
			}
			clock[r] = end
		case opRecvRend:
			// The sender has been frozen since its post: clock[src] is its
			// block start, +overhead its ready time. One op times the post,
			// the pairing and the sender's resume.
			sendStart := clock[op.src]
			start := clock[r]
			end := fmax2(start+ov, sendStart+ov) + op.f1
			if recordTimeline {
				segs[r] = appendSeg(segs[r], start, end, StateComm)
				segs[op.src] = appendSeg(segs[op.src], sendStart, end, StateComm)
			}
			clock[r] = end
			clock[op.src] = end
		case opColl:
			// Every rank is parked on this instance, so every clock is an
			// arrival time: reduce, add the modeled cost, release everyone.
			m := clock[0]
			for o := 1; o < n; o++ {
				if clock[o] > m {
					m = clock[o]
				}
			}
			end := m + op.f1
			if recordTimeline {
				for o := 0; o < n; o++ {
					segs[o] = appendSeg(segs[o], clock[o], end, StateComm)
				}
			}
			for o := 0; o < n; o++ {
				clock[o] = end
			}
		}
	}

	res.Compute = append(res.Compute[:0], comp...)
	res.Finish = append(res.Finish[:0], clock...)
	res.Timeline = segs
	res.Time = 0
	for r := 0; r < n; r++ {
		if clock[r] > res.Time {
			res.Time = clock[r]
		}
	}
	return nil
}
