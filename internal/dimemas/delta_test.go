package dimemas

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/faults"
	"repro/internal/stagerr"
)

// mutate returns a copy of freqs with k random ranks re-drawn — the shape
// of candidate every optimizer neighborhood produces.
func mutateFreqs(rng *rand.Rand, freqs []float64, k int) []float64 {
	out := append([]float64(nil), freqs...)
	for i := 0; i < k; i++ {
		out[rng.Intn(len(out))] = 0.4 + rng.Float64()*2.4
	}
	return out
}

func mutateScale(rng *rand.Rand, scale []float64, k int) []float64 {
	out := append([]float64(nil), scale...)
	for i := 0; i < k; i++ {
		out[rng.Intn(len(out))] = 0.5 + rng.Float64()*1.2
	}
	return out
}

// TestRetimeDeltaMatchesRetime is the tentpole property test: over random
// traces, platforms, βs and protocols, ANY sequence of mutations — single
// rank, a few ranks, load-scale changes, no-op repeats, full redraws —
// scored through one reused DeltaState must match a fresh full RetimeScaled
// bit for bit (Time, Compute, Finish). Deadlock diagnostics need no delta
// counterpart: they surface at BuildSkeleton, before any retiming tier, and
// TestSkeletonDeadlockDiagnostics already pins them against Simulate.
func TestRetimeDeltaMatchesRetime(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		for _, n := range []int{2, 4, 8, 16} {
			for pi, p := range equivPlatforms() {
				tr := randomValidTrace(seed*100+int64(n), n, 3, p.EagerLimit)
				rng := rand.New(rand.NewSource(seed*977 + int64(n)))
				for _, beta := range []float64{0, 0.5, 1} {
					opts := Options{Beta: beta, FMax: 2.3}
					sk, err := BuildSkeleton(tr, p, opts)
					if err != nil {
						t.Fatalf("seed=%d n=%d platform=%d beta=%v: BuildSkeleton: %v", seed, n, pi, beta, err)
					}
					var st DeltaState
					freqs := randomGearVector(rng, n)
					var scale []float64
					for step := 0; step < 24; step++ {
						switch rng.Intn(8) {
						case 0: // repeat the same vectors (empty dirty set)
						case 1: // single-rank frequency change
							if freqs == nil {
								freqs = randomGearVector(rng, n)
							} else {
								freqs = mutateFreqs(rng, freqs, 1)
							}
						case 2: // two-rank change
							if freqs == nil {
								freqs = randomGearVector(rng, n)
							} else {
								freqs = mutateFreqs(rng, freqs, 2)
							}
						case 3: // full redraw (record-pass fallback)
							freqs = randomGearVector(rng, n)
						case 4: // nil freqs (all ranks at FMax)
							freqs = nil
						case 5: // introduce or mutate a load scale
							if scale == nil {
								scale = make([]float64, n)
								for i := range scale {
									scale[i] = 1
								}
							}
							scale = mutateScale(rng, scale, 1)
						case 6: // drop the scale again
							scale = nil
						default:
							if freqs == nil {
								freqs = randomGearVector(rng, n)
							} else {
								freqs = mutateFreqs(rng, freqs, 1)
							}
						}
						label := fmt.Sprintf("seed=%d n=%d platform=%d beta=%v step=%d", seed, n, pi, beta, step)
						want, err := sk.RetimeScaled(freqs, scale, false)
						if err != nil {
							t.Fatalf("%s: RetimeScaled: %v", label, err)
						}
						got, err := sk.RetimeDelta(&st, freqs, scale)
						if err != nil {
							t.Fatalf("%s: RetimeDelta: %v", label, err)
						}
						mustEqualResults(t, label, got, want)
					}
				}
			}
		}
	}
}

// TestRetimeDeltaCoversAllRegimes drives mutation sequences that provably
// exercise all three delta regimes — sparse walk with converged
// collectives, sparse walk ending in a linear suffix (a diverged
// collective), and the many-dirty record fallback — and checks bit-identity
// in each. Guards against the suite silently only ever testing one path.
func TestRetimeDeltaCoversAllRegimes(t *testing.T) {
	p := DefaultPlatform()
	n := 16
	tr := randomValidTrace(4242, n, 4, p.EagerLimit)
	sk, err := BuildSkeleton(tr, p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var st DeltaState
	freqs := randomGearVector(rng, n)
	if _, err := sk.RetimeDelta(&st, freqs, nil); err != nil {
		t.Fatal(err)
	}
	sawSparse, sawSuffix := false, false
	for step := 0; step < 300 && !(sawSparse && sawSuffix); step++ {
		next := mutateFreqs(rng, freqs, 1)
		want, err := sk.Retime(next, false)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.RetimeDelta(&st, next, nil)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualResults(t, fmt.Sprintf("step %d", step), got, want)
		if st.suffixRun {
			sawSuffix = true
		} else {
			sawSparse = true
		}
		freqs = next
	}
	if !sawSparse || !sawSuffix {
		t.Fatalf("mutation suite did not exercise both sparse regimes: sparse=%v suffix=%v", sawSparse, sawSuffix)
	}
	// Record fallback: redraw every rank at once.
	all := randomGearVector(rng, n)
	want, err := sk.Retime(all, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.RetimeDelta(&st, all, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "record fallback", got, want)
}

func TestRetimeDeltaValidationMatchesRetime(t *testing.T) {
	p := DefaultPlatform()
	tr := randomValidTrace(7, 4, 3, p.EagerLimit)
	sk, err := BuildSkeleton(tr, p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var st DeltaState
	bad := [][2][]float64{
		{{1, 1, 1}, nil},             // wrong length
		{{1, -2, 1, 1}, nil},         // negative frequency
		{nil, {1, 1}},                // wrong scale length
		{nil, {1, -0.5, 1, 1}},       // negative scale
		{{0, 1, 1, 1}, nil},          // zero frequency
		{{1, 1, 1, 1, 1}, {1, 1, 1}}, // both wrong
	}
	for i, c := range bad {
		_, wantErr := sk.RetimeScaled(c[0], c[1], false)
		_, gotErr := sk.RetimeDelta(&st, c[0], c[1])
		if wantErr == nil || gotErr == nil {
			t.Fatalf("case %d: expected errors, got retime=%v delta=%v", i, wantErr, gotErr)
		}
		if gotErr.Error() != wantErr.Error() {
			t.Errorf("case %d: delta error %q != retime error %q", i, gotErr, wantErr)
		}
		gotStage, _ := stagerr.StageOf(gotErr)
		wantStage, _ := stagerr.StageOf(wantErr)
		if gotStage != wantStage {
			t.Errorf("case %d: delta stage %q != retime stage %q", i, gotStage, wantStage)
		}
	}
	// A rejected call must not corrupt the checkpoint: the next good call
	// still matches a full retime.
	freqs := []float64{1, 2, 1.5, 0.8}
	if _, err := sk.RetimeDelta(&st, freqs, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sk.RetimeDelta(&st, []float64{1, -1, 1, 1}, nil); err == nil {
		t.Fatal("expected validation error")
	}
	freqs[2] = 2.2
	want, err := sk.Retime(freqs, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.RetimeDelta(&st, freqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "post-error", got, want)
}

// TestRetimeDeltaFaultInjection arms the retime fault point and checks the
// delta path surfaces the stage-tagged fault, leaves the checkpoint intact,
// and recovers bit-identically once the fault clears — the library half of
// the server chaos coverage.
func TestRetimeDeltaFaultInjection(t *testing.T) {
	p := DefaultPlatform()
	tr := randomValidTrace(13, 8, 3, p.EagerLimit)
	sk, err := BuildSkeleton(tr, p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var st DeltaState
	freqs := randomGearVector(rng, 8)
	if _, err := sk.RetimeDelta(&st, freqs, nil); err != nil {
		t.Fatal(err)
	}
	faults.Enable(faults.NewRegistry(42, map[faults.Point]uint64{faults.Retime: 1}))
	defer faults.Disable()
	next := mutateFreqs(rng, freqs, 1)
	_, gotErr := sk.RetimeDelta(&st, next, nil)
	if gotErr == nil {
		t.Fatal("expected injected fault")
	}
	if stage, ok := stagerr.StageOf(gotErr); !ok || stage != stagerr.Retime {
		t.Fatalf("fault stage = %q, want %q", stage, stagerr.Retime)
	}
	if !faults.IsInjected(gotErr) {
		t.Fatalf("error %v not marked as injected", gotErr)
	}
	faults.Disable()
	want, err := sk.Retime(next, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.RetimeDelta(&st, next, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "post-fault", got, want)
}

func TestDeltaStateRebindAndInvalidate(t *testing.T) {
	p := DefaultPlatform()
	rng := rand.New(rand.NewSource(17))
	trA := randomValidTrace(21, 4, 3, p.EagerLimit)
	trB := randomValidTrace(22, 4, 3, p.EagerLimit)
	skA, err := BuildSkeleton(trA, p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	skB, err := BuildSkeleton(trB, p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var st DeltaState
	if st.Result() != nil {
		t.Fatal("zero DeltaState should have no result")
	}
	freqs := randomGearVector(rng, 4)
	resA, err := skA.RetimeDelta(&st, freqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Result() != resA {
		t.Fatal("Result() should alias the last pass")
	}
	// Rebinding to another skeleton must reset, not mix checkpoints.
	wantB, err := skB.Retime(freqs, false)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := skB.RetimeDelta(&st, freqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "rebind", gotB, wantB)
	// Invalidate forces a full pass that still matches.
	st.Invalidate()
	if st.Result() != nil {
		t.Fatal("Result() should be nil after Invalidate")
	}
	next := mutateFreqs(rng, freqs, 1)
	wantB2, err := skB.Retime(next, false)
	if err != nil {
		t.Fatal(err)
	}
	gotB2, err := skB.RetimeDelta(&st, next, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "post-invalidate", gotB2, wantB2)
}
