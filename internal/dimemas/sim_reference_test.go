package dimemas

// simulateReference is the pre-event-driven replay engine: a round-robin
// polling loop over all ranks with map-backed channels and per-record heap
// allocations. It is kept verbatim (modulo renames) as the golden reference
// for the equivalence tests — the production event-driven engine must stay
// bit-identical to it for every valid trace, because all of the paper's
// reported numbers were first produced by this loop.

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/timemodel"
	"repro/internal/trace"
)

type refChanKey struct{ src, dst, tag int }

type refSendEntry struct {
	ready      float64 // sender-side ready time (after overhead)
	bytes      int64
	rendezvous bool
	done       bool    // rendezvous pairing completed
	end        float64 // rendezvous completion time
}

type refChannel struct {
	sends    []*refSendEntry
	nextSend int // first unpaired entry
}

type refCollInstance struct {
	arrived  int
	maxReady float64
	complete bool
	end      float64
}

type refRankState struct {
	pc         int
	clock      float64
	compute    float64
	blocked    blockKind
	blockStart float64
	sendEntry  *refSendEntry // for blockedSend
	collIdx    int           // next collective index for this rank
	segs       []Segment
}

func simulateReference(t *trace.Trace, p Platform, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	n := t.NumRanks()
	if opts.FMax <= 0 {
		return nil, fmt.Errorf("dimemas: FMax must be positive, got %v", opts.FMax)
	}
	if opts.Beta < 0 || opts.Beta > 1 {
		return nil, fmt.Errorf("dimemas: beta %v outside [0, 1]", opts.Beta)
	}
	freqs := opts.Freqs
	if freqs == nil {
		freqs = make([]float64, n)
		for i := range freqs {
			freqs[i] = opts.FMax
		}
	}
	if len(freqs) != n {
		return nil, fmt.Errorf("dimemas: %d frequencies for %d ranks", len(freqs), n)
	}
	for r, f := range freqs {
		if f <= 0 || math.IsNaN(f) {
			return nil, fmt.Errorf("dimemas: rank %d has invalid frequency %v", r, f)
		}
	}

	ranks := make([]refRankState, n)
	channels := map[refChanKey]*refChannel{}
	var colls []*refCollInstance

	getChan := func(k refChanKey) *refChannel {
		c := channels[k]
		if c == nil {
			c = &refChannel{}
			channels[k] = c
		}
		return c
	}
	getColl := func(i int) *refCollInstance {
		for len(colls) <= i {
			colls = append(colls, &refCollInstance{})
		}
		return colls[i]
	}
	addSeg := func(rs *refRankState, start, end float64, st State) {
		if !opts.RecordTimeline || end <= start {
			return
		}
		if n := len(rs.segs); n > 0 && rs.segs[n-1].State == st && rs.segs[n-1].End >= start-1e-15 {
			rs.segs[n-1].End = end
			return
		}
		rs.segs = append(rs.segs, Segment{Start: start, End: end, State: st})
	}

	// step executes as many records as possible for rank r.
	step := func(r int) bool {
		rs := &ranks[r]
		recs := t.Ranks[r]
		progressed := false
		for rs.pc < len(recs) {
			rec := recs[rs.pc]
			switch rs.blocked {
			case blockedSend:
				if !rs.sendEntry.done {
					return progressed
				}
				addSeg(rs, rs.blockStart, rs.sendEntry.end, StateComm)
				rs.clock = rs.sendEntry.end
				rs.sendEntry = nil
				rs.blocked = notBlocked
				rs.pc++
				progressed = true
				continue
			case blockedColl:
				ci := getColl(rs.collIdx)
				if !ci.complete {
					return progressed
				}
				addSeg(rs, rs.blockStart, ci.end, StateComm)
				rs.clock = ci.end
				rs.collIdx++
				rs.blocked = notBlocked
				rs.pc++
				progressed = true
				continue
			case blockedRecv:
				// Re-attempt the pairing below.
			}

			switch rec.Kind {
			case trace.KindCompute:
				beta := rec.Beta
				if beta < 0 {
					beta = opts.Beta
				}
				d := rec.Duration * timemodel.Slowdown(beta, opts.FMax, freqs[r])
				addSeg(rs, rs.clock, rs.clock+d, StateCompute)
				rs.clock += d
				rs.compute += d
				rs.pc++
				progressed = true

			case trace.KindSend:
				start := rs.clock
				rs.clock += p.Overhead
				ch := getChan(refChanKey{r, rec.Peer, rec.Tag})
				e := &refSendEntry{ready: rs.clock, bytes: rec.Bytes, rendezvous: rec.Bytes > p.EagerLimit}
				ch.sends = append(ch.sends, e)
				if e.rendezvous {
					rs.blocked = blockedSend
					rs.blockStart = start
					rs.sendEntry = e
					return progressed
				}
				addSeg(rs, start, rs.clock, StateComm)
				rs.pc++
				progressed = true

			case trace.KindRecv:
				if rs.blocked != blockedRecv {
					rs.blockStart = rs.clock
					rs.clock += p.Overhead
				}
				ch := getChan(refChanKey{rec.Peer, r, rec.Tag})
				if ch.nextSend >= len(ch.sends) {
					rs.blocked = blockedRecv
					return progressed
				}
				e := ch.sends[ch.nextSend]
				ch.nextSend++
				if e.rendezvous {
					end := math.Max(rs.clock, e.ready) + p.transfer(e.bytes)
					e.done = true
					e.end = end
					rs.clock = end
				} else {
					arrival := e.ready + p.transfer(e.bytes)
					rs.clock = math.Max(rs.clock, arrival)
				}
				addSeg(rs, rs.blockStart, rs.clock, StateComm)
				rs.blocked = notBlocked
				rs.pc++
				progressed = true

			case trace.KindColl:
				ci := getColl(rs.collIdx)
				ci.arrived++
				if rs.clock > ci.maxReady {
					ci.maxReady = rs.clock
				}
				if ci.arrived == n {
					ci.complete = true
					ci.end = ci.maxReady + p.CollectiveCost(rec.Coll, rec.Bytes, n)
					addSeg(rs, rs.clock, ci.end, StateComm)
					rs.clock = ci.end
					rs.collIdx++
					rs.pc++
					progressed = true
					continue
				}
				rs.blocked = blockedColl
				rs.blockStart = rs.clock
				return progressed

			case trace.KindIterMark:
				rs.pc++
				progressed = true

			default:
				rs.pc++
				progressed = true
			}
		}
		return progressed
	}

	for {
		progressed := false
		done := true
		for r := 0; r < n; r++ {
			if ranks[r].pc < len(t.Ranks[r]) {
				if step(r) {
					progressed = true
				}
				if ranks[r].pc < len(t.Ranks[r]) {
					done = false
				}
			}
		}
		if done {
			break
		}
		if !progressed {
			return nil, refDeadlockError(t, ranks)
		}
	}

	res := &Result{
		Compute: make([]float64, n),
		Finish:  make([]float64, n),
	}
	if opts.RecordTimeline {
		res.Timeline = make([][]Segment, n)
	}
	for r := range ranks {
		res.Compute[r] = ranks[r].compute
		res.Finish[r] = ranks[r].clock
		if ranks[r].clock > res.Time {
			res.Time = ranks[r].clock
		}
		if opts.RecordTimeline {
			res.Timeline[r] = ranks[r].segs
		}
	}
	return res, nil
}

func refDeadlockError(t *trace.Trace, ranks []refRankState) error {
	var sb strings.Builder
	for r := range ranks {
		if ranks[r].pc >= len(t.Ranks[r]) {
			continue
		}
		rec := t.Ranks[r][ranks[r].pc]
		fmt.Fprintf(&sb, " rank %d at record %d (%v)", r, ranks[r].pc, rec.Kind)
	}
	return fmt.Errorf("%w:%s", ErrDeadlock, sb.String())
}
