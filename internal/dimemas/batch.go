package dimemas

// Batch retiming: scoring N gear vectors one Retime at a time decodes the
// op stream N times. RetimeBatch walks the schedule once and carries every
// candidate's clocks side by side in struct-of-arrays layout (rank-major,
// candidates contiguous), so the per-op dispatch, index arithmetic and
// branch pattern are amortized across the whole batch and the inner loops
// are straight-line passes over adjacent floats. Per candidate the
// arithmetic — operand order, comparison order, everything — is exactly
// Skeleton.retime's, so every candidate's row is bit-identical to Retime.

import (
	"math"
	"sync"

	"repro/internal/faults"
	"repro/internal/stagerr"
	"repro/internal/timemodel"
)

// batchChunk bounds how many candidates one schedule walk carries: enough
// to amortize op decode, small enough that the per-slot arena scratch
// (nslots × chunk floats) stays cache- and memory-friendly for any trace.
const batchChunk = 64

// maxBatchSlotScratch caps the arena scratch at 16 MiB of float64s; the
// chunk width shrinks for traces with enormous send counts.
const maxBatchSlotScratch = 1 << 21

// BatchResult holds the retimed outcome of every candidate of one
// RetimeBatch call. Compute and Finish are candidate-major flat arrays
// (candidate c, rank r at index c*NumRanks+r); At returns a per-candidate
// Result view sharing the backing arrays.
type BatchResult struct {
	NumCandidates int
	NumRanks      int
	// Time[c] is candidate c's application execution time.
	Time []float64
	// Compute[c*NumRanks+r] is rank r's compute time under candidate c.
	Compute []float64
	// Finish[c*NumRanks+r] is rank r's local finish time under candidate c.
	Finish []float64
}

// At returns candidate c's outcome as a Result whose Compute/Finish slices
// alias the batch arrays (no copy; Timeline is always nil). The view stays
// valid as long as the BatchResult's arrays are not reused.
func (b *BatchResult) At(c int) Result {
	n := b.NumRanks
	return Result{
		Time:    b.Time[c],
		Compute: b.Compute[c*n : (c+1)*n : (c+1)*n],
		Finish:  b.Finish[c*n : (c+1)*n : (c+1)*n],
	}
}

// batchContext is the pooled per-call scratch: rank-major clock/comp/slot
// planes plus per-candidate resolved frequencies and slowdowns.
type batchContext struct {
	clock []float64 // nranks × width
	comp  []float64 // nranks × width
	sd    []float64 // nranks × width
	freq  []float64 // nranks × width
	slot  []float64 // nslots × width
	maxv  []float64 // width: running collective arrival max
}

var batchPool = sync.Pool{New: func() any { return new(batchContext) }}

// RetimeBatch re-times every frequency vector in freqSets in chunked
// struct-of-arrays walks over the skeleton and returns a freshly allocated
// BatchResult. Each candidate follows Retime's semantics and validation
// exactly — a nil entry means every rank at FMax — and its row is
// bit-identical to Retime(freqSets[c], false). Safe for concurrent use.
func (s *Skeleton) RetimeBatch(freqSets [][]float64) (*BatchResult, error) {
	res := &BatchResult{}
	if err := s.RetimeBatchInto(res, freqSets); err != nil {
		return nil, err
	}
	return res, nil
}

// RetimeBatchInto is RetimeBatch writing into a caller-owned BatchResult,
// reusing its backing arrays; the steady state allocates nothing.
func (s *Skeleton) RetimeBatchInto(res *BatchResult, freqSets [][]float64) error {
	n := s.nranks
	for c, freqs := range freqSets {
		if freqs == nil {
			continue
		}
		if len(freqs) != n {
			return stagerr.Errorf(stagerr.Validate, "dimemas: candidate %d: %d frequencies for %d ranks", c, len(freqs), n)
		}
		for r, f := range freqs {
			if f <= 0 || math.IsNaN(f) {
				return stagerr.Errorf(stagerr.Validate, "dimemas: candidate %d: rank %d has invalid frequency %v", c, r, f)
			}
		}
	}
	if err := faults.Check(faults.Retime); err != nil {
		return stagerr.Wrap(stagerr.Retime, err)
	}

	ncand := len(freqSets)
	res.NumCandidates = ncand
	res.NumRanks = n
	res.Time = grow(res.Time, ncand)
	res.Compute = grow(res.Compute, ncand*n)
	res.Finish = grow(res.Finish, ncand*n)

	width := batchChunk
	if ncand < width {
		width = ncand
	}
	for width > 4 && s.nslots*width > maxBatchSlotScratch {
		width /= 2
	}
	if width == 0 {
		return nil
	}

	bc := batchPool.Get().(*batchContext)
	defer batchPool.Put(bc)
	bc.sd = grow(bc.sd, n*width)
	bc.freq = grow(bc.freq, n*width)
	bc.slot = grow(bc.slot, s.nslots*width)
	bc.maxv = grow(bc.maxv, width)

	for c0 := 0; c0 < ncand; c0 += width {
		k := width
		if rem := ncand - c0; rem < k {
			k = rem
		}
		s.retimeChunk(bc, res, freqSets, c0, k, width)
	}
	return nil
}

// retimeChunk walks the whole schedule once for candidates [c0, c0+k),
// laid out rank-major with stride `width` (k may be a short tail).
func (s *Skeleton) retimeChunk(bc *batchContext, res *BatchResult, freqSets [][]float64, c0, k, width int) {
	n := s.nranks
	bc.clock = resetSlice(bc.clock, n*width)
	bc.comp = resetSlice(bc.comp, n*width)
	clock, comp, sd, freq, slot, maxv := bc.clock, bc.comp, bc.sd, bc.freq, bc.slot, bc.maxv

	for r := 0; r < n; r++ {
		base := r * width
		for j := 0; j < k; j++ {
			f := s.fmax
			if fs := freqSets[c0+j]; fs != nil {
				f = fs[r]
			}
			freq[base+j] = f
			// Slowdown is deterministic per argument triple: evaluating it
			// per (rank, candidate) yields the bits Retime gets per rank.
			sd[base+j] = timemodel.Slowdown(s.beta, s.fmax, f)
		}
	}

	ov := s.overhead
	for i := range s.ops {
		op := &s.ops[i]
		rb := int(op.rank) * width
		switch op.kind {
		case opCompute:
			f1 := op.f1
			for j := 0; j < k; j++ {
				d := f1 * sd[rb+j]
				clock[rb+j] += d
				comp[rb+j] += d
			}
		case opComputeBeta:
			f1 := op.f1
			beta := s.betas[op.arg]
			for j := 0; j < k; j++ {
				d := f1 * timemodel.Slowdown(beta, s.fmax, freq[rb+j])
				clock[rb+j] += d
				comp[rb+j] += d
			}
		case opSendEager:
			sb := int(op.arg) * width
			for j := 0; j < k; j++ {
				end := clock[rb+j] + ov
				slot[sb+j] = end
				clock[rb+j] = end
			}
		case opRecvEager:
			sb := int(op.arg) * width
			f1 := op.f1
			for j := 0; j < k; j++ {
				clock[rb+j] = fmax2(clock[rb+j]+ov, slot[sb+j]+f1)
			}
		case opRecvRend:
			srcb := int(op.src) * width
			f1 := op.f1
			for j := 0; j < k; j++ {
				end := fmax2(clock[rb+j]+ov, clock[srcb+j]+ov) + f1
				clock[rb+j] = end
				clock[srcb+j] = end
			}
		case opColl:
			// Same reduction order as Retime's scan (rank-ascending, '>')
			// so ties resolve to the identical bits per candidate.
			copy(maxv[:k], clock[:k])
			for o := 1; o < n; o++ {
				ob := o * width
				for j := 0; j < k; j++ {
					if clock[ob+j] > maxv[j] {
						maxv[j] = clock[ob+j]
					}
				}
			}
			f1 := op.f1
			for j := 0; j < k; j++ {
				maxv[j] += f1
			}
			for o := 0; o < n; o++ {
				ob := o * width
				for j := 0; j < k; j++ {
					clock[ob+j] = maxv[j]
				}
			}
		}
	}

	// Transpose the rank-major planes into the candidate-major output and
	// reduce Time with Retime's final comparison order.
	for j := 0; j < k; j++ {
		out := (c0 + j) * n
		t := 0.0
		for r := 0; r < n; r++ {
			fin := clock[r*width+j]
			res.Finish[out+r] = fin
			res.Compute[out+r] = comp[r*width+j]
			if fin > t {
				t = fin
			}
		}
		res.Time[c0+j] = t
	}
}
