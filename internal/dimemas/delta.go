package dimemas

// Delta retiming: the optimizers in this repo (gear search, power-cap
// refinement, online rebalancing) score long sequences of gear vectors that
// differ from the previous candidate in only one or two ranks. A full
// Retime still walks every op. RetimeDelta instead keeps a checkpoint of the
// last pass — every op's completion clock plus per-collective arrival rows —
// and re-times only the affected event cone: it starts cursors at the dirty
// ranks' first ops, walks forward in schedule order, and propagates through
// sends/receives/collectives only while values actually change, deactivating
// a rank the moment its clock re-converges bit-for-bit with the checkpoint.
// The output is bit-identical to Retime for the same arguments; speed comes
// purely from skipping ops whose inputs are unchanged, never from
// approximating.
//
// Three regimes bound the worst case:
//   - no resolved parameter changed → the previous Result is returned as is;
//   - too many dirty ranks (≥ half) → one full recording pass (≈ Retime plus
//     checkpoint stores);
//   - a collective's completion time diverges → every later op depends on it,
//     so the sparse walk switches to a linear peek over the suffix.
//
// The peek is what makes greedy optimizer loops cheap: a diverged candidate's
// result is computed into scratch without committing the checkpoint (the
// sparse prefix is rolled back through an undo log), so the checkpoint stays
// anchored at the base the optimizer probes around. A rejected candidate then
// costs one pass — not diverge-plus-retime-back — and restoring the base is a
// no-change hit. A caller that instead keeps building on a peeked candidate
// is detected by parameter distance and re-anchored with one recording pass.

import (
	"math"
	mbits "math/bits"

	"repro/internal/faults"
	"repro/internal/stagerr"
	"repro/internal/timemodel"
)

// deltaIndex holds the reverse lookup tables the sparse walk needs: which
// ops touch which rank, where the collectives are, which ops post/read each
// eager arena slot, and — so the walk never searches — per-op static
// neighbors: the previous op touching each endpoint (for lazy clock reads)
// and each endpoint's position in its own-op list (for cursor placement).
// Derived once per skeleton (lazily) and immutable.
type deltaIndex struct {
	// ownOps[r] lists, in schedule order, every non-collective op that
	// reads or writes rank r's clock — including opRecvRend entries where r
	// is the sender (the fused op moves both clocks).
	ownOps [][]int32
	// collOps lists the opColl indices in schedule order.
	collOps []int32
	// slotSend/slotRecv map an eager arena slot to the op that posts it and
	// the op that consumes it; -1 for rendezvous slots (never read via the
	// arena) and for sends the trace never receives.
	slotSend []int32
	slotRecv []int32
	// prevR[i]/prevS[i] are the schedule index of the last op before i that
	// touched op i's rank / rendezvous source (collectives touch everyone);
	// -1 when none. ends[prevR[i]] is therefore rank's clock just before i
	// without walking its ops.
	prevR []int32
	prevS []int32
	// posR[i]/posS[i] are op i's position within ownOps[rank] / ownOps[src];
	// -1 where not applicable (collectives; posS for non-rendezvous ops).
	posR []int32
	posS []int32
}

func (s *Skeleton) deltaIndex() *deltaIndex {
	s.deltaOnce.Do(func() {
		d := &deltaIndex{
			ownOps:   make([][]int32, s.nranks),
			collOps:  make([]int32, 0, s.ncolls),
			slotSend: make([]int32, s.nslots),
			slotRecv: make([]int32, s.nslots),
			prevR:    make([]int32, len(s.ops)),
			prevS:    make([]int32, len(s.ops)),
			posR:     make([]int32, len(s.ops)),
			posS:     make([]int32, len(s.ops)),
		}
		for i := range d.slotSend {
			d.slotSend[i] = -1
			d.slotRecv[i] = -1
		}
		counts := make([]int32, s.nranks)
		for i := range s.ops {
			op := &s.ops[i]
			switch op.kind {
			case opColl:
			case opRecvRend:
				counts[op.rank]++
				if op.src != op.rank {
					counts[op.src]++
				}
			default:
				counts[op.rank]++
			}
		}
		for r := range d.ownOps {
			d.ownOps[r] = make([]int32, 0, counts[r])
		}
		lastTouch := make([]int32, s.nranks)
		for r := range lastTouch {
			lastTouch[r] = -1
		}
		for i := range s.ops {
			op := &s.ops[i]
			d.prevR[i] = -1
			d.prevS[i] = -1
			d.posR[i] = -1
			d.posS[i] = -1
			switch op.kind {
			case opColl:
				d.collOps = append(d.collOps, int32(i))
				for r := range lastTouch {
					lastTouch[r] = int32(i)
				}
				continue
			case opRecvRend:
				d.prevR[i] = lastTouch[op.rank]
				d.prevS[i] = lastTouch[op.src]
				d.posR[i] = int32(len(d.ownOps[op.rank]))
				d.ownOps[op.rank] = append(d.ownOps[op.rank], int32(i))
				// A self-rendezvous must appear once, or its cursor would
				// retire the op twice; both position tables then point at
				// the single entry.
				if op.src != op.rank {
					d.posS[i] = int32(len(d.ownOps[op.src]))
					d.ownOps[op.src] = append(d.ownOps[op.src], int32(i))
					lastTouch[op.src] = int32(i)
				} else {
					d.posS[i] = d.posR[i]
				}
			case opSendEager:
				d.slotSend[op.arg] = int32(i)
				d.prevR[i] = lastTouch[op.rank]
				d.posR[i] = int32(len(d.ownOps[op.rank]))
				d.ownOps[op.rank] = append(d.ownOps[op.rank], int32(i))
			case opRecvEager:
				d.slotRecv[op.arg] = int32(i)
				d.prevR[i] = lastTouch[op.rank]
				d.posR[i] = int32(len(d.ownOps[op.rank]))
				d.ownOps[op.rank] = append(d.ownOps[op.rank], int32(i))
			default:
				d.prevR[i] = lastTouch[op.rank]
				d.posR[i] = int32(len(d.ownOps[op.rank]))
				d.ownOps[op.rank] = append(d.ownOps[op.rank], int32(i))
			}
			lastTouch[op.rank] = int32(i)
		}
		s.didx = d
	})
	return s.didx
}

// DeltaState carries the checkpoint RetimeDelta amortizes across calls: the
// resolved parameters of the last pass, every op's completion clock, the
// per-collective arrival/compute rows, and the last Result. A zero
// DeltaState is ready to use; the first call performs one full recording
// pass. A state binds to the first skeleton it is used with — passing it to
// a different skeleton resets it (one full pass) and rebinds. Not safe for
// concurrent use; use one DeltaState per goroutine.
type DeltaState struct {
	skel  *Skeleton
	valid bool

	// Checkpoint of the last completed pass.
	freqs    []float64 // resolved per rank (nil input → fmax)
	scale    []float64 // resolved per rank (nil input → 1)
	sd       []float64 // default-β slowdown per rank for freqs
	ends     []float64 // per op: completion clock (shared for fused ops)
	collArr  []float64 // per collective instance × rank: arrival clock
	collComp []float64 // per collective instance × rank: compute so far
	collMax  []float64 // per collective instance: max arrival
	collArg  []int32   // per collective instance: a rank attaining collMax
	res      Result

	// Scratch reused across passes.
	clock     []float64
	comp      []float64
	pdirty    []bool // rank's resolved frequency or scale changed
	active    []bool
	activeLs  []int32  // ranks currently active (unordered)
	activeAt  []int32  // rank → position in activeLs, -1 when inactive
	pos       []int32  // rank → next index into ownOps[rank]
	bits      []uint64 // op-index bitmap: ops queued for (re)evaluation
	newFreqs  []float64
	newScale  []float64
	nsd       []float64 // sd under the candidate params (committed on converge)
	suffixRun bool      // diagnostic: last pass diverged into a linear peek tail
	stats     DeltaStats
	last      *Result // result returned by the last pass (res or peekRes)

	// Peek bookkeeping. A diverged pass does NOT commit: the sparse prefix
	// is rolled back through the undo logs and the remaining schedule is
	// walked linearly into the peek scratch, so the checkpoint stays at the
	// base an optimizer keeps probing around — a rejected candidate costs
	// one pass instead of diverge-plus-retime-back. peekFreqs/peekScale
	// remember the peeked parameters so a caller that instead commits the
	// candidate (keeps building on it) is detected and re-anchored.
	peekRes   Result
	peekFreqs []float64
	peekScale []float64
	lastPeek  bool
	pclock    []float64 // peek tail: clocks
	pcomp     []float64 // peek tail: compute sums
	pslot     []float64 // peek tail: eager arena
	undoIdx   []int32   // undo log: ends[] cells written by the sparse prefix
	undoVal   []float64
	caIdx     []int32 // undo log: collArr cells
	caVal     []float64
	ccIdx     []int32 // undo log: collComp cells
	ccVal     []float64
	cmIdx     []int32 // undo log: collMax/collArg entries (parallel arrays)
	cmVal     []float64
	cmArg     []int32
}

// DeltaStats counts how RetimeDelta passes on one state resolved, for
// performance diagnosis: a delta-wired search that mostly lands in Record
// or Suffix is paying full-pass prices and gains little over Retime.
type DeltaStats struct {
	// Passes counts successful RetimeDelta calls.
	Passes uint64
	// NoChange counts calls whose resolved parameters matched the
	// checkpoint bit-for-bit (the previous Result was returned directly).
	NoChange uint64
	// Record counts full recording passes (first call, rebind, Invalidate,
	// or at least half the ranks dirty).
	Record uint64
	// Sparse counts sparse walks that completed without a linear suffix.
	Sparse uint64
	// Suffix counts sparse walks that hit a diverged collective and walked
	// the remaining schedule linearly into the peek scratch (without
	// committing the checkpoint).
	Suffix uint64
	// SparseOps counts bitmap entries retired by sparse walks — the work a
	// sparse pass actually did, comparable against the schedule length.
	SparseOps uint64
}

// Stats returns the pass-regime counters accumulated by this state.
func (st *DeltaState) Stats() DeltaStats { return st.stats }

// Invalidate drops the checkpoint; the next RetimeDelta performs a full
// recording pass.
func (st *DeltaState) Invalidate() { st.valid = false }

// Result returns the Result of the last completed RetimeDelta pass, or nil
// if none has run. Same aliasing rules as RetimeDelta's return value.
func (st *DeltaState) Result() *Result {
	if !st.valid {
		return nil
	}
	return st.last
}

// RetimeDelta re-times the skeleton under (freqs, scale), reusing st's
// checkpoint to skip every op whose inputs are unchanged since the previous
// call. The returned Result is bit-identical to
// RetimeScaled(freqs, scale, false) — including Compute, Finish and Time —
// but is owned by st: it stays valid only until the next call on the same
// state and must be copied if retained. freqs and scale follow the same
// semantics and validation as Retime/RetimeScaled (nil freqs = every rank at
// FMax, nil scale = no scaling); timelines are never recorded. Dirty ranks
// are detected by comparing the resolved vectors against the checkpoint, so
// callers just pass the full candidate vector — no dirty set to maintain.
func (s *Skeleton) RetimeDelta(st *DeltaState, freqs, scale []float64) (*Result, error) {
	n := s.nranks
	if freqs != nil {
		if len(freqs) != n {
			return nil, stagerr.Errorf(stagerr.Validate, "dimemas: %d frequencies for %d ranks", len(freqs), n)
		}
		for r, f := range freqs {
			if f <= 0 || math.IsNaN(f) {
				return nil, stagerr.Errorf(stagerr.Validate, "dimemas: rank %d has invalid frequency %v", r, f)
			}
		}
	}
	if scale != nil {
		if len(scale) != n {
			return nil, stagerr.Errorf(stagerr.Validate, "dimemas: %d load scales for %d ranks", len(scale), n)
		}
		for r, m := range scale {
			if m < 0 || math.IsNaN(m) || math.IsInf(m, 1) {
				return nil, stagerr.Errorf(stagerr.Validate, "dimemas: rank %d has invalid load scale %v", r, m)
			}
		}
	}
	if err := faults.Check(faults.Retime); err != nil {
		return nil, stagerr.Wrap(stagerr.Retime, err)
	}
	if st.skel != s {
		st.skel = s
		st.valid = false
	}
	d := s.deltaIndex()

	st.newFreqs = grow(st.newFreqs, n)
	st.newScale = grow(st.newScale, n)
	for r := 0; r < n; r++ {
		f := s.fmax
		if freqs != nil {
			f = freqs[r]
		}
		st.newFreqs[r] = f
		m := 1.0
		if scale != nil {
			m = scale[r]
		}
		st.newScale[r] = m
	}

	st.stats.Passes++
	if !st.valid {
		st.stats.Record++
		st.record(s, d)
		st.valid = true
		st.last = &st.res
		return &st.res, nil
	}

	st.pdirty = grow(st.pdirty, n)
	ndirty := 0
	for r := 0; r < n; r++ {
		// Bitwise-equal parameters produce bitwise-equal results, and ±0
		// load scales — the only == floats with different bits that
		// validation admits — yield identical sums, so float equality is a
		// sound change detector here.
		dirty := st.newFreqs[r] != st.freqs[r] || st.newScale[r] != st.scale[r]
		st.pdirty[r] = dirty
		if dirty {
			ndirty++
		}
	}
	if ndirty == 0 {
		st.stats.NoChange++
		st.lastPeek = false
		st.last = &st.res
		return &st.res, nil
	}
	if st.lastPeek {
		// If the candidate is closer to the last peeked parameters than to
		// the checkpoint, the caller committed the peek and is building on
		// it: re-anchor the checkpoint there with one recording pass rather
		// than paying the peek's divergence on every subsequent probe.
		dp := 0
		for r := 0; r < n; r++ {
			if st.newFreqs[r] != st.peekFreqs[r] || st.newScale[r] != st.peekScale[r] {
				dp++
			}
		}
		if dp < ndirty {
			st.stats.Record++
			st.record(s, d)
			st.last = &st.res
			return &st.res, nil
		}
	}
	if 2*ndirty >= n {
		// The cone would cover most of the schedule anyway: one linear
		// recording pass is cheaper than sparse bookkeeping.
		st.stats.Record++
		st.record(s, d)
		st.last = &st.res
		return &st.res, nil
	}
	st.sparse(s, d, ndirty)
	if st.suffixRun {
		st.stats.Suffix++
		st.last = &st.peekRes
		return &st.peekRes, nil
	}
	st.stats.Sparse++
	st.last = &st.res
	return &st.res, nil
}

// record performs one full recording pass under the pending parameters,
// refreshing the whole checkpoint. Cost ≈ Retime plus sequential stores.
func (st *DeltaState) record(s *Skeleton, d *deltaIndex) {
	n := s.nranks
	st.freqs = append(st.freqs[:0], st.newFreqs...)
	st.scale = append(st.scale[:0], st.newScale...)
	st.sd = grow(st.sd, n)
	for r := 0; r < n; r++ {
		st.sd[r] = timemodel.Slowdown(s.beta, s.fmax, st.freqs[r])
	}
	st.ends = grow(st.ends, len(s.ops))
	st.collArr = grow(st.collArr, len(d.collOps)*n)
	st.collComp = grow(st.collComp, len(d.collOps)*n)
	st.collMax = grow(st.collMax, len(d.collOps))
	st.collArg = grow(st.collArg, len(d.collOps))
	st.clock = resetSlice(st.clock, n)
	st.comp = resetSlice(st.comp, n)
	st.suffixRun = false
	st.lastPeek = false
	st.runRecord(s, 0)
	st.finishFull(n)
}

// runRecord processes ops[from:] linearly under st.clock/st.comp, writing
// every checkpoint row it passes. The arithmetic — including evaluation
// order inside every expression — matches Skeleton.retime exactly; the
// resolved scale vector multiplies as (f1·scale)·sd, and a 1.0 scale factor
// is an exact multiplication, so the bits match retime with nil scale too.
func (st *DeltaState) runRecord(s *Skeleton, from int) {
	n := s.nranks
	clock, comp, sd := st.clock, st.comp, st.sd
	scale, freqs, ends := st.scale, st.freqs, st.ends
	ov := s.overhead
	for i := from; i < len(s.ops); i++ {
		op := &s.ops[i]
		r := op.rank
		switch op.kind {
		case opCompute:
			dd := op.f1 * scale[r] * sd[r]
			clock[r] += dd
			comp[r] += dd
			ends[i] = clock[r]
		case opComputeBeta:
			dd := op.f1 * scale[r] * timemodel.Slowdown(s.betas[op.arg], s.fmax, freqs[r])
			clock[r] += dd
			comp[r] += dd
			ends[i] = clock[r]
		case opSendEager:
			end := clock[r] + ov
			clock[r] = end
			ends[i] = end
		case opRecvEager:
			// The slot value is the posting send's completion clock, which
			// ends[] already holds — the checkpoint doubles as the arena.
			end := fmax2(clock[r]+ov, ends[st.skel.didx.slotSend[op.arg]]+op.f1)
			clock[r] = end
			ends[i] = end
		case opRecvRend:
			sendStart := clock[op.src]
			end := fmax2(clock[r]+ov, sendStart+ov) + op.f1
			clock[r] = end
			clock[op.src] = end
			ends[i] = end
		case opColl:
			ci := int(op.arg)
			base := ci * n
			copy(st.collArr[base:base+n], clock)
			copy(st.collComp[base:base+n], comp)
			m := clock[0]
			marg := int32(0)
			for o := 1; o < n; o++ {
				if clock[o] > m {
					m = clock[o]
					marg = int32(o)
				}
			}
			st.collMax[ci] = m
			st.collArg[ci] = marg
			end := m + op.f1
			for o := 0; o < n; o++ {
				clock[o] = end
			}
			ends[i] = end
		}
	}
}

// finishFull publishes st.clock/st.comp wholesale (after record or a linear
// suffix, where both arrays are complete for every rank).
func (st *DeltaState) finishFull(n int) {
	st.res.Compute = append(st.res.Compute[:0], st.comp...)
	st.res.Finish = append(st.res.Finish[:0], st.clock...)
	st.res.Timeline = nil
	st.res.Time = 0
	for r := 0; r < n; r++ {
		if st.clock[r] > st.res.Time {
			st.res.Time = st.clock[r]
		}
	}
}

// sparse is the delta walk proper: a bitmap over op indices queues exactly
// the ops whose inputs may have changed; scanning it word by word retires
// them in ascending index — schedule — order, activating ranks as
// divergence reaches them and deactivating non-dirty ranks the moment their
// clock re-converges. One bit per op collapses every queue role (a rank
// cursor's next op, a forced eager re-check, the next collective) into a
// single "re-evaluate this op" flag whose handler reads the current cursor
// state to decide what, if anything, is left to do — so there are no stale
// queue entries and pushes/pops are single bit operations.
func (st *DeltaState) sparse(s *Skeleton, d *deltaIndex, ndirty int) {
	n := s.nranks
	// Parameters are not committed yet: the walk computes under the
	// candidate vectors and a scratch slowdown array, and the checkpoint
	// adopts them only if the pass converges. Every checkpoint cell the walk
	// does touch goes through the undo logs so a diverged pass can roll the
	// prefix back before peeking the suffix.
	st.nsd = grow(st.nsd, n)
	copy(st.nsd, st.sd)
	for r := 0; r < n; r++ {
		if st.pdirty[r] {
			st.nsd[r] = timemodel.Slowdown(s.beta, s.fmax, st.newFreqs[r])
		}
	}
	st.undoIdx = st.undoIdx[:0]
	st.undoVal = st.undoVal[:0]
	st.caIdx = st.caIdx[:0]
	st.caVal = st.caVal[:0]
	st.ccIdx = st.ccIdx[:0]
	st.ccVal = st.ccVal[:0]
	st.cmIdx = st.cmIdx[:0]
	st.cmVal = st.cmVal[:0]
	st.cmArg = st.cmArg[:0]
	st.suffixRun = false

	st.active = grow(st.active, n)
	st.activeAt = grow(st.activeAt, n)
	st.pos = grow(st.pos, n)
	st.clock = grow(st.clock, n)
	st.comp = grow(st.comp, n)
	st.activeLs = st.activeLs[:0]
	nw := (len(s.ops) + 63) / 64
	st.bits = grow(st.bits, nw)
	words := st.bits
	for i := range words {
		words[i] = 0
	}
	for r := int32(0); int(r) < n; r++ {
		st.active[r] = false
		st.activeAt[r] = -1
	}
	setBit := func(i int32) { words[i>>6] |= 1 << uint(i&63) }
	// Parameter-dirty ranks re-accumulate compute from op zero (their
	// durations changed), so they activate at the start and never
	// deactivate; everyone else joins only when divergence reaches them.
	for r := int32(0); int(r) < n; r++ {
		if !st.pdirty[r] {
			continue
		}
		st.activeAt[r] = int32(len(st.activeLs))
		st.activeLs = append(st.activeLs, r)
		st.active[r] = true
		st.clock[r] = 0
		st.comp[r] = 0
		st.pos[r] = 0
		if len(d.ownOps[r]) > 0 {
			setBit(d.ownOps[r][0])
		}
	}
	if len(d.collOps) > 0 {
		setBit(d.collOps[0])
	}

	ends, clock, comp, sd := st.ends, st.clock, st.comp, st.nsd
	scale, freqs := st.newScale, st.newFreqs
	ov := s.overhead
	logEnd := func(idx int32, old float64) {
		st.undoIdx = append(st.undoIdx, idx)
		st.undoVal = append(st.undoVal, old)
	}

	deactivate := func(r int32) {
		at := st.activeAt[r]
		lastIdx := int32(len(st.activeLs) - 1)
		moved := st.activeLs[lastIdx]
		st.activeLs[at] = moved
		st.activeAt[moved] = at
		st.activeLs = st.activeLs[:lastIdx]
		st.activeAt[r] = -1
		st.active[r] = false
	}
	// activateAt marks o active with its cursor at position k in its own-op
	// list (the entry after the op being retired — static, from posR/posS)
	// and its clock as of that point (known by the caller: a fused op just
	// wrote it). An already-active cursor — which never skips an unprocessed
	// dirty op — is at or past the target and needs no move.
	activateAt := func(o int32, k int32, clockVal float64) {
		if st.active[o] {
			return
		}
		st.clock[o] = clockVal
		st.active[o] = true
		st.activeAt[o] = int32(len(st.activeLs))
		st.activeLs = append(st.activeLs, o)
		st.pos[o] = k
		if own := d.ownOps[o]; int(k) < len(own) {
			setBit(own[k])
		}
	}
	// advanceIfAt moves o's cursor past an op it points exactly at
	// (position k in o's own-op list), queueing its next own op — used for
	// each side of a fused rendezvous op so a later stale bit finds the
	// cursor moved on and does nothing.
	advanceIfAt := func(o int32, k int32) {
		if st.active[o] && st.pos[o] == k {
			st.pos[o]++
			if own := d.ownOps[o]; int(st.pos[o]) < len(own) {
				setBit(own[st.pos[o]])
			}
		}
	}

scan:
	for wi := 0; wi < nw; wi++ {
		for words[wi] != 0 {
			if len(st.activeLs) == 0 {
				break scan
			}
			b := mbits.TrailingZeros64(words[wi])
			words[wi] &^= 1 << uint(b)
			idx := int32(wi<<6 | b)
			st.stats.SparseOps++
			op := &s.ops[idx]
			r := op.rank
			prevEnd := ends[idx]
			switch op.kind {
			case opColl:
				ci := int(op.arg)
				if ci+1 < len(d.collOps) {
					setBit(d.collOps[ci+1])
				}
				base := ci * n
				// Arrival max. When the recorded argmax rank is inactive its
				// arrival — the previous global max — is unchanged and still
				// dominates every other inactive arrival, so only the active
				// clocks need comparing; otherwise scan the inactive rows.
				var m float64
				var marg int32
				if a := st.collArg[ci]; !st.active[a] {
					m = st.collMax[ci]
					marg = a
				} else {
					m = math.Inf(-1)
					marg = -1
					for o := int32(0); int(o) < n; o++ {
						if !st.active[o] {
							if v := st.collArr[base+int(o)]; v > m {
								m = v
								marg = o
							}
						}
					}
				}
				for _, o := range st.activeLs {
					if v := clock[o]; v > m {
						m = v
						marg = o
					}
				}
				end := m + op.f1
				if end != prevEnd {
					// Every later op depends on this completion: walk the
					// suffix linearly into the peek scratch and roll the
					// prefix back — the checkpoint stays at the base.
					st.suffixRun = true
					st.runPeek(s, d, int(idx), ci, end)
					return
				}
				// Converged: refresh the rows that changed (logged so a later
				// divergence can undo them), release the active clocks, and
				// let every non-dirty active rank retire.
				for _, o := range st.activeLs {
					st.caIdx = append(st.caIdx, int32(base+int(o)))
					st.caVal = append(st.caVal, st.collArr[base+int(o)])
					st.collArr[base+int(o)] = clock[o]
					if st.pdirty[o] {
						st.ccIdx = append(st.ccIdx, int32(base+int(o)))
						st.ccVal = append(st.ccVal, st.collComp[base+int(o)])
						st.collComp[base+int(o)] = comp[o]
					}
					clock[o] = end
				}
				st.cmIdx = append(st.cmIdx, int32(ci))
				st.cmVal = append(st.cmVal, st.collMax[ci])
				st.cmArg = append(st.cmArg, st.collArg[ci])
				st.collMax[ci] = m
				st.collArg[ci] = marg
				for i := len(st.activeLs) - 1; i >= 0; i-- {
					if o := st.activeLs[i]; !st.pdirty[o] {
						deactivate(o)
					}
				}
			case opCompute:
				if !st.active[r] || st.pos[r] != d.posR[idx] {
					continue // stale bit: the owner retired or moved on
				}
				st.pos[r]++
				if own := d.ownOps[r]; int(st.pos[r]) < len(own) {
					setBit(own[st.pos[r]])
				}
				dd := op.f1 * scale[r] * sd[r]
				clock[r] += dd
				comp[r] += dd
				logEnd(idx, prevEnd)
				ends[idx] = clock[r]
				if !st.pdirty[r] && clock[r] == prevEnd {
					deactivate(r)
				}
			case opComputeBeta:
				if !st.active[r] || st.pos[r] != d.posR[idx] {
					continue
				}
				st.pos[r]++
				if own := d.ownOps[r]; int(st.pos[r]) < len(own) {
					setBit(own[st.pos[r]])
				}
				dd := op.f1 * scale[r] * timemodel.Slowdown(s.betas[op.arg], s.fmax, freqs[r])
				clock[r] += dd
				comp[r] += dd
				logEnd(idx, prevEnd)
				ends[idx] = clock[r]
				if !st.pdirty[r] && clock[r] == prevEnd {
					deactivate(r)
				}
			case opSendEager:
				if !st.active[r] || st.pos[r] != d.posR[idx] {
					continue
				}
				st.pos[r]++
				if own := d.ownOps[r]; int(st.pos[r]) < len(own) {
					setBit(own[st.pos[r]])
				}
				end := clock[r] + ov
				clock[r] = end
				logEnd(idx, prevEnd)
				ends[idx] = end
				if end != prevEnd {
					// The arena slot changed: queue the matching receive so
					// it re-evaluates even if its rank is clean by then.
					if ri := d.slotRecv[op.arg]; ri >= 0 {
						setBit(ri)
					}
				} else if !st.pdirty[r] {
					deactivate(r)
				}
			case opRecvEager:
				if st.active[r] {
					if st.pos[r] != d.posR[idx] {
						continue // already retired earlier this pass
					}
					st.pos[r]++
					if own := d.ownOps[r]; int(st.pos[r]) < len(own) {
						setBit(own[st.pos[r]])
					}
					end := fmax2(clock[r]+ov, ends[d.slotSend[op.arg]]+op.f1)
					clock[r] = end
					logEnd(idx, prevEnd)
					ends[idx] = end
					if !st.pdirty[r] && end == prevEnd {
						deactivate(r)
					}
					continue
				}
				// Forced re-check of an idle receiver (its sender's arena
				// slot changed): its clock before this op is the end of its
				// previous touch (static lookup, no walk). Unchanged ends
				// mean a stale bit — nothing to do.
				var start float64
				if pr := d.prevR[idx]; pr >= 0 {
					start = ends[pr]
				}
				end := fmax2(start+ov, ends[d.slotSend[op.arg]]+op.f1)
				if end != prevEnd {
					logEnd(idx, prevEnd)
					ends[idx] = end
					activateAt(r, d.posR[idx]+1, end)
				}
			case opRecvRend:
				src := op.src
				// Whichever cursors point here move past it; a re-compute
				// with both sides idle is a no-op on a stale bit.
				advanceIfAt(r, d.posR[idx])
				if src != r {
					advanceIfAt(src, d.posS[idx])
				}
				var cr, cs float64
				if st.active[r] {
					cr = clock[r]
				} else if pr := d.prevR[idx]; pr >= 0 {
					cr = ends[pr]
				}
				if st.active[src] {
					cs = clock[src]
				} else if ps := d.prevS[idx]; ps >= 0 {
					cs = ends[ps]
				}
				end := fmax2(cr+ov, cs+ov) + op.f1
				logEnd(idx, prevEnd)
				ends[idx] = end
				if end == prevEnd {
					if st.active[r] {
						clock[r] = end
						if !st.pdirty[r] {
							deactivate(r)
						}
					}
					if st.active[src] {
						clock[src] = end
						if !st.pdirty[src] {
							deactivate(src)
						}
					}
				} else {
					// The fused op moved both clocks: both sides are part
					// of the cone from here on.
					activateAt(r, d.posR[idx]+1, end)
					activateAt(src, d.posS[idx]+1, end)
					clock[r] = end
					clock[src] = end
				}
			}
		}
	}

	// Sparse pass completed without a divergent collective: commit the
	// candidate parameters (the in-place cell writes above stand) and
	// publish. Only the ranks still active have new finish clocks, and only
	// parameter-dirty ranks have new compute sums — everyone else's rows are
	// bit-unchanged.
	st.freqs = append(st.freqs[:0], st.newFreqs...)
	st.scale = append(st.scale[:0], st.newScale...)
	st.sd, st.nsd = st.nsd, st.sd
	st.lastPeek = false
	for _, o := range st.activeLs {
		st.res.Finish[o] = clock[o]
	}
	for r := int32(0); int(r) < n; r++ {
		if st.pdirty[r] {
			st.res.Compute[r] = comp[r]
		}
	}
	st.res.Timeline = nil
	st.res.Time = 0
	for r := 0; r < n; r++ {
		if st.res.Finish[r] > st.res.Time {
			st.res.Time = st.res.Finish[r]
		}
	}
}

// runPeek handles a diverged collective (instance ci at schedule index from,
// new completion end): every later op depends on it, so the suffix is walked
// linearly — but into scratch, and the sparse prefix is rolled back, leaving
// the checkpoint bit-identical to the state before this pass. The result goes
// to st.peekRes. Arithmetic matches runRecord (and therefore retime) exactly.
//
// Order matters: the tail must run before the rollback, because eager
// receives in the tail whose posting send sits in the prefix must see the
// send's re-timed completion, which the prefix wrote into ends[] in place.
func (st *DeltaState) runPeek(s *Skeleton, d *deltaIndex, from, ci int, end float64) {
	n := s.nranks
	st.pclock = grow(st.pclock, n)
	st.pcomp = grow(st.pcomp, n)
	st.pslot = grow(st.pslot, s.nslots)
	clock, comp, slot := st.pclock, st.pcomp, st.pslot
	// At a collective every clock equals its completion. Non-dirty ranks'
	// compute so far equals the (unchanged) checkpoint row; dirty ranks
	// carry the sums the prefix re-accumulated.
	base := ci * n
	for o := 0; o < n; o++ {
		clock[o] = end
		if st.pdirty[o] {
			comp[o] = st.comp[o]
		} else {
			comp[o] = st.collComp[base+o]
		}
	}
	sd, scale, freqs := st.nsd, st.newScale, st.newFreqs
	ends := st.ends
	ov := s.overhead
	for i := from + 1; i < len(s.ops); i++ {
		op := &s.ops[i]
		r := op.rank
		switch op.kind {
		case opCompute:
			dd := op.f1 * scale[r] * sd[r]
			clock[r] += dd
			comp[r] += dd
		case opComputeBeta:
			dd := op.f1 * scale[r] * timemodel.Slowdown(s.betas[op.arg], s.fmax, freqs[r])
			clock[r] += dd
			comp[r] += dd
		case opSendEager:
			e := clock[r] + ov
			clock[r] = e
			slot[op.arg] = e
		case opRecvEager:
			// A send in the tail posted into the scratch arena; a send in the
			// prefix (or untouched) reads from the checkpoint, which at this
			// point still holds the prefix's re-timed values.
			var sv float64
			if si := d.slotSend[op.arg]; int(si) > from {
				sv = slot[op.arg]
			} else {
				sv = ends[si]
			}
			e := fmax2(clock[r]+ov, sv+op.f1)
			clock[r] = e
		case opRecvRend:
			sendStart := clock[op.src]
			e := fmax2(clock[r]+ov, sendStart+ov) + op.f1
			clock[r] = e
			clock[op.src] = e
		case opColl:
			m := clock[0]
			for o := 1; o < n; o++ {
				if clock[o] > m {
					m = clock[o]
				}
			}
			e := m + op.f1
			for o := 0; o < n; o++ {
				clock[o] = e
			}
		}
	}
	// Roll the prefix back: every cell was written once, so order is
	// irrelevant.
	for i, idx := range st.undoIdx {
		st.ends[idx] = st.undoVal[i]
	}
	for i, idx := range st.caIdx {
		st.collArr[idx] = st.caVal[i]
	}
	for i, idx := range st.ccIdx {
		st.collComp[idx] = st.ccVal[i]
	}
	for i, c := range st.cmIdx {
		st.collMax[c] = st.cmVal[i]
		st.collArg[c] = st.cmArg[i]
	}
	st.peekRes.Compute = append(st.peekRes.Compute[:0], comp...)
	st.peekRes.Finish = append(st.peekRes.Finish[:0], clock...)
	st.peekRes.Timeline = nil
	st.peekRes.Time = 0
	for r := 0; r < n; r++ {
		if clock[r] > st.peekRes.Time {
			st.peekRes.Time = clock[r]
		}
	}
	st.peekFreqs = append(st.peekFreqs[:0], st.newFreqs...)
	st.peekScale = append(st.peekScale[:0], st.newScale...)
	st.lastPeek = true
}
