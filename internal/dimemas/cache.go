package dimemas

import (
	"sync"

	"repro/internal/trace"
)

// replayKey identifies one baseline (all-ranks-at-FMax) replay: the trace
// (by identity — traces are immutable once simulated), an optional slice
// discriminator for per-iteration replays, and every simulation input the
// result depends on.
type replayKey struct {
	tr       *trace.Trace
	slice    int // -1 for the whole trace; iteration index for slices
	beta     float64
	fmax     float64
	platform Platform
	timeline bool
}

type replayEntry struct {
	once sync.Once
	res  *Result
	err  error
}

// ReplayCache memoizes baseline replays — simulations with Options.Freqs ==
// nil, i.e. every rank at FMax — keyed by (trace, β, FMax, platform). Every
// analysis pipeline starts from exactly this replay, and sweeps re-run it
// once per variant on the same trace; the cache computes it once and shares
// the Result.
//
// Cached Results are shared: callers must treat Compute, Finish and
// Timeline as read-only. Keying is by trace identity, so traces must not be
// mutated after their first cached replay. Safe for concurrent use;
// concurrent misses on the same key are single-flighted.
type ReplayCache struct {
	mu sync.Mutex
	m  map[replayKey]*replayEntry
}

// NewReplayCache returns an empty cache.
func NewReplayCache() *ReplayCache {
	return &ReplayCache{m: make(map[replayKey]*replayEntry)}
}

// Original returns the memoized baseline replay of t under opts, simulating
// it on first use. A nil receiver, or options carrying explicit per-rank
// frequencies (which the cache does not index), degrade to a plain
// uncached Simulate call, so callers can thread an optional cache without
// branching.
func (c *ReplayCache) Original(t *trace.Trace, p Platform, opts Options) (*Result, error) {
	return c.original(t, -1, t, p, opts)
}

// OriginalSlice is Original for a per-iteration sub-trace: sub must be
// parent.Slice(iteration, iteration+1). Keying on (parent, iteration)
// instead of the sub-trace pointer lets repeated emulations of the same
// parent trace (which re-slice it every run) share the replays.
func (c *ReplayCache) OriginalSlice(parent *trace.Trace, iteration int, sub *trace.Trace, p Platform, opts Options) (*Result, error) {
	return c.original(parent, iteration, sub, p, opts)
}

func (c *ReplayCache) original(keyTrace *trace.Trace, slice int, sim *trace.Trace, p Platform, opts Options) (*Result, error) {
	if c == nil || opts.Freqs != nil {
		return Simulate(sim, p, opts)
	}
	k := replayKey{
		tr:       keyTrace,
		slice:    slice,
		beta:     opts.Beta,
		fmax:     opts.FMax,
		platform: p,
		timeline: opts.RecordTimeline,
	}
	c.mu.Lock()
	e := c.m[k]
	if e == nil {
		e = &replayEntry{}
		c.m[k] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.res, e.err = Simulate(sim, p, opts) })
	return e.res, e.err
}

// Len reports the number of memoized replays (for tests and diagnostics).
func (c *ReplayCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
