package dimemas

import (
	"container/list"
	"context"
	"errors"
	"sync"

	"repro/internal/faults"
	"repro/internal/stagerr"
	"repro/internal/trace"
)

// replayKey identifies one memoized artifact: a baseline (all-ranks-at-FMax)
// replay or a timing skeleton. It carries the trace (by identity — traces
// are immutable once simulated), an optional slice discriminator for
// per-iteration replays, and every simulation input the artifact depends on.
type replayKey struct {
	tr       *trace.Trace
	slice    int // -1 for the whole trace; iteration index for slices
	beta     float64
	fmax     float64
	platform Platform
	// machine is Machine.Fingerprint(): the canonical encoding of the
	// topology and capability layers. "" for the flat homogeneous machine,
	// so keys minted by the plain-Platform API are unchanged.
	machine  string
	timeline bool
	skeleton bool // true for timing-skeleton entries (timeline is false)
}

// replayEntry single-flights one memoized computation: a baseline Result or
// a timing Skeleton, depending on the key.
type replayEntry struct {
	once sync.Once
	res  *Result
	skel *Skeleton
	err  error
}

// lruItem pairs a key with its entry so eviction from the list can also
// delete the map slot.
type lruItem struct {
	key   replayKey
	entry *replayEntry
}

// CacheStats is a point-in-time snapshot of a ReplayCache's counters.
type CacheStats struct {
	// Hits counts lookups that found a memoized (or in-flight) entry.
	Hits int64
	// Misses counts lookups that had to start a fresh computation.
	Misses int64
	// Evictions counts entries dropped by the LRU bound.
	Evictions int64
	// Entries is the current number of memoized entries (replays plus
	// skeletons).
	Entries int
}

// ReplayCache memoizes the two per-trace artifacts every analysis pipeline
// re-derives — the baseline replay (Options.Freqs == nil, every rank at
// FMax) and the frequency-independent timing skeleton — keyed by (trace, β,
// FMax, platform). Sweeps, gear searches and server requests that evaluate
// many gear assignments over the same trace pay for each artifact once and
// retime everything else.
//
// Cached Results and Skeletons are shared: callers must treat them as
// read-only. Keying is by trace identity, so traces must not be mutated
// after their first cached use. Safe for concurrent use; concurrent misses
// on the same key are single-flighted. A computation that aborts because
// its caller's Options.Ctx expired is not memoized: the entry is dropped so
// the next lookup recomputes instead of replaying a dead request's
// cancellation forever.
//
// A cache built with NewReplayCacheWithLimit evicts the least recently used
// entry once it holds more than the configured number, so long-running
// processes (e.g. the pwrsimd daemon) hold a bounded working set. An
// evicted in-flight entry still completes for the callers already waiting
// on it; later lookups simply recompute it.
type ReplayCache struct {
	mu        sync.Mutex
	max       int // 0 means unbounded
	m         map[replayKey]*list.Element
	lru       *list.List // front = most recently used; values are *lruItem
	hits      int64
	misses    int64
	evictions int64
}

// NewReplayCache returns an empty, unbounded cache.
func NewReplayCache() *ReplayCache { return NewReplayCacheWithLimit(0) }

// NewReplayCacheWithLimit returns an empty cache bounded to at most
// maxEntries memoized entries (LRU eviction). maxEntries ≤ 0 means
// unbounded.
func NewReplayCacheWithLimit(maxEntries int) *ReplayCache {
	if maxEntries < 0 {
		maxEntries = 0
	}
	return &ReplayCache{
		max: maxEntries,
		m:   make(map[replayKey]*list.Element),
		lru: list.New(),
	}
}

// Original returns the memoized baseline replay of t under opts, simulating
// it on first use. A nil receiver, or options carrying explicit per-rank
// frequencies (which the cache does not index), degrade to a plain
// uncached Simulate call, so callers can thread an optional cache without
// branching.
func (c *ReplayCache) Original(t *trace.Trace, p Platform, opts Options) (*Result, error) {
	return c.original(t, -1, t, FlatMachine(p), opts)
}

// OriginalMachine is Original on the layered machine model; machines are
// distinguished in the key by their fingerprint, so heterogeneous
// per-request machines share one cache safely.
func (c *ReplayCache) OriginalMachine(t *trace.Trace, m Machine, opts Options) (*Result, error) {
	return c.original(t, -1, t, m, opts)
}

// OriginalSlice is Original for a per-iteration sub-trace: sub must be
// parent.Slice(iteration, iteration+1). Keying on (parent, iteration)
// instead of the sub-trace pointer lets repeated emulations of the same
// parent trace (which re-slice it every run) share the replays.
func (c *ReplayCache) OriginalSlice(parent *trace.Trace, iteration int, sub *trace.Trace, p Platform, opts Options) (*Result, error) {
	return c.original(parent, iteration, sub, FlatMachine(p), opts)
}

// SkeletonFor returns the memoized timing skeleton of t under opts
// (Options.Freqs and RecordTimeline are irrelevant to the key — the
// skeleton covers every gear assignment and timeline mode). A nil receiver
// builds an uncached skeleton.
func (c *ReplayCache) SkeletonFor(t *trace.Trace, p Platform, opts Options) (*Skeleton, error) {
	return c.skeleton(t, -1, t, FlatMachine(p), opts)
}

// SkeletonForMachine is SkeletonFor on the layered machine model (keyed by
// the machine fingerprint in addition to the platform scalars).
func (c *ReplayCache) SkeletonForMachine(t *trace.Trace, m Machine, opts Options) (*Skeleton, error) {
	return c.skeleton(t, -1, t, m, opts)
}

// SkeletonForSliceMachine is SkeletonForSlice on the layered machine model.
func (c *ReplayCache) SkeletonForSliceMachine(parent *trace.Trace, iteration int, sub *trace.Trace, m Machine, opts Options) (*Skeleton, error) {
	return c.skeleton(parent, iteration, sub, m, opts)
}

// SkeletonForSlice is SkeletonFor for a per-iteration sub-trace: sub must be
// parent.Slice(iteration, iteration+1). Keying on (parent, iteration)
// instead of the sub-trace pointer lets repeated runs over the same parent
// trace (which re-slice it every run — policy sweeps, benchmarks, repeated
// server requests) share one skeleton, exactly as OriginalSlice does for
// baseline replays.
func (c *ReplayCache) SkeletonForSlice(parent *trace.Trace, iteration int, sub *trace.Trace, p Platform, opts Options) (*Skeleton, error) {
	return c.skeleton(parent, iteration, sub, FlatMachine(p), opts)
}

func (c *ReplayCache) skeleton(keyTrace *trace.Trace, slice int, build *trace.Trace, m Machine, opts Options) (*Skeleton, error) {
	if c == nil {
		return BuildSkeletonMachine(build, m, opts)
	}
	k := replayKey{
		tr:       keyTrace,
		slice:    slice,
		beta:     opts.Beta,
		fmax:     opts.FMax,
		platform: m.Base,
		machine:  m.Fingerprint(),
		skeleton: true,
	}
	e, err := c.flight(k, opts, func(e *replayEntry) { e.skel, e.err = BuildSkeletonMachine(build, m, opts) })
	if err != nil {
		return nil, err
	}
	return e.skel, e.err
}

// Replay returns the replay of t under opts: the memoized baseline when
// opts.Freqs is nil, and a skeleton retiming — bit-identical to Simulate
// but an order of magnitude cheaper — when per-rank frequencies are given.
// A nil receiver degrades to a plain Simulate call.
func (c *ReplayCache) Replay(t *trace.Trace, p Platform, opts Options) (*Result, error) {
	return c.ReplayMachine(t, FlatMachine(p), opts)
}

// ReplayMachine is Replay on the layered machine model: the memoized
// machine baseline for nil Freqs, a machine-skeleton retiming otherwise.
func (c *ReplayCache) ReplayMachine(t *trace.Trace, m Machine, opts Options) (*Result, error) {
	if opts.Freqs == nil {
		return c.OriginalMachine(t, m, opts)
	}
	if c == nil {
		return SimulateMachine(t, m, opts)
	}
	sk, err := c.SkeletonForMachine(t, m, opts)
	if err != nil {
		return nil, err
	}
	return sk.Retime(opts.Freqs, opts.RecordTimeline)
}

func (c *ReplayCache) original(keyTrace *trace.Trace, slice int, sim *trace.Trace, m Machine, opts Options) (*Result, error) {
	if c == nil || opts.Freqs != nil {
		return SimulateMachine(sim, m, opts)
	}
	k := replayKey{
		tr:       keyTrace,
		slice:    slice,
		beta:     opts.Beta,
		fmax:     opts.FMax,
		platform: m.Base,
		machine:  m.Fingerprint(),
		timeline: opts.RecordTimeline,
	}
	e, err := c.flight(k, opts, func(e *replayEntry) { e.res, e.err = SimulateMachine(sim, m, opts) })
	if err != nil {
		return nil, err
	}
	return e.res, e.err
}

// flight single-flights compute under k. Two error classes must never be
// memoized — a computation aborted by its caller's context, and an injected
// fault (internal/faults) — or the cache would serve a dead request's
// cancellation, or a transient chaos fault, to every later caller. Context
// aborts evict the entry and a waiter whose own context is live retries,
// falling back to an uncached computation (a fresh, unshared entry) after
// repeated peer cancellations; the returned error is only ever the waiter's
// own context error. Injected faults evict the entry and surface to the
// caller directly — the next lookup recomputes from scratch.
func (c *ReplayCache) flight(k replayKey, opts Options, compute func(*replayEntry)) (*replayEntry, error) {
	for attempt := 0; ; attempt++ {
		e := c.entryFor(k)
		e.once.Do(func() {
			if err := faults.Check(faults.CacheFill); err != nil {
				e.err = stagerr.Wrap(stagerr.Cache, err)
				return
			}
			compute(e)
		})
		if e.err != nil && faults.IsInjected(e.err) {
			c.evict(k, e)
			return e, nil
		}
		retry, direct, ctxErr := c.retryAfterCtxError(k, e, opts, attempt)
		if ctxErr != nil {
			return nil, ctxErr
		}
		if direct {
			e := &replayEntry{}
			compute(e)
			return e, nil
		}
		if retry {
			continue
		}
		return e, nil
	}
}

// evict drops e from the cache if it is still the entry memoized under k.
func (c *ReplayCache) evict(k replayKey, e *replayEntry) {
	c.mu.Lock()
	if el, ok := c.m[k]; ok && el.Value.(*lruItem).entry == e {
		c.lru.Remove(el)
		delete(c.m, k)
	}
	c.mu.Unlock()
}

// entryFor returns the single-flight entry for k, inserting (and possibly
// LRU-evicting) under the lock.
func (c *ReplayCache) entryFor(k replayKey) *replayEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		c.hits++
		c.lru.MoveToFront(el)
		return el.Value.(*lruItem).entry
	}
	c.misses++
	e := &replayEntry{}
	c.m[k] = c.lru.PushFront(&lruItem{key: k, entry: e})
	if c.max > 0 && c.lru.Len() > c.max {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.m, back.Value.(*lruItem).key)
		c.evictions++
	}
	return e
}

// retryAfterCtxError handles the one error class that must not be
// memoized: a computation aborted by the computing caller's context. The
// poisoned entry is dropped; a waiter whose own context died meanwhile
// gets its own context's error (not the computing peer's), and a waiter
// whose context is still live retries (bounded), falling back to an
// uncached computation rather than looping on repeatedly cancelled peers.
func (c *ReplayCache) retryAfterCtxError(k replayKey, e *replayEntry, opts Options, attempt int) (retry, direct bool, ctxErr error) {
	if e.err == nil || !isCtxErr(e.err) {
		return false, false, nil
	}
	c.evict(k, e)
	if opts.Ctx != nil {
		if own := opts.Ctx.Err(); own != nil {
			return false, false, own
		}
	}
	if attempt >= 2 {
		return false, true, nil
	}
	return true, false, nil
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// MemoizedErrors lists the errors of every completed entry that memoized a
// failure (for tests and diagnostics — chiefly the chaos soak's cache-
// poisoning invariant: no entry may hold an injected fault or a context
// error). An entry still in flight is waited on, so a quiescing test sees
// the settled state.
func (c *ReplayCache) MemoizedErrors() []error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	entries := make([]*replayEntry, 0, len(c.m))
	for _, el := range c.m {
		entries = append(entries, el.Value.(*lruItem).entry)
	}
	c.mu.Unlock()
	var errs []error
	for _, e := range entries {
		// once.Do on a completed entry is an immediate no-op that also
		// publishes e.err; on an in-flight one it waits for the fill.
		e.once.Do(func() {})
		if e.err != nil {
			errs = append(errs, e.err)
		}
	}
	return errs
}

// Len reports the number of memoized entries (for tests and diagnostics).
func (c *ReplayCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats snapshots the hit/miss/eviction counters. Safe on a nil receiver
// (returns zeros).
func (c *ReplayCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: len(c.m)}
}
