package dimemas

import (
	"container/list"
	"sync"

	"repro/internal/trace"
)

// replayKey identifies one baseline (all-ranks-at-FMax) replay: the trace
// (by identity — traces are immutable once simulated), an optional slice
// discriminator for per-iteration replays, and every simulation input the
// result depends on.
type replayKey struct {
	tr       *trace.Trace
	slice    int // -1 for the whole trace; iteration index for slices
	beta     float64
	fmax     float64
	platform Platform
	timeline bool
}

type replayEntry struct {
	once sync.Once
	res  *Result
	err  error
}

// lruItem pairs a key with its entry so eviction from the list can also
// delete the map slot.
type lruItem struct {
	key   replayKey
	entry *replayEntry
}

// CacheStats is a point-in-time snapshot of a ReplayCache's counters.
type CacheStats struct {
	// Hits counts lookups that found a memoized (or in-flight) replay.
	Hits int64
	// Misses counts lookups that had to start a fresh replay.
	Misses int64
	// Evictions counts entries dropped by the LRU bound.
	Evictions int64
	// Entries is the current number of memoized replays.
	Entries int
}

// ReplayCache memoizes baseline replays — simulations with Options.Freqs ==
// nil, i.e. every rank at FMax — keyed by (trace, β, FMax, platform). Every
// analysis pipeline starts from exactly this replay, and sweeps re-run it
// once per variant on the same trace; the cache computes it once and shares
// the Result.
//
// Cached Results are shared: callers must treat Compute, Finish and
// Timeline as read-only. Keying is by trace identity, so traces must not be
// mutated after their first cached replay. Safe for concurrent use;
// concurrent misses on the same key are single-flighted.
//
// A cache built with NewReplayCacheWithLimit evicts the least recently used
// replay once it holds more than the configured number of entries, so
// long-running processes (e.g. the pwrsimd daemon) hold a bounded working
// set. An evicted in-flight replay still completes for the callers already
// waiting on it; later lookups simply recompute it.
type ReplayCache struct {
	mu        sync.Mutex
	max       int // 0 means unbounded
	m         map[replayKey]*list.Element
	lru       *list.List // front = most recently used; values are *lruItem
	hits      int64
	misses    int64
	evictions int64
}

// NewReplayCache returns an empty, unbounded cache.
func NewReplayCache() *ReplayCache { return NewReplayCacheWithLimit(0) }

// NewReplayCacheWithLimit returns an empty cache bounded to at most
// maxEntries memoized replays (LRU eviction). maxEntries ≤ 0 means
// unbounded.
func NewReplayCacheWithLimit(maxEntries int) *ReplayCache {
	if maxEntries < 0 {
		maxEntries = 0
	}
	return &ReplayCache{
		max: maxEntries,
		m:   make(map[replayKey]*list.Element),
		lru: list.New(),
	}
}

// Original returns the memoized baseline replay of t under opts, simulating
// it on first use. A nil receiver, or options carrying explicit per-rank
// frequencies (which the cache does not index), degrade to a plain
// uncached Simulate call, so callers can thread an optional cache without
// branching.
func (c *ReplayCache) Original(t *trace.Trace, p Platform, opts Options) (*Result, error) {
	return c.original(t, -1, t, p, opts)
}

// OriginalSlice is Original for a per-iteration sub-trace: sub must be
// parent.Slice(iteration, iteration+1). Keying on (parent, iteration)
// instead of the sub-trace pointer lets repeated emulations of the same
// parent trace (which re-slice it every run) share the replays.
func (c *ReplayCache) OriginalSlice(parent *trace.Trace, iteration int, sub *trace.Trace, p Platform, opts Options) (*Result, error) {
	return c.original(parent, iteration, sub, p, opts)
}

func (c *ReplayCache) original(keyTrace *trace.Trace, slice int, sim *trace.Trace, p Platform, opts Options) (*Result, error) {
	if c == nil || opts.Freqs != nil {
		return Simulate(sim, p, opts)
	}
	k := replayKey{
		tr:       keyTrace,
		slice:    slice,
		beta:     opts.Beta,
		fmax:     opts.FMax,
		platform: p,
		timeline: opts.RecordTimeline,
	}
	c.mu.Lock()
	var e *replayEntry
	if el, ok := c.m[k]; ok {
		c.hits++
		c.lru.MoveToFront(el)
		e = el.Value.(*lruItem).entry
	} else {
		c.misses++
		e = &replayEntry{}
		c.m[k] = c.lru.PushFront(&lruItem{key: k, entry: e})
		if c.max > 0 && c.lru.Len() > c.max {
			back := c.lru.Back()
			c.lru.Remove(back)
			delete(c.m, back.Value.(*lruItem).key)
			c.evictions++
		}
	}
	c.mu.Unlock()
	e.once.Do(func() { e.res, e.err = Simulate(sim, p, opts) })
	return e.res, e.err
}

// Len reports the number of memoized replays (for tests and diagnostics).
func (c *ReplayCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats snapshots the hit/miss/eviction counters. Safe on a nil receiver
// (returns zeros).
func (c *ReplayCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: len(c.m)}
}
