package dimemas

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/faults"
	"repro/internal/stagerr"
)

// TestRetimeBatchMatchesRetime pins every candidate row of a batch —
// including nil entries, duplicate vectors and batches spanning several
// internal chunks — to the bits of an individual Retime.
func TestRetimeBatchMatchesRetime(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		for _, n := range []int{2, 4, 8} {
			for pi, p := range equivPlatforms() {
				tr := randomValidTrace(seed*100+int64(n), n, 3, p.EagerLimit)
				rng := rand.New(rand.NewSource(seed*131 + int64(n)))
				for _, beta := range []float64{0, 0.5} {
					opts := Options{Beta: beta, FMax: 2.3}
					sk, err := BuildSkeleton(tr, p, opts)
					if err != nil {
						t.Fatalf("seed=%d n=%d platform=%d beta=%v: BuildSkeleton: %v", seed, n, pi, beta, err)
					}
					// batchChunk+3 candidates forces a short tail chunk.
					sets := make([][]float64, batchChunk+3)
					for c := range sets {
						switch c % 4 {
						case 0:
							sets[c] = nil
						case 1:
							sets[c] = randomGearVector(rng, n)
						default:
							if c > 1 && sets[c-1] != nil {
								sets[c] = sets[c-1] // duplicate vector
							} else {
								sets[c] = randomGearVector(rng, n)
							}
						}
					}
					batch, err := sk.RetimeBatch(sets)
					if err != nil {
						t.Fatalf("RetimeBatch: %v", err)
					}
					if batch.NumCandidates != len(sets) || batch.NumRanks != n {
						t.Fatalf("batch dims %d×%d, want %d×%d", batch.NumCandidates, batch.NumRanks, len(sets), n)
					}
					for c := range sets {
						want, err := sk.Retime(sets[c], false)
						if err != nil {
							t.Fatalf("candidate %d: Retime: %v", c, err)
						}
						got := batch.At(c)
						label := fmt.Sprintf("seed=%d n=%d platform=%d beta=%v candidate=%d", seed, n, pi, beta, c)
						mustEqualResults(t, label, &got, want)
					}
				}
			}
		}
	}
}

func TestRetimeBatchIntoReusesArrays(t *testing.T) {
	p := DefaultPlatform()
	tr := randomValidTrace(55, 8, 4, p.EagerLimit)
	sk, err := BuildSkeleton(tr, p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	sets := make([][]float64, 10)
	for c := range sets {
		sets[c] = randomGearVector(rng, 8)
	}
	var res BatchResult
	if err := sk.RetimeBatchInto(&res, sets); err != nil {
		t.Fatal(err)
	}
	first := &res.Finish[0]
	if err := sk.RetimeBatchInto(&res, sets[:8]); err != nil {
		t.Fatal(err)
	}
	if first != &res.Finish[0] {
		t.Error("RetimeBatchInto reallocated the Finish array")
	}
	if res.NumCandidates != 8 {
		t.Errorf("NumCandidates = %d, want 8", res.NumCandidates)
	}
	// Empty batches are legal and cheap.
	if err := sk.RetimeBatchInto(&res, nil); err != nil {
		t.Fatal(err)
	}
	if res.NumCandidates != 0 || len(res.Time) != 0 {
		t.Errorf("empty batch left NumCandidates=%d len(Time)=%d", res.NumCandidates, len(res.Time))
	}
}

func TestRetimeBatchValidation(t *testing.T) {
	p := DefaultPlatform()
	tr := randomValidTrace(77, 4, 3, p.EagerLimit)
	sk, err := BuildSkeleton(tr, p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		sets [][]float64
		want string
	}{
		{[][]float64{nil, {1, 1, 1}}, "dimemas: candidate 1: 3 frequencies for 4 ranks"},
		{[][]float64{{1, 1, 1, 1}, {1, -1, 1, 1}}, "dimemas: candidate 1: rank 1 has invalid frequency -1"},
		{[][]float64{{0, 1, 1, 1}}, "dimemas: candidate 0: rank 0 has invalid frequency 0"},
	}
	for i, c := range cases {
		_, err := sk.RetimeBatch(c.sets)
		if err == nil {
			t.Fatalf("case %d: expected error", i)
		}
		if err.Error() != c.want {
			t.Errorf("case %d: error %q, want %q", i, err, c.want)
		}
		if stage, ok := stagerr.StageOf(err); !ok || stage != stagerr.Validate {
			t.Errorf("case %d: stage %q, want validate", i, stage)
		}
	}
}

func TestRetimeBatchFaultInjection(t *testing.T) {
	p := DefaultPlatform()
	tr := randomValidTrace(88, 4, 3, p.EagerLimit)
	sk, err := BuildSkeleton(tr, p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	faults.Enable(faults.NewRegistry(7, map[faults.Point]uint64{faults.Retime: 1}))
	defer faults.Disable()
	_, err = sk.RetimeBatch([][]float64{nil})
	if err == nil {
		t.Fatal("expected injected fault")
	}
	if !faults.IsInjected(err) {
		t.Fatalf("error %v not marked as injected", err)
	}
	if stage, ok := stagerr.StageOf(err); !ok || stage != stagerr.Retime {
		t.Fatalf("fault stage = %q, want %q", stage, stagerr.Retime)
	}
}
