// Package dimemas is a deterministic replay simulator for message-passing
// traces on a configurable parallel platform, playing the role Dimemas plays
// in the paper's methodology (§4): given a trace whose computation bursts
// have been rescaled for per-process DVFS frequencies, it produces the
// execution time of the whole application and per-rank compute/communication
// breakdowns.
//
// The platform model is the classic latency/bandwidth (Hockney) one that
// Dimemas uses: a point-to-point message of b bytes costs L + b/BW on the
// wire, small messages travel eagerly (the sender does not block), large
// messages use a rendezvous protocol (the transfer cannot start before the
// receiver posts the matching receive), and collectives cost a logarithmic
// or linear number of such stages depending on the operation.
package dimemas

import (
	"math"
	"math/bits"

	"repro/internal/stagerr"

	"repro/internal/trace"
)

// Platform describes the simulated machine's communication capabilities.
type Platform struct {
	// Latency is the end-to-end latency of one message, in seconds.
	Latency float64
	// Bandwidth is the link bandwidth in bytes per second.
	Bandwidth float64
	// EagerLimit is the largest message size (bytes) sent eagerly; larger
	// messages use the rendezvous protocol.
	EagerLimit int64
	// Overhead is the CPU time a rank spends injecting or retiring one
	// point-to-point operation (seconds). It is charged to communication
	// time, not computation.
	Overhead float64
	// LinearAllToAll selects the linear (P−1 stages) model for all-to-all
	// and all-gather; when false a log₂ P model is used for them too
	// (ablation knob, the default matches Dimemas' linear exchange).
	LinearAllToAll bool
}

// DefaultPlatform returns Myrinet-class parameters matching the paper's
// PowerPC/Myrinet cluster era: 7 µs latency, 250 MB/s bandwidth, 32 KiB
// eager limit, 1 µs per-call CPU overhead.
func DefaultPlatform() Platform {
	return Platform{
		Latency:        7e-6,
		Bandwidth:      250e6,
		EagerLimit:     32 << 10,
		Overhead:       1e-6,
		LinearAllToAll: true,
	}
}

// Validate checks the platform parameters.
func (p Platform) Validate() error {
	if p.Latency < 0 || math.IsNaN(p.Latency) {
		return stagerr.Errorf(stagerr.Validate, "dimemas: negative latency %v", p.Latency)
	}
	if p.Bandwidth <= 0 || math.IsNaN(p.Bandwidth) {
		return stagerr.Errorf(stagerr.Validate, "dimemas: bandwidth must be positive, got %v", p.Bandwidth)
	}
	if p.EagerLimit < 0 {
		return stagerr.Errorf(stagerr.Validate, "dimemas: negative eager limit %d", p.EagerLimit)
	}
	if p.Overhead < 0 || math.IsNaN(p.Overhead) {
		return stagerr.Errorf(stagerr.Validate, "dimemas: invalid overhead %v", p.Overhead)
	}
	return nil
}

// transfer returns the wire time of one b-byte message.
func (p Platform) transfer(b int64) float64 {
	return p.Latency + float64(b)/p.Bandwidth
}

func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// CollectiveCost returns the modeled duration of a collective over n ranks
// with a per-rank payload of b bytes, measured from the moment the last rank
// arrives.
func (p Platform) CollectiveCost(c trace.Collective, b int64, n int) float64 {
	return collCost(c, b, n, p.Latency, p.Bandwidth, p.LinearAllToAll)
}

// collCost is the collective model over one latency/bandwidth pair. Shared
// by the flat Platform path and the topology-aware Machine path (which feeds
// it the slowest link the collective's spanning tree crosses) so both price
// a collective with the identical arithmetic.
func collCost(c trace.Collective, b int64, n int, lat, bw float64, linear bool) float64 {
	if n <= 1 {
		return 0
	}
	stages := float64(ceilLog2(n))
	step := lat + float64(b)/bw
	switch c {
	case trace.CollBarrier:
		return stages * lat
	case trace.CollBcast, trace.CollReduce:
		return stages * step
	case trace.CollAllReduce:
		// Reduce followed by broadcast.
		return 2 * stages * step
	case trace.CollAllGather, trace.CollAllToAll:
		if linear {
			return float64(n-1) * step
		}
		return stages * step
	default:
		return stages * step
	}
}
