package dimemas

// Golden-equivalence tests: the event-driven engine must be bit-identical —
// not merely numerically close — to the original round-robin polling engine
// (simulateReference) for every valid trace, including recorded timelines
// and deadlock diagnostics. Every number the repo reports flows through
// Simulate, so any divergence here is a correctness bug, not a tolerance
// issue.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/trace"
)

func mustEqualResults(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Time != want.Time {
		t.Fatalf("%s: Time %v != reference %v", label, got.Time, want.Time)
	}
	if len(got.Compute) != len(want.Compute) || len(got.Finish) != len(want.Finish) {
		t.Fatalf("%s: slice lengths differ", label)
	}
	for r := range want.Compute {
		if got.Compute[r] != want.Compute[r] {
			t.Fatalf("%s: rank %d Compute %v != reference %v", label, r, got.Compute[r], want.Compute[r])
		}
		if got.Finish[r] != want.Finish[r] {
			t.Fatalf("%s: rank %d Finish %v != reference %v", label, r, got.Finish[r], want.Finish[r])
		}
	}
	if (got.Timeline == nil) != (want.Timeline == nil) {
		t.Fatalf("%s: timeline presence differs", label)
	}
	for r := range want.Timeline {
		if len(got.Timeline[r]) != len(want.Timeline[r]) {
			t.Fatalf("%s: rank %d has %d segments, reference %d",
				label, r, len(got.Timeline[r]), len(want.Timeline[r]))
		}
		for i, seg := range want.Timeline[r] {
			if got.Timeline[r][i] != seg {
				t.Fatalf("%s: rank %d segment %d = %+v, reference %+v",
					label, r, i, got.Timeline[r][i], seg)
			}
		}
	}
}

// randomValidTrace builds a deterministic pseudo-random trace that exercises
// every record kind: computes with and without β overrides, eager and
// rendezvous point-to-point in ring and pairwise patterns, all collective
// kinds, and iteration markers. n must be even; the even-sends-first
// orderings keep it deadlock free under blocking semantics.
func randomValidTrace(seed int64, n, iters int, eagerLimit int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := trace.New(fmt.Sprintf("rand-%d-%d", seed, n), n)
	msgBytes := func() int64 {
		switch rng.Intn(4) {
		case 0:
			return rng.Int63n(eagerLimit/2 + 1) // clearly eager
		case 1:
			return eagerLimit // boundary: still eager (limit is inclusive)
		case 2:
			return eagerLimit + 1 // boundary: smallest rendezvous
		default:
			return eagerLimit * (2 + rng.Int63n(8)) // clearly rendezvous
		}
	}
	for it := 0; it < iters; it++ {
		// Compute phase: 1–3 bursts per rank, some with explicit β.
		for r := 0; r < n; r++ {
			for b := rng.Intn(3) + 1; b > 0; b-- {
				if rng.Intn(3) == 0 {
					tr.Add(r, trace.ComputeBeta(rng.Float64()*2, rng.Float64()))
				} else {
					tr.Add(r, trace.Compute(rng.Float64()*2))
				}
			}
		}
		// Ring halo exchange, even ranks send first.
		ringBytes := msgBytes()
		for r := 0; r < n; r++ {
			right, left := (r+1)%n, (r-1+n)%n
			if r%2 == 0 {
				tr.Add(r, trace.Send(right, ringBytes, it), trace.Recv(left, ringBytes, it))
			} else {
				tr.Add(r, trace.Recv(left, ringBytes, it), trace.Send(right, ringBytes, it))
			}
		}
		// Pairwise exchange between 2k and 2k+1 on a different tag.
		if rng.Intn(2) == 0 {
			pairBytes := msgBytes()
			for r := 0; r+1 < n; r += 2 {
				tr.Add(r, trace.Send(r+1, pairBytes, 1000+it), trace.Recv(r+1, pairBytes, 2000+it))
				tr.Add(r+1, trace.Recv(r, pairBytes, 1000+it), trace.Send(r, pairBytes, 2000+it))
			}
		}
		// A collective on every rank, random kind and payload.
		if rng.Intn(2) == 0 {
			coll := trace.Collective(rng.Intn(6))
			collBytes := rng.Int63n(4096)
			for r := 0; r < n; r++ {
				tr.Add(r, trace.Coll(coll, collBytes))
			}
		}
		for r := 0; r < n; r++ {
			tr.Add(r, trace.IterMark())
		}
	}
	return tr
}

func equivPlatforms() []Platform {
	overheadHeavy := Platform{Latency: 1e-3, Bandwidth: 1e6, EagerLimit: 512, Overhead: 5e-4, LinearAllToAll: false}
	return []Platform{flatPlatform(), DefaultPlatform(), overheadHeavy}
}

func TestEventEngineMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		for _, n := range []int{2, 4, 8} {
			for pi, p := range equivPlatforms() {
				tr := randomValidTrace(seed*100+int64(n), n, 3, p.EagerLimit)
				rng := rand.New(rand.NewSource(seed))
				freqSets := [][]float64{nil}
				fs := make([]float64, n)
				for i := range fs {
					fs[i] = 0.8 + rng.Float64()*1.8
				}
				freqSets = append(freqSets, fs)
				for _, beta := range []float64{0, 0.5, 1} {
					for _, freqs := range freqSets {
						for _, timeline := range []bool{false, true} {
							opts := Options{Beta: beta, FMax: 2.3, Freqs: freqs, RecordTimeline: timeline}
							label := fmt.Sprintf("seed=%d n=%d platform=%d beta=%v freqs=%v timeline=%v",
								seed, n, pi, beta, freqs != nil, timeline)
							want, errW := simulateReference(tr, p, opts)
							got, errG := Simulate(tr, p, opts)
							if (errW == nil) != (errG == nil) {
								t.Fatalf("%s: err %v vs reference %v", label, errG, errW)
							}
							if errW != nil {
								continue
							}
							mustEqualResults(t, label, got, want)
						}
					}
				}
			}
		}
	}
}

func TestEventEngineMatchesReferenceOnHalo(t *testing.T) {
	loads := []float64{1, 2.5, 0.25, 4, 3, 0.5, 2, 1.5}
	tr := haloTrace(8, loads, 50000, 5) // rendezvous-size messages on DefaultPlatform
	for _, p := range equivPlatforms() {
		opts := DefaultOptions()
		opts.RecordTimeline = true
		want, err := simulateReference(tr, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Simulate(tr, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualResults(t, "halo", got, want)
	}
}

func TestDeadlockDiagnosticMatchesReference(t *testing.T) {
	tr := trace.New("dl", 2)
	tr.Add(0, trace.Send(1, 200, 0), trace.Recv(1, 200, 0))
	tr.Add(1, trace.Send(0, 200, 0), trace.Recv(0, 200, 0))
	_, errW := simulateReference(tr, flatPlatform(), DefaultOptions())
	_, errG := Simulate(tr, flatPlatform(), DefaultOptions())
	if errW == nil || errG == nil {
		t.Fatalf("expected deadlock from both engines, got %v / %v", errW, errG)
	}
	if errW.Error() != errG.Error() {
		t.Errorf("deadlock diagnostics differ:\n new: %s\n ref: %s", errG, errW)
	}
}

// TestReplayIndexInvalidation ensures a trace extended after its first
// replay is re-indexed instead of replayed against the stale channel table.
func TestReplayIndexInvalidation(t *testing.T) {
	tr := trace.New("grow", 2)
	tr.Add(0, trace.Compute(1))
	tr.Add(1, trace.Compute(2))
	first, err := Simulate(tr, flatPlatform(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if first.Time != 2 {
		t.Fatalf("Time = %v, want 2", first.Time)
	}
	tr.Add(0, trace.Send(1, 10, 0))
	tr.Add(1, trace.Recv(0, 10, 0), trace.Compute(3))
	want, err := simulateReference(tr, flatPlatform(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Simulate(tr, flatPlatform(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "after growth", got, want)
}

// TestConcurrentSimulateSameTrace replays one trace from many goroutines:
// the shared cached index plus pooled contexts must stay bit-deterministic.
func TestConcurrentSimulateSameTrace(t *testing.T) {
	tr := randomValidTrace(42, 8, 4, DefaultPlatform().EagerLimit)
	want, err := simulateReference(tr, DefaultPlatform(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]*Result, 16)
	errs := make([]error, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Simulate(tr, DefaultPlatform(), DefaultOptions())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
		mustEqualResults(t, fmt.Sprintf("goroutine %d", i), results[i], want)
	}
}

func TestReplayCacheSharesBaseline(t *testing.T) {
	tr := randomValidTrace(7, 4, 2, DefaultPlatform().EagerLimit)
	cache := NewReplayCache()
	opts := DefaultOptions()
	a, err := cache.Original(tr, DefaultPlatform(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cache.Original(tr, DefaultPlatform(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second Original did not return the memoized Result")
	}
	if cache.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", cache.Len())
	}
	// A different platform is a different key.
	if _, err := cache.Original(tr, flatPlatform(), opts); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2", cache.Len())
	}
	// Explicit frequencies bypass the cache entirely.
	withFreqs := opts
	withFreqs.Freqs = []float64{2.3, 2.3, 2.3, 2.3}
	if _, err := cache.Original(tr, DefaultPlatform(), withFreqs); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 2 {
		t.Errorf("Freqs replay was cached: %d entries", cache.Len())
	}
	// Nil caches degrade to plain simulation.
	var nilCache *ReplayCache
	res, err := nilCache.Original(tr, DefaultPlatform(), opts)
	if err != nil || res == nil {
		t.Fatalf("nil cache: %v, %v", res, err)
	}
	mustEqualResults(t, "nil cache", res, a)
}

func TestReplayCacheSliceKeying(t *testing.T) {
	tr := randomValidTrace(11, 4, 3, DefaultPlatform().EagerLimit)
	cache := NewReplayCache()
	opts := DefaultOptions()
	// Re-slicing the same iteration must hit the (parent, iteration) key
	// even though the sub-trace pointers differ.
	sub1, err := tr.Slice(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := tr.Slice(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := cache.OriginalSlice(tr, 1, sub1, DefaultPlatform(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cache.OriginalSlice(tr, 1, sub2, DefaultPlatform(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("re-sliced iteration missed the cache")
	}
	// A different iteration, and the whole trace, are distinct keys.
	sub0, err := tr.Slice(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cache.OriginalSlice(tr, 0, sub0, DefaultPlatform(), opts); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Original(tr, DefaultPlatform(), opts); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 3 {
		t.Errorf("cache holds %d entries, want 3", cache.Len())
	}
}
