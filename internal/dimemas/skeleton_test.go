package dimemas

// Golden-equivalence tests for the timing-skeleton retimer: Retime must be
// bit-identical — not merely numerically close — to Simulate for every valid
// trace and every per-rank gear vector, including recorded timelines, and
// skeleton construction must surface the identical deadlock diagnostic.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/trace"
)

// randomGearVector draws per-rank frequencies across the interesting range,
// including over-clocking and far-below-nominal gears.
func randomGearVector(rng *rand.Rand, n int) []float64 {
	fs := make([]float64, n)
	for i := range fs {
		fs[i] = 0.4 + rng.Float64()*2.4
	}
	return fs
}

func TestRetimeMatchesSimulate(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		for _, n := range []int{2, 4, 8} {
			for pi, p := range equivPlatforms() {
				tr := randomValidTrace(seed*100+int64(n), n, 3, p.EagerLimit)
				rng := rand.New(rand.NewSource(seed * 31))
				for _, beta := range []float64{0, 0.5, 1} {
					opts := Options{Beta: beta, FMax: 2.3}
					sk, err := BuildSkeleton(tr, p, opts)
					if err != nil {
						t.Fatalf("seed=%d n=%d platform=%d beta=%v: BuildSkeleton: %v", seed, n, pi, beta, err)
					}
					freqSets := [][]float64{nil, randomGearVector(rng, n), randomGearVector(rng, n)}
					for fi, freqs := range freqSets {
						for _, timeline := range []bool{false, true} {
							label := fmt.Sprintf("seed=%d n=%d platform=%d beta=%v freqs=%d timeline=%v",
								seed, n, pi, beta, fi, timeline)
							simOpts := opts
							simOpts.Freqs = freqs
							simOpts.RecordTimeline = timeline
							want, err := Simulate(tr, p, simOpts)
							if err != nil {
								t.Fatalf("%s: Simulate: %v", label, err)
							}
							got, err := sk.Retime(freqs, timeline)
							if err != nil {
								t.Fatalf("%s: Retime: %v", label, err)
							}
							mustEqualResults(t, label, got, want)
						}
					}
				}
			}
		}
	}
}

func TestRetimeIntoReusesResult(t *testing.T) {
	p := DefaultPlatform()
	tr := randomValidTrace(99, 8, 4, p.EagerLimit)
	opts := DefaultOptions()
	sk, err := BuildSkeleton(tr, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var res Result
	for i := 0; i < 5; i++ {
		freqs := randomGearVector(rng, 8)
		simOpts := opts
		simOpts.Freqs = freqs
		want, err := Simulate(tr, p, simOpts)
		if err != nil {
			t.Fatal(err)
		}
		if err := sk.RetimeInto(&res, freqs); err != nil {
			t.Fatal(err)
		}
		mustEqualResults(t, fmt.Sprintf("reuse %d", i), &res, want)
	}
	// The backing arrays must be reused across calls.
	first := &res.Compute[0]
	if err := sk.RetimeInto(&res, nil); err != nil {
		t.Fatal(err)
	}
	if first != &res.Compute[0] {
		t.Error("RetimeInto reallocated the Compute slice")
	}
}

func TestRetimeConcurrentSameSkeleton(t *testing.T) {
	p := DefaultPlatform()
	tr := randomValidTrace(123, 8, 4, p.EagerLimit)
	opts := DefaultOptions()
	sk, err := BuildSkeleton(tr, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	freqs := randomGearVector(rng, 8)
	simOpts := opts
	simOpts.Freqs = freqs
	want, err := Simulate(tr, p, simOpts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]*Result, 16)
	errs := make([]error, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = sk.Retime(freqs, false)
		}(i)
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		mustEqualResults(t, fmt.Sprintf("goroutine %d", i), results[i], want)
	}
}

func TestBuildSkeletonDeadlockDiagnosticMatchesSimulate(t *testing.T) {
	traces := []*trace.Trace{}
	// Classic head-to-head rendezvous deadlock.
	dl := trace.New("dl", 2)
	dl.Add(0, trace.Send(1, 200, 0), trace.Recv(1, 200, 0))
	dl.Add(1, trace.Send(0, 200, 0), trace.Recv(0, 200, 0))
	traces = append(traces, dl)
	// Recv before any send on the channel while the peer waits in a
	// collective — mixed blocking kinds in the diagnostic.
	mixed := trace.New("mixed", 3)
	mixed.Add(0, trace.Recv(1, 10, 7), trace.Coll(trace.CollBarrier, 0))
	mixed.Add(1, trace.Coll(trace.CollBarrier, 0), trace.Send(0, 10, 7))
	mixed.Add(2, trace.Coll(trace.CollBarrier, 0))
	traces = append(traces, mixed)
	for _, tr := range traces {
		_, simErr := Simulate(tr, flatPlatform(), DefaultOptions())
		_, skelErr := BuildSkeleton(tr, flatPlatform(), DefaultOptions())
		if simErr == nil || skelErr == nil {
			t.Fatalf("%s: expected deadlock from both, got %v / %v", tr.App, simErr, skelErr)
		}
		if simErr.Error() != skelErr.Error() {
			t.Errorf("%s: diagnostics differ:\n skeleton: %s\n simulate: %s", tr.App, skelErr, simErr)
		}
	}
}

// TestRetimeScaledMatchesSimulateScaledTrace is the golden-equivalence
// check of the load-scaled retimer: RetimeScaled over the base trace's
// skeleton must be bit-identical to Simulate over the corresponding
// ScaleCompute'd trace — the property that lets one skeleton replay a whole
// family of load-drifted iterations.
func TestRetimeScaledMatchesSimulateScaledTrace(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		for _, n := range []int{2, 4, 8} {
			for pi, p := range equivPlatforms() {
				tr := randomValidTrace(seed*100+int64(n), n, 3, p.EagerLimit)
				rng := rand.New(rand.NewSource(seed * 77))
				opts := Options{Beta: 0.5, FMax: 2.3}
				sk, err := BuildSkeleton(tr, p, opts)
				if err != nil {
					t.Fatalf("seed=%d n=%d platform=%d: BuildSkeleton: %v", seed, n, pi, err)
				}
				for trial := 0; trial < 3; trial++ {
					scale := make([]float64, n)
					for r := range scale {
						scale[r] = 0.3 + rng.Float64()*1.8
					}
					if trial == 2 {
						scale[rng.Intn(n)] = 0 // a rank whose load vanished
					}
					scaled := tr.ScaleCompute(func(r int, _ trace.Record) float64 { return scale[r] })
					for fi, freqs := range [][]float64{nil, randomGearVector(rng, n)} {
						for _, timeline := range []bool{false, true} {
							label := fmt.Sprintf("seed=%d n=%d platform=%d trial=%d freqs=%d timeline=%v",
								seed, n, pi, trial, fi, timeline)
							simOpts := opts
							simOpts.Freqs = freqs
							simOpts.RecordTimeline = timeline
							want, err := Simulate(scaled, p, simOpts)
							if err != nil {
								t.Fatalf("%s: Simulate: %v", label, err)
							}
							got, err := sk.RetimeScaled(freqs, scale, timeline)
							if err != nil {
								t.Fatalf("%s: RetimeScaled: %v", label, err)
							}
							mustEqualResults(t, label, got, want)
						}
					}
				}
				// An all-ones scale is bit-identical to the unscaled retimer.
				ones := make([]float64, n)
				for r := range ones {
					ones[r] = 1
				}
				want, err := sk.Retime(nil, false)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sk.RetimeScaled(nil, ones, false)
				if err != nil {
					t.Fatal(err)
				}
				mustEqualResults(t, fmt.Sprintf("seed=%d n=%d platform=%d ones", seed, n, pi), got, want)
			}
		}
	}
}

func TestRetimeScaledValidatesScale(t *testing.T) {
	p := DefaultPlatform()
	tr := randomValidTrace(7, 4, 2, p.EagerLimit)
	sk, err := BuildSkeleton(tr, p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sk.RetimeScaled(nil, []float64{1, 1}, false); err == nil {
		t.Error("wrong-length scale vector accepted")
	}
	if _, err := sk.RetimeScaled(nil, []float64{1, -0.5, 1, 1}, false); err == nil {
		t.Error("negative scale accepted")
	}
	if _, err := sk.RetimeScaled(nil, []float64{1, math.NaN(), 1, 1}, false); err == nil {
		t.Error("NaN scale accepted")
	}
	if _, err := sk.RetimeScaled(nil, []float64{1, math.Inf(1), 1, 1}, false); err == nil {
		t.Error("+Inf scale accepted")
	}
}

func TestReplayCacheSkeletonForSlice(t *testing.T) {
	p := DefaultPlatform()
	tr := randomValidTrace(12, 4, 3, p.EagerLimit)
	cache := NewReplayCache()
	opts := DefaultOptions()
	subA, err := tr.Slice(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := cache.SkeletonForSlice(tr, 0, subA, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	// A re-slice of the same iteration is a distinct *Trace, but the
	// (parent, iteration) key makes it hit the memoized skeleton.
	subB, err := tr.Slice(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cache.SkeletonForSlice(tr, 0, subB, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("re-sliced iteration did not hit the memoized skeleton")
	}
	// A different iteration index gets its own entry, as does the
	// whole-trace skeleton.
	sub1, err := tr.Slice(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cache.SkeletonForSlice(tr, 1, sub1, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("iteration 1 shared iteration 0's skeleton")
	}
	if _, err := cache.SkeletonFor(tr, p, opts); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 3 {
		t.Errorf("cache holds %d entries, want 3 (two slices + whole trace)", cache.Len())
	}
	// The memoized slice skeleton retimes bit-identically to simulating
	// the slice directly.
	want, err := Simulate(subA, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Retime(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "slice skeleton", got, want)
	// Nil receivers degrade to an uncached build.
	var nilCache *ReplayCache
	if sk, err := nilCache.SkeletonForSlice(tr, 0, subA, p, opts); err != nil || sk == nil {
		t.Fatalf("nil cache SkeletonForSlice: %v, %v", sk, err)
	}
}

func TestRetimeValidatesFrequencies(t *testing.T) {
	p := DefaultPlatform()
	tr := randomValidTrace(3, 4, 2, p.EagerLimit)
	sk, err := BuildSkeleton(tr, p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sk.Retime([]float64{1, 2}, false); err == nil {
		t.Error("wrong-length gear vector accepted")
	}
	if _, err := sk.Retime([]float64{1, 2, -1, 2}, false); err == nil {
		t.Error("negative frequency accepted")
	}
}

func TestBuildSkeletonValidatesOptions(t *testing.T) {
	p := DefaultPlatform()
	tr := randomValidTrace(4, 4, 2, p.EagerLimit)
	if _, err := BuildSkeleton(tr, p, Options{Beta: 0.5, FMax: 0}); err == nil {
		t.Error("zero FMax accepted")
	}
	if _, err := BuildSkeleton(tr, p, Options{Beta: 1.5, FMax: 2.3}); err == nil {
		t.Error("beta > 1 accepted")
	}
	if _, err := BuildSkeleton(tr, p, Options{Beta: math.NaN(), FMax: 2.3}); err == nil {
		t.Error("NaN beta accepted")
	}
	if _, err := Simulate(tr, p, Options{Beta: math.NaN(), FMax: 2.3}); err == nil {
		t.Error("Simulate accepted NaN beta")
	}
	if _, err := Simulate(tr, p, Options{Beta: 0.5, FMax: math.NaN()}); err == nil {
		t.Error("Simulate accepted NaN FMax")
	}
	bad := Platform{Latency: -1, Bandwidth: 1}
	if _, err := BuildSkeleton(tr, bad, DefaultOptions()); err == nil {
		t.Error("invalid platform accepted")
	}
}

func TestReplayCacheSkeletonSharing(t *testing.T) {
	p := DefaultPlatform()
	tr := randomValidTrace(8, 4, 2, p.EagerLimit)
	cache := NewReplayCache()
	opts := DefaultOptions()
	a, err := cache.SkeletonFor(tr, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cache.SkeletonFor(tr, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second SkeletonFor did not return the memoized skeleton")
	}
	if cache.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", cache.Len())
	}
	// The skeleton entry shares the LRU with baseline replays but has its
	// own key: a baseline lookup must not collide with it.
	if _, err := cache.Original(tr, p, opts); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2 (skeleton + baseline)", cache.Len())
	}
	// Replay with explicit frequencies retimes off the cached skeleton and
	// stays bit-identical to Simulate.
	rng := rand.New(rand.NewSource(21))
	freqs := randomGearVector(rng, 4)
	simOpts := opts
	simOpts.Freqs = freqs
	want, err := Simulate(tr, p, simOpts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cache.Replay(tr, p, simOpts)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "cache.Replay", got, want)
	// Nil caches degrade to plain simulation for both entry points.
	var nilCache *ReplayCache
	res, err := nilCache.Replay(tr, p, simOpts)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "nil cache.Replay", res, want)
	if sk, err := nilCache.SkeletonFor(tr, p, opts); err != nil || sk == nil {
		t.Fatalf("nil cache SkeletonFor: %v, %v", sk, err)
	}
}

func TestReplayCacheDoesNotMemoizeCancellation(t *testing.T) {
	p := DefaultPlatform()
	tr := randomValidTrace(9, 4, 2, p.EagerLimit)
	cache := NewReplayCache()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.Ctx = ctx
	if _, err := cache.Original(tr, p, opts); !isCtxErr(err) {
		t.Fatalf("cancelled replay returned %v, want a context error", err)
	}
	if cache.Len() != 0 {
		t.Fatalf("cancelled replay was memoized (%d entries)", cache.Len())
	}
	// A later caller with a live context must get a real result.
	opts.Ctx = context.Background()
	res, err := cache.Original(tr, p, opts)
	if err != nil || res == nil {
		t.Fatalf("post-cancellation replay: %v, %v", res, err)
	}
	if cache.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", cache.Len())
	}
	// Same for skeletons.
	opts.Ctx = ctx
	if _, err := cache.SkeletonFor(tr, p, opts); !isCtxErr(err) {
		t.Fatalf("cancelled skeleton build returned %v, want a context error", err)
	}
	opts.Ctx = nil
	if _, err := cache.SkeletonFor(tr, p, opts); err != nil {
		t.Fatal(err)
	}
}

// trippingCtx reports itself live on the first Err() call (the replay's
// upfront check) and dead on every later one, so tests can prove the
// engines poll cancellation *inside* the record loop, not just between
// queue pops — a 2-rank compute-heavy trace retires whole rank streams in
// single steps.
type trippingCtx struct {
	context.Context
	calls int
}

func (c *trippingCtx) Err() error {
	c.calls++
	if c.calls > 1 {
		return context.Canceled
	}
	return nil
}

func TestCancellationInsideLongRankStreams(t *testing.T) {
	tr := trace.New("long", 2)
	for r := 0; r < 2; r++ {
		for i := 0; i < 2*cancelStride; i++ {
			tr.Add(r, trace.Compute(1e-6))
		}
	}
	opts := DefaultOptions()
	opts.Ctx = &trippingCtx{Context: context.Background()}
	if _, err := Simulate(tr, DefaultPlatform(), opts); !isCtxErr(err) {
		t.Errorf("Simulate on a long rank stream returned %v, want a context error", err)
	}
	opts.Ctx = &trippingCtx{Context: context.Background()}
	if _, err := BuildSkeleton(tr, DefaultPlatform(), opts); !isCtxErr(err) {
		t.Errorf("BuildSkeleton on a long rank stream returned %v, want a context error", err)
	}
}

func TestSimulateHonorsContext(t *testing.T) {
	p := DefaultPlatform()
	tr := randomValidTrace(10, 8, 4, p.EagerLimit)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.Ctx = ctx
	if _, err := Simulate(tr, p, opts); !isCtxErr(err) {
		t.Fatalf("Simulate under a dead context returned %v, want a context error", err)
	}
	if _, err := BuildSkeleton(tr, p, opts); !isCtxErr(err) {
		t.Fatalf("BuildSkeleton under a dead context returned %v, want a context error", err)
	}
	// A live context must not change the result.
	opts.Ctx = context.Background()
	got, err := Simulate(tr, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Simulate(tr, p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "live ctx", got, want)
}
