package dimemas

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/stagerr"
	"repro/internal/timemodel"
	"repro/internal/trace"
)

// State labels a timeline segment for visualization.
type State uint8

const (
	// StateCompute marks a computation burst.
	StateCompute State = iota
	// StateComm marks communication: MPI overhead, transfer and blocked time.
	StateComm
)

// Segment is one interval of a rank's timeline.
type Segment struct {
	Start, End float64
	State      State
}

// Options configure one simulation run.
type Options struct {
	// Beta is the default memory-boundedness for compute records without an
	// explicit override. Zero value 0 is a legal β; use DefaultOptions for
	// the paper's 0.5.
	Beta float64
	// FMax is the nominal top frequency all trace durations refer to.
	FMax float64
	// Freqs is the per-rank CPU frequency; nil means every rank runs at
	// FMax (the original execution).
	Freqs []float64
	// RecordTimeline enables per-rank segment collection (Figure 1).
	RecordTimeline bool
	// Ctx optionally bounds the replay: Simulate (and skeleton
	// construction) polls it periodically and aborts with its error once it
	// is done, so servers can stop paying for work whose request already
	// timed out. Nil means the replay always runs to completion. The
	// context never influences the simulated result — only whether the
	// replay finishes.
	Ctx context.Context
}

// DefaultOptions returns the paper's baseline: β = 0.5, fmax = 2.3 GHz,
// every rank at top frequency.
func DefaultOptions() Options {
	return Options{Beta: timemodel.DefaultBeta, FMax: 2.3}
}

// validateModel checks the model parameters shared by Simulate and
// BuildSkeleton. NaN is rejected explicitly: it slips through the range
// comparisons and would breed NaN clocks, on which the retimer's branch
// max and math.Max disagree.
func (o *Options) validateModel() error {
	if o.FMax <= 0 || math.IsNaN(o.FMax) {
		return stagerr.Errorf(stagerr.Validate, "dimemas: FMax must be positive, got %v", o.FMax)
	}
	if o.Beta < 0 || o.Beta > 1 || math.IsNaN(o.Beta) {
		return stagerr.Errorf(stagerr.Validate, "dimemas: beta %v outside [0, 1]", o.Beta)
	}
	return nil
}

// Result reports one simulated execution.
type Result struct {
	// Time is the execution time of the whole application (the last rank's
	// finish).
	Time float64
	// Compute is each rank's time spent computing (already rescaled for its
	// frequency).
	Compute []float64
	// Finish is each rank's local finish time.
	Finish []float64
	// Timeline holds per-rank segments when Options.RecordTimeline is set.
	Timeline [][]Segment
}

// Comm returns rank r's non-compute time over the whole run: the CPU is
// powered from t=0 to Result.Time, so everything that is not computation is
// communication, blocking or idle tail.
func (r *Result) Comm(rank int) float64 { return r.Time - r.Compute[rank] }

// ErrDeadlock reports that the replay stopped with blocked ranks.
var ErrDeadlock = errors.New("dimemas: deadlock")

type blockKind uint8

const (
	notBlocked blockKind = iota
	blockedRecv
	blockedSend
	blockedColl
)

// traceIndex is the one-time, platform-independent precomputation for a
// trace: its validation verdict, the flat channel table (every (src, dst,
// tag) triple gets a dense id), the per-record channel id, and the arena
// sizes. It is built on first replay and cached on the trace itself via
// trace.ReplayIndex, so repeated replays of the same immutable trace skip
// both validation and channel discovery entirely.
type traceIndex struct {
	err        error // cached Validate verdict
	nranks     int
	numColls   int       // collectives per rank (identical across ranks once valid)
	totalSends int       // arena size: one slot per send record
	chanOf     [][]int32 // [rank][record] dense channel id; -1 for non-p2p records
	chanBase   []int32   // per channel: first arena slot
	chanSrc    []int32   // per channel: sending rank (for rendezvous wake-ups)
}

// buildIndex scans the trace once. The map exists only here; the hot replay
// path sees nothing but dense slices.
func buildIndex(t *trace.Trace) any {
	idx := &traceIndex{nranks: t.NumRanks()}
	if err := t.Validate(); err != nil {
		idx.err = err
		return idx
	}
	type chanKey struct{ src, dst, tag int }
	ids := make(map[chanKey]int32)
	var counts, srcs []int32
	idx.chanOf = make([][]int32, len(t.Ranks))
	for r, recs := range t.Ranks {
		co := make([]int32, len(recs))
		ncoll := 0
		for i, rec := range recs {
			switch rec.Kind {
			case trace.KindSend, trace.KindRecv:
				k := chanKey{r, rec.Peer, rec.Tag}
				if rec.Kind == trace.KindRecv {
					k = chanKey{rec.Peer, r, rec.Tag}
				}
				id, ok := ids[k]
				if !ok {
					id = int32(len(counts))
					ids[k] = id
					counts = append(counts, 0)
					srcs = append(srcs, int32(k.src))
				}
				co[i] = id
				if rec.Kind == trace.KindSend {
					counts[id]++
					idx.totalSends++
				}
			case trace.KindColl:
				co[i] = -1
				ncoll++
			default:
				co[i] = -1
			}
		}
		if ncoll > idx.numColls {
			idx.numColls = ncoll
		}
		idx.chanOf[r] = co
	}
	idx.chanBase = make([]int32, len(counts))
	idx.chanSrc = srcs
	var base int32
	for c, cnt := range counts {
		idx.chanBase[c] = base
		base += cnt
	}
	return idx
}

// sendEntry is one posted send, stored by value in the per-run arena.
type sendEntry struct {
	ready      float64 // sender-side ready time (after overhead)
	end        float64 // rendezvous completion time
	bytes      int64
	rendezvous bool
	done       bool // rendezvous pairing completed
}

// chanState is the per-run view of one channel: a window into the send
// arena plus the identity of a receiver parked on it, if any.
type chanState struct {
	base   int32 // first arena slot (copied from the index for locality)
	posted int32 // sends posted so far
	paired int32 // sends consumed by receives so far
	waiter int32 // rank blocked in a recv on this channel; -1 when none
}

type collInstance struct {
	maxReady float64
	end      float64
	arrived  int32
	complete bool
}

type rankState struct {
	pc         int32
	collIdx    int32 // next collective index for this rank
	sendIdx    int32 // arena slot of the pending rendezvous send (blockedSend)
	blocked    blockKind
	clock      float64
	compute    float64
	blockStart float64
	segs       []Segment
}

// simContext holds all per-run scratch state. Contexts are recycled through
// a sync.Pool so steady-state replays allocate only the returned Result.
type simContext struct {
	ranks  []rankState
	chans  []chanState
	colls  []collInstance
	sends  []sendEntry
	queue  []int32 // ready queue: appended on wake, drained by a head cursor
	queued []bool  // queue membership per rank
	freqs  []float64
	// Cooperative cancellation: step polls Options.Ctx every cancelStride
	// retired records (a single step call can retire a rank's whole
	// stream, so polling only between queue pops is not enough).
	steps     int
	cancelled bool
}

// cancelStride is how many retired records may pass between context polls.
const cancelStride = 4096

var ctxPool = sync.Pool{New: func() any { return new(simContext) }}

// resetSlice returns s with length n and every element zeroed, reusing the
// backing array when it is large enough.
func resetSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

func (c *simContext) reset(idx *traceIndex) {
	c.ranks = resetSlice(c.ranks, idx.nranks)
	c.colls = resetSlice(c.colls, idx.numColls)
	c.sends = resetSlice(c.sends, idx.totalSends)
	c.queued = resetSlice(c.queued, idx.nranks)
	c.queue = c.queue[:0]
	if cap(c.chans) < len(idx.chanBase) {
		c.chans = make([]chanState, len(idx.chanBase))
	}
	c.chans = c.chans[:len(idx.chanBase)]
	for i := range c.chans {
		c.chans[i] = chanState{base: idx.chanBase[i], waiter: -1}
	}
	c.steps = 0
	c.cancelled = false
}

// Simulate replays the trace on the platform. It is deterministic: the same
// inputs always produce the same result, and the result is bit-identical to
// the original round-robin polling engine (the per-rank floating-point
// operation sequence is unchanged; only the scheduling of runnable ranks
// differs, and no arithmetic crosses rank boundaries except order-invariant
// max reductions).
func Simulate(t *trace.Trace, p Platform, opts Options) (*Result, error) {
	m := Machine{Base: p}
	return simulate(t, &m, opts)
}

// SimulateMachine is Simulate on the layered machine model: point-to-point
// wire times are resolved per (sender, receiver) pair through the topology
// layer, collectives are priced over the slowest spanned link, and each
// rank's compute bursts are stretched by 1/Efficiency[r] (the duration is
// scaled before the DVFS slowdown is applied, the same association
// Skeleton.RetimeScaled uses). A flat machine — both layers nil — is
// bit-identical to Simulate(t, m.Base, opts).
func SimulateMachine(t *trace.Trace, m Machine, opts Options) (*Result, error) {
	return simulate(t, &m, opts)
}

func simulate(t *trace.Trace, m *Machine, opts Options) (*Result, error) {
	if err := m.Base.Validate(); err != nil {
		return nil, err
	}
	idx := t.ReplayIndex(buildIndex).(*traceIndex)
	if idx.err != nil {
		return nil, stagerr.Wrap(stagerr.Validate, idx.err)
	}
	n := idx.nranks
	if !m.Flat() {
		if err := m.ValidateFor(n); err != nil {
			return nil, err
		}
	}
	if err := opts.validateModel(); err != nil {
		return nil, err
	}
	if opts.Freqs != nil {
		if len(opts.Freqs) != n {
			return nil, stagerr.Errorf(stagerr.Validate, "dimemas: %d frequencies for %d ranks", len(opts.Freqs), n)
		}
		for r, f := range opts.Freqs {
			if f <= 0 || math.IsNaN(f) {
				return nil, stagerr.Errorf(stagerr.Validate, "dimemas: rank %d has invalid frequency %v", r, f)
			}
		}
	}

	c := ctxPool.Get().(*simContext)
	defer ctxPool.Put(c)
	c.reset(idx)
	freqs := opts.Freqs
	if freqs == nil {
		c.freqs = resetSlice(c.freqs, n)
		for i := range c.freqs {
			c.freqs[i] = opts.FMax
		}
		freqs = c.freqs
	}
	scale := m.ScaleVector()

	// Every rank starts runnable, in rank order. After that, a rank is
	// revisited only when the event it is parked on fires: a send posted on
	// the channel its recv is waiting for, the pairing of its rendezvous
	// send, or the completion of its collective.
	for r := 0; r < n; r++ {
		c.queue = append(c.queue, int32(r))
		c.queued[r] = true
	}
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return nil, err
		}
	}
	for head := 0; head < len(c.queue); head++ {
		r := c.queue[head]
		c.queued[r] = false
		c.step(int(r), t, idx, m, &opts, freqs, scale)
		if c.cancelled {
			return nil, opts.Ctx.Err()
		}
	}
	for r := 0; r < n; r++ {
		if int(c.ranks[r].pc) < len(t.Ranks[r]) {
			return nil, stagerr.Wrap(stagerr.Retime, deadlockError(t, func(r int) int { return int(c.ranks[r].pc) }))
		}
	}

	res := &Result{
		Compute: make([]float64, n),
		Finish:  make([]float64, n),
	}
	if opts.RecordTimeline {
		res.Timeline = make([][]Segment, n)
	}
	for r := range c.ranks {
		res.Compute[r] = c.ranks[r].compute
		res.Finish[r] = c.ranks[r].clock
		if c.ranks[r].clock > res.Time {
			res.Time = c.ranks[r].clock
		}
		if opts.RecordTimeline {
			res.Timeline[r] = c.ranks[r].segs
			c.ranks[r].segs = nil // segments escape into the Result; drop them from the pooled context
		}
	}
	return res, nil
}

// wake marks a rank runnable. Spurious wakes are harmless: step re-checks
// the parked condition and returns immediately when it still holds.
func (c *simContext) wake(r int32) {
	if !c.queued[r] {
		c.queued[r] = true
		c.queue = append(c.queue, r)
	}
}

// step retires as many records as possible for rank r, parking it on the
// first event that has not fired yet and waking the ranks unblocked by its
// own progress.
func (c *simContext) step(r int, t *trace.Trace, idx *traceIndex, m *Machine, opts *Options, freqs, scale []float64) {
	rs := &c.ranks[r]
	recs := t.Ranks[r]
	chanOf := idx.chanOf[r]
	n := idx.nranks
	for int(rs.pc) < len(recs) {
		if opts.Ctx != nil {
			if c.steps++; c.steps%cancelStride == 0 && opts.Ctx.Err() != nil {
				c.cancelled = true
				return
			}
		}
		rec := &recs[rs.pc]
		switch rs.blocked {
		case blockedSend:
			e := &c.sends[rs.sendIdx]
			if !e.done {
				return
			}
			c.addSeg(rs, rs.blockStart, e.end, StateComm, opts)
			rs.clock = e.end
			rs.blocked = notBlocked
			rs.pc++
			continue
		case blockedColl:
			ci := &c.colls[rs.collIdx]
			if !ci.complete {
				return
			}
			c.addSeg(rs, rs.blockStart, ci.end, StateComm, opts)
			rs.clock = ci.end
			rs.collIdx++
			rs.blocked = notBlocked
			rs.pc++
			continue
		case blockedRecv:
			// Re-attempt the pairing below with the preserved block start.
		}

		switch rec.Kind {
		case trace.KindCompute:
			beta := rec.Beta
			if beta < 0 {
				beta = opts.Beta
			}
			dur := rec.Duration
			if scale != nil {
				// Capability stretch first, DVFS slowdown second — the
				// association RetimeScaled uses, so machine skeleton
				// retimes stay bit-identical to this replay.
				dur *= scale[r]
			}
			d := dur * timemodel.Slowdown(beta, opts.FMax, freqs[r])
			c.addSeg(rs, rs.clock, rs.clock+d, StateCompute, opts)
			rs.clock += d
			rs.compute += d
			rs.pc++

		case trace.KindSend:
			start := rs.clock
			rs.clock += m.Base.Overhead
			ch := &c.chans[chanOf[rs.pc]]
			si := ch.base + ch.posted
			ch.posted++
			e := &c.sends[si]
			*e = sendEntry{ready: rs.clock, bytes: rec.Bytes, rendezvous: rec.Bytes > m.Base.EagerLimit}
			if ch.waiter >= 0 {
				c.wake(ch.waiter)
				ch.waiter = -1
			}
			if e.rendezvous {
				rs.blocked = blockedSend
				rs.blockStart = start
				rs.sendIdx = si
				return
			}
			c.addSeg(rs, start, rs.clock, StateComm, opts)
			rs.pc++

		case trace.KindRecv:
			if rs.blocked != blockedRecv {
				rs.blockStart = rs.clock
				rs.clock += m.Base.Overhead
			}
			cid := chanOf[rs.pc]
			ch := &c.chans[cid]
			if ch.paired >= ch.posted {
				rs.blocked = blockedRecv
				ch.waiter = int32(r)
				return
			}
			e := &c.sends[ch.base+ch.paired]
			ch.paired++
			wire := m.transferPair(int(idx.chanSrc[cid]), r, e.bytes)
			if e.rendezvous {
				end := math.Max(rs.clock, e.ready) + wire
				e.done = true
				e.end = end
				rs.clock = end
				c.wake(idx.chanSrc[cid])
			} else {
				arrival := e.ready + wire
				rs.clock = math.Max(rs.clock, arrival)
			}
			c.addSeg(rs, rs.blockStart, rs.clock, StateComm, opts)
			rs.blocked = notBlocked
			rs.pc++

		case trace.KindColl:
			ci := &c.colls[rs.collIdx]
			ci.arrived++
			if rs.clock > ci.maxReady {
				ci.maxReady = rs.clock
			}
			if int(ci.arrived) == n {
				ci.complete = true
				ci.end = ci.maxReady + m.collectiveCost(rec.Coll, rec.Bytes, n)
				c.addSeg(rs, rs.clock, ci.end, StateComm, opts)
				rs.clock = ci.end
				collID := rs.collIdx
				rs.collIdx++
				rs.pc++
				for o := range c.ranks {
					if c.ranks[o].blocked == blockedColl && c.ranks[o].collIdx == collID {
						c.wake(int32(o))
					}
				}
				continue
			}
			rs.blocked = blockedColl
			rs.blockStart = rs.clock
			return

		case trace.KindIterMark:
			rs.pc++

		default:
			// Unreachable after Validate; defensive.
			rs.pc++
		}
	}
}

func (c *simContext) addSeg(rs *rankState, start, end float64, st State, opts *Options) {
	if !opts.RecordTimeline {
		return
	}
	rs.segs = appendSeg(rs.segs, start, end, st)
}

// appendSeg appends one timeline interval, merging it with the previous
// segment when contiguous and same state. Shared by the replay engine and
// the skeleton retimer so recorded timelines stay bit-identical.
func appendSeg(segs []Segment, start, end float64, st State) []Segment {
	if end <= start {
		return segs
	}
	if n := len(segs); n > 0 && segs[n-1].State == st && segs[n-1].End >= start-1e-15 {
		segs[n-1].End = end
		return segs
	}
	return append(segs, Segment{Start: start, End: end, State: st})
}

// deadlockError formats the blocked-ranks diagnostic from each rank's stuck
// program counter. Shared by the replay engine and skeleton construction so
// both surface the identical message for the same trace.
func deadlockError(t *trace.Trace, pc func(rank int) int) error {
	var sb strings.Builder
	for r := range t.Ranks {
		at := pc(r)
		if at >= len(t.Ranks[r]) {
			continue
		}
		rec := t.Ranks[r][at]
		fmt.Fprintf(&sb, " rank %d at record %d (%v)", r, at, rec.Kind)
	}
	return fmt.Errorf("%w:%s", ErrDeadlock, sb.String())
}
