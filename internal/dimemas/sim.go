package dimemas

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/timemodel"
	"repro/internal/trace"
)

// State labels a timeline segment for visualization.
type State uint8

const (
	// StateCompute marks a computation burst.
	StateCompute State = iota
	// StateComm marks communication: MPI overhead, transfer and blocked time.
	StateComm
)

// Segment is one interval of a rank's timeline.
type Segment struct {
	Start, End float64
	State      State
}

// Options configure one simulation run.
type Options struct {
	// Beta is the default memory-boundedness for compute records without an
	// explicit override. Zero value 0 is a legal β; use DefaultOptions for
	// the paper's 0.5.
	Beta float64
	// FMax is the nominal top frequency all trace durations refer to.
	FMax float64
	// Freqs is the per-rank CPU frequency; nil means every rank runs at
	// FMax (the original execution).
	Freqs []float64
	// RecordTimeline enables per-rank segment collection (Figure 1).
	RecordTimeline bool
}

// DefaultOptions returns the paper's baseline: β = 0.5, fmax = 2.3 GHz,
// every rank at top frequency.
func DefaultOptions() Options {
	return Options{Beta: timemodel.DefaultBeta, FMax: 2.3}
}

// Result reports one simulated execution.
type Result struct {
	// Time is the execution time of the whole application (the last rank's
	// finish).
	Time float64
	// Compute is each rank's time spent computing (already rescaled for its
	// frequency).
	Compute []float64
	// Finish is each rank's local finish time.
	Finish []float64
	// Timeline holds per-rank segments when Options.RecordTimeline is set.
	Timeline [][]Segment
}

// Comm returns rank r's non-compute time over the whole run: the CPU is
// powered from t=0 to Result.Time, so everything that is not computation is
// communication, blocking or idle tail.
func (r *Result) Comm(rank int) float64 { return r.Time - r.Compute[rank] }

// ErrDeadlock reports that the replay stopped with blocked ranks.
var ErrDeadlock = errors.New("dimemas: deadlock")

type blockKind uint8

const (
	notBlocked blockKind = iota
	blockedRecv
	blockedSend
	blockedColl
)

type chanKey struct{ src, dst, tag int }

type sendEntry struct {
	ready      float64 // sender-side ready time (after overhead)
	bytes      int64
	rendezvous bool
	done       bool    // rendezvous pairing completed
	end        float64 // rendezvous completion time
}

type channel struct {
	sends    []*sendEntry
	nextSend int // first unpaired entry
}

type collInstance struct {
	arrived  int
	maxReady float64
	complete bool
	end      float64
}

type rankState struct {
	pc         int
	clock      float64
	compute    float64
	blocked    blockKind
	blockStart float64
	sendEntry  *sendEntry // for blockedSend
	collIdx    int        // next collective index for this rank
	segs       []Segment
}

// Simulate replays the trace on the platform. It is deterministic: the same
// inputs always produce the same result.
func Simulate(t *trace.Trace, p Platform, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	n := t.NumRanks()
	if opts.FMax <= 0 {
		return nil, fmt.Errorf("dimemas: FMax must be positive, got %v", opts.FMax)
	}
	if opts.Beta < 0 || opts.Beta > 1 {
		return nil, fmt.Errorf("dimemas: beta %v outside [0, 1]", opts.Beta)
	}
	freqs := opts.Freqs
	if freqs == nil {
		freqs = make([]float64, n)
		for i := range freqs {
			freqs[i] = opts.FMax
		}
	}
	if len(freqs) != n {
		return nil, fmt.Errorf("dimemas: %d frequencies for %d ranks", len(freqs), n)
	}
	for r, f := range freqs {
		if f <= 0 || math.IsNaN(f) {
			return nil, fmt.Errorf("dimemas: rank %d has invalid frequency %v", r, f)
		}
	}

	ranks := make([]rankState, n)
	channels := map[chanKey]*channel{}
	var colls []*collInstance

	getChan := func(k chanKey) *channel {
		c := channels[k]
		if c == nil {
			c = &channel{}
			channels[k] = c
		}
		return c
	}
	getColl := func(i int) *collInstance {
		for len(colls) <= i {
			colls = append(colls, &collInstance{})
		}
		return colls[i]
	}
	addSeg := func(rs *rankState, start, end float64, st State) {
		if !opts.RecordTimeline || end <= start {
			return
		}
		// Merge with the previous segment when contiguous and same state.
		if n := len(rs.segs); n > 0 && rs.segs[n-1].State == st && rs.segs[n-1].End >= start-1e-15 {
			rs.segs[n-1].End = end
			return
		}
		rs.segs = append(rs.segs, Segment{Start: start, End: end, State: st})
	}

	// step executes as many records as possible for rank r.
	// It returns true if at least one record was retired.
	step := func(r int) bool {
		rs := &ranks[r]
		recs := t.Ranks[r]
		progressed := false
		for rs.pc < len(recs) {
			rec := recs[rs.pc]
			switch rs.blocked {
			case blockedSend:
				if !rs.sendEntry.done {
					return progressed
				}
				addSeg(rs, rs.blockStart, rs.sendEntry.end, StateComm)
				rs.clock = rs.sendEntry.end
				rs.sendEntry = nil
				rs.blocked = notBlocked
				rs.pc++
				progressed = true
				continue
			case blockedColl:
				ci := getColl(rs.collIdx)
				if !ci.complete {
					return progressed
				}
				addSeg(rs, rs.blockStart, ci.end, StateComm)
				rs.clock = ci.end
				rs.collIdx++
				rs.blocked = notBlocked
				rs.pc++
				progressed = true
				continue
			case blockedRecv:
				// Re-attempt the pairing below with the preserved block
				// start time.
			}

			switch rec.Kind {
			case trace.KindCompute:
				beta := rec.Beta
				if beta < 0 {
					beta = opts.Beta
				}
				d := rec.Duration * timemodel.Slowdown(beta, opts.FMax, freqs[r])
				addSeg(rs, rs.clock, rs.clock+d, StateCompute)
				rs.clock += d
				rs.compute += d
				rs.pc++
				progressed = true

			case trace.KindSend:
				start := rs.clock
				rs.clock += p.Overhead
				ch := getChan(chanKey{r, rec.Peer, rec.Tag})
				e := &sendEntry{ready: rs.clock, bytes: rec.Bytes, rendezvous: rec.Bytes > p.EagerLimit}
				ch.sends = append(ch.sends, e)
				if e.rendezvous {
					rs.blocked = blockedSend
					rs.blockStart = start
					rs.sendEntry = e
					// Completion happens when the receiver pairs with us;
					// stay blocked for now (possibly unblocked this pass if
					// the receiver already waits — handled on next visit).
					return progressed
				}
				addSeg(rs, start, rs.clock, StateComm)
				rs.pc++
				progressed = true

			case trace.KindRecv:
				if rs.blocked != blockedRecv {
					rs.blockStart = rs.clock
					rs.clock += p.Overhead
				}
				ch := getChan(chanKey{rec.Peer, r, rec.Tag})
				if ch.nextSend >= len(ch.sends) {
					rs.blocked = blockedRecv
					return progressed
				}
				e := ch.sends[ch.nextSend]
				ch.nextSend++
				if e.rendezvous {
					end := math.Max(rs.clock, e.ready) + p.transfer(e.bytes)
					e.done = true
					e.end = end
					rs.clock = end
				} else {
					arrival := e.ready + p.transfer(e.bytes)
					rs.clock = math.Max(rs.clock, arrival)
				}
				addSeg(rs, rs.blockStart, rs.clock, StateComm)
				rs.blocked = notBlocked
				rs.pc++
				progressed = true

			case trace.KindColl:
				ci := getColl(rs.collIdx)
				ci.arrived++
				if rs.clock > ci.maxReady {
					ci.maxReady = rs.clock
				}
				if ci.arrived == n {
					ci.complete = true
					ci.end = ci.maxReady + p.CollectiveCost(rec.Coll, rec.Bytes, n)
					addSeg(rs, rs.clock, ci.end, StateComm)
					rs.clock = ci.end
					rs.collIdx++
					rs.pc++
					progressed = true
					continue
				}
				rs.blocked = blockedColl
				rs.blockStart = rs.clock
				return progressed

			case trace.KindIterMark:
				rs.pc++
				progressed = true

			default:
				// Unreachable after Validate; defensive.
				rs.pc++
				progressed = true
			}
		}
		return progressed
	}

	for {
		progressed := false
		done := true
		for r := 0; r < n; r++ {
			if ranks[r].pc < len(t.Ranks[r]) {
				if step(r) {
					progressed = true
				}
				if ranks[r].pc < len(t.Ranks[r]) {
					done = false
				}
			}
		}
		if done {
			break
		}
		if !progressed {
			return nil, deadlockError(t, ranks)
		}
	}

	res := &Result{
		Compute: make([]float64, n),
		Finish:  make([]float64, n),
	}
	if opts.RecordTimeline {
		res.Timeline = make([][]Segment, n)
	}
	for r := range ranks {
		res.Compute[r] = ranks[r].compute
		res.Finish[r] = ranks[r].clock
		if ranks[r].clock > res.Time {
			res.Time = ranks[r].clock
		}
		if opts.RecordTimeline {
			res.Timeline[r] = ranks[r].segs
		}
	}
	return res, nil
}

func deadlockError(t *trace.Trace, ranks []rankState) error {
	var sb strings.Builder
	for r := range ranks {
		if ranks[r].pc >= len(t.Ranks[r]) {
			continue
		}
		rec := t.Ranks[r][ranks[r].pc]
		fmt.Fprintf(&sb, " rank %d at record %d (%v)", r, ranks[r].pc, rec.Kind)
	}
	return fmt.Errorf("%w:%s", ErrDeadlock, sb.String())
}
