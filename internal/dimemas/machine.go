package dimemas

// The layered machine model. Platform keeps the five global scalars the
// paper's flat Hockney machine needs; Machine stacks two optional layers on
// top of it:
//
//   - a topology layer (node/switch hierarchy with per-level links and a
//     rank→node placement vector) that turns the single transfer(b) into a
//     pair-resolved cost, and
//   - a capability layer (per-rank efficiency, top frequency and power
//     scale) that makes ranks heterogeneous.
//
// Both layers are nil for the homogeneous flat machine, and every consumer
// of a flat Machine performs exactly the floating-point operations the plain
// Platform path performs — the homogeneous configuration stays bit-identical
// to the pre-machine code (golden-tested in machine_test.go).
//
// Pair-resolved transfer costs and topology-priced collectives are
// gear-independent, so they are resolved where wire times were always
// resolved: inside Simulate and at skeleton-record time. The retime tiers
// (full/scaled/delta/batch) never see the topology at all, which is how the
// fast path survives the refactor untouched. Capability efficiency folds
// into the compute scaling the retimers already support.

import (
	"math"
	"strconv"
	"strings"

	"repro/internal/stagerr"
	"repro/internal/trace"
)

// Link is one level of the interconnect hierarchy: a latency/bandwidth pair
// in the same units as Platform.Latency/Platform.Bandwidth.
type Link struct {
	// Latency is the end-to-end latency of one message, in seconds.
	Latency float64
	// Bandwidth is the link bandwidth in bytes per second.
	Bandwidth float64
}

// validLink checks one hierarchy level.
func (l Link) valid() bool {
	return l.Latency >= 0 && !math.IsNaN(l.Latency) && l.Bandwidth > 0 && !math.IsNaN(l.Bandwidth)
}

// Topology places ranks onto a node/switch hierarchy with per-level links:
// ranks on the same node talk over Intra, ranks on different nodes under
// the same switch over Inter, and ranks under different switches over
// Remote. The model is contention-free (each message sees the full link).
type Topology struct {
	// Placement maps rank → node. Required; length must equal the rank
	// count of the trace being simulated.
	Placement []int
	// NodeSwitch maps node → switch. Nil means a single switch (Remote is
	// then never used).
	NodeSwitch []int
	// Intra is the link between ranks sharing a node.
	Intra Link
	// Inter is the link between nodes under the same switch.
	Inter Link
	// Remote is the link between nodes under different switches. Ignored
	// when NodeSwitch is nil; otherwise required.
	Remote Link
}

// NumNodes returns the number of distinct nodes the placement uses
// (max node id + 1).
func (t *Topology) NumNodes() int {
	max := -1
	for _, nd := range t.Placement {
		if nd > max {
			max = nd
		}
	}
	return max + 1
}

// BlockPlacement returns the contiguous placement of nranks ranks onto
// nodes of perNode ranks each: rank r lives on node r/perNode. This is the
// locality-friendly default placement for nearest-neighbour exchanges.
func BlockPlacement(nranks, perNode int) []int {
	pl := make([]int, nranks)
	for r := range pl {
		pl[r] = r / perNode
	}
	return pl
}

// Capability describes per-rank heterogeneity. All slices are indexed by
// rank; a nil slice means "homogeneous in that dimension".
type Capability struct {
	// Efficiency is each rank's compute speed relative to the nominal rank
	// the trace durations were recorded on: a burst of d seconds takes
	// d/Efficiency[r] on rank r. 1 is nominal; entries must be positive
	// and finite.
	Efficiency []float64
	// FMax is each rank's top frequency in GHz (per-rank gear ceiling). A
	// zero entry means the global top frequency. It bounds which gears an
	// optimizer may assign to the rank; it does not change the timing
	// reference (Options.FMax remains the frequency trace durations refer
	// to).
	FMax []float64
	// PowerScale multiplies each rank's modeled power draw (both dynamic
	// and static): 1 is nominal. Entries must be positive and finite.
	PowerScale []float64
}

// Machine is the full layered model: a base Platform (protocol constants
// and the flat link) plus optional topology and capability layers. The zero
// value of the layers — both nil — is the homogeneous flat machine, and
// Machine{Base: p} behaves bit-identically to p everywhere.
type Machine struct {
	Base Platform
	Topo *Topology
	Cap  *Capability
}

// FlatMachine wraps a plain Platform as a Machine with no topology or
// capability layer.
func FlatMachine(p Platform) Machine { return Machine{Base: p} }

// Flat reports whether the machine is the plain homogeneous flat platform.
func (m *Machine) Flat() bool { return m.Topo == nil && m.Cap == nil }

// ValidateFor checks the whole machine against a rank count. nranks < 0
// skips the length checks (for contexts where the trace is not yet known).
func (m *Machine) ValidateFor(nranks int) error {
	if err := m.Base.Validate(); err != nil {
		return err
	}
	if t := m.Topo; t != nil {
		if len(t.Placement) == 0 {
			return stagerr.Errorf(stagerr.Validate, "dimemas: topology needs a placement vector")
		}
		if nranks >= 0 && len(t.Placement) != nranks {
			return stagerr.Errorf(stagerr.Validate, "dimemas: placement has %d entries for %d ranks", len(t.Placement), nranks)
		}
		nnodes := t.NumNodes()
		for r, nd := range t.Placement {
			if nd < 0 {
				return stagerr.Errorf(stagerr.Validate, "dimemas: rank %d placed on negative node %d", r, nd)
			}
		}
		if !t.Intra.valid() {
			return stagerr.Errorf(stagerr.Validate, "dimemas: invalid intra-node link %+v", t.Intra)
		}
		if !t.Inter.valid() {
			return stagerr.Errorf(stagerr.Validate, "dimemas: invalid inter-node link %+v", t.Inter)
		}
		if t.NodeSwitch != nil {
			if len(t.NodeSwitch) < nnodes {
				return stagerr.Errorf(stagerr.Validate, "dimemas: node-switch map has %d entries for %d nodes", len(t.NodeSwitch), nnodes)
			}
			for nd, sw := range t.NodeSwitch {
				if sw < 0 {
					return stagerr.Errorf(stagerr.Validate, "dimemas: node %d mapped to negative switch %d", nd, sw)
				}
			}
			if !t.Remote.valid() {
				return stagerr.Errorf(stagerr.Validate, "dimemas: invalid remote link %+v", t.Remote)
			}
		}
	}
	if c := m.Cap; c != nil {
		check := func(name string, v []float64, allowZero bool) error {
			if v == nil {
				return nil
			}
			if nranks >= 0 && len(v) != nranks {
				return stagerr.Errorf(stagerr.Validate, "dimemas: capability %s has %d entries for %d ranks", name, len(v), nranks)
			}
			for r, x := range v {
				if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 || (x == 0 && !allowZero) {
					return stagerr.Errorf(stagerr.Validate, "dimemas: rank %d has invalid %s %v", r, name, x)
				}
			}
			return nil
		}
		if err := check("efficiency", c.Efficiency, false); err != nil {
			return err
		}
		if err := check("fmax", c.FMax, true); err != nil { // 0 = global default
			return err
		}
		if err := check("power scale", c.PowerScale, false); err != nil {
			return err
		}
	}
	return nil
}

// linkFor resolves the hierarchy level between two ranks. Must only be
// called with a non-nil topology.
func (t *Topology) linkFor(src, dst int) Link {
	a, b := t.Placement[src], t.Placement[dst]
	if a == b {
		return t.Intra
	}
	if t.NodeSwitch != nil && t.NodeSwitch[a] != t.NodeSwitch[b] {
		return t.Remote
	}
	return t.Inter
}

// transferPair returns the wire time of one b-byte message from rank src to
// rank dst. The flat path performs exactly Platform.transfer's arithmetic.
func (m *Machine) transferPair(src, dst int, b int64) float64 {
	if m.Topo == nil {
		return m.Base.Latency + float64(b)/m.Base.Bandwidth
	}
	l := m.Topo.linkFor(src, dst)
	return l.Latency + float64(b)/l.Bandwidth
}

// collectiveCost prices a collective over all n ranks. The flat path is
// exactly Platform.CollectiveCost; with a topology, the collective's
// spanning tree crosses the widest level any pair of ranks spans, and the
// contention-free tree model charges every stage the slowest spanned link.
func (m *Machine) collectiveCost(c trace.Collective, b int64, n int) float64 {
	if m.Topo == nil {
		return m.Base.CollectiveCost(c, b, n)
	}
	l := m.Topo.spannedLink(n)
	return collCost(c, b, n, l.Latency, l.Bandwidth, m.Base.LinearAllToAll)
}

// spannedLink returns the slowest hierarchy level a collective over ranks
// 0..n-1 crosses: Remote if any two ranks sit under different switches,
// Inter if any two sit on different nodes, Intra otherwise.
func (t *Topology) spannedLink(n int) Link {
	if n > len(t.Placement) {
		n = len(t.Placement)
	}
	nd0 := t.Placement[0]
	crossNode := false
	for r := 1; r < n; r++ {
		nd := t.Placement[r]
		if nd != nd0 {
			crossNode = true
			if t.NodeSwitch != nil && t.NodeSwitch[nd] != t.NodeSwitch[nd0] {
				return t.Remote
			}
		}
	}
	if crossNode {
		return t.Inter
	}
	return t.Intra
}

// ScaleVector returns the per-rank compute scaling the capability layer
// implies — scale[r] = 1/Efficiency[r] — or nil when every rank is nominal.
// This is the vector to feed RetimeScaled/RetimeDelta (and the one
// BuildSkeletonMachine bakes into compute durations).
func (m *Machine) ScaleVector() []float64 {
	if m.Cap == nil || m.Cap.Efficiency == nil {
		return nil
	}
	trivial := true
	for _, e := range m.Cap.Efficiency {
		if e != 1 {
			trivial = false
			break
		}
	}
	if trivial {
		return nil
	}
	scale := make([]float64, len(m.Cap.Efficiency))
	for r, e := range m.Cap.Efficiency {
		scale[r] = 1 / e
	}
	return scale
}

// RankFMax returns rank r's top frequency: the capability entry when set,
// the global fallback otherwise.
func (m *Machine) RankFMax(r int, global float64) float64 {
	if m.Cap != nil && r < len(m.Cap.FMax) && m.Cap.FMax[r] > 0 {
		return m.Cap.FMax[r]
	}
	return global
}

// RankPowerScale returns rank r's power multiplier (1 when homogeneous).
func (m *Machine) RankPowerScale(r int) float64 {
	if m.Cap != nil && r < len(m.Cap.PowerScale) {
		return m.Cap.PowerScale[r]
	}
	return 1
}

// Fingerprint canonically encodes the topology and capability layers for
// cache keying. The flat homogeneous machine fingerprints to "", so
// replay-cache keys for plain Platforms are unchanged by the machine
// refactor. Two machines with equal Base and equal fingerprints simulate
// identically.
func (m *Machine) Fingerprint() string {
	if m.Flat() {
		return ""
	}
	var sb strings.Builder
	if t := m.Topo; t != nil {
		sb.WriteString("t:p=")
		writeInts(&sb, t.Placement)
		if t.NodeSwitch != nil {
			sb.WriteString(";s=")
			writeInts(&sb, t.NodeSwitch)
		}
		sb.WriteString(";l=")
		writeLink(&sb, t.Intra)
		writeLink(&sb, t.Inter)
		writeLink(&sb, t.Remote)
	}
	if c := m.Cap; c != nil {
		sb.WriteString("c:e=")
		writeFloats(&sb, c.Efficiency)
		sb.WriteString(";f=")
		writeFloats(&sb, c.FMax)
		sb.WriteString(";p=")
		writeFloats(&sb, c.PowerScale)
	}
	return sb.String()
}

func writeInts(sb *strings.Builder, v []int) {
	for i, x := range v {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(x))
	}
}

func writeFloats(sb *strings.Builder, v []float64) {
	for i, x := range v {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	}
}

func writeLink(sb *strings.Builder, l Link) {
	sb.WriteByte('[')
	sb.WriteString(strconv.FormatFloat(l.Latency, 'g', -1, 64))
	sb.WriteByte('/')
	sb.WriteString(strconv.FormatFloat(l.Bandwidth, 'g', -1, 64))
	sb.WriteByte(']')
}
