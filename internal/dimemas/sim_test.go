package dimemas

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

// flatPlatform has zero latency/overhead and unit bandwidth so that expected
// times can be computed by hand.
func flatPlatform() Platform {
	return Platform{Latency: 0, Bandwidth: 1, EagerLimit: 100, Overhead: 0, LinearAllToAll: true}
}

func simOK(t *testing.T, tr *trace.Trace, p Platform, o Options) *Result {
	t.Helper()
	res, err := Simulate(tr, p, o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestComputeOnly(t *testing.T) {
	tr := trace.New("x", 2)
	tr.Add(0, trace.Compute(3))
	tr.Add(1, trace.Compute(1), trace.Compute(1))
	res := simOK(t, tr, flatPlatform(), DefaultOptions())
	if res.Time != 3 {
		t.Errorf("Time = %v, want 3", res.Time)
	}
	if res.Compute[0] != 3 || res.Compute[1] != 2 {
		t.Errorf("Compute = %v", res.Compute)
	}
	if res.Finish[0] != 3 || res.Finish[1] != 2 {
		t.Errorf("Finish = %v", res.Finish)
	}
	if got := res.Comm(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("Comm(1) = %v, want 1 (idle tail)", got)
	}
}

func TestEagerPingTime(t *testing.T) {
	// Rank 0 computes 1s then sends 10 bytes (eager, bw=1 B/s ⇒ 10 s wire).
	// Rank 1 recvs immediately: unblocks at 1 + 10 = 11, then computes 1.
	tr := trace.New("x", 2)
	tr.Add(0, trace.Compute(1), trace.Send(1, 10, 0))
	tr.Add(1, trace.Recv(0, 10, 0), trace.Compute(1))
	res := simOK(t, tr, flatPlatform(), DefaultOptions())
	if math.Abs(res.Finish[1]-12) > 1e-12 {
		t.Errorf("Finish[1] = %v, want 12", res.Finish[1])
	}
	// Eager sender does not wait for the receiver.
	if math.Abs(res.Finish[0]-1) > 1e-12 {
		t.Errorf("Finish[0] = %v, want 1", res.Finish[0])
	}
}

func TestRendezvousBlocksSender(t *testing.T) {
	// 200-byte message exceeds the 100-byte eager limit: the transfer cannot
	// start before the receiver posts at t=5. End = max(0, 5) + 200 = 205.
	tr := trace.New("x", 2)
	tr.Add(0, trace.Send(1, 200, 0))
	tr.Add(1, trace.Compute(5), trace.Recv(0, 200, 0))
	res := simOK(t, tr, flatPlatform(), DefaultOptions())
	if math.Abs(res.Finish[0]-205) > 1e-12 {
		t.Errorf("sender Finish = %v, want 205", res.Finish[0])
	}
	if math.Abs(res.Finish[1]-205) > 1e-12 {
		t.Errorf("receiver Finish = %v, want 205", res.Finish[1])
	}
}

func TestRendezvousSenderArrivesLate(t *testing.T) {
	// Receiver posts at t=0, sender ready at t=5: end = 5 + 200 = 205.
	tr := trace.New("x", 2)
	tr.Add(0, trace.Compute(5), trace.Send(1, 200, 0))
	tr.Add(1, trace.Recv(0, 200, 0))
	res := simOK(t, tr, flatPlatform(), DefaultOptions())
	if math.Abs(res.Time-205) > 1e-12 {
		t.Errorf("Time = %v, want 205", res.Time)
	}
}

func TestLatencyAndOverheadCharged(t *testing.T) {
	p := Platform{Latency: 0.5, Bandwidth: 10, EagerLimit: 1000, Overhead: 0.25}
	// send: sender clock = 0.25 (overhead); arrival = 0.25 + 0.5 + 10/10 = 1.75.
	// receiver: overhead 0.25 then waits: clock = max(0.25, 1.75) = 1.75.
	tr := trace.New("x", 2)
	tr.Add(0, trace.Send(1, 10, 0))
	tr.Add(1, trace.Recv(0, 10, 0))
	res := simOK(t, tr, p, DefaultOptions())
	if math.Abs(res.Finish[0]-0.25) > 1e-12 {
		t.Errorf("sender = %v, want 0.25", res.Finish[0])
	}
	if math.Abs(res.Finish[1]-1.75) > 1e-12 {
		t.Errorf("receiver = %v, want 1.75", res.Finish[1])
	}
}

func TestMessagesMatchInOrderPerChannel(t *testing.T) {
	// Two eager messages on the same channel must match FIFO.
	tr := trace.New("x", 2)
	tr.Add(0, trace.Send(1, 10, 0), trace.Compute(100), trace.Send(1, 20, 0))
	tr.Add(1, trace.Recv(0, 10, 0), trace.Recv(0, 20, 0))
	res := simOK(t, tr, flatPlatform(), DefaultOptions())
	// Second message ready at t=100, arrival 120; receiver finishes then.
	if math.Abs(res.Finish[1]-120) > 1e-12 {
		t.Errorf("receiver = %v, want 120", res.Finish[1])
	}
}

func TestCollectiveSynchronizesAllRanks(t *testing.T) {
	p := Platform{Latency: 1, Bandwidth: 1e9, EagerLimit: 100, Overhead: 0}
	tr := trace.New("x", 4)
	for r := 0; r < 4; r++ {
		tr.Add(r, trace.Compute(float64(r+1)), trace.Coll(trace.CollBarrier, 0))
	}
	res := simOK(t, tr, p, DefaultOptions())
	// Last arrival t=4; barrier cost = ceil(log2 4)·L = 2. All finish at 6.
	for r := 0; r < 4; r++ {
		if math.Abs(res.Finish[r]-6) > 1e-12 {
			t.Errorf("rank %d finish = %v, want 6", r, res.Finish[r])
		}
	}
}

func TestCollectiveCostModels(t *testing.T) {
	p := Platform{Latency: 1, Bandwidth: 1, EagerLimit: 0, LinearAllToAll: true}
	n := 8
	step := 1 + 4.0 // latency + 4 bytes / 1 B/s
	tests := []struct {
		coll trace.Collective
		want float64
	}{
		{trace.CollBarrier, 3 * 1.0},
		{trace.CollBcast, 3 * step},
		{trace.CollReduce, 3 * step},
		{trace.CollAllReduce, 6 * step},
		{trace.CollAllGather, 7 * step},
		{trace.CollAllToAll, 7 * step},
	}
	for _, tt := range tests {
		if got := p.CollectiveCost(tt.coll, 4, n); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%v cost = %v, want %v", tt.coll, got, tt.want)
		}
	}
	// Logarithmic all-to-all ablation.
	p.LinearAllToAll = false
	if got := p.CollectiveCost(trace.CollAllToAll, 4, n); math.Abs(got-3*step) > 1e-12 {
		t.Errorf("log alltoall = %v, want %v", got, 3*step)
	}
	// Degenerate single-rank collective is free.
	if got := p.CollectiveCost(trace.CollAllReduce, 4, 1); got != 0 {
		t.Errorf("1-rank collective = %v, want 0", got)
	}
}

func TestFrequencyScalingSlowsCompute(t *testing.T) {
	tr := trace.New("x", 2)
	tr.Add(0, trace.Compute(1))
	tr.Add(1, trace.Compute(1))
	o := DefaultOptions()
	o.Freqs = []float64{2.3, 1.15} // rank 1 at half frequency
	res := simOK(t, tr, flatPlatform(), o)
	// β=0.5: slowdown at half frequency = 1.5.
	if math.Abs(res.Compute[1]-1.5) > 1e-12 {
		t.Errorf("Compute[1] = %v, want 1.5", res.Compute[1])
	}
	if math.Abs(res.Compute[0]-1.0) > 1e-12 {
		t.Errorf("Compute[0] = %v, want 1", res.Compute[0])
	}
}

func TestPerRecordBetaOverride(t *testing.T) {
	tr := trace.New("x", 1)
	tr.Add(0, trace.ComputeBeta(1, 1.0), trace.Compute(1)) // second uses global β
	o := Options{Beta: 0, FMax: 2.3, Freqs: []float64{1.15}}
	res := simOK(t, tr, flatPlatform(), o)
	// First burst: β=1 ⇒ ×2. Second: β=0 ⇒ ×1. Total 3.
	if math.Abs(res.Compute[0]-3) > 1e-12 {
		t.Errorf("Compute = %v, want 3", res.Compute[0])
	}
}

func TestDeadlockDetection(t *testing.T) {
	// Two rendezvous sends facing each other: classic unsafe exchange.
	tr := trace.New("x", 2)
	tr.Add(0, trace.Send(1, 200, 0), trace.Recv(1, 200, 0))
	tr.Add(1, trace.Send(0, 200, 0), trace.Recv(0, 200, 0))
	_, err := Simulate(tr, flatPlatform(), DefaultOptions())
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
	// The same exchange with eager messages is fine.
	tr2 := trace.New("x", 2)
	tr2.Add(0, trace.Send(1, 10, 0), trace.Recv(1, 10, 0))
	tr2.Add(1, trace.Send(0, 10, 0), trace.Recv(0, 10, 0))
	if _, err := Simulate(tr2, flatPlatform(), DefaultOptions()); err != nil {
		t.Fatalf("eager exchange should not deadlock: %v", err)
	}
}

func TestValidationErrors(t *testing.T) {
	tr := trace.New("x", 2)
	tr.Add(0, trace.Compute(1))
	tr.Add(1, trace.Compute(1))
	if _, err := Simulate(tr, Platform{Bandwidth: -1}, DefaultOptions()); err == nil {
		t.Error("bad platform should error")
	}
	o := DefaultOptions()
	o.Freqs = []float64{1.0}
	if _, err := Simulate(tr, flatPlatform(), o); err == nil {
		t.Error("wrong freqs length should error")
	}
	o = DefaultOptions()
	o.Freqs = []float64{1.0, -1}
	if _, err := Simulate(tr, flatPlatform(), o); err == nil {
		t.Error("negative frequency should error")
	}
	o = DefaultOptions()
	o.FMax = 0
	if _, err := Simulate(tr, flatPlatform(), o); err == nil {
		t.Error("zero FMax should error")
	}
	o = DefaultOptions()
	o.Beta = 2
	if _, err := Simulate(tr, flatPlatform(), o); err == nil {
		t.Error("beta out of range should error")
	}
	bad := trace.New("x", 2)
	bad.Add(0, trace.Send(1, 10, 0)) // unmatched
	if _, err := Simulate(bad, flatPlatform(), DefaultOptions()); err == nil {
		t.Error("invalid trace should error")
	}
}

func TestTimelineSegments(t *testing.T) {
	tr := trace.New("x", 2)
	tr.Add(0, trace.Compute(1), trace.Send(1, 10, 0))
	tr.Add(1, trace.Recv(0, 10, 0), trace.Compute(2))
	o := DefaultOptions()
	o.RecordTimeline = true
	res := simOK(t, tr, flatPlatform(), o)
	if res.Timeline == nil {
		t.Fatal("timeline missing")
	}
	// Rank 1: comm [0, 11], compute [11, 13].
	segs := res.Timeline[1]
	if len(segs) != 2 {
		t.Fatalf("rank 1 segments = %+v", segs)
	}
	if segs[0].State != StateComm || math.Abs(segs[0].End-11) > 1e-12 {
		t.Errorf("seg0 = %+v", segs[0])
	}
	if segs[1].State != StateCompute || math.Abs(segs[1].End-13) > 1e-12 {
		t.Errorf("seg1 = %+v", segs[1])
	}
	// Segments must be non-overlapping and ordered.
	for r, ss := range res.Timeline {
		for i := 1; i < len(ss); i++ {
			if ss[i].Start < ss[i-1].End-1e-12 {
				t.Errorf("rank %d overlapping segments %+v %+v", r, ss[i-1], ss[i])
			}
		}
	}
}

func TestIterMarkIsFree(t *testing.T) {
	tr := trace.New("x", 1)
	tr.Add(0, trace.IterMark(), trace.Compute(1), trace.IterMark())
	res := simOK(t, tr, flatPlatform(), DefaultOptions())
	if res.Time != 1 {
		t.Errorf("Time = %v, want 1", res.Time)
	}
}

// haloTrace builds a P-rank ring halo exchange with per-rank loads, using
// the even-send-first ordering real codes use to stay deadlock free.
func haloTrace(p int, loads []float64, bytes int64, iters int) *trace.Trace {
	tr := trace.New("halo", p)
	for it := 0; it < iters; it++ {
		for r := 0; r < p; r++ {
			right := (r + 1) % p
			left := (r - 1 + p) % p
			tr.Add(r, trace.Compute(loads[r]))
			if r%2 == 0 {
				tr.Add(r, trace.Send(right, bytes, it), trace.Recv(left, bytes, it))
			} else {
				tr.Add(r, trace.Recv(left, bytes, it), trace.Send(right, bytes, it))
			}
			tr.Add(r, trace.IterMark())
		}
	}
	return tr
}

func TestRingExchangeCompletes(t *testing.T) {
	loads := []float64{1, 2, 3, 4}
	tr := haloTrace(4, loads, 200, 3) // rendezvous-size messages
	res := simOK(t, tr, flatPlatform(), DefaultOptions())
	if res.Time <= 0 {
		t.Fatal("no time elapsed")
	}
	// The most loaded rank computes 3×4 = 12s in total.
	if math.Abs(res.Compute[3]-12) > 1e-12 {
		t.Errorf("Compute[3] = %v", res.Compute[3])
	}
	if res.Time < 12 {
		t.Errorf("Time %v below critical path 12", res.Time)
	}
}

func TestDeterminism(t *testing.T) {
	loads := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	tr := haloTrace(8, loads, 50000, 5)
	r1 := simOK(t, tr, DefaultPlatform(), DefaultOptions())
	r2 := simOK(t, tr, DefaultPlatform(), DefaultOptions())
	if r1.Time != r2.Time {
		t.Errorf("non-deterministic time: %v vs %v", r1.Time, r2.Time)
	}
	for r := range r1.Compute {
		if r1.Compute[r] != r2.Compute[r] || r1.Finish[r] != r2.Finish[r] {
			t.Errorf("rank %d differs between runs", r)
		}
	}
}

// Property: the execution time is at least the slowest rank's compute time
// (critical path lower bound), for arbitrary load vectors.
func TestTimeAboveCriticalPathProperty(t *testing.T) {
	prop := func(rawLoads [6]float64) bool {
		loads := make([]float64, 6)
		for i, rl := range rawLoads {
			loads[i] = math.Abs(math.Mod(rl, 5)) + 0.1
		}
		tr := haloTrace(6, loads, 10, 2)
		res, err := Simulate(tr, DefaultPlatform(), DefaultOptions())
		if err != nil {
			return false
		}
		maxC := 0.0
		for _, c := range res.Compute {
			if c > maxC {
				maxC = c
			}
		}
		return res.Time >= maxC-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: lowering any rank's frequency never shortens the run.
func TestSlowerFrequencyNeverFasterProperty(t *testing.T) {
	loads := []float64{1, 1.5, 2, 2.5}
	tr := haloTrace(4, loads, 10, 2)
	base, err := Simulate(tr, DefaultPlatform(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prop := func(rankRaw uint8, fRaw float64) bool {
		rank := int(rankRaw) % 4
		f := 0.8 + math.Mod(math.Abs(fRaw), 1.5)
		o := DefaultOptions()
		o.Freqs = []float64{2.3, 2.3, 2.3, 2.3}
		o.Freqs[rank] = f
		res, err := Simulate(tr, DefaultPlatform(), o)
		if err != nil {
			return false
		}
		return res.Time >= base.Time-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
