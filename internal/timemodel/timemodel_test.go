package timemodel

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		beta    float64
		fmax    float64
		wantErr bool
	}{
		{"baseline", 0.5, 2.3, false},
		{"cpu bound", 1.0, 2.3, false},
		{"memory bound", 0.0, 2.3, false},
		{"beta too small", -0.1, 2.3, true},
		{"beta too large", 1.1, 2.3, true},
		{"beta NaN", math.NaN(), 2.3, true},
		{"zero fmax", 0.5, 0, true},
		{"negative fmax", 0.5, -1, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.beta, tt.fmax)
			if (err != nil) != tt.wantErr {
				t.Fatalf("New(%v, %v) error = %v, wantErr %v", tt.beta, tt.fmax, err, tt.wantErr)
			}
		})
	}
}

func TestSlowdownPaperValues(t *testing.T) {
	// β = 1: halving the frequency doubles the execution time (paper §3.2).
	if got := Slowdown(1.0, 2.3, 1.15); !almostEqual(got, 2.0, 1e-12) {
		t.Errorf("beta=1 half freq: got %v, want 2", got)
	}
	// β = 0: frequency does not affect execution time.
	if got := Slowdown(0.0, 2.3, 0.8); !almostEqual(got, 1.0, 1e-12) {
		t.Errorf("beta=0: got %v, want 1", got)
	}
	// β = 0.5, half frequency: slowdown = 0.5·(2−1)+1 = 1.5.
	if got := Slowdown(0.5, 2.3, 1.15); !almostEqual(got, 1.5, 1e-12) {
		t.Errorf("beta=0.5 half freq: got %v, want 1.5", got)
	}
	// At fmax the slowdown is exactly 1 for any β.
	for _, beta := range []float64{0, 0.3, 0.5, 0.7, 1} {
		if got := Slowdown(beta, 2.3, 2.3); got != 1 {
			t.Errorf("beta=%v at fmax: got %v, want 1", beta, got)
		}
	}
	// Over-clocking by 10% with β=0.5: 0.5·(1/1.1−1)+1 ≈ 0.9545.
	want := 0.5*(1/1.1-1) + 1
	if got := Slowdown(0.5, 2.3, 2.3*1.1); !almostEqual(got, want, 1e-12) {
		t.Errorf("overclock: got %v, want %v", got, want)
	}
}

func TestSlowdownEdgeCases(t *testing.T) {
	if got := Slowdown(0.5, 2.3, 0); !math.IsInf(got, 1) {
		t.Errorf("f=0: got %v, want +Inf", got)
	}
	if got := Slowdown(0.5, 2.3, -1); !math.IsInf(got, 1) {
		t.Errorf("f<0: got %v, want +Inf", got)
	}
}

func TestRequiredFrequencyRoundTrip(t *testing.T) {
	m, err := New(0.5, 2.3)
	if err != nil {
		t.Fatal(err)
	}
	// A rank with half the load of the max should run at fmax/3 under β=0.5
	// (worked example from the design notes).
	f := m.RequiredFrequency(0.5, 1.0)
	if !almostEqual(f, 2.3/3, 1e-12) {
		t.Errorf("half-load rank: got %v, want %v", f, 2.3/3)
	}
	// Round trip: running 0.5s of work at that frequency takes the target 1s.
	if got := m.Time(0.5, f); !almostEqual(got, 1.0, 1e-12) {
		t.Errorf("round trip time: got %v, want 1", got)
	}
}

func TestRequiredFrequencyOverclock(t *testing.T) {
	m := Model{Beta: 0.5, FMax: 2.3}
	// The most loaded rank (1s) balancing toward an average of 0.9s needs
	// over-clocking: f > fmax.
	f := m.RequiredFrequency(1.0, 0.9)
	if f <= m.FMax {
		t.Errorf("target below original needs overclock, got f=%v <= fmax", f)
	}
	if got := m.Time(1.0, f); !almostEqual(got, 0.9, 1e-12) {
		t.Errorf("overclock round trip: got %v, want 0.9", got)
	}
}

func TestRequiredFrequencyUnattainable(t *testing.T) {
	m := Model{Beta: 0.5, FMax: 2.3}
	// Memory floor is (1−β)·tOrig = 0.5s; targets below are unattainable.
	if f := m.RequiredFrequency(1.0, 0.4); !math.IsInf(f, 1) {
		t.Errorf("below memory floor: got %v, want +Inf", f)
	}
	if f := m.RequiredFrequency(1.0, 0.5); !math.IsInf(f, 1) {
		t.Errorf("at memory floor (asymptote): got %v, want +Inf", f)
	}
}

func TestRequiredFrequencyDegenerate(t *testing.T) {
	if f := RequiredFrequency(0.5, 2.3, 0, 1); f != 0 {
		t.Errorf("no work: got %v, want 0", f)
	}
	if f := RequiredFrequency(0.5, 2.3, 1, 0); !math.IsInf(f, 1) {
		t.Errorf("zero target: got %v, want +Inf", f)
	}
	if f := RequiredFrequency(0, 2.3, 1, 2); f != 0 {
		t.Errorf("beta=0 attainable: got %v, want 0", f)
	}
	if f := RequiredFrequency(0, 2.3, 1, 0.5); !math.IsInf(f, 1) {
		t.Errorf("beta=0 unattainable: got %v, want +Inf", f)
	}
}

func TestMinAttainableTime(t *testing.T) {
	if got := MinAttainableTime(0.5, 2.3, 1.0, math.Inf(1)); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("infinite cap: got %v, want 0.5", got)
	}
	// Cap at +10% over-clock.
	want := Slowdown(0.5, 2.3, 2.53)
	if got := MinAttainableTime(0.5, 2.3, 1.0, 2.53); !almostEqual(got, want, 1e-12) {
		t.Errorf("10%% cap: got %v, want %v", got, want)
	}
	if got := MinAttainableTime(0.5, 2.3, 0, 2.53); got != 0 {
		t.Errorf("no work: got %v, want 0", got)
	}
}

// Property: Slowdown is strictly decreasing in f for β > 0.
func TestSlowdownMonotonicProperty(t *testing.T) {
	prop := func(betaRaw, f1Raw, f2Raw float64) bool {
		beta := 0.1 + math.Mod(math.Abs(betaRaw), 0.9)
		f1 := 0.1 + math.Mod(math.Abs(f1Raw), 5)
		f2 := 0.1 + math.Mod(math.Abs(f2Raw), 5)
		if f1 == f2 {
			return true
		}
		lo, hi := math.Min(f1, f2), math.Max(f1, f2)
		return Slowdown(beta, 2.3, lo) > Slowdown(beta, 2.3, hi)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: RequiredFrequency inverts Slowdown whenever the target is
// attainable.
func TestRequiredFrequencyInverseProperty(t *testing.T) {
	prop := func(betaRaw, origRaw, targetRaw float64) bool {
		beta := 0.1 + math.Mod(math.Abs(betaRaw), 0.9)
		tOrig := 0.01 + math.Mod(math.Abs(origRaw), 10)
		// Pick targets above the memory floor with some slack.
		floor := (1 - beta) * tOrig
		tTarget := floor + 0.01 + math.Mod(math.Abs(targetRaw), 10)
		f := RequiredFrequency(beta, 2.3, tOrig, tTarget)
		if math.IsInf(f, 1) || f <= 0 {
			return false
		}
		back := tOrig * Slowdown(beta, 2.3, f)
		return almostEqual(back, tTarget, 1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: a lower target never demands a lower frequency.
func TestRequiredFrequencyMonotonicProperty(t *testing.T) {
	prop := func(t1Raw, t2Raw float64) bool {
		tOrig := 1.0
		t1 := 0.55 + math.Mod(math.Abs(t1Raw), 3)
		t2 := 0.55 + math.Mod(math.Abs(t2Raw), 3)
		f1 := RequiredFrequency(0.5, 2.3, tOrig, t1)
		f2 := RequiredFrequency(0.5, 2.3, tOrig, t2)
		if t1 < t2 {
			return f1 >= f2
		}
		return f2 >= f1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
