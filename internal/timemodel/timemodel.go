// Package timemodel implements the frequency/execution-time model used by the
// paper (eq. 3, originally from Hsu & Feng's power-aware run-time system):
//
//	T(f) / T(fmax) = β·(fmax/f − 1) + 1
//
// β expresses how memory bound a computation phase is. β = 1 means halving the
// frequency doubles the execution time (fully CPU bound); β = 0 means the
// execution time does not depend on the CPU frequency at all (fully memory
// bound). The paper assumes β = 0.5 on average and sweeps 0.3–1.0 in §5.3.3.
package timemodel

import (
	"errors"
	"fmt"
	"math"
)

// DefaultBeta is the paper's baseline memory-boundedness parameter (§3.2).
const DefaultBeta = 0.5

var (
	// ErrBadBeta reports a β outside the meaningful range [0, 1].
	ErrBadBeta = errors.New("timemodel: beta must be in [0, 1]")
	// ErrBadFrequency reports a non-positive frequency.
	ErrBadFrequency = errors.New("timemodel: frequency must be positive")
)

// Model evaluates the β slowdown model for a fixed nominal frequency.
type Model struct {
	// Beta is the memory-boundedness parameter in [0, 1].
	Beta float64
	// FMax is the nominal top frequency (GHz) against which slowdowns are
	// expressed. Running faster than FMax (over-clocking) yields factors < 1.
	FMax float64
}

// New returns a model after validating its parameters.
func New(beta, fmax float64) (Model, error) {
	m := Model{Beta: beta, FMax: fmax}
	if err := m.Validate(); err != nil {
		return Model{}, err
	}
	return m, nil
}

// Validate checks the model parameters.
func (m Model) Validate() error {
	if m.Beta < 0 || m.Beta > 1 || math.IsNaN(m.Beta) {
		return fmt.Errorf("%w (got %v)", ErrBadBeta, m.Beta)
	}
	if m.FMax <= 0 || math.IsNaN(m.FMax) {
		return fmt.Errorf("%w (got fmax=%v)", ErrBadFrequency, m.FMax)
	}
	return nil
}

// Slowdown returns T(f)/T(fmax) for running at frequency f.
// The result is > 1 for f < fmax, exactly 1 at fmax, and < 1 when
// over-clocking (f > fmax). f must be positive.
func (m Model) Slowdown(f float64) float64 {
	return Slowdown(m.Beta, m.FMax, f)
}

// Time returns the execution time at frequency f of a phase that takes
// tAtFMax seconds at the nominal top frequency.
func (m Model) Time(tAtFMax, f float64) float64 {
	return tAtFMax * m.Slowdown(f)
}

// RequiredFrequency inverts the model: it returns the frequency at which a
// phase lasting tOrig at fmax completes in exactly tTarget.
//
// If the target is unattainable even at infinite frequency (because the
// memory-bound fraction (1−β)·tOrig alone exceeds tTarget), it returns
// +Inf. Targets shorter than tOrig demand f > fmax (over-clocking). A
// non-positive tOrig yields 0 (any frequency works; callers treat idle ranks
// as free). β = 0 phases are frequency-insensitive: the result is 0 when the
// target is met at any speed and +Inf when it can never be met.
func (m Model) RequiredFrequency(tOrig, tTarget float64) float64 {
	return RequiredFrequency(m.Beta, m.FMax, tOrig, tTarget)
}

// Slowdown is the package-level form of Model.Slowdown:
// β·(fmax/f − 1) + 1.
func Slowdown(beta, fmax, f float64) float64 {
	if f <= 0 {
		return math.Inf(1)
	}
	return beta*(fmax/f-1) + 1
}

// RequiredFrequency is the package-level form of Model.RequiredFrequency.
//
// Derivation: tTarget = tOrig·(β·(fmax/f − 1) + 1)
// ⇒ fmax/f = (tTarget/tOrig − 1)/β + 1
// ⇒ f = fmax / (1 + (tTarget/tOrig − 1)/β).
func RequiredFrequency(beta, fmax, tOrig, tTarget float64) float64 {
	if tOrig <= 0 {
		return 0 // nothing to compute: any frequency meets any target
	}
	if tTarget <= 0 {
		return math.Inf(1)
	}
	ratio := tTarget / tOrig
	if beta == 0 {
		// Time is frequency-independent: attainable iff tTarget >= tOrig.
		if ratio >= 1 {
			return 0
		}
		return math.Inf(1)
	}
	den := 1 + (ratio-1)/beta
	if den <= 0 {
		// Even f → ∞ cannot push the time below (1−β)·tOrig.
		return math.Inf(1)
	}
	return fmax / den
}

// MinAttainableTime returns the asymptotic lower bound on the execution time
// of a phase lasting tOrig at fmax when the frequency may grow up to fCap.
// With fCap = +Inf this is the memory-bound floor (1−β)·tOrig.
func MinAttainableTime(beta, fmax, tOrig, fCap float64) float64 {
	if tOrig <= 0 {
		return 0
	}
	if math.IsInf(fCap, 1) {
		return (1 - beta) * tOrig
	}
	return tOrig * Slowdown(beta, fmax, fCap)
}
