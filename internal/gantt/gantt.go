// Package gantt renders per-rank execution timelines as ASCII charts — the
// textual equivalent of the paper's Figure 1 Paraver visualization of BT-MZ
// before and after the MAX algorithm.
package gantt

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/dimemas"
)

// Options control rendering.
type Options struct {
	// Width is the number of character cells on the time axis (default 100).
	Width int
	// MaxRanks caps the number of rank rows rendered (default 32); when the
	// trace has more ranks, evenly spaced representatives are shown.
	MaxRanks int
	// ComputeRune and CommRune draw computation and communication cells
	// (defaults '#' and '.').
	ComputeRune, CommRune rune
}

func (o *Options) normalize() {
	if o.Width <= 0 {
		o.Width = 100
	}
	if o.MaxRanks <= 0 {
		o.MaxRanks = 32
	}
	if o.ComputeRune == 0 {
		o.ComputeRune = '#'
	}
	if o.CommRune == 0 {
		o.CommRune = '.'
	}
}

// Render writes an ASCII Gantt chart of the timelines. Each row is one rank;
// the time axis is scaled to `until` seconds (use the run's finish time).
// Cells show computation, communication/wait, or idle (space) after a rank
// finished.
func Render(w io.Writer, timelines [][]dimemas.Segment, until float64, opts Options) error {
	opts.normalize()
	if until <= 0 {
		return fmt.Errorf("gantt: horizon must be positive, got %v", until)
	}
	if len(timelines) == 0 {
		return fmt.Errorf("gantt: no timelines")
	}
	ranks := pickRanks(len(timelines), opts.MaxRanks)
	scale := float64(opts.Width) / until

	for _, r := range ranks {
		row := make([]rune, opts.Width)
		for i := range row {
			row[i] = ' '
		}
		for _, seg := range timelines[r] {
			lo := int(seg.Start * scale)
			hi := int(seg.End * scale)
			if hi >= opts.Width {
				hi = opts.Width - 1
			}
			for i := lo; i <= hi && i >= 0; i++ {
				// Compute wins over comm when both map to one cell: the
				// useful signal is where work happens.
				if seg.State == dimemas.StateCompute {
					row[i] = opts.ComputeRune
				} else if row[i] == ' ' {
					row[i] = opts.CommRune
				}
			}
		}
		if _, err := fmt.Fprintf(w, "%4d |%s|\n", r, string(row)); err != nil {
			return err
		}
	}
	axis := fmt.Sprintf("%4s +%s+ t=%.3fs", "", strings.Repeat("-", opts.Width), until)
	if _, err := fmt.Fprintln(w, axis); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%4s  %c compute   %c communication/wait\n", "", opts.ComputeRune, opts.CommRune)
	return err
}

// pickRanks returns up to max evenly spaced rank indices.
func pickRanks(n, max int) []int {
	if n <= max {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, max)
	for i := 0; i < max; i++ {
		out[i] = i * (n - 1) / (max - 1)
	}
	return out
}

// ComputeFraction returns the fraction of the rendered horizon spent
// computing, summed over all ranks — a quick numeric summary of how "full"
// the chart is (the paper's before/after comparison in words).
func ComputeFraction(timelines [][]dimemas.Segment, until float64) float64 {
	if until <= 0 || len(timelines) == 0 {
		return 0
	}
	var comp float64
	for _, segs := range timelines {
		for _, s := range segs {
			if s.State == dimemas.StateCompute {
				comp += s.End - s.Start
			}
		}
	}
	return comp / (until * float64(len(timelines)))
}
