package gantt

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/dimemas"
)

func sampleTimelines() [][]dimemas.Segment {
	return [][]dimemas.Segment{
		{{Start: 0, End: 1, State: dimemas.StateCompute}},
		{{Start: 0, End: 0.5, State: dimemas.StateCompute}, {Start: 0.5, End: 1, State: dimemas.StateComm}},
	}
}

func TestRenderBasic(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, sampleTimelines(), 1.0, Options{Width: 20})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 2 rank rows + axis + legend.
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "####") {
		t.Errorf("rank 0 row lacks compute cells: %q", lines[0])
	}
	if !strings.Contains(lines[1], ".") {
		t.Errorf("rank 1 row lacks comm cells: %q", lines[1])
	}
	if !strings.Contains(out, "t=1.000s") {
		t.Errorf("axis missing horizon: %s", out)
	}
}

func TestRenderErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, sampleTimelines(), 0, Options{}); err == nil {
		t.Error("zero horizon should fail")
	}
	if err := Render(&buf, nil, 1, Options{}); err == nil {
		t.Error("no timelines should fail")
	}
}

func TestRenderCapsRanks(t *testing.T) {
	many := make([][]dimemas.Segment, 100)
	for i := range many {
		many[i] = []dimemas.Segment{{Start: 0, End: 1, State: dimemas.StateCompute}}
	}
	var buf bytes.Buffer
	if err := Render(&buf, many, 1, Options{Width: 10, MaxRanks: 8}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 10 { // 8 rows + axis + legend
		t.Fatalf("got %d lines", len(lines))
	}
	// First and last rank must be represented.
	if !strings.HasPrefix(lines[0], "   0") {
		t.Errorf("first row: %q", lines[0])
	}
	if !strings.HasPrefix(lines[7], "  99") {
		t.Errorf("last row: %q", lines[7])
	}
}

func TestPickRanks(t *testing.T) {
	got := pickRanks(3, 8)
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("pickRanks(3,8) = %v", got)
	}
	got = pickRanks(100, 5)
	if len(got) != 5 || got[0] != 0 || got[4] != 99 {
		t.Errorf("pickRanks(100,5) = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("not increasing: %v", got)
		}
	}
}

func TestComputeFraction(t *testing.T) {
	// Rank 0 computes 100%, rank 1 computes 50%: average 75%.
	got := ComputeFraction(sampleTimelines(), 1.0)
	if math.Abs(got-0.75) > 1e-12 {
		t.Errorf("ComputeFraction = %v, want 0.75", got)
	}
	if ComputeFraction(nil, 1) != 0 {
		t.Error("empty timelines should give 0")
	}
	if ComputeFraction(sampleTimelines(), 0) != 0 {
		t.Error("zero horizon should give 0")
	}
}

func TestCustomRunes(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, sampleTimelines(), 1.0, Options{Width: 10, ComputeRune: 'X', CommRune: '~'})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "X") || !strings.Contains(buf.String(), "~") {
		t.Errorf("custom runes not used:\n%s", buf.String())
	}
}
