// Package jitter emulates the Jitter runtime system (Kappiah, Freeh,
// Lowenthal — SC 2005), the prior work whose static form is the paper's MAX
// algorithm. Where MAX fixes one gear per process for the whole run from a
// profile, Jitter adapts online: after every iteration each node inspects
// its slack (time not spent computing) and shifts one gear down when it has
// slack to spare, or back up when it has become critical.
//
// The emulation replays the trace iteration by iteration, feeding the
// observed per-rank times of iteration i into the gear decision for
// iteration i+1 — the same information the real runtime gets from its
// per-iteration timers.
package jitter

import (
	"errors"
	"fmt"

	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/timemodel"
	"repro/internal/trace"
)

// Config parameterizes a Jitter emulation run.
type Config struct {
	// Trace is the application trace with iteration markers.
	Trace *trace.Trace
	// Platform models the interconnect; zero value = DefaultPlatform.
	Platform dimemas.Platform
	// Set is the available gear set; Jitter needs discrete gears.
	Set *dvfs.Set
	// Power configures the CPU power model; zero value = paper baseline.
	Power power.Config
	// Beta is the memory-boundedness parameter (0 = DefaultBeta unless
	// BetaSet).
	Beta float64
	// BetaSet marks Beta as explicitly chosen, so an explicit Beta = 0
	// is honored instead of defaulting to 0.5 (see analysis.Config).
	BetaSet bool
	// FMax is the nominal top frequency (0 = dvfs.FMax).
	FMax float64
	// SlackDown is the relative-slack fraction (a node's slack minus the
	// most critical node's slack) above which a node shifts one gear down
	// (default 0.08).
	SlackDown float64
	// SlackUp is the relative-slack fraction below which a node shifts one
	// gear up (default 0.02). Must be below SlackDown.
	SlackUp float64
	// Cache optionally memoizes the per-iteration profiling replays (every
	// rank at FMax), keyed by the parent trace and iteration index, so
	// repeated emulations of the same trace — parameter sweeps over the
	// slack thresholds, benchmarks — skip them. Nil means uncached.
	Cache *dimemas.ReplayCache
}

// Result reports a Jitter emulation.
type Result struct {
	// Time and Energy are the adaptive run's totals; OrigTime and
	// OrigEnergy the all-at-fmax run's.
	Time, Energy         float64
	OrigTime, OrigEnergy float64
	// Norm holds energy/time/EDP normalized to the original run.
	Norm metrics.Result
	// GearSwitches counts all per-node gear changes across the run — the
	// overhead the static MAX algorithm avoids.
	GearSwitches int
	// FinalGears is the per-rank gear after the last iteration.
	FinalGears []dvfs.Gear
	// Iterations is the number of adapted iterations.
	Iterations int
}

// Errors.
var (
	ErrContinuousSet = errors.New("jitter: the runtime shifts discrete gears; use a discrete set")
	ErrNoIterations  = errors.New("jitter: trace carries no iteration markers")
)

func (c *Config) normalize() error {
	if c.Trace == nil {
		return errors.New("jitter: config needs a trace")
	}
	if c.Set == nil {
		return errors.New("jitter: config needs a gear set")
	}
	if c.Set.Continuous() {
		return ErrContinuousSet
	}
	if c.Platform == (dimemas.Platform{}) {
		c.Platform = dimemas.DefaultPlatform()
	}
	if c.Power == (power.Config{}) {
		c.Power = power.DefaultConfig()
	}
	if c.Beta == 0 && !c.BetaSet {
		c.Beta = timemodel.DefaultBeta
	}
	if c.Beta < 0 || c.Beta > 1 {
		return fmt.Errorf("jitter: beta %v outside [0, 1]", c.Beta)
	}
	if c.FMax == 0 {
		c.FMax = dvfs.FMax
	}
	if c.SlackDown == 0 {
		c.SlackDown = 0.08
	}
	if c.SlackUp == 0 {
		c.SlackUp = 0.02
	}
	if c.SlackUp >= c.SlackDown {
		return fmt.Errorf("jitter: SlackUp %v must be below SlackDown %v", c.SlackUp, c.SlackDown)
	}
	return nil
}

// Run emulates the runtime over the whole trace.
func Run(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	iters := cfg.Trace.Iterations()
	if iters == 0 {
		return nil, ErrNoIterations
	}
	n := cfg.Trace.NumRanks()
	pm, err := power.New(cfg.Power)
	if err != nil {
		return nil, err
	}
	gears := cfg.Set.Gears()
	top := len(gears) - 1

	// Every node starts at the top gear, exactly like the real runtime.
	idx := make([]int, n)
	for r := range idx {
		idx[r] = top
	}

	res := &Result{Iterations: iters, FinalGears: make([]dvfs.Gear, n)}
	nominal := dvfs.GearAt(cfg.FMax)

	for it := 0; it < iters; it++ {
		sub, err := cfg.Trace.Slice(it, it+1)
		if err != nil {
			return nil, err
		}
		// Original (profiling) replay of this iteration at fmax.
		orig, err := cfg.Cache.OriginalSlice(cfg.Trace, it, sub, cfg.Platform, dimemas.Options{Beta: cfg.Beta, FMax: cfg.FMax})
		if err != nil {
			return nil, fmt.Errorf("jitter: iteration %d original replay: %w", it, err)
		}
		res.OrigTime += orig.Time
		origUsage := make([]power.Usage, n)
		for r := 0; r < n; r++ {
			origUsage[r] = power.Usage{Gear: nominal, ComputeTime: orig.Compute[r], CommTime: orig.Comm(r)}
		}
		e0, err := pm.Energy(origUsage)
		if err != nil {
			return nil, err
		}
		res.OrigEnergy += e0

		// Adaptive replay with the current gears.
		freqs := make([]float64, n)
		for r := 0; r < n; r++ {
			freqs[r] = gears[idx[r]].Freq
		}
		adapt, err := dimemas.Simulate(sub, cfg.Platform, dimemas.Options{Beta: cfg.Beta, FMax: cfg.FMax, Freqs: freqs})
		if err != nil {
			return nil, fmt.Errorf("jitter: iteration %d adaptive replay: %w", it, err)
		}
		res.Time += adapt.Time
		usage := make([]power.Usage, n)
		for r := 0; r < n; r++ {
			usage[r] = power.Usage{Gear: gears[idx[r]], ComputeTime: adapt.Compute[r], CommTime: adapt.Comm(r)}
		}
		e1, err := pm.Energy(usage)
		if err != nil {
			return nil, err
		}
		res.Energy += e1

		// Gear decision for the next iteration. Like the real runtime, each
		// node acts on its slack *relative to the most critical node*:
		// absolute slack would also count communication everyone performs
		// (a balanced, communication-heavy application must not slide all
		// its nodes down together — that only stretches the run).
		if it < iters-1 {
			minSlack := 1.0
			slacks := make([]float64, n)
			for r := 0; r < n; r++ {
				slacks[r] = 1 - adapt.Compute[r]/adapt.Time
				if slacks[r] < minSlack {
					minSlack = slacks[r]
				}
			}
			for r := 0; r < n; r++ {
				rel := slacks[r] - minSlack
				switch {
				case rel > cfg.SlackDown && idx[r] > 0:
					// Guard against overshoot, like the real runtime's
					// just-in-time completion estimate: only step down if
					// the predicted computation time at the lower gear
					// still fits inside the iteration with margin.
					// Without this, ranks near the critical path oscillate
					// between gears and stretch the run.
					cur := timemodel.Slowdown(cfg.Beta, cfg.FMax, gears[idx[r]].Freq)
					next := timemodel.Slowdown(cfg.Beta, cfg.FMax, gears[idx[r]-1].Freq)
					predicted := adapt.Compute[r] * next / cur
					if predicted < adapt.Time*(1-cfg.SlackUp) {
						idx[r]--
						res.GearSwitches++
					}
				case rel < cfg.SlackUp && idx[r] < top:
					idx[r]++
					res.GearSwitches++
				}
			}
		}
	}
	for r := 0; r < n; r++ {
		res.FinalGears[r] = gears[idx[r]]
	}
	res.Norm = metrics.NewResult(res.OrigEnergy, res.OrigTime, res.Energy, res.Time)
	return res, nil
}
