package jitter

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/dimemas"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/trace"
	"repro/internal/workload"
)

// imbalancedTrace: 4 ranks, fixed loads, barrier-synchronized iterations.
func imbalancedTrace(iters int) *trace.Trace {
	tr := trace.New("micro", 4)
	loads := []float64{1.0, 0.4, 0.4, 0.4}
	for it := 0; it < iters; it++ {
		for r, w := range loads {
			tr.Add(r, trace.Compute(w), trace.Coll(trace.CollBarrier, 0), trace.IterMark())
		}
	}
	return tr
}

func TestValidation(t *testing.T) {
	six, _ := dvfs.Uniform(6)
	if _, err := Run(Config{Set: six}); err == nil {
		t.Error("nil trace should fail")
	}
	if _, err := Run(Config{Trace: imbalancedTrace(2)}); err == nil {
		t.Error("nil set should fail")
	}
	if _, err := Run(Config{Trace: imbalancedTrace(2), Set: dvfs.ContinuousLimited()}); !errors.Is(err, ErrContinuousSet) {
		t.Errorf("continuous set: %v", err)
	}
	noIter := trace.New("x", 2)
	noIter.Add(0, trace.Compute(1))
	noIter.Add(1, trace.Compute(1))
	if _, err := Run(Config{Trace: noIter, Set: six}); !errors.Is(err, ErrNoIterations) {
		t.Errorf("no iterations: %v", err)
	}
	if _, err := Run(Config{Trace: imbalancedTrace(2), Set: six, Beta: 2}); err == nil {
		t.Error("bad beta should fail")
	}
	if _, err := Run(Config{Trace: imbalancedTrace(2), Set: six, SlackUp: 0.5, SlackDown: 0.1}); err == nil {
		t.Error("SlackUp above SlackDown should fail")
	}
}

func TestJitterConvergesDownOnSlackedRanks(t *testing.T) {
	six, _ := dvfs.Uniform(6)
	res, err := Run(Config{Trace: imbalancedTrace(12), Set: six})
	if err != nil {
		t.Fatal(err)
	}
	// The critical rank keeps the top gear; slacked ranks walk down.
	if res.FinalGears[0].Freq != dvfs.FMax {
		t.Errorf("critical rank gear = %v, want fmax", res.FinalGears[0])
	}
	for r := 1; r < 4; r++ {
		if res.FinalGears[r].Freq >= dvfs.FMax {
			t.Errorf("slacked rank %d still at %v", r, res.FinalGears[r])
		}
	}
	if res.GearSwitches == 0 {
		t.Error("no gear switches recorded")
	}
	if res.Norm.Energy >= 1 {
		t.Errorf("normalized energy %v, want savings", res.Norm.Energy)
	}
}

func TestJitterDoesNotSlowBalancedApps(t *testing.T) {
	tr := trace.New("balanced", 4)
	for it := 0; it < 8; it++ {
		for r := 0; r < 4; r++ {
			tr.Add(r, trace.Compute(1), trace.Coll(trace.CollBarrier, 0), trace.IterMark())
		}
	}
	six, _ := dvfs.Uniform(6)
	res, err := Run(Config{Trace: tr, Set: six})
	if err != nil {
		t.Fatal(err)
	}
	if res.Norm.Time > 1.001 {
		t.Errorf("balanced app slowed to %v", res.Norm.Time)
	}
	// No rank should leave the top gear (no slack beyond the threshold).
	for r, g := range res.FinalGears {
		if g.Freq != dvfs.FMax {
			t.Errorf("rank %d moved to %v on a balanced app", r, g)
		}
	}
}

// The headline comparison: the adaptive runtime approaches the static MAX
// assignment (which has perfect knowledge) but needs some iterations to
// converge, so it saves at most as much energy.
func TestJitterApproachesStaticMAX(t *testing.T) {
	inst, err := workload.FindInstance("IS-32")
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig()
	cfg.Iterations = 15
	cfg.SkipPECalibration = true
	tr, err := workload.Generate(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	six, _ := dvfs.Uniform(6)

	dyn, err := Run(Config{Trace: tr, Set: six})
	if err != nil {
		t.Fatal(err)
	}
	static, err := analysis.Run(analysis.Config{Trace: tr, Set: six, Algorithm: core.MAX})
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Norm.Energy >= 1 {
		t.Errorf("jitter should save on IS-32, got %v", dyn.Norm.Energy)
	}
	// Static MAX profiles the whole run first; the online runtime pays a
	// convergence tax, so it cannot beat MAX by much (tolerance for gear
	// boundary effects).
	if dyn.Norm.Energy < static.Norm.Energy-0.10 {
		t.Errorf("jitter %v suspiciously better than static MAX %v", dyn.Norm.Energy, static.Norm.Energy)
	}
	// ...but it should get within a reasonable band of it.
	if dyn.Norm.Energy > static.Norm.Energy+0.25 {
		t.Errorf("jitter %v too far behind static MAX %v", dyn.Norm.Energy, static.Norm.Energy)
	}
}

func TestEnergyBookkeepingConsistent(t *testing.T) {
	six, _ := dvfs.Uniform(6)
	res, err := Run(Config{Trace: imbalancedTrace(6), Set: six})
	if err != nil {
		t.Fatal(err)
	}
	wantNorm := res.Energy / res.OrigEnergy
	if math.Abs(res.Norm.Energy-wantNorm) > 1e-12 {
		t.Errorf("norm %v vs recomputed %v", res.Norm.Energy, wantNorm)
	}
	if res.Iterations != 6 {
		t.Errorf("iterations = %d", res.Iterations)
	}
	if res.OrigTime <= 0 || res.Time <= 0 {
		t.Error("non-positive times")
	}
}

func TestSlackThresholdsControlAggressiveness(t *testing.T) {
	six, _ := dvfs.Uniform(6)
	tr := imbalancedTrace(10)
	timid, err := Run(Config{Trace: tr, Set: six, SlackDown: 0.70, SlackUp: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	eager, err := Run(Config{Trace: tr, Set: six, SlackDown: 0.05, SlackUp: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// A very high down-threshold never triggers on 60% slack; the eager
	// configuration saves more.
	if eager.Norm.Energy >= timid.Norm.Energy {
		t.Errorf("eager %v should save more than timid %v", eager.Norm.Energy, timid.Norm.Energy)
	}
}

// TestCachedRunMatchesUncached re-runs the emulation with a shared replay
// cache: results must be bit-identical and the per-iteration profiling
// replays must be memoized under the (parent, iteration) keys.
func TestCachedRunMatchesUncached(t *testing.T) {
	six, _ := dvfs.Uniform(6)
	tr := imbalancedTrace(8)
	plain, err := Run(Config{Trace: tr, Set: six})
	if err != nil {
		t.Fatal(err)
	}
	cache := dimemas.NewReplayCache()
	for i := 0; i < 2; i++ { // second run consumes the memoized replays
		cached, err := Run(Config{Trace: tr, Set: six, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, cached) {
			t.Fatalf("run %d: cached emulation differs from uncached", i)
		}
	}
	if got := cache.Len(); got != tr.Iterations() {
		t.Errorf("cache holds %d replays, want one per iteration (%d)", got, tr.Iterations())
	}
}
