package faults

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestDisabledIsNil(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() after Disable()")
	}
	for _, p := range Points() {
		if err := Check(p); err != nil {
			t.Fatalf("disabled Check(%s) = %v", p, err)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	fire := func(seed uint64) []uint64 {
		r := NewRegistry(seed, map[Point]uint64{Retime: 3})
		var fired []uint64
		for i := 0; i < 300; i++ {
			if err := r.check(Retime); err != nil {
				var inj *InjectedError
				if !errors.As(err, &inj) {
					t.Fatalf("check returned %T, want *InjectedError", err)
				}
				fired = append(fired, inj.N)
			}
		}
		return fired
	}
	a, b := fire(42), fire(42)
	if len(a) == 0 {
		t.Fatal("rate-3 registry fired nothing in 300 checks")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different fault pattern:\n%v\n%v", a, b)
	}
	if c := fire(43); fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced the identical fault pattern")
	}
}

func TestRateRoughlyHonored(t *testing.T) {
	r := NewRegistry(7, map[Point]uint64{CacheFill: 4})
	for i := 0; i < 4000; i++ {
		r.check(CacheFill)
	}
	st := r.Stats()[CacheFill]
	if st.Checks != 4000 {
		t.Fatalf("checks = %d, want 4000", st.Checks)
	}
	// One-in-four on 4000 uniform draws: allow a generous band.
	if st.Fired < 700 || st.Fired > 1300 {
		t.Fatalf("rate-4 fired %d/4000, outside [700, 1300]", st.Fired)
	}
}

func TestUnconfiguredPointNeverFires(t *testing.T) {
	r := NewRegistry(1, map[Point]uint64{Retime: 1})
	for i := 0; i < 100; i++ {
		if err := r.check(TraceParse); err != nil {
			t.Fatalf("unconfigured point fired: %v", err)
		}
	}
	if err := r.check(Retime); err == nil {
		t.Fatal("rate-1 point did not fire")
	}
}

func TestIsInjected(t *testing.T) {
	err := &InjectedError{Point: HandlerIO, N: 12}
	if !IsInjected(err) {
		t.Fatal("IsInjected(InjectedError) = false")
	}
	if !IsInjected(fmt.Errorf("decoding body: %w", err)) {
		t.Fatal("IsInjected does not see through wrapping")
	}
	if IsInjected(errors.New("real failure")) {
		t.Fatal("IsInjected(plain error) = true")
	}
	if IsInjected(nil) {
		t.Fatal("IsInjected(nil) = true")
	}
}

func TestEnableDisableGlobal(t *testing.T) {
	t.Cleanup(Disable)
	Enable(NewRegistry(9, map[Point]uint64{HandlerIO: 1}))
	if err := Check(HandlerIO); err == nil {
		t.Fatal("enabled rate-1 Check did not fire")
	}
	Disable()
	if err := Check(HandlerIO); err != nil {
		t.Fatalf("Check after Disable = %v", err)
	}
}

func TestConcurrentChecksRace(t *testing.T) {
	r := NewRegistry(11, map[Point]uint64{SkeletonBuild: 2, Retime: 2})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.check(SkeletonBuild)
				r.check(Retime)
			}
		}()
	}
	wg.Wait()
	for p, st := range r.Stats() {
		if st.Checks != 4000 {
			t.Fatalf("%s: checks = %d, want 4000", p, st.Checks)
		}
		if st.Fired == 0 {
			t.Fatalf("%s: nothing fired", p)
		}
	}
	if r.Fired() == 0 {
		t.Fatal("Fired() = 0")
	}
}
