// Package faults is a deterministic, seeded fault-injection registry for
// chaos-testing the pipeline. Injection sites call Check(point); when no
// registry is enabled that costs one atomic pointer load and returns nil,
// so production binaries pay nothing unless fault injection is switched on
// explicitly (pwrsimd's -fault-seed/-fault-rate flags, or Enable in tests).
//
// Whether a given check fires is a pure function of (seed, point, check
// index): splitmix64(seed ^ fnv(point) ^ n) selects one check in every
// `rate`, so a soak run with a fixed seed injects a reproducible fault
// pattern per point regardless of wall-clock timing. Injected errors wrap
// ErrInjected; consumers that must never persist a transient fault (the
// replay cache, most importantly) detect them with IsInjected.
package faults

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Point names one injection site in the pipeline.
type Point string

// The injection sites wired into the pipeline.
const (
	// CacheFill fires inside ReplayCache single-flight fills.
	CacheFill Point = "cache.fill"
	// SkeletonBuild fires at timing-skeleton construction.
	SkeletonBuild Point = "skeleton.build"
	// Retime fires at skeleton retiming (the per-candidate hot path).
	Retime Point = "retime"
	// TraceParse fires at trace text parsing.
	TraceParse Point = "trace.parse"
	// HandlerIO fires at server request-body decoding.
	HandlerIO Point = "handler.io"
)

// Points lists every injection site (for CLI validation and tests).
func Points() []Point {
	return []Point{CacheFill, SkeletonBuild, Retime, TraceParse, HandlerIO}
}

// ErrInjected is the sentinel wrapped by every injected fault.
var ErrInjected = errors.New("injected fault")

// InjectedError is one fired fault: which point, and the 1-based check
// index at that point that fired (the reproducible coordinate of the
// fault, given the registry's seed).
type InjectedError struct {
	Point Point
	N     uint64
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("%s: %v (check %d)", e.Point, ErrInjected, e.N)
}

func (e *InjectedError) Unwrap() error { return ErrInjected }

// IsInjected reports whether err is (or wraps) an injected fault.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// PointStats counts one point's activity.
type PointStats struct {
	// Checks is how many times the point was crossed.
	Checks uint64
	// Fired is how many of those checks injected a fault.
	Fired uint64
}

type pointState struct {
	rate   uint64
	checks atomic.Uint64
	fired  atomic.Uint64
}

// Registry decides which checks fire. It is immutable after construction
// (only its counters move) and safe for concurrent use.
type Registry struct {
	seed   uint64
	points map[Point]*pointState
}

// NewRegistry builds a registry that fires one check in every rates[p] at
// point p, deterministically given seed. Points absent from rates (or with
// rate 0) never fire. rate 1 fires every check.
func NewRegistry(seed uint64, rates map[Point]uint64) *Registry {
	r := &Registry{seed: seed, points: make(map[Point]*pointState, len(rates))}
	for p, rate := range rates {
		r.points[p] = &pointState{rate: rate}
	}
	return r
}

// Stats snapshots every configured point's counters.
func (r *Registry) Stats() map[Point]PointStats {
	out := make(map[Point]PointStats, len(r.points))
	for p, st := range r.points {
		out[p] = PointStats{Checks: st.checks.Load(), Fired: st.fired.Load()}
	}
	return out
}

// Fired sums injected faults across every point.
func (r *Registry) Fired() uint64 {
	var n uint64
	for _, st := range r.points {
		n += st.fired.Load()
	}
	return n
}

// active is the process-global registry; nil means injection is disabled
// and Check is a single atomic load.
var active atomic.Pointer[Registry]

// Enable installs r as the process-global registry. Tests must pair it
// with Disable (t.Cleanup(faults.Disable)).
func Enable(r *Registry) { active.Store(r) }

// Disable switches fault injection off.
func Disable() { active.Store(nil) }

// Enabled reports whether a registry is installed.
func Enabled() bool { return active.Load() != nil }

// Check is the injection-site hook: nil almost always, an *InjectedError
// when the active registry decides this crossing of p fires.
func Check(p Point) error {
	r := active.Load()
	if r == nil {
		return nil
	}
	return r.check(p)
}

func (r *Registry) check(p Point) error {
	st := r.points[p]
	if st == nil || st.rate == 0 {
		return nil
	}
	n := st.checks.Add(1)
	if splitmix64(r.seed^fnv64(string(p))^n)%st.rate != 0 {
		return nil
	}
	st.fired.Add(1)
	return &InjectedError{Point: p, N: n}
}

// splitmix64 is the standard 64-bit finalizer; it decorrelates the
// (seed, point, index) coordinate so firing indices are spread uniformly.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64 is FNV-1a, inlined to keep the hot path allocation-free.
func fnv64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
