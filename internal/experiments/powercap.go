package experiments

import (
	"fmt"
	"io"

	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/powercap"
)

// Power-cap extension: the inverse of the paper's scenario. Instead of
// down-gearing under unbounded power, a fixed cluster power budget is
// redistributed across ranks to minimize execution time (Medhat et al.,
// PAPERS.md). Every candidate schedule is scored by retiming the shared
// timing skeleton, so a whole cap sweep costs little more than one replay.

// PowercapRow is one cap point of the budget-constrained scheduling sweep.
type PowercapRow struct {
	// CapFrac is the budget as a fraction of the uncapped all-compute peak;
	// Cap is the same budget in model watts.
	CapFrac, Cap float64
	// Peak is the redistributed schedule's exact profile peak (always ≤ Cap).
	Peak float64
	// UniTime/UniEnergy and RedTime/RedEnergy are each policy's execution
	// time and CPU energy normalized to the uncapped run.
	UniTime, UniEnergy float64
	RedTime, RedEnergy float64
	// Evaluations counts exact candidate replays for the row.
	Evaluations int
}

// DefaultPowercapFracs are the sweep's cap points: eight budgets from 40%
// to 80% of the uncapped peak cluster power.
func DefaultPowercapFracs() []float64 {
	return []float64{0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.80}
}

// PowercapSweep schedules one application under every cap fraction with
// both policies, sharing the suite's replay cache (one skeleton and one
// baseline for the whole sweep).
func (s *Suite) PowercapSweep(app string, fracs []float64) ([]PowercapRow, error) {
	tr, err := s.Trace(app)
	if err != nil {
		return nil, err
	}
	six, err := dvfs.Uniform(6)
	if err != nil {
		return nil, err
	}
	pm, err := power.New(power.DefaultConfig())
	if err != nil {
		return nil, err
	}
	uncappedPeak := float64(tr.NumRanks()) * pm.Power(power.Compute, dvfs.GearAt(s.Gen.FMax))
	rows := make([]PowercapRow, 0, len(fracs))
	for _, frac := range fracs {
		res, err := powercap.Run(powercap.Config{
			Trace:    tr,
			Platform: s.Gen.Platform,
			Set:      six,
			Cap:      frac * uncappedPeak,
			Beta:     s.Beta,
			FMax:     s.Gen.FMax,
			Cache:    s.replays,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: powercap %s at %.0f%%: %w", app, frac*100, err)
		}
		rows = append(rows, PowercapRow{
			CapFrac:     frac,
			Cap:         res.Cap,
			Peak:        res.Redistributed.PeakPower,
			UniTime:     res.Uniform.NormTime,
			UniEnergy:   res.Uniform.NormEnergy,
			RedTime:     res.Redistributed.NormTime,
			RedEnergy:   res.Redistributed.NormEnergy,
			Evaluations: res.Evaluations,
		})
	}
	return rows, nil
}

// PowercapTable renders one application's cap sweep.
func PowercapTable(app string, rows []PowercapRow) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Extension — power-cap gear scheduling, %s (peak budget, 6-gear set)", app),
		Header: []string{"cap", "cap (W)", "peak (W)", "T uniform", "T redistr", "E uniform", "E redistr", "evals"},
		Notes: []string{
			"cap: peak cluster power budget as a fraction of the uncapped all-compute peak.",
			"peak: exact profile peak of the redistributed schedule — never above the cap.",
			"T/E: execution time and CPU energy normalized to the uncapped (all-FMax) run.",
			"redistribution takes power from slack-rich ranks first, so the critical rank keeps its gear longer than under uniform downshift.",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			pct(r.CapFrac),
			fmt.Sprintf("%.1f", r.Cap),
			fmt.Sprintf("%.1f", r.Peak),
			pct(r.UniTime), pct(r.RedTime),
			pct(r.UniEnergy), pct(r.RedEnergy),
			fmt.Sprintf("%d", r.Evaluations),
		})
	}
	return t
}

// PowercapStudy runs the cap sweep for the two large imbalanced instances
// the redistribution policy is built for.
func (s *Suite) PowercapStudy(w io.Writer) error {
	for _, app := range []string{"WRF-128", "SPECFEM3D-96"} {
		rows, err := s.PowercapSweep(app, DefaultPowercapFracs())
		if err != nil {
			return err
		}
		if err := PowercapTable(app, rows).Write(w); err != nil {
			return err
		}
	}
	return nil
}
