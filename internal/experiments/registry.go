package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is a runnable, named reproduction of one paper artifact.
type Experiment struct {
	ID          string
	Description string
	Run         func(s *Suite, w io.Writer) error
}

// All returns every experiment, tables first, figures in paper order, then
// the extensions.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: six-gear evenly distributed set", func(s *Suite, w io.Writer) error {
			t, err := Table1()
			if err != nil {
				return err
			}
			return t.Write(w)
		}},
		{"table2", "Table 2: six-gear exponential set", func(s *Suite, w io.Writer) error {
			t, err := Table2()
			if err != nil {
				return err
			}
			return t.Write(w)
		}},
		{"table3", "Table 3: application characteristics (LB, PE)", func(s *Suite, w io.Writer) error {
			rows, err := s.Table3()
			if err != nil {
				return err
			}
			return Table3Table(rows).Write(w)
		}},
		{"fig1", "Figure 1: BT-MZ execution before/after MAX", func(s *Suite, w io.Writer) error {
			return s.Figure1(w)
		}},
		{"fig2", "Figure 2: normalized energy and EDP for different gear sets", func(s *Suite, w io.Writer) error {
			sw, err := s.Figure2()
			if err != nil {
				return err
			}
			if err := sw.EnergyTable().Write(w); err != nil {
				return err
			}
			return sw.EDPTable().Write(w)
		}},
		{"fig3", "Figure 3: energy as a function of load balance", func(s *Suite, w io.Writer) error {
			sw, err := s.Figure3()
			if err != nil {
				return err
			}
			return Figure3Table(sw).Write(w)
		}},
		{"fig4", "Figure 4: exponential gear sets", func(s *Suite, w io.Writer) error {
			sw, err := s.Figure4()
			if err != nil {
				return err
			}
			if err := sw.EnergyTable().Write(w); err != nil {
				return err
			}
			return sw.EDPTable().Write(w)
		}},
		{"fig5", "Figure 5: impact of the beta parameter", func(s *Suite, w io.Writer) error {
			sw, err := s.Figure5()
			if err != nil {
				return err
			}
			return sw.EnergyTable().Write(w)
		}},
		{"fig6", "Figure 6: energy as a function of static power", func(s *Suite, w io.Writer) error {
			sw, err := s.Figure6()
			if err != nil {
				return err
			}
			return sw.EnergyTable().Write(w)
		}},
		{"fig7", "Figure 7: impact of the activity factor", func(s *Suite, w io.Writer) error {
			sw, err := s.Figure7()
			if err != nil {
				return err
			}
			return sw.EnergyTable().Write(w)
		}},
		{"fig8", "Figure 8: AVG algorithm with continuous set (10%/20% overclock)", func(s *Suite, w io.Writer) error {
			sw, err := s.Figure8()
			if err != nil {
				return err
			}
			if err := sw.EnergyTable().Write(w); err != nil {
				return err
			}
			return sw.EDPTable().Write(w)
		}},
		{"fig9", "Figure 9: AVG algorithm with discrete set", func(s *Suite, w io.Writer) error {
			sw, err := s.Figure9()
			if err != nil {
				return err
			}
			return Figure9Table(sw).Write(w)
		}},
		{"fig10", "Figure 10: comparison of MAX and AVG algorithms", func(s *Suite, w io.Writer) error {
			sw, err := s.Figure10()
			if err != nil {
				return err
			}
			return Figure10Table(sw).Write(w)
		}},
		{"scaling", "Extension: imbalance and savings vs cluster size", func(s *Suite, w io.Writer) error {
			for _, app := range []string{"CG", "IS", "SPECFEM3D", "WRF"} {
				rows, err := s.Scaling(app, []int{16, 32, 64, 128})
				if err != nil {
					return err
				}
				if err := ScalingTable(app, rows).Write(w); err != nil {
					return err
				}
			}
			return nil
		}},
		{"ablate-protocol", "Ablation: eager/rendezvous threshold", func(s *Suite, w io.Writer) error {
			rows, err := s.AblateProtocol()
			if err != nil {
				return err
			}
			return AblationTable("Ablation — p2p protocol threshold (MAX, 6-gear)", rows).Write(w)
		}},
		{"ablate-coll", "Ablation: linear vs logarithmic all-to-all model", func(s *Suite, w io.Writer) error {
			rows, err := s.AblateCollectiveModel()
			if err != nil {
				return err
			}
			return AblationTable("Ablation — all-to-all cost model (MAX, 6-gear)", rows).Write(w)
		}},
		{"ablate-rounding", "Ablation: closest-higher vs nearest gear quantization", func(s *Suite, w io.Writer) error {
			rows, err := s.AblateRounding()
			if err != nil {
				return err
			}
			return AblationTable("Ablation — gear quantization rule (MAX, 6-gear)", rows).Write(w)
		}},
		{"jitter", "Extension: adaptive Jitter runtime vs static MAX", func(s *Suite, w io.Writer) error {
			rows, err := s.JitterVsStatic()
			if err != nil {
				return err
			}
			return JitterTable(rows).Write(w)
		}},
		{"phased", "Extension: per-phase DVFS assignment (PEPC fix)", func(s *Suite, w io.Writer) error {
			rows, err := s.PerPhaseStudy()
			if err != nil {
				return err
			}
			return PhasedTable(rows).Write(w)
		}},
		{"optimize-gears", "Extension: coordinate-descent gear placement search", func(s *Suite, w io.Writer) error {
			return s.OptimizeGears(w)
		}},
		{"powercap", "Extension: budget-constrained gear scheduling (cap sweep)", func(s *Suite, w io.Writer) error {
			return s.PowercapStudy(w)
		}},
		{"rebalance", "Extension: online rebalancing under load drift (policy sweep)", func(s *Suite, w io.Writer) error {
			return s.RebalanceStudy(w)
		}},
		{"hetero", "Extension: heterogeneous machine — capability-proportional shares and topology-aware placement", func(s *Suite, w io.Writer) error {
			return s.HeteroStudy(w)
		}},
	}
}

// ByID finds one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (known: %v)", id, ids)
}
