package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestJitterVsStatic(t *testing.T) {
	rows, err := sharedSuite.JitterVsStatic()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// The adaptive runtime cannot beat the omniscient static profile by
		// much; both must stay within sane ranges.
		if r.DynamicEnergy <= 0 || r.DynamicEnergy > 1.05 {
			t.Errorf("%s: dynamic energy %v", r.App, r.DynamicEnergy)
		}
		if r.App == "CG-32" {
			// Balanced app: relative slack never triggers, no switches.
			if r.GearSwitches > 8 {
				t.Errorf("CG-32: %d gear switches on a balanced app", r.GearSwitches)
			}
			if r.DynamicTime > 1.01 {
				t.Errorf("CG-32: dynamic time %v", r.DynamicTime)
			}
		}
		if r.App == "BT-MZ-32" {
			if r.DynamicEnergy > 0.8 {
				t.Errorf("BT-MZ-32: dynamic energy %v, want real savings", r.DynamicEnergy)
			}
			if r.GearSwitches == 0 {
				t.Error("BT-MZ-32: no gear switches on an imbalanced app")
			}
		}
	}
	var buf bytes.Buffer
	if err := JitterTable(rows).Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "gear switches") {
		t.Error("table header missing")
	}
}

func TestPerPhaseStudy(t *testing.T) {
	rows, err := sharedSuite.PerPhaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]PhasedRow{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	pepc, ok := byApp["PEPC-128"]
	if !ok {
		t.Fatal("PEPC-128 missing")
	}
	if pepc.Phases != 2 {
		t.Errorf("PEPC phases = %d", pepc.Phases)
	}
	// The headline: per-phase assignment repairs PEPC's time inflation and
	// saves more energy.
	if pepc.PerProcessTime < 1.05 {
		t.Errorf("PEPC per-process time %v: expected inflation", pepc.PerProcessTime)
	}
	if pepc.PerPhaseTime > 1.02 {
		t.Errorf("PEPC per-phase time %v, want ~1", pepc.PerPhaseTime)
	}
	if pepc.PerPhaseEnergy >= pepc.PerProcessEnergy {
		t.Errorf("PEPC per-phase energy %v should beat per-process %v",
			pepc.PerPhaseEnergy, pepc.PerProcessEnergy)
	}
	// Single-phase apps are unchanged.
	bt := byApp["BT-MZ-32"]
	if bt.Phases != 1 {
		t.Errorf("BT-MZ phases = %d", bt.Phases)
	}
	if diff := bt.PerPhaseEnergy - bt.PerProcessEnergy; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("BT-MZ energies differ: %v vs %v", bt.PerPhaseEnergy, bt.PerProcessEnergy)
	}
	var buf bytes.Buffer
	if err := PhasedTable(rows).Write(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestAblateRounding(t *testing.T) {
	rows, err := sharedSuite.AblateRounding()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	up := map[string]AblationRow{}
	nearest := map[string]AblationRow{}
	for _, r := range rows {
		if r.Config == "round-up" {
			up[r.App] = r
		} else {
			nearest[r.App] = r
		}
	}
	for app, u := range up {
		n := nearest[app]
		// Nearest rounding picks slower-or-equal gears, so the run never
		// gets faster. Energy can move either way: lower gear power fights
		// the longer runtime (BT-MZ actually loses energy overall), which
		// is exactly why the ablation is worth reporting.
		if n.Time < u.Time-1e-9 {
			t.Errorf("%s: nearest time %v below round-up %v", app, n.Time, u.Time)
		}
		if n.Energy <= 0 || n.Energy > 1.1 {
			t.Errorf("%s: nearest energy %v out of range", app, n.Energy)
		}
	}
	// The trade must be visible somewhere: at least one app pays time for
	// the extra energy savings.
	paid := false
	for app := range up {
		if nearest[app].Time > up[app].Time+0.01 {
			paid = true
		}
	}
	if !paid {
		t.Error("nearest rounding showed no time penalty on any app")
	}
}

func TestOptimizeGearsExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("search in short mode")
	}
	var buf bytes.Buffer
	if err := sharedSuite.OptimizeGears(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "optimized") || !strings.Contains(out, "uniform") {
		t.Errorf("output:\n%s", out)
	}
}

// TestParallelSweepMatchesSerial verifies that fanning sweep cells over a
// worker pool produces bit-identical results to the serial run. QuickSuite
// defaults to parallel workers, so the serial arm forces Workers = 0.
func TestParallelSweepMatchesSerial(t *testing.T) {
	ser := QuickSuite()
	ser.cache = sharedSuite.cache // share generated traces, not the config
	ser.Workers = 0
	serial, err := ser.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	par := QuickSuite()
	par.cache = sharedSuite.cache
	par.Workers = 8
	parallel, err := par.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Apps {
		if serial.LB[i] != parallel.LB[i] {
			t.Errorf("%s: LB differs", serial.Apps[i])
		}
		for j := range serial.Cols {
			if serial.Cells[i][j] != parallel.Cells[i][j] {
				t.Errorf("%s/%s: cells differ: %+v vs %+v",
					serial.Apps[i], serial.Cols[j], serial.Cells[i][j], parallel.Cells[i][j])
			}
		}
	}
}
