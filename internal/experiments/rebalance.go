package experiments

import (
	"fmt"
	"io"

	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/predict"
	"repro/internal/rebalance"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Online-rebalancing extension: the paper's end goal is a *runtime* that
// re-assigns DVFS gears while the application runs. This study exposes the
// static one-shot assignment to drifting per-rank load and compares
// rebalancing triggers: never (the paper's offline algorithm), always
// (re-solve every iteration, paying the runtime overhead each time), and a
// balance-degradation threshold with hysteresis — plus the threshold trigger
// under a fixed peak power budget, where every re-solve delegates to the
// power-cap redistribution scheduler.

// RebalanceScenario names one drift model of the sweep.
type RebalanceScenario struct {
	Name  string
	Drift workload.Drift
}

// DefaultRebalanceScenarios returns the three drift shapes of the study,
// all overlaid with transient jitter a good trigger should ignore:
// a progressive ramp (imbalance migrates across ranks), a random walk
// (unstructured divergence), and a mid-run step (sudden phase change).
func DefaultRebalanceScenarios() []RebalanceScenario {
	return []RebalanceScenario{
		{"ramp", workload.Drift{Kind: workload.DriftRamp, Magnitude: 0.5, Jitter: 0.02, Seed: 41}},
		{"walk", workload.Drift{Kind: workload.DriftWalk, Magnitude: 0.015, Jitter: 0.02, Seed: 42}},
		{"step", workload.Drift{Kind: workload.DriftStep, Magnitude: 0.5, Jitter: 0.02, Seed: 40}},
	}
}

// Study parameters: 60 online iterations give every drift shape time to
// bite. The re-assignment overhead models the runtime's coordination (an
// allreduce of per-rank timings, the re-solve, and the DVFS transitions) —
// 3 ms against ~60 ms iterations, so re-solving every iteration costs real
// time and energy while threshold-triggered re-solves amortize it. The 15%
// guard band keeps iteration noise from stretching a freshly balanced run
// (without it, every adaptive policy loses several percent of time to the
// max-over-ranks load surprise), and the 1%-degradation trigger with
// 2-iteration hysteresis re-solves on persistent drift only.
const (
	rebalanceIterations = 60
	rebalanceOverhead   = 3e-3
	rebalanceMargin     = 0.15
	rebalanceThreshold  = 0.01
	rebalanceHysteresis = 2
	rebalanceCapFrac    = 0.70
	// rebalancePredictWindow sizes the predictive policies' linear-trend
	// fit and skill window: long enough to average the 2% iteration jitter
	// out of the slope estimate, short enough to re-fit quickly after the
	// step scenario's phase change.
	rebalancePredictWindow = 12
)

// rebalancePredict is the forecaster the predictive policies run with.
func rebalancePredict() predict.Config {
	return predict.Config{Kind: predict.KindLinear, Window: rebalancePredictWindow}
}

// RebalanceRow is one drift scenario's policy comparison.
type RebalanceRow struct {
	Scenario string
	// Per-policy totals normalized to the all-at-FMax execution of the
	// same drifted iterations.
	NeverTime, NeverEnergy   float64
	AlwaysTime, AlwaysEnergy float64
	ThreshTime, ThreshEnergy float64
	// ThreshReassigns and AlwaysReassigns count gear-changing re-solves.
	ThreshReassigns, AlwaysReassigns int
	// Capped is the threshold trigger under a peak budget of
	// rebalanceCapFrac × the uncapped all-compute peak; CapPeak is the
	// worst per-iteration exact profile peak (never above Cap).
	CapTime, CapEnergy, CapPeak, Cap float64
	// Pred is the predictive policy: forecast-triggered re-solves against
	// the forecast load vector (internal/predict).
	PredTime, PredEnergy float64
	PredReassigns        int
	// PredFallbacks counts iterations the forecaster answered with the
	// last observation because the model had no demonstrated skill.
	PredFallbacks int
	// PredCap is the predictive trigger under the same peak budget as
	// Capped: forecast-driven power redistribution.
	PredCapTime, PredCapEnergy, PredCapPeak float64
}

// RebalanceSweep runs every scenario × policy combination for one
// application, sharing the suite's replay cache (one base-iteration skeleton
// for the entire sweep).
func (s *Suite) RebalanceSweep(app string, scenarios []RebalanceScenario) ([]RebalanceRow, error) {
	tr, err := s.Trace(app)
	if err != nil {
		return nil, err
	}
	six, err := dvfs.Uniform(6)
	if err != nil {
		return nil, err
	}
	pm, err := power.New(power.DefaultConfig())
	if err != nil {
		return nil, err
	}
	cap := rebalanceCapFrac * float64(tr.NumRanks()) * pm.Power(power.Compute, dvfs.GearAt(s.Gen.FMax))

	rows := make([]RebalanceRow, 0, len(scenarios))
	for _, sc := range scenarios {
		base := s.rebalanceConfig(tr, six, sc.Drift)
		run := func(p rebalance.Policy, cap float64, exactPeaks bool) (*rebalance.Result, error) {
			cfg := base
			cfg.Policy = p
			cfg.Cap = cap
			cfg.ExactPeaks = exactPeaks
			if p == rebalance.PolicyPredictive || p == rebalance.PolicyPredictiveCapped {
				cfg.Predict = rebalancePredict()
			}
			res, err := rebalance.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: rebalance %s/%s/%s: %w", app, sc.Name, p, err)
			}
			return res, nil
		}
		never, err := run(rebalance.PolicyNever, 0, false)
		if err != nil {
			return nil, err
		}
		always, err := run(rebalance.PolicyEveryK, 0, false)
		if err != nil {
			return nil, err
		}
		thresh, err := run(rebalance.PolicyThreshold, 0, false)
		if err != nil {
			return nil, err
		}
		capped, err := run(rebalance.PolicyCapped, cap, true)
		if err != nil {
			return nil, err
		}
		pred, err := run(rebalance.PolicyPredictive, 0, false)
		if err != nil {
			return nil, err
		}
		predCap, err := run(rebalance.PolicyPredictiveCapped, cap, true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, RebalanceRow{
			Scenario:        sc.Name,
			NeverTime:       never.Norm.Time,
			NeverEnergy:     never.Norm.Energy,
			AlwaysTime:      always.Norm.Time,
			AlwaysEnergy:    always.Norm.Energy,
			ThreshTime:      thresh.Norm.Time,
			ThreshEnergy:    thresh.Norm.Energy,
			ThreshReassigns: thresh.Reassignments,
			AlwaysReassigns: always.Reassignments,
			CapTime:         capped.Norm.Time,
			CapEnergy:       capped.Norm.Energy,
			CapPeak:         capped.PeakPower,
			Cap:             cap,
			PredTime:        pred.Norm.Time,
			PredEnergy:      pred.Norm.Energy,
			PredReassigns:   pred.Reassignments,
			PredFallbacks:   pred.Forecast.Fallbacks,
			PredCapTime:     predCap.Norm.Time,
			PredCapEnergy:   predCap.Norm.Energy,
			PredCapPeak:     predCap.PeakPower,
		})
	}
	return rows, nil
}

// rebalanceConfig builds the study's shared controller configuration for one
// application trace and drift scenario (policy, cap and peak accounting are
// set per arm by the sweep).
func (s *Suite) rebalanceConfig(tr *trace.Trace, set *dvfs.Set, drift workload.Drift) rebalance.Config {
	return rebalance.Config{
		Trace:            tr,
		Platform:         s.Gen.Platform,
		Set:              set,
		Beta:             s.Beta,
		FMax:             s.Gen.FMax,
		Iterations:       rebalanceIterations,
		Drift:            drift,
		Threshold:        rebalanceThreshold,
		Hysteresis:       rebalanceHysteresis,
		Margin:           rebalanceMargin,
		ReassignOverhead: rebalanceOverhead,
		Cache:            s.replays,
	}
}

// RebalanceTable renders one application's drift-scenario sweep.
func RebalanceTable(app string, rows []RebalanceRow) *Table {
	t := &Table{
		Title: fmt.Sprintf("Extension — online rebalancing under load drift, %s (%d iterations, 6-gear set, MAX)", app, rebalanceIterations),
		Header: []string{"drift", "E never", "E always", "E thresh", "E pred", "T never", "T always", "T thresh", "T pred",
			"solves a/t/p", "E capped", "E pcap", "peak/cap (W)"},
		Notes: []string{
			"E/T: total energy and time over the drifting run, normalized to the all-at-FMax execution of the same iterations.",
			"never: the paper's one-shot assignment exposed to drift; always: re-solve every iteration (paying the runtime overhead); thresh: balance-degradation trigger with hysteresis.",
			fmt.Sprintf("pred: predictive policy — a %d-observation linear-trend forecaster triggers on the predicted balance of the next iteration and re-solves against the forecast loads; on unforecastable drift (walk) its skill guard degrades it to the threshold trigger.", rebalancePredictWindow),
			"solves a/t/p: gear-changing re-solves of always vs threshold vs predictive.",
			fmt.Sprintf("capped/pcap: threshold and predictive triggers under a %.0f%% peak budget via powercap redistribution; peak is the worst per-iteration exact profile peak across both — never above the cap.", rebalanceCapFrac*100),
		},
	}
	for _, r := range rows {
		peak := r.CapPeak
		if r.PredCapPeak > peak {
			peak = r.PredCapPeak
		}
		t.Rows = append(t.Rows, []string{
			r.Scenario,
			pct(r.NeverEnergy), pct(r.AlwaysEnergy), pct(r.ThreshEnergy), pct(r.PredEnergy),
			pct(r.NeverTime), pct(r.AlwaysTime), pct(r.ThreshTime), pct(r.PredTime),
			fmt.Sprintf("%d/%d/%d", r.AlwaysReassigns, r.ThreshReassigns, r.PredReassigns),
			pct(r.CapEnergy), pct(r.PredCapEnergy),
			fmt.Sprintf("%.0f/%.0f", peak, r.Cap),
		})
	}
	return t
}

// RebalanceStudy runs the drift sweep for the two large instances the
// powercap study also uses.
func (s *Suite) RebalanceStudy(w io.Writer) error {
	for _, app := range []string{"WRF-128", "SPECFEM3D-96"} {
		rows, err := s.RebalanceSweep(app, DefaultRebalanceScenarios())
		if err != nil {
			return err
		}
		if err := RebalanceTable(app, rows).Write(w); err != nil {
			return err
		}
	}
	return nil
}
