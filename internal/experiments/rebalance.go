package experiments

import (
	"fmt"
	"io"

	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/rebalance"
	"repro/internal/workload"
)

// Online-rebalancing extension: the paper's end goal is a *runtime* that
// re-assigns DVFS gears while the application runs. This study exposes the
// static one-shot assignment to drifting per-rank load and compares
// rebalancing triggers: never (the paper's offline algorithm), always
// (re-solve every iteration, paying the runtime overhead each time), and a
// balance-degradation threshold with hysteresis — plus the threshold trigger
// under a fixed peak power budget, where every re-solve delegates to the
// power-cap redistribution scheduler.

// RebalanceScenario names one drift model of the sweep.
type RebalanceScenario struct {
	Name  string
	Drift workload.Drift
}

// DefaultRebalanceScenarios returns the three drift shapes of the study,
// all overlaid with transient jitter a good trigger should ignore:
// a progressive ramp (imbalance migrates across ranks), a random walk
// (unstructured divergence), and a mid-run step (sudden phase change).
func DefaultRebalanceScenarios() []RebalanceScenario {
	return []RebalanceScenario{
		{"ramp", workload.Drift{Kind: workload.DriftRamp, Magnitude: 0.5, Jitter: 0.02, Seed: 41}},
		{"walk", workload.Drift{Kind: workload.DriftWalk, Magnitude: 0.015, Jitter: 0.02, Seed: 42}},
		{"step", workload.Drift{Kind: workload.DriftStep, Magnitude: 0.5, Jitter: 0.02, Seed: 43}},
	}
}

// Study parameters: 60 online iterations give every drift shape time to
// bite. The re-assignment overhead models the runtime's coordination (an
// allreduce of per-rank timings, the re-solve, and the DVFS transitions) —
// 3 ms against ~60 ms iterations, so re-solving every iteration costs real
// time and energy while threshold-triggered re-solves amortize it. The 15%
// guard band keeps iteration noise from stretching a freshly balanced run
// (without it, every adaptive policy loses several percent of time to the
// max-over-ranks load surprise), and the 1%-degradation trigger with
// 2-iteration hysteresis re-solves on persistent drift only.
const (
	rebalanceIterations = 60
	rebalanceOverhead   = 3e-3
	rebalanceMargin     = 0.15
	rebalanceThreshold  = 0.01
	rebalanceHysteresis = 2
	rebalanceCapFrac    = 0.70
)

// RebalanceRow is one drift scenario's policy comparison.
type RebalanceRow struct {
	Scenario string
	// Per-policy totals normalized to the all-at-FMax execution of the
	// same drifted iterations.
	NeverTime, NeverEnergy   float64
	AlwaysTime, AlwaysEnergy float64
	ThreshTime, ThreshEnergy float64
	// ThreshReassigns and AlwaysReassigns count gear-changing re-solves.
	ThreshReassigns, AlwaysReassigns int
	// Capped is the threshold trigger under a peak budget of
	// rebalanceCapFrac × the uncapped all-compute peak; CapPeak is the
	// worst per-iteration exact profile peak (never above Cap).
	CapTime, CapEnergy, CapPeak, Cap float64
}

// RebalanceSweep runs every scenario × policy combination for one
// application, sharing the suite's replay cache (one base-iteration skeleton
// for the entire sweep).
func (s *Suite) RebalanceSweep(app string, scenarios []RebalanceScenario) ([]RebalanceRow, error) {
	tr, err := s.Trace(app)
	if err != nil {
		return nil, err
	}
	six, err := dvfs.Uniform(6)
	if err != nil {
		return nil, err
	}
	pm, err := power.New(power.DefaultConfig())
	if err != nil {
		return nil, err
	}
	cap := rebalanceCapFrac * float64(tr.NumRanks()) * pm.Power(power.Compute, dvfs.GearAt(s.Gen.FMax))

	rows := make([]RebalanceRow, 0, len(scenarios))
	for _, sc := range scenarios {
		base := rebalance.Config{
			Trace:            tr,
			Platform:         s.Gen.Platform,
			Set:              six,
			Beta:             s.Beta,
			FMax:             s.Gen.FMax,
			Iterations:       rebalanceIterations,
			Drift:            sc.Drift,
			Threshold:        rebalanceThreshold,
			Hysteresis:       rebalanceHysteresis,
			Margin:           rebalanceMargin,
			ReassignOverhead: rebalanceOverhead,
			Cache:            s.replays,
		}
		run := func(p rebalance.Policy, cap float64, exactPeaks bool) (*rebalance.Result, error) {
			cfg := base
			cfg.Policy = p
			cfg.Cap = cap
			cfg.ExactPeaks = exactPeaks
			res, err := rebalance.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: rebalance %s/%s/%s: %w", app, sc.Name, p, err)
			}
			return res, nil
		}
		never, err := run(rebalance.PolicyNever, 0, false)
		if err != nil {
			return nil, err
		}
		always, err := run(rebalance.PolicyEveryK, 0, false)
		if err != nil {
			return nil, err
		}
		thresh, err := run(rebalance.PolicyThreshold, 0, false)
		if err != nil {
			return nil, err
		}
		capped, err := run(rebalance.PolicyCapped, cap, true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, RebalanceRow{
			Scenario:        sc.Name,
			NeverTime:       never.Norm.Time,
			NeverEnergy:     never.Norm.Energy,
			AlwaysTime:      always.Norm.Time,
			AlwaysEnergy:    always.Norm.Energy,
			ThreshTime:      thresh.Norm.Time,
			ThreshEnergy:    thresh.Norm.Energy,
			ThreshReassigns: thresh.Reassignments,
			AlwaysReassigns: always.Reassignments,
			CapTime:         capped.Norm.Time,
			CapEnergy:       capped.Norm.Energy,
			CapPeak:         capped.PeakPower,
			Cap:             cap,
		})
	}
	return rows, nil
}

// RebalanceTable renders one application's drift-scenario sweep.
func RebalanceTable(app string, rows []RebalanceRow) *Table {
	t := &Table{
		Title: fmt.Sprintf("Extension — online rebalancing under load drift, %s (%d iterations, 6-gear set, MAX)", app, rebalanceIterations),
		Header: []string{"drift", "E never", "E always", "E thresh", "T never", "T always", "T thresh",
			"solves a/t", "E capped", "peak/cap (W)"},
		Notes: []string{
			"E/T: total energy and time over the drifting run, normalized to the all-at-FMax execution of the same iterations.",
			"never: the paper's one-shot assignment exposed to drift; always: re-solve every iteration (paying the runtime overhead); thresh: balance-degradation trigger with hysteresis.",
			"solves a/t: gear-changing re-solves of always vs threshold.",
			fmt.Sprintf("capped: threshold trigger under a %.0f%% peak budget via powercap redistribution; peak is the worst per-iteration exact profile peak — never above the cap.", rebalanceCapFrac*100),
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Scenario,
			pct(r.NeverEnergy), pct(r.AlwaysEnergy), pct(r.ThreshEnergy),
			pct(r.NeverTime), pct(r.AlwaysTime), pct(r.ThreshTime),
			fmt.Sprintf("%d/%d", r.AlwaysReassigns, r.ThreshReassigns),
			pct(r.CapEnergy),
			fmt.Sprintf("%.0f/%.0f", r.CapPeak, r.Cap),
		})
	}
	return t
}

// RebalanceStudy runs the drift sweep for the two large instances the
// powercap study also uses.
func (s *Suite) RebalanceStudy(w io.Writer) error {
	for _, app := range []string{"WRF-128", "SPECFEM3D-96"} {
		rows, err := s.RebalanceSweep(app, DefaultRebalanceScenarios())
		if err != nil {
			return err
		}
		if err := RebalanceTable(app, rows).Write(w); err != nil {
			return err
		}
	}
	return nil
}
