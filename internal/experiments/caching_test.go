package experiments

// Tests for the baseline-replay memoization and the sweep worker pool's
// error handling introduced with the event-driven engine.

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dimemas"
	"repro/internal/dvfs"
)

// TestCachedBaselineByteIdentical runs the full pipeline for all twelve
// Table 3 applications three ways — uncached, through a shared ReplayCache,
// and with an explicitly precomputed Baseline — and requires byte-identical
// Results (every float compared exactly, via reflect.DeepEqual).
func TestCachedBaselineByteIdentical(t *testing.T) {
	six, err := dvfs.Uniform(6)
	if err != nil {
		t.Fatal(err)
	}
	cache := dimemas.NewReplayCache()
	for _, app := range AppNames() {
		tr, err := sharedSuite.Trace(app)
		if err != nil {
			t.Fatal(err)
		}
		cfg := analysis.Config{
			Trace:     tr,
			Platform:  sharedSuite.Gen.Platform,
			Set:       six,
			Algorithm: core.MAX,
			Beta:      sharedSuite.Beta,
			FMax:      sharedSuite.Gen.FMax,
		}
		uncached, err := analysis.Run(cfg)
		if err != nil {
			t.Fatalf("%s: uncached: %v", app, err)
		}

		withCache := cfg
		withCache.Cache = cache
		// Twice: the first run fills the cache, the second consumes it.
		if _, err := analysis.Run(withCache); err != nil {
			t.Fatalf("%s: cache fill: %v", app, err)
		}
		cached, err := analysis.Run(withCache)
		if err != nil {
			t.Fatalf("%s: cached: %v", app, err)
		}
		if !reflect.DeepEqual(uncached, cached) {
			t.Errorf("%s: cached result differs from uncached", app)
		}

		orig, err := cache.Original(tr, cfg.Platform,
			dimemas.Options{Beta: cfg.Beta, FMax: cfg.FMax})
		if err != nil {
			t.Fatal(err)
		}
		withBaseline := cfg
		withBaseline.Baseline = orig
		precomputed, err := analysis.Run(withBaseline)
		if err != nil {
			t.Fatalf("%s: baseline: %v", app, err)
		}
		if !reflect.DeepEqual(uncached, precomputed) {
			t.Errorf("%s: precomputed-baseline result differs from uncached", app)
		}
	}
	// One baseline plus one timing skeleton per (trace, β, FMax, platform):
	// twelve apps, two keys each.
	if cache.Len() != 2*len(AppNames()) {
		t.Errorf("cache holds %d entries, want %d (baseline + skeleton per app)", cache.Len(), 2*len(AppNames()))
	}
}

// TestSuiteSharesBaselinesAcrossVariants verifies the economic point of the
// cache: a multi-variant sweep memoizes exactly one baseline and one timing
// skeleton per app, no matter how many variants retime it.
func TestSuiteSharesBaselinesAcrossVariants(t *testing.T) {
	s := QuickSuite()
	s.cache = sharedSuite.cache // reuse generated traces
	sw, err := s.Figure3()      // 12 apps × 3 variants
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.replays.Len(), 2*len(sw.Apps); got != want {
		t.Errorf("sweep memoized %d entries for %d apps × %d variants, want %d (baseline + skeleton per app)",
			got, len(sw.Apps), len(sw.Cols), want)
	}
}

// TestSweepReturnsFirstErrorDeterministically makes a later cell fail (nil
// gear set) and requires serial and parallel runs to report the identical
// first-failing-cell error, repeatedly.
func TestSweepReturnsFirstErrorDeterministically(t *testing.T) {
	six, err := dvfs.Uniform(6)
	if err != nil {
		t.Fatal(err)
	}
	apps := []string{"BT-MZ-32", "CG-64"}
	variants := []variant{
		{name: "ok", set: six, alg: core.MAX},
		{name: "broken", set: nil, alg: core.MAX}, // analysis rejects the nil set
		{name: "also-broken", set: nil, alg: core.AVG},
	}
	s := QuickSuite()
	s.cache = sharedSuite.cache
	s.Workers = 0
	_, serialErr := s.runSweep("err", apps, variants)
	if serialErr == nil {
		t.Fatal("serial sweep should fail")
	}
	if !errors.Is(serialErr, core.ErrNilSet) {
		t.Fatalf("unexpected serial error: %v", serialErr)
	}
	if !strings.Contains(serialErr.Error(), "BT-MZ-32 / broken") {
		t.Fatalf("serial error does not name the first failing cell: %v", serialErr)
	}
	for i := 0; i < 5; i++ {
		p := QuickSuite()
		p.cache = sharedSuite.cache
		p.Workers = 8
		_, parErr := p.runSweep("err", apps, variants)
		if parErr == nil {
			t.Fatal("parallel sweep should fail")
		}
		if parErr.Error() != serialErr.Error() {
			t.Errorf("run %d: parallel error %q != serial error %q", i, parErr, serialErr)
		}
	}
}
