package experiments

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/gantt"
	"repro/internal/power"
	"repro/internal/workload"
)

// --- Tables 1 & 2: gear set definitions -----------------------------------

// GearSetTable lists the gears of a discrete set like the paper's tables.
func GearSetTable(set *dvfs.Set) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Gear set %s", set.Name()),
		Header: []string{"Frequency (GHz)", "Voltage (V)"},
	}
	for _, g := range set.Gears() {
		t.Rows = append(t.Rows, []string{
			strconv.FormatFloat(g.Freq, 'f', 2, 64),
			strconv.FormatFloat(g.Volt, 'f', 2, 64),
		})
	}
	return t
}

// Table1 reproduces the six-gear evenly distributed set.
func Table1() (*Table, error) {
	six, err := dvfs.Uniform(6)
	if err != nil {
		return nil, err
	}
	return GearSetTable(six), nil
}

// Table2 reproduces the six-gear exponential set.
func Table2() (*Table, error) {
	exp, err := dvfs.Exponential(6)
	if err != nil {
		return nil, err
	}
	return GearSetTable(exp), nil
}

// --- Table 3: application characteristics ---------------------------------

// Table3Row holds measured vs. paper characteristics of one instance.
type Table3Row struct {
	App              string
	LB, PE           float64 // measured on the generated trace
	PaperLB, PaperPE float64 // Table 3 targets
}

// Table3 measures every generated instance.
func (s *Suite) Table3() ([]Table3Row, error) {
	var rows []Table3Row
	for _, inst := range workload.Table3() {
		tr, err := s.TraceFor(inst)
		if err != nil {
			return nil, err
		}
		ch, err := workload.Measure(tr, s.Gen.Platform, s.Gen.FMax)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{
			App: inst.Name, LB: ch.LB, PE: ch.PE,
			PaperLB: inst.TargetLB, PaperPE: inst.TargetPE,
		})
	}
	return rows, nil
}

// Table3Table renders the characteristics table.
func Table3Table(rows []Table3Row) *Table {
	t := &Table{
		Title:  "Table 3 — application characteristics (measured vs. paper)",
		Header: []string{"Application", "Load balance", "Parallel efficiency", "paper LB", "paper PE"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.App, pct(r.LB), pct(r.PE), pct(r.PaperLB), pct(r.PaperPE)})
	}
	return t
}

// --- Figure 1: BT-MZ visualization -----------------------------------------

// Figure1 renders the BT-MZ-32 execution before and after the MAX algorithm
// with the unlimited continuous set, plus the compute-density summary.
func (s *Suite) Figure1(w io.Writer) error {
	tr, err := s.Trace("BT-MZ-32")
	if err != nil {
		return err
	}
	res, err := analysis.Run(analysis.Config{
		Trace:           tr,
		Platform:        s.Gen.Platform,
		Set:             dvfs.ContinuousUnlimited(),
		Algorithm:       core.MAX,
		Beta:            s.Beta,
		FMax:            s.Gen.FMax,
		RecordTimelines: true,
		Cache:           s.replays,
	})
	if err != nil {
		return err
	}
	opts := gantt.Options{Width: 96, MaxRanks: 16}
	fmt.Fprintf(w, "## Figure 1 — BT-MZ-32 execution (a) original\n\n")
	if err := gantt.Render(w, res.Orig.Timeline, res.Orig.Time, opts); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n## Figure 1 — BT-MZ-32 execution (b) after MAX algorithm\n\n")
	if err := gantt.Render(w, res.New.Timeline, res.New.Time, opts); err != nil {
		return err
	}
	fmt.Fprintf(w, "\ncompute density: original %.1f%% → after MAX %.1f%% (paper: almost all time in computation after MAX)\n\n",
		100*gantt.ComputeFraction(res.Orig.Timeline, res.Orig.Time),
		100*gantt.ComputeFraction(res.New.Timeline, res.New.Time))
	return nil
}

// --- Figure 2: different size gear sets ------------------------------------

// gearSetVariants builds the Figure 2 x-axis: unlimited and limited
// continuous sets, then uniform discrete sets with 2–15 gears.
func gearSetVariants() ([]variant, error) {
	vs := []variant{
		{name: "unlimited", set: dvfs.ContinuousUnlimited(), alg: core.MAX},
		{name: "limited", set: dvfs.ContinuousLimited(), alg: core.MAX},
	}
	for n := 2; n <= 15; n++ {
		set, err := dvfs.Uniform(n)
		if err != nil {
			return nil, err
		}
		vs = append(vs, variant{name: fmt.Sprintf("%dg", n), set: set, alg: core.MAX})
	}
	return vs, nil
}

// Figure2 sweeps gear sets over the paper's five featured applications.
func (s *Suite) Figure2() (*Sweep, error) {
	vs, err := gearSetVariants()
	if err != nil {
		return nil, err
	}
	return s.runSweep("Figure 2 — MAX algorithm across gear sets", Figure2Apps(), vs)
}

// --- Figure 3: energy as a function of load balance ------------------------

// Figure3 measures all twelve applications with the unlimited continuous,
// 2-gear and 6-gear sets.
func (s *Suite) Figure3() (*Sweep, error) {
	two, err := dvfs.Uniform(2)
	if err != nil {
		return nil, err
	}
	six, err := dvfs.Uniform(6)
	if err != nil {
		return nil, err
	}
	vs := []variant{
		{name: "unlimited", set: dvfs.ContinuousUnlimited(), alg: core.MAX},
		{name: "2g", set: two, alg: core.MAX},
		{name: "6g", set: six, alg: core.MAX},
	}
	return s.runSweep("Figure 3 — energy vs load balance", AppNames(), vs)
}

// Figure3Table renders LB next to the three energies, sorted as given.
func Figure3Table(sw *Sweep) *Table {
	t := &Table{
		Title:  sw.Title + " — normalized CPU energy",
		Header: append([]string{"application", "LB"}, sw.Cols...),
	}
	for i, app := range sw.Apps {
		row := []string{app, pct(sw.LB[i])}
		for _, c := range sw.Cells[i] {
			row = append(row, pct(c.Energy))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// --- Figure 4: exponential gear sets ----------------------------------------

// Figure4 sweeps exponential sets with 3–7 gears over all applications.
func (s *Suite) Figure4() (*Sweep, error) {
	var vs []variant
	for n := 3; n <= 7; n++ {
		set, err := dvfs.Exponential(n)
		if err != nil {
			return nil, err
		}
		vs = append(vs, variant{name: fmt.Sprintf("exp%d", n), set: set, alg: core.MAX})
	}
	return s.runSweep("Figure 4 — exponential gear sets (MAX)", AppNames(), vs)
}

// --- Figure 5: effect of β ---------------------------------------------------

// Figure5 sweeps β from 0.3 to 1.0 with the uniform six-gear set.
func (s *Suite) Figure5() (*Sweep, error) {
	six, err := dvfs.Uniform(6)
	if err != nil {
		return nil, err
	}
	var vs []variant
	for _, beta := range []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		vs = append(vs, variant{name: fmt.Sprintf("β=%.1f", beta), set: six, alg: core.MAX, beta: beta})
	}
	return s.runSweep("Figure 5 — impact of the β parameter (6-gear, MAX)", AppNames(), vs)
}

// --- Figure 6: impact of static power ---------------------------------------

// Figure6 sweeps the static power fraction from 0% to 90%.
func (s *Suite) Figure6() (*Sweep, error) {
	six, err := dvfs.Uniform(6)
	if err != nil {
		return nil, err
	}
	var vs []variant
	for i := 0; i <= 9; i++ {
		frac := float64(i) / 10
		vs = append(vs, variant{
			name: fmt.Sprintf("%d%%", i*10),
			set:  six,
			alg:  core.MAX,
			power: power.Config{
				ActivityRatio:  power.DefaultActivityRatio,
				StaticFraction: frac,
				Nominal:        dvfs.GearAt(dvfs.FMax),
			},
		})
	}
	return s.runSweep("Figure 6 — energy as a function of static power (6-gear, MAX)", AppNames(), vs)
}

// --- Figure 7: activity factor ratio ----------------------------------------

// Figure7 sweeps the computation/communication activity ratio 1.5–3.0.
func (s *Suite) Figure7() (*Sweep, error) {
	six, err := dvfs.Uniform(6)
	if err != nil {
		return nil, err
	}
	var vs []variant
	for _, ratio := range []float64{1.5, 1.75, 2.0, 2.25, 2.5, 2.75, 3.0} {
		vs = append(vs, variant{
			name: fmt.Sprintf("r=%.2f", ratio),
			set:  six,
			alg:  core.MAX,
			power: power.Config{
				ActivityRatio:  ratio,
				StaticFraction: power.DefaultStaticFraction,
				Nominal:        dvfs.GearAt(dvfs.FMax),
			},
		})
	}
	return s.runSweep("Figure 7 — impact of the activity factor ratio (6-gear, MAX)", AppNames(), vs)
}

// --- Figure 8: AVG with continuous set and over-clocking ---------------------

// Figure8 runs AVG on the limited continuous set with the top frequency
// raised by 10% and 20%.
func (s *Suite) Figure8() (*Sweep, error) {
	oc10, err := dvfs.ContinuousLimited().ScaleMax(1.10)
	if err != nil {
		return nil, err
	}
	oc20, err := dvfs.ContinuousLimited().ScaleMax(1.20)
	if err != nil {
		return nil, err
	}
	vs := []variant{
		{name: "oc10%", set: oc10, alg: core.AVG},
		{name: "oc20%", set: oc20, alg: core.AVG},
	}
	return s.runSweep("Figure 8 — AVG algorithm, continuous set with over-clocking", AppNames(), vs)
}

// --- Figure 9: AVG with the discrete set -------------------------------------

// Figure9 runs AVG on the uniform six-gear set extended with the
// (2.6 GHz, 1.6 V) over-clock gear.
func (s *Suite) Figure9() (*Sweep, error) {
	six, err := dvfs.Uniform(6)
	if err != nil {
		return nil, err
	}
	oc, err := six.WithOverclockGear(dvfs.Gear{Freq: dvfs.OverclockFreq, Volt: dvfs.OverclockVolt})
	if err != nil {
		return nil, err
	}
	return s.runSweep("Figure 9 — AVG algorithm, 6-gear set + (2.6 GHz, 1.6 V)",
		AppNames(), []variant{{name: "AVG+oc", set: oc, alg: core.AVG}})
}

// Figure9Table renders time, energy, EDP and the over-clocked share.
func Figure9Table(sw *Sweep) *Table {
	t := &Table{
		Title:  sw.Title,
		Header: []string{"application", "Time", "Energy", "EDP", "Overclocked"},
	}
	for i, app := range sw.Apps {
		c := sw.Cells[i][0]
		t.Rows = append(t.Rows, []string{app, pct(c.Time), pct(c.Energy), pct(c.EDP), pct(c.Overclocked)})
	}
	return t
}

// --- Figure 10: MAX vs AVG ----------------------------------------------------

// Figure10 compares MAX (6-gear) with AVG (6-gear + over-clock gear).
func (s *Suite) Figure10() (*Sweep, error) {
	six, err := dvfs.Uniform(6)
	if err != nil {
		return nil, err
	}
	oc, err := six.WithOverclockGear(dvfs.Gear{Freq: dvfs.OverclockFreq, Volt: dvfs.OverclockVolt})
	if err != nil {
		return nil, err
	}
	vs := []variant{
		{name: "MAX", set: six, alg: core.MAX},
		{name: "AVG", set: oc, alg: core.AVG},
	}
	return s.runSweep("Figure 10 — comparison of MAX and AVG", AppNames(), vs)
}

// Figure10Table renders the six series of the paper's figure.
func Figure10Table(sw *Sweep) *Table {
	t := &Table{
		Title:  sw.Title,
		Header: []string{"application", "Energy-MAX", "Energy-AVG", "Time-MAX", "Time-AVG", "EDP-MAX", "EDP-AVG"},
	}
	for i, app := range sw.Apps {
		m, a := sw.Cells[i][0], sw.Cells[i][1]
		t.Rows = append(t.Rows, []string{
			app, pct(m.Energy), pct(a.Energy), pct(m.Time), pct(a.Time), pct(m.EDP), pct(a.EDP),
		})
	}
	return t
}
