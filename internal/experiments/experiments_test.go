package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// sharedSuite caches generated traces across tests in this package; trace
// generation (with PE calibration) is the expensive part.
var sharedSuite = QuickSuite()

func TestTable1MatchesPaper(t *testing.T) {
	tab, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if tab.Rows[0][0] != "0.80" || tab.Rows[5][0] != "2.30" {
		t.Errorf("rows = %v", tab.Rows)
	}
	if tab.Rows[5][1] != "1.50" {
		t.Errorf("top voltage = %v", tab.Rows[5][1])
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	tab, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]string{{"0.80", "1.00"}, {"1.57", "1.26"}, {"1.96", "1.39"}, {"2.15", "1.45"}, {"2.25", "1.48"}, {"2.30", "1.50"}}
	for i, w := range want {
		if tab.Rows[i][0] != w[0] || tab.Rows[i][1] != w[1] {
			t.Errorf("row %d = %v, want %v", i, tab.Rows[i], w)
		}
	}
}

func TestTable3MatchesPaperCharacteristics(t *testing.T) {
	rows, err := sharedSuite.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("%d rows, want 12", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.LB-r.PaperLB) > 0.006 {
			t.Errorf("%s: LB %.4f vs paper %.4f", r.App, r.LB, r.PaperLB)
		}
		if math.Abs(r.PE-r.PaperPE) > 0.012 {
			t.Errorf("%s: PE %.4f vs paper %.4f", r.App, r.PE, r.PaperPE)
		}
	}
	tab := Table3Table(rows)
	var buf bytes.Buffer
	if err := tab.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "BT-MZ-32") {
		t.Error("table output missing apps")
	}
}

func TestFigure1RendersBothCharts(t *testing.T) {
	var buf bytes.Buffer
	if err := sharedSuite.Figure1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "original") || !strings.Contains(out, "after MAX") {
		t.Errorf("missing chart titles:\n%s", out)
	}
	// The paper's observation: after MAX almost all time is computation.
	// Extract the two density numbers.
	var before, after float64
	if _, err := fmtSscanf(out, &before, &after); err != nil {
		t.Fatalf("cannot parse densities: %v\n%s", err, out)
	}
	if after <= before {
		t.Errorf("compute density should rise: %.1f%% -> %.1f%%", before, after)
	}
	if after < 75 {
		t.Errorf("after MAX density %.1f%%, want most time in computation", after)
	}
}

// fmtSscanf pulls the two percentages out of the density summary line.
func fmtSscanf(out string, before, after *float64) (int, error) {
	idx := strings.Index(out, "compute density:")
	if idx < 0 {
		return 0, strings.NewReader("").UnreadByte()
	}
	var b, a float64
	n, err := sscanLine(out[idx:], &b, &a)
	*before, *after = b, a
	return n, err
}

func sscanLine(s string, b, a *float64) (int, error) {
	var line string
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		line = s[:i]
	} else {
		line = s
	}
	n, err := parseTwoPercents(line, b, a)
	return n, err
}

func parseTwoPercents(line string, b, a *float64) (int, error) {
	vals := []*float64{b, a}
	count := 0
	for i := 0; i < len(line) && count < 2; i++ {
		if line[i] >= '0' && line[i] <= '9' {
			j := i
			for j < len(line) && (line[j] == '.' || (line[j] >= '0' && line[j] <= '9')) {
				j++
			}
			if j < len(line) && line[j] == '%' {
				var v float64
				for k := i; k < j; k++ {
					if line[k] == '.' {
						frac := 0.1
						for k++; k < j; k++ {
							v += float64(line[k]-'0') * frac
							frac /= 10
						}
						break
					}
					v = v*10 + float64(line[k]-'0')
				}
				*vals[count] = v
				count++
			}
			i = j
		}
	}
	if count != 2 {
		return count, errNotFound
	}
	return count, nil
}

var errNotFound = &parseError{}

type parseError struct{}

func (*parseError) Error() string { return "percentages not found" }

func TestFigure2GearSetTrends(t *testing.T) {
	sw, err := sharedSuite.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Apps) != 5 || len(sw.Cols) != 16 {
		t.Fatalf("sweep shape %dx%d", len(sw.Apps), len(sw.Cols))
	}
	// BT-MZ needs frequencies below 0.8 GHz: unlimited beats limited.
	btUnl, _ := sw.Cell("BT-MZ-32", "unlimited")
	btLim, _ := sw.Cell("BT-MZ-32", "limited")
	if btUnl.Energy >= btLim.Energy {
		t.Errorf("BT-MZ: unlimited %.3f should beat limited %.3f", btUnl.Energy, btLim.Energy)
	}
	// For moderately imbalanced apps the two continuous sets coincide.
	for _, app := range []string{"CG-64", "SPECFEM3D-96", "PEPC-128", "WRF-128"} {
		unl, _ := sw.Cell(app, "unlimited")
		lim, _ := sw.Cell(app, "limited")
		if math.Abs(unl.Energy-lim.Energy) > 1e-9 {
			t.Errorf("%s: unlimited %.4f != limited %.4f", app, unl.Energy, lim.Energy)
		}
	}
	// Six gears land close to the limited continuous set (paper: "six or
	// seven gears are, on average, close to the continuous case").
	var gap6 float64
	for _, app := range sw.Apps {
		six, _ := sw.Cell(app, "6g")
		lim, _ := sw.Cell(app, "limited")
		gap6 += six.Energy - lim.Energy
	}
	gap6 /= float64(len(sw.Apps))
	if gap6 > 0.10 {
		t.Errorf("average 6-gear gap to continuous = %.3f, want <= 0.10", gap6)
	}
	// Even two gears save for very imbalanced applications...
	bt2, _ := sw.Cell("BT-MZ-32", "2g")
	if bt2.Energy >= 0.9 {
		t.Errorf("BT-MZ with 2 gears: energy %.3f, want substantial savings", bt2.Energy)
	}
	// ...but not for the balanced ones (they need at least four).
	cg2, _ := sw.Cell("CG-64", "2g")
	if cg2.Energy < 0.999 {
		t.Errorf("CG-64 with 2 gears should not save, got %.3f", cg2.Energy)
	}
	// MAX never increases execution time by more than a few percent except
	// for the two-phase PEPC (paper: worst case 20%).
	for _, app := range sw.Apps {
		for j, col := range sw.Cols {
			c := sw.Cells[index(sw.Apps, app)][j]
			limit := 1.05
			if app == "PEPC-128" {
				// Two phases with different imbalance under a single DVFS
				// setting: the paper reports up to +20%; our trace peaks a
				// little higher with the exact continuous assignment.
				limit = 1.30
			}
			if c.Time > limit {
				t.Errorf("%s/%s: normalized time %.3f above %.2f", app, col, c.Time, limit)
			}
		}
	}
}

func TestFigure3EnergyCorrelatesWithImbalance(t *testing.T) {
	sw, err := sharedSuite.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Apps) != 12 {
		t.Fatalf("%d apps", len(sw.Apps))
	}
	// The most balanced app (CG-32) saves ~nothing with six gears; the most
	// imbalanced (BT-MZ-32) saves the most.
	cg, _ := sw.Cell("CG-32", "6g")
	bt, _ := sw.Cell("BT-MZ-32", "6g")
	if cg.Energy < 0.99 {
		t.Errorf("CG-32 energy %.3f, want ~1 (highest LB)", cg.Energy)
	}
	if bt.Energy > 0.5 {
		t.Errorf("BT-MZ-32 energy %.3f, want < 0.5", bt.Energy)
	}
	// Rough monotone trend: correlation between LB and energy is positive.
	var corr float64
	{
		n := float64(len(sw.Apps))
		var sx, sy, sxx, syy, sxy float64
		for i := range sw.Apps {
			x := sw.LB[i]
			y := sw.Cells[i][2].Energy // 6g column
			sx += x
			sy += y
			sxx += x * x
			syy += y * y
			sxy += x * y
		}
		den := math.Sqrt((n*sxx - sx*sx) * (n*syy - sy*sy))
		if den > 0 {
			corr = (n*sxy - sx*sy) / den
		}
	}
	if corr < 0.7 {
		t.Errorf("LB/energy correlation = %.2f, want strongly positive", corr)
	}
}

func TestFigure4ExponentialSetsHelpBalancedApps(t *testing.T) {
	sw, err := sharedSuite.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: with uniform sets SPECFEM3D-32 and WRF need >= 4 gears; with
	// exponential sets three gears already save energy.
	for _, app := range []string{"SPECFEM3D-32", "WRF-32"} {
		c, err := sw.Cell(app, "exp3")
		if err != nil {
			t.Fatal(err)
		}
		if c.Energy >= 1.0 {
			t.Errorf("%s with 3 exponential gears: energy %.3f, want < 1", app, c.Energy)
		}
	}
	// Execution-time increase stays smaller than with uniform sets:
	// paper reports PEPC <= 6.5% for exponential sets.
	for i, app := range sw.Apps {
		for j, col := range sw.Cols {
			limit := 1.03
			if app == "PEPC-128" {
				limit = 1.10
			}
			if sw.Cells[i][j].Time > limit {
				t.Errorf("%s/%s: time %.3f above %.2f", app, col, sw.Cells[i][j].Time, limit)
			}
		}
	}
}

func TestFigure5MemoryBoundednessIncreasesSavings(t *testing.T) {
	sw, err := sharedSuite.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	// Lower β (more memory bound) must never save less, per app. PEPC's
	// two-phase execution makes its new execution time (and with it the
	// normalized energy) wiggle slightly with β, so it gets a tolerance.
	for i, app := range sw.Apps {
		tol := 1e-9
		if app == "PEPC-128" {
			tol = 0.03
		}
		for j := 1; j < len(sw.Cols); j++ {
			if sw.Cells[i][j].Energy < sw.Cells[i][j-1].Energy-tol {
				t.Errorf("%s: energy at %s (%.4f) below %s (%.4f); savings should shrink with β",
					app, sw.Cols[j], sw.Cells[i][j].Energy, sw.Cols[j-1], sw.Cells[i][j-1].Energy)
			}
		}
	}
	// CG-32 is insensitive (no scaling opportunity at all).
	i := index(sw.Apps, "CG-32")
	spread := sw.Cells[i][len(sw.Cols)-1].Energy - sw.Cells[i][0].Energy
	if math.Abs(spread) > 0.02 {
		t.Errorf("CG-32 β sensitivity %.3f, want ~0", spread)
	}
}

func TestFigure6StaticPowerErodesSavings(t *testing.T) {
	sw, err := sharedSuite.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	for i, app := range sw.Apps {
		for j := 1; j < len(sw.Cols); j++ {
			if sw.Cells[i][j].Energy < sw.Cells[i][j-1].Energy-1e-9 {
				t.Errorf("%s: energy must not drop as static power grows (%s -> %s)",
					app, sw.Cols[j-1], sw.Cols[j])
			}
		}
	}
	// Paper: at 70%+ static the savings halve vs the 20% case. Check on the
	// most imbalanced app.
	i := index(sw.Apps, "BT-MZ-32")
	e20 := sw.Cells[i][2].Energy
	e70 := sw.Cells[i][7].Energy
	if (1 - e70) > 0.75*(1-e20) {
		t.Errorf("BT-MZ savings at 70%% static (%.3f) should be well below the 20%% case (%.3f)", 1-e70, 1-e20)
	}
}

func TestFigure7ActivityRatioShiftsEnergy(t *testing.T) {
	sw, err := sharedSuite.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: all energies stay in (0, 1.05]; the sensitivity depends on
	// the load balance degree (imbalanced apps shift more).
	for i, app := range sw.Apps {
		for j := range sw.Cols {
			e := sw.Cells[i][j].Energy
			if e <= 0 || e > 1.05 {
				t.Errorf("%s/%s: energy %.3f out of range", app, sw.Cols[j], e)
			}
		}
	}
	spreadOf := func(app string) float64 {
		i := index(sw.Apps, app)
		lo, hi := math.Inf(1), math.Inf(-1)
		for j := range sw.Cols {
			e := sw.Cells[i][j].Energy
			lo = math.Min(lo, e)
			hi = math.Max(hi, e)
		}
		return hi - lo
	}
	if spreadOf("IS-32") <= spreadOf("CG-32") {
		t.Errorf("imbalanced IS-32 should react to the activity ratio more than CG-32 (%.4f vs %.4f)",
			spreadOf("IS-32"), spreadOf("CG-32"))
	}
}

func TestFigure8AVGSavesForAll(t *testing.T) {
	sw, err := sharedSuite.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: energy reduced for all applications, between 0.5% (CG-32) and
	// 63% (BT-MZ).
	for i, app := range sw.Apps {
		for j := range sw.Cols {
			if sw.Cells[i][j].Energy >= 1.0 {
				t.Errorf("%s/%s: energy %.4f, want < 1", app, sw.Cols[j], sw.Cells[i][j].Energy)
			}
		}
	}
	bt, _ := sw.Cell("BT-MZ-32", "oc10%")
	if bt.Energy > 0.45 {
		t.Errorf("BT-MZ AVG energy %.3f, want large savings", bt.Energy)
	}
	cg, _ := sw.Cell("CG-32", "oc10%")
	if cg.Energy < 0.90 {
		t.Errorf("CG-32 AVG energy %.3f, want tiny savings", cg.Energy)
	}
}

func TestFigure9OverclockSharesFollowImbalance(t *testing.T) {
	sw, err := sharedSuite.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	// Very imbalanced applications need very few CPUs over-clocked.
	for _, app := range []string{"BT-MZ-32", "IS-32", "IS-64", "PEPC-128"} {
		c, err := sw.Cell(app, "AVG+oc")
		if err != nil {
			t.Fatal(err)
		}
		if c.Overclocked > 0.15 {
			t.Errorf("%s: %.1f%% CPUs over-clocked, want few", app, c.Overclocked*100)
		}
		if c.Overclocked == 0 {
			t.Errorf("%s: no CPUs over-clocked at all", app)
		}
	}
	// Balanced applications over-clock large shares (paper: SPECFEM3D-32
	// at 53.13%).
	var maxShare float64
	for i := range sw.Apps {
		maxShare = math.Max(maxShare, sw.Cells[i][0].Overclocked)
	}
	if maxShare < 0.35 {
		t.Errorf("max over-clocked share %.2f, want some app above 35%%", maxShare)
	}
	// Execution time decreases for almost all applications; PEPC increases
	// but less than under MAX (checked in Figure 10 test).
	fast := 0
	for i := range sw.Apps {
		if sw.Cells[i][0].Time < 1 {
			fast++
		}
	}
	if fast < 10 {
		t.Errorf("only %d/12 apps got faster under AVG", fast)
	}
}

func TestFigure10MaxVsAvg(t *testing.T) {
	sw, err := sharedSuite.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	for i, app := range sw.Apps {
		m, a := sw.Cells[i][0], sw.Cells[i][1]
		// Energy: MAX is better or equal (paper's conclusion).
		if m.Energy > a.Energy+0.01 {
			t.Errorf("%s: MAX energy %.3f should not exceed AVG %.3f", app, m.Energy, a.Energy)
		}
		// Time: AVG is better.
		if a.Time > m.Time+0.005 {
			t.Errorf("%s: AVG time %.3f should not exceed MAX %.3f", app, a.Time, m.Time)
		}
		// MAX never over-clocks; AVG does somewhere.
		if m.Overclocked != 0 {
			t.Errorf("%s: MAX overclocked %.2f", app, m.Overclocked)
		}
	}
	// PEPC: time grows under MAX (two phases, single setting), less under
	// AVG.
	i := index(sw.Apps, "PEPC-128")
	if sw.Cells[i][0].Time < 1.05 {
		t.Errorf("PEPC MAX time %.3f, want noticeable increase", sw.Cells[i][0].Time)
	}
	if sw.Cells[i][1].Time >= sw.Cells[i][0].Time {
		t.Errorf("PEPC AVG time %.3f should beat MAX %.3f", sw.Cells[i][1].Time, sw.Cells[i][0].Time)
	}
}

func TestScalingStudy(t *testing.T) {
	rows, err := sharedSuite.Scaling("SPECFEM3D", []int{32, 64, 96})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// SPECFEM3D imbalance grows (LB falls) with size per Table 3 anchors,
	// so savings grow too.
	if rows[2].LB >= rows[0].LB {
		t.Errorf("LB should fall with size: %v", rows)
	}
	if rows[2].Energy >= rows[0].Energy {
		t.Errorf("savings should grow with size: %v", rows)
	}
	tab := ScalingTable("SPECFEM3D", rows)
	var buf bytes.Buffer
	if err := tab.Write(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestAblations(t *testing.T) {
	rows, err := sharedSuite.AblateProtocol()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d protocol rows", len(rows))
	}
	rows2, err := sharedSuite.AblateCollectiveModel()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 4 {
		t.Fatalf("%d collective rows", len(rows2))
	}
	var buf bytes.Buffer
	if err := AblationTable("x", append(rows, rows2...)).Write(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry in short mode")
	}
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
		var buf bytes.Buffer
		if err := e.Run(sharedSuite, &buf); err != nil {
			t.Errorf("%s: %v", e.ID, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", e.ID)
		}
	}
	for _, want := range []string{"table1", "table2", "table3", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
	if _, err := ByID("fig2"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id should fail")
	}
}

func TestSweepCellLookup(t *testing.T) {
	sw := &Sweep{Apps: []string{"a"}, Cols: []string{"x"}, Cells: [][]Cell{{{Energy: 0.5}}}}
	c, err := sw.Cell("a", "x")
	if err != nil || c.Energy != 0.5 {
		t.Errorf("Cell = %+v, %v", c, err)
	}
	if _, err := sw.Cell("b", "x"); err == nil {
		t.Error("unknown app should fail")
	}
	if _, err := sw.Cell("a", "y"); err == nil {
		t.Error("unknown col should fail")
	}
}
