package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/workload"
)

// The experiments below go beyond the paper's figures: the cluster-size
// scaling study its introduction motivates, and ablations of this
// reproduction's own design choices (DESIGN.md §5).

// ScalingRow is one point of the cluster-size scaling study.
type ScalingRow struct {
	App    string
	NProcs int
	LB     float64
	Energy float64 // normalized, MAX + 6-gear set
	Time   float64
}

// Scaling evaluates how imbalance and energy saving evolve with cluster
// size (§1: "larger scale applications may have a greater load imbalance and
// therefore allow greater relative savings").
func (s *Suite) Scaling(app string, sizes []int) ([]ScalingRow, error) {
	six, err := dvfs.Uniform(6)
	if err != nil {
		return nil, err
	}
	var rows []ScalingRow
	for _, n := range sizes {
		inst, err := workload.InstanceFor(app, n)
		if err != nil {
			return nil, err
		}
		tr, err := s.TraceFor(inst)
		if err != nil {
			return nil, err
		}
		res, err := analysis.Run(analysis.Config{
			Trace:     tr,
			Platform:  s.Gen.Platform,
			Set:       six,
			Algorithm: core.MAX,
			Beta:      s.Beta,
			FMax:      s.Gen.FMax,
			Cache:     s.replays,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScalingRow{
			App: inst.Name, NProcs: n, LB: res.LB,
			Energy: res.Norm.Energy, Time: res.Norm.Time,
		})
	}
	return rows, nil
}

// ScalingTable renders a scaling study.
func ScalingTable(app string, rows []ScalingRow) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Scaling study — %s (MAX, 6-gear set)", app),
		Header: []string{"instance", "processes", "LB", "energy", "time"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.App, fmt.Sprintf("%d", r.NProcs), pct(r.LB), pct(r.Energy), pct(r.Time),
		})
	}
	return t
}

// AblationRow is one configuration of an ablation study.
type AblationRow struct {
	Config string
	App    string
	Energy float64
	Time   float64
	EDP    float64
}

// AblateProtocol re-runs a representative subset under different eager/
// rendezvous thresholds, isolating how the p2p protocol model affects the
// reproduction (DESIGN.md §5).
func (s *Suite) AblateProtocol() ([]AblationRow, error) {
	six, err := dvfs.Uniform(6)
	if err != nil {
		return nil, err
	}
	apps := []string{"BT-MZ-32", "CG-64", "WRF-128"}
	configs := []struct {
		name  string
		eager int64
	}{
		{"all-rendezvous", 0},
		{"default-32KiB", dimemas.DefaultPlatform().EagerLimit},
		{"all-eager", 1 << 62},
	}
	var rows []AblationRow
	for _, cfgv := range configs {
		platform := s.Gen.Platform
		platform.EagerLimit = cfgv.eager
		for _, app := range apps {
			tr, err := s.Trace(app)
			if err != nil {
				return nil, err
			}
			res, err := analysis.Run(analysis.Config{
				Trace:     tr,
				Platform:  platform,
				Set:       six,
				Algorithm: core.MAX,
				Beta:      s.Beta,
				FMax:      s.Gen.FMax,
				Cache:     s.replays,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Config: cfgv.name, App: app,
				Energy: res.Norm.Energy, Time: res.Norm.Time, EDP: res.Norm.EDP,
			})
		}
	}
	return rows, nil
}

// AblateCollectiveModel compares the linear vs logarithmic all-to-all cost
// models on the all-to-all heavy IS instances.
func (s *Suite) AblateCollectiveModel() ([]AblationRow, error) {
	six, err := dvfs.Uniform(6)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, linear := range []bool{true, false} {
		name := "linear-alltoall"
		if !linear {
			name = "log-alltoall"
		}
		platform := s.Gen.Platform
		platform.LinearAllToAll = linear
		for _, app := range []string{"IS-32", "IS-64"} {
			tr, err := s.Trace(app)
			if err != nil {
				return nil, err
			}
			res, err := analysis.Run(analysis.Config{
				Trace:     tr,
				Platform:  platform,
				Set:       six,
				Algorithm: core.MAX,
				Beta:      s.Beta,
				FMax:      s.Gen.FMax,
				Cache:     s.replays,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Config: name, App: app,
				Energy: res.Norm.Energy, Time: res.Norm.Time, EDP: res.Norm.EDP,
			})
		}
	}
	return rows, nil
}

// AblationTable renders an ablation study.
func AblationTable(title string, rows []AblationRow) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"config", "application", "energy", "time", "EDP"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Config, r.App, pct(r.Energy), pct(r.Time), pct(r.EDP)})
	}
	return t
}
