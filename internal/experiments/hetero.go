package experiments

import (
	"fmt"
	"io"

	"repro/internal/dimemas"
	"repro/internal/placement"
	"repro/internal/trace"
)

// Heterogeneity extension: the paper balances load on a homogeneous
// machine, where the optimal compute distribution is uniform. Once the
// machine model carries per-rank capability (dimemas.Capability) the optimum
// inverts: a *deliberately imbalanced* distribution — each rank loaded in
// proportion to its speed — finishes sooner than the uniform split the
// paper's balancer targets, because the uniform split leaves fast ranks
// idling at the barrier while slow ranks finish. The capability sweep
// measures that gap on the Table 3 workloads. The placement sweep exercises
// the topology layer the same way: on a two-tier machine (fast intra-node,
// slow inter-node links) a locality-oblivious random placement pays the slow
// link for traffic a topology-aware placement keeps inside nodes.

// Sweep parameters: half the ranks run heteroSpeed× the nominal speed (a
// two-generation cluster); the placement scenarios use heteroRanks ranks in
// nodes of heteroPerNode, exchanging 64 KiB rendezvous messages over links
// an order of magnitude apart.
const (
	heteroSpeed   = 1.5
	heteroRanks   = 16
	heteroPerNode = 4
	heteroSeed    = 5
	heteroBytes   = 1 << 16
	heteroIters   = 2
)

// HeteroCapRow compares work distributions for one application on the
// half-fast machine. Times are seconds.
type HeteroCapRow struct {
	App string
	// FlatTime is the homogeneous reference execution.
	FlatTime float64
	// BalancedTime runs the paper's uniform distribution on the
	// heterogeneous machine: slow ranks dominate every iteration.
	BalancedTime float64
	// ProportionalTime re-shares the same total work in proportion to each
	// rank's efficiency (share[r] = n·eff[r]/Σeff) — imbalanced by design.
	ProportionalTime float64
	// Gain is BalancedTime/ProportionalTime (> 1 when imbalancing wins).
	Gain float64
}

// heteroEfficiency builds the half-fast capability vector.
func heteroEfficiency(n int) []float64 {
	eff := make([]float64, n)
	for r := range eff {
		if r < n/2 {
			eff[r] = heteroSpeed
		} else {
			eff[r] = 1
		}
	}
	return eff
}

// HeteroCapabilitySweep measures uniform vs capability-proportional work
// distribution for each application, sharing the suite's replay cache (one
// machine skeleton per app for both distributions).
func (s *Suite) HeteroCapabilitySweep(apps []string) ([]HeteroCapRow, error) {
	opts := dimemas.Options{Beta: s.Beta, FMax: s.Gen.FMax}
	rows := make([]HeteroCapRow, 0, len(apps))
	for _, app := range apps {
		tr, err := s.Trace(app)
		if err != nil {
			return nil, err
		}
		n := tr.NumRanks()
		eff := heteroEfficiency(n)
		m := dimemas.Machine{Base: s.Gen.Platform, Cap: &dimemas.Capability{Efficiency: eff}}

		flat, err := s.replays.Original(tr, s.Gen.Platform, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: hetero %s flat: %w", app, err)
		}
		balanced, err := s.replays.OriginalMachine(tr, m, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: hetero %s balanced: %w", app, err)
		}
		skel, err := s.replays.SkeletonForMachine(tr, m, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: hetero %s skeleton: %w", app, err)
		}
		var sum float64
		for _, e := range eff {
			sum += e
		}
		share := make([]float64, n)
		for r := range share {
			share[r] = float64(n) * eff[r] / sum
		}
		prop, err := skel.RetimeScaled(nil, share, false)
		if err != nil {
			return nil, fmt.Errorf("experiments: hetero %s proportional: %w", app, err)
		}
		rows = append(rows, HeteroCapRow{
			App:              app,
			FlatTime:         flat.Time,
			BalancedTime:     balanced.Time,
			ProportionalTime: prop.Time,
			Gain:             balanced.Time / prop.Time,
		})
	}
	return rows, nil
}

// HeteroCapTable renders the capability sweep.
func HeteroCapTable(rows []HeteroCapRow) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Extension — capability-aware work distribution (half the ranks %.1f× fast)", heteroSpeed),
		Header: []string{"app", "T flat (s)", "T balanced (s)", "T proportional (s)", "gain"},
		Notes: []string{
			"flat: homogeneous reference machine. balanced: the paper's uniform work split on the heterogeneous machine (slow half dominates).",
			"proportional: the same total work re-shared as share[r] = n·eff[r]/Σeff — imbalanced by design, every rank finishes together.",
			"gain: balanced/proportional execution time; > 1 means deliberate imbalance beats the homogeneous-optimal uniform split.",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.App,
			fmt.Sprintf("%.4f", r.FlatTime),
			fmt.Sprintf("%.4f", r.BalancedTime),
			fmt.Sprintf("%.4f", r.ProportionalTime),
			fmt.Sprintf("%.3f", r.Gain),
		})
	}
	return t
}

// HeteroPlacementRow compares placements for one comm-heavy scenario on the
// two-tier machine. Times are seconds.
type HeteroPlacementRow struct {
	Scenario string
	// BlockTime is the locality-friendly contiguous placement;
	// ShuffledTime is the seeded random placement (the locality-oblivious
	// scheduler baseline); OptimizedTime is the local search started from
	// the shuffle.
	BlockTime, ShuffledTime, OptimizedTime float64
	// Swaps and Evaluations describe the search's work.
	Swaps, Evaluations int
}

// heteroPairsTrace builds partner pairs (2k, 2k+1) exchanging
// 2^(npairs−k) rendezvous messages per iteration — the heaviest split pair
// dominates, and every split pair admits a strictly improving swap.
func heteroPairsTrace(n, iters int) *trace.Trace {
	tr := trace.New("pairs", n)
	npairs := n / 2
	tag := 0
	for it := 0; it < iters; it++ {
		for k := 0; k < npairs; k++ {
			a, b := 2*k, 2*k+1
			for m := 0; m < 1<<(npairs-k); m++ {
				tr.Add(a, trace.Send(b, heteroBytes, tag))
				tr.Add(b, trace.Recv(a, heteroBytes, tag))
				tag++
			}
		}
		for r := 0; r < n; r++ {
			tr.Add(r, trace.Compute(0.001))
			tr.Add(r, trace.Coll(trace.CollBarrier, 0))
			tr.Add(r, trace.IterMark())
		}
	}
	return tr
}

// heteroPipelineTrace builds a serialized sweep: rank r receives from r−1,
// computes, and sends to r+1, so the iteration time is the *sum* of the
// chain's wire costs — an additive landscape where every cross-node edge
// removed strictly improves the makespan.
func heteroPipelineTrace(n, iters int) *trace.Trace {
	tr := trace.New("pipeline", n)
	for it := 0; it < iters; it++ {
		for r := 0; r < n; r++ {
			if r > 0 {
				tr.Add(r, trace.Recv(r-1, heteroBytes, it))
			}
			tr.Add(r, trace.Compute(0.0005))
			if r < n-1 {
				tr.Add(r, trace.Send(r+1, heteroBytes, it))
			}
			tr.Add(r, trace.IterMark())
		}
	}
	return tr
}

// heteroTwoTierMachine is the suite platform with a fast intra-node and a
// slow inter-node link over the given placement.
func (s *Suite) heteroTwoTierMachine(pl []int) dimemas.Machine {
	return dimemas.Machine{
		Base: s.Gen.Platform,
		Topo: &dimemas.Topology{
			Placement: pl,
			Intra:     dimemas.Link{Latency: 5e-7, Bandwidth: 6e9},
			Inter:     dimemas.Link{Latency: 2e-5, Bandwidth: 1e8},
		},
	}
}

// HeteroPlacementSweep compares block, seeded-random and locally-optimized
// placements on the comm-heavy scenarios.
func (s *Suite) HeteroPlacementSweep() ([]HeteroPlacementRow, error) {
	opts := dimemas.Options{Beta: s.Beta, FMax: s.Gen.FMax}
	scenarios := []struct {
		name string
		tr   *trace.Trace
	}{
		{"pairs", heteroPairsTrace(heteroRanks, heteroIters)},
		{"pipeline", heteroPipelineTrace(heteroRanks, heteroIters)},
	}
	rows := make([]HeteroPlacementRow, 0, len(scenarios))
	for _, sc := range scenarios {
		block, err := dimemas.SimulateMachine(sc.tr, s.heteroTwoTierMachine(dimemas.BlockPlacement(heteroRanks, heteroPerNode)), opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: placement %s block: %w", sc.name, err)
		}
		shuffledPl := placement.ShuffledPlacement(heteroRanks, heteroPerNode, heteroSeed)
		shuffled, err := dimemas.SimulateMachine(sc.tr, s.heteroTwoTierMachine(shuffledPl), opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: placement %s shuffled: %w", sc.name, err)
		}
		res, err := placement.Optimize(placement.Config{
			Trace:   sc.tr,
			Machine: s.heteroTwoTierMachine(shuffledPl),
			Beta:    s.Beta,
			BetaSet: true,
			FMax:    s.Gen.FMax,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: placement %s optimize: %w", sc.name, err)
		}
		rows = append(rows, HeteroPlacementRow{
			Scenario:      sc.name,
			BlockTime:     block.Time,
			ShuffledTime:  shuffled.Time,
			OptimizedTime: res.Time,
			Swaps:         res.Swaps,
			Evaluations:   res.Evaluations,
		})
	}
	return rows, nil
}

// HeteroPlacementTable renders the placement sweep.
func HeteroPlacementTable(rows []HeteroPlacementRow) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Extension — topology-aware placement (%d ranks, %d per node, slow inter-node link)", heteroRanks, heteroPerNode),
		Header: []string{"scenario", "T block (s)", "T shuffled (s)", "T optimized (s)", "swaps", "evals"},
		Notes: []string{
			"block: contiguous rank→node placement. shuffled: seeded random placement (locality-oblivious scheduler baseline).",
			"optimized: deterministic pairwise-swap local search started from the shuffle, scoring candidates with exact machine replays.",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Scenario,
			fmt.Sprintf("%.5f", r.BlockTime),
			fmt.Sprintf("%.5f", r.ShuffledTime),
			fmt.Sprintf("%.5f", r.OptimizedTime),
			fmt.Sprintf("%d", r.Swaps),
			fmt.Sprintf("%d", r.Evaluations),
		})
	}
	return t
}

// HeteroApps returns the applications of the capability sweep: the two
// small instances plus the two large ones the powercap study uses.
func HeteroApps() []string {
	return []string{"BT-MZ-32", "CG-64", "SPECFEM3D-96", "WRF-128"}
}

// HeteroStudy runs both sweeps of the heterogeneity extension.
func (s *Suite) HeteroStudy(w io.Writer) error {
	capRows, err := s.HeteroCapabilitySweep(HeteroApps())
	if err != nil {
		return err
	}
	if err := HeteroCapTable(capRows).Write(w); err != nil {
		return err
	}
	plRows, err := s.HeteroPlacementSweep()
	if err != nil {
		return err
	}
	return HeteroPlacementTable(plRows).Write(w)
}
