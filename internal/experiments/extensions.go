package experiments

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/gearopt"
	"repro/internal/jitter"
	"repro/internal/phased"
	"repro/internal/trace"
)

// Extension experiments: the dynamic Jitter runtime the paper's MAX
// algorithm is the static version of, the per-phase assignment the paper's
// PEPC discussion points at, the gear-quantization rounding ablation, and
// the constructive gear-placement search.

// JitterRow compares the adaptive runtime with the static MAX assignment.
type JitterRow struct {
	App           string
	DynamicEnergy float64
	DynamicTime   float64
	StaticEnergy  float64
	StaticTime    float64
	GearSwitches  int
}

// JitterVsStatic runs both systems over every Table 3 instance with the
// uniform six-gear set.
func (s *Suite) JitterVsStatic() ([]JitterRow, error) {
	six, err := dvfs.Uniform(6)
	if err != nil {
		return nil, err
	}
	var rows []JitterRow
	for _, app := range AppNames() {
		tr, err := s.Trace(app)
		if err != nil {
			return nil, err
		}
		dyn, err := jitter.Run(jitter.Config{
			Trace:    tr,
			Platform: s.Gen.Platform,
			Set:      six,
			Beta:     s.Beta,
			FMax:     s.Gen.FMax,
			Cache:    s.replays,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: jitter on %s: %w", app, err)
		}
		static, err := s.analyze(app, variant{name: "MAX", set: six, alg: core.MAX})
		if err != nil {
			return nil, err
		}
		rows = append(rows, JitterRow{
			App:           app,
			DynamicEnergy: dyn.Norm.Energy,
			DynamicTime:   dyn.Norm.Time,
			StaticEnergy:  static.Norm.Energy,
			StaticTime:    static.Norm.Time,
			GearSwitches:  dyn.GearSwitches,
		})
	}
	return rows, nil
}

// JitterTable renders the comparison.
func JitterTable(rows []JitterRow) *Table {
	t := &Table{
		Title:  "Extension — adaptive Jitter runtime vs static MAX (6-gear set)",
		Header: []string{"application", "E-jitter", "E-MAX", "T-jitter", "T-MAX", "gear switches"},
		Notes: []string{
			"MAX is the static form of Jitter (paper §1); the online runtime pays a convergence tax.",
			"PEPC defeats the per-iteration slack controller for the same reason it defeats MAX: two phases per iteration with opposite imbalance (see the 'phased' experiment).",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.App, pct(r.DynamicEnergy), pct(r.StaticEnergy),
			pct(r.DynamicTime), pct(r.StaticTime), fmt.Sprintf("%d", r.GearSwitches),
		})
	}
	return t
}

// PhasedRow compares per-process MAX with per-phase MAX.
type PhasedRow struct {
	App              string
	Phases           int
	PerProcessEnergy float64
	PerProcessTime   float64
	PerPhaseEnergy   float64
	PerPhaseTime     float64
}

// PerPhaseStudy runs the per-phase extension on a representative subset
// including the paper's problem case PEPC-128.
func (s *Suite) PerPhaseStudy() ([]PhasedRow, error) {
	six, err := dvfs.Uniform(6)
	if err != nil {
		return nil, err
	}
	var rows []PhasedRow
	for _, app := range []string{"PEPC-128", "BT-MZ-32", "IS-64", "WRF-128"} {
		tr, err := s.Trace(app)
		if err != nil {
			return nil, err
		}
		perProc, err := s.analyze(app, variant{name: "MAX", set: six, alg: core.MAX})
		if err != nil {
			return nil, err
		}
		perPhase, err := phased.Run(phased.Config{
			Trace:    tr,
			Platform: s.Gen.Platform,
			Set:      six,
			Beta:     s.Beta,
			FMax:     s.Gen.FMax,
			Cache:    s.replays,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: phased on %s: %w", app, err)
		}
		rows = append(rows, PhasedRow{
			App:              app,
			Phases:           perPhase.Phases,
			PerProcessEnergy: perProc.Norm.Energy,
			PerProcessTime:   perProc.Norm.Time,
			PerPhaseEnergy:   perPhase.Norm.Energy,
			PerPhaseTime:     perPhase.Norm.Time,
		})
	}
	return rows, nil
}

// PhasedTable renders the per-phase study.
func PhasedTable(rows []PhasedRow) *Table {
	t := &Table{
		Title:  "Extension — per-phase DVFS (future work from the paper's PEPC discussion)",
		Header: []string{"application", "phases", "E per-process", "E per-phase", "T per-process", "T per-phase"},
		Notes:  []string{"PEPC's time inflation under a single per-process setting disappears with per-phase gears."},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.App, fmt.Sprintf("%d", r.Phases),
			pct(r.PerProcessEnergy), pct(r.PerPhaseEnergy),
			pct(r.PerProcessTime), pct(r.PerPhaseTime),
		})
	}
	return t
}

// AblateRounding compares the paper's closest-higher quantization with
// nearest-gear quantization on all apps with the six-gear set.
func (s *Suite) AblateRounding() ([]AblationRow, error) {
	six, err := dvfs.Uniform(6)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, mode := range []core.Rounding{core.RoundUp, core.RoundNearest} {
		for _, app := range []string{"BT-MZ-32", "SPECFEM3D-96", "WRF-128"} {
			tr, err := s.Trace(app)
			if err != nil {
				return nil, err
			}
			res, err := analysis.Run(analysis.Config{
				Trace:     tr,
				Platform:  s.Gen.Platform,
				Set:       six,
				Algorithm: core.MAX,
				Beta:      s.Beta,
				FMax:      s.Gen.FMax,
				Rounding:  mode,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Config: "round-" + mode.String(), App: app,
				Energy: res.Norm.Energy, Time: res.Norm.Time, EDP: res.Norm.EDP,
			})
		}
	}
	return rows, nil
}

// OptimizeGears searches a four-gear placement over three representative
// applications and reports it against the uniform four-gear set.
func (s *Suite) OptimizeGears(w io.Writer) error {
	var traces []*trace.Trace
	for _, app := range []string{"BT-MZ-32", "IS-64", "SPECFEM3D-96"} {
		tr, err := s.Trace(app)
		if err != nil {
			return err
		}
		traces = append(traces, tr)
	}
	res, err := gearopt.Optimize(gearopt.Config{
		Traces:   traces,
		NGears:   4,
		Platform: s.Gen.Platform,
		Beta:     s.Beta,
		FMax:     s.Gen.FMax,
		Grid:     0.1,
		Cache:    s.replays,
	})
	if err != nil {
		return err
	}
	t := &Table{
		Title:  "Extension — optimized 4-gear placement (coordinate descent)",
		Header: []string{"set", "gears", "avg energy"},
	}
	uniform, err := dvfs.Uniform(4)
	if err != nil {
		return err
	}
	t.Rows = append(t.Rows,
		[]string{"uniform", uniform.String(), pct(res.UniformEnergy)},
		[]string{"optimized", res.Set.String(), pct(res.Energy)},
	)
	t.Notes = append(t.Notes, fmt.Sprintf("search: %d rounds, %d candidate evaluations", res.Rounds, res.Evaluations))
	return t.Write(w)
}
