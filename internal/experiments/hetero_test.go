package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestHeteroCapabilitySweep asserts the extension's core claim on every
// row: on a heterogeneous machine the capability-proportional (deliberately
// imbalanced) distribution beats the paper's uniform split, and the uniform
// split on the heterogeneous machine is never slower than the homogeneous
// reference (half the ranks only got faster).
func TestHeteroCapabilitySweep(t *testing.T) {
	rows, err := sharedSuite.HeteroCapabilitySweep(HeteroApps())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(HeteroApps()) {
		t.Fatalf("%d rows, want %d", len(rows), len(HeteroApps()))
	}
	for _, r := range rows {
		if !(r.ProportionalTime < r.BalancedTime) {
			t.Errorf("%s: proportional %v not faster than balanced %v", r.App, r.ProportionalTime, r.BalancedTime)
		}
		if r.BalancedTime > r.FlatTime {
			t.Errorf("%s: balanced-on-hetero %v slower than flat %v (speedups can't hurt)", r.App, r.BalancedTime, r.FlatTime)
		}
		if r.Gain <= 1 {
			t.Errorf("%s: gain %v not > 1", r.App, r.Gain)
		}
	}
}

// TestHeteroPlacementSweep asserts the topology claim on every scenario:
// the random placement is worse than block (the premise), and the local
// search strictly improves on the random start and lands within a whisker
// of the block optimum.
func TestHeteroPlacementSweep(t *testing.T) {
	rows, err := sharedSuite.HeteroPlacementSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.ShuffledTime <= r.BlockTime {
			t.Fatalf("%s: premise broken — shuffled %v not worse than block %v", r.Scenario, r.ShuffledTime, r.BlockTime)
		}
		if !(r.OptimizedTime < r.ShuffledTime) {
			t.Errorf("%s: optimized %v did not improve on shuffled %v", r.Scenario, r.OptimizedTime, r.ShuffledTime)
		}
		// The search must recover at least half the shuffle's locality loss;
		// on the pairs scenario (where every split pair admits a strictly
		// improving swap) it must reach the block optimum outright. The
		// pipeline chain has genuine swap-local optima — a swap moves four
		// chain edges at once — so near-optimality is not guaranteed there.
		if gap := r.ShuffledTime - r.BlockTime; r.OptimizedTime > r.ShuffledTime-gap/2 {
			t.Errorf("%s: optimized %v recovered under half the gap (block %v, shuffled %v)",
				r.Scenario, r.OptimizedTime, r.BlockTime, r.ShuffledTime)
		}
		if r.Scenario == "pairs" && r.OptimizedTime > r.BlockTime*1.001 {
			t.Errorf("pairs: optimized %v far from block optimum %v", r.OptimizedTime, r.BlockTime)
		}
		if r.Swaps == 0 {
			t.Errorf("%s: search did no work: %+v", r.Scenario, r)
		}
	}
}

// TestHeteroStudyRendersTables smoke-tests the registered experiment
// end-to-end through the registry.
func TestHeteroStudyRendersTables(t *testing.T) {
	e, err := ByID("hetero")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Run(sharedSuite, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"capability-aware work distribution", "topology-aware placement", "pairs", "pipeline", "WRF-128"} {
		if !strings.Contains(out, want) {
			t.Errorf("study output missing %q:\n%s", want, out)
		}
	}
}
