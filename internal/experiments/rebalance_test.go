package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestRebalanceSweep is the experiment-level check of the acceptance
// criteria: on both study instances, in every drift scenario, the
// threshold-triggered policy beats both never- and always-rebalance on
// total energy while losing at most 1% of time to the faster of the two,
// and the capped variant's per-iteration peak never exceeds its budget.
func TestRebalanceSweep(t *testing.T) {
	for _, app := range []string{"WRF-128", "SPECFEM3D-96"} {
		rows, err := sharedSuite.RebalanceSweep(app, DefaultRebalanceScenarios())
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 3 {
			t.Fatalf("%s: %d scenarios, want 3", app, len(rows))
		}
		for _, r := range rows {
			if r.ThreshEnergy >= r.NeverEnergy {
				t.Errorf("%s/%s: threshold energy %.4f not below never %.4f", app, r.Scenario, r.ThreshEnergy, r.NeverEnergy)
			}
			if r.ThreshEnergy >= r.AlwaysEnergy {
				t.Errorf("%s/%s: threshold energy %.4f not below always %.4f", app, r.Scenario, r.ThreshEnergy, r.AlwaysEnergy)
			}
			best := r.NeverTime
			if r.AlwaysTime < best {
				best = r.AlwaysTime
			}
			if r.ThreshTime > 1.01*best {
				t.Errorf("%s/%s: threshold time %.4f loses more than 1%% to the best policy %.4f", app, r.Scenario, r.ThreshTime, best)
			}
			if r.CapPeak > r.Cap {
				t.Errorf("%s/%s: capped-variant peak %.1f exceeds the budget %.1f", app, r.Scenario, r.CapPeak, r.Cap)
			}
			if r.ThreshReassigns < 1 || r.ThreshReassigns >= r.AlwaysReassigns {
				t.Errorf("%s/%s: threshold re-solved %d times vs always's %d — hysteresis not amortizing",
					app, r.Scenario, r.ThreshReassigns, r.AlwaysReassigns)
			}
		}
		var buf bytes.Buffer
		if err := RebalanceTable(app, rows).Write(&buf); err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{"E thresh", "solves a/t", "peak/cap (W)"} {
			if !strings.Contains(buf.String(), want) {
				t.Errorf("table missing %q:\n%s", want, buf.String())
			}
		}
	}
}
