package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dvfs"
	"repro/internal/rebalance"
)

// TestRebalanceSweep is the experiment-level check of the acceptance
// criteria: on both study instances, in every drift scenario, the
// threshold-triggered policy beats both never- and always-rebalance on
// total energy while losing at most 1% of time to the faster of the two,
// and the capped variant's per-iteration peak never exceeds its budget.
func TestRebalanceSweep(t *testing.T) {
	for _, app := range []string{"WRF-128", "SPECFEM3D-96"} {
		rows, err := sharedSuite.RebalanceSweep(app, DefaultRebalanceScenarios())
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 3 {
			t.Fatalf("%s: %d scenarios, want 3", app, len(rows))
		}
		for _, r := range rows {
			if r.ThreshEnergy >= r.NeverEnergy {
				t.Errorf("%s/%s: threshold energy %.4f not below never %.4f", app, r.Scenario, r.ThreshEnergy, r.NeverEnergy)
			}
			if r.ThreshEnergy >= r.AlwaysEnergy {
				t.Errorf("%s/%s: threshold energy %.4f not below always %.4f", app, r.Scenario, r.ThreshEnergy, r.AlwaysEnergy)
			}
			best := r.NeverTime
			if r.AlwaysTime < best {
				best = r.AlwaysTime
			}
			if r.ThreshTime > 1.01*best {
				t.Errorf("%s/%s: threshold time %.4f loses more than 1%% to the best policy %.4f", app, r.Scenario, r.ThreshTime, best)
			}
			if r.CapPeak > r.Cap {
				t.Errorf("%s/%s: capped-variant peak %.1f exceeds the budget %.1f", app, r.Scenario, r.CapPeak, r.Cap)
			}
			if r.ThreshReassigns < 1 || r.ThreshReassigns >= r.AlwaysReassigns {
				t.Errorf("%s/%s: threshold re-solved %d times vs always's %d — hysteresis not amortizing",
					app, r.Scenario, r.ThreshReassigns, r.AlwaysReassigns)
			}

			// Predictive acceptance: anticipation must pay on forecastable
			// drift (ramp's trend, step's regime change) on energy×time,
			// and the skill guard must keep the policy from losing more
			// than 1% on the martingale (walk), where the best it can do is
			// degrade to the threshold trigger.
			threshExT := r.ThreshEnergy * r.ThreshTime
			predExT := r.PredEnergy * r.PredTime
			switch r.Scenario {
			case "walk":
				if predExT > 1.01*threshExT {
					t.Errorf("%s/%s: predictive energy×time %.4f loses more than 1%% to threshold %.4f",
						app, r.Scenario, predExT, threshExT)
				}
				if r.PredFallbacks < rebalanceIterations/2 {
					t.Errorf("%s/%s: forecaster fell back only %d of %d iterations — guard should reject the martingale",
						app, r.Scenario, r.PredFallbacks, rebalanceIterations)
				}
			default: // ramp, step
				if predExT >= threshExT {
					t.Errorf("%s/%s: predictive energy×time %.4f not below threshold %.4f",
						app, r.Scenario, predExT, threshExT)
				}
			}
			if r.Scenario == "ramp" && r.PredFallbacks > rebalanceIterations/2 {
				t.Errorf("%s/%s: forecaster fell back %d of %d iterations — the trend should earn trust",
					app, r.Scenario, r.PredFallbacks, rebalanceIterations)
			}
			if r.PredCapPeak > r.Cap {
				t.Errorf("%s/%s: predictive-capped peak %.1f exceeds the budget %.1f", app, r.Scenario, r.PredCapPeak, r.Cap)
			}
		}
		var buf bytes.Buffer
		if err := RebalanceTable(app, rows).Write(&buf); err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{"E thresh", "E pred", "solves a/t/p", "E pcap", "peak/cap (W)"} {
			if !strings.Contains(buf.String(), want) {
				t.Errorf("table missing %q:\n%s", want, buf.String())
			}
		}
	}
}

// TestRebalancePredictiveExactness pins the study's exactness guarantee for
// the predictive policy: every iteration of the skeleton-retimed run is
// bit-identical to scoring the same closed loop with fresh simulations of
// each drifted trace (Config.FreshReplays) — the forecaster sits on top of
// the replay tier, so it must not perturb the retiming equivalence.
func TestRebalancePredictiveExactness(t *testing.T) {
	tr, err := sharedSuite.Trace("WRF-128")
	if err != nil {
		t.Fatal(err)
	}
	six, err := dvfs.Uniform(6)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range DefaultRebalanceScenarios() {
		cfg := sharedSuite.rebalanceConfig(tr, six, sc.Drift)
		cfg.Policy = rebalance.PolicyPredictive
		cfg.Predict = rebalancePredict()
		retimed, err := rebalance.Run(cfg)
		if err != nil {
			t.Fatalf("%s retimed: %v", sc.Name, err)
		}
		cfg.FreshReplays = true
		cfg.Cache = nil
		fresh, err := rebalance.Run(cfg)
		if err != nil {
			t.Fatalf("%s fresh: %v", sc.Name, err)
		}
		if len(retimed.Iterations) != len(fresh.Iterations) {
			t.Fatalf("%s: iteration count %d vs %d", sc.Name, len(retimed.Iterations), len(fresh.Iterations))
		}
		for i := range retimed.Iterations {
			if retimed.Iterations[i] != fresh.Iterations[i] {
				t.Fatalf("%s iteration %d: retimed %+v != fresh %+v", sc.Name, i, retimed.Iterations[i], fresh.Iterations[i])
			}
		}
		if !reflect.DeepEqual(retimed.FinalGears, fresh.FinalGears) {
			t.Errorf("%s: final gears diverge between retimed and fresh scoring", sc.Name)
		}
		if *retimed.Forecast != *fresh.Forecast {
			t.Errorf("%s: forecaster stats diverge: %+v vs %+v", sc.Name, retimed.Forecast, fresh.Forecast)
		}
	}
}
