package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestPowercapSweep is the experiment-level golden check of the acceptance
// criteria: on the imbalanced WRF-128 instance every row's scheduled peak
// stays under its cap and the redistribution policy beats uniform downshift
// on execution time wherever the cap actually binds.
func TestPowercapSweep(t *testing.T) {
	rows, err := sharedSuite.PowercapSweep("WRF-128", DefaultPowercapFracs())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 8 {
		t.Fatalf("%d cap points, want >= 8", len(rows))
	}
	beaten := 0
	for _, r := range rows {
		if r.Peak > r.Cap {
			t.Errorf("cap %.0f%%: scheduled peak %v exceeds cap %v", r.CapFrac*100, r.Peak, r.Cap)
		}
		if r.RedTime > r.UniTime {
			t.Errorf("cap %.0f%%: redistribution time %v worse than uniform %v", r.CapFrac*100, r.RedTime, r.UniTime)
		}
		if r.RedTime < r.UniTime {
			beaten++
		}
		if r.UniTime < 1 || r.RedTime < 1 {
			t.Errorf("cap %.0f%%: capped run beat the uncapped one (%v / %v)", r.CapFrac*100, r.UniTime, r.RedTime)
		}
		if r.Evaluations == 0 {
			t.Errorf("cap %.0f%%: no exact candidate evaluations", r.CapFrac*100)
		}
	}
	if beaten == 0 {
		t.Error("redistribution never strictly beat uniform on WRF-128")
	}
	// Tighter caps never run faster (uniform policy is monotone by
	// construction: fewer feasible levels).
	for i := 1; i < len(rows); i++ {
		if rows[i].UniTime > rows[i-1].UniTime+1e-9 {
			t.Errorf("uniform time not monotone: cap %.0f%% slower than %.0f%%", rows[i].CapFrac*100, rows[i-1].CapFrac*100)
		}
	}

	var buf bytes.Buffer
	if err := PowercapTable("WRF-128", rows).Write(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"T redistr", "peak (W)", "evals"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("table missing %q:\n%s", want, buf.String())
		}
	}
}
