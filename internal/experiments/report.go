package experiments

import (
	"bytes"
	"io"
	"strconv"
	"sync"
)

// Table is a printable result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// bufPool recycles render buffers: experiment reports are rendered once per
// table per run, but benchmarks regenerate them every iteration and sweeps
// render many tables back to back.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const colPadding = 2 // spaces between columns (the old tabwriter padding)

// Write renders the table with aligned columns. Rendering is done in one
// pass over a pooled buffer — column widths are computed directly instead
// of going through text/tabwriter's cell bookkeeping, which dominated the
// rendering cost — and flushed to w with a single Write call.
func (t *Table) Write(w io.Writer) error {
	buf := bufPool.Get().(*bytes.Buffer)
	defer bufPool.Put(buf)
	buf.Reset()

	if t.Title != "" {
		buf.WriteString("## ")
		buf.WriteString(t.Title)
		buf.WriteString("\n\n")
	}

	// Column widths over header, underline and rows.
	ncols := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > ncols {
			ncols = len(row)
		}
	}
	widths := make([]int, ncols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for i := range t.Header {
		if u := underlineLen(len(t.Header[i])); u > widths[i] {
			widths[i] = u
		}
	}
	for _, row := range t.Rows {
		measure(row)
	}

	writeCell := func(c string, col, rowLen int) {
		buf.WriteString(c)
		if col != rowLen-1 { // trailing cells are not padded
			for k := len(c); k < widths[col]+colPadding; k++ {
				buf.WriteByte(' ')
			}
		}
	}
	if len(t.Header) > 0 {
		for i, h := range t.Header {
			writeCell(h, i, len(t.Header))
		}
		buf.WriteByte('\n')
		for i, h := range t.Header {
			n := underlineLen(len(h))
			start := buf.Len()
			for k := 0; k < n; k++ {
				buf.WriteByte('-')
			}
			if i != len(t.Header)-1 {
				for k := buf.Len() - start; k < widths[i]+colPadding; k++ {
					buf.WriteByte(' ')
				}
			}
		}
		buf.WriteByte('\n')
	}
	for _, row := range t.Rows {
		for i, c := range row {
			writeCell(c, i, len(row))
		}
		buf.WriteByte('\n')
	}
	for _, n := range t.Notes {
		buf.WriteString("note: ")
		buf.WriteString(n)
		buf.WriteByte('\n')
	}
	buf.WriteByte('\n')
	_, err := w.Write(buf.Bytes())
	return err
}

// underlineLen is the header underline width (minimum 3 dashes, like the
// old renderer).
func underlineLen(n int) int {
	if n < 3 {
		return 3
	}
	return n
}

// pct formats a fraction as the paper's percent values.
func pct(x float64) string {
	b := strconv.AppendFloat(make([]byte, 0, 12), x*100, 'f', 2, 64)
	return string(append(b, '%'))
}

// EnergyTable renders a sweep's normalized energies (rows: apps).
func (sw *Sweep) EnergyTable() *Table {
	return sw.metricTable(sw.Title+" — normalized CPU energy", func(c Cell) string { return pct(c.Energy) })
}

// EDPTable renders a sweep's normalized EDPs.
func (sw *Sweep) EDPTable() *Table {
	return sw.metricTable(sw.Title+" — normalized EDP", func(c Cell) string { return pct(c.EDP) })
}

// TimeTable renders a sweep's normalized execution times.
func (sw *Sweep) TimeTable() *Table {
	return sw.metricTable(sw.Title+" — normalized execution time", func(c Cell) string { return pct(c.Time) })
}

func (sw *Sweep) metricTable(title string, get func(Cell) string) *Table {
	t := &Table{Title: title, Header: append([]string{"application"}, sw.Cols...)}
	for i, app := range sw.Apps {
		row := []string{app}
		for _, c := range sw.Cells[i] {
			row = append(row, get(c))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
