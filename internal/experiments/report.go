package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// Table is a printable result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "## %s\n\n", t.Title); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(t.Header) > 0 {
		writeRow(tw, t.Header)
		underline := make([]string, len(t.Header))
		for i, h := range t.Header {
			underline[i] = dashes(len(h))
		}
		writeRow(tw, underline)
	}
	for _, row := range t.Rows {
		writeRow(tw, row)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func writeRow(w io.Writer, cells []string) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
}

func dashes(n int) string {
	if n < 3 {
		n = 3
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}

// pct formats a fraction as the paper's percent values.
func pct(x float64) string { return fmt.Sprintf("%.2f%%", x*100) }

// EnergyTable renders a sweep's normalized energies (rows: apps).
func (sw *Sweep) EnergyTable() *Table {
	return sw.metricTable(sw.Title+" — normalized CPU energy", func(c Cell) string { return pct(c.Energy) })
}

// EDPTable renders a sweep's normalized EDPs.
func (sw *Sweep) EDPTable() *Table {
	return sw.metricTable(sw.Title+" — normalized EDP", func(c Cell) string { return pct(c.EDP) })
}

// TimeTable renders a sweep's normalized execution times.
func (sw *Sweep) TimeTable() *Table {
	return sw.metricTable(sw.Title+" — normalized execution time", func(c Cell) string { return pct(c.Time) })
}

func (sw *Sweep) metricTable(title string, get func(Cell) string) *Table {
	t := &Table{Title: title, Header: append([]string{"application"}, sw.Cols...)}
	for i, app := range sw.Apps {
		row := []string{app}
		for _, c := range sw.Cells[i] {
			row = append(row, get(c))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
