// Package experiments defines one runnable experiment per table and figure
// of the paper's evaluation (§5), plus the scaling study from the
// introduction and ablations of this reproduction's design choices. Each
// experiment prints the rows the paper reports; EXPERIMENTS.md records the
// measured values next to the paper's claims.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/timemodel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Suite generates and caches the twelve Table 3 application traces and runs
// analysis configurations against them. A Suite must not be shared between
// goroutines, but it can itself fan sweep cells out over a worker pool: set
// Workers > 1 to evaluate independent application×variant cells
// concurrently. Results are bit-identical to the serial run — every cell is
// an isolated, deterministic pipeline over an immutable trace.
type Suite struct {
	// Gen is the trace-generation configuration shared by all experiments.
	Gen workload.Config
	// Beta is the default memory-boundedness parameter.
	Beta float64
	// Workers bounds the number of concurrently evaluated sweep cells;
	// values below 2 mean serial execution. Trace generation always runs
	// serially (the cache is filled before fanning out).
	Workers int

	cache map[string]*trace.Trace
}

// NewSuite builds a suite from a generation config.
func NewSuite(gen workload.Config) *Suite {
	return &Suite{Gen: gen, Beta: timemodel.DefaultBeta, cache: map[string]*trace.Trace{}}
}

// DefaultSuite uses the full 20-iteration generation used for the reported
// numbers.
func DefaultSuite() *Suite { return NewSuite(workload.DefaultConfig()) }

// QuickSuite trades a little calibration fidelity for speed (unit tests and
// benchmarks).
func QuickSuite() *Suite {
	cfg := workload.DefaultConfig()
	cfg.Iterations = 5
	return NewSuite(cfg)
}

// Platform returns the machine model the suite replays on.
func (s *Suite) Platform() dimemas.Platform { return s.Gen.Platform }

// Trace returns the calibrated trace of a Table 3 instance, generating it on
// first use.
func (s *Suite) Trace(name string) (*trace.Trace, error) {
	if tr, ok := s.cache[name]; ok {
		return tr, nil
	}
	inst, err := workload.FindInstance(name)
	if err != nil {
		return nil, err
	}
	return s.TraceFor(inst)
}

// TraceFor returns the calibrated trace of an arbitrary instance (including
// interpolated ones), generating and caching it on first use.
func (s *Suite) TraceFor(inst workload.Instance) (*trace.Trace, error) {
	if tr, ok := s.cache[inst.Name]; ok {
		return tr, nil
	}
	tr, err := workload.Generate(inst, s.Gen)
	if err != nil {
		return nil, fmt.Errorf("experiments: generating %s: %w", inst.Name, err)
	}
	s.cache[inst.Name] = tr
	return tr, nil
}

// AppNames returns the twelve Table 3 instance names in the paper's order.
func AppNames() []string {
	insts := workload.Table3()
	out := make([]string, len(insts))
	for i, inst := range insts {
		out[i] = inst.Name
	}
	return out
}

// Figure2Apps returns the five applications shown in the paper's Figure 2
// ("results are given for five applications due to space limitation").
func Figure2Apps() []string {
	return []string{"BT-MZ-32", "CG-64", "SPECFEM3D-96", "PEPC-128", "WRF-128"}
}

// variant is one analysis configuration of a sweep: a labeled combination
// of gear set, algorithm, β and power model.
type variant struct {
	name  string
	set   *dvfs.Set
	alg   core.Algorithm
	beta  float64
	power power.Config
}

// analyze runs one variant against one application trace.
func (s *Suite) analyze(app string, v variant) (*analysis.Result, error) {
	tr, err := s.Trace(app)
	if err != nil {
		return nil, err
	}
	beta := v.beta
	if beta == 0 {
		beta = s.Beta
	}
	pcfg := v.power
	if pcfg == (power.Config{}) {
		pcfg = power.DefaultConfig()
	}
	return analysis.Run(analysis.Config{
		Trace:     tr,
		Platform:  s.Gen.Platform,
		Power:     pcfg,
		Set:       v.set,
		Algorithm: v.alg,
		Beta:      beta,
		FMax:      s.Gen.FMax,
	})
}

// Cell is one measured outcome of a sweep: normalized energy, time and EDP,
// plus the fraction of over-clocked CPUs for AVG runs.
type Cell struct {
	Energy, Time, EDP float64
	Overclocked       float64
}

// Sweep is a generic applications × variants result grid; every figure of
// the paper reduces to one.
type Sweep struct {
	Title string
	Apps  []string
	Cols  []string
	// Cells is indexed [app][variant].
	Cells [][]Cell
	// LB is the measured original load balance per application.
	LB []float64
}

// runSweep evaluates all variants over all apps, optionally fanning the
// independent cells out over Suite.Workers goroutines.
func (s *Suite) runSweep(title string, apps []string, variants []variant) (*Sweep, error) {
	sw := &Sweep{Title: title, Apps: apps}
	for _, v := range variants {
		sw.Cols = append(sw.Cols, v.name)
	}
	sw.Cells = make([][]Cell, len(apps))
	sw.LB = make([]float64, len(apps))
	for i := range apps {
		sw.Cells[i] = make([]Cell, len(variants))
	}

	// Trace generation mutates the cache: do it serially, up front.
	for _, app := range apps {
		if _, err := s.Trace(app); err != nil {
			return nil, err
		}
	}

	run := func(i, j int) error {
		res, err := s.analyze(apps[i], variants[j])
		if err != nil {
			return fmt.Errorf("experiments: %s / %s: %w", apps[i], variants[j].name, err)
		}
		sw.Cells[i][j] = Cell{
			Energy:      res.Norm.Energy,
			Time:        res.Norm.Time,
			EDP:         res.Norm.EDP,
			Overclocked: res.Assignment.OverclockedFraction(),
		}
		sw.LB[i] = res.LB // identical for every variant of an app
		return nil
	}

	if s.Workers < 2 {
		for i := range apps {
			for j := range variants {
				if err := run(i, j); err != nil {
					return nil, err
				}
			}
		}
		return sw, nil
	}

	// Worker pool over the flattened cell grid. Each cell writes to its
	// own pre-allocated slot; the only shared write, LB[i], is the same
	// value from every variant of row i, so last-write-wins is fine — but
	// it is still a data race by the letter, so guard it per row.
	type job struct{ i, j int }
	jobs := make(chan job)
	errCh := make(chan error, s.Workers)
	var wg sync.WaitGroup
	rowMu := make([]sync.Mutex, len(apps))
	for w := 0; w < s.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				res, err := s.analyzeConcurrent(apps[jb.i], variants[jb.j])
				if err != nil {
					select {
					case errCh <- fmt.Errorf("experiments: %s / %s: %w", apps[jb.i], variants[jb.j].name, err):
					default:
					}
					continue
				}
				sw.Cells[jb.i][jb.j] = Cell{
					Energy:      res.Norm.Energy,
					Time:        res.Norm.Time,
					EDP:         res.Norm.EDP,
					Overclocked: res.Assignment.OverclockedFraction(),
				}
				rowMu[jb.i].Lock()
				sw.LB[jb.i] = res.LB
				rowMu[jb.i].Unlock()
			}
		}()
	}
	for i := range apps {
		for j := range variants {
			jobs <- job{i, j}
		}
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	return sw, nil
}

// analyzeConcurrent is analyze without cache mutation: the trace must
// already be cached (runSweep guarantees it).
func (s *Suite) analyzeConcurrent(app string, v variant) (*analysis.Result, error) {
	tr, ok := s.cache[app]
	if !ok {
		return nil, fmt.Errorf("experiments: trace %s not pre-generated", app)
	}
	beta := v.beta
	if beta == 0 {
		beta = s.Beta
	}
	pcfg := v.power
	if pcfg == (power.Config{}) {
		pcfg = power.DefaultConfig()
	}
	return analysis.Run(analysis.Config{
		Trace:     tr,
		Platform:  s.Gen.Platform,
		Power:     pcfg,
		Set:       v.set,
		Algorithm: v.alg,
		Beta:      beta,
		FMax:      s.Gen.FMax,
	})
}

// Cell returns the sweep cell for an app/column pair.
func (sw *Sweep) Cell(app, col string) (Cell, error) {
	i := index(sw.Apps, app)
	j := index(sw.Cols, col)
	if i < 0 || j < 0 {
		return Cell{}, fmt.Errorf("experiments: no cell (%q, %q)", app, col)
	}
	return sw.Cells[i][j], nil
}

func index(xs []string, want string) int {
	for i, x := range xs {
		if x == want {
			return i
		}
	}
	return -1
}
