// Package experiments defines one runnable experiment per table and figure
// of the paper's evaluation (§5), plus the scaling study from the
// introduction and ablations of this reproduction's design choices. Each
// experiment prints the rows the paper reports; EXPERIMENTS.md records the
// measured values next to the paper's claims.
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/timemodel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Suite generates and caches the twelve Table 3 application traces and runs
// analysis configurations against them. A Suite must not be shared between
// goroutines, but it can itself fan sweep cells out over a worker pool: set
// Workers > 1 to evaluate independent application×variant cells
// concurrently. Results are bit-identical to the serial run — every cell is
// an isolated, deterministic pipeline over an immutable trace.
type Suite struct {
	// Gen is the trace-generation configuration shared by all experiments.
	Gen workload.Config
	// Beta is the default memory-boundedness parameter.
	Beta float64
	// Workers bounds the number of concurrently evaluated sweep cells;
	// values below 2 mean serial execution. Trace generation always runs
	// serially (the cache is filled before fanning out).
	Workers int

	cache   map[string]*trace.Trace
	replays *dimemas.ReplayCache
}

// NewSuite builds a suite from a generation config.
func NewSuite(gen workload.Config) *Suite {
	return &Suite{
		Gen:     gen,
		Beta:    timemodel.DefaultBeta,
		cache:   map[string]*trace.Trace{},
		replays: dimemas.NewReplayCache(),
	}
}

// DefaultSuite uses the full 20-iteration generation used for the reported
// numbers, fanning sweep cells out over all available CPUs.
func DefaultSuite() *Suite {
	s := NewSuite(workload.DefaultConfig())
	s.Workers = runtime.GOMAXPROCS(0)
	return s
}

// QuickSuite trades a little calibration fidelity for speed (unit tests and
// benchmarks), fanning sweep cells out over all available CPUs.
func QuickSuite() *Suite {
	cfg := workload.DefaultConfig()
	cfg.Iterations = 5
	s := NewSuite(cfg)
	s.Workers = runtime.GOMAXPROCS(0)
	return s
}

// Platform returns the machine model the suite replays on.
func (s *Suite) Platform() dimemas.Platform { return s.Gen.Platform }

// Trace returns the calibrated trace of a Table 3 instance, generating it on
// first use.
func (s *Suite) Trace(name string) (*trace.Trace, error) {
	if tr, ok := s.cache[name]; ok {
		return tr, nil
	}
	inst, err := workload.FindInstance(name)
	if err != nil {
		return nil, err
	}
	return s.TraceFor(inst)
}

// TraceFor returns the calibrated trace of an arbitrary instance (including
// interpolated ones), generating and caching it on first use.
func (s *Suite) TraceFor(inst workload.Instance) (*trace.Trace, error) {
	if tr, ok := s.cache[inst.Name]; ok {
		return tr, nil
	}
	tr, err := workload.Generate(inst, s.Gen)
	if err != nil {
		return nil, fmt.Errorf("experiments: generating %s: %w", inst.Name, err)
	}
	s.cache[inst.Name] = tr
	return tr, nil
}

// AppNames returns the twelve Table 3 instance names in the paper's order.
func AppNames() []string {
	insts := workload.Table3()
	out := make([]string, len(insts))
	for i, inst := range insts {
		out[i] = inst.Name
	}
	return out
}

// Figure2Apps returns the five applications shown in the paper's Figure 2
// ("results are given for five applications due to space limitation").
func Figure2Apps() []string {
	return []string{"BT-MZ-32", "CG-64", "SPECFEM3D-96", "PEPC-128", "WRF-128"}
}

// variant is one analysis configuration of a sweep: a labeled combination
// of gear set, algorithm, β and power model.
type variant struct {
	name  string
	set   *dvfs.Set
	alg   core.Algorithm
	beta  float64
	power power.Config
}

// analyze runs one variant against one application trace.
func (s *Suite) analyze(app string, v variant) (*analysis.Result, error) {
	tr, err := s.Trace(app)
	if err != nil {
		return nil, err
	}
	return analysis.Run(s.variantConfig(tr, v))
}

// variantConfig assembles the analysis configuration of one sweep cell,
// threading the suite's shared baseline-replay cache.
func (s *Suite) variantConfig(tr *trace.Trace, v variant) analysis.Config {
	beta := v.beta
	if beta == 0 {
		beta = s.Beta
	}
	pcfg := v.power
	if pcfg == (power.Config{}) {
		pcfg = power.DefaultConfig()
	}
	return analysis.Config{
		Trace:     tr,
		Platform:  s.Gen.Platform,
		Power:     pcfg,
		Set:       v.set,
		Algorithm: v.alg,
		Beta:      beta,
		FMax:      s.Gen.FMax,
		Cache:     s.replays,
	}
}

// Cell is one measured outcome of a sweep: normalized energy, time and EDP,
// plus the fraction of over-clocked CPUs for AVG runs.
type Cell struct {
	Energy, Time, EDP float64
	Overclocked       float64
}

// Sweep is a generic applications × variants result grid; every figure of
// the paper reduces to one.
type Sweep struct {
	Title string
	Apps  []string
	Cols  []string
	// Cells is indexed [app][variant].
	Cells [][]Cell
	// LB is the measured original load balance per application.
	LB []float64
}

// runSweep evaluates all variants over all apps, optionally fanning the
// independent cells out over Suite.Workers goroutines. Results are
// bit-identical to the serial run regardless of Workers: every cell is an
// isolated, deterministic pipeline, and the shared baseline replays are
// memoized values that do not depend on evaluation order. On failure the
// pool stops dispatching and the error of the first failing cell in serial
// (row-major) order is returned, matching what the serial loop reports.
func (s *Suite) runSweep(title string, apps []string, variants []variant) (*Sweep, error) {
	sw := &Sweep{Title: title, Apps: apps}
	for _, v := range variants {
		sw.Cols = append(sw.Cols, v.name)
	}
	sw.Cells = make([][]Cell, len(apps))
	sw.LB = make([]float64, len(apps))
	for i := range apps {
		sw.Cells[i] = make([]Cell, len(variants))
	}

	// Trace generation mutates the cache: do it serially, up front.
	for _, app := range apps {
		if _, err := s.Trace(app); err != nil {
			return nil, err
		}
	}

	run := func(i, j int) error {
		res, err := s.analyzeConcurrent(apps[i], variants[j])
		if err != nil {
			return fmt.Errorf("experiments: %s / %s: %w", apps[i], variants[j].name, err)
		}
		sw.Cells[i][j] = Cell{
			Energy:      res.Norm.Energy,
			Time:        res.Norm.Time,
			EDP:         res.Norm.EDP,
			Overclocked: res.Assignment.OverclockedFraction(),
		}
		if j == 0 {
			// LB comes from the original execution, which is identical for
			// every variant of an app; writing it from one designated cell
			// keeps the parallel path free of shared writes.
			sw.LB[i] = res.LB
		}
		return nil
	}

	if s.Workers < 2 {
		for i := range apps {
			for j := range variants {
				if err := run(i, j); err != nil {
					return nil, err
				}
			}
		}
		return sw, nil
	}

	// Worker pool over the flattened cell grid. Each cell writes only its
	// own pre-allocated slots. Dispatch stops at the first observed error
	// instead of draining the whole grid; every job dispatched before the
	// stop still completes, which guarantees the earliest failing cell in
	// dispatch order is always evaluated and therefore deterministically
	// reported (any error observed before it would have to come from an
	// even earlier cell).
	type job struct{ i, j int }
	jobs := make(chan job)
	errs := make([]error, len(apps)*len(variants))
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < s.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				if err := run(jb.i, jb.j); err != nil {
					errs[jb.i*len(variants)+jb.j] = err
					failed.Store(true)
				}
			}
		}()
	}
dispatch:
	for i := range apps {
		for j := range variants {
			if failed.Load() {
				break dispatch
			}
			jobs <- job{i, j}
		}
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sw, nil
}

// analyzeConcurrent is analyze without trace-cache mutation, safe to call
// from sweep workers: the trace must already be generated (runSweep
// guarantees it).
func (s *Suite) analyzeConcurrent(app string, v variant) (*analysis.Result, error) {
	tr, ok := s.cache[app]
	if !ok {
		return nil, fmt.Errorf("experiments: trace %s not pre-generated", app)
	}
	return analysis.Run(s.variantConfig(tr, v))
}

// Cell returns the sweep cell for an app/column pair.
func (sw *Sweep) Cell(app, col string) (Cell, error) {
	i := index(sw.Apps, app)
	j := index(sw.Cols, col)
	if i < 0 || j < 0 {
		return Cell{}, fmt.Errorf("experiments: no cell (%q, %q)", app, col)
	}
	return sw.Cells[i][j], nil
}

func index(xs []string, want string) int {
	for i, x := range xs {
		if x == want {
			return i
		}
	}
	return -1
}
