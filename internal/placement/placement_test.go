package placement

import (
	"context"
	"errors"
	"testing"

	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/trace"
)

// pairTrace builds n (even) ranks in n/2 partner pairs (2k, 2k+1): pair k
// exchanges 2^(n/2−k) large rendezvous messages per iteration, so the
// iteration cost is dominated by the heaviest pair that crosses a node
// boundary. Unlike a symmetric ring (where no single swap changes the
// worst-stage cost), every split pair here admits a strictly improving
// swap, so the local search can walk to the all-pairs-colocated optimum —
// which is exactly the block placement's cost.
func pairTrace(n, iters int) *trace.Trace {
	tr := trace.New("pairs", n)
	const bytes = 1 << 16
	npairs := n / 2
	tag := 0
	for it := 0; it < iters; it++ {
		for k := 0; k < npairs; k++ {
			a, b := 2*k, 2*k+1
			for m := 0; m < 1<<(npairs-k); m++ {
				tr.Add(a, trace.Send(b, bytes, tag))
				tr.Add(b, trace.Recv(a, bytes, tag))
				tag++
			}
		}
		for r := 0; r < n; r++ {
			tr.Add(r, trace.Compute(0.001))
			tr.Add(r, trace.Coll(trace.CollBarrier, 0))
			tr.Add(r, trace.IterMark())
		}
	}
	return tr
}

// twoTierMachine places nranks on nodes of perNode ranks with a fast
// intra-node and a slow inter-node link.
func twoTierMachine(pl []int) dimemas.Machine {
	return dimemas.Machine{
		Base: dimemas.DefaultPlatform(),
		Topo: &dimemas.Topology{
			Placement: pl,
			Intra:     dimemas.Link{Latency: 5e-7, Bandwidth: 6e9},
			Inter:     dimemas.Link{Latency: 2e-5, Bandwidth: 1e8},
		},
	}
}

func simTime(t *testing.T, tr *trace.Trace, m dimemas.Machine) float64 {
	t.Helper()
	res, err := dimemas.SimulateMachine(tr, m, dimemas.Options{Beta: 0.5, FMax: dvfs.FMax})
	if err != nil {
		t.Fatal(err)
	}
	return res.Time
}

func TestOptimizeRecoversLocalityFromShuffle(t *testing.T) {
	const n, perNode = 8, 2
	tr := pairTrace(n, 2)
	shuffled := ShuffledPlacement(n, perNode, 42)
	blockTime := simTime(t, tr, twoTierMachine(dimemas.BlockPlacement(n, perNode)))
	shuffledTime := simTime(t, tr, twoTierMachine(shuffled))
	if shuffledTime <= blockTime {
		t.Fatalf("test premise broken: shuffled %v not worse than block %v", shuffledTime, blockTime)
	}

	res, err := Optimize(Config{Trace: tr, Machine: twoTierMachine(shuffled)})
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialTime != shuffledTime {
		t.Errorf("initial time %v != shuffled replay %v", res.InitialTime, shuffledTime)
	}
	if res.Time >= shuffledTime {
		t.Errorf("optimized time %v did not improve on shuffled %v", res.Time, shuffledTime)
	}
	// The optimized placement's reported time is the exact replay of the
	// returned vector.
	if got := simTime(t, tr, twoTierMachine(res.Placement)); got != res.Time {
		t.Errorf("reported time %v != replay of returned placement %v", res.Time, got)
	}
	if res.Swaps == 0 || res.Evaluations == 0 {
		t.Errorf("search did no work: %+v", res)
	}
	// Colocating every partner pair is optimal and is exactly what the block
	// placement does; the local search must land within a whisker of it.
	if res.Time > blockTime*1.001 {
		t.Errorf("optimized time %v far from block optimum %v", res.Time, blockTime)
	}
}

func TestOptimizeLeavesInputMachineUntouched(t *testing.T) {
	const n, perNode = 6, 2
	tr := pairTrace(n, 1)
	shuffled := ShuffledPlacement(n, perNode, 7)
	orig := append([]int(nil), shuffled...)
	m := twoTierMachine(shuffled)
	if _, err := Optimize(Config{Trace: tr, Machine: m}); err != nil {
		t.Fatal(err)
	}
	for r := range orig {
		if m.Topo.Placement[r] != orig[r] {
			t.Fatalf("input placement mutated at rank %d: %v -> %v", r, orig, m.Topo.Placement)
		}
	}
}

func TestOptimizeIsDeterministic(t *testing.T) {
	const n, perNode = 8, 2
	tr := pairTrace(n, 1)
	shuffled := ShuffledPlacement(n, perNode, 3)
	a, err := Optimize(Config{Trace: tr, Machine: twoTierMachine(shuffled)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(Config{Trace: tr, Machine: twoTierMachine(shuffled)})
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time || a.Swaps != b.Swaps || a.Evaluations != b.Evaluations {
		t.Errorf("non-deterministic search: %+v vs %+v", a, b)
	}
	for r := range a.Placement {
		if a.Placement[r] != b.Placement[r] {
			t.Errorf("placements differ at rank %d", r)
		}
	}
}

func TestOptimizeValidation(t *testing.T) {
	tr := pairTrace(4, 1)
	flat := dimemas.FlatMachine(dimemas.DefaultPlatform())
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil trace", Config{Machine: twoTierMachine(dimemas.BlockPlacement(4, 2))}},
		{"no topology", Config{Trace: tr, Machine: flat}},
		{"bad beta", Config{Trace: tr, Machine: twoTierMachine(dimemas.BlockPlacement(4, 2)), Beta: 1.5}},
		{"bad freqs", Config{Trace: tr, Machine: twoTierMachine(dimemas.BlockPlacement(4, 2)), Freqs: []float64{2.3}}},
		{"negative passes", Config{Trace: tr, Machine: twoTierMachine(dimemas.BlockPlacement(4, 2)), MaxPasses: -1}},
		{"short placement", Config{Trace: tr, Machine: twoTierMachine(dimemas.BlockPlacement(3, 2))}},
	}
	for _, tc := range cases {
		if _, err := Optimize(tc.cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestOptimizeContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Optimize(Config{
		Trace:   pairTrace(8, 1),
		Machine: twoTierMachine(ShuffledPlacement(8, 2, 1)),
		Ctx:     ctx,
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
}

func TestShuffledPlacementDeterministicAndComplete(t *testing.T) {
	a := ShuffledPlacement(16, 4, 99)
	b := ShuffledPlacement(16, 4, 99)
	counts := map[int]int{}
	for r := range a {
		if a[r] != b[r] {
			t.Fatalf("same seed produced different placements")
		}
		counts[a[r]]++
	}
	for nd := 0; nd < 4; nd++ {
		if counts[nd] != 4 {
			t.Errorf("node %d holds %d ranks, want 4", nd, counts[nd])
		}
	}
	if c := ShuffledPlacement(16, 4, 100); equalInts(a, c) {
		t.Errorf("different seeds produced identical placements")
	}
}

func equalInts(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BenchmarkOptimizePairs tracks the cost of the full local search — every
// candidate swap is an exact machine replay, so this is the perf trajectory
// of both the search loop and the topology-resolved simulator.
func BenchmarkOptimizePairs(b *testing.B) {
	const n, perNode = 8, 2
	tr := pairTrace(n, 2)
	shuffled := ShuffledPlacement(n, perNode, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(Config{Trace: tr, Machine: twoTierMachine(shuffled)}); err != nil {
			b.Fatal(err)
		}
	}
}
