// Package placement co-optimizes where ranks live on a topology-aware
// machine. The paper balances load by choosing per-rank DVFS gears on a flat
// interconnect; once the machine model resolves transfer costs per rank pair
// (dimemas.Topology), *where* each rank sits becomes a second optimization
// axis: a nearest-neighbour exchange priced over the slow inter-node link
// costs an order of magnitude more than the same exchange within a node.
//
// Optimize runs a deterministic pairwise-swap local search over the
// rank→node placement: every pass proposes each cross-node rank pair swap in
// ascending order, scores the candidate machine with an exact replay, and
// commits strict execution-time improvements. Candidate machines differ in
// topology, so each evaluation rebuilds wire costs from scratch (a fresh
// SimulateMachine); the search is therefore meant for modest rank counts or
// sliced traces, and the pass bound keeps it predictable.
package placement

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/stagerr"
	"repro/internal/timemodel"
	"repro/internal/trace"
)

// Config parameterizes one placement search.
type Config struct {
	// Trace is the application trace.
	Trace *trace.Trace
	// Machine is the layered machine whose Topo.Placement the search
	// optimizes. It must carry a topology layer; the capability layer (if
	// any) rides along unchanged, so the search co-exists with
	// heterogeneous gear/power optimization.
	Machine dimemas.Machine
	// Freqs optionally fixes per-rank frequencies for the scoring replays
	// (e.g. a gear assignment being co-optimized); nil scores at FMax.
	Freqs []float64
	// Beta is the memory-boundedness parameter; the zero value selects the
	// paper's default 0.5 unless BetaSet is true (see analysis.Config).
	Beta float64
	// BetaSet marks Beta as explicitly chosen, honoring an explicit 0.
	BetaSet bool
	// FMax is the nominal top frequency (default dvfs.FMax when zero).
	FMax float64
	// MaxPasses bounds the sweep count of the local search (default 4).
	MaxPasses int
	// Ctx optionally bounds the search; it is polled between candidate
	// evaluations and threaded into the replays.
	Ctx context.Context
}

// Result reports one placement search.
type Result struct {
	// App names the optimized trace.
	App string
	// Placement is the optimized rank→node vector.
	Placement []int
	// InitialTime and Time are the exact execution times of the starting
	// and the optimized placement.
	InitialTime, Time float64
	// Swaps counts committed pair swaps; Evaluations counts scored
	// candidates; Passes counts completed sweeps.
	Swaps, Evaluations, Passes int
}

// Errors.
var (
	// ErrNilTrace reports a missing trace.
	ErrNilTrace = errors.New("placement: config needs a trace")
	// ErrNoTopology reports a machine without a topology layer to optimize.
	ErrNoTopology = errors.New("placement: machine has no topology layer")
)

func (c *Config) normalize() error {
	if c.Trace == nil {
		return ErrNilTrace
	}
	if c.Machine.Topo == nil {
		return ErrNoTopology
	}
	if c.Beta < 0 || c.Beta > 1 || math.IsNaN(c.Beta) {
		return fmt.Errorf("placement: beta %v outside [0, 1]", c.Beta)
	}
	if c.Beta == 0 && !c.BetaSet {
		c.Beta = timemodel.DefaultBeta
	}
	if c.FMax == 0 {
		c.FMax = dvfs.FMax
	}
	if c.FMax < 0 {
		return fmt.Errorf("placement: negative fmax %v", c.FMax)
	}
	if c.MaxPasses == 0 {
		c.MaxPasses = 4
	}
	if c.MaxPasses < 0 {
		return fmt.Errorf("placement: negative max passes %d", c.MaxPasses)
	}
	n := c.Trace.NumRanks()
	if c.Freqs != nil && len(c.Freqs) != n {
		return fmt.Errorf("placement: %d frequencies for %d ranks", len(c.Freqs), n)
	}
	if err := c.Machine.ValidateFor(n); err != nil {
		return err
	}
	return nil
}

// Optimize runs the pairwise-swap local search and returns the best
// placement found. The input machine is never mutated. Errors are
// stage-tagged (internal/stagerr): configuration problems carry the
// validate stage, everything else crosses optimize.
func Optimize(cfg Config) (*Result, error) {
	res, err := optimize(cfg)
	if err != nil {
		return nil, stagerr.Wrap(stagerr.Optimize, err)
	}
	return res, nil
}

func optimize(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, stagerr.Wrap(stagerr.Validate, err)
	}

	// Private working copy: the search mutates cand.Topo.Placement in place
	// and must not leak writes into the caller's machine.
	cand := cfg.Machine
	topo := *cfg.Machine.Topo
	topo.Placement = append([]int(nil), cfg.Machine.Topo.Placement...)
	cand.Topo = &topo
	pl := topo.Placement
	n := len(pl)

	opts := dimemas.Options{Beta: cfg.Beta, FMax: cfg.FMax, Freqs: cfg.Freqs, Ctx: cfg.Ctx}
	evals := 0
	score := func() (float64, error) {
		if cfg.Ctx != nil {
			if err := cfg.Ctx.Err(); err != nil {
				return 0, err
			}
		}
		evals++
		res, err := dimemas.SimulateMachine(cfg.Trace, cand, opts)
		if err != nil {
			return 0, err
		}
		return res.Time, nil
	}

	best, err := score()
	if err != nil {
		return nil, err
	}
	initial := best

	swaps, passes := 0, 0
	for ; passes < cfg.MaxPasses; passes++ {
		improved := false
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if pl[i] == pl[j] {
					continue // same node: the swap is a no-op
				}
				pl[i], pl[j] = pl[j], pl[i]
				t, err := score()
				if err != nil {
					return nil, err
				}
				if t < best-1e-12 {
					best = t
					swaps++
					improved = true
				} else {
					pl[i], pl[j] = pl[j], pl[i]
				}
			}
		}
		if !improved {
			break
		}
	}

	return &Result{
		App:         cfg.Trace.App,
		Placement:   pl,
		InitialTime: initial,
		Time:        best,
		Swaps:       swaps,
		Evaluations: evals,
		Passes:      passes,
	}, nil
}

// ShuffledPlacement returns a deterministic pseudo-random permutation of
// BlockPlacement(nranks, perNode) — the locality-oblivious scheduler
// baseline the experiments compare topology-aware placements against.
func ShuffledPlacement(nranks, perNode int, seed int64) []int {
	pl := dimemas.BlockPlacement(nranks, perNode)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(pl), func(i, j int) { pl[i], pl[j] = pl[j], pl[i] })
	return pl
}
