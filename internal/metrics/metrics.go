// Package metrics implements the application-characterization and result
// metrics of the paper (§5.1): load balance, parallel efficiency, normalized
// energy and the energy-delay product (EDP).
package metrics

import (
	"errors"
	"fmt"

	"repro/internal/stats"
)

// ErrNoRanks reports an empty computation-time vector.
var ErrNoRanks = errors.New("metrics: need at least one rank")

// LoadBalance implements eq. 4:
//
//	LB = Σ_k ComputationTime_k / (Nproc · max_k ComputationTime_k)
//
// It is 1 for perfectly balanced applications and approaches 1/Nproc when a
// single rank does all the work. Returns an error when compTimes is empty or
// the maximum computation time is not positive.
func LoadBalance(compTimes []float64) (float64, error) {
	if len(compTimes) == 0 {
		return 0, ErrNoRanks
	}
	max := stats.Max(compTimes)
	if max <= 0 {
		return 0, fmt.Errorf("metrics: max computation time must be positive, got %v", max)
	}
	return stats.Sum(compTimes) / (float64(len(compTimes)) * max), nil
}

// ParallelEfficiency implements eq. 5:
//
//	PE = Σ_k ComputationTime_k / (Nproc · TotalExecutionTime)
//
// Total execution time must be positive and at least the maximum per-rank
// computation time (a rank cannot compute for longer than the run lasts).
func ParallelEfficiency(compTimes []float64, totalTime float64) (float64, error) {
	if len(compTimes) == 0 {
		return 0, ErrNoRanks
	}
	if totalTime <= 0 {
		return 0, fmt.Errorf("metrics: total execution time must be positive, got %v", totalTime)
	}
	if max := stats.Max(compTimes); max > totalTime*(1+1e-9) {
		return 0, fmt.Errorf("metrics: max computation time %v exceeds total time %v", max, totalTime)
	}
	return stats.Sum(compTimes) / (float64(len(compTimes)) * totalTime), nil
}

// EDP returns the energy-delay product.
func EDP(energy, time float64) float64 { return energy * time }

// Normalized expresses a new value relative to an original one; the paper
// reports all energies and EDPs normalized to the all-CPUs-at-top-speed run.
// A non-positive original yields 0 to keep reports printable.
func Normalized(newVal, origVal float64) float64 {
	if origVal <= 0 {
		return 0
	}
	return newVal / origVal
}

// Result collects the normalized outcome of applying one algorithm/gear-set
// combination to one application, as reported throughout §5.3.
type Result struct {
	Energy float64 // new CPU energy / original CPU energy
	Time   float64 // new execution time / original execution time
	EDP    float64 // new EDP / original EDP
}

// NewResult builds a Result from absolute measurements.
func NewResult(origEnergy, origTime, newEnergy, newTime float64) Result {
	return Result{
		Energy: Normalized(newEnergy, origEnergy),
		Time:   Normalized(newTime, origTime),
		EDP:    Normalized(EDP(newEnergy, newTime), EDP(origEnergy, origTime)),
	}
}

// Savings returns the fractional energy saving (1 − normalized energy).
func (r Result) Savings() float64 { return 1 - r.Energy }

// String renders the result as percentages, e.g.
// "energy 62.1% time 101.3% EDP 62.9%".
func (r Result) String() string {
	return fmt.Sprintf("energy %.1f%% time %.1f%% EDP %.1f%%",
		r.Energy*100, r.Time*100, r.EDP*100)
}
