package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestLoadBalance(t *testing.T) {
	tests := []struct {
		name  string
		comp  []float64
		want  float64
		isErr bool
	}{
		{"perfect balance", []float64{2, 2, 2, 2}, 1.0, false},
		{"one idle rank", []float64{2, 2, 2, 0}, 0.75, false},
		{"single worker", []float64{4, 0, 0, 0}, 0.25, false},
		{"linear ramp", []float64{1, 2, 3, 4}, 10.0 / 16.0, false},
		{"single rank", []float64{5}, 1.0, false},
		{"empty", nil, 0, true},
		{"all zero", []float64{0, 0}, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := LoadBalance(tt.comp)
			if (err != nil) != tt.isErr {
				t.Fatalf("err = %v, wantErr = %v", err, tt.isErr)
			}
			if err == nil && math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("LB = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestParallelEfficiency(t *testing.T) {
	// 4 ranks computing 1,2,3,4 seconds in a 5 second run: PE = 10/20 = 0.5.
	got, err := ParallelEfficiency([]float64{1, 2, 3, 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("PE = %v, want 0.5", got)
	}
	if _, err := ParallelEfficiency(nil, 5); err == nil {
		t.Error("empty comp times should error")
	}
	if _, err := ParallelEfficiency([]float64{1}, 0); err == nil {
		t.Error("zero total time should error")
	}
	if _, err := ParallelEfficiency([]float64{6}, 5); err == nil {
		t.Error("comp > total should error")
	}
	// comp == total is legal (fully compute-bound rank).
	if _, err := ParallelEfficiency([]float64{5, 1}, 5); err != nil {
		t.Errorf("comp == total should be legal: %v", err)
	}
}

func TestPEBoundedByLB(t *testing.T) {
	// PE <= LB always: total time >= max computation time.
	comp := []float64{1, 2, 3, 4}
	lb, _ := LoadBalance(comp)
	pe, _ := ParallelEfficiency(comp, 4.5)
	if pe > lb {
		t.Errorf("PE %v > LB %v", pe, lb)
	}
}

func TestNormalizedAndEDP(t *testing.T) {
	if got := EDP(2, 3); got != 6 {
		t.Errorf("EDP = %v, want 6", got)
	}
	if got := Normalized(50, 100); got != 0.5 {
		t.Errorf("Normalized = %v, want 0.5", got)
	}
	if got := Normalized(50, 0); got != 0 {
		t.Errorf("Normalized by zero = %v, want 0", got)
	}
}

func TestNewResult(t *testing.T) {
	r := NewResult(100, 10, 40, 11)
	if math.Abs(r.Energy-0.4) > 1e-12 {
		t.Errorf("Energy = %v, want 0.4", r.Energy)
	}
	if math.Abs(r.Time-1.1) > 1e-12 {
		t.Errorf("Time = %v, want 1.1", r.Time)
	}
	if math.Abs(r.EDP-0.44) > 1e-12 {
		t.Errorf("EDP = %v, want 0.44", r.EDP)
	}
	if math.Abs(r.Savings()-0.6) > 1e-12 {
		t.Errorf("Savings = %v, want 0.6", r.Savings())
	}
	if !strings.Contains(r.String(), "energy 40.0%") {
		t.Errorf("String = %q", r.String())
	}
}

// Property: LB is always in (0, 1] for positive computation times.
func TestLoadBalanceRangeProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		comp := make([]float64, 0, len(raw))
		for _, r := range raw {
			comp = append(comp, math.Abs(math.Mod(r, 100))+0.001)
		}
		if len(comp) == 0 {
			return true
		}
		lb, err := LoadBalance(comp)
		if err != nil {
			return false
		}
		return lb > 0 && lb <= 1+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: LB is scale invariant (multiplying all times by a constant
// leaves LB unchanged).
func TestLoadBalanceScaleInvarianceProperty(t *testing.T) {
	prop := func(raw []float64, kRaw float64) bool {
		comp := make([]float64, 0, len(raw))
		for _, r := range raw {
			comp = append(comp, math.Abs(math.Mod(r, 100))+0.001)
		}
		if len(comp) == 0 {
			return true
		}
		k := math.Abs(math.Mod(kRaw, 10)) + 0.5
		lb1, err1 := LoadBalance(comp)
		scaled := make([]float64, len(comp))
		for i, c := range comp {
			scaled[i] = c * k
		}
		lb2, err2 := LoadBalance(scaled)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(lb1-lb2) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: normalized EDP = normalized energy × normalized time.
func TestResultEDPConsistencyProperty(t *testing.T) {
	prop := func(e0, t0, e1, t1 float64) bool {
		oe := math.Abs(math.Mod(e0, 100)) + 1
		ot := math.Abs(math.Mod(t0, 100)) + 1
		ne := math.Abs(math.Mod(e1, 100)) + 1
		nt := math.Abs(math.Mod(t1, 100)) + 1
		r := NewResult(oe, ot, ne, nt)
		return math.Abs(r.EDP-r.Energy*r.Time) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
