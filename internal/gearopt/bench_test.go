package gearopt

import (
	"testing"

	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/trace"
	"repro/internal/workload"
)

// BenchmarkGearoptObjective measures one candidate evaluation of the
// coordinate-descent search — the operation the optimizer performs
// thousands of times per run. Since the objective now retimes the exact
// replay (no original-time approximation), this is also the cost of one
// exact what-if answer per application.
func BenchmarkGearoptObjective(b *testing.B) {
	cfg := workload.DefaultConfig()
	cfg.Iterations = 4
	cfg.SkipPECalibration = true
	inst, err := workload.FindInstance("BT-MZ-32")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := workload.Generate(inst, cfg)
	if err != nil {
		b.Fatal(err)
	}
	scfg := Config{Traces: []*trace.Trace{tr}, NGears: 6, Cache: dimemas.NewReplayCache()}
	if err := scfg.normalize(); err != nil {
		b.Fatal(err)
	}
	s, err := newSearcher(scfg)
	if err != nil {
		b.Fatal(err)
	}
	freqs := make([]float64, scfg.NGears)
	step := (scfg.FMax - dvfs.FMin) / float64(scfg.NGears-1)
	for i := range freqs {
		freqs[i] = dvfs.FMin + float64(i)*step
	}
	freqs[scfg.NGears-1] = scfg.FMax
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.objective(freqs); err != nil {
			b.Fatal(err)
		}
	}
}
