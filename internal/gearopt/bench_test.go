package gearopt

import (
	"testing"

	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/trace"
	"repro/internal/workload"
)

func benchSearcher(b *testing.B) (*searcher, []float64) {
	b.Helper()
	cfg := workload.DefaultConfig()
	cfg.Iterations = 4
	cfg.SkipPECalibration = true
	inst, err := workload.FindInstance("BT-MZ-32")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := workload.Generate(inst, cfg)
	if err != nil {
		b.Fatal(err)
	}
	scfg := Config{Traces: []*trace.Trace{tr}, NGears: 6, Cache: dimemas.NewReplayCache()}
	if err := scfg.normalize(); err != nil {
		b.Fatal(err)
	}
	s, err := newSearcher(scfg)
	if err != nil {
		b.Fatal(err)
	}
	freqs := make([]float64, scfg.NGears)
	step := (scfg.FMax - dvfs.FMin) / float64(scfg.NGears-1)
	for i := range freqs {
		freqs[i] = dvfs.FMin + float64(i)*step
	}
	freqs[scfg.NGears-1] = scfg.FMax
	return s, freqs
}

// BenchmarkGearoptObjective measures one candidate evaluation of the
// coordinate-descent search — the operation the optimizer performs
// thousands of times per run. Since the objective now retimes the exact
// replay (no original-time approximation), this is also the cost of one
// exact what-if answer per application. Re-evaluating an unchanged vector
// lands in delta retiming's no-change regime, so this is the steady-state
// floor; BenchmarkGearoptObjectiveLattice exercises a changing stream.
func BenchmarkGearoptObjective(b *testing.B) {
	s, freqs := benchSearcher(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.objective(freqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGearoptObjectiveLattice evaluates the exact lattice the first
// coordinate-descent round scans off the uniform ladder — consecutive
// candidates move one gear, the neighborhood shape (and delta-retiming
// dirty set) the optimizer's inner loop actually produces.
func BenchmarkGearoptObjectiveLattice(b *testing.B) {
	s, freqs := benchSearcher(b)
	grid := s.cfg.Grid
	var cands [][]float64
	for i := 0; i < len(freqs)-1; i++ {
		lo := dvfs.FMin / 2
		if i > 0 {
			lo = freqs[i-1] + grid
		}
		hi := freqs[i+1] - grid
		for f := lo; f <= hi+1e-9; f += grid {
			c := append([]float64(nil), freqs...)
			c[i] = f
			cands = append(cands, c)
		}
	}
	if _, err := s.objective(freqs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.objective(cands[i%len(cands)]); err != nil {
			b.Fatal(err)
		}
	}
}
