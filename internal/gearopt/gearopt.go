// Package gearopt searches for the best placement of a fixed number of
// DVFS gears. The paper asks "which is the most appropriate DVFS gear set
// size and how frequencies should be distributed" and compares uniform
// against exponential spacing by hand; this package answers the question
// constructively with a coordinate-descent search over gear frequencies.
//
// The search objective is the average normalized CPU energy of the MAX
// algorithm over a set of application traces, evaluated *exactly*: every
// candidate is scored by retiming the trace's frequency-independent timing
// skeleton (dimemas.Skeleton), which is bit-identical to a full replay at a
// fraction of the cost. The search result therefore needs no re-scoring —
// Result.SearchEnergy equals the full-replay Result.Energy by construction,
// eliminating the original-time approximation gap.
package gearopt

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/stagerr"
	"repro/internal/timemodel"
	"repro/internal/trace"
)

// Config parameterizes a gear-placement search.
type Config struct {
	// Traces are the applications to optimize for.
	Traces []*trace.Trace
	// NGears is the gear count of the searched set (≥ 2). The top gear is
	// pinned at FMax (the critical process must not slow down); all others
	// move on the grid.
	NGears int
	// Platform, Power, Beta, FMax as elsewhere; zero values take defaults.
	Platform dimemas.Platform
	// Machine optionally layers topology and per-rank capability on top of
	// Platform (nil means the flat homogeneous machine; a zero Base inherits
	// the normalized Platform). The search then profiles and scores on the
	// layered machine: replays resolve its topology, the per-application
	// balancer honors per-rank frequency ceilings, and energy accounting
	// applies per-rank power scales.
	Machine *dimemas.Machine
	Power   power.Config
	Beta    float64
	// BetaSet marks Beta as explicitly chosen, so an explicit Beta = 0
	// is honored instead of defaulting to 0.5 (see analysis.Config).
	BetaSet bool
	FMax    float64
	// Grid is the frequency step of the search lattice (default 0.05 GHz).
	Grid float64
	// MaxRounds bounds the coordinate-descent rounds (default 8).
	MaxRounds int
	// Cache optionally memoizes the baseline replays and timing skeletons:
	// the profiling pass, the search and the final scoring all share the
	// same originals, and callers sweeping several searches over the same
	// traces share them too. Nil means uncached (skeletons are then built
	// once per search).
	Cache *dimemas.ReplayCache
	// FreshReplays scores every candidate with a full skeleton pass
	// (Skeleton.RetimeInto) instead of the default delta retiming that
	// re-times only the ranks whose assigned frequency changed between
	// consecutive candidates. Results are bit-identical either way (the
	// golden tests assert it); the flag exists as a diagnostic escape hatch.
	FreshReplays bool
	// Ctx optionally bounds the search: it is polled between candidate
	// evaluations and threaded into the replays, so a cancelled caller
	// stops paying for the remaining lattice points.
	Ctx context.Context
}

// Result reports an optimized gear set.
type Result struct {
	// Set is the optimized gear set.
	Set *dvfs.Set
	// SearchEnergy is the objective value of the optimized set. The
	// objective retimes the exact replay, so it equals Energy.
	SearchEnergy float64
	// Energy and UniformEnergy are full-replay average normalized energies
	// of the optimized set and the uniform set of the same size.
	Energy, UniformEnergy float64
	// Rounds and Evaluations count the search effort.
	Rounds, Evaluations int
}

// ErrNoTraces reports an empty application list.
var ErrNoTraces = errors.New("gearopt: need at least one trace")

// appProfile holds one application's frequency-independent inputs plus the
// per-evaluation scratch buffers, preallocated once so the inner search
// loop allocates only what the gear-set constructor and the balancer
// inherently return.
type appProfile struct {
	comp       []float64 // per-rank computation time at fmax (shared cache Result — read-only)
	origEnergy float64
	skel       *dimemas.Skeleton
	res        dimemas.Result     // reusable retime output (FreshReplays path)
	delta      dimemas.DeltaState // incremental retiming state (default path)
	usage      []power.Usage      // reusable energy-accounting rows
	freqs      []float64          // reusable per-rank frequency vector
}

// searcher carries the search state; it is confined to one goroutine.
type searcher struct {
	cfg      Config
	pm       *power.Model
	profiles []appProfile
	pscale   []float64 // per-rank power multipliers (nil: homogeneous)
	bal      core.Balancer
	gears    []dvfs.Gear // reusable candidate gear list
	evals    int
}

func (cfg *Config) normalize() error {
	if len(cfg.Traces) == 0 {
		return ErrNoTraces
	}
	if cfg.NGears < 2 {
		return fmt.Errorf("gearopt: need at least 2 gears, got %d", cfg.NGears)
	}
	if cfg.Platform == (dimemas.Platform{}) {
		cfg.Platform = dimemas.DefaultPlatform()
	}
	if cfg.Power == (power.Config{}) {
		cfg.Power = power.DefaultConfig()
	}
	if cfg.Beta == 0 && !cfg.BetaSet {
		cfg.Beta = timemodel.DefaultBeta
	}
	if cfg.FMax == 0 {
		cfg.FMax = dvfs.FMax
	}
	if cfg.Grid == 0 {
		cfg.Grid = 0.05
	}
	if cfg.Grid <= 0 {
		return fmt.Errorf("gearopt: grid step must be positive, got %v", cfg.Grid)
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 8
	}
	return nil
}

// machine resolves the layered machine the search runs on (call after
// normalize): the explicit Machine when configured, inheriting the
// normalized Platform into a zero Base, or the flat homogeneous machine.
// Per-trace rank-count validation happens in newSearcher.
func (cfg *Config) machine() dimemas.Machine {
	if cfg.Machine == nil {
		return dimemas.FlatMachine(cfg.Platform)
	}
	m := *cfg.Machine
	if m.Base == (dimemas.Platform{}) {
		m.Base = cfg.Platform
	}
	return m
}

// newSearcher profiles every application once (baseline replay + timing
// skeleton, both shared through the cache when one is configured) and
// preallocates the per-evaluation buffers.
func newSearcher(cfg Config) (*searcher, error) {
	pm, err := power.New(cfg.Power)
	if err != nil {
		return nil, err
	}
	machine := cfg.machine()
	var fmaxes, pscale []float64
	if machine.Cap != nil {
		fmaxes = machine.Cap.FMax
		pscale = machine.Cap.PowerScale
	}
	s := &searcher{
		cfg:      cfg,
		profiles: make([]appProfile, len(cfg.Traces)),
		pm:       pm,
		pscale:   pscale,
		bal:      core.Balancer{Beta: cfg.Beta, FMax: cfg.FMax, FMaxes: fmaxes},
		gears:    make([]dvfs.Gear, cfg.NGears),
	}
	nominal := dvfs.GearAt(cfg.FMax)
	opts := dimemas.Options{Beta: cfg.Beta, FMax: cfg.FMax, Ctx: cfg.Ctx}
	for i, tr := range cfg.Traces {
		if err := machine.ValidateFor(tr.NumRanks()); err != nil {
			return nil, stagerr.Wrap(stagerr.Validate, fmt.Errorf("gearopt: trace %d: %w", i, err))
		}
		res, err := cfg.Cache.OriginalMachine(tr, machine, opts)
		if err != nil {
			return nil, fmt.Errorf("gearopt: profiling trace %d: %w", i, err)
		}
		skel, err := cfg.Cache.SkeletonForMachine(tr, machine, opts)
		if err != nil {
			return nil, fmt.Errorf("gearopt: skeleton for trace %d: %w", i, err)
		}
		n := len(res.Compute)
		p := &s.profiles[i]
		p.comp = res.Compute
		p.skel = skel
		p.usage = make([]power.Usage, n)
		p.freqs = make([]float64, n)
		for r := 0; r < n; r++ {
			p.usage[r] = power.Usage{Gear: nominal, ComputeTime: res.Compute[r], CommTime: res.Comm(r), Scale: s.scaleAt(r)}
		}
		e, err := pm.Energy(p.usage)
		if err != nil {
			return nil, err
		}
		p.origEnergy = e
	}
	return s, nil
}

// scaleAt returns rank r's power multiplier (0 — nominal — when the machine
// is homogeneous; power.Usage treats the zero value as ×1).
func (s *searcher) scaleAt(r int) float64 {
	if s.pscale == nil || r >= len(s.pscale) {
		return 0
	}
	return s.pscale[r]
}

// objective scores one candidate gear placement exactly: assign MAX gears
// per application, retime the skeleton with the assignment, and account the
// energy of the retimed execution — the same arithmetic, in the same order,
// as the full analysis pipeline, so the search value IS the final value.
func (s *searcher) objective(freqs []float64) (float64, error) {
	s.evals++
	if s.cfg.Ctx != nil {
		if err := s.cfg.Ctx.Err(); err != nil {
			return 0, err
		}
	}
	for i, f := range freqs {
		s.gears[i] = dvfs.GearAt(f)
	}
	set, err := dvfs.FromGears("candidate", s.gears)
	if err != nil {
		return 0, err
	}
	s.bal.Set = set
	var sum float64
	for pi := range s.profiles {
		p := &s.profiles[pi]
		a, err := s.bal.Assign(core.MAX, p.comp)
		if err != nil {
			return 0, err
		}
		for r := range p.freqs {
			p.freqs[r] = a.Gears[r].Freq
		}
		// Neighboring lattice candidates move one gear, so consecutive
		// assignments differ only on the ranks holding that gear: delta
		// retiming re-times just their event cone, bit-identical to the
		// full pass the FreshReplays escape hatch keeps around.
		res := &p.res
		if s.cfg.FreshReplays {
			if err := p.skel.RetimeInto(&p.res, p.freqs); err != nil {
				return 0, err
			}
		} else {
			r, err := p.skel.RetimeDelta(&p.delta, p.freqs, nil)
			if err != nil {
				return 0, err
			}
			res = r
		}
		for r := range p.usage {
			ct := res.Compute[r]
			p.usage[r] = power.Usage{Gear: a.Gears[r], ComputeTime: ct, CommTime: res.Time - ct, Scale: s.scaleAt(r)}
		}
		e, err := s.pm.Energy(p.usage)
		if err != nil {
			return 0, err
		}
		sum += e / p.origEnergy
	}
	return sum / float64(len(s.profiles)), nil
}

// Optimize runs the search. Errors are stage-tagged (internal/stagerr):
// configuration problems carry the validate stage, everything else crosses
// optimize with the origin stage preserved underneath.
func Optimize(cfg Config) (*Result, error) {
	res, err := optimize(cfg)
	if err != nil {
		return nil, stagerr.Wrap(stagerr.Optimize, err)
	}
	return res, nil
}

func optimize(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, stagerr.Wrap(stagerr.Validate, err)
	}
	s, err := newSearcher(cfg)
	if err != nil {
		return nil, err
	}

	// Start from the uniform placement.
	freqs := make([]float64, cfg.NGears)
	step := (cfg.FMax - dvfs.FMin) / float64(cfg.NGears-1)
	for i := range freqs {
		freqs[i] = dvfs.FMin + float64(i)*step
	}
	freqs[cfg.NGears-1] = cfg.FMax
	best, err := s.objective(freqs)
	if err != nil {
		return nil, err
	}

	rounds := 0
	for ; rounds < cfg.MaxRounds; rounds++ {
		improved := false
		// Move every gear but the pinned top one.
		for i := 0; i < cfg.NGears-1; i++ {
			lo := dvfs.FMin / 2 // gears may sink below the limited range
			if i > 0 {
				lo = freqs[i-1] + cfg.Grid
			}
			hi := freqs[i+1] - cfg.Grid
			bestF := freqs[i]
			for f := lo; f <= hi+1e-9; f += cfg.Grid {
				old := freqs[i]
				freqs[i] = f
				v, err := s.objective(freqs)
				if err != nil {
					return nil, err
				}
				if v < best-1e-9 {
					best = v
					bestF = f
					improved = true
				}
				freqs[i] = old
			}
			freqs[i] = bestF
		}
		if !improved {
			break
		}
	}

	gears := make([]dvfs.Gear, len(freqs))
	for i, f := range freqs {
		gears[i] = dvfs.GearAt(f)
	}
	set, err := dvfs.FromGears(fmt.Sprintf("optimized-%d", cfg.NGears), gears)
	if err != nil {
		return nil, err
	}

	// Final scores with full replays. The optimized set's score is already
	// exact (the objective retimes the real execution), but re-deriving it
	// through the analysis pipeline keeps the two code paths honest — the
	// golden tests assert SearchEnergy == Energy bit-for-bit.
	full, err := fullScore(cfg, set)
	if err != nil {
		return nil, err
	}
	uniform, err := dvfs.Uniform(cfg.NGears)
	if err != nil {
		return nil, err
	}
	uniformScore, err := fullScore(cfg, uniform)
	if err != nil {
		return nil, err
	}

	return &Result{
		Set:           set,
		SearchEnergy:  best,
		Energy:        full,
		UniformEnergy: uniformScore,
		Rounds:        rounds,
		Evaluations:   s.evals,
	}, nil
}

// fullScore averages the normalized energy of the analysis pipeline over
// every trace. The traces are independent pipelines over a shared
// read-only cache, so they are evaluated concurrently; the per-trace values
// are summed in trace order, which keeps the result bit-deterministic, and
// the first error in trace order wins (matching the serial loop).
func fullScore(cfg Config, set *dvfs.Set) (float64, error) {
	norms := make([]float64, len(cfg.Traces))
	errs := make([]error, len(cfg.Traces))
	var wg sync.WaitGroup
	for i, tr := range cfg.Traces {
		wg.Add(1)
		go func(i int, tr *trace.Trace) {
			defer wg.Done()
			res, err := analysis.Run(analysis.Config{
				Trace:     tr,
				Platform:  cfg.Platform,
				Machine:   cfg.Machine,
				Power:     cfg.Power,
				Set:       set,
				Algorithm: core.MAX,
				Beta:      cfg.Beta,
				BetaSet:   cfg.BetaSet,
				FMax:      cfg.FMax,
				Cache:     cfg.Cache,
				Ctx:       cfg.Ctx,
			})
			if err != nil {
				errs[i] = err
				return
			}
			norms[i] = res.Norm.Energy
		}(i, tr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	var sum float64
	for _, v := range norms {
		sum += v
	}
	return sum / float64(len(cfg.Traces)), nil
}
