// Package gearopt searches for the best placement of a fixed number of
// DVFS gears. The paper asks "which is the most appropriate DVFS gear set
// size and how frequencies should be distributed" and compares uniform
// against exponential spacing by hand; this package answers the question
// constructively with a coordinate-descent search over gear frequencies.
//
// The search objective is the average normalized CPU energy of the MAX
// algorithm over a set of application traces. During the search the
// execution time is approximated by the original time (MAX keeps it within
// a couple of percent on single-phase applications), which makes one
// candidate evaluation a pure model computation — no replay. The final
// result is re-scored with full replays.
package gearopt

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/timemodel"
	"repro/internal/trace"
)

// Config parameterizes a gear-placement search.
type Config struct {
	// Traces are the applications to optimize for.
	Traces []*trace.Trace
	// NGears is the gear count of the searched set (≥ 2). The top gear is
	// pinned at FMax (the critical process must not slow down); all others
	// move on the grid.
	NGears int
	// Platform, Power, Beta, FMax as elsewhere; zero values take defaults.
	Platform dimemas.Platform
	Power    power.Config
	Beta     float64
	FMax     float64
	// Grid is the frequency step of the search lattice (default 0.05 GHz).
	Grid float64
	// MaxRounds bounds the coordinate-descent rounds (default 8).
	MaxRounds int
	// Cache optionally memoizes the baseline replays: the profiling pass
	// and the final full-replay scoring replay the same original
	// executions, and callers sweeping several searches over the same
	// traces share them too. Nil means uncached.
	Cache *dimemas.ReplayCache
}

// Result reports an optimized gear set.
type Result struct {
	// Set is the optimized gear set.
	Set *dvfs.Set
	// SearchEnergy is the objective value under the search approximation.
	SearchEnergy float64
	// Energy and UniformEnergy are full-replay average normalized energies
	// of the optimized set and the uniform set of the same size.
	Energy, UniformEnergy float64
	// Rounds and Evaluations count the search effort.
	Rounds, Evaluations int
}

// ErrNoTraces reports an empty application list.
var ErrNoTraces = errors.New("gearopt: need at least one trace")

type appProfile struct {
	comp       []float64 // per-rank computation time at fmax
	origTime   float64
	origEnergy float64
}

// Optimize runs the search.
func Optimize(cfg Config) (*Result, error) {
	if len(cfg.Traces) == 0 {
		return nil, ErrNoTraces
	}
	if cfg.NGears < 2 {
		return nil, fmt.Errorf("gearopt: need at least 2 gears, got %d", cfg.NGears)
	}
	if cfg.Platform == (dimemas.Platform{}) {
		cfg.Platform = dimemas.DefaultPlatform()
	}
	if cfg.Power == (power.Config{}) {
		cfg.Power = power.DefaultConfig()
	}
	if cfg.Beta == 0 {
		cfg.Beta = timemodel.DefaultBeta
	}
	if cfg.FMax == 0 {
		cfg.FMax = dvfs.FMax
	}
	if cfg.Grid == 0 {
		cfg.Grid = 0.05
	}
	if cfg.Grid <= 0 {
		return nil, fmt.Errorf("gearopt: grid step must be positive, got %v", cfg.Grid)
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 8
	}
	pm, err := power.New(cfg.Power)
	if err != nil {
		return nil, err
	}

	// Profile every application once.
	profiles := make([]appProfile, len(cfg.Traces))
	nominal := dvfs.GearAt(cfg.FMax)
	for i, tr := range cfg.Traces {
		res, err := cfg.Cache.Original(tr, cfg.Platform, dimemas.Options{Beta: cfg.Beta, FMax: cfg.FMax})
		if err != nil {
			return nil, fmt.Errorf("gearopt: profiling trace %d: %w", i, err)
		}
		usage := make([]power.Usage, len(res.Compute))
		for r := range usage {
			usage[r] = power.Usage{Gear: nominal, ComputeTime: res.Compute[r], CommTime: res.Comm(r)}
		}
		e, err := pm.Energy(usage)
		if err != nil {
			return nil, err
		}
		profiles[i] = appProfile{comp: res.Compute, origTime: res.Time, origEnergy: e}
	}

	evals := 0
	objective := func(freqs []float64) (float64, error) {
		evals++
		gears := make([]dvfs.Gear, len(freqs))
		for i, f := range freqs {
			gears[i] = dvfs.GearAt(f)
		}
		set, err := dvfs.FromGears("candidate", gears)
		if err != nil {
			return 0, err
		}
		bal := &core.Balancer{Set: set, Beta: cfg.Beta, FMax: cfg.FMax}
		var sum float64
		for _, p := range profiles {
			a, err := bal.Assign(core.MAX, p.comp)
			if err != nil {
				return 0, err
			}
			usage := make([]power.Usage, len(p.comp))
			for r := range usage {
				ct := p.comp[r] * timemodel.Slowdown(cfg.Beta, cfg.FMax, a.Gears[r].Freq)
				usage[r] = power.Usage{Gear: a.Gears[r], ComputeTime: ct, CommTime: math.Max(0, p.origTime-ct)}
			}
			e, err := pm.Energy(usage)
			if err != nil {
				return 0, err
			}
			sum += e / p.origEnergy
		}
		return sum / float64(len(profiles)), nil
	}

	// Start from the uniform placement.
	freqs := make([]float64, cfg.NGears)
	step := (cfg.FMax - dvfs.FMin) / float64(cfg.NGears-1)
	for i := range freqs {
		freqs[i] = dvfs.FMin + float64(i)*step
	}
	freqs[cfg.NGears-1] = cfg.FMax
	best, err := objective(freqs)
	if err != nil {
		return nil, err
	}

	rounds := 0
	for ; rounds < cfg.MaxRounds; rounds++ {
		improved := false
		// Move every gear but the pinned top one.
		for i := 0; i < cfg.NGears-1; i++ {
			lo := dvfs.FMin / 2 // gears may sink below the limited range
			if i > 0 {
				lo = freqs[i-1] + cfg.Grid
			}
			hi := freqs[i+1] - cfg.Grid
			bestF := freqs[i]
			for f := lo; f <= hi+1e-9; f += cfg.Grid {
				old := freqs[i]
				freqs[i] = f
				v, err := objective(freqs)
				if err != nil {
					return nil, err
				}
				if v < best-1e-9 {
					best = v
					bestF = f
					improved = true
				}
				freqs[i] = old
			}
			freqs[i] = bestF
		}
		if !improved {
			break
		}
	}

	gears := make([]dvfs.Gear, len(freqs))
	for i, f := range freqs {
		gears[i] = dvfs.GearAt(f)
	}
	set, err := dvfs.FromGears(fmt.Sprintf("optimized-%d", cfg.NGears), gears)
	if err != nil {
		return nil, err
	}

	// Honest final scores with full replays.
	full, err := fullScore(cfg, set)
	if err != nil {
		return nil, err
	}
	uniform, err := dvfs.Uniform(cfg.NGears)
	if err != nil {
		return nil, err
	}
	uniformScore, err := fullScore(cfg, uniform)
	if err != nil {
		return nil, err
	}

	return &Result{
		Set:           set,
		SearchEnergy:  best,
		Energy:        full,
		UniformEnergy: uniformScore,
		Rounds:        rounds,
		Evaluations:   evals,
	}, nil
}

func fullScore(cfg Config, set *dvfs.Set) (float64, error) {
	var sum float64
	for _, tr := range cfg.Traces {
		res, err := analysis.Run(analysis.Config{
			Trace:     tr,
			Platform:  cfg.Platform,
			Power:     cfg.Power,
			Set:       set,
			Algorithm: core.MAX,
			Beta:      cfg.Beta,
			FMax:      cfg.FMax,
			Cache:     cfg.Cache,
		})
		if err != nil {
			return 0, err
		}
		sum += res.Norm.Energy
	}
	return sum / float64(len(cfg.Traces)), nil
}
