package gearopt

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/trace"
	"repro/internal/workload"
)

func testTraces(t *testing.T) []*trace.Trace {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Iterations = 4
	cfg.SkipPECalibration = true
	var out []*trace.Trace
	for _, name := range []string{"BT-MZ-32", "IS-32", "MG-32"} {
		inst, err := workload.FindInstance(name)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := workload.Generate(inst, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tr)
	}
	return out
}

func TestOptimizeValidation(t *testing.T) {
	if _, err := Optimize(Config{}); err == nil {
		t.Error("no traces should fail")
	}
	trs := testTraces(t)
	if _, err := Optimize(Config{Traces: trs, NGears: 1}); err == nil {
		t.Error("1 gear should fail")
	}
	if _, err := Optimize(Config{Traces: trs, NGears: 4, Grid: -1}); err == nil {
		t.Error("negative grid should fail")
	}
}

func TestOptimizeImprovesOnUniform(t *testing.T) {
	trs := testTraces(t)
	res, err := Optimize(Config{Traces: trs, NGears: 4, Grid: 0.1, MaxRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Structure: n gears, ascending, top pinned at fmax.
	gears := res.Set.Gears()
	if len(gears) != 4 {
		t.Fatalf("%d gears", len(gears))
	}
	for i := 1; i < len(gears); i++ {
		if gears[i].Freq <= gears[i-1].Freq {
			t.Errorf("gears not ascending: %v", gears)
		}
	}
	if math.Abs(gears[3].Freq-dvfs.FMax) > 1e-9 {
		t.Errorf("top gear = %v, want fmax", gears[3])
	}
	// The search starts from uniform, so it can only improve or match the
	// uniform placement under the full scoring too (small tolerance for
	// the search-time approximation).
	if res.Energy > res.UniformEnergy+0.01 {
		t.Errorf("optimized %.4f worse than uniform %.4f", res.Energy, res.UniformEnergy)
	}
	if res.Evaluations <= 0 || res.Rounds < 0 {
		t.Errorf("bookkeeping: %+v", res)
	}
	if res.SearchEnergy <= 0 || res.SearchEnergy > 1 {
		t.Errorf("search energy %v out of range", res.SearchEnergy)
	}
	// The objective retimes the exact replay, so the search score must
	// equal the full-replay score bit-for-bit — the historical
	// approximation gap is gone.
	if res.SearchEnergy != res.Energy {
		t.Errorf("SearchEnergy %v != full-replay Energy %v (approximation gap)", res.SearchEnergy, res.Energy)
	}
}

func TestSearchEnergyEqualsFullReplayWithSharedCache(t *testing.T) {
	trs := testTraces(t)
	cache := dimemas.NewReplayCache()
	res, err := Optimize(Config{Traces: trs, NGears: 4, Grid: 0.1, MaxRounds: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if res.SearchEnergy != res.Energy {
		t.Errorf("cached: SearchEnergy %v != Energy %v", res.SearchEnergy, res.Energy)
	}
	// One baseline and one skeleton per trace.
	if got, want := cache.Len(), 2*len(trs); got != want {
		t.Errorf("cache holds %d entries, want %d (baseline + skeleton per trace)", got, want)
	}
	// The same search without a cache must land on the identical result:
	// retiming is bit-identical whether or not the skeleton is shared.
	uncached, err := Optimize(Config{Traces: trs, NGears: 4, Grid: 0.1, MaxRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if uncached.SearchEnergy != res.SearchEnergy || uncached.Energy != res.Energy {
		t.Errorf("uncached search diverged: %v/%v vs %v/%v",
			uncached.SearchEnergy, uncached.Energy, res.SearchEnergy, res.Energy)
	}
}

func TestFreshReplaysBitIdentical(t *testing.T) {
	// The default search scores candidates with delta retiming; the
	// FreshReplays escape hatch pays a full skeleton pass per candidate.
	// The two must agree bit-for-bit on every number the search reports.
	trs := testTraces(t)
	del, err := Optimize(Config{Traces: trs, NGears: 4, Grid: 0.1, MaxRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Optimize(Config{Traces: trs, NGears: 4, Grid: 0.1, MaxRounds: 2, FreshReplays: true})
	if err != nil {
		t.Fatal(err)
	}
	if del.SearchEnergy != fresh.SearchEnergy || del.Energy != fresh.Energy ||
		del.UniformEnergy != fresh.UniformEnergy || del.Evaluations != fresh.Evaluations ||
		del.Rounds != fresh.Rounds {
		t.Errorf("delta search diverged from FreshReplays:\n delta %+v\n fresh %+v", del, fresh)
	}
	dg, fg := del.Set.Gears(), fresh.Set.Gears()
	for i := range dg {
		if dg[i].Freq != fg[i].Freq {
			t.Errorf("gear %d: delta %v != fresh %v", i, dg[i].Freq, fg[i].Freq)
		}
	}
}

func TestOptimizeHonorsContext(t *testing.T) {
	trs := testTraces(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Optimize(Config{Traces: trs, NGears: 4, Grid: 0.1, Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled search returned %v, want context.Canceled", err)
	}
}

func TestOptimizedGearsSitBelowUniformForImbalancedApps(t *testing.T) {
	// With very imbalanced applications most ranks want low frequencies;
	// the optimizer should pull interior gears downward relative to the
	// uniform grid (toward where the demand is).
	cfg := workload.DefaultConfig()
	cfg.Iterations = 4
	cfg.SkipPECalibration = true
	inst, err := workload.FindInstance("BT-MZ-32")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Generate(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(Config{Traces: []*trace.Trace{tr}, NGears: 4, Grid: 0.1, MaxRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	uniform, _ := dvfs.Uniform(4)
	var optMid, uniMid float64
	for i := 1; i < 3; i++ {
		optMid += res.Set.Gears()[i].Freq
		uniMid += uniform.Gears()[i].Freq
	}
	if optMid >= uniMid {
		t.Errorf("interior gears %.2f did not move below uniform %.2f for an imbalanced app", optMid/2, uniMid/2)
	}
}
