// Package loadgen is a deterministic closed-loop load generator for a
// pwrsimd backend or a pwrsimgw fleet. Each worker is a closed loop —
// issue one request, wait for the response, record the latency, repeat —
// so offered load self-regulates to the system's capacity and the measured
// throughput is the real sustainable rate, not an open-loop backlog.
//
// The workload is reproducible by construction: worker w draws from its own
// PRNG seeded with Seed+w, so the same configuration replays the identical
// per-worker request sequence run after run. Keys (distinct trace
// identities, and therefore distinct backend cache entries) are chosen with
// Zipf popularity, matching the skewed re-analysis patterns that make
// shard-affinity routing worthwhile: a hot head that should live in cache
// and a long cold tail that evicts it when the fleet is too small.
package loadgen

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Endpoint names used in Profile weights and Result counts.
const (
	EndpointAnalyze = "analyze"
	EndpointReplay  = "replay"
	EndpointApps    = "apps"
)

// Profile weights the endpoint mix. A zero weight disables the endpoint;
// all-zero defaults to analyze-only.
type Profile struct {
	Analyze int `json:"analyze"`
	Replay  int `json:"replay"`
	Apps    int `json:"apps"`
}

func (p Profile) total() int { return p.Analyze + p.Replay + p.Apps }

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the target: a pwrsimd backend or a pwrsimgw gateway.
	BaseURL string
	// Workers is the closed-loop concurrency. Default 4.
	Workers int
	// Requests stops the run after this many total requests. Default 100
	// when Duration is also zero.
	Requests int
	// Duration stops the run after this wall-clock budget (whichever of
	// Requests/Duration hits first; zero means unbounded).
	Duration time.Duration
	// Seed makes the run reproducible; worker w uses Seed+w.
	Seed int64
	// Keys is the number of distinct trace identities (backend cache
	// entries) in play. Default 16.
	Keys int
	// ZipfS is the Zipf skew exponent (must be > 1; larger = hotter head).
	// Default 1.5.
	ZipfS float64
	// App is the trace app requested; keys vary the iteration count.
	// Default "IS-32".
	App string
	// BaseIterations is key 0's trace length; key i asks for
	// BaseIterations+i iterations, giving every key a distinct cache
	// identity with near-identical cost. Default 3.
	BaseIterations int
	// Quick skips calibration in generated traces.
	Quick bool
	// Profile is the endpoint mix. Default analyze-only.
	Profile Profile
	// RequestTimeout bounds each request. Default 60s.
	RequestTimeout time.Duration
	// Client overrides the HTTP client (tests); nil builds one sized to
	// Workers keep-alive connections.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Requests <= 0 && c.Duration <= 0 {
		c.Requests = 100
	}
	if c.Keys <= 0 {
		c.Keys = 16
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.5
	}
	if c.App == "" {
		c.App = "IS-32"
	}
	if c.BaseIterations <= 0 {
		c.BaseIterations = 3
	}
	if c.Profile.total() <= 0 {
		c.Profile = Profile{Analyze: 1}
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	return c
}

// Result summarizes one run.
type Result struct {
	Requests   int            `json:"requests"`
	Errors     int            `json:"errors"` // transport failures + non-2xx
	ByStatus   map[int]int    `json:"by_status"`
	ByEndpoint map[string]int `json:"by_endpoint"`
	Elapsed    time.Duration  `json:"elapsed_ns"`
	Throughput float64        `json:"throughput_rps"` // successful requests per second
	P50        time.Duration  `json:"p50_ns"`
	P90        time.Duration  `json:"p90_ns"`
	P99        time.Duration  `json:"p99_ns"`
	Max        time.Duration  `json:"max_ns"`
}

// workerStats is one worker's private tally, merged after the run so the
// hot loop never contends on shared state.
type workerStats struct {
	latencies  []time.Duration
	byStatus   map[int]int
	byEndpoint map[string]int
	errors     int
}

// Run drives the configured load until the request budget, duration budget
// or ctx ends, whichever is first, and returns the merged measurements.
func Run(ctx context.Context, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" {
		return Result{}, errors.New("loadgen: BaseURL is required")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        cfg.Workers,
			MaxIdleConnsPerHost: cfg.Workers,
		}}
	}
	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	var issued atomic.Int64 // global request budget, claimed before each send
	budget := int64(cfg.Requests)
	stats := make([]workerStats, cfg.Workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runWorker(ctx, cfg, client, int64(w), &issued, budget, &stats[w])
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{
		ByStatus:   make(map[int]int),
		ByEndpoint: make(map[string]int),
		Elapsed:    elapsed,
	}
	var all []time.Duration
	for _, s := range stats {
		res.Errors += s.errors
		for code, n := range s.byStatus {
			res.ByStatus[code] += n
		}
		for ep, n := range s.byEndpoint {
			res.ByEndpoint[ep] += n
		}
		all = append(all, s.latencies...)
	}
	res.Requests = len(all) + res.Errors
	ok := res.Requests - res.Errors
	if elapsed > 0 {
		res.Throughput = float64(ok) / elapsed.Seconds()
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		res.P50 = percentile(all, 0.50)
		res.P90 = percentile(all, 0.90)
		res.P99 = percentile(all, 0.99)
		res.Max = all[len(all)-1]
	}
	return res, nil
}

// percentile reads the p-quantile from an ascending latency slice.
func percentile(sorted []time.Duration, p float64) time.Duration {
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// runWorker is one closed loop. Every random draw comes from the worker's
// own seeded source, so the (endpoint, key) sequence depends only on
// (Seed, worker index) — never on timing.
func runWorker(ctx context.Context, cfg Config, client *http.Client, w int64, issued *atomic.Int64, budget int64, out *workerStats) {
	rng := rand.New(rand.NewSource(cfg.Seed + w))
	// Zipf over [0, Keys-1]: rank 0 is the hottest key.
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Keys-1))
	out.byStatus = make(map[int]int)
	out.byEndpoint = make(map[string]int)
	for {
		if ctx.Err() != nil {
			return
		}
		if budget > 0 && issued.Add(1) > budget {
			return
		}
		endpoint := pickEndpoint(rng, cfg.Profile)
		key := int(zipf.Uint64())
		dur, status, err := doOne(ctx, cfg, client, endpoint, key)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return // shutdown races are not failures
			}
			out.errors++
		case status < 200 || status > 299:
			out.byStatus[status]++
			out.errors++
		default:
			out.byStatus[status]++
			out.byEndpoint[endpoint]++
			out.latencies = append(out.latencies, dur)
		}
	}
}

// pickEndpoint draws one endpoint from the profile's weights.
func pickEndpoint(rng *rand.Rand, p Profile) string {
	n := rng.Intn(p.total())
	if n < p.Analyze {
		return EndpointAnalyze
	}
	if n < p.Analyze+p.Replay {
		return EndpointReplay
	}
	return EndpointApps
}

// doOne issues a single request for (endpoint, key) and times it.
func doOne(ctx context.Context, cfg Config, client *http.Client, endpoint string, key int) (time.Duration, int, error) {
	ctx, cancel := context.WithTimeout(ctx, cfg.RequestTimeout)
	defer cancel()
	var req *http.Request
	var err error
	iters := cfg.BaseIterations + key
	switch endpoint {
	case EndpointApps:
		req, err = http.NewRequestWithContext(ctx, "GET", cfg.BaseURL+"/v1/apps", nil)
	case EndpointReplay:
		body := fmt.Sprintf(`{"trace": {"app": %q, "iterations": %d, "quick": %t}}`, cfg.App, iters, cfg.Quick)
		req, err = http.NewRequestWithContext(ctx, "POST", cfg.BaseURL+"/v1/replay", bytes.NewReader([]byte(body)))
	default: // analyze
		body := fmt.Sprintf(`{"trace": {"app": %q, "iterations": %d, "quick": %t}, "gear_set": {"kind": "uniform"}}`, cfg.App, iters, cfg.Quick)
		req, err = http.NewRequestWithContext(ctx, "POST", cfg.BaseURL+"/v1/analyze", bytes.NewReader([]byte(body)))
	}
	if err != nil {
		return 0, 0, err
	}
	if req.Method == "POST" {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body) // drain for keep-alive reuse
	resp.Body.Close()
	return time.Since(start), resp.StatusCode, nil
}
