package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// recordingServer answers every endpoint instantly and records the request
// stream so tests can assert on the generated workload itself.
type recordingServer struct {
	mu   sync.Mutex
	seen []string // "METHOD /path iterations"
	ts   *httptest.Server
}

func newRecordingServer(t *testing.T) *recordingServer {
	t.Helper()
	rs := &recordingServer{}
	rs.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Trace struct {
				Iterations int `json:"iterations"`
			} `json:"trace"`
		}
		_ = json.NewDecoder(r.Body).Decode(&body)
		rs.mu.Lock()
		rs.seen = append(rs.seen, fmt.Sprintf("%s %s %d", r.Method, r.URL.Path, body.Trace.Iterations))
		rs.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok": true}`)
	}))
	t.Cleanup(rs.ts.Close)
	return rs
}

func (rs *recordingServer) requests() []string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]string(nil), rs.seen...)
}

func TestRunCountsAndThroughput(t *testing.T) {
	rs := newRecordingServer(t)
	res, err := Run(context.Background(), Config{
		BaseURL:  rs.ts.URL,
		Workers:  3,
		Requests: 50,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 50 {
		t.Fatalf("Requests = %d, want 50", res.Requests)
	}
	if res.Errors != 0 {
		t.Fatalf("Errors = %d, want 0", res.Errors)
	}
	if res.ByStatus[200] != 50 {
		t.Fatalf("ByStatus[200] = %d, want 50", res.ByStatus[200])
	}
	if res.ByEndpoint[EndpointAnalyze] != 50 {
		t.Fatalf("default profile should be analyze-only, got %v", res.ByEndpoint)
	}
	if res.Throughput <= 0 {
		t.Fatal("throughput not computed")
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.Max < res.P99 {
		t.Fatalf("latency quantiles inconsistent: p50=%v p99=%v max=%v", res.P50, res.P99, res.Max)
	}
	if got := len(rs.requests()); got != 50 {
		t.Fatalf("server saw %d requests, want 50", got)
	}
}

// The whole point of seeding: one worker, same seed, same server → the
// identical request sequence, twice.
func TestRunDeterministicSequence(t *testing.T) {
	cfg := Config{Workers: 1, Requests: 40, Seed: 7, Keys: 8, ZipfS: 1.3,
		Profile: Profile{Analyze: 3, Replay: 2, Apps: 1}}

	rs1 := newRecordingServer(t)
	cfg.BaseURL = rs1.ts.URL
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	rs2 := newRecordingServer(t)
	cfg.BaseURL = rs2.ts.URL
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	a, b := rs1.requests(), rs2.requests()
	if len(a) != len(b) {
		t.Fatalf("runs issued %d vs %d requests", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs across identically-seeded runs: %q vs %q", i, a[i], b[i])
		}
	}
	// And a different seed produces a different stream.
	rs3 := newRecordingServer(t)
	cfg.BaseURL = rs3.ts.URL
	cfg.Seed = 8
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	c := rs3.requests()
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced the identical request stream")
	}
}

// Zipf popularity: the hottest key (rank 0, BaseIterations) must dominate
// the stream, and the mix must respect the endpoint weights roughly.
func TestRunZipfSkewAndProfileMix(t *testing.T) {
	rs := newRecordingServer(t)
	res, err := Run(context.Background(), Config{
		BaseURL:        rs.ts.URL,
		Workers:        2,
		Requests:       400,
		Seed:           42,
		Keys:           16,
		ZipfS:          1.5,
		BaseIterations: 3,
		Profile:        Profile{Analyze: 1, Replay: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	hot, analyze, replay := 0, 0, 0
	for _, s := range rs.requests() {
		var method, path string
		var iters int
		fmt.Sscanf(s, "%s %s %d", &method, &path, &iters)
		if iters == 3 {
			hot++
		}
		switch path {
		case "/v1/analyze":
			analyze++
		case "/v1/replay":
			replay++
		}
	}
	// Zipf(1.5) over 16 keys gives rank 0 ≈ 45% of draws; fair share would
	// be 25/400. Anything above 4× fair share demonstrates the skew.
	if hot < 100 {
		t.Fatalf("hottest key drew %d/400 requests; zipf(1.5) should concentrate ~45%%", hot)
	}
	if analyze == 0 || replay == 0 {
		t.Fatalf("profile mix ignored: analyze=%d replay=%d", analyze, replay)
	}
	ratio := float64(analyze) / float64(replay)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("1:1 profile produced %d:%d", analyze, replay)
	}
	if res.ByEndpoint[EndpointAnalyze] != analyze || res.ByEndpoint[EndpointReplay] != replay {
		t.Fatalf("result endpoint counts %v disagree with server-side %d/%d", res.ByEndpoint, analyze, replay)
	}
}

func TestRunCountsServerErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	res, err := Run(context.Background(), Config{BaseURL: ts.URL, Workers: 2, Requests: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 10 {
		t.Fatalf("Errors = %d, want 10", res.Errors)
	}
	if res.ByStatus[503] != 10 {
		t.Fatalf("ByStatus[503] = %d, want 10", res.ByStatus[503])
	}
	if res.Throughput != 0 {
		t.Fatalf("throughput %f counted failed requests", res.Throughput)
	}
}

func TestRunDurationBudget(t *testing.T) {
	rs := newRecordingServer(t)
	start := time.Now()
	res, err := Run(context.Background(), Config{
		BaseURL:  rs.ts.URL,
		Workers:  2,
		Duration: 100 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("duration-bounded run took %v", took)
	}
	if res.Requests == 0 {
		t.Fatal("duration-bounded run issued no requests")
	}
}

func TestRunRejectsMissingTarget(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Fatal("Run accepted an empty BaseURL")
	}
}
