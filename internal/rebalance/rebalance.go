// Package rebalance closes the paper's loop online. The offline pipeline
// (internal/analysis) profiles one fixed trace and assigns DVFS gears once;
// real iterative MPI applications drift — per-rank load shifts between
// outer-loop iterations (adaptive meshes, particle migration, input-dependent
// physics) — so a profile-once assignment goes stale and a runtime system
// must decide *when* to re-solve. This package simulates that closed loop:
// an application iterates N times with per-rank load evolving under a
// workload.Drift model, the controller observes each executed iteration's
// per-rank computation times (the same information a real runtime gets from
// its timers), and a pluggable policy decides whether to re-assign gears for
// the next iteration.
//
// Policies:
//
//   - PolicyNever — profile the first iteration, assign once, never adapt:
//     the paper's static MAX/AVG baseline exposed to drift.
//   - PolicyEveryK — re-solve every Period iterations (Period 1 is the
//     "always" extreme), paying the re-assignment overhead each time the
//     gears actually change.
//   - PolicyThreshold — re-solve only when the executed run's compute
//     balance (eq. 4 over the observed per-rank computation times) has
//     degraded more than Threshold below the balance achieved right after
//     the last assignment, for Hysteresis consecutive iterations — drift
//     triggers it, transient jitter does not.
//   - PolicyCapped — the threshold trigger under a fixed cluster power
//     budget: every re-solve delegates to internal/powercap's load-aware
//     redistribution, and gear vectors always satisfy the peak cap (the
//     all-compute peak bound is load-independent, so the budget holds on
//     every iteration regardless of drift).
//   - PolicyPredictive — anticipate instead of react: a per-rank load
//     forecaster (internal/predict) extrapolates the observed loads one
//     iteration ahead, the trigger fires on the *predicted* balance of the
//     next iteration, and the re-solve targets the forecast load vector —
//     so the new assignment lands on the iteration the drift arrives, not
//     Hysteresis iterations after it has bitten. While the forecaster's
//     fallback guard is active (warm-up, or a series the model cannot beat
//     persistence on — a random walk), the policy degrades to exactly the
//     threshold trigger, so it never chases noise the reactive policy
//     would have ignored.
//   - PolicyPredictiveCapped — the predictive trigger under a fixed peak
//     power budget: every forecast-driven re-solve delegates to
//     internal/powercap's redistribution over the *forecast* loads,
//     shifting budget headroom toward the predicted critical rank (watts,
//     not just gears, move ahead of the drift).
//
// Every simulated iteration is exact: the base iteration's timing skeleton
// is recorded once (dimemas.ReplayCache.SkeletonForSlice) and each
// (gear vector, drift factors) combination is replayed with
// Skeleton.RetimeScaled — bit-identical to freshly simulating the drifted
// trace (Config.FreshReplays does exactly that, as a cross-check and a
// benchmark baseline) at a fraction of the cost.
package rebalance

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/powercap"
	"repro/internal/predict"
	"repro/internal/stagerr"
	"repro/internal/timemodel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Policy selects the rebalancing trigger.
type Policy int

const (
	// PolicyNever assigns gears once from the first observed iteration.
	PolicyNever Policy = iota
	// PolicyEveryK re-solves every Period iterations.
	PolicyEveryK
	// PolicyThreshold re-solves when the observed compute balance degrades
	// past Threshold (with Hysteresis) relative to the balance right after
	// the last assignment.
	PolicyThreshold
	// PolicyCapped is PolicyThreshold under a peak cluster power budget,
	// delegating every assignment to internal/powercap.
	PolicyCapped
	// PolicyPredictive re-solves against the forecast load vector when the
	// predicted balance of the next iteration crosses the trigger.
	PolicyPredictive
	// PolicyPredictiveCapped is PolicyPredictive under a peak cluster power
	// budget: forecast-driven power redistribution via internal/powercap.
	PolicyPredictiveCapped

	// policyCount counts the variants; maxPolicy is the last valid one.
	// New policies must be added above policyCount so the parse and
	// validation ranges extend automatically instead of silently
	// truncating (the bug class a hand-written `p <= PolicyCapped` bound
	// reintroduces with every new variant).
	policyCount
	maxPolicy = policyCount - 1
)

func (p Policy) String() string {
	switch p {
	case PolicyNever:
		return "never"
	case PolicyEveryK:
		return "every-k"
	case PolicyThreshold:
		return "threshold"
	case PolicyCapped:
		return "capped"
	case PolicyPredictive:
		return "predictive"
	case PolicyPredictiveCapped:
		return "predictive-capped"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// capped reports whether the policy schedules under a power budget.
func (p Policy) capped() bool { return p == PolicyCapped || p == PolicyPredictiveCapped }

// predictive reports whether the policy triggers on forecast loads.
func (p Policy) predictive() bool { return p == PolicyPredictive || p == PolicyPredictiveCapped }

// PolicyNames lists every valid policy's wire name, in enum order.
func PolicyNames() []string {
	out := make([]string, 0, int(policyCount))
	for p := PolicyNever; p <= maxPolicy; p++ {
		out = append(out, p.String())
	}
	return out
}

// ParsePolicy is the inverse of Policy.String (for wire and CLI use).
func ParsePolicy(s string) (Policy, error) {
	for p := PolicyNever; p <= maxPolicy; p++ {
		if p.String() == s {
			return p, nil
		}
	}
	names := PolicyNames()
	return 0, fmt.Errorf("rebalance: unknown policy %q (want %s or %s)",
		s, strings.Join(names[:len(names)-1], ", "), names[len(names)-1])
}

// Config parameterizes one closed-loop rebalancing run.
type Config struct {
	// Trace is the application trace; its first iteration (up to the first
	// IterMark on every rank) is the structure every online iteration
	// replays, with loads scaled by the drift model.
	Trace *trace.Trace
	// Platform models the interconnect; zero value means DefaultPlatform.
	Platform dimemas.Platform
	// Machine optionally layers topology and per-rank capability on top of
	// Platform (nil means the flat homogeneous machine; a zero Base inherits
	// the normalized Platform). The closed loop then replays on the layered
	// machine, re-solves honor per-rank frequency ceilings, the capped
	// policy schedules with per-rank power scales, and the energy/peak
	// accounting multiplies each rank's draw by Capability.PowerScale.
	Machine *dimemas.Machine
	// Power configures the CPU power model; zero value means the paper's
	// baseline.
	Power power.Config
	// Set is the available DVFS gear set. PolicyCapped requires a discrete
	// set (the power-cap scheduler sheds gears stepwise).
	Set *dvfs.Set
	// Algorithm selects the balancing rule used on each re-solve (MAX or
	// AVG); ignored by PolicyCapped, which schedules under the budget.
	Algorithm core.Algorithm
	// Beta is the memory-boundedness parameter; the zero value selects the
	// paper's default 0.5 unless BetaSet is true (see analysis.Config).
	Beta float64
	// BetaSet marks Beta as explicitly chosen, honoring an explicit 0.
	BetaSet bool
	// FMax is the nominal top frequency (default dvfs.FMax when zero).
	FMax float64
	// Iterations is the number of online iterations to simulate (default
	// 20).
	Iterations int
	// Drift describes how per-rank load evolves between iterations; the
	// zero value keeps loads static.
	Drift workload.Drift
	// Policy selects the rebalancing trigger (default PolicyNever).
	Policy Policy
	// Period is PolicyEveryK's re-solve interval (default 1 — re-solve
	// after every iteration).
	Period int
	// Threshold is the balance-degradation trigger of
	// PolicyThreshold/PolicyCapped (default 0.05): re-solve once the
	// observed compute balance drops more than this below the level
	// established right after the previous assignment.
	Threshold float64
	// Hysteresis is the number of consecutive violating iterations
	// required before PolicyThreshold/PolicyCapped re-solves (default 2),
	// so one noisy iteration does not trigger a rebalance.
	Hysteresis int
	// Predict configures the per-rank load forecaster of the predictive
	// policies (the zero value selects predict.DefaultConfig). Must stay
	// zero for the reactive policies, which never forecast.
	Predict predict.Config
	// Horizon is the number of iterations ahead a predictive re-solve
	// targets (default 3). Balancing the forecast loads Horizon iterations
	// out makes the assignment slightly early on arrival, exact
	// mid-validity, and slightly stale near the end — halving the drift
	// error a land-exact assignment accumulates over its lifetime and
	// stretching the interval until the trigger fires again (fewer
	// re-solves, less overhead). The trigger itself always watches one
	// iteration ahead. Predictive policies only; must stay zero otherwise.
	Horizon int
	// Margin is the guard band left below the balancing target on every
	// re-solve (core.Balancer.Margin): gears are chosen so ranks finish in
	// (1−Margin)·target, absorbing iteration-to-iteration load noise that
	// would otherwise push a freshly stretched rank past the critical path.
	// Ignored by PolicyCapped (the budget, not a target, binds there).
	// Default 0 — the paper's offline assignment.
	Margin float64
	// Cap is PolicyCapped's peak cluster power budget in model units
	// (required, > 0, for that policy; must be zero otherwise).
	Cap float64
	// ReassignOverhead is the wall-clock cost in seconds charged to an
	// iteration whose gear vector changed (runtime coordination plus DVFS
	// transitions). Ranks idle at communication-phase power while it is
	// paid. Default 0.
	ReassignOverhead float64
	// ExactPeaks records per-iteration timelines and reports each
	// iteration's exact cluster power-profile peak. When false (default),
	// the reported peak is the all-ranks-computing upper bound — the
	// load-independent quantity a peak cap constrains — and the loop stays
	// allocation-free.
	ExactPeaks bool
	// FreshReplays scores every iteration with a fresh Simulate call over
	// a newly built drifted trace instead of retiming the shared skeleton.
	// Results are bit-identical either way; the flag exists to measure the
	// skeleton's speedup (BenchmarkRebalanceWRF128) and as a cross-check
	// in tests.
	FreshReplays bool
	// Cache optionally memoizes the base-iteration skeleton (keyed by the
	// parent trace and iteration 0) so policy sweeps and repeated server
	// requests over the same trace record it once. Nil builds one
	// uncached skeleton per run.
	Cache *dimemas.ReplayCache
	// Ctx optionally bounds the run; it is polled every iteration and
	// threaded into the replays, so serving layers can stop paying for
	// requests that already timed out.
	Ctx context.Context
}

// IterationStats is one online iteration's measured outcome.
type IterationStats struct {
	// Time and Energy are the executed iteration's wall-clock time and CPU
	// energy (including the re-assignment overhead when Rebalanced).
	Time, Energy float64
	// PeakPower is the iteration's cluster power peak: the exact profile
	// peak under Config.ExactPeaks, the all-ranks-computing upper bound
	// otherwise.
	PeakPower float64
	// LB is the executed run's compute balance (eq. 4 over the observed
	// per-rank computation times) — the quantity the threshold trigger
	// watches.
	LB float64
	// Rebalanced marks iterations that started with a changed gear vector.
	Rebalanced bool
}

// Result reports one closed-loop run.
type Result struct {
	// App names the application trace.
	App string
	// Policy echoes the trigger that ran.
	Policy Policy
	// Iterations holds the per-iteration series.
	Iterations []IterationStats
	// TotalTime and TotalEnergy sum the series.
	TotalTime, TotalEnergy float64
	// PeakPower is the maximum per-iteration peak across the run.
	PeakPower float64
	// OrigTime and OrigEnergy are the all-ranks-at-FMax execution of the
	// same drifted iterations (no DVFS, no overhead) — the normalization
	// reference.
	OrigTime, OrigEnergy float64
	// Norm holds energy/time/EDP normalized to the original run.
	Norm metrics.Result
	// Reassignments counts re-solves that changed at least one gear;
	// GearSwitches counts the per-rank gear changes across all of them.
	Reassignments, GearSwitches int
	// MeanLB and MinLB summarize the executed-balance series — how close
	// to balanced the controller kept the run, and its worst excursion.
	MeanLB, MinLB float64
	// Forecast reports the predictive policies' forecaster skill
	// (observation count, fallback count, rolling model-vs-naive error);
	// nil for the reactive policies.
	Forecast *predict.Stats
	// FinalGears is the per-rank gear vector after the last iteration.
	FinalGears []dvfs.Gear
}

// Errors.
var (
	// ErrNilTrace reports a missing trace.
	ErrNilTrace = errors.New("rebalance: config needs a trace")
	// ErrNoIterations reports a trace without iteration markers.
	ErrNoIterations = errors.New("rebalance: trace carries no iteration markers")
	// ErrCapWithoutPolicy reports a cap on a policy that cannot honor it.
	ErrCapWithoutPolicy = errors.New("rebalance: cap applies only to the capped policy")
	// ErrCapRequired reports a missing cap for the capped policy.
	ErrCapRequired = errors.New("rebalance: capped policy needs a positive cap")
	// ErrPredictWithoutPolicy reports a forecaster config on a policy that
	// never forecasts.
	ErrPredictWithoutPolicy = errors.New("rebalance: predict config applies only to the predictive policies")
)

func (c *Config) normalize() error {
	if c.Trace == nil {
		return ErrNilTrace
	}
	if c.Set == nil {
		return core.ErrNilSet
	}
	if c.Platform == (dimemas.Platform{}) {
		c.Platform = dimemas.DefaultPlatform()
	}
	if c.Power == (power.Config{}) {
		c.Power = power.DefaultConfig()
	}
	if c.Beta < 0 || c.Beta > 1 || math.IsNaN(c.Beta) {
		return fmt.Errorf("rebalance: beta %v outside [0, 1]", c.Beta)
	}
	if c.Beta == 0 && !c.BetaSet {
		c.Beta = timemodel.DefaultBeta
	}
	if c.FMax == 0 {
		c.FMax = dvfs.FMax
	}
	if c.FMax < 0 {
		return fmt.Errorf("rebalance: negative fmax %v", c.FMax)
	}
	if c.Iterations == 0 {
		c.Iterations = 20
	}
	if c.Iterations < 0 {
		return fmt.Errorf("rebalance: negative iterations %d", c.Iterations)
	}
	if c.Policy < PolicyNever || c.Policy > maxPolicy {
		return fmt.Errorf("rebalance: unknown policy %d", int(c.Policy))
	}
	if c.Period == 0 {
		c.Period = 1
	}
	if c.Period < 0 {
		return fmt.Errorf("rebalance: negative period %d", c.Period)
	}
	if c.Threshold == 0 {
		c.Threshold = 0.05
	}
	if c.Threshold < 0 || c.Threshold >= 1 || math.IsNaN(c.Threshold) {
		return fmt.Errorf("rebalance: threshold %v outside (0, 1)", c.Threshold)
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = 2
	}
	if c.Hysteresis < 0 {
		return fmt.Errorf("rebalance: negative hysteresis %d", c.Hysteresis)
	}
	if c.Policy.capped() {
		if c.Cap <= 0 || math.IsNaN(c.Cap) || math.IsInf(c.Cap, 0) {
			return ErrCapRequired
		}
		if c.Set.Continuous() {
			return fmt.Errorf("rebalance: %s policy needs a discrete gear set, got %s", c.Policy, c.Set.Name())
		}
	} else if c.Cap != 0 {
		return ErrCapWithoutPolicy
	}
	if c.Policy.predictive() {
		if c.Predict == (predict.Config{}) {
			c.Predict = predict.DefaultConfig()
		}
		if c.Horizon == 0 {
			c.Horizon = 3
		}
		if c.Horizon < 0 {
			return fmt.Errorf("rebalance: negative horizon %d", c.Horizon)
		}
	} else {
		if c.Predict != (predict.Config{}) {
			return ErrPredictWithoutPolicy
		}
		if c.Horizon != 0 {
			return fmt.Errorf("rebalance: horizon applies only to the predictive policies, got %d", c.Horizon)
		}
	}
	if c.Margin < 0 || c.Margin >= 1 || math.IsNaN(c.Margin) {
		return fmt.Errorf("rebalance: margin %v outside [0, 1)", c.Margin)
	}
	if c.ReassignOverhead < 0 || math.IsNaN(c.ReassignOverhead) || math.IsInf(c.ReassignOverhead, 0) {
		return fmt.Errorf("rebalance: reassign overhead must be finite and non-negative, got %v", c.ReassignOverhead)
	}
	if err := c.Drift.Validate(); err != nil {
		return err
	}
	return nil
}

// loop carries one run's state.
type loop struct {
	cfg      *Config
	pm       *power.Model
	machine  dimemas.Machine
	base     *trace.Trace // the base iteration (iteration 0 of cfg.Trace)
	skel     *dimemas.Skeleton
	gears    []dvfs.Gear
	freqs    []float64
	sd       []float64 // per rank: slowdown of the current gear
	chat     []float64 // per rank: observed compute de-scaled to FMax
	c0       []float64 // per rank: base-iteration compute at FMax (trace sums)
	fc       *predict.Forecaster
	fcast    []float64 // per rank: forecast load for the next iteration
	fcomp    []float64 // per rank: predicted executed compute (fcast × sd)
	capScale []float64 // per rank: capability stretch baked into replays (nil: nominal)
	pscale   []float64 // per rank: power multipliers (nil: homogeneous)
	usage    []power.Usage
	dExec    dimemas.DeltaState // incremental retiming, executed iteration (non-ExactPeaks)
	dRef     dimemas.DeltaState // incremental retiming, FMax reference
}

// pscaleAt returns rank r's power multiplier for Usage rows (0 — the
// nominal zero value — on homogeneous machines).
func (l *loop) pscaleAt(r int) float64 {
	if l.pscale == nil {
		return 0
	}
	return l.pscale[r]
}

// Run simulates the closed loop and reports the per-iteration series plus
// convergence metrics. Errors are stage-tagged (internal/stagerr):
// configuration problems carry the validate stage, everything else crosses
// rebalance with the origin stage preserved underneath.
func Run(cfg Config) (*Result, error) {
	res, err := run(cfg)
	if err != nil {
		return nil, stagerr.Wrap(stagerr.Rebalance, err)
	}
	return res, nil
}

func run(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, stagerr.Wrap(stagerr.Validate, err)
	}
	if cfg.Trace.Iterations() == 0 {
		return nil, stagerr.Wrap(stagerr.Validate, ErrNoIterations)
	}
	pm, err := power.New(cfg.Power)
	if err != nil {
		return nil, err
	}
	base, err := cfg.Trace.Slice(0, 1)
	if err != nil {
		return nil, err
	}
	n := base.NumRanks()
	machine := dimemas.FlatMachine(cfg.Platform)
	if cfg.Machine != nil {
		machine = *cfg.Machine
		if machine.Base == (dimemas.Platform{}) {
			machine.Base = cfg.Platform
		}
		if err := machine.ValidateFor(n); err != nil {
			return nil, stagerr.Wrap(stagerr.Validate, err)
		}
	}
	opts := dimemas.Options{Beta: cfg.Beta, FMax: cfg.FMax, Ctx: cfg.Ctx}

	l := &loop{
		cfg:      &cfg,
		pm:       pm,
		machine:  machine,
		base:     base,
		freqs:    make([]float64, n),
		sd:       make([]float64, n),
		chat:     make([]float64, n),
		c0:       base.ComputeTimes(),
		capScale: machine.ScaleVector(),
		usage:    make([]power.Usage, n),
	}
	if machine.Cap != nil && machine.Cap.PowerScale != nil {
		l.pscale = make([]float64, n)
		for r := range l.pscale {
			l.pscale[r] = machine.RankPowerScale(r)
		}
	}
	if cfg.Policy.predictive() {
		l.fc, err = predict.New(n, cfg.Predict)
		if err != nil {
			return nil, stagerr.Wrap(stagerr.Validate, err)
		}
		l.fcast = make([]float64, n)
		l.fcomp = make([]float64, n)
	}
	if !cfg.FreshReplays {
		l.skel, err = cfg.Cache.SkeletonForSliceMachine(cfg.Trace, 0, base, machine, opts)
		if err != nil {
			return nil, fmt.Errorf("rebalance: base-iteration skeleton: %w", err)
		}
	}

	factors, err := cfg.Drift.Factors(n, cfg.Iterations)
	if err != nil {
		return nil, err
	}

	// Initial gears: the profiling iteration runs at the nominal top
	// frequency — except under a cap, which must hold from the first
	// iteration: the cold start is the blind governor's uniform downshift.
	nominal := dvfs.GearAt(cfg.FMax)
	nomGears := make([]dvfs.Gear, n)
	l.gears = make([]dvfs.Gear, n)
	for r := range l.gears {
		nomGears[r] = nominal
		l.gears[r] = nominal
	}
	if cfg.Policy.capped() {
		if err := l.cappedColdStart(); err != nil {
			return nil, err
		}
	}
	l.syncGearState()

	res := &Result{
		App:        cfg.Trace.App,
		Policy:     cfg.Policy,
		Iterations: make([]IterationStats, 0, cfg.Iterations),
		MinLB:      math.Inf(1),
	}

	var (
		solved     bool    // first assignment done (after the profiling iteration)
		lastSolve  int     // iteration whose observation fed the last re-solve
		lbRef      = -1.0  // balance right after the last assignment; <0 = unset
		violations int     // consecutive threshold violations
		rebalanced bool    // gears changed before the upcoming iteration
		lbSum      float64 // running MeanLB numerator
		breaksSeen int     // forecaster structural breaks already handled
		refineAt   = -1    // iteration of the pending post-break consolidation re-solve
	)
	for it := 0; it < cfg.Iterations; it++ {
		if cfg.Ctx != nil {
			if err := cfg.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		exec, ref, err := l.replay(factors[it])
		if err != nil {
			return nil, fmt.Errorf("rebalance: iteration %d: %w", it, err)
		}

		// Account the executed iteration and the FMax reference.
		energy, err := l.energyOf(exec, l.gears)
		if err != nil {
			return nil, err
		}
		itTime := exec.Time
		if rebalanced && cfg.ReassignOverhead > 0 {
			// Ranks sit in the runtime (communication-phase power) while
			// the coordination and the gear transitions are paid for.
			itTime += cfg.ReassignOverhead
			for _, g := range l.gears {
				energy += cfg.ReassignOverhead * pm.Power(power.Comm, g)
			}
		}
		peak, err := l.peakOf(exec)
		if err != nil {
			return nil, err
		}
		lb, err := metrics.LoadBalance(exec.Compute)
		if err != nil {
			return nil, fmt.Errorf("rebalance: iteration %d: %w", it, err)
		}
		refEnergy, err := l.energyOf(ref, nomGears)
		if err != nil {
			return nil, err
		}

		res.Iterations = append(res.Iterations, IterationStats{
			Time:       itTime,
			Energy:     energy,
			PeakPower:  peak,
			LB:         lb,
			Rebalanced: rebalanced,
		})
		res.TotalTime += itTime
		res.TotalEnergy += energy
		if peak > res.PeakPower {
			res.PeakPower = peak
		}
		res.OrigTime += ref.Time
		res.OrigEnergy += refEnergy
		lbSum += lb
		if lb < res.MinLB {
			res.MinLB = lb
		}
		rebalanced = false

		// Observe and decide the gears of iteration it+1.
		if it == cfg.Iterations-1 {
			break
		}
		l.observe(exec)
		if l.fc != nil {
			// Feed the forecaster every iteration, whether or not a re-solve
			// triggers, so the model tracks the series continuously.
			if err := l.fc.Observe(l.chat); err != nil {
				return nil, err
			}
			if st := l.fc.Stats(); st.Breaks > breaksSeen {
				// Structural break: the emergency re-solve below will target
				// a single post-break observation. Schedule one consolidation
				// re-solve for when the fit window has refilled with the new
				// regime, to shed that sample's jitter.
				breaksSeen = st.Breaks
				refineAt = it + cfg.Predict.Window
			}
			l.fcast = l.fc.Forecast(l.fcast)
		}
		solve := false
		switch {
		case !solved:
			// Every policy turns its first observation into an assignment.
			solve = true
		case cfg.Policy == PolicyNever:
		case cfg.Policy == PolicyEveryK:
			solve = it-lastSolve >= cfg.Period
		case cfg.Policy.predictive():
			if lbRef < 0 {
				// First iteration executed with the current assignment:
				// its balance is the reference the trigger degrades from.
				lbRef = lb
				break
			}
			// Watch the *predicted* executed balance of the next iteration
			// under the current gears: forecast load × current slowdown.
			// With the fallback guard active the forecast is the last
			// observation, the predicted balance equals the observed one,
			// and the policy degrades to exactly the threshold trigger.
			watch := lb
			for r := range l.fcomp {
				l.fcomp[r] = l.fcast[r] * l.sd[r]
			}
			if plb, err := metrics.LoadBalance(l.fcomp); err == nil {
				watch = plb
			}
			if watch < lbRef-cfg.Threshold {
				violations++
			} else {
				violations = 0
			}
			// A trusted forecast already smooths jitter, and waiting for
			// hysteresis would forfeit the anticipation the forecast buys;
			// only the fallback (reactive) mode keeps the hysteresis debounce.
			need := 1
			if l.fc.FallingBack() {
				need = cfg.Hysteresis
			}
			solve = violations >= need
			if refineAt >= 0 && it >= refineAt && !l.fc.FallingBack() {
				solve = true
				refineAt = -1
			}
		default: // PolicyThreshold, PolicyCapped
			if lbRef < 0 {
				// First iteration executed with the current assignment:
				// its balance is the reference the trigger degrades from.
				lbRef = lb
				break
			}
			if lb < lbRef-cfg.Threshold {
				violations++
			} else {
				violations = 0
			}
			solve = violations >= cfg.Hysteresis
		}
		if !solve {
			continue
		}
		next, err := l.solve()
		if err != nil {
			return nil, fmt.Errorf("rebalance: iteration %d re-solve: %w", it, err)
		}
		solved = true
		lastSolve = it
		violations = 0
		lbRef = -1
		switches := 0
		for r := range next {
			if next[r] != l.gears[r] {
				switches++
			}
		}
		if switches > 0 {
			res.Reassignments++
			res.GearSwitches += switches
			rebalanced = true
			copy(l.gears, next)
			l.syncGearState()
		}
	}

	res.MeanLB = lbSum / float64(len(res.Iterations))
	res.Norm = metrics.NewResult(res.OrigEnergy, res.OrigTime, res.TotalEnergy, res.TotalTime)
	res.FinalGears = append([]dvfs.Gear(nil), l.gears...)
	if l.fc != nil {
		st := l.fc.Stats()
		res.Forecast = &st
	}
	return res, nil
}

// syncGearState refreshes the per-rank frequency and slowdown caches after a
// gear change.
func (l *loop) syncGearState() {
	for r, g := range l.gears {
		l.freqs[r] = g.Freq
		l.sd[r] = timemodel.Slowdown(l.cfg.Beta, l.cfg.FMax, g.Freq)
	}
}

// replay executes one iteration at the current gears and the all-FMax
// reference under the same drift factors — skeleton retimes on the cached
// path, fresh simulations of a rebuilt drifted trace under FreshReplays.
func (l *loop) replay(scale []float64) (exec, ref *dimemas.Result, err error) {
	cfg := l.cfg
	if cfg.FreshReplays {
		drifted := l.base.ScaleCompute(func(r int, _ trace.Record) float64 { return scale[r] })
		opts := dimemas.Options{Beta: cfg.Beta, FMax: cfg.FMax, Freqs: l.freqs, RecordTimeline: cfg.ExactPeaks, Ctx: cfg.Ctx}
		exec, err = dimemas.SimulateMachine(drifted, l.machine, opts)
		if err != nil {
			return nil, nil, err
		}
		opts.Freqs = nil
		opts.RecordTimeline = false
		ref, err = dimemas.SimulateMachine(drifted, l.machine, opts)
		if err != nil {
			return nil, nil, err
		}
		return exec, ref, nil
	}
	if cfg.ExactPeaks {
		exec, err = l.skel.RetimeScaled(l.freqs, scale, true)
		if err != nil {
			return nil, nil, err
		}
	} else {
		// Drift leaves most ranks' factors — and rebalancing most gears —
		// unchanged between consecutive iterations, so delta retiming skips
		// the unaffected cone; bit-identical to the RetimeScaled pass the
		// ExactPeaks branch (which needs timelines) still performs.
		exec, err = l.skel.RetimeDelta(&l.dExec, l.freqs, scale)
		if err != nil {
			return nil, nil, err
		}
	}
	ref, err = l.skel.RetimeDelta(&l.dRef, nil, scale)
	if err != nil {
		return nil, nil, err
	}
	return exec, ref, nil
}

// observe de-scales the executed iteration's per-rank computation times back
// to FMax — what a runtime derives from its timers and the gears it set —
// feeding the next assignment.
func (l *loop) observe(exec *dimemas.Result) {
	for r, c := range exec.Compute {
		l.chat[r] = c / l.sd[r]
	}
}

// solve computes a fresh gear vector from the observed loads — or, for the
// predictive policies, from the forecast loads, so the assignment targets
// where the load is going rather than where it was.
func (l *loop) solve() ([]dvfs.Gear, error) {
	cfg := l.cfg
	loads := l.chat
	if cfg.Policy.predictive() {
		// Target the mid-validity horizon of the new assignment, not the
		// very next iteration (with the guard active this is still the last
		// observation — exactly the reactive target).
		loads = l.fc.ForecastAhead(cfg.Horizon, l.fcast)
	}
	if cfg.Policy.capped() {
		return l.solveCapped(loads)
	}
	var fmaxes []float64
	if l.machine.Cap != nil {
		fmaxes = l.machine.Cap.FMax
	}
	balancer := &core.Balancer{Set: cfg.Set, Beta: cfg.Beta, FMax: cfg.FMax, Margin: cfg.Margin, FMaxes: fmaxes}
	a, err := balancer.Assign(cfg.Algorithm, loads)
	if err != nil {
		return nil, err
	}
	return a.Gears, nil
}

// solveCapped delegates to the power-cap scheduler: the given loads
// (observed, or forecast for the predictive policy) are written onto the
// base iteration's structure and redistributed under the peak budget —
// budget headroom moves toward the (predicted) critical rank. The load
// times carry the machine's capability stretch (it is baked into every
// replay), and the scheduler re-applies that stretch on its own machine
// replay — so the per-rank factor divides it back out, leaving only the
// genuine drift.
func (l *loop) solveCapped(loads []float64) ([]dvfs.Gear, error) {
	cfg := l.cfg
	obs := l.base.ScaleCompute(func(r int, _ trace.Record) float64 {
		if l.c0[r] <= 0 {
			return 1 // idle rank: nothing to scale
		}
		f := loads[r] / l.c0[r]
		if l.capScale != nil {
			f /= l.capScale[r]
		}
		return f
	})
	res, err := powercap.Run(powercap.Config{
		Trace:    obs,
		Platform: cfg.Platform,
		Machine:  cfg.Machine,
		Power:    cfg.Power,
		Set:      cfg.Set,
		Cap:      cfg.Cap,
		Kind:     powercap.CapPeak,
		Beta:     cfg.Beta,
		BetaSet:  true,
		FMax:     cfg.FMax,
		// Under FreshReplays the whole loop — including every re-solve's
		// candidate scoring — runs on fresh Simulate calls; results are
		// bit-identical either way (powercap's own guarantee).
		FreshReplays: cfg.FreshReplays,
		Ctx:          cfg.Ctx,
	})
	if err != nil {
		return nil, err
	}
	return res.Redistributed.Gears, nil
}

// cappedColdStart parks every rank on the highest uniform gear whose
// all-compute peak fits the budget — what a cluster governor without
// application knowledge does before the first observation. On
// heterogeneous machines the level is clamped to each rank's capability
// ceiling and the peak sums scaled per-rank draws.
func (l *loop) cappedColdStart() error {
	cfg := l.cfg
	gears := cfg.Set.Gears()
	n := len(l.gears)
	ceil := make([]int, n)
	for r := range ceil {
		ceil[r] = len(gears) - 1
		if f := l.machine.RankFMax(r, 0); f > 0 {
			gi := len(gears) - 1
			for gi > 0 && gears[gi].Freq > f+1e-12 {
				gi--
			}
			ceil[r] = gi
		}
	}
	scale := func(r int) float64 {
		if l.pscale == nil {
			return 1
		}
		return l.pscale[r]
	}
	for gi := len(gears) - 1; gi >= 0; gi-- {
		var peak float64
		for r := 0; r < n; r++ {
			g := gi
			if ceil[r] < g {
				g = ceil[r]
			}
			peak += scale(r) * l.pm.Power(power.Compute, gears[g])
		}
		if peak <= cfg.Cap {
			for r := range l.gears {
				g := gi
				if ceil[r] < g {
					g = ceil[r]
				}
				l.gears[r] = gears[g]
			}
			return nil
		}
	}
	var floor float64
	for r := 0; r < n; r++ {
		floor += scale(r) * l.pm.Power(power.Compute, gears[0])
	}
	return fmt.Errorf("%w: peak cap %.6g below the all-bottom-gear compute power %.6g (%d ranks at %s)",
		powercap.ErrCapInfeasible, cfg.Cap, floor, n, gears[0])
}

// energyOf accounts the CPU energy of one executed iteration at explicit
// gears, with the same Usage construction the offline pipeline uses.
func (l *loop) energyOf(res *dimemas.Result, gears []dvfs.Gear) (float64, error) {
	for r := range gears {
		l.usage[r] = power.Usage{
			Gear:        gears[r],
			ComputeTime: res.Compute[r],
			CommTime:    res.Comm(r),
			Scale:       l.pscaleAt(r),
		}
	}
	b, err := l.pm.EnergyBreakdown(l.usage)
	if err != nil {
		return 0, err
	}
	return b.Total(), nil
}

// peakOf reports the iteration's cluster power peak: exact from the
// recorded timeline under ExactPeaks, the all-ranks-computing upper bound
// otherwise.
func (l *loop) peakOf(exec *dimemas.Result) (float64, error) {
	if l.cfg.ExactPeaks {
		profile, err := power.BuildProfileScaled(l.pm, exec.Timeline, l.gears, l.pscale, exec.Time)
		if err != nil {
			return 0, err
		}
		return profile.Peak(), nil
	}
	var sum float64
	if l.pscale == nil {
		for _, g := range l.gears {
			sum += l.pm.Power(power.Compute, g)
		}
		return sum, nil
	}
	for r, g := range l.gears {
		sum += l.pscale[r] * l.pm.Power(power.Compute, g)
	}
	return sum, nil
}
