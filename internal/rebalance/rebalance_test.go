package rebalance

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/workload"
)

// testTrace generates a small calibrated instance once per test binary.
var testTraces = map[string]*trace.Trace{}

func genTrace(t testing.TB, name string, iters int) *trace.Trace {
	t.Helper()
	key := fmt.Sprintf("%s/%d", name, iters)
	if tr, ok := testTraces[key]; ok {
		return tr
	}
	inst, err := workload.FindInstance(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig()
	cfg.Iterations = iters
	cfg.SkipPECalibration = true
	tr, err := workload.Generate(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	testTraces[key] = tr
	return tr
}

func sixGears(t testing.TB) *dvfs.Set {
	t.Helper()
	set, err := dvfs.Uniform(6)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestNeverPolicyZeroDriftMatchesAnalysis is the golden degeneration check:
// with static loads and the never-rebalance policy, the closed loop is the
// one-shot offline pipeline run iteration by iteration — the profiling
// iteration must reproduce analysis.Run's original execution bit for bit,
// and every later iteration its DVFS execution, with the identical gear
// assignment.
func TestNeverPolicyZeroDriftMatchesAnalysis(t *testing.T) {
	tr := genTrace(t, "IS-32", 3)
	set := sixGears(t)
	base, err := tr.Slice(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []core.Algorithm{core.MAX, core.AVG} {
		a, err := analysis.Run(analysis.Config{
			Trace:     base,
			Set:       set,
			Algorithm: alg,
			Cache:     dimemas.NewReplayCache(),
		})
		if err != nil {
			t.Fatal(err)
		}
		const iters = 6
		res, err := Run(Config{
			Trace:      tr,
			Set:        set,
			Algorithm:  alg,
			Policy:     PolicyNever,
			Iterations: iters,
			Cache:      dimemas.NewReplayCache(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Iterations) != iters {
			t.Fatalf("%v: %d iterations, want %d", alg, len(res.Iterations), iters)
		}
		if res.Iterations[0].Time != a.Orig.Time || res.Iterations[0].Energy != a.Orig.Energy {
			t.Errorf("%v: profiling iteration (%v, %v) differs from analysis original (%v, %v)",
				alg, res.Iterations[0].Time, res.Iterations[0].Energy, a.Orig.Time, a.Orig.Energy)
		}
		for i := 1; i < iters; i++ {
			if res.Iterations[i].Time != a.New.Time || res.Iterations[i].Energy != a.New.Energy {
				t.Errorf("%v: iteration %d (%v, %v) differs from analysis DVFS run (%v, %v)",
					alg, i, res.Iterations[i].Time, res.Iterations[i].Energy, a.New.Time, a.New.Energy)
			}
		}
		if len(res.FinalGears) != len(a.Assignment.Gears) {
			t.Fatalf("%v: %d final gears, want %d", alg, len(res.FinalGears), len(a.Assignment.Gears))
		}
		for r := range res.FinalGears {
			if res.FinalGears[r] != a.Assignment.Gears[r] {
				t.Errorf("%v: rank %d gear %v differs from analysis assignment %v",
					alg, r, res.FinalGears[r], a.Assignment.Gears[r])
			}
		}
		if res.Reassignments != 1 {
			t.Errorf("%v: %d reassignments, want exactly 1 (the initial assignment)", alg, res.Reassignments)
		}
		for i := 2; i < iters; i++ {
			if res.Iterations[i].Rebalanced {
				t.Errorf("%v: iteration %d rebalanced under the never policy", alg, i)
			}
		}
	}
}

// TestFreshReplaysBitIdentical proves the skeleton-retiming loop exact: the
// same drifting run scored by fresh Simulate calls over rebuilt drifted
// traces produces the identical series, bit for bit.
func TestFreshReplaysBitIdentical(t *testing.T) {
	tr := genTrace(t, "IS-32", 3)
	set := sixGears(t)
	for _, policy := range []Policy{PolicyNever, PolicyEveryK, PolicyThreshold} {
		cfg := Config{
			Trace:            tr,
			Set:              set,
			Policy:           policy,
			Iterations:       10,
			Drift:            workload.Drift{Kind: workload.DriftRamp, Magnitude: 0.4, Jitter: 0.03, Seed: 5},
			ReassignOverhead: 200e-6,
			Cache:            dimemas.NewReplayCache(),
		}
		cached, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		cfg.FreshReplays = true
		cfg.Cache = nil
		fresh, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v fresh: %v", policy, err)
		}
		if len(cached.Iterations) != len(fresh.Iterations) {
			t.Fatalf("%v: series lengths differ: %d vs %d", policy, len(cached.Iterations), len(fresh.Iterations))
		}
		for i := range cached.Iterations {
			if cached.Iterations[i] != fresh.Iterations[i] {
				t.Errorf("%v: iteration %d differs:\n cached: %+v\n fresh:  %+v",
					policy, i, cached.Iterations[i], fresh.Iterations[i])
			}
		}
		if cached.TotalTime != fresh.TotalTime || cached.TotalEnergy != fresh.TotalEnergy {
			t.Errorf("%v: totals differ: (%v, %v) vs (%v, %v)",
				policy, cached.TotalTime, cached.TotalEnergy, fresh.TotalTime, fresh.TotalEnergy)
		}
		if cached.Reassignments != fresh.Reassignments || cached.GearSwitches != fresh.GearSwitches {
			t.Errorf("%v: convergence metrics differ: (%d, %d) vs (%d, %d)",
				policy, cached.Reassignments, cached.GearSwitches, fresh.Reassignments, fresh.GearSwitches)
		}
		for r := range cached.FinalGears {
			if cached.FinalGears[r] != fresh.FinalGears[r] {
				t.Errorf("%v: final gear %d differs: %v vs %v", policy, r, cached.FinalGears[r], fresh.FinalGears[r])
			}
		}
	}
}

// TestDeterministicSeries: the same seeded config produces the identical
// series on every run.
func TestDeterministicSeries(t *testing.T) {
	tr := genTrace(t, "IS-32", 3)
	cfg := Config{
		Trace:      tr,
		Set:        sixGears(t),
		Policy:     PolicyThreshold,
		Iterations: 12,
		Drift:      workload.Drift{Kind: workload.DriftWalk, Magnitude: 0.06, Jitter: 0.02, Seed: 9},
		Cache:      dimemas.NewReplayCache(),
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Iterations {
		if a.Iterations[i] != b.Iterations[i] {
			t.Fatalf("iteration %d differs across identical runs: %+v vs %+v", i, a.Iterations[i], b.Iterations[i])
		}
	}
	if a.TotalTime != b.TotalTime || a.TotalEnergy != b.TotalEnergy ||
		a.Reassignments != b.Reassignments || a.GearSwitches != b.GearSwitches {
		t.Fatalf("summary differs across identical runs: %+v vs %+v", a, b)
	}
}

// TestCappedPolicyHonorsCap: under drift, every iteration's exact profile
// peak stays within the budget — including the cold-start iteration, which
// runs before the first observation.
func TestCappedPolicyHonorsCap(t *testing.T) {
	tr := genTrace(t, "IS-32", 3)
	set := sixGears(t)
	pm, err := power.New(power.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cap := 0.6 * float64(tr.NumRanks()) * pm.Power(power.Compute, dvfs.GearAt(dvfs.FMax))
	res, err := Run(Config{
		Trace:      tr,
		Set:        set,
		Policy:     PolicyCapped,
		Cap:        cap,
		Iterations: 12,
		Drift:      workload.Drift{Kind: workload.DriftRamp, Magnitude: 0.5, Jitter: 0.02, Seed: 4},
		ExactPeaks: true,
		Cache:      dimemas.NewReplayCache(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range res.Iterations {
		if it.PeakPower > cap {
			t.Errorf("iteration %d: peak %v exceeds cap %v", i, it.PeakPower, cap)
		}
	}
	if res.PeakPower > cap {
		t.Errorf("run peak %v exceeds cap %v", res.PeakPower, cap)
	}
	if res.Reassignments == 0 {
		t.Error("capped policy never redistributed the budget")
	}
	// An infeasible cap fails loudly.
	if _, err := Run(Config{
		Trace:  tr,
		Set:    set,
		Policy: PolicyCapped,
		Cap:    1e-6,
		Cache:  dimemas.NewReplayCache(),
	}); err == nil {
		t.Error("infeasible cap accepted")
	}
}

// TestThresholdTriggering: static loads never re-trigger after the initial
// assignment; strong drift does, but less often than the every-iteration
// policy pays.
func TestThresholdTriggering(t *testing.T) {
	tr := genTrace(t, "IS-32", 3)
	set := sixGears(t)
	static, err := Run(Config{
		Trace:      tr,
		Set:        set,
		Policy:     PolicyThreshold,
		Iterations: 10,
		Cache:      dimemas.NewReplayCache(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if static.Reassignments != 1 {
		t.Errorf("static loads: %d reassignments, want 1 (initial only)", static.Reassignments)
	}
	drift := workload.Drift{Kind: workload.DriftRamp, Magnitude: 0.5, Jitter: 0.02, Seed: 6}
	thresh, err := Run(Config{
		Trace:      tr,
		Set:        set,
		Policy:     PolicyThreshold,
		Iterations: 20,
		Drift:      drift,
		Cache:      dimemas.NewReplayCache(),
	})
	if err != nil {
		t.Fatal(err)
	}
	always, err := Run(Config{
		Trace:      tr,
		Set:        set,
		Policy:     PolicyEveryK,
		Iterations: 20,
		Drift:      drift,
		Cache:      dimemas.NewReplayCache(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if thresh.Reassignments < 2 {
		t.Errorf("strong drift triggered only %d reassignments", thresh.Reassignments)
	}
	if thresh.Reassignments >= always.Reassignments {
		t.Errorf("threshold reassigned %d times, not fewer than every-iteration's %d",
			thresh.Reassignments, always.Reassignments)
	}
	if thresh.MinLB <= 0 || thresh.MinLB > thresh.MeanLB || thresh.MeanLB > 1 {
		t.Errorf("implausible balance summary: min %v mean %v", thresh.MinLB, thresh.MeanLB)
	}
}

// TestContextCancellation: a dead context stops the loop with its error.
func TestContextCancellation(t *testing.T) {
	tr := genTrace(t, "IS-32", 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(Config{
		Trace:      tr,
		Set:        sixGears(t),
		Iterations: 50,
		Ctx:        ctx,
		Cache:      dimemas.NewReplayCache(),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
}

func TestConfigValidation(t *testing.T) {
	tr := genTrace(t, "IS-32", 3)
	set := sixGears(t)
	good := func() Config {
		return Config{Trace: tr, Set: set, Iterations: 2}
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"nil trace", func(c *Config) { c.Trace = nil }},
		{"nil set", func(c *Config) { c.Set = nil }},
		{"beta out of range", func(c *Config) { c.Beta = 1.5 }},
		{"NaN beta", func(c *Config) { c.Beta = math.NaN() }},
		{"negative fmax", func(c *Config) { c.FMax = -1 }},
		{"negative iterations", func(c *Config) { c.Iterations = -1 }},
		{"unknown policy", func(c *Config) { c.Policy = Policy(9) }},
		{"negative period", func(c *Config) { c.Period = -2 }},
		{"threshold out of range", func(c *Config) { c.Threshold = 1.5 }},
		{"negative hysteresis", func(c *Config) { c.Hysteresis = -1 }},
		{"cap without capped policy", func(c *Config) { c.Cap = 100 }},
		{"capped without cap", func(c *Config) { c.Policy = PolicyCapped }},
		{"capped with continuous set", func(c *Config) { c.Policy = PolicyCapped; c.Cap = 100; c.Set = dvfs.ContinuousLimited() }},
		{"negative overhead", func(c *Config) { c.ReassignOverhead = -1 }},
		{"margin out of range", func(c *Config) { c.Margin = 1 }},
		{"bad drift", func(c *Config) { c.Drift = workload.Drift{Kind: workload.DriftRamp, Magnitude: 2} }},
	}
	for _, tc := range cases {
		cfg := good()
		tc.mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	// A trace without iteration markers is rejected.
	bare := trace.New("bare", 2)
	bare.Add(0, trace.Compute(0.01))
	bare.Add(1, trace.Compute(0.01))
	if _, err := Run(Config{Trace: bare, Set: set}); !errors.Is(err, ErrNoIterations) {
		t.Errorf("marker-free trace: got %v, want ErrNoIterations", err)
	}
}

// TestParsePolicy round-trips every valid policy through String/ParsePolicy
// using the count-derived bound, so a policy added above policyCount is
// covered by construction — a hand-written `p <= PolicyCapped` loop here
// silently stopped covering new variants once before.
func TestParsePolicy(t *testing.T) {
	seen := map[string]bool{}
	for p := PolicyNever; p <= maxPolicy; p++ {
		s := p.String()
		if strings.HasPrefix(s, "Policy(") {
			t.Fatalf("policy %d has no wire name", int(p))
		}
		if seen[s] {
			t.Fatalf("duplicate wire name %q", s)
		}
		seen[s] = true
		got, err := ParsePolicy(s)
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if names := PolicyNames(); len(names) != int(policyCount) {
		t.Errorf("PolicyNames lists %d names, want %d", len(names), int(policyCount))
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Error("unknown policy name accepted")
	}
	if _, err := ParsePolicy(Policy(policyCount).String()); err == nil {
		t.Error("out-of-range formatted name accepted")
	}
}

// TestSkeletonSharedAcrossRuns: repeated runs over the same parent trace hit
// the memoized base-iteration skeleton instead of rebuilding it.
func TestSkeletonSharedAcrossRuns(t *testing.T) {
	tr := genTrace(t, "IS-32", 3)
	cache := dimemas.NewReplayCache()
	cfg := Config{Trace: tr, Set: sixGears(t), Iterations: 4, Cache: cache}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	misses := cache.Stats().Misses
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses != misses {
		t.Errorf("second run added %d skeleton misses, want 0", st.Misses-misses)
	}
}
