package rebalance

import "testing"

// FuzzParsePolicy asserts the policy parser never panics, accepts exactly
// the wire names PolicyNames advertises, and that every accepted value
// round-trips through String.
func FuzzParsePolicy(f *testing.F) {
	for _, name := range PolicyNames() {
		f.Add(name)
	}
	f.Add("")
	f.Add("THRESHOLD")
	f.Add("Policy(3)")
	f.Add("predictive-")
	f.Fuzz(func(t *testing.T, in string) {
		p, err := ParsePolicy(in)
		if err != nil {
			for _, name := range PolicyNames() {
				if in == name {
					t.Fatalf("ParsePolicy rejected the advertised name %q: %v", in, err)
				}
			}
			return
		}
		if p < 0 || p > maxPolicy {
			t.Fatalf("ParsePolicy(%q) = %d, outside [0, %d]", in, p, maxPolicy)
		}
		if p.String() != in {
			t.Fatalf("round trip broken: ParsePolicy(%q) = %v, String() = %q", in, p, p.String())
		}
	})
}
