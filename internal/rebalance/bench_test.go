package rebalance

import (
	"testing"

	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/trace"
	"repro/internal/workload"
)

// wrf128 generates the paper's largest instance once per benchmark binary.
var wrf128 *trace.Trace

func wrfTrace(b *testing.B) *trace.Trace {
	b.Helper()
	if wrf128 == nil {
		inst, err := workload.FindInstance("WRF-128")
		if err != nil {
			b.Fatal(err)
		}
		cfg := workload.DefaultConfig()
		cfg.Iterations = 5
		cfg.SkipPECalibration = true
		wrf128, err = workload.Generate(inst, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return wrf128
}

func benchConfig(tr *trace.Trace, set *dvfs.Set, fresh bool) Config {
	return Config{
		Trace:        tr,
		Set:          set,
		Policy:       PolicyThreshold,
		Iterations:   30,
		Drift:        workload.Drift{Kind: workload.DriftRamp, Magnitude: 0.4, Jitter: 0.02, Seed: 2},
		Cache:        dimemas.NewReplayCache(),
		FreshReplays: fresh,
	}
}

// BenchmarkRebalanceWRF128 measures the production path: a 30-iteration
// threshold-triggered closed loop over drifting WRF-128 where every
// iteration (the executed run and its FMax reference) is an O(events)
// retiming of the single memoized base-iteration skeleton. Compare with
// BenchmarkRebalanceWRF128Fresh, the identical (bit-for-bit) loop that
// rebuilds the drifted trace and replays it freshly every iteration — the
// ratio is the skeleton's speedup on the online problem.
func BenchmarkRebalanceWRF128(b *testing.B) {
	tr := wrfTrace(b)
	set, err := dvfs.Uniform(6)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the skeleton once, as a long-running service would; the loop
	// then measures the steady state.
	cache := dimemas.NewReplayCache()
	cfg := benchConfig(tr, set, false)
	cfg.Cache = cache
	if _, err := Run(cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictiveRebalanceWRF128 is the predictive-policy counterpart
// of BenchmarkRebalanceWRF128: the same warm-cache closed loop with the
// per-rank forecaster observing every iteration and every re-solve
// targeting the forecast loads. The delta against the threshold benchmark
// is the anticipation layer's steady-state overhead (O(ranks × window) per
// iteration — it must stay a rounding error next to the retiming).
func BenchmarkPredictiveRebalanceWRF128(b *testing.B) {
	tr := wrfTrace(b)
	set, err := dvfs.Uniform(6)
	if err != nil {
		b.Fatal(err)
	}
	cache := dimemas.NewReplayCache()
	cfg := benchConfig(tr, set, false)
	cfg.Policy = PolicyPredictive
	cfg.Cache = cache
	if _, err := Run(cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRebalanceWRF128Fresh is the comparison arm: identical loop,
// identical results, but every iteration pays a drifted-trace rebuild plus
// two full replays.
func BenchmarkRebalanceWRF128Fresh(b *testing.B) {
	tr := wrfTrace(b)
	set, err := dvfs.Uniform(6)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig(tr, set, true)
	cfg.Cache = nil
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
