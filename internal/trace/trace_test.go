package trace

import (
	"errors"
	"math"
	"testing"
)

// pingPong builds a minimal valid 2-rank trace.
func pingPong() *Trace {
	t := New("pingpong", 2)
	t.Add(0, Compute(1.0), Send(1, 1024, 7), Recv(1, 64, 8), IterMark())
	t.Add(1, Compute(0.5), Recv(0, 1024, 7), Send(0, 64, 8), IterMark())
	return t
}

func TestConstructorsAndAccessors(t *testing.T) {
	tr := pingPong()
	if tr.NumRanks() != 2 {
		t.Fatalf("NumRanks = %d", tr.NumRanks())
	}
	if tr.NumRecords() != 8 {
		t.Fatalf("NumRecords = %d", tr.NumRecords())
	}
	ct := tr.ComputeTimes()
	if ct[0] != 1.0 || ct[1] != 0.5 {
		t.Fatalf("ComputeTimes = %v", ct)
	}
	if tr.Iterations() != 1 {
		t.Fatalf("Iterations = %d", tr.Iterations())
	}
}

func TestRecordConstructors(t *testing.T) {
	c := Compute(2)
	if c.Kind != KindCompute || c.Duration != 2 || c.Beta >= 0 {
		t.Errorf("Compute: %+v", c)
	}
	cb := ComputeBeta(2, 0.7)
	if cb.Beta != 0.7 {
		t.Errorf("ComputeBeta: %+v", cb)
	}
	s := Send(3, 100, 1)
	if s.Kind != KindSend || s.Peer != 3 || s.Bytes != 100 || s.Tag != 1 {
		t.Errorf("Send: %+v", s)
	}
	r := Recv(2, 50, 9)
	if r.Kind != KindRecv || r.Peer != 2 {
		t.Errorf("Recv: %+v", r)
	}
	g := Coll(CollAllReduce, 8)
	if g.Kind != KindColl || g.Coll != CollAllReduce || g.Bytes != 8 {
		t.Errorf("Coll: %+v", g)
	}
	if IterMark().Kind != KindIterMark {
		t.Error("IterMark kind")
	}
}

func TestKindAndCollectiveStrings(t *testing.T) {
	kinds := map[Kind]string{
		KindCompute: "compute", KindSend: "send", KindRecv: "recv",
		KindColl: "coll", KindIterMark: "iter",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind %d = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should render")
	}
	for c := CollBarrier; c < collMax; c++ {
		got, err := ParseCollective(c.String())
		if err != nil || got != c {
			t.Errorf("ParseCollective(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseCollective("nonsense"); err == nil {
		t.Error("ParseCollective should reject unknown names")
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := pingPong().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	// Collectives on all ranks, same order.
	tr := New("coll", 3)
	for r := 0; r < 3; r++ {
		tr.Add(r, Compute(1), Coll(CollAllReduce, 8), Coll(CollBarrier, 0))
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("collective trace rejected: %v", err)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	tests := []struct {
		name    string
		build   func() *Trace
		wantErr error
	}{
		{"no ranks", func() *Trace { return New("x", 0) }, ErrNoRanks},
		{"peer out of range", func() *Trace {
			tr := New("x", 2)
			tr.Add(0, Send(5, 10, 0))
			return tr
		}, ErrBadPeer},
		{"self message", func() *Trace {
			tr := New("x", 2)
			tr.Add(0, Send(0, 10, 0))
			return tr
		}, ErrSelfMessage},
		{"negative burst", func() *Trace {
			tr := New("x", 1)
			tr.Add(0, Compute(-1))
			return tr
		}, ErrNegativeBurst},
		{"negative size", func() *Trace {
			tr := New("x", 2)
			tr.Add(0, Send(1, -5, 0))
			return tr
		}, ErrNegativeSize},
		{"unmatched send", func() *Trace {
			tr := New("x", 2)
			tr.Add(0, Send(1, 10, 0))
			return tr
		}, ErrUnmatchedP2P},
		{"unmatched recv", func() *Trace {
			tr := New("x", 2)
			tr.Add(0, Recv(1, 10, 0))
			return tr
		}, ErrUnmatchedP2P},
		{"size mismatch", func() *Trace {
			tr := New("x", 2)
			tr.Add(0, Send(1, 10, 0))
			tr.Add(1, Recv(0, 20, 0))
			return tr
		}, ErrUnmatchedP2P},
		{"collective count mismatch", func() *Trace {
			tr := New("x", 2)
			tr.Add(0, Coll(CollBarrier, 0))
			return tr
		}, ErrCollMismatch},
		{"collective kind mismatch", func() *Trace {
			tr := New("x", 2)
			tr.Add(0, Coll(CollBarrier, 0))
			tr.Add(1, Coll(CollAllReduce, 8))
			return tr
		}, ErrCollMismatch},
		{"collective payload mismatch", func() *Trace {
			tr := New("x", 2)
			tr.Add(0, Coll(CollAllReduce, 8))
			tr.Add(1, Coll(CollAllReduce, 16))
			return tr
		}, ErrCollMismatch},
		{"NaN duration", func() *Trace {
			tr := New("x", 1)
			tr.Add(0, Compute(math.NaN()))
			return tr
		}, ErrNegativeBurst},
		{"infinite duration", func() *Trace {
			tr := New("x", 1)
			tr.Add(0, Compute(math.Inf(1)))
			return tr
		}, ErrNegativeBurst},
		{"NaN beta override", func() *Trace {
			tr := New("x", 1)
			tr.Add(0, ComputeBeta(1, math.NaN()))
			return tr
		}, ErrBadBetaOverride},
		{"infinite beta override", func() *Trace {
			tr := New("x", 1)
			tr.Add(0, ComputeBeta(1, math.Inf(1)))
			return tr
		}, ErrBadBetaOverride},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.build().Validate()
			if err == nil {
				t.Fatal("expected error")
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("got %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestSlice(t *testing.T) {
	tr := New("iters", 2)
	for r := 0; r < 2; r++ {
		for it := 0; it < 5; it++ {
			tr.Add(r, Compute(float64(it+1)), IterMark())
		}
	}
	sub, err := tr.Slice(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	ct := sub.ComputeTimes()
	// Iterations 1 and 2 contribute 2+3 = 5 per rank.
	if ct[0] != 5 || ct[1] != 5 {
		t.Fatalf("sliced compute times = %v", ct)
	}
	if sub.Iterations() != 2 {
		t.Fatalf("sliced iterations = %d", sub.Iterations())
	}
	if _, err := tr.Slice(2, 2); err == nil {
		t.Error("empty range should error")
	}
	if _, err := tr.Slice(-1, 2); err == nil {
		t.Error("negative start should error")
	}
	if _, err := tr.Slice(0, 9); err == nil {
		t.Error("beyond available iterations should error")
	}
}

func TestScaleCompute(t *testing.T) {
	tr := pingPong()
	scaled := tr.ScaleCompute(func(rank int, rec Record) float64 {
		if rank == 1 {
			return 2.0
		}
		return 1.0
	})
	ct := scaled.ComputeTimes()
	if ct[0] != 1.0 || ct[1] != 1.0 {
		t.Fatalf("scaled compute times = %v", ct)
	}
	// Original unchanged.
	orig := tr.ComputeTimes()
	if orig[1] != 0.5 {
		t.Fatal("ScaleCompute mutated the source trace")
	}
	// Communication untouched.
	if scaled.Ranks[0][1] != tr.Ranks[0][1] {
		t.Fatal("ScaleCompute changed a send record")
	}
}

func TestIterationsWithoutMarkers(t *testing.T) {
	tr := New("x", 2)
	tr.Add(0, Compute(1))
	tr.Add(1, Compute(1))
	if tr.Iterations() != 0 {
		t.Fatalf("Iterations = %d, want 0", tr.Iterations())
	}
}

func TestComputeTimesIgnoresNonCompute(t *testing.T) {
	tr := New("x", 1)
	tr.Add(0, Coll(CollBarrier, 0), IterMark())
	ct := tr.ComputeTimes()
	if ct[0] != 0 {
		t.Fatalf("ComputeTimes = %v", ct)
	}
	if math.IsNaN(ct[0]) {
		t.Fatal("NaN compute time")
	}
}
