// Package trace defines the message-passing execution traces that drive the
// simulation pipeline.
//
// The paper captures Paraver traces of real runs, cuts out one period of the
// iterative behaviour, and translates them to Dimemas tracefiles. This
// package is the equivalent substrate: a trace is a per-rank sequence of
// records — computation bursts, point-to-point sends/receives, collective
// operations and iteration markers — together with serialization, validation
// and region-extraction utilities.
package trace

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Kind enumerates trace record types.
type Kind uint8

const (
	// KindCompute is a CPU burst; Duration is its length in seconds when
	// running at the nominal top frequency.
	KindCompute Kind = iota
	// KindSend is a blocking point-to-point send to Peer.
	KindSend
	// KindRecv is a blocking point-to-point receive from Peer.
	KindRecv
	// KindColl is a collective operation over all ranks.
	KindColl
	// KindIterMark separates iterations of the application's outer loop;
	// it consumes no simulated time.
	KindIterMark
)

func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindColl:
		return "coll"
	case KindIterMark:
		return "iter"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Collective enumerates the collective operations the simulator models.
type Collective uint8

const (
	CollBarrier Collective = iota
	CollBcast
	CollReduce
	CollAllReduce
	CollAllGather
	CollAllToAll
	collMax // sentinel for validation
)

func (c Collective) String() string {
	switch c {
	case CollBarrier:
		return "barrier"
	case CollBcast:
		return "bcast"
	case CollReduce:
		return "reduce"
	case CollAllReduce:
		return "allreduce"
	case CollAllGather:
		return "allgather"
	case CollAllToAll:
		return "alltoall"
	default:
		return fmt.Sprintf("Collective(%d)", int(c))
	}
}

// ParseCollective is the inverse of Collective.String.
func ParseCollective(s string) (Collective, error) {
	for c := CollBarrier; c < collMax; c++ {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown collective %q", s)
}

// Record is one event in a rank's timeline. Fields are used depending on
// Kind; unused fields are zero.
type Record struct {
	Kind     Kind
	Duration float64    // KindCompute: seconds at nominal top frequency
	Beta     float64    // KindCompute: memory-boundedness override; <0 ⇒ use the run's global β
	Peer     int        // KindSend/KindRecv: the other rank
	Bytes    int64      // KindSend/KindRecv/KindColl: message or per-rank payload size
	Tag      int        // KindSend/KindRecv: match tag
	Coll     Collective // KindColl
}

// Compute returns a computation record that uses the run's global β.
func Compute(seconds float64) Record {
	return Record{Kind: KindCompute, Duration: seconds, Beta: -1}
}

// ComputeBeta returns a computation record with an explicit β override.
func ComputeBeta(seconds, beta float64) Record {
	return Record{Kind: KindCompute, Duration: seconds, Beta: beta}
}

// Send returns a point-to-point send record.
func Send(peer int, bytes int64, tag int) Record {
	return Record{Kind: KindSend, Peer: peer, Bytes: bytes, Tag: tag}
}

// Recv returns a point-to-point receive record.
func Recv(peer int, bytes int64, tag int) Record {
	return Record{Kind: KindRecv, Peer: peer, Bytes: bytes, Tag: tag}
}

// Coll returns a collective record; bytes is the per-rank payload.
func Coll(c Collective, bytes int64) Record {
	return Record{Kind: KindColl, Coll: c, Bytes: bytes}
}

// IterMark returns an iteration boundary marker.
func IterMark() Record { return Record{Kind: KindIterMark} }

// Trace is a complete message-passing execution trace.
//
// A trace must be treated as immutable once it has been replayed: the
// simulator validates it and derives its channel index on first use and
// caches both on the trace. Appending records via Add invalidates the cache
// (the record count changes), but editing records in place after a replay
// is not detected and yields stale, silently wrong replays — build a new
// trace (or use ScaleCompute/ScaleComputePhased/Slice, which copy) instead.
type Trace struct {
	// App names the traced application instance, e.g. "BT-MZ-32".
	App string
	// Ranks holds one record sequence per MPI rank.
	Ranks [][]Record

	// The replay engine precomputes an index (channel tables, validation)
	// the first time a trace is simulated and reuses it for every later
	// replay of the same records; see ReplayIndex.
	replayMu  sync.Mutex
	replayIdx any
	replayCnt int
}

// New returns an empty trace for nranks ranks.
func New(app string, nranks int) *Trace {
	return &Trace{App: app, Ranks: make([][]Record, nranks)}
}

// NumRanks returns the number of ranks in the trace.
func (t *Trace) NumRanks() int { return len(t.Ranks) }

// Add appends records to one rank's timeline. Appending after a replay is
// allowed (the cached replay index is rebuilt), but in-place edits of
// existing records are not — see the Trace immutability note.
func (t *Trace) Add(rank int, recs ...Record) {
	t.Ranks[rank] = append(t.Ranks[rank], recs...)
}

// ReplayIndex returns the per-trace value built by build on first use,
// caching it for subsequent calls. It exists for the replay engine, which
// derives channel tables and arena sizes from the records once and reuses
// them across every replay of the same trace. The cache is invalidated when
// the total record count changes (records were added after the first
// replay); beyond that the trace must be treated as immutable once
// simulated. Safe for concurrent use; build runs at most once per cached
// generation.
func (t *Trace) ReplayIndex(build func(*Trace) any) any {
	t.replayMu.Lock()
	defer t.replayMu.Unlock()
	if n := t.NumRecords(); t.replayIdx == nil || t.replayCnt != n {
		t.replayIdx = build(t)
		t.replayCnt = n
	}
	return t.replayIdx
}

// NumRecords returns the total record count across all ranks.
func (t *Trace) NumRecords() int {
	n := 0
	for _, rs := range t.Ranks {
		n += len(rs)
	}
	return n
}

// ComputeTimes returns each rank's total computation time at the nominal
// frequency — the input of the load-balancing algorithms and of eq. 4.
func (t *Trace) ComputeTimes() []float64 {
	out := make([]float64, len(t.Ranks))
	for r, recs := range t.Ranks {
		for _, rec := range recs {
			if rec.Kind == KindCompute {
				out[r] += rec.Duration
			}
		}
	}
	return out
}

// Iterations returns the minimum number of iteration markers across ranks
// (0 if any rank carries none).
func (t *Trace) Iterations() int {
	min := -1
	for _, recs := range t.Ranks {
		n := 0
		for _, rec := range recs {
			if rec.Kind == KindIterMark {
				n++
			}
		}
		if min < 0 || n < min {
			min = n
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// Slice returns a new trace containing only iterations [from, to) of every
// rank, where an iteration is the records up to and including its closing
// IterMark. This mirrors the paper's Paraver region extraction (discarding
// initialization). Ranks must carry at least `to` markers.
func (t *Trace) Slice(from, to int) (*Trace, error) {
	if from < 0 || to <= from {
		return nil, fmt.Errorf("trace: invalid iteration range [%d, %d)", from, to)
	}
	out := New(fmt.Sprintf("%s[it%d:%d]", t.App, from, to), len(t.Ranks))
	for r, recs := range t.Ranks {
		iter := 0
		for _, rec := range recs {
			if iter >= from && iter < to {
				out.Ranks[r] = append(out.Ranks[r], rec)
			}
			if rec.Kind == KindIterMark {
				iter++
			}
		}
		if iter < to {
			return nil, fmt.Errorf("trace: rank %d has only %d iterations, need %d", r, iter, to)
		}
	}
	return out, nil
}

// ScaleCompute returns a copy of the trace with every computation duration of
// rank r multiplied by factor(r, record). It mirrors the paper's rewriting of
// Dimemas tracefiles after frequency assignment; communication records are
// untouched because communication does not scale with CPU frequency.
func (t *Trace) ScaleCompute(factor func(rank int, rec Record) float64) *Trace {
	out := New(t.App, len(t.Ranks))
	for r, recs := range t.Ranks {
		out.Ranks[r] = make([]Record, len(recs))
		copy(out.Ranks[r], recs)
		for i, rec := range out.Ranks[r] {
			if rec.Kind == KindCompute {
				rec.Duration *= factor(r, rec)
				out.Ranks[r][i] = rec
			}
		}
	}
	return out
}

// ScaleComputePhased returns a copy of the trace with every computation
// duration multiplied by factor(rank, phase), where phase is the index of
// the compute record within its iteration (reset at every IterMark). It
// supports per-phase DVFS studies: applications like PEPC run several
// computation phases per iteration that need different gears.
func (t *Trace) ScaleComputePhased(factor func(rank, phase int) float64) *Trace {
	out := New(t.App, len(t.Ranks))
	for r, recs := range t.Ranks {
		out.Ranks[r] = make([]Record, len(recs))
		copy(out.Ranks[r], recs)
		phase := 0
		for i, rec := range out.Ranks[r] {
			switch rec.Kind {
			case KindCompute:
				rec.Duration *= factor(r, phase)
				out.Ranks[r][i] = rec
				phase++
			case KindIterMark:
				phase = 0
			}
		}
	}
	return out
}

// PhaseComputeTimes returns per-phase per-rank total computation times,
// where a phase is the position of a compute record within its iteration.
// The result is indexed [phase][rank]. Ranks with fewer compute records in
// some iteration simply contribute nothing to the missing phases.
func (t *Trace) PhaseComputeTimes() [][]float64 {
	var phases [][]float64
	for r, recs := range t.Ranks {
		phase := 0
		for _, rec := range recs {
			switch rec.Kind {
			case KindCompute:
				for len(phases) <= phase {
					phases = append(phases, make([]float64, len(t.Ranks)))
				}
				phases[phase][r] += rec.Duration
				phase++
			case KindIterMark:
				phase = 0
			}
		}
	}
	return phases
}

// Validation errors.
var (
	ErrNoRanks         = errors.New("trace: no ranks")
	ErrBadPeer         = errors.New("trace: peer rank out of range")
	ErrSelfMessage     = errors.New("trace: send/recv to self")
	ErrNegativeBurst   = errors.New("trace: compute duration must be finite and non-negative")
	ErrBadBetaOverride = errors.New("trace: compute beta override must not be NaN or +Inf")
	ErrNegativeSize    = errors.New("trace: negative message size")
	ErrUnmatchedP2P    = errors.New("trace: unmatched point-to-point records")
	ErrCollMismatch    = errors.New("trace: collective sequences differ between ranks")
)

// Validate checks structural well-formedness: peers in range, non-negative
// durations/sizes, every send matched by exactly one receive (same pair of
// ranks, same tag, same byte count, same order) and identical collective
// sequences on every rank (same operation and same per-rank payload — the
// modeled cost of a collective must not depend on which rank happens to
// arrive last). A valid trace is guaranteed to replay without
// deadlock under blocking semantics as long as sends/recvs are causally
// orderable; the simulator additionally detects runtime deadlock.
func (t *Trace) Validate() error {
	if len(t.Ranks) == 0 {
		return ErrNoRanks
	}
	n := len(t.Ranks)
	type p2pKey struct {
		src, dst, tag int
	}
	sends := map[p2pKey][]int64{}
	recvs := map[p2pKey][]int64{}
	var collSeq [][]Record // per rank
	for r, recs := range t.Ranks {
		var cs []Record
		for i, rec := range recs {
			switch rec.Kind {
			case KindCompute:
				if rec.Duration < 0 || math.IsNaN(rec.Duration) || math.IsInf(rec.Duration, 1) {
					return fmt.Errorf("%w: rank %d record %d (%v)", ErrNegativeBurst, r, i, rec.Duration)
				}
				if math.IsNaN(rec.Beta) || math.IsInf(rec.Beta, 1) {
					return fmt.Errorf("%w: rank %d record %d (%v)", ErrBadBetaOverride, r, i, rec.Beta)
				}
			case KindSend, KindRecv:
				if rec.Peer < 0 || rec.Peer >= n {
					return fmt.Errorf("%w: rank %d record %d peer %d", ErrBadPeer, r, i, rec.Peer)
				}
				if rec.Peer == r {
					return fmt.Errorf("%w: rank %d record %d", ErrSelfMessage, r, i)
				}
				if rec.Bytes < 0 {
					return fmt.Errorf("%w: rank %d record %d", ErrNegativeSize, r, i)
				}
				if rec.Kind == KindSend {
					k := p2pKey{r, rec.Peer, rec.Tag}
					sends[k] = append(sends[k], rec.Bytes)
				} else {
					k := p2pKey{rec.Peer, r, rec.Tag}
					recvs[k] = append(recvs[k], rec.Bytes)
				}
			case KindColl:
				if rec.Bytes < 0 {
					return fmt.Errorf("%w: rank %d record %d", ErrNegativeSize, r, i)
				}
				if rec.Coll >= collMax {
					return fmt.Errorf("trace: rank %d record %d: unknown collective %d", r, i, rec.Coll)
				}
				cs = append(cs, Record{Kind: KindColl, Coll: rec.Coll, Bytes: rec.Bytes})
			case KindIterMark:
				// no payload
			default:
				return fmt.Errorf("trace: rank %d record %d: unknown kind %d", r, i, rec.Kind)
			}
		}
		collSeq = append(collSeq, cs)
	}
	// P2P matching: per (src,dst,tag) channel the send and recv sequences
	// must agree element-wise (MPI guarantees in-order matching per channel).
	for k, ss := range sends {
		rs := recvs[k]
		if len(ss) != len(rs) {
			return fmt.Errorf("%w: channel %d→%d tag %d has %d sends but %d recvs",
				ErrUnmatchedP2P, k.src, k.dst, k.tag, len(ss), len(rs))
		}
		for i := range ss {
			if ss[i] != rs[i] {
				return fmt.Errorf("%w: channel %d→%d tag %d message %d: %d bytes sent, %d expected",
					ErrUnmatchedP2P, k.src, k.dst, k.tag, i, ss[i], rs[i])
			}
		}
	}
	for k, rs := range recvs {
		if _, ok := sends[k]; !ok && len(rs) > 0 {
			return fmt.Errorf("%w: channel %d→%d tag %d has %d recvs but no sends",
				ErrUnmatchedP2P, k.src, k.dst, k.tag, len(rs))
		}
	}
	// Collective agreement: all ranks must call the same collectives in the
	// same order with the same parameters.
	for r := 1; r < n; r++ {
		if len(collSeq[r]) != len(collSeq[0]) {
			return fmt.Errorf("%w: rank %d has %d collectives, rank 0 has %d",
				ErrCollMismatch, r, len(collSeq[r]), len(collSeq[0]))
		}
		for i := range collSeq[r] {
			if collSeq[r][i].Coll != collSeq[0][i].Coll {
				return fmt.Errorf("%w: collective %d: rank %d calls %v, rank 0 calls %v",
					ErrCollMismatch, i, r, collSeq[r][i].Coll, collSeq[0][i].Coll)
			}
			if collSeq[r][i].Bytes != collSeq[0][i].Bytes {
				return fmt.Errorf("%w: collective %d: rank %d carries %d bytes, rank 0 carries %d",
					ErrCollMismatch, i, r, collSeq[r][i].Bytes, collSeq[0][i].Bytes)
			}
		}
	}
	return nil
}
