package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	tr := New("BT-MZ 32", 3)
	tr.Add(0, Compute(1.25), ComputeBeta(0.5, 0.7), Send(1, 4096, 3), Coll(CollAllReduce, 8), IterMark())
	tr.Add(1, Recv(0, 4096, 3), Compute(2), Coll(CollAllReduce, 8), IterMark())
	tr.Add(2, Compute(0.001), Coll(CollAllReduce, 8), IterMark())

	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.App != "BT-MZ_32" { // spaces escaped
		t.Errorf("app = %q", back.App)
	}
	if back.NumRanks() != 3 {
		t.Fatalf("ranks = %d", back.NumRanks())
	}
	if !reflect.DeepEqual(back.Ranks, tr.Ranks) {
		t.Fatalf("records differ:\n got %+v\nwant %+v", back.Ranks, tr.Ranks)
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := `#PWRTRACE v1 app=x ranks=2
% a comment
c 0 1.5

c 1 2.5
i 0
i 1
`
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	ct := tr.ComputeTimes()
	if ct[0] != 1.5 || ct[1] != 2.5 {
		t.Fatalf("compute times = %v", ct)
	}
}

func TestReadErrors(t *testing.T) {
	bad := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad header", "hello\n"},
		{"no ranks", "#PWRTRACE v1 app=x\n"},
		{"zero ranks", "#PWRTRACE v1 app=x ranks=0\n"},
		{"bad ranks value", "#PWRTRACE v1 app=x ranks=abc\n"},
		{"rank out of range", "#PWRTRACE v1 app=x ranks=1\nc 5 1.0\n"},
		{"short record", "#PWRTRACE v1 app=x ranks=1\nc\n"},
		{"bad duration", "#PWRTRACE v1 app=x ranks=1\nc 0 xyz\n"},
		{"bad beta", "#PWRTRACE v1 app=x ranks=1\nc 0 1.0 xyz\n"},
		{"compute extra fields", "#PWRTRACE v1 app=x ranks=1\nc 0 1 2 3\n"},
		{"p2p short", "#PWRTRACE v1 app=x ranks=2\ns 0 1 10\n"},
		{"p2p bad peer", "#PWRTRACE v1 app=x ranks=2\ns 0 x 10 0\n"},
		{"p2p bad size", "#PWRTRACE v1 app=x ranks=2\ns 0 1 x 0\n"},
		{"p2p bad tag", "#PWRTRACE v1 app=x ranks=2\ns 0 1 10 x\n"},
		{"coll short", "#PWRTRACE v1 app=x ranks=1\ng 0 barrier\n"},
		{"coll unknown", "#PWRTRACE v1 app=x ranks=1\ng 0 gossip 0\n"},
		{"coll bad size", "#PWRTRACE v1 app=x ranks=1\ng 0 barrier x\n"},
		{"unknown type", "#PWRTRACE v1 app=x ranks=1\nz 0\n"},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tt.in)); err == nil {
				t.Errorf("Read(%q) should fail", tt.in)
			}
		})
	}
}

// Property: any generated trace survives a serialization round trip intact.
func TestRoundTripProperty(t *testing.T) {
	prop := func(seed int64, durs []float64) bool {
		tr := New("prop", 2)
		for i, d := range durs {
			dur := d
			if dur < 0 {
				dur = -dur
			}
			if dur > 1e6 {
				dur = 1e6
			}
			tr.Add(i%2, Compute(dur))
		}
		tr.Add(0, Send(1, 128, 0), Coll(CollBarrier, 0), IterMark())
		tr.Add(1, Recv(0, 128, 0), Coll(CollBarrier, 0), IterMark())
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(back.Ranks, tr.Ranks)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
