package trace

import (
	"bufio"
	"strings"
	"testing"

	"repro/internal/stagerr"
)

// TestReadLineLongerThanScannerDefault is the regression test for the
// latent bufio.Scanner 64 KiB token limit: before Read configured an
// explicit buffer, any line past 64 KiB aborted the whole parse with
// "bufio.Scanner: token too long".
func TestReadLineLongerThanScannerDefault(t *testing.T) {
	long := "% " + strings.Repeat("x", 1<<20)
	in := "#PWRTRACE v1 app=a ranks=1\n" + long + "\nc 0 1.5\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("1 MiB comment line failed to parse: %v", err)
	}
	if got := tr.NumRecords(); got != 1 {
		t.Fatalf("records = %d, want 1", got)
	}
}

// TestReadLineOverMaxLineBytes proves a line past the explicit bound fails
// with a parse-stage error naming the offending line, not the cryptic
// bufio sentinel.
func TestReadLineOverMaxLineBytes(t *testing.T) {
	var sb strings.Builder
	sb.Grow(MaxLineBytes + 64)
	sb.WriteString("#PWRTRACE v1 app=a ranks=1\n% ")
	sb.WriteString(strings.Repeat("x", MaxLineBytes+1))
	_, err := Read(strings.NewReader(sb.String()))
	if err == nil {
		t.Fatal("over-long line parsed without error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "line 2") || !strings.Contains(msg, "exceeds max line length") {
		t.Fatalf("error does not name the offending line: %v", err)
	}
	if st, ok := stagerr.StageOf(err); !ok || st != stagerr.Parse {
		t.Fatalf("stage = %v/%v, want parse", st, ok)
	}
}

// TestScanErrMapsTooLong pins the scanner-failure translation directly.
func TestScanErrMapsTooLong(t *testing.T) {
	err := scanErr(bufio.ErrTooLong, 41)
	if !strings.Contains(err.Error(), "line 42") {
		t.Fatalf("scanErr(ErrTooLong, 41) = %v, want mention of line 42", err)
	}
	if st, ok := stagerr.StageOf(err); !ok || st != stagerr.Parse {
		t.Fatalf("stage = %v/%v, want parse", st, ok)
	}
}

// FuzzRead asserts the parser never panics and every failure is a
// parse-stage error.
func FuzzRead(f *testing.F) {
	f.Add("#PWRTRACE v1 app=a ranks=2\nc 0 1.5\ns 0 1 1024 7\nr 1 0 1024 7\ni 0\ni 1\n")
	f.Add("")
	f.Add("#PWRTRACE v1 app=a ranks=1\nc 0")
	f.Add("#PWRTRACE v1 app=a ranks=0\n")
	f.Add("#PWRTRACE v1 app=a ranks=1\nc 0 nope\n")
	f.Add("#PWRTRACE v1 app=a ranks=1\ng 0 allreduce x\n")
	f.Add("#PWRTRACE v1 app=a ranks=1\nz 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := Read(strings.NewReader(in))
		if err != nil {
			if st, ok := stagerr.StageOf(err); !ok || st != stagerr.Parse {
				t.Fatalf("non-parse-stage parse failure: %v", err)
			}
			return
		}
		if tr.NumRanks() <= 0 {
			t.Fatalf("parsed trace with %d ranks", tr.NumRanks())
		}
	})
}
