package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/faults"
	"repro/internal/stagerr"
)

// Text trace format, one record per line, in the spirit of Dimemas
// tracefiles:
//
//	#PWRTRACE v1 app=<name> ranks=<n>
//	c <rank> <seconds> [beta]     computation burst
//	s <rank> <peer> <bytes> <tag> send
//	r <rank> <peer> <bytes> <tag> recv
//	g <rank> <collective> <bytes> collective
//	i <rank>                      iteration marker
//
// Lines starting with '%' are comments. Records of a rank appear in program
// order; ranks may interleave arbitrarily.

const formatHeader = "#PWRTRACE v1"

// MaxLineBytes bounds one line of trace text. bufio.Scanner's default
// 64 KiB token limit is far too small for wide traces (a single comment or
// a pathological record can exceed it); we raise it explicitly and, when a
// line still exceeds it, report which line instead of surfacing the
// cryptic "bufio.Scanner: token too long".
const MaxLineBytes = 16 << 20

// scanErr converts a scanner failure into a parse-stage error. line is the
// last fully scanned line; the failure is on the next one.
func scanErr(err error, line int) error {
	if errors.Is(err, bufio.ErrTooLong) {
		return stagerr.Errorf(stagerr.Parse, "trace: line %d exceeds max line length (%d bytes)", line+1, MaxLineBytes)
	}
	return stagerr.Wrap(stagerr.Parse, err)
}

// Write serializes the trace in the text format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s app=%s ranks=%d\n", formatHeader, escapeApp(t.App), len(t.Ranks)); err != nil {
		return err
	}
	for r, recs := range t.Ranks {
		for _, rec := range recs {
			var err error
			switch rec.Kind {
			case KindCompute:
				if rec.Beta >= 0 {
					_, err = fmt.Fprintf(bw, "c %d %.9g %.9g\n", r, rec.Duration, rec.Beta)
				} else {
					_, err = fmt.Fprintf(bw, "c %d %.9g\n", r, rec.Duration)
				}
			case KindSend:
				_, err = fmt.Fprintf(bw, "s %d %d %d %d\n", r, rec.Peer, rec.Bytes, rec.Tag)
			case KindRecv:
				_, err = fmt.Fprintf(bw, "r %d %d %d %d\n", r, rec.Peer, rec.Bytes, rec.Tag)
			case KindColl:
				_, err = fmt.Fprintf(bw, "g %d %s %d\n", r, rec.Coll, rec.Bytes)
			case KindIterMark:
				_, err = fmt.Fprintf(bw, "i %d\n", r)
			default:
				return stagerr.Errorf(stagerr.Parse, "trace: cannot serialize record kind %d", rec.Kind)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read parses a trace in the text format. Failures are parse-stage errors
// (internal/stagerr) carrying the offending line number.
func Read(r io.Reader) (*Trace, error) {
	if err := faults.Check(faults.TraceParse); err != nil {
		return nil, stagerr.Wrap(stagerr.Parse, err)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), MaxLineBytes)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, scanErr(err, 0)
		}
		return nil, stagerr.New(stagerr.Parse, "trace: empty input")
	}
	header := sc.Text()
	if !strings.HasPrefix(header, formatHeader) {
		return nil, stagerr.Errorf(stagerr.Parse, "trace: bad header %q", header)
	}
	app, nranks, err := parseHeader(header)
	if err != nil {
		return nil, stagerr.Wrap(stagerr.Parse, err)
	}
	t := New(app, nranks)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		rec, rank, err := parseRecord(fields, nranks)
		if err != nil {
			return nil, stagerr.Errorf(stagerr.Parse, "trace: line %d: %w", line, err)
		}
		t.Ranks[rank] = append(t.Ranks[rank], rec)
	}
	if err := sc.Err(); err != nil {
		return nil, scanErr(err, line)
	}
	return t, nil
}

func escapeApp(app string) string {
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\n' || r == '\t' {
			return '_'
		}
		return r
	}, app)
}

func parseHeader(h string) (app string, nranks int, err error) {
	for _, f := range strings.Fields(h) {
		if v, ok := strings.CutPrefix(f, "app="); ok {
			app = v
		}
		if v, ok := strings.CutPrefix(f, "ranks="); ok {
			nranks, err = strconv.Atoi(v)
			if err != nil {
				return "", 0, fmt.Errorf("trace: bad ranks field %q: %w", v, err)
			}
		}
	}
	if nranks <= 0 {
		return "", 0, fmt.Errorf("trace: header missing positive ranks count: %q", h)
	}
	return app, nranks, nil
}

func parseRecord(fields []string, nranks int) (Record, int, error) {
	if len(fields) < 2 {
		return Record{}, 0, fmt.Errorf("short record %v", fields)
	}
	rank, err := strconv.Atoi(fields[1])
	if err != nil || rank < 0 || rank >= nranks {
		return Record{}, 0, fmt.Errorf("bad rank %q", fields[1])
	}
	switch fields[0] {
	case "c":
		if len(fields) != 3 && len(fields) != 4 {
			return Record{}, 0, fmt.Errorf("compute record needs 3 or 4 fields, got %d", len(fields))
		}
		d, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return Record{}, 0, fmt.Errorf("bad duration %q: %w", fields[2], err)
		}
		beta := -1.0
		if len(fields) == 4 {
			beta, err = strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return Record{}, 0, fmt.Errorf("bad beta %q: %w", fields[3], err)
			}
		}
		return Record{Kind: KindCompute, Duration: d, Beta: beta}, rank, nil
	case "s", "r":
		if len(fields) != 5 {
			return Record{}, 0, fmt.Errorf("p2p record needs 5 fields, got %d", len(fields))
		}
		peer, err := strconv.Atoi(fields[2])
		if err != nil {
			return Record{}, 0, fmt.Errorf("bad peer %q: %w", fields[2], err)
		}
		bytes, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil {
			return Record{}, 0, fmt.Errorf("bad size %q: %w", fields[3], err)
		}
		tag, err := strconv.Atoi(fields[4])
		if err != nil {
			return Record{}, 0, fmt.Errorf("bad tag %q: %w", fields[4], err)
		}
		k := KindSend
		if fields[0] == "r" {
			k = KindRecv
		}
		return Record{Kind: k, Peer: peer, Bytes: bytes, Tag: tag}, rank, nil
	case "g":
		if len(fields) != 4 {
			return Record{}, 0, fmt.Errorf("collective record needs 4 fields, got %d", len(fields))
		}
		coll, err := ParseCollective(fields[2])
		if err != nil {
			return Record{}, 0, err
		}
		bytes, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil {
			return Record{}, 0, fmt.Errorf("bad size %q: %w", fields[3], err)
		}
		return Record{Kind: KindColl, Coll: coll, Bytes: bytes}, rank, nil
	case "i":
		return Record{Kind: KindIterMark}, rank, nil
	default:
		return Record{}, 0, fmt.Errorf("unknown record type %q", fields[0])
	}
}
