package analysis

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/workload"
)

// imbalancedTrace builds a small strongly imbalanced trace by hand: four
// ranks with loads 1.0/0.25/0.25/0.25 synchronized by a barrier.
func imbalancedTrace(iters int) *trace.Trace {
	tr := trace.New("micro", 4)
	loads := []float64{1.0, 0.25, 0.25, 0.25}
	for it := 0; it < iters; it++ {
		for r, w := range loads {
			tr.Add(r, trace.Compute(w))
		}
		for r := 0; r < 4; r++ {
			tr.Add(r, trace.Coll(trace.CollBarrier, 0), trace.IterMark())
		}
	}
	return tr
}

func runMAX(t *testing.T, tr *trace.Trace, set *dvfs.Set) *Result {
	t.Helper()
	res, err := Run(Config{Trace: tr, Set: set, Algorithm: core.MAX})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunValidation(t *testing.T) {
	six, _ := dvfs.Uniform(6)
	if _, err := Run(Config{Set: six}); err == nil {
		t.Error("nil trace should fail")
	}
	if _, err := Run(Config{Trace: imbalancedTrace(1)}); err == nil {
		t.Error("nil set should fail")
	}
	if _, err := Run(Config{Trace: imbalancedTrace(1), Set: six, Beta: -1}); err == nil {
		t.Error("negative beta should fail")
	}
	if _, err := Run(Config{Trace: imbalancedTrace(1), Set: six, FMax: -1}); err == nil {
		t.Error("negative fmax should fail")
	}
	if _, err := Run(Config{Trace: imbalancedTrace(1), Set: six, Power: power.Config{ActivityRatio: 0.1}}); err == nil {
		t.Error("bad power config should fail")
	}
}

func TestMAXSavesEnergyOnImbalance(t *testing.T) {
	res := runMAX(t, imbalancedTrace(3), dvfs.ContinuousUnlimited())
	if res.Norm.Energy >= 1 {
		t.Errorf("normalized energy = %v, want < 1", res.Norm.Energy)
	}
	// LB of 1.0/0.25×3 loads: mean/max = 0.4375.
	if math.Abs(res.LB-0.4375) > 1e-9 {
		t.Errorf("LB = %v, want 0.4375", res.LB)
	}
	// The most loaded rank keeps fmax; others drop.
	if math.Abs(res.Assignment.Gears[0].Freq-dvfs.FMax) > 1e-9 {
		t.Errorf("rank 0 gear = %v", res.Assignment.Gears[0])
	}
	for r := 1; r < 4; r++ {
		if res.Assignment.Gears[r].Freq >= dvfs.FMax {
			t.Errorf("rank %d gear = %v, want below fmax", r, res.Assignment.Gears[r])
		}
	}
	// Execution time barely changes (communication-free critical path).
	if res.Norm.Time > 1.02 {
		t.Errorf("normalized time = %v, want <= 1.02", res.Norm.Time)
	}
}

func TestBalancedTraceSavesNothing(t *testing.T) {
	tr := trace.New("balanced", 4)
	for it := 0; it < 3; it++ {
		for r := 0; r < 4; r++ {
			tr.Add(r, trace.Compute(1), trace.Coll(trace.CollBarrier, 0), trace.IterMark())
		}
	}
	six, _ := dvfs.Uniform(6)
	res := runMAX(t, tr, six)
	if math.Abs(res.Norm.Energy-1) > 1e-9 {
		t.Errorf("perfectly balanced app: normalized energy = %v, want 1", res.Norm.Energy)
	}
	if math.Abs(res.LB-1) > 1e-9 {
		t.Errorf("LB = %v", res.LB)
	}
}

func TestUnlimitedBeatsLimitedOnExtremeImbalance(t *testing.T) {
	// Loads need frequencies below 0.8 GHz: the unlimited continuous set
	// should save more energy than the limited one (paper §5.3.1 for BT-MZ
	// and IS).
	tr := imbalancedTrace(3)
	unl := runMAX(t, tr, dvfs.ContinuousUnlimited())
	lim := runMAX(t, tr, dvfs.ContinuousLimited())
	if unl.Norm.Energy >= lim.Norm.Energy {
		t.Errorf("unlimited %v should beat limited %v", unl.Norm.Energy, lim.Norm.Energy)
	}
}

func TestMoreGearsNeverHurt(t *testing.T) {
	tr := imbalancedTrace(3)
	prev := math.Inf(1)
	for _, n := range []int{2, 3, 4, 6, 8, 10, 15} {
		set, err := dvfs.Uniform(n)
		if err != nil {
			t.Fatal(err)
		}
		res := runMAX(t, tr, set)
		if res.Norm.Energy > prev+1e-9 {
			t.Errorf("uniform-%d energy %v worse than smaller set %v", n, res.Norm.Energy, prev)
		}
		prev = res.Norm.Energy
	}
}

func TestAVGReducesTimeVsMAX(t *testing.T) {
	// Single-phase imbalanced app: AVG over-clocks the critical rank, so
	// the execution gets faster than both the original and the MAX run.
	tr := imbalancedTrace(3)
	ocSet, err := dvfs.ContinuousLimited().ScaleMax(1.20)
	if err != nil {
		t.Fatal(err)
	}
	maxRes, avgRes, err := Compare(Config{Trace: tr}, dvfs.ContinuousLimited(), ocSet)
	if err != nil {
		t.Fatal(err)
	}
	if avgRes.Norm.Time >= maxRes.Norm.Time {
		t.Errorf("AVG time %v should beat MAX time %v", avgRes.Norm.Time, maxRes.Norm.Time)
	}
	if avgRes.Norm.Time >= 1 {
		t.Errorf("AVG normalized time = %v, want < 1", avgRes.Norm.Time)
	}
	if avgRes.Assignment.Overclocked == 0 {
		t.Error("AVG should overclock the critical rank")
	}
	if maxRes.Assignment.Overclocked != 0 {
		t.Error("MAX must not overclock")
	}
	// MAX saves at least as much energy as AVG (paper Figure 10).
	if maxRes.Norm.Energy > avgRes.Norm.Energy+1e-9 {
		t.Errorf("MAX energy %v should be <= AVG energy %v", maxRes.Norm.Energy, avgRes.Norm.Energy)
	}
}

func TestEnergyBreakdownConsistent(t *testing.T) {
	res := runMAX(t, imbalancedTrace(2), dvfs.ContinuousUnlimited())
	for _, rs := range []RunStats{res.Orig, res.New} {
		if math.Abs(rs.Breakdown.Total()-rs.Energy) > 1e-9 {
			t.Errorf("breakdown %v != energy %v", rs.Breakdown.Total(), rs.Energy)
		}
		if rs.Time <= 0 || rs.Energy <= 0 {
			t.Errorf("non-positive stats: %+v", rs)
		}
	}
	// Normalized values consistent with absolutes.
	wantNorm := res.New.Energy / res.Orig.Energy
	if math.Abs(res.Norm.Energy-wantNorm) > 1e-12 {
		t.Errorf("norm energy %v, want %v", res.Norm.Energy, wantNorm)
	}
}

func TestTimelinesRecordedOnDemand(t *testing.T) {
	tr := imbalancedTrace(2)
	res, err := Run(Config{Trace: tr, Set: dvfs.ContinuousUnlimited(), Algorithm: core.MAX, RecordTimelines: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Orig.Timeline) != 4 || len(res.New.Timeline) != 4 {
		t.Fatal("timelines missing")
	}
	// Default: no timelines.
	res2 := runMAX(t, tr, dvfs.ContinuousUnlimited())
	if res2.Orig.Timeline != nil {
		t.Error("timeline recorded without request")
	}
}

// Integration: a real generated workload end to end, checking the paper's
// headline claim that high imbalance yields large savings.
func TestBTMZEndToEnd(t *testing.T) {
	inst, err := workload.FindInstance("BT-MZ-32")
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig()
	cfg.Iterations = 5
	cfg.SkipPECalibration = true
	tr, err := workload.Generate(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := runMAX(t, tr, dvfs.ContinuousUnlimited())
	if math.Abs(res.LB-0.3521) > 0.01 {
		t.Errorf("LB = %v, want ≈0.3521", res.LB)
	}
	// BT-MZ saves on the order of 60% CPU energy in the paper.
	if res.Norm.Energy > 0.55 || res.Norm.Energy < 0.25 {
		t.Errorf("BT-MZ normalized energy = %v, want roughly 0.4±0.15", res.Norm.Energy)
	}
	if res.Norm.Time > 1.05 {
		t.Errorf("BT-MZ normalized time = %v, want ≈1", res.Norm.Time)
	}
}

// TestExplicitBetaZeroHonored is the regression test for the zero-vs-default
// ambiguity: BetaSet must let an explicit β = 0 (fully memory-bound) reach
// the simulator unrewritten instead of being silently replaced by 0.5.
func TestExplicitBetaZeroHonored(t *testing.T) {
	tr := imbalancedTrace(3)
	set, err := dvfs.Uniform(6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Trace: tr, Set: set, Algorithm: core.MAX, Beta: 0, BetaSet: true})
	if err != nil {
		t.Fatal(err)
	}
	// With β = 0 computation time is frequency-insensitive: the DVFS replay
	// must match the original execution bit for bit even though every
	// non-critical rank was down-geared to the set's bottom.
	if res.New.Time != res.Orig.Time {
		t.Errorf("β=0 DVFS time %v != original %v (β was rewritten on the way to the simulator)", res.New.Time, res.Orig.Time)
	}
	for r := 0; r < 4; r++ {
		if res.Assignment.Gears[r].Freq != dvfs.FMin {
			t.Errorf("rank %d gear = %v, want parked at the bottom under β=0", r, res.Assignment.Gears[r])
		}
	}
	if res.New.Energy >= res.Orig.Energy {
		t.Errorf("β=0 down-gearing should still save energy: new %v vs orig %v", res.New.Energy, res.Orig.Energy)
	}

	// The bare zero value keeps its ergonomic meaning: default 0.5, under
	// which the critical rank must keep the top gear (β = 0 parks it at the
	// bottom because computation no longer depends on frequency).
	def, err := Run(Config{Trace: tr, Set: set, Algorithm: core.MAX})
	if err != nil {
		t.Fatal(err)
	}
	if def.Assignment.Gears[0].Freq != dvfs.FMax {
		t.Errorf("default-β critical rank gear = %v, want FMax", def.Assignment.Gears[0])
	}
	if def.New.Energy <= res.New.Energy {
		t.Errorf("β=0 run should save more energy than the default-β run: %v vs %v", res.New.Energy, def.New.Energy)
	}

	// Out-of-range explicit betas still fail.
	if _, err := Run(Config{Trace: tr, Set: set, Beta: 1.5, BetaSet: true}); err == nil {
		t.Error("beta > 1 should fail")
	}
}

func TestDefaultsApplied(t *testing.T) {
	tr := imbalancedTrace(1)
	res, err := Run(Config{Trace: tr, Set: dvfs.ContinuousUnlimited()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.Algorithm != core.MAX {
		t.Error("zero-value algorithm should be MAX")
	}
	// Default platform is non-trivial: comm time should exist.
	if res.Orig.Time <= 1.0 {
		t.Errorf("orig time = %v, want > max compute", res.Orig.Time)
	}
	_ = dimemas.DefaultPlatform()
}
