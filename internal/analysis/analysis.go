// Package analysis is the paper's power analysis module (§4): it glues the
// pipeline together. Given a trace, it measures the original execution,
// assigns one DVFS gear per process according to an algorithm and gear set,
// replays the rescaled execution, and accounts original vs. new CPU energy.
package analysis

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/stagerr"
	"repro/internal/timemodel"
	"repro/internal/trace"
)

// Config parameterizes one analysis run.
type Config struct {
	// Trace is the application trace (iterative region only).
	Trace *trace.Trace
	// Platform models the interconnect; zero value means DefaultPlatform.
	Platform dimemas.Platform
	// Machine optionally layers topology and per-rank capability on top of
	// Platform (nil means the flat homogeneous machine). The pipeline then
	// replays on the layered machine, the balancer honors per-rank frequency
	// ceilings (Capability.FMax), and the energy accounting multiplies each
	// rank's draw by Capability.PowerScale. A Machine with a zero Base
	// inherits the normalized Platform.
	Machine *dimemas.Machine
	// Power configures the CPU power model; zero value means the paper's
	// baseline (ratio 1.5, static 20 %).
	Power power.Config
	// Set is the available DVFS gear set.
	Set *dvfs.Set
	// Algorithm selects MAX or AVG.
	Algorithm core.Algorithm
	// Beta is the memory-boundedness parameter in [0, 1]. The zero value
	// selects the paper's default 0.5 (timemodel.DefaultBeta) unless
	// BetaSet is true.
	Beta float64
	// BetaSet marks Beta as explicitly chosen, making an explicit Beta = 0
	// (a fully memory-bound, frequency-insensitive run — legal in
	// dimemas.Options) reach the simulator unrewritten instead of being
	// treated as "unset" and defaulted to 0.5.
	BetaSet bool
	// FMax is the nominal top frequency (default dvfs.FMax when zero).
	FMax float64
	// RecordTimelines retains per-rank execution segments of both runs for
	// visualization.
	RecordTimelines bool
	// Rounding selects the gear-quantization rule; the zero value is the
	// paper's closest-higher rule.
	Rounding core.Rounding
	// Baseline optionally supplies a precomputed original execution (all
	// ranks at FMax) for this exact (Trace, Platform, Beta, FMax,
	// RecordTimelines) combination. Run trusts it without re-checking; use
	// Cache instead when the match cannot be guaranteed by construction.
	Baseline *dimemas.Result
	// Cache optionally memoizes original executions and timing skeletons
	// across runs: sweeps that evaluate many variants of the same trace
	// replay the baseline once instead of once per variant, and the DVFS
	// replay becomes a skeleton retiming (bit-identical to a fresh
	// simulation, an order of magnitude cheaper). The cached values are
	// shared and must be treated as read-only (Run itself never mutates
	// them).
	Cache *dimemas.ReplayCache
	// Ctx optionally bounds the run: the replay and retiming stages poll
	// it and abort with its error once it is done, so serving layers can
	// stop paying for requests that already timed out.
	Ctx context.Context
}

// RunStats describes one simulated execution's cost.
type RunStats struct {
	Time      float64
	Energy    float64
	Breakdown power.Breakdown
	// Compute is the per-rank computation time (at that run's gears).
	Compute []float64
	// Timeline is per-rank segments when Config.RecordTimelines is set.
	Timeline [][]dimemas.Segment
}

// Result is the outcome of one analysis run.
type Result struct {
	// App names the analyzed trace.
	App string
	// Assignment is the per-rank gear decision.
	Assignment *core.Assignment
	// Orig is the all-ranks-at-fmax execution; New is the DVFS execution.
	Orig, New RunStats
	// Norm holds energy/time/EDP normalized to the original run.
	Norm metrics.Result
	// LB and PE are the original execution's characteristics (Table 3).
	LB, PE float64
}

// ErrNilTrace reports a missing trace.
var ErrNilTrace = errors.New("analysis: config needs a trace")

func (c *Config) normalize() error {
	if c.Trace == nil {
		return ErrNilTrace
	}
	if c.Set == nil {
		return core.ErrNilSet
	}
	return c.normalizeShared()
}

// normalizeShared validates and defaults the fields a batched analysis
// shares across items — everything except the per-item gear set.
func (c *Config) normalizeShared() error {
	if c.Trace == nil {
		return ErrNilTrace
	}
	if c.Platform == (dimemas.Platform{}) {
		c.Platform = dimemas.DefaultPlatform()
	}
	if c.Power == (power.Config{}) {
		c.Power = power.DefaultConfig()
	}
	if c.Beta < 0 || c.Beta > 1 || math.IsNaN(c.Beta) {
		return fmt.Errorf("analysis: beta %v outside [0, 1]", c.Beta)
	}
	if c.Beta == 0 && !c.BetaSet {
		// β = 0 is legal in the time model but means DVFS is free; every
		// study in the paper uses β ≥ 0.3. The bare zero value therefore
		// reads as "unset" for ergonomic configs — callers who really want
		// a fully memory-bound run say so with BetaSet.
		c.Beta = timemodel.DefaultBeta
	}
	if c.FMax == 0 {
		c.FMax = dvfs.FMax
	}
	if c.FMax < 0 {
		return fmt.Errorf("analysis: negative fmax %v", c.FMax)
	}
	return nil
}

// machine resolves the layered machine the pipeline replays on (call after
// normalizeShared): the explicit Machine when configured, inheriting the
// normalized Platform into a zero Base, or the flat homogeneous machine.
func (c *Config) machine() (dimemas.Machine, error) {
	if c.Machine == nil {
		return dimemas.FlatMachine(c.Platform), nil
	}
	m := *c.Machine
	if m.Base == (dimemas.Platform{}) {
		m.Base = c.Platform
	}
	if err := m.ValidateFor(c.Trace.NumRanks()); err != nil {
		return dimemas.Machine{}, err
	}
	return m, nil
}

// capFMaxes returns the machine's per-rank frequency ceilings for the
// balancer, nil when every rank may use the whole gear set.
func capFMaxes(m *dimemas.Machine) []float64 {
	if m.Cap == nil {
		return nil
	}
	return m.Cap.FMax
}

// powerScales returns the machine's per-rank power multipliers for the
// energy accounting, nil on homogeneous machines.
func powerScales(m *dimemas.Machine) []float64 {
	if m.Cap == nil {
		return nil
	}
	return m.Cap.PowerScale
}

// Run executes the full pipeline. Errors are stage-tagged
// (internal/stagerr): configuration problems carry the validate stage,
// everything past validation crosses optimize on its way out, with the
// origin stage (skeleton/retime/cache) preserved underneath.
func Run(cfg Config) (*Result, error) {
	res, err := run(cfg)
	if err != nil {
		return nil, stagerr.Wrap(stagerr.Optimize, err)
	}
	return res, nil
}

func run(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, stagerr.Wrap(stagerr.Validate, err)
	}
	// Warm-cache runs touch no cancellation point inside the replays; bail
	// out here so loops of Runs (batch serving, searches) stay responsive.
	if cfg.Ctx != nil {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, err
		}
	}
	pm, err := power.New(cfg.Power)
	if err != nil {
		return nil, err
	}
	machine, err := cfg.machine()
	if err != nil {
		return nil, stagerr.Wrap(stagerr.Validate, err)
	}

	// Original execution: every rank at the nominal top frequency. A
	// precomputed baseline short-circuits the replay; otherwise the cache
	// (nil-safe: a nil cache simulates directly) memoizes it across runs.
	simOpts := dimemas.Options{Beta: cfg.Beta, FMax: cfg.FMax, RecordTimeline: cfg.RecordTimelines, Ctx: cfg.Ctx}
	orig := cfg.Baseline
	if orig == nil {
		var err error
		orig, err = cfg.Cache.OriginalMachine(cfg.Trace, machine, simOpts)
		if err != nil {
			return nil, fmt.Errorf("analysis: original replay: %w", err)
		}
	}
	lb, err := metrics.LoadBalance(orig.Compute)
	if err != nil {
		return nil, err
	}
	pe, err := metrics.ParallelEfficiency(orig.Compute, orig.Time)
	if err != nil {
		return nil, err
	}

	// Frequency assignment from the original per-process computation times,
	// honoring per-rank frequency ceilings on heterogeneous machines.
	balancer := &core.Balancer{Set: cfg.Set, Beta: cfg.Beta, FMax: cfg.FMax, Rounding: cfg.Rounding, FMaxes: capFMaxes(&machine)}
	assignment, err := balancer.Assign(cfg.Algorithm, orig.Compute)
	if err != nil {
		return nil, err
	}

	// Replay with per-rank frequencies. With a cache this is a retiming of
	// the memoized timing skeleton — bit-identical to a fresh simulation;
	// without one it degrades to a plain Simulate call.
	newOpts := simOpts
	newOpts.Freqs = assignment.Freqs()
	next, err := cfg.Cache.ReplayMachine(cfg.Trace, machine, newOpts)
	if err != nil {
		return nil, fmt.Errorf("analysis: DVFS replay: %w", err)
	}

	// Energy accounting: each CPU is powered for the whole run at its
	// assigned gear; whatever is not computation is communication/wait.
	nominal := dvfs.GearAt(cfg.FMax)
	scales := powerScales(&machine)
	origStats, err := runStats(pm, orig, uniformGears(len(orig.Compute), nominal), scales)
	if err != nil {
		return nil, err
	}
	newStats, err := runStats(pm, next, assignment.Gears, scales)
	if err != nil {
		return nil, err
	}

	return &Result{
		App:        cfg.Trace.App,
		Assignment: assignment,
		Orig:       origStats,
		New:        newStats,
		Norm:       metrics.NewResult(origStats.Energy, origStats.Time, newStats.Energy, newStats.Time),
		LB:         lb,
		PE:         pe,
	}, nil
}

func uniformGears(n int, g dvfs.Gear) []dvfs.Gear {
	out := make([]dvfs.Gear, n)
	for i := range out {
		out[i] = g
	}
	return out
}

func runStats(pm *power.Model, res *dimemas.Result, gears []dvfs.Gear, scales []float64) (RunStats, error) {
	usages := make([]power.Usage, len(res.Compute))
	for r := range usages {
		usages[r] = power.Usage{
			Gear:        gears[r],
			ComputeTime: res.Compute[r],
			CommTime:    res.Comm(r),
		}
		if scales != nil {
			usages[r].Scale = scales[r]
		}
	}
	b, err := pm.EnergyBreakdown(usages)
	if err != nil {
		return RunStats{}, err
	}
	return RunStats{
		Time:      res.Time,
		Energy:    b.Total(),
		Breakdown: b,
		Compute:   res.Compute,
		Timeline:  res.Timeline,
	}, nil
}

// Compare runs both MAX and AVG on the same trace with their respective gear
// sets (the paper's Figure 10 setup) and returns both results.
func Compare(cfg Config, maxSet, avgSet *dvfs.Set) (maxRes, avgRes *Result, err error) {
	cfg.Set = maxSet
	cfg.Algorithm = core.MAX
	maxRes, err = Run(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: MAX: %w", err)
	}
	cfg.Set = avgSet
	cfg.Algorithm = core.AVG
	avgRes, err = Run(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: AVG: %w", err)
	}
	return maxRes, avgRes, nil
}
