package analysis

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/stagerr"
)

// BatchItem is one gear assignment of a batched analysis: the parameters
// that vary per what-if question. Everything else — the trace, the platform,
// the power model, β and FMax — comes from the shared Config.
type BatchItem struct {
	// Set is this item's DVFS gear set (required).
	Set *dvfs.Set
	// Algorithm selects MAX or AVG.
	Algorithm core.Algorithm
	// Rounding selects the gear-quantization rule; the zero value is the
	// paper's closest-higher rule.
	Rounding core.Rounding
}

// RunBatch answers len(items) what-if questions about cfg.Trace in one
// pass: the baseline replay, its balance metrics, and the timing skeleton
// are computed once; per-item gear assignments run against the shared
// baseline; and every DVFS replay happens inside a single
// Skeleton.RetimeBatch walk, which amortizes op decode across candidates.
// Each item's Result is bit-identical to what Run would return for the same
// parameters.
//
// The two return slices are index-aligned with items: exactly one of
// results[i], errs[i] is non-nil. Item-level failures (a nil gear set, an
// assignment error) never fail the batch. The error return is reserved for
// shared-stage failures — invalid shared config, baseline replay, skeleton
// construction — which doom every item anyway. cfg.Set, cfg.Algorithm and
// cfg.Rounding are ignored; cfg.RecordTimelines is rejected (batch replays
// never record timelines).
func RunBatch(cfg Config, items []BatchItem) (results []*Result, errs []error, err error) {
	results, errs, err = runBatch(cfg, items)
	if err != nil {
		return nil, nil, stagerr.Wrap(stagerr.Optimize, err)
	}
	return results, errs, nil
}

func runBatch(cfg Config, items []BatchItem) ([]*Result, []error, error) {
	if err := cfg.normalizeShared(); err != nil {
		return nil, nil, stagerr.Wrap(stagerr.Validate, err)
	}
	if cfg.RecordTimelines {
		return nil, nil, stagerr.New(stagerr.Validate, "analysis: batch runs do not record timelines")
	}
	if cfg.Ctx != nil {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, nil, err
		}
	}
	pm, err := power.New(cfg.Power)
	if err != nil {
		return nil, nil, err
	}
	machine, err := cfg.machine()
	if err != nil {
		return nil, nil, stagerr.Wrap(stagerr.Validate, err)
	}

	// Shared stages, computed once. A nil cache gets a private one: the
	// skeleton must be built regardless, and its retimings are bit-identical
	// to the fresh simulations an uncached Run performs.
	cache := cfg.Cache
	if cache == nil {
		cache = dimemas.NewReplayCache()
	}
	simOpts := dimemas.Options{Beta: cfg.Beta, FMax: cfg.FMax, Ctx: cfg.Ctx}
	orig := cfg.Baseline
	if orig == nil {
		orig, err = cache.OriginalMachine(cfg.Trace, machine, simOpts)
		if err != nil {
			return nil, nil, fmt.Errorf("analysis: original replay: %w", err)
		}
	}
	lb, err := metrics.LoadBalance(orig.Compute)
	if err != nil {
		return nil, nil, err
	}
	pe, err := metrics.ParallelEfficiency(orig.Compute, orig.Time)
	if err != nil {
		return nil, nil, err
	}
	skel, err := cache.SkeletonForMachine(cfg.Trace, machine, simOpts)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: timing skeleton: %w", err)
	}
	nominal := dvfs.GearAt(cfg.FMax)
	scales := powerScales(&machine)
	origStats, err := runStats(pm, orig, uniformGears(len(orig.Compute), nominal), scales)
	if err != nil {
		return nil, nil, err
	}

	// Per-item assignments. Failed items keep their error; the survivors'
	// frequency vectors line up for one batched retiming.
	results := make([]*Result, len(items))
	errs := make([]error, len(items))
	assignments := make([]*core.Assignment, len(items))
	vecs := make([][]float64, 0, len(items))
	live := make([]int, 0, len(items))
	for i, item := range items {
		if item.Set == nil {
			errs[i] = stagerr.Wrap(stagerr.Validate, core.ErrNilSet)
			continue
		}
		balancer := &core.Balancer{Set: item.Set, Beta: cfg.Beta, FMax: cfg.FMax, Rounding: item.Rounding, FMaxes: capFMaxes(&machine)}
		a, err := balancer.Assign(item.Algorithm, orig.Compute)
		if err != nil {
			errs[i] = err
			continue
		}
		assignments[i] = a
		vecs = append(vecs, a.Freqs())
		live = append(live, i)
	}

	if len(vecs) > 0 {
		batch, err := skel.RetimeBatch(vecs)
		if err != nil {
			return nil, nil, fmt.Errorf("analysis: batch replay: %w", err)
		}
		for k, i := range live {
			res := batch.At(k)
			newStats, err := runStats(pm, &res, assignments[i].Gears, scales)
			if err != nil {
				errs[i] = err
				continue
			}
			results[i] = &Result{
				App:        cfg.Trace.App,
				Assignment: assignments[i],
				Orig:       origStats,
				New:        newStats,
				Norm:       metrics.NewResult(origStats.Energy, origStats.Time, newStats.Energy, newStats.Time),
				LB:         lb,
				PE:         pe,
			}
		}
	}
	return results, errs, nil
}
