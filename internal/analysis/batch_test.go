package analysis

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/stagerr"
	"repro/internal/trace"
	"repro/internal/workload"
)

func batchTestTrace(t *testing.T) *trace.Trace {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Iterations = 4
	cfg.SkipPECalibration = true
	inst, err := workload.FindInstance("IS-32")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Generate(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestRunBatchBitIdenticalToRun proves batched analysis exact: every item of
// one RunBatch call must equal — bit for bit, through energies, norms, and
// per-rank vectors — the Result an independent Run produces for the same
// parameters.
func TestRunBatchBitIdenticalToRun(t *testing.T) {
	tr := batchTestTrace(t)
	uni6, _ := dvfs.Uniform(6)
	uni4, _ := dvfs.Uniform(4)
	exp6, _ := dvfs.Exponential(6)
	items := []BatchItem{
		{Set: uni6, Algorithm: core.MAX},
		{Set: uni6, Algorithm: core.AVG},
		{Set: uni4, Algorithm: core.MAX, Rounding: core.RoundNearest},
		{Set: exp6, Algorithm: core.AVG},
	}
	cache := dimemas.NewReplayCache()
	cfg := Config{Trace: tr, Cache: cache}
	results, errs, err := RunBatch(cfg, items)
	if err != nil {
		t.Fatal(err)
	}
	for i, item := range items {
		if errs[i] != nil {
			t.Fatalf("item %d failed: %v", i, errs[i])
		}
		single, err := Run(Config{
			Trace:     tr,
			Set:       item.Set,
			Algorithm: item.Algorithm,
			Rounding:  item.Rounding,
			Cache:     cache,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(results[i], single) {
			t.Errorf("item %d diverged from Run:\n batch %+v\n  solo %+v", i, results[i], single)
		}
	}
}

// TestRunBatchUncachedMatchesCached proves the private-cache fallback (nil
// Config.Cache) lands on identical numbers.
func TestRunBatchUncachedMatchesCached(t *testing.T) {
	tr := batchTestTrace(t)
	uni6, _ := dvfs.Uniform(6)
	items := []BatchItem{{Set: uni6, Algorithm: core.MAX}}
	cached, errs, err := RunBatch(Config{Trace: tr, Cache: dimemas.NewReplayCache()}, items)
	if err != nil || errs[0] != nil {
		t.Fatal(err, errs)
	}
	plain, errs, err := RunBatch(Config{Trace: tr}, items)
	if err != nil || errs[0] != nil {
		t.Fatal(err, errs)
	}
	if !reflect.DeepEqual(cached[0], plain[0]) {
		t.Error("uncached batch diverged from cached batch")
	}
}

// TestRunBatchItemErrorsIsolated proves one bad item cannot sink the batch:
// its slot carries the error, every other slot carries its result.
func TestRunBatchItemErrorsIsolated(t *testing.T) {
	tr := batchTestTrace(t)
	uni6, _ := dvfs.Uniform(6)
	items := []BatchItem{
		{Set: uni6, Algorithm: core.MAX},
		{Set: nil, Algorithm: core.MAX}, // nil gear set: item-level validate error
		{Set: uni6, Algorithm: core.AVG},
	}
	results, errs, err := RunBatch(Config{Trace: tr}, items)
	if err != nil {
		t.Fatal(err)
	}
	if results[0] == nil || errs[0] != nil {
		t.Errorf("item 0 should succeed: %v", errs[0])
	}
	if results[1] != nil || errs[1] == nil {
		t.Error("item 1 should fail with a nil set")
	}
	if st, ok := stagerr.StageOf(errs[1]); !ok || st != stagerr.Validate {
		t.Errorf("item 1 error should carry the validate stage, got %v (%v)", st, errs[1])
	}
	if results[2] == nil || errs[2] != nil {
		t.Errorf("item 2 should succeed: %v", errs[2])
	}
}

// TestRunBatchSharedFailure proves shared-stage failures reject the whole
// call: timeline recording is not available in batch mode.
func TestRunBatchSharedFailure(t *testing.T) {
	tr := batchTestTrace(t)
	uni6, _ := dvfs.Uniform(6)
	if _, _, err := RunBatch(Config{Trace: tr, RecordTimelines: true}, []BatchItem{{Set: uni6}}); err == nil {
		t.Error("RecordTimelines should be rejected in batch mode")
	}
	if _, _, err := RunBatch(Config{}, []BatchItem{{Set: uni6}}); err == nil {
		t.Error("nil trace should fail")
	}
}
