// Package powercap schedules per-rank DVFS gears under a cluster power
// budget. The paper down-gears non-critical ranks assuming unbounded power;
// this package solves the inverse scenario studied by Medhat et al. ("Power
// Redistribution for Optimizing Performance in MPI Clusters"): given a fixed
// cluster power cap, pick per-rank gears that minimize execution time
// subject to the cap, with energy as tiebreaker.
//
// Two policies are compared:
//
//   - Uniform downshift: every rank runs the same gear — the highest level
//     that satisfies the cap. This is what a cluster-level governor without
//     application knowledge can do.
//   - Load-aware redistribution: start from the top gear everywhere and take
//     power from slack-rich ranks first (the paper's MAX ordering inverted —
//     the ranks MAX would down-gear for free are the ones whose power is
//     cheapest to confiscate), then run a greedy refinement loop that
//     up-shifts the critical rank when further shedding elsewhere can pay
//     for it, and finally reclaims leftover slack for pure energy savings at
//     unchanged execution time.
//
// Every candidate is scored exactly: the execution time of a gear vector is
// the retimed replay of the trace's timing skeleton
// (dimemas.ReplayCache.SkeletonFor + Skeleton.RetimeInto), bit-identical to
// a fresh simulation at a fraction of the cost, which is what makes a cap
// sweep run at retime speed rather than replay speed.
package powercap

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/stagerr"
	"repro/internal/timemodel"
	"repro/internal/trace"
)

// CapKind selects what the budget bounds.
type CapKind int

const (
	// CapPeak bounds the worst-case instantaneous cluster power: the sum of
	// every rank's compute-phase power at its assigned gear. This is the
	// exact profile peak whenever some instant has all ranks computing
	// simultaneously (true at t=0 for the generated workloads, whose
	// iterations open with a computation burst) and a safe upper bound
	// otherwise, so the reported peak of a scheduled run never exceeds the
	// cap.
	CapPeak CapKind = iota
	// CapAverage bounds the time-averaged cluster power of the run:
	// energy / execution time, both measured on the exact retimed replay.
	CapAverage

	// capKindCount counts the variants; maxCapKind is the last valid one.
	// New kinds must be added above capKindCount so the validation range
	// extends automatically instead of silently rejecting them.
	capKindCount
	maxCapKind = capKindCount - 1
)

func (k CapKind) String() string {
	switch k {
	case CapPeak:
		return "peak"
	case CapAverage:
		return "average"
	default:
		return fmt.Sprintf("CapKind(%d)", int(k))
	}
}

// Policy names a scheduling policy in results.
type Policy int

const (
	// PolicyUniform is the uniform-downshift baseline.
	PolicyUniform Policy = iota
	// PolicyRedistribute is the load-aware redistribution scheduler.
	PolicyRedistribute
)

func (p Policy) String() string {
	switch p {
	case PolicyUniform:
		return "uniform"
	case PolicyRedistribute:
		return "redistribute"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config parameterizes one power-cap scheduling run.
type Config struct {
	// Trace is the application trace.
	Trace *trace.Trace
	// Platform models the interconnect; zero value means DefaultPlatform.
	Platform dimemas.Platform
	// Machine optionally layers topology and per-rank capability on top of
	// Platform (nil means the flat homogeneous machine). The scheduler then
	// becomes capability-aware: per-rank power draw is multiplied by
	// Capability.PowerScale (in the cap accounting, the energy scores, and
	// the reported profiles), and per-rank frequency ceilings
	// (Capability.FMax) bound which gears each rank may be assigned. A
	// Machine with a zero Base inherits the normalized Platform.
	Machine *dimemas.Machine
	// Power configures the CPU power model; zero value means the paper's
	// baseline. The cap is expressed in this model's units.
	Power power.Config
	// Set is the available DVFS gear set. It must be discrete: the
	// scheduler sheds power one gear step at a time.
	Set *dvfs.Set
	// Cap is the cluster power budget in model units (see Kind).
	Cap float64
	// Kind selects a peak (default) or time-averaged budget.
	Kind CapKind
	// Beta is the memory-boundedness parameter; the zero value selects the
	// paper's default 0.5 unless BetaSet is true (see analysis.Config).
	Beta float64
	// BetaSet marks Beta as explicitly chosen, honoring an explicit 0.
	BetaSet bool
	// FMax is the nominal top frequency (default dvfs.FMax when zero).
	FMax float64
	// MaxMoves bounds the refinement moves of the redistribution policy
	// (default 4 × ranks).
	MaxMoves int
	// Cache optionally memoizes the baseline replay and the timing
	// skeleton, sharing them with every other pipeline — and across the
	// rows of a cap sweep, which then pays for the skeleton exactly once.
	// Nil builds an uncached skeleton for this run.
	Cache *dimemas.ReplayCache
	// FreshReplays forces every candidate to be scored by a fresh Simulate
	// call instead of a skeleton retiming (the Cache is ignored). Results
	// are bit-identical either way; the flag exists to measure the
	// skeleton's speedup (BenchmarkPowercapSweep) and as a cross-check in
	// tests.
	FreshReplays bool
	// Ctx optionally bounds the run; it is polled between candidate
	// evaluations and threaded into the replays.
	Ctx context.Context
}

// Schedule is the outcome of one policy: the gear vector plus the exact
// cost of the scheduled run.
type Schedule struct {
	// Policy records which scheduler produced the assignment.
	Policy Policy
	// Gears holds the per-rank operating points.
	Gears []dvfs.Gear
	// Time and Energy are the scheduled run's execution time and CPU
	// energy (exact replay values).
	Time, Energy float64
	// PeakPower and AveragePower are measured on the scheduled run's
	// cluster power profile; AveragePower is Energy/Time.
	PeakPower, AveragePower float64
	// OverCapSeconds is the total time the instantaneous cluster power
	// exceeds the cap: always 0 for a peak-mode schedule, possibly
	// positive under an average-mode cap.
	OverCapSeconds float64
	// NormTime and NormEnergy are Time and Energy relative to the
	// uncapped (all ranks at FMax) execution.
	NormTime, NormEnergy float64
}

// Freqs returns the per-rank frequencies of the schedule.
func (s *Schedule) Freqs() []float64 {
	out := make([]float64, len(s.Gears))
	for i, g := range s.Gears {
		out[i] = g.Freq
	}
	return out
}

// RefStats describes the uncapped reference execution.
type RefStats struct {
	Time, Energy            float64
	PeakPower, AveragePower float64
}

// Result is the outcome of one power-cap scheduling run.
type Result struct {
	// App names the scheduled trace.
	App string
	// Cap and Kind echo the budget.
	Cap  float64
	Kind CapKind
	// Uncapped is the all-ranks-at-FMax reference execution.
	Uncapped RefStats
	// Uniform and Redistributed are the two policies' schedules. The
	// redistribution result never loses to uniform on (time, energy): the
	// greedy falls back to the uniform solution when that one dominates.
	Uniform, Redistributed Schedule
	// Evaluations counts candidate gear vectors scored by exact replay.
	Evaluations int
}

// Errors.
var (
	// ErrNilTrace reports a missing trace.
	ErrNilTrace = errors.New("powercap: config needs a trace")
	// ErrNilSet reports a missing gear set.
	ErrNilSet = errors.New("powercap: config needs a gear set")
	// ErrContinuousSet reports a continuous gear set (the scheduler sheds
	// power in discrete gear steps).
	ErrContinuousSet = errors.New("powercap: needs a discrete gear set")
	// ErrCapInfeasible reports a cap below what the bottom gear can meet.
	ErrCapInfeasible = errors.New("powercap: cap infeasible")
)

func (c *Config) normalize() error {
	if c.Trace == nil {
		return ErrNilTrace
	}
	if c.Set == nil {
		return ErrNilSet
	}
	if c.Set.Continuous() {
		return fmt.Errorf("%w, got %s", ErrContinuousSet, c.Set.Name())
	}
	if c.Cap <= 0 || math.IsNaN(c.Cap) || math.IsInf(c.Cap, 0) {
		return fmt.Errorf("powercap: cap must be positive and finite, got %v", c.Cap)
	}
	if c.Kind < CapPeak || c.Kind > maxCapKind {
		return fmt.Errorf("powercap: unknown cap kind %d", int(c.Kind))
	}
	if c.Platform == (dimemas.Platform{}) {
		c.Platform = dimemas.DefaultPlatform()
	}
	if c.Power == (power.Config{}) {
		c.Power = power.DefaultConfig()
	}
	if c.Beta < 0 || c.Beta > 1 || math.IsNaN(c.Beta) {
		return fmt.Errorf("powercap: beta %v outside [0, 1]", c.Beta)
	}
	if c.Beta == 0 && !c.BetaSet {
		c.Beta = timemodel.DefaultBeta
	}
	if c.FMax == 0 {
		c.FMax = dvfs.FMax
	}
	if c.FMax < 0 {
		return fmt.Errorf("powercap: negative fmax %v", c.FMax)
	}
	if c.MaxMoves < 0 {
		return fmt.Errorf("powercap: negative max moves %d", c.MaxMoves)
	}
	return nil
}

// machine resolves the layered machine the run schedules for: the explicit
// Machine when configured (inheriting the normalized Platform into a zero
// Base), the flat homogeneous machine otherwise. Call after normalize.
func (c *Config) machine() (dimemas.Machine, error) {
	if c.Machine == nil {
		return dimemas.FlatMachine(c.Platform), nil
	}
	m := *c.Machine
	if m.Base == (dimemas.Platform{}) {
		m.Base = c.Platform
	}
	if err := m.ValidateFor(c.Trace.NumRanks()); err != nil {
		return dimemas.Machine{}, err
	}
	return m, nil
}

// scheduler carries one run's state: the frequency-independent inputs, the
// per-gear constants, and the reusable evaluation buffers.
type scheduler struct {
	cfg      *Config
	machine  dimemas.Machine
	pm       *power.Model
	gears    []dvfs.Gear // ascending
	pComp    []float64   // per gear: compute-phase power
	sd       []float64   // per gear: β slowdown factor vs FMax
	pscale   []float64   // per rank: power multiplier (nil: homogeneous)
	maxGi    []int       // per rank: highest assignable gear index (nil: whole set)
	baseComp []float64   // per rank: computation time at FMax (read-only)
	skel     *dimemas.Skeleton
	res      dimemas.Result     // reusable replay output (FreshReplays path)
	delta    dimemas.DeltaState // incremental retiming state (default path)
	cur      *dimemas.Result    // result of the last evaluate call
	freqs    []float64
	usage    []power.Usage
	maxMoves int
	evals    int
}

// Run schedules the trace under the configured power cap with both policies
// and reports their exact costs next to the uncapped reference execution.
// Errors are stage-tagged (internal/stagerr): configuration problems carry
// the validate stage, everything else crosses powercap with the origin
// stage preserved underneath.
func Run(cfg Config) (*Result, error) {
	res, err := run(cfg)
	if err != nil {
		return nil, stagerr.Wrap(stagerr.Powercap, err)
	}
	return res, nil
}

func run(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, stagerr.Wrap(stagerr.Validate, err)
	}
	pm, err := power.New(cfg.Power)
	if err != nil {
		return nil, err
	}
	machine, err := cfg.machine()
	if err != nil {
		return nil, stagerr.Wrap(stagerr.Validate, err)
	}

	opts := dimemas.Options{Beta: cfg.Beta, FMax: cfg.FMax, Ctx: cfg.Ctx}
	tlOpts := opts
	tlOpts.RecordTimeline = true
	var (
		base *dimemas.Result
		skel *dimemas.Skeleton
	)
	if cfg.FreshReplays {
		base, err = dimemas.SimulateMachine(cfg.Trace, machine, tlOpts)
		if err != nil {
			return nil, fmt.Errorf("powercap: baseline replay: %w", err)
		}
	} else {
		skel, err = cfg.Cache.SkeletonForMachine(cfg.Trace, machine, opts)
		if err != nil {
			return nil, fmt.Errorf("powercap: timing skeleton: %w", err)
		}
		// The timeline baseline doubles as the uncapped reference and the
		// slack-ordering source; through a cache it is shared across every
		// row of a cap sweep.
		base, err = cfg.Cache.OriginalMachine(cfg.Trace, machine, tlOpts)
		if err != nil {
			return nil, fmt.Errorf("powercap: baseline replay: %w", err)
		}
	}

	n := len(base.Compute)
	gears := cfg.Set.Gears()
	s := &scheduler{
		cfg:      &cfg,
		machine:  machine,
		pm:       pm,
		gears:    gears,
		pComp:    make([]float64, len(gears)),
		sd:       make([]float64, len(gears)),
		baseComp: base.Compute,
		skel:     skel,
		freqs:    make([]float64, n),
		usage:    make([]power.Usage, n),
		maxMoves: cfg.MaxMoves,
	}
	if s.maxMoves == 0 {
		s.maxMoves = 4 * n
	}
	for gi, g := range gears {
		if g.Freq <= 0 || g.Volt <= 0 {
			return nil, fmt.Errorf("powercap: invalid gear %v in set %s", g, cfg.Set.Name())
		}
		s.pComp[gi] = pm.Power(power.Compute, g)
		s.sd[gi] = timemodel.Slowdown(cfg.Beta, cfg.FMax, g.Freq)
	}
	if cap := machine.Cap; cap != nil {
		if cap.PowerScale != nil {
			s.pscale = make([]float64, n)
			for r := range s.pscale {
				s.pscale[r] = machine.RankPowerScale(r)
			}
		}
		if cap.FMax != nil {
			// Per-rank gear ceilings: the highest set index whose frequency
			// stays at or below the rank's silicon limit (at least the
			// bottom gear, matching dvfs.Set.QuantizeDown).
			s.maxGi = make([]int, n)
			for r := range s.maxGi {
				s.maxGi[r] = len(gears) - 1
				if f := machine.RankFMax(r, 0); f > 0 {
					gi := len(gears) - 1
					for gi > 0 && gears[gi].Freq > f+1e-12 {
						gi--
					}
					s.maxGi[r] = gi
				}
			}
		}
	}

	// Uncapped reference: every rank at the nominal FMax gear.
	nominal := dvfs.GearAt(cfg.FMax)
	nomGears := make([]dvfs.Gear, n)
	for r := range nomGears {
		nomGears[r] = nominal
	}
	baseEnergy, err := s.energyOf(nomGears, base)
	if err != nil {
		return nil, err
	}
	baseProfile, err := power.BuildProfileScaled(pm, base.Timeline, nomGears, s.pscale, base.Time)
	if err != nil {
		return nil, fmt.Errorf("powercap: baseline profile: %w", err)
	}
	ref := RefStats{
		Time:         base.Time,
		Energy:       baseEnergy,
		PeakPower:    baseProfile.Peak(),
		AveragePower: baseEnergy / base.Time,
	}

	uniIdx, uniTime, uniEnergy, err := s.uniform()
	if err != nil {
		return nil, err
	}
	redIdx, redTime, redEnergy, err := s.redistribute()
	if err != nil {
		return nil, err
	}
	// The uniform assignment is also a valid redistribution outcome: fall
	// back to it when the greedy lost on (time, energy), so redistribution
	// never reports a worse schedule than the baseline policy.
	if uniTime < redTime || (uniTime == redTime && uniEnergy < redEnergy) {
		copy(redIdx, uniIdx)
	}

	uniform, err := s.finish(PolicyUniform, uniIdx, ref)
	if err != nil {
		return nil, err
	}
	redistributed, err := s.finish(PolicyRedistribute, redIdx, ref)
	if err != nil {
		return nil, err
	}
	return &Result{
		App:           cfg.Trace.App,
		Cap:           cfg.Cap,
		Kind:          cfg.Kind,
		Uncapped:      ref,
		Uniform:       *uniform,
		Redistributed: *redistributed,
		Evaluations:   s.evals,
	}, nil
}

// evaluate scores one gear-index vector exactly: the retimed (or, under
// FreshReplays, freshly simulated) replay's execution time plus the energy
// of the run at those gears.
func (s *scheduler) evaluate(idx []int) (time, energy float64, err error) {
	if ctx := s.cfg.Ctx; ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, 0, err
		}
	}
	s.evals++
	for r, gi := range idx {
		s.freqs[r] = s.gears[gi].Freq
	}
	res := &s.res
	if s.cfg.FreshReplays {
		opts := dimemas.Options{Beta: s.cfg.Beta, FMax: s.cfg.FMax, Freqs: s.freqs, Ctx: s.cfg.Ctx}
		fresh, err := dimemas.SimulateMachine(s.cfg.Trace, s.machine, opts)
		if err != nil {
			return 0, 0, err
		}
		s.res = *fresh
	} else {
		// The greedy phases move one gear between consecutive evaluations,
		// so delta retiming re-times just the affected cone — bit-identical
		// to the full pass (and to the FreshReplays Simulate).
		r, err := s.skel.RetimeDelta(&s.delta, s.freqs, nil)
		if err != nil {
			return 0, 0, err
		}
		res = r
	}
	s.cur = res
	for r, gi := range idx {
		s.usage[r] = power.Usage{
			Gear:        s.gears[gi],
			ComputeTime: res.Compute[r],
			CommTime:    res.Time - res.Compute[r],
			Scale:       s.scaleAt(r),
		}
	}
	e, err := s.pm.Energy(s.usage)
	if err != nil {
		return 0, 0, err
	}
	return res.Time, e, nil
}

// energyOf accounts the energy of an already replayed run at explicit gears.
func (s *scheduler) energyOf(gears []dvfs.Gear, res *dimemas.Result) (float64, error) {
	for r := range gears {
		s.usage[r] = power.Usage{
			Gear:        gears[r],
			ComputeTime: res.Compute[r],
			CommTime:    res.Time - res.Compute[r],
			Scale:       s.scaleAt(r),
		}
	}
	return s.pm.Energy(s.usage)
}

// scaleAt returns rank r's power multiplier (1 on homogeneous machines).
func (s *scheduler) scaleAt(r int) float64 {
	if s.pscale == nil {
		return 1
	}
	return s.pscale[r]
}

// topFor returns rank r's highest assignable gear index — the end of the set
// unless the machine's capability layer caps the rank lower.
func (s *scheduler) topFor(r int) int {
	if s.maxGi == nil {
		return len(s.gears) - 1
	}
	return s.maxGi[r]
}

// peakBound is the all-ranks-computing instantaneous cluster power of a
// gear-index vector — the quantity a peak cap constrains. Heterogeneous
// ranks contribute their scaled draw.
func (s *scheduler) peakBound(idx []int) float64 {
	var sum float64
	if s.pscale == nil {
		for _, gi := range idx {
			sum += s.pComp[gi]
		}
		return sum
	}
	for r, gi := range idx {
		sum += s.pComp[gi] * s.pscale[r]
	}
	return sum
}

// measured carries the exact scores an average-mode feasibility check
// already paid for, so callers reuse them instead of replaying the
// identical gear vector twice.
type measured struct {
	time, energy float64
	valid        bool
}

// feasible reports whether a gear-index vector satisfies the cap. Peak caps
// are O(ranks) arithmetic (m stays invalid); average caps cost one exact
// replay whose scores are returned in m.
func (s *scheduler) feasible(idx []int) (ok bool, m measured, err error) {
	if s.cfg.Kind == CapPeak {
		return s.peakBound(idx) <= s.cfg.Cap, measured{}, nil
	}
	t, e, err := s.evaluate(idx)
	if err != nil {
		return false, measured{}, err
	}
	return e/t <= s.cfg.Cap, measured{time: t, energy: e, valid: true}, nil
}

// bestShed picks the rank to take power from next: among ranks above the
// bottom gear (and not the excluded rank), the one whose computation would
// remain shortest after shedding one gear — the slack-richest rank, the
// paper's MAX ordering inverted. Ties break to the lower rank. Returns -1
// when no rank can shed.
func (s *scheduler) bestShed(idx []int, exclude int) int {
	best := -1
	bestAfter := math.Inf(1)
	for r, gi := range idx {
		if r == exclude || gi == 0 {
			continue
		}
		after := s.baseComp[r] * s.sd[gi-1]
		if after < bestAfter {
			bestAfter = after
			best = r
		}
	}
	return best
}

// infeasibleErr reports the cheapest configuration's actual demand next to
// the cap: the all-bottom average power for average caps (the quantity
// feasibility tested), the all-bottom compute power for peak caps.
func (s *scheduler) infeasibleErr() error {
	n := len(s.baseComp)
	if s.cfg.Kind == CapAverage {
		bottom := make([]int, n)
		if t, e, err := s.evaluate(bottom); err == nil {
			return fmt.Errorf("%w: average cap %.6g below the all-bottom-gear average power %.6g (%d ranks at %s)",
				ErrCapInfeasible, s.cfg.Cap, e/t, n, s.gears[0])
		}
	}
	var floor float64
	for r := 0; r < n; r++ {
		floor += s.pComp[0] * s.scaleAt(r)
	}
	return fmt.Errorf("%w: %s cap %.6g below the all-bottom-gear compute power %.6g (%d ranks at %s)",
		ErrCapInfeasible, s.cfg.Kind, s.cfg.Cap, floor, n, s.gears[0])
}

// uniform finds the best single gear level under the cap: lexicographically
// minimal (time, energy), which is the highest feasible level whenever β > 0
// and the lowest-energy one among time-ties (e.g. β = 0). On machines with
// per-rank frequency ceilings the level is clamped to each rank's own top —
// the best a uniform governor can do on such hardware.
func (s *scheduler) uniform() (idx []int, time, energy float64, err error) {
	n := len(s.baseComp)
	idx = make([]int, n)
	trial := make([]int, n)
	found := false
	for gi := len(s.gears) - 1; gi >= 0; gi-- {
		for r := range trial {
			trial[r] = gi
			if top := s.topFor(r); gi > top {
				trial[r] = top
			}
		}
		if s.cfg.Kind == CapPeak && s.peakBound(trial) > s.cfg.Cap {
			continue
		}
		t, e, err := s.evaluate(trial)
		if err != nil {
			return nil, 0, 0, err
		}
		if s.cfg.Kind == CapAverage && e/t > s.cfg.Cap {
			continue
		}
		if !found || t < time || (t == time && e < energy) {
			found = true
			time, energy = t, e
			copy(idx, trial)
		}
	}
	if !found {
		return nil, 0, 0, s.infeasibleErr()
	}
	return idx, time, energy, nil
}

// redistribute runs the three-phase greedy: shed power from slack-rich
// ranks until the cap holds, refine by up-shifting the critical rank when
// further shedding elsewhere pays for it, then reclaim leftover slack for
// energy at unchanged execution time. The returned time/energy are the
// final vector's exact scores.
func (s *scheduler) redistribute() (idx []int, time, energy float64, err error) {
	n := len(s.baseComp)
	idx = make([]int, n)
	for r := range idx {
		idx[r] = s.topFor(r)
	}

	// Phase 1 — shed until feasible, slack-richest first.
	var m measured
	for {
		var ok bool
		ok, m, err = s.feasible(idx)
		if err != nil {
			return nil, 0, 0, err
		}
		if ok {
			break
		}
		r := s.bestShed(idx, -1)
		if r < 0 {
			return nil, 0, 0, s.infeasibleErr()
		}
		idx[r]--
	}

	// Phase 2 — refinement: give the critical rank one gear back, paying
	// with further shedding elsewhere; commit only strict (time, energy)
	// improvements. Invariant maintained throughout phases 1–2: the last
	// evaluate call scored the current idx, so criticalRank can read the
	// retimed compute times from s.cur.
	curTime, curEnergy := m.time, m.energy
	if !m.valid {
		if curTime, curEnergy, err = s.evaluate(idx); err != nil {
			return nil, 0, 0, err
		}
	}
	trial := make([]int, n)
	for moves := 0; moves < s.maxMoves; moves++ {
		crit := s.criticalRank(idx)
		if crit < 0 {
			break
		}
		copy(trial, idx)
		trial[crit]++
		affordable := true
		for {
			var ok bool
			ok, m, err = s.feasible(trial)
			if err != nil {
				return nil, 0, 0, err
			}
			if ok {
				break
			}
			r := s.bestShed(trial, crit)
			if r < 0 {
				affordable = false
				break
			}
			trial[r]--
		}
		if !affordable {
			break
		}
		tTime, tEnergy := m.time, m.energy
		if !m.valid {
			if tTime, tEnergy, err = s.evaluate(trial); err != nil {
				return nil, 0, 0, err
			}
		}
		if tTime < curTime || (tTime == curTime && tEnergy < curEnergy) {
			copy(idx, trial)
			curTime, curEnergy = tTime, tEnergy
			continue
		}
		break
	}

	// Phase 3 — slack reclamation: a downshift strictly reduces the peak
	// bound, and a committed one (equal time, lower energy) also reduces
	// the average power, so committed moves can never break the cap.
	for {
		changed := false
		for r := 0; r < n; r++ {
			if idx[r] == 0 {
				continue
			}
			idx[r]--
			tTime, tEnergy, err := s.evaluate(idx)
			if err != nil {
				return nil, 0, 0, err
			}
			if tTime == curTime && tEnergy < curEnergy {
				curEnergy = tEnergy
				changed = true
			} else {
				idx[r]++
			}
		}
		if !changed {
			break
		}
	}
	return idx, curTime, curEnergy, nil
}

// criticalRank returns the rank with the longest retimed computation among
// those not already at their top gear — the set's top, or the rank's own
// capability ceiling on heterogeneous machines — (ties to the lower rank),
// using the compute times of the last evaluate call; -1 when every rank is
// at its top.
func (s *scheduler) criticalRank(idx []int) int {
	best := -1
	bestComp := math.Inf(-1)
	for r, gi := range idx {
		if gi >= s.topFor(r) {
			continue
		}
		if c := s.cur.Compute[r]; c > bestComp {
			bestComp = c
			best = r
		}
	}
	return best
}

// finish replays the chosen assignment once with timeline recording and
// derives the schedule's exact profile-level statistics.
func (s *scheduler) finish(policy Policy, idx []int, ref RefStats) (*Schedule, error) {
	gears := make([]dvfs.Gear, len(idx))
	freqs := make([]float64, len(idx))
	for r, gi := range idx {
		gears[r] = s.gears[gi]
		freqs[r] = s.gears[gi].Freq
	}
	var (
		res *dimemas.Result
		err error
	)
	if s.cfg.FreshReplays {
		opts := dimemas.Options{Beta: s.cfg.Beta, FMax: s.cfg.FMax, Freqs: freqs, RecordTimeline: true, Ctx: s.cfg.Ctx}
		res, err = dimemas.SimulateMachine(s.cfg.Trace, s.machine, opts)
	} else {
		res, err = s.skel.Retime(freqs, true)
	}
	if err != nil {
		return nil, fmt.Errorf("powercap: %s schedule replay: %w", policy, err)
	}
	energy, err := s.energyOf(gears, res)
	if err != nil {
		return nil, err
	}
	profile, err := power.BuildProfileScaled(s.pm, res.Timeline, gears, s.pscale, res.Time)
	if err != nil {
		return nil, fmt.Errorf("powercap: %s schedule profile: %w", policy, err)
	}
	return &Schedule{
		Policy:         policy,
		Gears:          gears,
		Time:           res.Time,
		Energy:         energy,
		PeakPower:      profile.Peak(),
		AveragePower:   energy / res.Time,
		OverCapSeconds: profile.TimeAbove(s.cfg.Cap),
		NormTime:       res.Time / ref.Time,
		NormEnergy:     energy / ref.Energy,
	}, nil
}
