package powercap

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/trace"
)

// imbalancedTrace builds the golden scheduling case: rank 0 carries a 4 s
// load, ranks 1–3 carry 1 s, synchronized by a barrier each iteration. A
// tight cap forces uniform downshift to slow the critical rank, while
// redistribution can keep rank 0 fast by taking power from the others.
func imbalancedTrace(iters int) *trace.Trace {
	tr := trace.New("golden", 4)
	loads := []float64{4.0, 1.0, 1.0, 1.0}
	for it := 0; it < iters; it++ {
		for r, w := range loads {
			tr.Add(r, trace.Compute(w))
		}
		for r := 0; r < 4; r++ {
			tr.Add(r, trace.Coll(trace.CollBarrier, 0), trace.IterMark())
		}
	}
	return tr
}

func sixGears(t *testing.T) *dvfs.Set {
	t.Helper()
	set, err := dvfs.Uniform(6)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// computePower returns the compute-phase power of one rank at frequency f
// under the default model (for cap arithmetic in tests).
func computePower(t *testing.T, f float64) float64 {
	t.Helper()
	pm, err := power.New(power.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return pm.Power(power.Compute, dvfs.GearAt(f))
}

func TestRedistributionBeatsUniformUnderTightPeakCap(t *testing.T) {
	tr := imbalancedTrace(3)
	set := sixGears(t)
	cap := 0.55 * 4 * computePower(t, dvfs.FMax)
	res, err := Run(Config{Trace: tr, Set: set, Cap: cap, Cache: dimemas.NewReplayCache()})
	if err != nil {
		t.Fatal(err)
	}

	// Both schedules respect the cap: the reported peak is the exact
	// profile peak and must never exceed the budget.
	for _, sched := range []Schedule{res.Uniform, res.Redistributed} {
		if sched.PeakPower > cap {
			t.Errorf("%s peak %v exceeds cap %v", sched.Policy, sched.PeakPower, cap)
		}
		if sched.OverCapSeconds != 0 {
			t.Errorf("%s spends %v s above a peak cap", sched.Policy, sched.OverCapSeconds)
		}
		if sched.Time < res.Uncapped.Time {
			t.Errorf("%s time %v beats the uncapped run %v", sched.Policy, sched.Time, res.Uncapped.Time)
		}
	}

	// Redistribution strictly beats uniform downshift on this imbalance:
	// uniform must slow every rank (including the critical one) to fit the
	// budget; redistribution keeps rank 0 at the top gear and pays by
	// parking the slack-rich ranks.
	if res.Redistributed.Time >= res.Uniform.Time {
		t.Errorf("redistributed time %v should beat uniform %v", res.Redistributed.Time, res.Uniform.Time)
	}
	if f := res.Redistributed.Gears[0].Freq; f != dvfs.FMax {
		t.Errorf("critical rank gear = %v GHz, want FMax", f)
	}
	for r := 1; r < 4; r++ {
		if f := res.Redistributed.Gears[r].Freq; f >= dvfs.FMax {
			t.Errorf("slack rank %d kept %v GHz", r, f)
		}
	}
	// Uniform is uniform, at the highest level whose all-compute power
	// fits: one step up must violate the budget.
	lvl := res.Uniform.Gears[0].Freq
	for r, g := range res.Uniform.Gears {
		if g.Freq != lvl {
			t.Errorf("uniform rank %d at %v, want %v", r, g.Freq, lvl)
		}
	}
	gears := set.Gears()
	for i, g := range gears {
		if g.Freq == lvl && i+1 < len(gears) {
			if up := 4 * computePower(t, gears[i+1].Freq); up <= cap {
				t.Errorf("uniform level %v is not maximal: %v would fit cap %v", lvl, gears[i+1].Freq, cap)
			}
		}
	}
	if res.Evaluations == 0 {
		t.Error("no candidate evaluations recorded")
	}
}

func TestFreshReplaysBitIdentical(t *testing.T) {
	tr := imbalancedTrace(2)
	set := sixGears(t)
	cap := 0.6 * 4 * computePower(t, dvfs.FMax)
	for _, kind := range []CapKind{CapPeak, CapAverage} {
		cached, err := Run(Config{Trace: tr, Set: set, Cap: cap, Kind: kind, Cache: dimemas.NewReplayCache()})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Run(Config{Trace: tr, Set: set, Cap: cap, Kind: kind, FreshReplays: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, pair := range []struct{ a, b Schedule }{
			{cached.Uniform, fresh.Uniform},
			{cached.Redistributed, fresh.Redistributed},
		} {
			if pair.a.Time != pair.b.Time || pair.a.Energy != pair.b.Energy ||
				pair.a.PeakPower != pair.b.PeakPower {
				t.Errorf("%s/%s: retimed %+v != simulated %+v", kind, pair.a.Policy, pair.a, pair.b)
			}
			for r := range pair.a.Gears {
				if pair.a.Gears[r] != pair.b.Gears[r] {
					t.Errorf("%s/%s: rank %d gear %v != %v", kind, pair.a.Policy, r, pair.a.Gears[r], pair.b.Gears[r])
				}
			}
		}
		if cached.Uncapped != fresh.Uncapped {
			t.Errorf("%s: uncapped reference %+v != %+v", kind, cached.Uncapped, fresh.Uncapped)
		}
	}
}

func TestPeakCapSweepRespectsCapOnEveryRow(t *testing.T) {
	tr := imbalancedTrace(2)
	set := sixGears(t)
	cache := dimemas.NewReplayCache()
	uncappedPeak := 4 * computePower(t, dvfs.FMax)
	for _, frac := range []float64{0.30, 0.40, 0.45, 0.50, 0.55, 0.60, 0.70, 0.80, 0.90, 1.00} {
		cap := frac * uncappedPeak
		res, err := Run(Config{Trace: tr, Set: set, Cap: cap, Cache: cache})
		if err != nil {
			t.Fatalf("cap %.0f%%: %v", frac*100, err)
		}
		if res.Uniform.PeakPower > cap || res.Redistributed.PeakPower > cap {
			t.Errorf("cap %.0f%%: peaks %v / %v exceed %v", frac*100, res.Uniform.PeakPower, res.Redistributed.PeakPower, cap)
		}
		if res.Redistributed.Time > res.Uniform.Time {
			t.Errorf("cap %.0f%%: redistribution %v worse than uniform %v", frac*100, res.Redistributed.Time, res.Uniform.Time)
		}
		if res.Redistributed.Time == res.Uniform.Time && res.Redistributed.Energy > res.Uniform.Energy {
			t.Errorf("cap %.0f%%: redistribution loses the energy tiebreak: %v vs %v", frac*100, res.Redistributed.Energy, res.Uniform.Energy)
		}
	}
	// The whole sweep shares one skeleton and one timeline baseline.
	if st := cache.Stats(); st.Misses != 2 {
		t.Errorf("cache misses = %d, want 2 (skeleton + timeline baseline) across the sweep", st.Misses)
	}
}

func TestAverageCapMode(t *testing.T) {
	tr := imbalancedTrace(2)
	set := sixGears(t)
	// An average cap at 50% of the uncapped average power: instantaneous
	// power may exceed it (OverCapSeconds ≥ 0), the time average must not.
	probe, err := Run(Config{Trace: tr, Set: set, Cap: 1e6, Kind: CapAverage, Cache: dimemas.NewReplayCache()})
	if err != nil {
		t.Fatal(err)
	}
	cap := 0.5 * probe.Uncapped.AveragePower
	res, err := Run(Config{Trace: tr, Set: set, Cap: cap, Kind: CapAverage, Cache: dimemas.NewReplayCache()})
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []Schedule{res.Uniform, res.Redistributed} {
		if sched.AveragePower > cap {
			t.Errorf("%s average power %v exceeds cap %v", sched.Policy, sched.AveragePower, cap)
		}
		if sched.AveragePower != sched.Energy/sched.Time {
			t.Errorf("%s average power %v != energy/time %v", sched.Policy, sched.AveragePower, sched.Energy/sched.Time)
		}
		if sched.OverCapSeconds < 0 || sched.OverCapSeconds > sched.Time {
			t.Errorf("%s exceedance %v outside [0, %v]", sched.Policy, sched.OverCapSeconds, sched.Time)
		}
	}
	if res.Redistributed.Time > res.Uniform.Time {
		t.Errorf("redistribution %v worse than uniform %v", res.Redistributed.Time, res.Uniform.Time)
	}
}

// TestBetaZeroPrefersEnergy: with β = 0 every gear level has the identical
// execution time, so the lexicographic (time, energy) objective must pick
// the bottom gear everywhere — the energy tiebreaker at work, and the
// explicit-zero Beta contract honored end to end.
func TestBetaZeroPrefersEnergy(t *testing.T) {
	tr := imbalancedTrace(2)
	set := sixGears(t)
	cap := 4 * computePower(t, dvfs.FMax) // loose: even all-top fits
	res, err := Run(Config{Trace: tr, Set: set, Cap: cap, Beta: 0, BetaSet: true, Cache: dimemas.NewReplayCache()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Uniform.Time != res.Uncapped.Time {
		t.Errorf("β=0 uniform time %v != uncapped %v", res.Uniform.Time, res.Uncapped.Time)
	}
	for r, g := range res.Uniform.Gears {
		if g.Freq != dvfs.FMin {
			t.Errorf("β=0 uniform rank %d at %v, want the bottom gear", r, g.Freq)
		}
	}
	for r, g := range res.Redistributed.Gears {
		if g.Freq != dvfs.FMin {
			t.Errorf("β=0 redistributed rank %d at %v, want the bottom gear", r, g.Freq)
		}
	}
}

func TestInfeasibleCap(t *testing.T) {
	tr := imbalancedTrace(1)
	set := sixGears(t)
	for _, kind := range []CapKind{CapPeak, CapAverage} {
		_, err := Run(Config{Trace: tr, Set: set, Cap: 1e-6, Kind: kind, Cache: dimemas.NewReplayCache()})
		if !errors.Is(err, ErrCapInfeasible) {
			t.Errorf("%s: got %v, want ErrCapInfeasible", kind, err)
		}
	}
}

func TestRunValidation(t *testing.T) {
	tr := imbalancedTrace(1)
	set := sixGears(t)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil trace", Config{Set: set, Cap: 1}},
		{"nil set", Config{Trace: tr, Cap: 1}},
		{"continuous set", Config{Trace: tr, Set: dvfs.ContinuousLimited(), Cap: 1}},
		{"zero cap", Config{Trace: tr, Set: set}},
		{"negative cap", Config{Trace: tr, Set: set, Cap: -1}},
		{"nan cap", Config{Trace: tr, Set: set, Cap: math.NaN()}},
		{"inf cap", Config{Trace: tr, Set: set, Cap: math.Inf(1)}},
		{"bad kind", Config{Trace: tr, Set: set, Cap: 1, Kind: CapKind(7)}},
		{"negative beta", Config{Trace: tr, Set: set, Cap: 1, Beta: -0.5}},
		{"beta above one", Config{Trace: tr, Set: set, Cap: 1, Beta: 1.5}},
		{"negative fmax", Config{Trace: tr, Set: set, Cap: 1, FMax: -2}},
		{"negative moves", Config{Trace: tr, Set: set, Cap: 1, MaxMoves: -1}},
	}
	for _, tc := range cases {
		if _, err := Run(tc.cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(Config{
		Trace: imbalancedTrace(2),
		Set:   sixGears(t),
		Cap:   0.5 * 4 * computePower(t, dvfs.FMax),
		Ctx:   ctx,
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
}

// heteroMachine builds the capability layer used by the heterogeneity tests:
// rank 0 draws double power and rank 3's silicon tops out at 1.4 GHz.
func heteroMachine() *dimemas.Machine {
	return &dimemas.Machine{Cap: &dimemas.Capability{
		PowerScale: []float64{2, 1, 1, 1},
		FMax:       []float64{0, 0, 0, 1.4},
	}}
}

func TestHeterogeneousMachineScheduling(t *testing.T) {
	tr := imbalancedTrace(2)
	set := sixGears(t)
	pm, err := power.New(power.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	scales := []float64{2, 1, 1, 1}
	// 60 % of the machine's scaled all-top compute draw: tight enough to
	// force scheduling, loose enough to stay feasible.
	cap := 0.6 * 5 * computePower(t, dvfs.FMax)
	res, err := Run(Config{Trace: tr, Machine: heteroMachine(), Set: set, Cap: cap, Cache: dimemas.NewReplayCache()})
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []Schedule{res.Uniform, res.Redistributed} {
		// Rank 3's gear never exceeds its capability ceiling.
		if f := sched.Gears[3].Freq; f > 1.4+1e-9 {
			t.Errorf("%s assigns capped rank 3 %v GHz above its 1.4 GHz ceiling", sched.Policy, f)
		}
		// The scaled all-compute bound (what CapPeak constrains) holds.
		var bound float64
		for r, g := range sched.Gears {
			bound += scales[r] * pm.Power(power.Compute, g)
		}
		if bound > cap+1e-9 {
			t.Errorf("%s scaled peak bound %v exceeds cap %v", sched.Policy, bound, cap)
		}
		if sched.PeakPower > cap+1e-9 {
			t.Errorf("%s profile peak %v exceeds cap %v", sched.Policy, sched.PeakPower, cap)
		}
	}
	if res.Redistributed.Time > res.Uniform.Time {
		t.Errorf("redistributed time %v worse than uniform %v", res.Redistributed.Time, res.Uniform.Time)
	}

	// The machine path is bit-identical between retimed and fresh replays,
	// exactly like the flat path.
	fresh, err := Run(Config{Trace: tr, Machine: heteroMachine(), Set: set, Cap: cap, FreshReplays: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range []struct{ a, b Schedule }{
		{res.Uniform, fresh.Uniform},
		{res.Redistributed, fresh.Redistributed},
	} {
		if pair.a.Time != pair.b.Time || pair.a.Energy != pair.b.Energy {
			t.Errorf("%s: retimed (%v, %v) != simulated (%v, %v)",
				pair.a.Policy, pair.a.Time, pair.a.Energy, pair.b.Time, pair.b.Energy)
		}
		for r := range pair.a.Gears {
			if pair.a.Gears[r] != pair.b.Gears[r] {
				t.Errorf("%s: rank %d gear %v != %v", pair.a.Policy, r, pair.a.Gears[r], pair.b.Gears[r])
			}
		}
	}
}

// TestHeterogeneousInfeasibilityUsesScaledFloor: a cap between the
// homogeneous all-bottom floor and the scaled one must be infeasible on the
// heterogeneous machine while remaining feasible on the flat one.
func TestHeterogeneousInfeasibilityUsesScaledFloor(t *testing.T) {
	tr := imbalancedTrace(1)
	set := sixGears(t)
	bottom := computePower(t, dvfs.FMin)
	cap := 4.5 * bottom // flat floor is 4·bottom, scaled floor 5·bottom
	if _, err := Run(Config{Trace: tr, Set: set, Cap: cap, Cache: dimemas.NewReplayCache()}); err != nil {
		t.Fatalf("flat machine should fit cap %v: %v", cap, err)
	}
	_, err := Run(Config{Trace: tr, Machine: heteroMachine(), Set: set, Cap: cap, Cache: dimemas.NewReplayCache()})
	if !errors.Is(err, ErrCapInfeasible) {
		t.Errorf("got %v, want ErrCapInfeasible on the scaled floor", err)
	}
}

// TestCapKindNames pins the wire names over the count-derived range: every
// valid kind must have a real name (not the fallback formatting), so a kind
// added above capKindCount cannot ship nameless.
func TestCapKindNames(t *testing.T) {
	seen := map[string]bool{}
	for k := CapPeak; k <= maxCapKind; k++ {
		s := k.String()
		if strings.HasPrefix(s, "CapKind(") {
			t.Fatalf("cap kind %d has no wire name", int(k))
		}
		if seen[s] {
			t.Fatalf("duplicate wire name %q", s)
		}
		seen[s] = true
	}
	if s := CapKind(capKindCount).String(); !strings.HasPrefix(s, "CapKind(") {
		t.Errorf("out-of-range kind stringified as %q, want the CapKind(n) fallback", s)
	}
}
