package powercap

import (
	"testing"

	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/workload"
)

// wrf128 generates the paper's largest instance once per benchmark binary.
var wrf128 *trace.Trace

func wrfTrace(b *testing.B) *trace.Trace {
	b.Helper()
	if wrf128 == nil {
		inst, err := workload.FindInstance("WRF-128")
		if err != nil {
			b.Fatal(err)
		}
		cfg := workload.DefaultConfig()
		cfg.Iterations = 5
		cfg.SkipPECalibration = true
		wrf128, err = workload.Generate(inst, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return wrf128
}

// sweepCaps are the eight peak-cap points of the benchmark sweep, as
// fractions of the uncapped all-compute peak.
var sweepCaps = []float64{0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.80}

func runSweep(b *testing.B, tr *trace.Trace, set *dvfs.Set, fresh bool) int {
	b.Helper()
	pm, err := power.New(power.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	uncappedPeak := float64(tr.NumRanks()) * pm.Power(power.Compute, dvfs.GearAt(dvfs.FMax))
	var cache *dimemas.ReplayCache
	if !fresh {
		// One cache per sweep: the eight rows share one timing skeleton and
		// one timeline baseline, exactly like the pwrsim experiment.
		cache = dimemas.NewReplayCache()
	}
	evals := 0
	for _, frac := range sweepCaps {
		res, err := Run(Config{
			Trace:        tr,
			Set:          set,
			Cap:          frac * uncappedPeak,
			Cache:        cache,
			FreshReplays: fresh,
		})
		if err != nil {
			b.Fatal(err)
		}
		evals += res.Evaluations
	}
	return evals
}

// BenchmarkPowercapSweep measures the production path: an 8-cap peak-mode
// sweep over WRF-128 where every candidate gear vector is scored by
// retiming the shared timing skeleton. Compare with
// BenchmarkPowercapSweepSimulate, the same sweep scored by fresh Simulate
// calls — the ratio is the skeleton's speedup on this workload.
func BenchmarkPowercapSweep(b *testing.B) {
	tr := wrfTrace(b)
	set, err := dvfs.Uniform(6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	evals := 0
	for i := 0; i < b.N; i++ {
		evals = runSweep(b, tr, set, false)
	}
	b.ReportMetric(float64(evals), "evals/sweep")
}

// BenchmarkPowercapSweepSimulate is the comparison arm: identical sweep,
// identical (bit-for-bit) results, but every candidate pays a full replay.
func BenchmarkPowercapSweepSimulate(b *testing.B) {
	tr := wrfTrace(b)
	set, err := dvfs.Uniform(6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	evals := 0
	for i := 0; i < b.N; i++ {
		evals = runSweep(b, tr, set, true)
	}
	b.ReportMetric(float64(evals), "evals/sweep")
}
