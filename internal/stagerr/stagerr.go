// Package stagerr tags errors with the pipeline stage they crossed, in the
// spirit of return-trace wrappers like errtrace: wrapping is a single small
// allocation, the error message is left untouched (callers and tests see
// exactly the text they always saw), and the provenance is recovered after
// the fact with StageOf / Path.
//
// The pipeline's stage taxonomy is fixed and small:
//
//	parse     — reading trace text, .prv streams, request bodies
//	validate  — request/config validation before any simulation work
//	skeleton  — building the timing skeleton
//	retime    — replaying/retiming a trace (the simulation engine)
//	optimize  — policy analysis and gear-set search
//	powercap  — gear scheduling under a power budget
//	rebalance — the online closed-loop controller
//	cache     — the shared replay cache (single-flight fills)
//	serve     — HTTP lifecycle: encoding, panics, timeouts, shedding
//	gateway   — fleet-front failures: no ready backend, proxy errors
//
// Errors are tagged where they originate and may be re-tagged as they cross
// later stages; StageOf reports the innermost (origin) tag — "where it
// died" — while Path lists every stage the error crossed, outermost first.
// Wrapping nil returns nil, and re-wrapping with the stage already on top
// returns the error unchanged, so call sites can tag unconditionally.
package stagerr

import (
	"errors"
	"fmt"
)

// Stage names one pipeline stage an error can cross.
type Stage string

// The stage taxonomy. Every tagged error carries one or more of these.
const (
	Parse     Stage = "parse"
	Validate  Stage = "validate"
	Skeleton  Stage = "skeleton"
	Retime    Stage = "retime"
	Optimize  Stage = "optimize"
	Powercap  Stage = "powercap"
	Rebalance Stage = "rebalance"
	Cache     Stage = "cache"
	Serve     Stage = "serve"
	Gateway   Stage = "gateway"
)

// Stages lists the full taxonomy (for docs, metrics pre-registration and
// tests).
func Stages() []Stage {
	return []Stage{Parse, Validate, Skeleton, Retime, Optimize, Powercap, Rebalance, Cache, Serve, Gateway}
}

// Error is an error tagged with the stage it crossed. Its message is the
// wrapped error's message unchanged; the tag is carried out of band and
// recovered with StageOf / Path.
type Error struct {
	stage Stage
	err   error
}

func (e *Error) Error() string { return e.err.Error() }

// Unwrap exposes the wrapped error to errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.err }

// Stage reports this wrapper's own tag (the outermost of the chain below
// it); most callers want StageOf instead.
func (e *Error) Stage() Stage { return e.stage }

// Wrap tags err with stage. A nil err returns nil; an err already tagged
// with stage on top is returned unchanged, so boundary functions can wrap
// unconditionally without stacking duplicates.
func Wrap(stage Stage, err error) error {
	if err == nil {
		return nil
	}
	if e, ok := err.(*Error); ok && e.stage == stage {
		return err
	}
	return &Error{stage: stage, err: err}
}

// New builds a stage-tagged error from text.
func New(stage Stage, text string) error {
	return &Error{stage: stage, err: errors.New(text)}
}

// Errorf builds a stage-tagged error from a format string; %w works as in
// fmt.Errorf.
func Errorf(stage Stage, format string, args ...any) error {
	return &Error{stage: stage, err: fmt.Errorf(format, args...)}
}

// StageOf reports the origin stage of err: the innermost tag on its wrap
// chain, i.e. the stage closest to where the error was first raised. The
// second result is false when no tag is present anywhere on the chain.
func StageOf(err error) (Stage, bool) {
	var (
		found Stage
		ok    bool
	)
	for err != nil {
		if e, tagged := err.(*Error); tagged {
			found, ok = e.stage, true
		}
		err = errors.Unwrap(err)
	}
	return found, ok
}

// Path lists the stages err crossed, outermost (closest to the caller)
// first and origin last, collapsing consecutive duplicates. An untagged
// error yields nil.
func Path(err error) []Stage {
	var out []Stage
	for err != nil {
		if e, tagged := err.(*Error); tagged {
			if len(out) == 0 || out[len(out)-1] != e.stage {
				out = append(out, e.stage)
			}
		}
		err = errors.Unwrap(err)
	}
	return out
}
