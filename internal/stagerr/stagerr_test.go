package stagerr

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
)

func TestWrapPreservesMessage(t *testing.T) {
	base := errors.New("dimemas: deadlock")
	err := Wrap(Retime, base)
	if err.Error() != base.Error() {
		t.Fatalf("Wrap changed the message: %q != %q", err.Error(), base.Error())
	}
	if !errors.Is(err, base) {
		t.Fatal("errors.Is does not see through the tag")
	}
}

func TestWrapNilIsNil(t *testing.T) {
	if Wrap(Parse, nil) != nil {
		t.Fatal("Wrap(nil) must be nil")
	}
}

func TestWrapDoesNotStackDuplicates(t *testing.T) {
	base := errors.New("boom")
	once := Wrap(Cache, base)
	twice := Wrap(Cache, once)
	if once != twice {
		t.Fatal("re-wrapping with the same stage allocated a new wrapper")
	}
}

func TestStageOfReportsOrigin(t *testing.T) {
	// An error raised in retime, annotated by optimize, re-tagged by serve:
	// the origin is retime.
	err := Wrap(Retime, errors.New("rank 3 has invalid frequency"))
	err = Wrap(Optimize, fmt.Errorf("DVFS replay: %w", err))
	err = Wrap(Serve, err)
	stage, ok := StageOf(err)
	if !ok || stage != Retime {
		t.Fatalf("StageOf = %q, %v; want retime, true", stage, ok)
	}
}

func TestStageOfUntagged(t *testing.T) {
	if stage, ok := StageOf(errors.New("plain")); ok {
		t.Fatalf("untagged error reported stage %q", stage)
	}
	if stage, ok := StageOf(nil); ok {
		t.Fatalf("nil error reported stage %q", stage)
	}
}

func TestPathOutermostFirst(t *testing.T) {
	err := Wrap(Skeleton, errors.New("boom"))
	err = Wrap(Cache, err)
	err = Wrap(Serve, err)
	got := Path(err)
	want := []Stage{Serve, Cache, Skeleton}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Path = %v, want %v", got, want)
	}
}

func TestPathCollapsesConsecutiveDuplicates(t *testing.T) {
	// An intermediate fmt.Errorf between two identical tags still collapses.
	err := Wrap(Parse, errors.New("bad field"))
	err = &Error{stage: Parse, err: fmt.Errorf("line 7: %w", err)}
	got := Path(err)
	want := []Stage{Parse}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Path = %v, want %v", got, want)
	}
}

func TestErrorfAndNew(t *testing.T) {
	err := Errorf(Validate, "beta %v outside [0, 1]", 1.5)
	if stage, ok := StageOf(err); !ok || stage != Validate {
		t.Fatalf("Errorf stage = %q, %v", stage, ok)
	}
	if err.Error() != "beta 1.5 outside [0, 1]" {
		t.Fatalf("Errorf message = %q", err.Error())
	}
	err = New(Serve, "panic serving request")
	if stage, ok := StageOf(err); !ok || stage != Serve {
		t.Fatalf("New stage = %q, %v", stage, ok)
	}
}

func TestContextErrorsSurviveTagging(t *testing.T) {
	err := Wrap(Retime, context.DeadlineExceeded)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("tagging hid the context error from errors.Is")
	}
}

func TestStagesCoversTaxonomy(t *testing.T) {
	if n := len(Stages()); n != 10 {
		t.Fatalf("taxonomy has %d stages, want 10", n)
	}
}
