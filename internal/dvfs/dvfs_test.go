package dvfs

import (
	"math"
	"testing"
	"testing/quick"
)

func feq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVoltageLinearModel(t *testing.T) {
	tests := []struct {
		f, want float64
	}{
		{0.8, 1.0},         // anchor point
		{2.3, 1.5},         // anchor point
		{1.1, 1.1},         // Table 1
		{1.4, 1.2},         // Table 1
		{1.7, 1.3},         // Table 1
		{2.0, 1.4},         // Table 1
		{2.6, 1.6},         // over-clock gear (§5.3.6)
		{0.0, 1.0 - 0.8/3}, // extrapolation for the unlimited set
	}
	for _, tt := range tests {
		if got := Voltage(tt.f); !feq(got, tt.want, 1e-9) {
			t.Errorf("Voltage(%v) = %v, want %v", tt.f, got, tt.want)
		}
	}
}

// Table 1 of the paper: six-gear evenly distributed set.
func TestUniformSixGearMatchesTable1(t *testing.T) {
	s, err := Uniform(6)
	if err != nil {
		t.Fatal(err)
	}
	wantF := []float64{0.8, 1.1, 1.4, 1.7, 2.0, 2.3}
	wantV := []float64{1.0, 1.1, 1.2, 1.3, 1.4, 1.5}
	gears := s.Gears()
	if len(gears) != 6 {
		t.Fatalf("got %d gears, want 6", len(gears))
	}
	for i, g := range gears {
		if !feq(g.Freq, wantF[i], 1e-9) {
			t.Errorf("gear %d freq = %v, want %v", i, g.Freq, wantF[i])
		}
		if !feq(g.Volt, wantV[i], 1e-9) {
			t.Errorf("gear %d volt = %v, want %v", i, g.Volt, wantV[i])
		}
	}
}

// Table 2 of the paper: six-gear exponential set (values printed to 2–3
// significant digits in the paper: 0.8, 1.57, 1.96, 2.15, 2.25, 2.3).
func TestExponentialSixGearMatchesTable2(t *testing.T) {
	s, err := Exponential(6)
	if err != nil {
		t.Fatal(err)
	}
	wantF := []float64{0.8, 1.57, 1.96, 2.15, 2.25, 2.3}
	wantV := []float64{1.0, 1.26, 1.39, 1.45, 1.48, 1.5}
	gears := s.Gears()
	if len(gears) != 6 {
		t.Fatalf("got %d gears, want 6", len(gears))
	}
	for i, g := range gears {
		if !feq(g.Freq, wantF[i], 0.01) {
			t.Errorf("gear %d freq = %v, want ≈%v", i, g.Freq, wantF[i])
		}
		if !feq(g.Volt, wantV[i], 0.01) {
			t.Errorf("gear %d volt = %v, want ≈%v", i, g.Volt, wantV[i])
		}
	}
}

func TestExponentialGapsHalve(t *testing.T) {
	for n := 3; n <= 7; n++ {
		s, err := Exponential(n)
		if err != nil {
			t.Fatal(err)
		}
		gears := s.Gears()
		for i := 0; i+2 < len(gears); i++ {
			gap1 := gears[i+1].Freq - gears[i].Freq
			gap2 := gears[i+2].Freq - gears[i+1].Freq
			if !feq(gap1, 2*gap2, 1e-6) {
				t.Errorf("n=%d: gap %d (%v) is not twice gap %d (%v)", n, i, gap1, i+1, gap2)
			}
		}
	}
}

func TestConstructorsValidate(t *testing.T) {
	if _, err := Uniform(1); err == nil {
		t.Error("Uniform(1) should fail")
	}
	if _, err := Exponential(1); err == nil {
		t.Error("Exponential(1) should fail")
	}
	if _, err := Continuous("bad", 2, 1); err == nil {
		t.Error("Continuous with max<min should fail")
	}
	if _, err := Continuous("bad", -1, 1); err == nil {
		t.Error("Continuous with negative min should fail")
	}
	if _, err := FromGears("empty", nil); err == nil {
		t.Error("FromGears with no gears should fail")
	}
	if _, err := FromGears("bad", []Gear{{Freq: -1, Volt: 1}}); err == nil {
		t.Error("FromGears with negative frequency should fail")
	}
}

func TestQuantizeDiscreteClosestHigher(t *testing.T) {
	s, _ := Uniform(6)
	tests := []struct {
		f, want float64
	}{
		{0.77, 0.8}, // below bottom clamps up to bottom
		{0.8, 0.8},  // exact gear
		{0.81, 1.1}, // closest higher
		{1.1, 1.1},  // exact gear
		{1.55, 1.7}, // closest higher
		{2.25, 2.3}, // closest higher
		{2.3, 2.3},  // top
		{3.0, 2.3},  // above top clamps to top
	}
	for _, tt := range tests {
		if got := s.Quantize(tt.f); !feq(got.Freq, tt.want, 1e-9) {
			t.Errorf("Quantize(%v) = %v, want %v", tt.f, got.Freq, tt.want)
		}
	}
	if g := s.Quantize(math.Inf(1)); !feq(g.Freq, 2.3, 1e-9) {
		t.Errorf("Quantize(+Inf) = %v, want 2.3", g.Freq)
	}
}

func TestQuantizeContinuous(t *testing.T) {
	lim := ContinuousLimited()
	if g := lim.Quantize(0.5); !feq(g.Freq, 0.8, 1e-9) {
		t.Errorf("limited Quantize(0.5) = %v, want clamp to 0.8", g.Freq)
	}
	if g := lim.Quantize(1.234); !feq(g.Freq, 1.234, 1e-9) {
		t.Errorf("limited Quantize(1.234) = %v, want identity", g.Freq)
	}
	unl := ContinuousUnlimited()
	if g := unl.Quantize(0.5); !feq(g.Freq, 0.5, 1e-9) {
		t.Errorf("unlimited Quantize(0.5) = %v, want identity", g.Freq)
	}
	if g := unl.Quantize(5); !feq(g.Freq, 2.3, 1e-9) {
		t.Errorf("unlimited Quantize(5) = %v, want 2.3", g.Freq)
	}
}

func TestOverclockExtensions(t *testing.T) {
	six, _ := Uniform(6)
	oc, err := six.WithOverclockGear(Gear{Freq: OverclockFreq, Volt: OverclockVolt})
	if err != nil {
		t.Fatal(err)
	}
	if oc.Size() != 7 {
		t.Fatalf("extended set has %d gears, want 7", oc.Size())
	}
	if top := oc.Top(); !feq(top.Freq, 2.6, 1e-9) || !feq(top.Volt, 1.6, 1e-9) {
		t.Errorf("top gear = %v, want 2.6GHz@1.6V", top)
	}
	// Original set must be unchanged.
	if six.Size() != 6 || !feq(six.Top().Freq, 2.3, 1e-9) {
		t.Error("WithOverclockGear mutated the source set")
	}

	lim := ContinuousLimited()
	oc10, err := lim.ScaleMax(1.10)
	if err != nil {
		t.Fatal(err)
	}
	if !feq(oc10.Top().Freq, 2.3*1.1, 1e-9) {
		t.Errorf("scaled top = %v, want %v", oc10.Top().Freq, 2.3*1.1)
	}
	if !feq(lim.Top().Freq, 2.3, 1e-9) {
		t.Error("ScaleMax mutated the source set")
	}

	if _, err := lim.WithOverclockGear(Gear{Freq: 2.6, Volt: 1.6}); err == nil {
		t.Error("WithOverclockGear on continuous set should fail")
	}
	if _, err := six.ScaleMax(1.1); err == nil {
		t.Error("ScaleMax on discrete set should fail")
	}
	if _, err := lim.ScaleMax(0); err == nil {
		t.Error("ScaleMax(0) should fail")
	}
}

func TestContains(t *testing.T) {
	six, _ := Uniform(6)
	if !six.Contains(1.4) {
		t.Error("uniform-6 should contain 1.4")
	}
	if six.Contains(1.5) {
		t.Error("uniform-6 should not contain 1.5")
	}
	lim := ContinuousLimited()
	if !lim.Contains(1.5) || lim.Contains(0.5) || lim.Contains(2.5) {
		t.Error("continuous Contains range check failed")
	}
}

func TestSetMetadata(t *testing.T) {
	six, _ := Uniform(6)
	if six.Name() != "uniform-6" || six.Continuous() {
		t.Errorf("unexpected metadata: %q continuous=%v", six.Name(), six.Continuous())
	}
	if got := six.Bottom().Freq; !feq(got, 0.8, 1e-9) {
		t.Errorf("Bottom = %v, want 0.8", got)
	}
	if s := six.String(); s == "" {
		t.Error("String should not be empty")
	}
	if s := ContinuousLimited().String(); s == "" {
		t.Error("continuous String should not be empty")
	}
	exp, _ := Exponential(5)
	if exp.Name() != "exponential-5" {
		t.Errorf("name = %q", exp.Name())
	}
}

// Property: for any discrete set and any requested frequency below the top,
// the quantized gear is a member of the set and is >= the request.
func TestQuantizePropertyDiscrete(t *testing.T) {
	for _, n := range []int{2, 3, 6, 10, 15} {
		s, err := Uniform(n)
		if err != nil {
			t.Fatal(err)
		}
		prop := func(raw float64) bool {
			f := math.Mod(math.Abs(raw), 3.0)
			g := s.Quantize(f)
			if !s.Contains(g.Freq) {
				return false
			}
			if f <= s.Top().Freq && g.Freq < f-1e-9 {
				return false // quantizing must never slow below request
			}
			return true
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

// Property: quantization is idempotent.
func TestQuantizeIdempotentProperty(t *testing.T) {
	s, _ := Exponential(6)
	prop := func(raw float64) bool {
		f := math.Mod(math.Abs(raw), 3.0)
		g1 := s.Quantize(f)
		g2 := s.Quantize(g1.Freq)
		return g1 == g2
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: voltages in any constructed set follow the linear model.
func TestGearVoltageConsistencyProperty(t *testing.T) {
	for n := 2; n <= 15; n++ {
		u, _ := Uniform(n)
		for _, g := range u.Gears() {
			if !feq(g.Volt, Voltage(g.Freq), 1e-9) {
				t.Errorf("uniform-%d gear %v off the voltage line", n, g)
			}
		}
	}
	for n := 3; n <= 7; n++ {
		e, _ := Exponential(n)
		for _, g := range e.Gears() {
			if !feq(g.Volt, Voltage(g.Freq), 1e-9) {
				t.Errorf("exponential-%d gear %v off the voltage line", n, g)
			}
		}
	}
}

func TestQuantizeNearest(t *testing.T) {
	s, _ := Uniform(6) // 0.8 1.1 1.4 1.7 2.0 2.3
	tests := []struct {
		f, want float64
	}{
		{0.5, 0.8},  // below bottom clamps
		{0.9, 0.8},  // nearer to 0.8
		{1.0, 1.1},  // nearer to 1.1
		{1.25, 1.1}, // equidistant: ties resolve to the lower gear
		{1.3, 1.4},  // nearer to 1.4
		{2.2, 2.3},  // nearer to top
		{5.0, 2.3},  // above top clamps
	}
	for _, tt := range tests {
		if got := s.QuantizeNearest(tt.f); feq(got.Freq, tt.want, 1e-9) == false {
			t.Errorf("QuantizeNearest(%v) = %v, want %v", tt.f, got.Freq, tt.want)
		}
	}
	if g := s.QuantizeNearest(math.Inf(1)); !feq(g.Freq, 2.3, 1e-9) {
		t.Errorf("QuantizeNearest(+Inf) = %v", g.Freq)
	}
	// Continuous sets behave like Quantize (identity within range).
	lim := ContinuousLimited()
	if g := lim.QuantizeNearest(1.234); !feq(g.Freq, 1.234, 1e-9) {
		t.Errorf("continuous QuantizeNearest = %v", g.Freq)
	}
	if g := lim.QuantizeNearest(0.1); !feq(g.Freq, 0.8, 1e-9) {
		t.Errorf("continuous clamp = %v", g.Freq)
	}
}

// Property: QuantizeNearest returns a member gear that is at least as close
// to the request as the closest-higher gear.
func TestQuantizeNearestProperty(t *testing.T) {
	s, _ := Uniform(7)
	prop := func(raw float64) bool {
		f := math.Mod(math.Abs(raw), 3.0)
		near := s.QuantizeNearest(f)
		up := s.Quantize(f)
		if !s.Contains(near.Freq) {
			return false
		}
		return math.Abs(near.Freq-f) <= math.Abs(up.Freq-f)+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
