// Package dvfs models Dynamic Voltage and Frequency Scaling gear sets.
//
// A gear is a frequency/voltage pair. The paper (§3.3) studies two continuous
// sets (unlimited: 0–2.3 GHz; limited: 0.8–2.3 GHz), discrete evenly
// distributed sets with 2–15 gears, and "exponential" sets with 3–7 gears in
// which the gap between adjacent frequencies halves toward the top. Voltages
// follow a linear DVFS scenario through (0.8 GHz, 1.0 V) and (2.3 GHz,
// 1.5 V); the over-clock gear (2.6 GHz, 1.6 V) lies on the same line.
package dvfs

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Nominal platform constants from the paper (§3.3).
const (
	// FMin is the lowest frequency of the limited sets, in GHz.
	FMin = 0.8
	// FMax is the manufacturer-specified top frequency, in GHz.
	FMax = 2.3
	// VMin is the supply voltage at FMin, in volts.
	VMin = 1.0
	// VMax is the supply voltage at FMax, in volts.
	VMax = 1.5
	// OverclockFreq and OverclockVolt are the additional gear added to the
	// discrete six-gear set for the AVG algorithm (§5.3.6).
	OverclockFreq = 2.6
	OverclockVolt = 1.6
)

// ErrEmptySet reports construction of a discrete set without gears.
var ErrEmptySet = errors.New("dvfs: gear set must contain at least one gear")

// Voltage returns the supply voltage of frequency f (GHz) under the linear
// DVFS scenario determined by (FMin, VMin) and (FMax, VMax). The line is
// extrapolated below FMin (for the unlimited continuous set) and above FMax
// (for over-clocking): Voltage(2.6) = 1.6 V, matching the paper's extra gear.
func Voltage(f float64) float64 {
	return VMin + (f-FMin)*(VMax-VMin)/(FMax-FMin)
}

// Gear is one frequency/voltage operating point.
type Gear struct {
	Freq float64 // GHz
	Volt float64 // V
}

// GearAt builds the gear for frequency f using the linear voltage model.
func GearAt(f float64) Gear { return Gear{Freq: f, Volt: Voltage(f)} }

// String renders the gear as "1.40GHz@1.20V".
func (g Gear) String() string {
	return fmt.Sprintf("%.2fGHz@%.2fV", g.Freq, g.Volt)
}

// Set is a DVFS gear set: either continuous over a frequency range or a
// discrete list of gears. The zero value is not useful; use a constructor.
type Set struct {
	name       string
	continuous bool
	min, max   float64 // continuous range bounds (GHz)
	gears      []Gear  // discrete gears, ascending by frequency
}

// ContinuousUnlimited returns the paper's unlimited continuous set:
// frequencies from (almost) 0 to 2.3 GHz.
func ContinuousUnlimited() *Set {
	return &Set{name: "continuous-unlimited", continuous: true, min: 0, max: FMax}
}

// ContinuousLimited returns the paper's limited continuous set:
// frequencies from 0.8 to 2.3 GHz.
func ContinuousLimited() *Set {
	return &Set{name: "continuous-limited", continuous: true, min: FMin, max: FMax}
}

// Continuous returns a continuous set over [min, max] GHz.
func Continuous(name string, min, max float64) (*Set, error) {
	if min < 0 || max <= min {
		return nil, fmt.Errorf("dvfs: invalid continuous range [%v, %v]", min, max)
	}
	return &Set{name: name, continuous: true, min: min, max: max}, nil
}

// Uniform returns the evenly distributed discrete set with n gears between
// FMin and FMax inclusive (§3.3, Table 1 shows n = 6). n must be ≥ 2.
func Uniform(n int) (*Set, error) {
	if n < 2 {
		return nil, fmt.Errorf("dvfs: uniform set needs at least 2 gears, got %d", n)
	}
	gears := make([]Gear, n)
	step := (FMax - FMin) / float64(n-1)
	for i := range gears {
		gears[i] = GearAt(FMin + float64(i)*step)
	}
	// Pin the endpoints exactly to avoid accumulation error.
	gears[0] = GearAt(FMin)
	gears[n-1] = GearAt(FMax)
	return &Set{name: fmt.Sprintf("uniform-%d", n), gears: gears}, nil
}

// Exponential returns the exponentially distributed discrete set with n
// gears: the difference between adjacent frequencies halves toward the top,
// so most gears sit near FMax (§5.3.2, Table 2 shows n = 6). n must be ≥ 2.
//
// With gaps g, g/2, g/4, … summing to FMax − FMin, the n = 6 set is
// 0.8, 1.57, 1.96, 2.15, 2.25, 2.3 GHz — the paper's Table 2.
func Exponential(n int) (*Set, error) {
	if n < 2 {
		return nil, fmt.Errorf("dvfs: exponential set needs at least 2 gears, got %d", n)
	}
	// Sum of the n−1 gaps: g·(1 + 1/2 + … + 1/2^(n−2)) = g·(2 − 2^(2−n)).
	span := FMax - FMin
	g := span / (2 - math.Pow(2, float64(2-n)))
	gears := make([]Gear, n)
	f := FMin
	for i := 0; i < n; i++ {
		gears[i] = GearAt(f)
		f += g / math.Pow(2, float64(i))
	}
	gears[0] = GearAt(FMin)
	gears[n-1] = GearAt(FMax)
	return &Set{name: fmt.Sprintf("exponential-%d", n), gears: gears}, nil
}

// FromGears builds a discrete set from explicit gears (any order).
func FromGears(name string, gears []Gear) (*Set, error) {
	if len(gears) == 0 {
		return nil, ErrEmptySet
	}
	gs := make([]Gear, len(gears))
	copy(gs, gears)
	sort.Slice(gs, func(i, j int) bool { return gs[i].Freq < gs[j].Freq })
	for i, g := range gs {
		if g.Freq <= 0 {
			return nil, fmt.Errorf("dvfs: gear %d has non-positive frequency %v", i, g.Freq)
		}
	}
	return &Set{name: name, gears: gs}, nil
}

// WithOverclockGear returns a copy of a discrete set extended with one extra
// gear (the paper adds 2.6 GHz / 1.6 V to the uniform six-gear set for AVG).
// It is an error to call it on a continuous set.
func (s *Set) WithOverclockGear(g Gear) (*Set, error) {
	if s.continuous {
		return nil, fmt.Errorf("dvfs: cannot add a discrete gear to continuous set %q (use ScaleMax)", s.name)
	}
	out, err := FromGears(s.name+"+oc", append(append([]Gear{}, s.gears...), g))
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ScaleMax returns a copy of a continuous set whose upper bound is multiplied
// by factor (e.g. 1.10 for 10 % over-clocking, §5.3.6). It is an error to
// call it on a discrete set.
func (s *Set) ScaleMax(factor float64) (*Set, error) {
	if !s.continuous {
		return nil, fmt.Errorf("dvfs: ScaleMax applies to continuous sets, %q is discrete", s.name)
	}
	if factor <= 0 {
		return nil, fmt.Errorf("dvfs: invalid scale factor %v", factor)
	}
	return &Set{
		name:       fmt.Sprintf("%s+oc%.0f%%", s.name, (factor-1)*100),
		continuous: true,
		min:        s.min,
		max:        s.max * factor,
	}, nil
}

// Name returns a short identifier such as "uniform-6".
func (s *Set) Name() string { return s.name }

// Continuous reports whether the set is a continuous frequency range.
func (s *Set) Continuous() bool { return s.continuous }

// Size returns the number of discrete gears, or 0 for continuous sets.
func (s *Set) Size() int { return len(s.gears) }

// Gears returns a copy of the discrete gears (nil for continuous sets).
func (s *Set) Gears() []Gear {
	if s.continuous {
		return nil
	}
	out := make([]Gear, len(s.gears))
	copy(out, s.gears)
	return out
}

// Top returns the highest gear in the set.
func (s *Set) Top() Gear {
	if s.continuous {
		return GearAt(s.max)
	}
	return s.gears[len(s.gears)-1]
}

// Bottom returns the lowest gear in the set.
func (s *Set) Bottom() Gear {
	if s.continuous {
		return GearAt(s.min)
	}
	return s.gears[0]
}

// Quantize maps a desired frequency onto the set following the paper's rule:
// "the new frequency is the closest higher frequency from the gear set than
// the frequency that should be assigned according to the algorithm".
// Frequencies above the set's top clamp to the top gear; +Inf clamps to top.
// Frequencies at or below the bottom return the bottom gear for limited sets
// (and the desired frequency itself for continuous sets whose range reaches
// that low).
func (s *Set) Quantize(f float64) Gear {
	if math.IsInf(f, 1) || f >= s.Top().Freq {
		return s.Top()
	}
	if s.continuous {
		if f <= s.min {
			return s.Bottom()
		}
		return GearAt(f)
	}
	// First gear with Freq >= f (gears are ascending).
	i := sort.Search(len(s.gears), func(i int) bool { return s.gears[i].Freq >= f })
	if i == len(s.gears) {
		return s.Top()
	}
	return s.gears[i]
}

// QuantizeDown maps a frequency ceiling onto the fastest operating point of
// the set at or below it, clamping to the bottom gear when even that
// exceeds the ceiling. It is the quantizer for per-rank frequency caps on
// heterogeneous machines: a rank whose silicon tops out at f must not be
// assigned a gear above f.
func (s *Set) QuantizeDown(f float64) Gear {
	if s.continuous {
		if f >= s.max {
			return s.Top()
		}
		if f <= s.min {
			return s.Bottom()
		}
		return GearAt(f)
	}
	// First gear with Freq > f; its predecessor is the fastest gear ≤ f.
	i := sort.Search(len(s.gears), func(i int) bool { return s.gears[i].Freq > f })
	if i == 0 {
		return s.gears[0]
	}
	return s.gears[i-1]
}

// QuantizeNearest maps a desired frequency onto the nearest gear of the set
// (by absolute frequency distance), clamping outside the range. Unlike the
// paper's closest-higher rule (Quantize), this can pick a slower gear and
// therefore lengthen the balanced computation beyond the target — it exists
// as an ablation of the rounding rule (DESIGN.md §5).
func (s *Set) QuantizeNearest(f float64) Gear {
	if math.IsInf(f, 1) || f >= s.Top().Freq {
		return s.Top()
	}
	if s.continuous {
		if f <= s.min {
			return s.Bottom()
		}
		return GearAt(f)
	}
	i := sort.Search(len(s.gears), func(i int) bool { return s.gears[i].Freq >= f })
	if i == len(s.gears) {
		return s.Top()
	}
	if i == 0 {
		return s.gears[0]
	}
	if s.gears[i].Freq-f < f-s.gears[i-1].Freq {
		return s.gears[i]
	}
	return s.gears[i-1]
}

// Contains reports whether frequency f is an operating point of the set
// (within a small tolerance for discrete sets).
func (s *Set) Contains(f float64) bool {
	if s.continuous {
		return f >= s.min && f <= s.max
	}
	for _, g := range s.gears {
		if math.Abs(g.Freq-f) < 1e-9 {
			return true
		}
	}
	return false
}

// String renders the set for reports: name plus the gear list or range.
func (s *Set) String() string {
	if s.continuous {
		return fmt.Sprintf("%s [%.2f–%.2f GHz]", s.name, s.min, s.max)
	}
	parts := make([]string, len(s.gears))
	for i, g := range s.gears {
		parts[i] = g.String()
	}
	return fmt.Sprintf("%s {%s}", s.name, strings.Join(parts, ", "))
}
