package power

import (
	"math"
	"testing"

	"repro/internal/dimemas"
	"repro/internal/dvfs"
)

// twoRankFixture is the hand-computed profile case: rank 0 computes for 2 s
// then communicates 1 s; rank 1 computes 1 s and is blocked/idle for the
// remaining 2 s (left as a timeline gap on purpose — gaps must count as
// communication-phase power, exactly like the energy accounting).
func twoRankFixture(t *testing.T) (*Model, [][]dimemas.Segment, []dvfs.Gear) {
	t.Helper()
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	timelines := [][]dimemas.Segment{
		{
			{Start: 0, End: 2, State: dimemas.StateCompute},
			{Start: 2, End: 3, State: dimemas.StateComm},
		},
		{
			{Start: 0, End: 1, State: dimemas.StateCompute},
		},
	}
	gears := []dvfs.Gear{dvfs.GearAt(dvfs.FMax), dvfs.GearAt(dvfs.FMin)}
	return m, timelines, gears
}

func TestBuildProfileTwoRanksHandComputed(t *testing.T) {
	m, timelines, gears := twoRankFixture(t)
	p, err := BuildProfile(m, timelines, gears, 3)
	if err != nil {
		t.Fatal(err)
	}

	c0, c1 := m.Power(Compute, gears[0]), m.Power(Compute, gears[1])
	m0, m1 := m.Power(Comm, gears[0]), m.Power(Comm, gears[1])
	want := []ProfileStep{
		{Start: 0, End: 1, Power: c0 + c1}, // both ranks computing
		{Start: 1, End: 2, Power: c0 + m1}, // rank 1 idle from t=1
		{Start: 2, End: 3, Power: m0 + m1}, // rank 0 communicating
	}
	steps := p.Steps()
	if len(steps) != len(want) {
		t.Fatalf("got %d steps %v, want %d", len(steps), steps, len(want))
	}
	for i, w := range want {
		g := steps[i]
		if g.Start != w.Start || g.End != w.End || math.Abs(g.Power-w.Power) > 1e-12 {
			t.Errorf("step %d = %+v, want %+v", i, g, w)
		}
	}

	if got := p.Peak(); math.Abs(got-(c0+c1)) > 1e-12 {
		t.Errorf("peak = %v, want %v", got, c0+c1)
	}
	wantEnergy := (c0+c1)*1 + (c0+m1)*1 + (m0+m1)*1
	if math.Abs(p.Energy()-wantEnergy) > 1e-12 {
		t.Errorf("energy = %v, want %v", p.Energy(), wantEnergy)
	}
	if math.Abs(p.Average()-wantEnergy/3) > 1e-12 {
		t.Errorf("average = %v, want %v", p.Average(), wantEnergy/3)
	}
	if p.Duration() != 3 {
		t.Errorf("duration = %v", p.Duration())
	}

	// Point lookups, including out-of-range times.
	for _, tc := range []struct{ at, want float64 }{
		{0, c0 + c1}, {0.5, c0 + c1}, {1, c0 + m1}, {1.99, c0 + m1},
		{2.5, m0 + m1}, {-0.1, 0}, {3, 0}, {99, 0},
	} {
		if got := p.At(tc.at); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}

	// Exceedance: strictly above the final (lowest) step for 2 s, above the
	// peak for 0 s.
	if got := p.TimeAbove(m0 + m1); math.Abs(got-2) > 1e-12 {
		t.Errorf("TimeAbove(comm floor) = %v, want 2", got)
	}
	if got := p.TimeAbove(p.Peak()); got != 0 {
		t.Errorf("TimeAbove(peak) = %v, want 0", got)
	}
}

// TestProfileEnergyMatchesBreakdown pins the core consistency property: the
// profile integrates to the same CPU energy the per-rank Usage accounting
// produces, so average cluster power is exactly energy/time.
func TestProfileEnergyMatchesBreakdown(t *testing.T) {
	m, timelines, gears := twoRankFixture(t)
	p, err := BuildProfile(m, timelines, gears, 3)
	if err != nil {
		t.Fatal(err)
	}
	usage := []Usage{
		{Gear: gears[0], ComputeTime: 2, CommTime: 1},
		{Gear: gears[1], ComputeTime: 1, CommTime: 2},
	}
	e, err := m.Energy(usage)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Energy()-e) > 1e-9 {
		t.Errorf("profile energy %v != usage energy %v", p.Energy(), e)
	}
}

func TestBuildProfileZeroWidthBurstDoesNotSpike(t *testing.T) {
	m, timelines, gears := twoRankFixture(t)
	// A zero-duration compute record at t=2.5 must cancel, not lift the peak.
	timelines[1] = append(timelines[1], dimemas.Segment{Start: 2.5, End: 2.5, State: dimemas.StateCompute})
	p, err := BuildProfile(m, timelines, gears, 3)
	if err != nil {
		t.Fatal(err)
	}
	c0, c1 := m.Power(Compute, gears[0]), m.Power(Compute, gears[1])
	if math.Abs(p.Peak()-(c0+c1)) > 1e-12 {
		t.Errorf("peak = %v, want %v (zero-width burst must not register)", p.Peak(), c0+c1)
	}
	if len(p.Steps()) != 3 {
		t.Errorf("steps = %v, want 3 merged intervals", p.Steps())
	}
}

func TestBuildProfileValidation(t *testing.T) {
	m, timelines, gears := twoRankFixture(t)
	if _, err := BuildProfile(m, nil, nil, 3); err == nil {
		t.Error("empty timelines should fail")
	}
	if _, err := BuildProfile(m, timelines, gears[:1], 3); err == nil {
		t.Error("gear-count mismatch should fail")
	}
	if _, err := BuildProfile(m, timelines, gears, 0); err == nil {
		t.Error("non-positive horizon should fail")
	}
	if _, err := BuildProfile(m, timelines, gears, 2.5); err == nil {
		t.Error("segment beyond the horizon should fail")
	}
	bad := []dvfs.Gear{{Freq: 0, Volt: 1}, gears[1]}
	if _, err := BuildProfile(m, timelines, bad, 3); err == nil {
		t.Error("invalid gear should fail")
	}
	neg := [][]dimemas.Segment{{{Start: -1, End: 1, State: dimemas.StateCompute}}, nil}
	if _, err := BuildProfile(m, neg, gears, 3); err == nil {
		t.Error("negative segment start should fail")
	}
}
