package power

// Time-resolved cluster power: the paper (and everything built so far)
// accounts *energy*, a time integral. Power-cap scheduling needs the
// integrand — the instantaneous cluster power draw over the run. With one
// gear per rank and the two-phase activity model, each rank's power is a
// two-valued function of time (compute power during computation bursts,
// communication power everywhere else, including blocked and idle-tail
// time, matching the energy accounting in EnergyBreakdown), so the cluster
// total is a step function whose breakpoints are the compute-segment
// boundaries of the replayed timeline.

import (
	"cmp"
	"fmt"
	"slices"
	"sort"

	"repro/internal/dimemas"
	"repro/internal/dvfs"
)

// ProfileStep is one constant-power interval of a cluster power profile.
type ProfileStep struct {
	Start, End float64
	Power      float64 // model units (same scale as Model.Power)
}

// Profile is the cluster's power draw over one replayed execution as a step
// function on [0, Duration]. Build it with BuildProfile; it is immutable
// afterwards.
type Profile struct {
	steps  []ProfileStep // contiguous, non-empty widths, covering [0, end]
	end    float64
	peak   float64
	energy float64
}

// BuildProfile derives the cluster power profile of one replayed execution:
// timelines are the per-rank segments of a dimemas.Result recorded with
// RecordTimeline, gears the per-rank operating points the run was replayed
// at, and until the accounting horizon (normally Result.Time). Every rank
// draws m.Power(Comm, gear) for the whole horizon except during its compute
// segments, where it draws m.Power(Compute, gear) — the same decomposition
// EnergyBreakdown integrates, so Profile.Energy() equals the energy of the
// equivalent Usage rows up to summation order.
func BuildProfile(m *Model, timelines [][]dimemas.Segment, gears []dvfs.Gear, until float64) (*Profile, error) {
	return BuildProfileScaled(m, timelines, gears, nil, until)
}

// BuildProfileScaled is BuildProfile with an optional per-rank power
// multiplier (the capability layer's PowerScale on heterogeneous machines):
// rank r draws scales[r]·Power in both phases. A nil slice means every rank
// is nominal, reproducing BuildProfile bit for bit.
func BuildProfileScaled(m *Model, timelines [][]dimemas.Segment, gears []dvfs.Gear, scales []float64, until float64) (*Profile, error) {
	if len(timelines) == 0 {
		return nil, fmt.Errorf("power: profile needs at least one rank timeline")
	}
	if len(gears) != len(timelines) {
		return nil, fmt.Errorf("power: %d gears for %d rank timelines", len(gears), len(timelines))
	}
	if scales != nil && len(scales) != len(timelines) {
		return nil, fmt.Errorf("power: %d power scales for %d rank timelines", len(scales), len(timelines))
	}
	if until <= 0 {
		return nil, fmt.Errorf("power: profile horizon must be positive, got %v", until)
	}

	// Baseline: every rank communicating for the whole horizon. Compute
	// segments overlay the (computeP − commP) delta; comm segments change
	// nothing, so only compute boundaries become events.
	type event struct {
		t     float64
		delta float64
	}
	nseg := 0
	for _, tl := range timelines {
		nseg += len(tl)
	}
	events := make([]event, 0, 2*nseg)
	base := 0.0
	for r, g := range gears {
		if g.Freq <= 0 || g.Volt <= 0 {
			return nil, fmt.Errorf("power: rank %d has invalid gear %v", r, g)
		}
		k := 1.0
		if scales != nil {
			k = scales[r]
			if k <= 0 || k != k {
				return nil, fmt.Errorf("power: rank %d has invalid power scale %v", r, k)
			}
		}
		base += k * m.Power(Comm, g)
		delta := k * (m.Power(Compute, g) - m.Power(Comm, g))
		for _, seg := range timelines[r] {
			if seg.Start < 0 || seg.End < seg.Start || seg.End > until {
				return nil, fmt.Errorf("power: rank %d has segment [%v, %v] outside [0, %v]", r, seg.Start, seg.End, until)
			}
			if seg.State != dimemas.StateCompute || seg.End == seg.Start {
				continue
			}
			events = append(events, event{seg.Start, delta}, event{seg.End, -delta})
		}
	}
	slices.SortFunc(events, func(a, b event) int { return cmp.Compare(a.t, b.t) })

	p := &Profile{end: until, steps: make([]ProfileStep, 0, len(events)+1)}
	cur := base
	prev := 0.0
	flush := func(to float64) {
		if to > prev {
			p.steps = append(p.steps, ProfileStep{Start: prev, End: to, Power: cur})
			p.energy += cur * (to - prev)
			if cur > p.peak {
				p.peak = cur
			}
			prev = to
		}
	}
	for i := 0; i < len(events); {
		t := events[i].t
		flush(t)
		// Apply every event at this breakpoint before emitting the next
		// step, so zero-width bursts cancel instead of spiking.
		for ; i < len(events) && events[i].t == t; i++ {
			cur += events[i].delta
		}
	}
	flush(until)
	return p, nil
}

// Duration returns the profile's horizon.
func (p *Profile) Duration() float64 { return p.end }

// Peak returns the maximum instantaneous cluster power.
func (p *Profile) Peak() float64 { return p.peak }

// Energy returns the integral of the profile over its horizon.
func (p *Profile) Energy() float64 { return p.energy }

// Average returns the time-averaged cluster power (energy / duration).
func (p *Profile) Average() float64 { return p.energy / p.end }

// Steps returns a copy of the step function (for rendering and tests).
func (p *Profile) Steps() []ProfileStep {
	out := make([]ProfileStep, len(p.steps))
	copy(out, p.steps)
	return out
}

// At returns the cluster power at time t; times outside [0, Duration)
// return 0 (the cluster draws nothing outside the accounted run, and the
// profile is right-open so At(Duration) is already "after the run").
func (p *Profile) At(t float64) float64 {
	if t < 0 || t >= p.end {
		return 0
	}
	i := sort.Search(len(p.steps), func(i int) bool { return p.steps[i].End > t })
	if i == len(p.steps) {
		return 0
	}
	return p.steps[i].Power
}

// TimeAbove returns the total time the cluster draws strictly more than cap
// — the exceedance of an average-mode cap, zero for any peak-mode cap the
// schedule satisfies.
func (p *Profile) TimeAbove(cap float64) float64 {
	var total float64
	for _, s := range p.steps {
		if s.Power > cap {
			total += s.End - s.Start
		}
	}
	return total
}
