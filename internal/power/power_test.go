package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dvfs"
)

func mustNew(t *testing.T, cfg Config) *Model {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"default", DefaultConfig(), false},
		{"zero static", Config{ActivityRatio: 1.5, StaticFraction: 0}, false},
		{"high static", Config{ActivityRatio: 1.5, StaticFraction: 0.9}, false},
		{"ratio below one", Config{ActivityRatio: 0.5, StaticFraction: 0.2}, true},
		{"static one", Config{ActivityRatio: 1.5, StaticFraction: 1}, true},
		{"static negative", Config{ActivityRatio: 1.5, StaticFraction: -0.1}, true},
		{"bad nominal", Config{ActivityRatio: 1.5, StaticFraction: 0.2, Nominal: dvfs.Gear{Freq: -1, Volt: 1}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.cfg)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestCalibration(t *testing.T) {
	// At the nominal gear while computing, the static share must equal the
	// configured fraction exactly (this is how the paper fixes α, §3.2).
	for _, s := range []float64{0, 0.1, 0.2, 0.5, 0.7, 0.9} {
		m := mustNew(t, Config{ActivityRatio: 1.5, StaticFraction: s})
		if got := m.StaticShareAtNominal(); math.Abs(got-s) > 1e-12 {
			t.Errorf("static fraction %v: calibrated share = %v", s, got)
		}
	}
}

func TestDynamicPowerFollowsFV2(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	g1 := dvfs.GearAt(2.3) // 1.5 V
	g2 := dvfs.GearAt(0.8) // 1.0 V
	// Ratio of dynamic powers = (f1·V1²)/(f2·V2²).
	want := (2.3 * 1.5 * 1.5) / (0.8 * 1.0 * 1.0)
	got := m.Dynamic(Compute, g1) / m.Dynamic(Compute, g2)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("dynamic power ratio = %v, want %v", got, want)
	}
}

func TestActivityRatio(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	g := dvfs.GearAt(1.4)
	got := m.Dynamic(Compute, g) / m.Dynamic(Comm, g)
	if math.Abs(got-1.5) > 1e-12 {
		t.Errorf("activity ratio = %v, want 1.5", got)
	}
}

func TestStaticLinearInVoltage(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	s1 := m.Static(dvfs.Gear{Freq: 1, Volt: 1.0})
	s2 := m.Static(dvfs.Gear{Freq: 1, Volt: 1.5})
	if math.Abs(s2/s1-1.5) > 1e-12 {
		t.Errorf("static power not linear in V: %v vs %v", s1, s2)
	}
}

func TestEnergyAccounting(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	g := dvfs.GearAt(2.3)
	u := []Usage{{Gear: g, ComputeTime: 2, CommTime: 1}}
	b, err := m.EnergyBreakdown(u)
	if err != nil {
		t.Fatal(err)
	}
	wantDynComp := m.Dynamic(Compute, g) * 2
	wantDynComm := m.Dynamic(Comm, g) * 1
	wantStatic := m.Static(g) * 3
	if math.Abs(b.DynamicCompute-wantDynComp) > 1e-12 ||
		math.Abs(b.DynamicComm-wantDynComm) > 1e-12 ||
		math.Abs(b.Static-wantStatic) > 1e-12 {
		t.Errorf("breakdown = %+v", b)
	}
	e, err := m.Energy(u)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-b.Total()) > 1e-12 {
		t.Errorf("Energy %v != breakdown total %v", e, b.Total())
	}
}

func TestEnergyValidation(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	if _, err := m.Energy([]Usage{{Gear: dvfs.GearAt(2.3), ComputeTime: -1}}); err == nil {
		t.Error("negative compute time should error")
	}
	if _, err := m.Energy([]Usage{{Gear: dvfs.Gear{}, ComputeTime: 1}}); err == nil {
		t.Error("zero gear should error")
	}
	if e, err := m.Energy(nil); err != nil || e != 0 {
		t.Errorf("empty usage: e=%v err=%v", e, err)
	}
}

func TestPhaseString(t *testing.T) {
	if Compute.String() != "compute" || Comm.String() != "comm" {
		t.Error("phase strings wrong")
	}
	if Phase(9).String() == "" {
		t.Error("unknown phase should still render")
	}
}

// The headline mechanism of the paper: running a lightly loaded rank at a
// lower gear while it would otherwise idle at the top gear must save energy
// under the baseline configuration.
func TestLowerGearSavesEnergy(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	total := 10.0
	// Original: compute 5s at top, wait 5s at top.
	orig := []Usage{{Gear: dvfs.GearAt(2.3), ComputeTime: 5, CommTime: 5}}
	// Balanced: compute stretched to 10s at 0.8 GHz (β=1 would give exactly
	// this shape; the precise stretch does not matter for the comparison).
	slow := []Usage{{Gear: dvfs.GearAt(0.8), ComputeTime: total, CommTime: 0}}
	e0, err := m.Energy(orig)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := m.Energy(slow)
	if err != nil {
		t.Fatal(err)
	}
	if e1 >= e0 {
		t.Errorf("slow gear should save energy: %v >= %v", e1, e0)
	}
}

// Property: power is strictly increasing in frequency along the DVFS voltage
// line, in both phases.
func TestPowerMonotonicProperty(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	prop := func(f1Raw, f2Raw float64) bool {
		f1 := 0.4 + math.Mod(math.Abs(f1Raw), 2.2)
		f2 := 0.4 + math.Mod(math.Abs(f2Raw), 2.2)
		if f1 == f2 {
			return true
		}
		lo, hi := math.Min(f1, f2), math.Max(f1, f2)
		return m.Power(Compute, dvfs.GearAt(lo)) < m.Power(Compute, dvfs.GearAt(hi)) &&
			m.Power(Comm, dvfs.GearAt(lo)) < m.Power(Comm, dvfs.GearAt(hi))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: energy is additive across usage rows.
func TestEnergyAdditiveProperty(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	prop := func(c1, w1, c2, w2 float64) bool {
		u1 := Usage{Gear: dvfs.GearAt(1.4), ComputeTime: math.Abs(math.Mod(c1, 10)), CommTime: math.Abs(math.Mod(w1, 10))}
		u2 := Usage{Gear: dvfs.GearAt(2.0), ComputeTime: math.Abs(math.Mod(c2, 10)), CommTime: math.Abs(math.Mod(w2, 10))}
		eBoth, err1 := m.Energy([]Usage{u1, u2})
		eA, err2 := m.Energy([]Usage{u1})
		eB, err3 := m.Energy([]Usage{u2})
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return math.Abs(eBoth-(eA+eB)) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: raising the static fraction raises normalized energy of a
// DVFS-scaled run (static power cannot be scaled away by slowing down) —
// the trend behind Figure 6.
func TestStaticFractionReducesSavingsProperty(t *testing.T) {
	usageAt := func(m *Model) (orig, slow float64) {
		o := []Usage{{Gear: dvfs.GearAt(2.3), ComputeTime: 5, CommTime: 5}}
		sl := []Usage{{Gear: dvfs.GearAt(0.8), ComputeTime: 10, CommTime: 0}}
		e0, err := m.Energy(o)
		if err != nil {
			panic(err)
		}
		e1, err := m.Energy(sl)
		if err != nil {
			panic(err)
		}
		return e0, e1
	}
	prev := -1.0
	for _, s := range []float64{0, 0.2, 0.4, 0.6, 0.8} {
		m := mustNew(t, Config{ActivityRatio: 1.5, StaticFraction: s})
		e0, e1 := usageAt(m)
		norm := e1 / e0
		if norm <= prev {
			t.Errorf("normalized energy should grow with static fraction: s=%v norm=%v prev=%v", s, norm, prev)
		}
		prev = norm
	}
}
