// Package power implements the paper's CPU power model (§3.2) and the energy
// accounting used by every experiment.
//
// Dynamic power: P_dyn = A·C·f·V² (eq. 1), where the activity factor A
// differs between computation and communication phases; the paper assumes a
// computation/communication activity ratio of 1.5 and sweeps 1.5–3.0 in
// §5.3.5.
//
// Static power: P_static = α·V (eq. 2). α is calibrated so that static power
// is a configured fraction (default 20 %) of total CPU power when the CPU
// computes at the nominal top gear; §5.3.4 sweeps the fraction 0–90 %.
//
// Absolute watts are arbitrary (the paper reports only normalized energy), so
// the model normalizes A_comm·C = 1 and everything cancels in the ratios.
package power

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dvfs"
)

// Defaults from the paper's baseline configuration.
const (
	DefaultActivityRatio  = 1.5
	DefaultStaticFraction = 0.20
)

// Phase distinguishes what the CPU is doing for activity-factor purposes.
type Phase int

const (
	// Compute is a computation burst (high activity factor).
	Compute Phase = iota
	// Comm is communication or blocked-in-MPI time (low activity factor).
	Comm
)

func (p Phase) String() string {
	switch p {
	case Compute:
		return "compute"
	case Comm:
		return "comm"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Config parameterizes a power model.
type Config struct {
	// ActivityRatio is A_compute / A_communication (≥ 1 in practice).
	ActivityRatio float64
	// StaticFraction is the share of static power in total CPU power when
	// computing at the nominal gear, in [0, 1).
	StaticFraction float64
	// Nominal is the calibration gear; zero value means (FMax, V(FMax)).
	Nominal dvfs.Gear
}

// DefaultConfig returns the paper's baseline: ratio 1.5, static 20 %,
// nominal gear (2.3 GHz, 1.5 V).
func DefaultConfig() Config {
	return Config{
		ActivityRatio:  DefaultActivityRatio,
		StaticFraction: DefaultStaticFraction,
		Nominal:        dvfs.GearAt(dvfs.FMax),
	}
}

// Model computes CPU power and energy. Create with New.
type Model struct {
	cfg   Config
	aComp float64 // activity factor during computation (A_comm ≡ 1)
	alpha float64 // static power coefficient
}

var (
	// ErrBadRatio reports an activity ratio below 1 or non-finite.
	ErrBadRatio = errors.New("power: activity ratio must be >= 1")
	// ErrBadStatic reports a static fraction outside [0, 1).
	ErrBadStatic = errors.New("power: static fraction must be in [0, 1)")
)

// New builds and calibrates a model.
func New(cfg Config) (*Model, error) {
	if cfg.Nominal.Freq == 0 {
		cfg.Nominal = dvfs.GearAt(dvfs.FMax)
	}
	if cfg.ActivityRatio < 1 || math.IsNaN(cfg.ActivityRatio) || math.IsInf(cfg.ActivityRatio, 0) {
		return nil, fmt.Errorf("%w (got %v)", ErrBadRatio, cfg.ActivityRatio)
	}
	if cfg.StaticFraction < 0 || cfg.StaticFraction >= 1 || math.IsNaN(cfg.StaticFraction) {
		return nil, fmt.Errorf("%w (got %v)", ErrBadStatic, cfg.StaticFraction)
	}
	if cfg.Nominal.Freq <= 0 || cfg.Nominal.Volt <= 0 {
		return nil, fmt.Errorf("power: invalid nominal gear %v", cfg.Nominal)
	}
	m := &Model{cfg: cfg, aComp: cfg.ActivityRatio}
	// Calibrate α: static = s · (static + dynamic_compute) at the nominal
	// gear ⇒ α·V = s/(1−s) · A_comp·f·V².
	dyn := m.aComp * cfg.Nominal.Freq * cfg.Nominal.Volt * cfg.Nominal.Volt
	s := cfg.StaticFraction
	m.alpha = s / (1 - s) * dyn / cfg.Nominal.Volt
	return m, nil
}

// Config returns the configuration the model was built from.
func (m *Model) Config() Config { return m.cfg }

// Alpha returns the calibrated static-power coefficient (for reports/tests).
func (m *Model) Alpha() float64 { return m.alpha }

// Dynamic returns the dynamic power A·C·f·V² in model units.
func (m *Model) Dynamic(p Phase, g dvfs.Gear) float64 {
	a := 1.0
	if p == Compute {
		a = m.aComp
	}
	return a * g.Freq * g.Volt * g.Volt
}

// Static returns the static power α·V in model units.
func (m *Model) Static(g dvfs.Gear) float64 { return m.alpha * g.Volt }

// Power returns total (dynamic + static) power in phase p at gear g.
func (m *Model) Power(p Phase, g dvfs.Gear) float64 {
	return m.Dynamic(p, g) + m.Static(g)
}

// Usage describes one CPU's activity over a run: the gear it was pinned to,
// how long it computed, and how long it communicated or waited. The paper
// assigns one gear per process for the whole execution, so a single Usage
// row per rank suffices.
type Usage struct {
	Gear        dvfs.Gear
	ComputeTime float64 // seconds spent in computation at Gear
	CommTime    float64 // seconds spent communicating / blocked in MPI
	// Scale multiplies this CPU's modeled power draw — the capability
	// layer's per-rank multiplier (dimemas.Capability.PowerScale) for
	// heterogeneous machines. The zero value means nominal (×1), so
	// homogeneous accounting is unchanged.
	Scale float64
}

// Total returns the wall time covered by the usage row.
func (u Usage) Total() float64 { return u.ComputeTime + u.CommTime }

// Breakdown splits an energy total into its components.
type Breakdown struct {
	DynamicCompute float64
	DynamicComm    float64
	Static         float64
}

// Total returns the summed energy of the breakdown.
func (b Breakdown) Total() float64 { return b.DynamicCompute + b.DynamicComm + b.Static }

// Energy returns the total CPU energy of a set of per-rank usages.
func (m *Model) Energy(usages []Usage) (float64, error) {
	b, err := m.EnergyBreakdown(usages)
	if err != nil {
		return 0, err
	}
	return b.Total(), nil
}

// EnergyBreakdown integrates power over every usage row, split by component.
func (m *Model) EnergyBreakdown(usages []Usage) (Breakdown, error) {
	var b Breakdown
	for i, u := range usages {
		if u.ComputeTime < 0 || u.CommTime < 0 {
			return Breakdown{}, fmt.Errorf("power: rank %d has negative time (%v compute, %v comm)", i, u.ComputeTime, u.CommTime)
		}
		if u.Gear.Freq <= 0 || u.Gear.Volt <= 0 {
			return Breakdown{}, fmt.Errorf("power: rank %d has invalid gear %v", i, u.Gear)
		}
		k := u.Scale
		if k == 0 {
			k = 1
		}
		if k < 0 || math.IsNaN(k) || math.IsInf(k, 0) {
			return Breakdown{}, fmt.Errorf("power: rank %d has invalid power scale %v", i, u.Scale)
		}
		b.DynamicCompute += k * m.Dynamic(Compute, u.Gear) * u.ComputeTime
		b.DynamicComm += k * m.Dynamic(Comm, u.Gear) * u.CommTime
		b.Static += k * m.Static(u.Gear) * u.Total()
	}
	return b, nil
}

// StaticShareAtNominal returns static/(static+dynamic) power while computing
// at the nominal gear; by construction it equals Config.StaticFraction.
// Exposed for calibration tests.
func (m *Model) StaticShareAtNominal() float64 {
	g := m.cfg.Nominal
	st := m.Static(g)
	return st / (st + m.Dynamic(Compute, g))
}
