package phased

import (
	"errors"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/trace"
	"repro/internal/workload"
)

// twoPhaseTrace builds an anti-correlated two-phase application: in phase A
// rank 0 is critical, in phase B rank 3 is. Totals are perfectly balanced,
// so a single per-process setting can do nothing — yet each phase wastes
// half its time waiting.
func twoPhaseTrace(iters int) *trace.Trace {
	tr := trace.New("antiphase", 4)
	a := []float64{1.0, 0.5, 0.5, 0.5}
	b := []float64{0.5, 1.0, 1.0, 1.0}
	for it := 0; it < iters; it++ {
		for r := 0; r < 4; r++ {
			tr.Add(r, trace.Compute(a[r]), trace.Coll(trace.CollBarrier, 0))
			tr.Add(r, trace.Compute(b[r]), trace.Coll(trace.CollBarrier, 0), trace.IterMark())
		}
	}
	return tr
}

func TestValidation(t *testing.T) {
	six, _ := dvfs.Uniform(6)
	if _, err := Run(Config{Set: six}); err == nil {
		t.Error("nil trace should fail")
	}
	if _, err := Run(Config{Trace: twoPhaseTrace(1)}); err == nil {
		t.Error("nil set should fail")
	}
	empty := trace.New("x", 2)
	empty.Add(0, trace.Coll(trace.CollBarrier, 0))
	empty.Add(1, trace.Coll(trace.CollBarrier, 0))
	if _, err := Run(Config{Trace: empty, Set: six}); !errors.Is(err, ErrNoPhases) {
		t.Errorf("no phases: %v", err)
	}
	if _, err := Run(Config{Trace: twoPhaseTrace(1), Set: six, Beta: 3}); err == nil {
		t.Error("bad beta should fail")
	}
}

func TestDetectsPhases(t *testing.T) {
	res, err := Run(Config{Trace: twoPhaseTrace(3), Set: dvfs.ContinuousUnlimited()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases != 2 {
		t.Fatalf("phases = %d, want 2", res.Phases)
	}
	// Phase A: rank 0 critical (fmax), others reduced. Phase B mirrored.
	if res.Gears[0][0].Freq != dvfs.FMax {
		t.Errorf("phase A rank 0 = %v", res.Gears[0][0])
	}
	if res.Gears[0][1].Freq >= dvfs.FMax {
		t.Errorf("phase A rank 1 = %v, want reduced", res.Gears[0][1])
	}
	if res.Gears[1][0].Freq >= dvfs.FMax {
		t.Errorf("phase B rank 0 = %v, want reduced", res.Gears[1][0])
	}
	if res.Gears[1][1].Freq != dvfs.FMax {
		t.Errorf("phase B rank 1 = %v", res.Gears[1][1])
	}
}

// On the anti-correlated trace, per-process MAX is blind (totals are
// balanced) while per-phase MAX balances each phase and saves real energy
// at unchanged execution time.
func TestPerPhaseBeatsPerProcessOnAntiCorrelatedPhases(t *testing.T) {
	tr := twoPhaseTrace(3)
	six, _ := dvfs.Uniform(6)

	perProcess, err := analysis.Run(analysis.Config{Trace: tr, Set: six, Algorithm: core.MAX})
	if err != nil {
		t.Fatal(err)
	}
	perPhase, err := Run(Config{Trace: tr, Set: six})
	if err != nil {
		t.Fatal(err)
	}
	// Per-process: totals are perfectly balanced → every rank at fmax →
	// no savings at all.
	if perProcess.Norm.Energy < 0.999 {
		t.Errorf("per-process energy %v, want ~1 (blind to phases)", perProcess.Norm.Energy)
	}
	// Per-phase: each phase has LB 62.5% → real savings.
	if perPhase.Norm.Energy > 0.90 {
		t.Errorf("per-phase energy %v, want substantial savings", perPhase.Norm.Energy)
	}
	// Critical path preserved within the gear-quantization margin.
	if perPhase.Norm.Time > 1.01 {
		t.Errorf("per-phase time %v, want ~1", perPhase.Norm.Time)
	}
}

// PEPC-128 is the paper's problem child: MAX inflates its execution time.
// Per-phase assignment repairs it.
func TestPerPhaseFixesPEPC(t *testing.T) {
	inst, err := workload.FindInstance("PEPC-128")
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig()
	cfg.Iterations = 5
	cfg.SkipPECalibration = true
	tr, err := workload.Generate(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	six, _ := dvfs.Uniform(6)

	perProcess, err := analysis.Run(analysis.Config{Trace: tr, Set: six, Algorithm: core.MAX})
	if err != nil {
		t.Fatal(err)
	}
	perPhase, err := Run(Config{Trace: tr, Set: six})
	if err != nil {
		t.Fatal(err)
	}
	if perProcess.Norm.Time < 1.05 {
		t.Fatalf("per-process PEPC time %v: expected the paper's inflation", perProcess.Norm.Time)
	}
	if perPhase.Norm.Time > 1.02 {
		t.Errorf("per-phase PEPC time %v, want ~1", perPhase.Norm.Time)
	}
	if perPhase.Norm.Energy >= 1 {
		t.Errorf("per-phase PEPC energy %v, want savings", perPhase.Norm.Energy)
	}
}

func TestSinglePhaseMatchesPerProcess(t *testing.T) {
	// With one compute phase per iteration, per-phase and per-process MAX
	// are the same algorithm; energies must agree closely (only the comm
	// attribution differs, and with one phase it is identical).
	tr := trace.New("onephase", 4)
	loads := []float64{1.0, 0.3, 0.6, 0.8}
	for it := 0; it < 3; it++ {
		for r := 0; r < 4; r++ {
			tr.Add(r, trace.Compute(loads[r]), trace.Coll(trace.CollBarrier, 0), trace.IterMark())
		}
	}
	six, _ := dvfs.Uniform(6)
	perProcess, err := analysis.Run(analysis.Config{Trace: tr, Set: six, Algorithm: core.MAX})
	if err != nil {
		t.Fatal(err)
	}
	perPhase, err := Run(Config{Trace: tr, Set: six})
	if err != nil {
		t.Fatal(err)
	}
	if perPhase.Phases != 1 {
		t.Fatalf("phases = %d", perPhase.Phases)
	}
	diff := perPhase.Norm.Energy - perProcess.Norm.Energy
	if diff < -1e-9 || diff > 1e-9 {
		t.Errorf("single-phase energies differ: per-phase %v vs per-process %v",
			perPhase.Norm.Energy, perProcess.Norm.Energy)
	}
}

func TestPhaseComputeTimesHelper(t *testing.T) {
	tr := twoPhaseTrace(2)
	phases := tr.PhaseComputeTimes()
	if len(phases) != 2 {
		t.Fatalf("%d phases", len(phases))
	}
	// Two iterations: rank 0 phase A total = 2.0, phase B total = 1.0.
	if phases[0][0] != 2.0 || phases[1][0] != 1.0 {
		t.Errorf("rank 0 phase totals = %v, %v", phases[0][0], phases[1][0])
	}
}
