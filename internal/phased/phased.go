// Package phased implements the per-phase DVFS extension the paper points
// at in its PEPC discussion: "Such an increase in time for PEPC is due to
// two major computation phases with different load imbalance in one
// iteration, while only a single DVFS setting is used."
//
// Instead of one gear per process for the whole run, the per-phase MAX
// algorithm assigns one gear per (process, computation phase): each phase
// is balanced to its own maximum, so applications with anti-correlated
// phases (PEPC) keep their critical path intact.
//
// Energy accounting note: computation energy is exact (each phase's burst
// runs at its assigned gear). Communication/wait energy is attributed at
// the compute-time-weighted mix of the rank's phase gears, because the
// replay engine models one frequency per rank and cannot track the gear a
// CPU idles at between phases; with phases of similar length the
// approximation error is well below one percent of total energy.
package phased

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/timemodel"
	"repro/internal/trace"
)

// Config parameterizes a per-phase analysis run.
type Config struct {
	Trace    *trace.Trace
	Platform dimemas.Platform
	Power    power.Config
	// Set is the available gear set (no over-clocking: the per-phase
	// algorithm is a MAX variant).
	Set  *dvfs.Set
	Beta float64
	// BetaSet marks Beta as explicitly chosen, so an explicit Beta = 0
	// is honored instead of defaulting to 0.5 (see analysis.Config).
	BetaSet bool
	FMax    float64
	// Cache optionally memoizes the original (all-ranks-at-FMax) replay so
	// per-phase studies sharing traces with other pipelines skip it. Nil
	// means uncached.
	Cache *dimemas.ReplayCache
}

// Result reports a per-phase analysis.
type Result struct {
	// Phases is the number of computation phases detected per iteration.
	Phases int
	// Gears is the assignment, indexed [phase][rank].
	Gears [][]dvfs.Gear
	// OrigTime/OrigEnergy describe the all-at-fmax run; Time/Energy the
	// per-phase DVFS run.
	OrigTime, OrigEnergy float64
	Time, Energy         float64
	// Norm holds energy/time/EDP normalized to the original run.
	Norm metrics.Result
}

// ErrNoPhases reports a trace without computation phases.
var ErrNoPhases = errors.New("phased: trace has no computation phases")

func (c *Config) normalize() error {
	if c.Trace == nil {
		return errors.New("phased: config needs a trace")
	}
	if c.Set == nil {
		return core.ErrNilSet
	}
	if c.Platform == (dimemas.Platform{}) {
		c.Platform = dimemas.DefaultPlatform()
	}
	if c.Power == (power.Config{}) {
		c.Power = power.DefaultConfig()
	}
	if c.Beta == 0 && !c.BetaSet {
		c.Beta = timemodel.DefaultBeta
	}
	if c.Beta < 0 || c.Beta > 1 {
		return fmt.Errorf("phased: beta %v outside [0, 1]", c.Beta)
	}
	if c.FMax == 0 {
		c.FMax = dvfs.FMax
	}
	return nil
}

// Run performs the per-phase MAX analysis.
func Run(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	pm, err := power.New(cfg.Power)
	if err != nil {
		return nil, err
	}

	// Original execution at fmax.
	orig, err := cfg.Cache.Original(cfg.Trace, cfg.Platform, dimemas.Options{Beta: cfg.Beta, FMax: cfg.FMax})
	if err != nil {
		return nil, fmt.Errorf("phased: original replay: %w", err)
	}
	nominal := dvfs.GearAt(cfg.FMax)
	n := cfg.Trace.NumRanks()
	origUsage := make([]power.Usage, n)
	for r := 0; r < n; r++ {
		origUsage[r] = power.Usage{Gear: nominal, ComputeTime: orig.Compute[r], CommTime: orig.Comm(r)}
	}
	origEnergy, err := pm.Energy(origUsage)
	if err != nil {
		return nil, err
	}

	// Per-phase MAX assignments.
	phases := cfg.Trace.PhaseComputeTimes()
	if len(phases) == 0 {
		return nil, ErrNoPhases
	}
	balancer := &core.Balancer{Set: cfg.Set, Beta: cfg.Beta, FMax: cfg.FMax}
	gears := make([][]dvfs.Gear, len(phases))
	for p, comp := range phases {
		a, err := balancer.Assign(core.MAX, comp)
		if err != nil {
			return nil, fmt.Errorf("phased: phase %d: %w", p, err)
		}
		gears[p] = a.Gears
	}

	// Rewrite the trace with per-phase slowdowns (the paper's Dimemas
	// tracefile modification, per phase instead of per process), then
	// replay at nominal frequency: the durations already carry the scaling.
	scaled := cfg.Trace.ScaleComputePhased(func(rank, phase int) float64 {
		if phase >= len(gears) {
			phase = len(gears) - 1
		}
		return timemodel.Slowdown(cfg.Beta, cfg.FMax, gears[phase][rank].Freq)
	})
	next, err := dimemas.Simulate(scaled, cfg.Platform, dimemas.Options{Beta: cfg.Beta, FMax: cfg.FMax})
	if err != nil {
		return nil, fmt.Errorf("phased: DVFS replay: %w", err)
	}

	// Energy: per-phase compute at its gear; comm at the compute-weighted
	// gear mix (see package comment).
	perPhaseScaled := scaled.PhaseComputeTimes()
	var energy float64
	for r := 0; r < n; r++ {
		var compTotal float64
		var usages []power.Usage
		for p := range perPhaseScaled {
			ct := perPhaseScaled[p][r]
			usages = append(usages, power.Usage{Gear: gears[p][r], ComputeTime: ct})
			compTotal += ct
		}
		comm := next.Time - compTotal
		if compTotal > 0 {
			for p := range usages {
				usages[p].CommTime = comm * usages[p].ComputeTime / compTotal
			}
		} else if len(usages) > 0 {
			usages[0].CommTime = comm
		}
		e, err := pm.Energy(usages)
		if err != nil {
			return nil, err
		}
		energy += e
	}

	return &Result{
		Phases:     len(phases),
		Gears:      gears,
		OrigTime:   orig.Time,
		OrigEnergy: origEnergy,
		Time:       next.Time,
		Energy:     energy,
		Norm:       metrics.NewResult(origEnergy, orig.Time, energy, next.Time),
	}, nil
}
