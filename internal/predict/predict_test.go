package predict

import (
	"math"
	"testing"

	"repro/internal/workload"
)

// series materializes a drift model as per-iteration load vectors over a
// fixed base shape — the same quantity the rebalance loop observes.
func series(t testing.TB, d workload.Drift, n, iters int) [][]float64 {
	t.Helper()
	factors, err := d.Factors(n, iters)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]float64, iters)
	for i, row := range factors {
		out[i] = make([]float64, n)
		for r, f := range row {
			base := 1 + 0.5*float64(r)/float64(n-1) // ascending base loads
			out[i][r] = base * f
		}
	}
	return out
}

// TestExactIdentityOnConstantSeries pins the package's bit-exactness
// contract: on a drift-free series (DriftNone, no jitter) both models must
// forecast every rank's load exactly — not approximately — so drift-free
// closed loops stay bit-identical to their reactive counterparts.
func TestExactIdentityOnConstantSeries(t *testing.T) {
	const n, iters = 16, 40
	obs := series(t, workload.Drift{Kind: workload.DriftNone}, n, iters)
	for _, kind := range []Kind{KindEWMA, KindLinear} {
		f, err := New(n, Config{Kind: kind, Window: 8, Guard: -1})
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range obs {
			if err := f.Observe(x); err != nil {
				t.Fatal(err)
			}
			got := f.Forecast(nil)
			for r := range got {
				if got[r] != x[r] {
					t.Fatalf("%s: iteration %d rank %d: forecast %v != observation %v (must be bit-identical)",
						kind, i, r, got[r], x[r])
				}
			}
			for _, h := range []int{2, 5} {
				ahead := f.ForecastAhead(h, nil)
				for r := range ahead {
					if ahead[r] != x[r] {
						t.Fatalf("%s: iteration %d rank %d horizon %d: forecast %v != observation %v",
							kind, i, r, h, ahead[r], x[r])
					}
				}
			}
		}
		st := f.Stats()
		if st.ModelErr != 0 || st.NaiveErr != 0 {
			t.Errorf("%s: constant series accumulated error (model %v, naive %v)", kind, st.ModelErr, st.NaiveErr)
		}
		if st.Breaks != 0 {
			t.Errorf("%s: constant series detected %d structural breaks", kind, st.Breaks)
		}
	}
}

// forecastErr scores a forecaster's raw one-step error on a drift series,
// skipping the first skip iterations so differently-sized windows are
// compared on the same scored steps. Returns the mean per-rank absolute
// error normalized by the mean absolute load.
func forecastErr(t *testing.T, cfg Config, obs [][]float64, skip int) float64 {
	t.Helper()
	n := len(obs[0])
	f, err := New(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pred := make([]float64, n)
	var errSum, loadSum float64
	var steps int
	for i, x := range obs {
		if i >= skip {
			for r := range x {
				errSum += math.Abs(pred[r] - x[r])
				loadSum += math.Abs(x[r])
			}
			steps++
		}
		if err := f.Observe(x); err != nil {
			t.Fatal(err)
		}
		f.Forecast(pred)
	}
	if steps == 0 || loadSum == 0 {
		t.Fatal("forecastErr scored nothing")
	}
	return errSum / loadSum
}

// TestLinearErrorBoundedAndMonotoneOnRamp is the accuracy property on the
// forecastable scenario: per-rank loads drift linearly (DriftRamp) under 2%
// jitter, so the linear model's one-step error is pure noise — it must stay
// small, and it must shrink as the fit window grows (more observations
// average more jitter out of the slope). Windows are compared on the same
// scored steps (all past the largest warm-up).
func TestLinearErrorBoundedAndMonotoneOnRamp(t *testing.T) {
	const n, iters, skip = 32, 120, 25
	windows := []int{3, 6, 12, 24}
	for seed := int64(1); seed <= 3; seed++ {
		drift := workload.Drift{Kind: workload.DriftRamp, Magnitude: 0.5, Jitter: 0.02, Seed: seed}
		obs := series(t, drift, n, iters)
		prev := math.Inf(1)
		for _, w := range windows {
			e := forecastErr(t, Config{Kind: KindLinear, Window: w, Guard: -1}, obs, skip)
			if e > 0.05 {
				t.Errorf("seed %d window %d: linear forecast error %.4f above 5%% of mean load", seed, w, e)
			}
			if e >= prev {
				t.Errorf("seed %d: error not monotone improving with window: %.5f (window %d) >= %.5f", seed, e, w, prev)
			}
			prev = e
		}
		// EWMA lags a trend, so it is worse than the trend model here —
		// but still bounded (the ramp moves slowly per iteration).
		if e := forecastErr(t, Config{Kind: KindEWMA, Window: 12, Guard: -1}, obs, skip); e > 0.10 {
			t.Errorf("seed %d: EWMA forecast error %.4f above 10%% of mean load", seed, e)
		}
	}
}

// TestGuardRejectsMartingale checks the fallback guard's reason for
// existing: a random walk's optimal predictor is the last observation, so
// the model must not stay trusted there — while on the trending ramp it
// must leave fallback once warmed up.
func TestGuardRejectsMartingale(t *testing.T) {
	const n, iters = 32, 120
	count := func(d workload.Drift) (fallbacks int) {
		obs := series(t, d, n, iters)
		f, err := New(n, Config{Kind: KindLinear, Window: 12})
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range obs {
			if err := f.Observe(x); err != nil {
				t.Fatal(err)
			}
			if f.FallingBack() {
				fallbacks++
			}
		}
		return fallbacks
	}
	// Walk steps (5% log-scale) dominate the 2% jitter, so the series is a
	// genuine martingale at the observation scale — persistence is optimal
	// and the model must not be trusted for long.
	walk := count(workload.Drift{Kind: workload.DriftWalk, Magnitude: 0.05, Jitter: 0.02, Seed: 7})
	if walk < iters*3/4 {
		t.Errorf("walk: model trusted on a martingale %d of %d iterations", iters-walk, iters)
	}
	ramp := count(workload.Drift{Kind: workload.DriftRamp, Magnitude: 0.5, Jitter: 0.02, Seed: 7})
	if ramp > iters/2 {
		t.Errorf("ramp: model fell back %d of %d iterations on a forecastable trend", ramp, iters)
	}
}

// TestBreakResetOnStep checks the structural-break detector: a mid-series
// level shift (DriftStep) must reset the fit instead of letting a linear
// fit across the discontinuity extrapolate a spurious trend, and the
// post-break forecast must sit near the new level immediately.
func TestBreakResetOnStep(t *testing.T) {
	const n, iters, stepAt = 32, 60, 30
	drift := workload.Drift{Kind: workload.DriftStep, Magnitude: 0.5, Jitter: 0.02, StepAt: stepAt, Seed: 5}
	obs := series(t, drift, n, iters)
	f, err := New(n, Config{Kind: KindLinear, Window: 12, Guard: -1})
	if err != nil {
		t.Fatal(err)
	}
	pred := make([]float64, n)
	for i, x := range obs {
		if err := f.Observe(x); err != nil {
			t.Fatal(err)
		}
		f.Forecast(pred)
		if i == stepAt {
			if f.Stats().Breaks != 1 {
				t.Fatalf("observing the step did not reset the fit (breaks=%d)", f.Stats().Breaks)
			}
			// With the fit reset, the forecast is the post-step observation
			// itself, not a line extrapolated across the jump.
			for r := range pred {
				if math.Abs(pred[r]-x[r]) > 1e-12 {
					t.Fatalf("rank %d: post-break forecast %v, want the post-step observation %v", r, pred[r], x[r])
				}
			}
		}
	}
	if b := f.Stats().Breaks; b != 1 {
		t.Errorf("%d structural breaks over the run, want exactly 1 (the step)", b)
	}
}

// TestKindRoundTrip pins the enum wire names and the count-derived parse
// bound: every valid kind must round-trip through String/ParseKind, so a
// future variant added above kindCount is parseable by construction.
func TestKindRoundTrip(t *testing.T) {
	for k := Kind(0); k <= maxKind; k++ {
		s := k.String()
		got, err := ParseKind(s)
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", s, err)
		}
		if got != k {
			t.Fatalf("round trip %q: got %d want %d", s, got, k)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind accepted an unknown name")
	}
	if _, err := ParseKind("Kind(7)"); err == nil {
		t.Error("ParseKind accepted an out-of-range formatted name")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(0, DefaultConfig()); err == nil {
		t.Error("New accepted zero ranks")
	}
	bad := []Config{
		{Kind: Kind(99)},
		{Kind: KindLinear, Window: 1},
		{Kind: KindLinear, Window: -2},
		{Kind: KindEWMA, Alpha: 1.5},
		{Kind: KindEWMA, Alpha: -0.1},
		{Kind: KindLinear, Guard: math.NaN()},
		{Kind: KindLinear, Guard: math.Inf(1)},
	}
	for _, cfg := range bad {
		if _, err := New(4, cfg); err == nil {
			t.Errorf("New accepted invalid config %+v", cfg)
		}
	}
	f, err := New(4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Observe([]float64{1, 2, 3}); err == nil {
		t.Error("Observe accepted a narrow observation")
	}
	// Before any observation the forecast is all zeros at every horizon.
	for _, v := range f.Forecast(nil) {
		if v != 0 {
			t.Error("pre-observation forecast not zero")
		}
	}
	for _, v := range f.ForecastAhead(4, nil) {
		if v != 0 {
			t.Error("pre-observation horizon forecast not zero")
		}
	}
}
