// Package predict fits per-rank load forecasters over observed iteration
// timings, the anticipation layer of the online rebalancing loop
// (internal/rebalance). The reactive policies wait for imbalance to
// materialize before re-solving gears — by the time the trigger fires, k
// drifted iterations have already run unbalanced. A Forecaster instead
// extrapolates each rank's observed, gear-de-scaled computation load one
// iteration ahead, so the controller can re-solve against where the load is
// *going* and land the new assignment on the iteration the drift arrives.
//
// Two models are provided:
//
//   - KindEWMA — an exponentially weighted moving level per rank
//     (s += α·(x−s)); forecasts flat, filtering transient jitter.
//   - KindLinear — a least-squares line over the last Window observations
//     per rank; forecasts the trend, the right model for progressive drift.
//
// Both are exactly identity on a constant series: the EWMA update adds
// α·(x−s) = 0 and the linear fit computes its slope and intercept from
// deviations against the latest observation, so a drift-free load vector
// forecasts to itself bit for bit, keeping drift-free closed loops
// bit-identical to their reactive counterparts.
//
// Forecast skill is tracked continuously: every Observe scores the previous
// one-step model forecast and the naive last-observation forecast against
// the actual outcome over a rolling window. When the model stops beating
// persistence (an unforecastable series — a random walk is a martingale,
// whose optimal predictor *is* the last observation), Forecast falls back to
// the last observation rather than extrapolating noise. The controller can
// observe the fallback state and degrade to reactive triggering.
package predict

import (
	"errors"
	"fmt"
	"math"
)

// Kind selects the forecasting model.
type Kind int

const (
	// KindEWMA forecasts each rank's load as an exponentially weighted
	// moving average of its observations — flat, jitter-filtering.
	KindEWMA Kind = iota
	// KindLinear forecasts each rank's load by extrapolating a
	// least-squares line over the last Window observations — trend-aware.
	KindLinear

	// kindCount counts the variants; new kinds must be added above it so
	// the parse and validation ranges extend automatically.
	kindCount
	// maxKind is the last valid Kind.
	maxKind = kindCount - 1
)

func (k Kind) String() string {
	switch k {
	case KindEWMA:
		return "ewma"
	case KindLinear:
		return "linear"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind is the inverse of Kind.String (for wire and CLI use).
func ParseKind(s string) (Kind, error) {
	for k := Kind(0); k <= maxKind; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("predict: unknown forecaster kind %q (want %s)", s, kindNames())
}

func kindNames() string {
	out := ""
	for k := Kind(0); k <= maxKind; k++ {
		switch {
		case k == 0:
		case k == maxKind:
			out += " or "
		default:
			out += ", "
		}
		out += k.String()
	}
	return out
}

// Config parameterizes a Forecaster. The zero value selects the linear
// model with the default window — but note KindEWMA is the zero Kind, so a
// zero Config means EWMA; use DefaultConfig for the recommended setup.
type Config struct {
	// Kind selects the model (default KindEWMA — the zero value).
	Kind Kind
	// Window is the number of recent observations the linear fit and the
	// skill tracker look at (default 8, minimum 2).
	Window int
	// Alpha is the EWMA smoothing factor in (0, 1]; 0 selects 2/(Window+1),
	// the span-equivalent smoothing of the window.
	Alpha float64
	// Guard is the fallback threshold: Forecast returns the last
	// observation instead of the model forecast while the model's rolling
	// one-step error exceeds Guard × the naive last-observation error.
	// 0 selects 1.0 (fall back as soon as the model stops beating
	// persistence); negative disables the guard entirely.
	Guard float64
}

// DefaultConfig returns the recommended forecaster setup: the trend-aware
// linear model over an 8-observation window with the skill guard armed.
func DefaultConfig() Config {
	return Config{Kind: KindLinear, Window: 8, Alpha: 0, Guard: 1}
}

func (c *Config) normalize() error {
	if c.Kind < 0 || c.Kind > maxKind {
		return fmt.Errorf("predict: unknown forecaster kind %d", int(c.Kind))
	}
	if c.Window == 0 {
		c.Window = 8
	}
	if c.Window < 2 {
		return fmt.Errorf("predict: window must be at least 2, got %d", c.Window)
	}
	if c.Alpha == 0 {
		c.Alpha = 2 / float64(c.Window+1)
	}
	if c.Alpha <= 0 || c.Alpha > 1 || math.IsNaN(c.Alpha) {
		return fmt.Errorf("predict: alpha %v outside (0, 1]", c.Alpha)
	}
	if c.Guard == 0 {
		c.Guard = 1
	}
	if math.IsNaN(c.Guard) || math.IsInf(c.Guard, 0) {
		return fmt.Errorf("predict: guard must be finite, got %v", c.Guard)
	}
	return nil
}

// breakFactor is the structural-break detector's sensitivity: when one
// step's naive forecast error exceeds breakFactor × the rolling mean naive
// step error, the series has jumped to a new regime (a load step, a phase
// change) and the fit history is reset to the new observation — a linear
// fit across the discontinuity would extrapolate a steep spurious trend far
// past the actual new level.
const breakFactor = 4.0

// Stats summarizes a forecaster's tracked skill.
type Stats struct {
	// Observations counts Observe calls.
	Observations int
	// Fallbacks counts Forecast calls answered with the last observation
	// because the guard was active (warm-up or poor model skill).
	Fallbacks int
	// Breaks counts structural-break resets: steps whose naive forecast
	// error exceeded breakFactor × the rolling mean, restarting the fit
	// from the new regime.
	Breaks int
	// ModelErr and NaiveErr are the rolling window sums of one-step
	// absolute forecast error (summed over ranks) of the model and of the
	// naive last-observation predictor. ModelErr ≤ Guard·NaiveErr means the
	// model is trusted.
	ModelErr, NaiveErr float64
}

// ErrRankMismatch reports an observation of the wrong width.
var ErrRankMismatch = errors.New("predict: observation width does not match the forecaster's rank count")

// Forecaster tracks one load series per rank and forecasts each one
// iteration ahead. Not safe for concurrent use.
type Forecaster struct {
	cfg    Config
	n      int
	count  int // observations seen
	fitLen int // observations in the current fit segment (≤ count; reset on breaks)
	breaks int

	level []float64 // EWMA level per rank
	hist  []float64 // ring buffer, Window rows of n: observation history
	last  []float64 // latest observation
	pred  []float64 // model one-step forecast made after the latest Observe

	// Rolling skill window: per-step absolute error sums (over ranks) of
	// the model and the naive predictor, with running totals.
	modelStep, naiveStep []float64
	modelSum, naiveSum   float64
	steps                int // scored steps (Observe calls after the first)

	fallbacks int
}

// New builds a forecaster for n ranks.
func New(n int, cfg Config) (*Forecaster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("predict: forecaster needs a positive rank count, got %d", n)
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	return &Forecaster{
		cfg:       cfg,
		n:         n,
		level:     make([]float64, n),
		hist:      make([]float64, cfg.Window*n),
		last:      make([]float64, n),
		pred:      make([]float64, n),
		modelStep: make([]float64, cfg.Window),
		naiveStep: make([]float64, cfg.Window),
	}, nil
}

// Observe feeds one iteration's per-rank loads (non-negative, gear-de-scaled
// computation times). It first scores the previous forecast against x, then
// updates the model and prepares the next one-step forecast.
func (f *Forecaster) Observe(x []float64) error {
	if len(x) != f.n {
		return fmt.Errorf("%w: got %d, want %d", ErrRankMismatch, len(x), f.n)
	}
	broke := false
	if f.count > 0 {
		// Score the forecast made after the previous observation, and the
		// naive persistence forecast, on the outcome that just arrived.
		var me, ne float64
		for r, v := range x {
			me += math.Abs(f.pred[r] - v)
			ne += math.Abs(f.last[r] - v)
		}
		// A step far outside the series' typical variation is a regime
		// change, not noise: restart the fit from the new level rather
		// than extrapolating a line across the discontinuity.
		if f.steps >= f.cfg.Window && ne > breakFactor*f.naiveSum/float64(f.cfg.Window) {
			broke = true
		}
		slot := f.steps % f.cfg.Window
		f.modelSum += me - f.modelStep[slot]
		f.naiveSum += ne - f.naiveStep[slot]
		f.modelStep[slot] = me
		f.naiveStep[slot] = ne
		f.steps++
	}

	// Update the model.
	row := (f.count % f.cfg.Window) * f.n
	copy(f.hist[row:row+f.n], x)
	if f.count == 0 || broke {
		copy(f.level, x)
	} else {
		for r, v := range x {
			f.level[r] += f.cfg.Alpha * (v - f.level[r])
		}
	}
	copy(f.last, x)
	f.count++
	if broke {
		f.fitLen = 1
		f.breaks++
	} else {
		f.fitLen++
	}
	f.forecastInto(1, f.pred)
	return nil
}

// forecastInto computes the raw model forecast (no guard) for h iterations
// after the latest observation.
func (f *Forecaster) forecastInto(h int, out []float64) {
	switch f.cfg.Kind {
	case KindEWMA:
		copy(out, f.level)
	default: // KindLinear
		f.linearInto(h, out)
	}
	// Loads are non-negative; a steep downward trend must not extrapolate
	// below zero.
	for r, v := range out {
		if v < 0 {
			out[r] = 0
		}
	}
}

// linearInto extrapolates the least-squares line over the last m =
// min(fitLen, Window) observations h steps past the latest one. All sums are
// computed on deviations from the latest observation, so a constant series
// yields slope and mean deviation exactly 0 and the forecast is exactly the
// last observation.
func (f *Forecaster) linearInto(h int, out []float64) {
	m := f.fitLen
	if m > f.cfg.Window {
		m = f.cfg.Window
	}
	if m < 2 {
		copy(out, f.last)
		return
	}
	// Observation i (0 = oldest of the window) lives at ring row
	// (count-m+i) % Window. t̄ = (m−1)/2; Σ(t−t̄)² = m(m²−1)/12.
	tbar := float64(m-1) / 2
	denom := float64(m) * float64(m*m-1) / 12
	for r := 0; r < f.n; r++ {
		ref := f.last[r]
		var num, dev float64
		for i := 0; i < m; i++ {
			y := f.hist[((f.count-m+i)%f.cfg.Window)*f.n+r] - ref
			num += (float64(i) - tbar) * y
			dev += y
		}
		slope := num / denom
		// ŷ(m−1+h) = ȳ + slope·(m−1+h − t̄), with ȳ = ref + dev/m.
		out[r] = ref + dev/float64(m) + slope*(float64(m-1+h)-tbar)
	}
}

// FallingBack reports whether Forecast currently answers with the last
// observation instead of the model: during warm-up (fewer than Window scored
// steps) and whenever the model's rolling one-step error exceeds
// Guard × the naive predictor's. Controllers use this to degrade to
// reactive triggering on unforecastable series.
func (f *Forecaster) FallingBack() bool {
	if f.cfg.Guard < 0 {
		return false
	}
	if f.steps < f.cfg.Window {
		return true
	}
	return f.modelSum > f.cfg.Guard*f.naiveSum
}

// Forecast writes the one-iteration-ahead per-rank load forecast into out
// (allocating when nil) and returns it. With the guard active it returns the
// last observation — the martingale-optimal choice when the model has no
// demonstrated skill. Forecast does not mutate the model; calling it
// repeatedly returns the same values (only the fallback counter advances).
func (f *Forecaster) Forecast(out []float64) []float64 {
	if out == nil {
		out = make([]float64, f.n)
	}
	if f.count == 0 {
		for r := range out {
			out[r] = 0
		}
		return out
	}
	if f.FallingBack() {
		f.fallbacks++
		copy(out, f.last)
		return out
	}
	copy(out, f.pred)
	return out
}

// ForecastAhead is Forecast at horizon h ≥ 1: the per-rank load forecast h
// iterations past the latest observation. A controller that re-solves
// against the mid-validity horizon of its assignment (instead of the very
// next iteration) halves the drift error the assignment accumulates over
// its lifetime. The guard applies exactly as in Forecast — a fallback
// answers with the last observation at every horizon — but ForecastAhead
// does not advance the fallback counter, which tracks only the
// once-per-iteration trigger path.
func (f *Forecaster) ForecastAhead(h int, out []float64) []float64 {
	if out == nil {
		out = make([]float64, f.n)
	}
	if f.count == 0 {
		for r := range out {
			out[r] = 0
		}
		return out
	}
	if h < 1 {
		h = 1
	}
	if f.FallingBack() {
		copy(out, f.last)
		return out
	}
	if h == 1 {
		copy(out, f.pred)
		return out
	}
	f.forecastInto(h, out)
	return out
}

// Level writes the forecaster's de-noised estimate of the current per-rank
// load level into out (allocating when nil): the EWMA level, or the mean of
// the linear model's current fit segment. Unlike Forecast it bypasses the
// skill guard — a mean is a state estimate, not a trend extrapolation — so a
// controller can consolidate an assignment made from a single noisy
// observation (the emergency re-solve right after a structural break) as
// soon as a few same-regime samples have accumulated, without waiting for
// the model to re-earn the guard's trust.
func (f *Forecaster) Level(out []float64) []float64 {
	if out == nil {
		out = make([]float64, f.n)
	}
	if f.count == 0 {
		for r := range out {
			out[r] = 0
		}
		return out
	}
	if f.cfg.Kind == KindEWMA {
		copy(out, f.level)
		return out
	}
	m := f.fitLen
	if m > f.cfg.Window {
		m = f.cfg.Window
	}
	for r := 0; r < f.n; r++ {
		ref := f.last[r]
		var dev float64
		for i := 0; i < m; i++ {
			dev += f.hist[((f.count-m+i)%f.cfg.Window)*f.n+r] - ref
		}
		out[r] = ref + dev/float64(m)
	}
	return out
}

// Stats reports the forecaster's observation count and tracked skill.
func (f *Forecaster) Stats() Stats {
	return Stats{
		Observations: f.count,
		Fallbacks:    f.fallbacks,
		Breaks:       f.breaks,
		ModelErr:     f.modelSum,
		NaiveErr:     f.naiveSum,
	}
}
