package gateway

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// BenchmarkGatewayProxyOverhead measures what the gateway hop adds on top
// of a direct backend call, on the cheapest warm path (/v1/analyze answered
// from the backend's replay cache): body read + shard hash + ring lookup +
// buffered proxy round-trip. Compare the direct and gateway sub-benchmarks;
// the difference is the per-request gateway cost.
func BenchmarkGatewayProxyOverhead(b *testing.B) {
	srv := server.New(server.Config{RequestTimeout: 30 * time.Second})
	srv.MarkReady()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	g, err := New(Config{Backends: []string{ts.URL}})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	g.CheckNow(context.Background())

	const body = `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "gear_set": {"kind": "uniform"}}`
	do := func(b *testing.B, h http.Handler) {
		b.Helper()
		// Prime the backend's caches so the loop measures proxy overhead,
		// not a first-request simulation.
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("prime request = %d: %s", rec.Code, rec.Body.String())
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("request = %d", rec.Code)
			}
		}
	}

	b.Run("direct", func(b *testing.B) { do(b, srv.Handler()) })
	b.Run("gateway", func(b *testing.B) { do(b, g.Handler()) })
}
