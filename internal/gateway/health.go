package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// Backend lifecycle states. A backend enters the ring only in the ready
// state; warming is the optional join transition during which the gateway
// pre-faults the shard's named apps into the backend's caches.
const (
	backendDown int32 = iota
	backendWarming
	backendReady
)

// backend is one pwrsimd instance in the pool: its connection pool, its
// bounded in-flight semaphore and its health state.
type backend struct {
	name   string // canonical URL string; ring member id and metric label
	base   *url.URL
	client *http.Client
	sem    chan struct{}
	state  atomic.Int32
}

func newBackend(name string, base *url.URL, cfg Config) *backend {
	return &backend{
		name: name,
		base: base,
		// A dedicated transport per backend keeps connection pools
		// isolated: one slow backend cannot starve another's keep-alive
		// connections. Idle capacity matches the in-flight bound, so a
		// saturated-then-idle backend reuses every connection.
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        cfg.MaxInFlightPerBackend,
			MaxIdleConnsPerHost: cfg.MaxInFlightPerBackend,
			IdleConnTimeout:     90 * time.Second,
		}},
		sem: make(chan struct{}, cfg.MaxInFlightPerBackend),
	}
}

// tryAcquire claims an in-flight slot without blocking.
func (b *backend) tryAcquire() bool {
	select {
	case b.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (b *backend) release() { <-b.sem }

func (b *backend) ready() bool { return b.state.Load() == backendReady }

func (b *backend) stateName() string {
	switch b.state.Load() {
	case backendReady:
		return "ready"
	case backendWarming:
		return "warming"
	default:
		return "down"
	}
}

// Start launches the background health-check loop: an immediate full probe
// (so a gateway that starts after its backends takes traffic right away),
// then one probe round per HealthInterval until Close/Shutdown.
func (g *Gateway) Start() {
	go func() {
		defer close(g.loopDone)
		ctx := context.Background()
		g.CheckNow(ctx)
		t := time.NewTicker(g.cfg.HealthInterval)
		defer t.Stop()
		for {
			select {
			case <-g.stopped:
				return
			case <-t.C:
				g.CheckNow(ctx)
			}
		}
	}()
}

// CheckNow probes every backend's /readyz once, runs join/leave
// transitions (including optional cache warming) and rebuilds the ring on
// membership changes. It is the health loop's body, exported so tests and
// the CLI can drive deterministic probe rounds.
func (g *Gateway) CheckNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, name := range g.order {
		b := g.backends[name]
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.checkOne(ctx, b)
		}()
	}
	wg.Wait()
	g.rebuildRing()
}

// probeReady asks one backend's /readyz; only a 200 within HealthTimeout
// counts. A 503 — starting or draining — and a transport error are the
// same signal to the pool: stop routing there.
func (g *Gateway) probeReady(ctx context.Context, b *backend) bool {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", b.base.JoinPath("/readyz").String(), nil)
	if err != nil {
		return false
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// checkOne runs one backend's state transition.
func (g *Gateway) checkOne(ctx context.Context, b *backend) {
	up := g.probeReady(ctx, b)
	switch {
	case up && b.state.Load() == backendDown:
		// Join. Optionally warm the shard's apps before taking traffic,
		// so the first real request on every warmed key is already a
		// cache hit.
		if len(g.cfg.WarmApps) > 0 {
			b.state.Store(backendWarming)
			g.warm(ctx, b)
		}
		b.state.Store(backendReady)
	case !up:
		b.state.Store(backendDown)
	}
}

// warm pre-faults the joining backend's shard: every configured app whose
// key would hash to this backend — in the ring as it will look after the
// join — gets one analysis request, which fills the backend's generated-
// trace memo, baseline replay and timing skeleton for that key. Warming is
// best-effort: a failed warm-up never blocks the join.
func (g *Gateway) warm(ctx context.Context, b *backend) {
	// The prospective ring: every currently-ready backend plus the joiner.
	members := []string{b.name}
	for _, name := range g.order {
		if o := g.backends[name]; o != b && o.ready() {
			members = append(members, name)
		}
	}
	prospective := buildRing(members, g.cfg.VNodes)
	for _, app := range g.cfg.WarmApps {
		ref := wireTraceRef{App: app, Iterations: g.cfg.WarmIterations, Quick: g.cfg.WarmQuick}
		if prospective.owner(keyOf(ref)) != b.name {
			continue
		}
		body, err := json.Marshal(map[string]any{
			"trace": map[string]any{
				"app":        app,
				"iterations": g.cfg.WarmIterations,
				"quick":      g.cfg.WarmQuick,
			},
			"gear_set": map[string]any{"kind": "uniform"},
		})
		if err != nil {
			continue
		}
		g.reg.warmupIssued()
		wctx, cancel := context.WithTimeout(ctx, g.cfg.RequestTimeout)
		req, err := http.NewRequestWithContext(wctx, "POST",
			b.base.JoinPath("/v1/analyze").String(), bytes.NewReader(body))
		if err != nil {
			cancel()
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		if resp, err := b.client.Do(req); err == nil {
			resp.Body.Close()
		}
		cancel()
	}
}

// currentRing snapshots the ring for lock-free routing.
func (g *Gateway) currentRing() *ring {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.ring
}

// rebuildRing swaps in a ring over the currently-ready backends if the
// membership changed, recording the rebalance and its keyspace churn.
func (g *Gateway) rebuildRing() {
	var members []string
	for _, name := range g.order {
		if g.backends[name].ready() {
			members = append(members, name)
		}
	}
	g.mu.Lock()
	old := g.ring
	if sameMembers(old.members, members) {
		g.mu.Unlock()
		return
	}
	next := buildRing(members, g.cfg.VNodes)
	g.ring = next
	g.mu.Unlock()
	moved, fraction := churn(old, next)
	g.reg.rebalanced(moved, fraction)
}

// sameMembers compares a sorted member list against an unsorted candidate
// set of the same semantics.
func sameMembers(sorted, unsorted []string) bool {
	if len(sorted) != len(unsorted) {
		return false
	}
	seen := make(map[string]bool, len(sorted))
	for _, m := range sorted {
		seen[m] = true
	}
	for _, m := range unsorted {
		if !seen[m] {
			return false
		}
	}
	return true
}

// String describes the pool for logs: "2/4 ready".
func (g *Gateway) String() string {
	ready := 0
	for _, b := range g.backends {
		if b.ready() {
			ready++
		}
	}
	return fmt.Sprintf("%d/%d backends ready", ready, len(g.backends))
}
