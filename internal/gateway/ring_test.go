package gateway

import (
	"fmt"
	"testing"
)

func ringMembers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://backend-%d:8723", i)
	}
	return out
}

// Every key must resolve to the same owner on every build of the same
// membership, regardless of member order — determinism is what makes the
// gateway's routing cache-friendly at all.
func TestRingDeterministicAndOrderIndependent(t *testing.T) {
	a := buildRing([]string{"b", "a", "c"}, 64)
	b := buildRing([]string{"c", "b", "a"}, 64)
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key/%d", i)
		if a.owner(k) != b.owner(k) {
			t.Fatalf("key %q: owner differs across member orderings (%q vs %q)", k, a.owner(k), b.owner(k))
		}
	}
}

// With enough virtual nodes, ownership spreads roughly evenly: no backend
// of a 4-member ring should own more than ~2× its fair share.
func TestRingBalancesOwnership(t *testing.T) {
	r := buildRing(ringMembers(4), 128)
	counts := make(map[string]int)
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("key/%d", i))]++
	}
	for m, c := range counts {
		share := float64(c) / keys
		if share < 0.10 || share > 0.45 {
			t.Fatalf("member %s owns %.1f%% of the keyspace, want a roughly fair share (10%%..45%%)", m, 100*share)
		}
	}
	if len(counts) != 4 {
		t.Fatalf("only %d of 4 members own keys", len(counts))
	}
}

// sequence returns distinct members in preference order; the second entry
// is the hedge replica and must differ from the primary.
func TestRingSequenceDistinct(t *testing.T) {
	r := buildRing(ringMembers(3), 64)
	for i := 0; i < 100; i++ {
		seq := r.sequence(fmt.Sprintf("key/%d", i), 2)
		if len(seq) != 2 {
			t.Fatalf("sequence(%d) returned %d members, want 2", i, len(seq))
		}
		if seq[0] == seq[1] {
			t.Fatalf("sequence(%d) repeated member %q", i, seq[0])
		}
	}
	if got := r.sequence("k", 5); len(got) != 3 {
		t.Fatalf("sequence clamped to %d members, want 3 (the whole ring)", len(got))
	}
	empty := buildRing(nil, 64)
	if got := empty.sequence("k", 2); got != nil {
		t.Fatalf("empty ring sequence = %v, want nil", got)
	}
}

// The consistent-hashing contract: removing one of N members moves only
// ~1/N of the keyspace. This is the property that keeps the surviving
// backends' caches hot through a leave.
func TestRingChurnOnLeave(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		members := ringMembers(n)
		before := buildRing(members, 128)
		after := buildRing(members[:n-1], 128)
		_, frac := churn(before, after)
		want := 1.0 / float64(n)
		if frac < want*0.5 || frac > want*2.0 {
			t.Errorf("leave from %d members moved %.1f%% of keys, want ~%.1f%%", n, 100*frac, 100*want)
		}
	}
}

// Adding a member is symmetric: ~1/(N+1) of keys move to the joiner, and
// every moved key moves TO the new member (never between old members).
func TestRingChurnOnJoinMovesOnlyToJoiner(t *testing.T) {
	members := ringMembers(4)
	before := buildRing(members[:3], 128)
	after := buildRing(members, 128)
	joiner := members[3]
	moved, total := 0, 2000
	for i := 0; i < total; i++ {
		k := fmt.Sprintf("key/%d", i)
		ob, oa := before.owner(k), after.owner(k)
		if ob != oa {
			moved++
			if oa != joiner {
				t.Fatalf("key %q moved %q → %q, but only moves to the joiner %q are allowed", k, ob, oa, joiner)
			}
		}
	}
	frac := float64(moved) / float64(total)
	if frac < 0.10 || frac > 0.45 {
		t.Fatalf("join moved %.1f%% of keys, want ~25%%", 100*frac)
	}
}

// A key's shard identity must mirror the backend's cache keying: explicit
// default iterations and omitted iterations are the same generated
// workload, so they must be the same shard key; distinct workloads must
// not collide.
func TestShardKeyCanonicalization(t *testing.T) {
	implicit := keyOf(wireTraceRef{App: "IS-32", Quick: true})
	explicit := keyOf(wireTraceRef{App: "IS-32", Iterations: 20, Quick: true})
	if implicit != explicit {
		t.Fatalf("default iterations not canonicalized: %q vs %q", implicit, explicit)
	}
	other := keyOf(wireTraceRef{App: "IS-32", Iterations: 21, Quick: true})
	if other == implicit {
		t.Fatal("distinct iteration counts collided onto one shard key")
	}
	text := keyOf(wireTraceRef{Text: "some trace"})
	if text == keyOf(wireTraceRef{Text: "another trace"}) {
		t.Fatal("distinct inline traces collided onto one shard key")
	}
}

func TestShardKeyExtraction(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{"analyze", `{"trace": {"app": "IS-32", "quick": true}, "gear_set": {"kind": "uniform"}}`,
			keyOf(wireTraceRef{App: "IS-32", Quick: true})},
		{"gearopt joint key", `{"traces": [{"app": "IS-32"}, {"app": "CG-64"}]}`,
			"multi+" + keyOf(wireTraceRef{App: "IS-32"}) + "+" + keyOf(wireTraceRef{App: "CG-64"})},
		{"no trace", `{"x": 1}`, ""},
		{"empty body", ``, ""},
		{"malformed", `{"trace": `, ""},
	}
	for _, tc := range cases {
		if got := shardKey([]byte(tc.body)); got != tc.want {
			t.Errorf("%s: shardKey = %q, want %q", tc.name, got, tc.want)
		}
	}
}
